#!/usr/bin/env bash
# bench.sh — run the perf-tracking benchmark families and emit a
# machine-readable trajectory point.
#
# Usage:
#   scripts/bench.sh                 # writes BENCH_PR10.json
#   OUT=out.json scripts/bench.sh    # custom output path
#   BASELINE=old.json scripts/bench.sh
#                                    # embed an earlier run for before/after
#   PATTERN='BenchmarkSolveCompiled' BENCHTIME=0.5s COUNT=3 scripts/bench.sh
#
# The output JSON carries the parsed per-benchmark numbers plus the raw
# `go test -bench` text (benchstat-compatible: save two runs' "raw"
# fields to files and feed them to benchstat for significance testing).
# BenchmarkStream* rows carry dbq/op — database queries per arrival —
# and BenchmarkCluster* rows carry xnode/arrival and xnode/batch —
# cross-node messages per session arrival / per scattered batch — in
# their extra metrics; the raw text preserves them.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${OUT:-BENCH_PR10.json}"
PATTERN="${PATTERN:-BenchmarkFigure4List|BenchmarkAblationIndexes|BenchmarkParallelCoordinateMany|BenchmarkSolveCompiled|BenchmarkStream|BenchmarkServer|BenchmarkWAL|BenchmarkWire|BenchmarkCluster|BenchmarkAdmission}"
BENCHTIME="${BENCHTIME:-1s}"
COUNT="${COUNT:-1}"
BASELINE="${BASELINE:-}"

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

echo "running: go test -run '^\$' -bench '$PATTERN' -benchmem -benchtime $BENCHTIME -count $COUNT ./..." >&2
go test -run '^$' -bench "$PATTERN" -benchmem -benchtime "$BENCHTIME" -count "$COUNT" ./... 2>&1 \
  | grep -v '^\(?\|ok \)\s*entangled.*no test files' \
  | tee /dev/stderr >"$tmp" || { echo "bench run failed" >&2; exit 1; }

{
  echo '{'
  echo '  "schema": "entangled-bench/v1",'
  echo "  \"commit\": \"$(git rev-parse --short HEAD 2>/dev/null || echo unknown)\","
  echo "  \"date\": \"$(date -u +%Y-%m-%dT%H:%M:%SZ)\","
  echo "  \"go\": \"$(go env GOVERSION)\","
  echo "  \"goos\": \"$(go env GOOS)\","
  echo "  \"goarch\": \"$(go env GOARCH)\","
  echo '  "benchmarks": ['
  awk '
    /^Benchmark/ {
      gsub(/\r/, "")
      name = $1; iters = $2; ns = $3
      bpo = "null"; apo = "null"
      for (i = 4; i <= NF; i++) {
        if ($i == "B/op") bpo = $(i-1)
        if ($i == "allocs/op") apo = $(i-1)
      }
      if (sep) printf ",\n"
      printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", name, iters, ns, bpo, apo
      sep = 1
    }
    END { print "" }
  ' "$tmp"
  echo '  ],'
  if [ -n "$BASELINE" ] && [ -f "$BASELINE" ]; then
    echo '  "baseline":'
    sed 's/^/    /' "$BASELINE"
    echo '  ,'
  fi
  awk '
    BEGIN { printf "  \"raw\": \"" }
    {
      gsub(/\\/, "\\\\"); gsub(/"/, "\\\""); gsub(/\t/, "\\t")
      printf "%s\\n", $0
    }
    END { print "\"" }
  ' "$tmp"
  echo '}'
} >"$OUT"

echo "wrote $OUT" >&2
