package entangled_test

import (
	"strings"
	"testing"

	"entangled"
	"entangled/internal/consistent"
	"entangled/internal/coord"
	"entangled/internal/db"
	"entangled/internal/eq"
	"entangled/internal/sat"
	"entangled/internal/system"
	"entangled/internal/workload"
)

// TestExample1UniquenessFragility reproduces Example 1 of the paper's
// introduction: the band members' query set is safe and unique until
// Gwyneth submits a request to fly with her husband, which breaks
// uniqueness (but not safety) — the exact situation §4 is built for.
func TestExample1UniquenessFragility(t *testing.T) {
	band := eq.MustParseSet(`
query chris {
  post: R(Guy, x1)
  head: R(Chris, x1)
  body: Flights(x1, Zurich)
}
query guy {
  post: R(Chris, y1)
  head: R(Guy, y1)
  body: Flights(y1, Zurich)
}`)
	if !coord.IsSafe(band) || !coord.IsUnique(band) {
		t.Fatal("the band alone is safe and unique")
	}

	withGwyneth := append(append([]eq.Query{}, band...), eq.MustParseSet(`
query gwyneth {
  post: R(Chris, z)
  head: R(Gwyneth, z)
  body: Flights(z, Zurich)
}`)...)
	if !coord.IsSafe(withGwyneth) {
		t.Fatal("adding Gwyneth keeps the set safe")
	}
	if coord.IsUnique(withGwyneth) {
		t.Fatal("adding Gwyneth breaks uniqueness")
	}

	inst := entangled.NewInstance()
	fl := inst.CreateRelation("Flights", "fid", "dest")
	fl.Insert("101", "Zurich")

	// The baseline refuses; the SCC algorithm coordinates everybody
	// (Gwyneth's candidate R(gwyneth) covers all three).
	if _, err := coord.GuptaCoordinate(withGwyneth, inst); err == nil {
		t.Fatal("baseline must reject the non-unique set")
	}
	res, err := entangled.Coordinate(withGwyneth, inst, entangled.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Size() != 3 {
		t.Fatalf("all three share flight 101: %v", res)
	}
	if err := entangled.Verify(withGwyneth, res.Set, res.Values, inst); err != nil {
		t.Fatal(err)
	}
}

// TestClassEnrollmentScenario is the introduction's "enroll in a class
// one of your friends is also taking" use case on the consistent
// algorithm, with a capacity-like constraint expressed through the data.
func TestClassEnrollmentScenario(t *testing.T) {
	inst := entangled.NewInstance()
	classes := inst.CreateRelation("Classes", "section", "course", "slot")
	classes.Insert("cs101-a", "CS101", "mon9")
	classes.Insert("cs101-b", "CS101", "tue9")
	classes.Insert("ml201-a", "ML201", "mon9")
	classes.BuildIndex(1)
	fr := inst.CreateRelation("Friends", "user", "friend")
	for _, p := range [][2]eq.Value{{"ana", "bo"}, {"bo", "ana"}, {"bo", "cy"}, {"cy", "bo"}} {
		fr.Insert(p[0], p[1])
	}
	fr.BuildIndex(0)

	sch := entangled.ConsistentSchema{
		Table:     "Classes",
		KeyCol:    0,
		CoordCols: []int{1, 2}, // same course, same time slot
		Friends:   "Friends",
	}
	// Ana will take anything with a friend; Bo insists on CS101; Cy
	// insists on ML201 and needs a friend (only Bo) — so Cy cannot be
	// satisfied, while Ana and Bo meet in CS101.
	qs := []entangled.ConsistentQuery{
		{User: "ana", Coord: []entangled.Pref{consistent.DontCare, consistent.DontCare}, Partners: []entangled.Partner{consistent.Friend}},
		{User: "bo", Coord: []entangled.Pref{consistent.Is("CS101"), consistent.DontCare}, Partners: []entangled.Partner{consistent.Friend}},
		{User: "cy", Coord: []entangled.Pref{consistent.Is("ML201"), consistent.DontCare}, Partners: []entangled.Partner{consistent.Friend}},
	}
	res, err := entangled.CoordinateConsistent(sch, qs, inst, consistent.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || len(res.Members) != 2 {
		t.Fatalf("Ana and Bo enroll together: %v", res)
	}
	if res.Value[0] != "CS101" {
		t.Fatalf("course = %v", res.Value)
	}
	if res.Keys[0] != res.Keys[1] {
		// Same course and slot; with distinct sections both are legal,
		// but this data has one section per (course, slot).
		t.Fatalf("keys: %v", res.Keys)
	}
}

// TestOnlineChainSoak drives the online coordinator with a 120-query
// chain submitted head first: nothing can be answered until the final
// tail query arrives, at which point the whole chain coordinates in one
// batch. Every answered batch is verified against Definition 1.
func TestOnlineChainSoak(t *testing.T) {
	inst := db.NewInstance()
	workload.UserTable(inst, 500)
	qs := workload.ListQueries(120, 500)

	c := system.New(inst, coord.Options{})
	answered := 0
	for i, q := range qs {
		out, err := c.Submit(q)
		if err != nil {
			t.Fatal(err)
		}
		if i < len(qs)-1 && len(out.Coordinated) != 0 {
			t.Fatalf("query %d answered early", i)
		}
		answered += len(out.Coordinated)
		// Spot-verify each answered batch: every grounded body atom must
		// be in the instance.
		for _, cq := range out.Coordinated {
			vals := out.Values[cq.ID]
			for _, b := range cq.Body {
				g := b.Clone()
				for k, tm := range g.Args {
					if tm.IsVar() {
						v, ok := vals[tm.Name]
						if !ok {
							t.Fatalf("query %s: unassigned %s", cq.ID, tm.Name)
						}
						g.Args[k] = eq.C(v)
					}
				}
				if !inst.Contains(g) {
					t.Fatalf("query %s: grounded body %s missing", cq.ID, g)
				}
			}
		}
	}
	// The tail's arrival completes the one candidate covering the chain.
	if answered != len(qs) {
		t.Fatalf("answered %d of %d", answered, len(qs))
	}
	if len(c.Pending()) != 0 {
		t.Fatalf("pending = %d", len(c.Pending()))
	}
}

// TestHardnessPipelineOnDIMACS runs the full hardness pipeline the
// cmd/hardness tool uses, from DIMACS text to both reductions.
func TestHardnessPipelineOnDIMACS(t *testing.T) {
	// (x1 | x2 | x3) & (!x1 | !x2 | !x3) — satisfiable.
	f, err := sat.ParseDIMACS(strings.NewReader("p cnf 3 2\n1 2 3 0\n-1 -2 -3 0\n"))
	if err != nil {
		t.Fatal(err)
	}
	_, satisfiable := f.Solve()
	if !satisfiable {
		t.Fatal("fixture is satisfiable")
	}
	in1, err := sat.ReduceTheorem1(f)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := coord.BruteForceExists(in1.Queries, in1.DB)
	if err != nil || !ok {
		t.Fatalf("Theorem 1: ok=%v err=%v", ok, err)
	}
	in2, err := sat.ReduceTheorem2(f)
	if err != nil {
		t.Fatal(err)
	}
	max, err := coord.BruteForceMax(in2.Queries, in2.DB)
	if err != nil {
		t.Fatal(err)
	}
	if max.Size() != in2.Target {
		t.Fatalf("Theorem 2: max %d, target %d", max.Size(), in2.Target)
	}
}
