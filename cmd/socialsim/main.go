// Command socialsim simulates a population of users submitting
// entangled coordination requests to the online module over discrete
// rounds (the §7 "on-line setting"), printing answer rates, waiting
// times and batch sizes.
//
// Usage:
//
//	socialsim [-users N] [-m K] [-rounds R] [-arrivals A] [-coordprob P] [-ttl T] [-seed S]
//
// The social network is a Barabási–Albert scale-free graph with
// attachment parameter -m, the same model the paper's evaluation uses.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"entangled/internal/netgen"
	"entangled/internal/simulate"
)

func main() {
	users := flag.Int("users", 200, "population size")
	m := flag.Int("m", 2, "scale-free attachment parameter")
	rounds := flag.Int("rounds", 100, "simulation rounds")
	arrivals := flag.Int("arrivals", 5, "request arrivals per round")
	coordprob := flag.Float64("coordprob", 0.7, "probability a request names partners")
	ttl := flag.Int("ttl", 10, "rounds before a pending request expires")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	g := netgen.BarabasiAlbert(*users, *m, rand.New(rand.NewSource(*seed)))
	st, err := simulate.Run(simulate.Config{
		Network:          g,
		Rounds:           *rounds,
		ArrivalsPerRound: *arrivals,
		CoordProb:        *coordprob,
		TTL:              *ttl,
		Seed:             *seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "socialsim: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("network: %d users, %d edges (Barabási–Albert m=%d)\n", g.N(), g.M(), *m)
	fmt.Printf("rounds: %d, arrivals/round: %d, coordprob: %.2f, ttl: %d\n\n", *rounds, *arrivals, *coordprob, *ttl)
	fmt.Printf("submitted:       %6d\n", st.Submitted)
	fmt.Printf("answered:        %6d (%.1f%%)\n", st.Answered, pct(st.Answered, st.Submitted))
	fmt.Printf("expired:         %6d (%.1f%%)\n", st.Expired, pct(st.Expired, st.Submitted))
	fmt.Printf("pending at end:  %6d\n", st.PendingAtEnd)
	fmt.Printf("batches:         %6d (avg size %.2f, max %d)\n", st.Batches, st.AvgBatch, st.MaxBatch)
	fmt.Printf("avg wait rounds: %6.2f\n", st.AvgWaitRounds)
	fmt.Printf("max pending:     %6d\n", st.MaxPending)
}

func pct(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}
