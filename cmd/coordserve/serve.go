package main

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"entangled/internal/coord"
	"entangled/internal/db"
	"entangled/internal/engine"
	"entangled/internal/server"
)

// runServe boots the coordination service on addr over the given store
// and blocks until SIGINT/SIGTERM, then drains gracefully: the HTTP
// server stops accepting and waits for in-flight connections, the batch
// queue serves what it admitted, and every session's mailbox drains
// before its goroutine exits (the PR 4 contract — events are atomic, so
// a drain never leaves partial coordination state).
func runServe(addr string, store db.Store, workers int) error {
	e := engine.New(store, engine.Options{Workers: workers, Coord: coord.Options{}})
	srv := server.New(e, server.Options{})
	hs := &http.Server{Addr: addr, Handler: srv}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Printf("coordination service listening on %s (%s)\n", addr, srv)
	fmt.Printf("  POST /v1/coordinate · POST /v1/sessions · GET /healthz · GET /metrics\n")

	select {
	case err := <-errc:
		srv.Close()
		return err // immediate listen failure
	case <-ctx.Done():
	}
	fmt.Println("\ndraining: closing listener, finishing admitted work ...")
	shutCtx, shutCancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer shutCancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		fmt.Fprintf(os.Stderr, "coordserve: shutdown: %v\n", err)
	}
	srv.Close()
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	reportPlans(store)
	fmt.Println("drained cleanly")
	return nil
}
