package main

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"entangled/internal/admission"
	"entangled/internal/client"
	"entangled/internal/cluster"
	"entangled/internal/coord"
	"entangled/internal/db"
	"entangled/internal/engine"
	"entangled/internal/persist"
	"entangled/internal/server"
	"entangled/internal/workload"
)

// clusterConfig carries the cluster flags into the serve paths; a zero
// value (no -cluster-peers) runs standalone.
type clusterConfig struct {
	node   string
	peers  string
	vnodes int
}

// router builds this node's cluster router: the static membership from
// -cluster-peers, this node named by -cluster-node, and peer
// connections dialed through the client package's persistent
// jittered-backoff transport. Returns nil standalone.
func (c clusterConfig) router(placement map[string]int) (*cluster.Router, error) {
	if c.peers == "" {
		return nil, nil
	}
	nodes, err := cluster.ParsePeers(c.peers)
	if err != nil {
		return nil, err
	}
	return cluster.New(cluster.Config{Self: c.node, Nodes: nodes, VNodes: c.vnodes}, cluster.Options{
		Placement: placement,
		Dial:      func(addr string) cluster.PeerConn { return client.DialPeer(addr) },
	})
}

// admissionController loads the -tenants policy file into a
// controller; an empty path means no admission control (the server
// runs exactly as it did without the subsystem).
func admissionController(path string) (*admission.Controller, error) {
	if path == "" {
		return nil, nil
	}
	cfg, err := admission.LoadConfig(path)
	if err != nil {
		return nil, err
	}
	return admission.NewController(cfg), nil
}

// serveDurable is the -data-dir serve path: open (or create) the
// durable backend, replay its snapshot and WAL into the store, then
// serve over it so every accepted mutation and admitted session event
// is journaled before it is acknowledged. A fresh directory is seeded
// with the canonical workload table, snapshotted immediately so later
// restarts recover from the compact form; a non-fresh directory is
// recovered as-is and -rows is ignored (the data directory owns the
// data). The backend is closed — final sync included — after the
// server drains.
func serveDurable(addr, binaryAddr, dataDir, fsync string, shards, rows, workers int, probe, dispatchTimeout time.Duration, cc clusterConfig, adm *admission.Controller) error {
	policy, err := persist.ParseSyncPolicy(fsync)
	if err != nil {
		return err
	}
	backend, err := persist.Open(dataDir, persist.Options{Shards: shards, Sync: policy})
	if err != nil {
		return err
	}
	defer backend.Close()
	if backend.Fresh() {
		fmt.Printf("initialising %s: %d-row table across %d shard(s), fsync=%s\n",
			dataDir, rows, backend.Shards(), policy)
		if err := db.ApplyAll(backend, workload.UserTableMutations(rows)); err != nil {
			return fmt.Errorf("seeding data directory: %w", err)
		}
		if err := backend.Compact(); err != nil {
			return fmt.Errorf("snapshotting seed: %w", err)
		}
	} else {
		fmt.Printf("recovering %s: %d shard(s), fsync=%s\n", dataDir, backend.Shards(), policy)
	}
	return runServe(addr, binaryAddr, backend, workers, backend, probe, dispatchTimeout, cc, adm)
}

// runServe boots the coordination service on addr over the given store
// and blocks until SIGINT/SIGTERM, then drains gracefully: the HTTP
// server stops accepting and waits for in-flight connections, the batch
// queue serves what it admitted, and every session's mailbox drains
// before its goroutine exits (the PR 4 contract — events are atomic, so
// a drain never leaves partial coordination state). With a durable
// backend, the drain additionally syncs and closes every open WAL —
// session journals first (registry close), then the store log — so an
// interrupted server's data directory is complete on stable storage.
func runServe(addr, binaryAddr string, store db.Store, workers int, backend *persist.Backend, probe, dispatchTimeout time.Duration, cc clusterConfig, adm *admission.Controller) error {
	// The placement the cluster partitions work by mirrors the store's
	// own hash partitioning when it is sharded, and the canonical
	// workload contract otherwise (every node holds a full replica, so
	// placement only steers work, never data availability).
	placement := workload.Placement()
	if sh, ok := store.(*db.ShardedInstance); ok {
		placement = sh.HashColumns()
	}
	cr, err := cc.router(placement)
	if err != nil {
		return err
	}
	if cr != nil {
		defer cr.Close()
		if binaryAddr == "" {
			// Forwards and cluster clients ride the binary protocol, so a
			// cluster node always listens on its membership address.
			binaryAddr = cr.SelfAddr()
		}
	}
	e := engine.New(store, engine.Options{Workers: workers, Coord: coord.Options{}})
	srv, err := server.New(e, server.Options{Persist: backend, ProbeInterval: probe, DispatchTimeout: dispatchTimeout, Cluster: cr, Admission: adm})
	if err != nil {
		return fmt.Errorf("recovering sessions: %w", err)
	}
	if adm != nil {
		fmt.Printf("admission: per-tenant quotas active (GET /v1/tenants for the ledger)\n")
	}
	if cr != nil {
		st := cr.Status()
		fmt.Printf("cluster: node %s of %d members (%s), forwarding over the binary protocol\n",
			st.Self, len(st.Nodes), st.Version)
	}
	if backend != nil {
		if backend.Fresh() {
			// Nothing was recovered (the directory was just created and
			// seeded); report what is on disk now instead.
			mt := backend.Metrics()
			fmt.Printf("durable: %s (fresh; snapshot seq %d: %d mutations on disk)\n",
				backend.Dir(), mt.SnapshotSeq, mt.StoreAppends)
		} else {
			rec := backend.RecoveryStats()
			fmt.Printf("durable: %s (snapshot seq %d: %d mutations; WAL: %d mutations in %d segment(s); sessions: %d with %d events)\n",
				backend.Dir(), rec.SnapshotSeq, rec.SnapshotFrames, rec.WALFrames, rec.WALSegments, rec.Sessions, rec.SessionEvents)
			if rec.TornTail || rec.SessionTornTails > 0 {
				fmt.Printf("durable: truncated torn tail(s): store=%v sessions=%d\n", rec.TornTail, rec.SessionTornTails)
			}
		}
	}
	hs := &http.Server{Addr: addr, Handler: srv}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Printf("coordination service listening on %s (%s)\n", addr, srv)
	fmt.Printf("  POST /v1/coordinate · POST /v1/sessions · GET /healthz · GET /metrics\n")
	if binaryAddr != "" {
		bln, err := net.Listen("tcp", binaryAddr)
		if err != nil {
			srv.Close()
			return fmt.Errorf("binary listener: %w", err)
		}
		go func() {
			// ServeWire returns nil on a drain-triggered close; anything
			// else is a real listener failure worth reporting.
			if err := srv.ServeWire(bln); err != nil {
				fmt.Fprintf(os.Stderr, "coordserve: binary listener: %v\n", err)
			}
		}()
		fmt.Printf("binary wire protocol listening on %s (point clients at tcp://%s)\n", binaryAddr, binaryAddr)
	}

	select {
	case err := <-errc:
		srv.Close()
		return err // immediate listen failure
	case <-ctx.Done():
	}
	fmt.Println("\ndraining: closing listener, finishing admitted work ...")
	shutCtx, shutCancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer shutCancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		fmt.Fprintf(os.Stderr, "coordserve: shutdown: %v\n", err)
	}
	srv.Close()
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	reportPlans(store)
	fmt.Println("drained cleanly")
	return nil
}
