// Command coordserve demonstrates the concurrent coordination engine
// under a serving load: a producer enqueues many independent
// coordination requests (distinct entangled query sets over one shared
// instance) and a pool of workers drains the queue in batches through
// engine.CoordinateMany, printing throughput and latency statistics.
//
// Usage:
//
//	coordserve [-requests N] [-queries N] [-rows N] [-workers N] [-batch N] [-latency D] [-compare]
//
// -queries is the mean per-request query-set size (requests vary around
// it so the load is not uniform). -latency adds a simulated
// per-database-query round-trip cost, the regime where the paper's
// MySQL-backed prototype lives and where concurrency pays the most.
// -compare reruns the same load single-threaded and prints the speedup.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"entangled/internal/coord"
	"entangled/internal/db"
	"entangled/internal/engine"
	"entangled/internal/workload"
)

func main() {
	requests := flag.Int("requests", 256, "number of coordination requests to serve")
	queries := flag.Int("queries", 25, "mean entangled-query count per request")
	rows := flag.Int("rows", 20000, "rows in the shared queried table")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "engine worker-pool size")
	batch := flag.Int("batch", 64, "requests drained from the queue per CoordinateMany call")
	latency := flag.Duration("latency", 0, "simulated per-database-query latency")
	compare := flag.Bool("compare", false, "also serve the load on one worker and report the speedup")
	flag.Parse()
	if *requests <= 0 || *queries < 2 || *batch <= 0 || *workers <= 0 {
		fmt.Fprintln(os.Stderr, "coordserve: -requests, -batch and -workers must be positive and -queries >= 2")
		os.Exit(2)
	}

	inst := db.NewInstance()
	inst.SimulatedLatency = *latency
	workload.UserTable(inst, *rows)

	fmt.Printf("serving %d requests (~%d queries each) over a %d-row table, %d workers, batches of %d\n",
		*requests, *queries, *rows, *workers, *batch)
	served, elapsed := drain(inst, produce(*requests, *queries, *rows, *batch), *workers, *batch)
	report(served, elapsed, *workers)

	if *compare {
		served1, elapsed1 := drain(inst, produce(*requests, *queries, *rows, *batch), 1, *batch)
		report(served1, elapsed1, 1)
		fmt.Printf("speedup with %d workers: %.2fx\n", *workers, elapsed1.Seconds()/elapsed.Seconds())
	}
}

// produce starts a producer goroutine filling the request queue with
// list workloads whose sizes vary around queries, so batches mix cheap
// and expensive requests.
func produce(requests, queries, rows, batch int) <-chan engine.Request {
	queue := make(chan engine.Request, batch)
	go func() {
		defer close(queue)
		for i := 0; i < requests; i++ {
			n := queries/2 + i%queries
			queue <- engine.Request{
				ID:      fmt.Sprintf("req%d", i),
				Queries: workload.ListQueries(n, rows),
			}
		}
	}()
	return queue
}

// drain pulls batches off the queue and serves each through
// CoordinateMany, returning per-request batch latencies and the total
// wall-clock time.
func drain(inst *db.Instance, queue <-chan engine.Request, workers, batchSize int) ([]time.Duration, time.Duration) {
	e := engine.New(inst, engine.Options{
		Workers: workers,
		Coord:   coord.Options{SkipSafetyCheck: true},
	})
	var latencies []time.Duration
	start := time.Now()
	batch := make([]engine.Request, 0, batchSize)
	flush := func() {
		if len(batch) == 0 {
			return
		}
		bStart := time.Now()
		for _, resp := range e.CoordinateMany(context.Background(), batch) {
			if resp.Err != nil {
				fmt.Fprintf(os.Stderr, "coordserve: %s: %v\n", resp.ID, resp.Err)
				os.Exit(1)
			}
		}
		bElapsed := time.Since(bStart)
		per := bElapsed / time.Duration(len(batch))
		for range batch {
			latencies = append(latencies, per)
		}
		batch = batch[:0]
	}
	for req := range queue {
		batch = append(batch, req)
		if len(batch) == batchSize {
			flush()
		}
	}
	flush()
	return latencies, time.Since(start)
}

// report prints throughput and latency percentiles for one drain run.
func report(latencies []time.Duration, elapsed time.Duration, workers int) {
	n := len(latencies)
	sorted := append([]time.Duration(nil), latencies...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	pct := func(p float64) time.Duration {
		i := int(p * float64(n-1))
		return sorted[i]
	}
	fmt.Printf("  workers=%d: %d requests in %v (%.1f req/s), mean batch-amortised latency p50=%v p95=%v\n",
		workers, n, elapsed.Round(time.Millisecond),
		float64(n)/elapsed.Seconds(), pct(0.50).Round(time.Microsecond), pct(0.95).Round(time.Microsecond))
}
