// Command coordserve is the coordination service and its load driver.
//
// With -listen it serves the HTTP/JSON coordination API
// (internal/server) over a shared store: the batch endpoint, streaming
// sessions, /healthz and /metrics, with a graceful drain on
// SIGINT/SIGTERM.
//
// Without -listen it generates load: many independent coordination
// requests (distinct entangled query sets over one shared store)
// served in batches, or a streaming session fed one event at a time.
// By default the load runs in-process against engine.CoordinateMany;
// with -target URL the same load is sent over the network to a running
// coordserve -listen instance, so throughput, latency and -compare
// measure real end-to-end serving.
//
// Usage:
//
//	coordserve -listen :8080 [-listen-binary :9090] [-rows N] [-shards K] [-workers N] [-latency D]
//	coordserve -listen :8080 -cluster-node a -cluster-peers a=:9101,b=:9102,c=:9103 [-cluster-vnodes N]
//	coordserve [-requests N] [-queries N] [-rows N] [-workers N] [-batch N] [-shards K] [-latency D] [-compare] [-target URL] [-proto http|binary]
//	coordserve -stream [-events N] [-pattern steady|bursty|churn] [-rate R] [-seed S] [-park] [-rows N] [-shards K] [-latency D] [-target URL] [-proto http|binary]
//
// -queries is the mean per-request query-set size (requests vary around
// it so the load is not uniform). -latency adds a simulated
// per-database-query round-trip cost, the regime where the paper's
// MySQL-backed prototype lives and where concurrency pays the most.
// -shards hash-partitions the queried table across K shards, so each
// request routes to the single shard its bodies pin. -compare reruns
// the same load single-threaded and prints the speedup; both timings
// cover only the serving loop (request generation and engine setup are
// excluded), so the reported throughput and speedup are honest.
//
// -stream switches from batch serving to a streaming coordination
// session: -events arrivals following -pattern (see workload.Arrivals)
// are paced at a mean of -rate events/second (0 = full speed) and
// applied one at a time with incremental re-coordination, printing
// per-event latency and database-query histograms. -park parks unsafe
// arrivals for retry instead of rejecting them. SIGINT drains
// gracefully: the event in flight finishes and the session state is
// reported before exit.
//
// -cluster-peers turns N coordserve processes into one logical
// service: every node is started with the same membership list
// (name=binary-address pairs) and its own -cluster-node name, each
// holds a full replica of the data (same -rows/-shards), and a
// consistent-hash ring over the names places sessions and
// single-owner batch requests. Requests landing on the wrong node
// forward once over the binary protocol; cluster-aware clients use a
// cluster://host:port base URL to route directly. The binary listener
// defaults to the node's own membership address.
//
// With -target, the generator does not build a store: the remote
// server owns the data, and -rows must match the server's so generated
// bodies ground (both default to 20000). The target URL's scheme picks
// the protocol — http:// for HTTP/JSON, tcp:// for the binary wire
// protocol (internal/wire) — and -proto http|binary overrides it
// (pointing at the matching -listen or -listen-binary port). -compare
// with -target serves the identical load in-process on an identically
// built local store and reports the wire layer's overhead.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/url"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"syscall"
	"time"

	"entangled/internal/coord"
	"entangled/internal/db"
	"entangled/internal/engine"
	"entangled/internal/workload"
)

func main() {
	listen := flag.String("listen", "", "serve the HTTP coordination API on this address instead of generating load")
	listenBinary := flag.String("listen-binary", "", "serve mode: also serve the binary wire protocol on this address")
	target := flag.String("target", "", "send the generated load to the coordination service at this URL instead of serving in-process")
	proto := flag.String("proto", "", "with -target: force the protocol, http or binary (default: the target URL's scheme)")
	requests := flag.Int("requests", 256, "number of coordination requests to serve")
	queries := flag.Int("queries", 25, "mean entangled-query count per request")
	rows := flag.Int("rows", 20000, "rows in the shared queried table")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "engine worker-pool size")
	batch := flag.Int("batch", 64, "requests drained from the queue per CoordinateMany call")
	shards := flag.Int("shards", 1, "hash-partition the queried table across this many shards (1 = one shared instance)")
	latency := flag.Duration("latency", 0, "simulated per-database-query latency")
	compare := flag.Bool("compare", false, "also serve the load on one worker and report the speedup")
	streamMode := flag.Bool("stream", false, "serve a streaming session instead of a batch load")
	events := flag.Int("events", 512, "stream mode: number of join/leave events")
	pattern := flag.String("pattern", "steady", "stream mode: arrival pattern (steady, bursty, churn)")
	rate := flag.Float64("rate", 0, "stream mode: mean arrival rate in events/second (0 = full speed)")
	seed := flag.Int64("seed", 1, "stream mode: arrival-sequence seed")
	park := flag.Bool("park", false, "stream mode: park unsafe arrivals for retry instead of rejecting")
	dataDir := flag.String("data-dir", "", "serve mode: durable data directory (snapshot + WAL); empty = in-memory only")
	fsync := flag.String("fsync", "always", "serve mode: WAL sync policy: always, never, or a flush interval like 50ms")
	probe := flag.Duration("probe", 0, "serve mode: degraded-mode probe interval (0 = 500ms default; negative disables)")
	dispatchTimeout := flag.Duration("dispatch-timeout", 0, "serve mode: per-batch dispatch deadline (0 = 30s default; negative disables)")
	clusterNode := flag.String("cluster-node", "", "serve mode: this node's name in the cluster membership (requires -cluster-peers)")
	clusterPeers := flag.String("cluster-peers", "", "serve mode: full cluster membership as name=host:port binary-protocol entries, comma-separated; empty = standalone")
	clusterVNodes := flag.Int("cluster-vnodes", 0, "serve mode: virtual ring points per member (0 = 64); must match on every node")
	tenants := flag.String("tenants", "", "serve mode: per-tenant admission policy JSON file; empty = no admission control")
	flag.Parse()
	if *requests <= 0 || *queries < 2 || *batch <= 0 || *workers <= 0 || *shards <= 0 {
		fmt.Fprintln(os.Stderr, "coordserve: -requests, -batch, -workers and -shards must be positive and -queries >= 2")
		os.Exit(2)
	}

	if *listen != "" {
		cc := clusterConfig{node: *clusterNode, peers: *clusterPeers, vnodes: *clusterVNodes}
		adm, err := admissionController(*tenants)
		if err != nil {
			fmt.Fprintf(os.Stderr, "coordserve: %v\n", err)
			os.Exit(2)
		}
		if *dataDir != "" {
			if err := serveDurable(*listen, *listenBinary, *dataDir, *fsync, *shards, *rows, *workers, *probe, *dispatchTimeout, cc, adm); err != nil {
				fmt.Fprintf(os.Stderr, "coordserve: %v\n", err)
				os.Exit(1)
			}
			return
		}
		store := workload.NewStore(*shards, *rows, *latency)
		fmt.Printf("serving a %d-row table across %d shard(s), %d workers\n", *rows, *shards, *workers)
		if err := runServe(*listen, *listenBinary, store, *workers, nil, *probe, *dispatchTimeout, cc, adm); err != nil {
			fmt.Fprintf(os.Stderr, "coordserve: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *target != "" {
		resolved, err := resolveTarget(*target, *proto)
		if err != nil {
			fmt.Fprintf(os.Stderr, "coordserve: %v\n", err)
			os.Exit(2)
		}
		*target = resolved
	}

	if *streamMode {
		if *events <= 0 {
			fmt.Fprintln(os.Stderr, "coordserve: -events must be positive")
			os.Exit(2)
		}
		valid := false
		for _, p := range workload.Patterns() {
			if workload.Pattern(*pattern) == p {
				valid = true
			}
		}
		if !valid {
			fmt.Fprintf(os.Stderr, "coordserve: unknown -pattern %q (valid: %v)\n", *pattern, workload.Patterns())
			os.Exit(2)
		}
		ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer cancel()
		cfg := streamConfig{
			events:  *events,
			pattern: workload.Pattern(*pattern),
			rate:    *rate,
			seed:    *seed,
			rows:    *rows,
			park:    *park,
		}
		if *target != "" {
			fmt.Printf("streaming %d %s events to %s, rate=%v/s seed=%d\n",
				*events, *pattern, *target, *rate, *seed)
			if err := runStreamRemote(ctx, *target, cfg, os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "coordserve: %v\n", err)
				os.Exit(1)
			}
			return
		}
		store := workload.NewStore(*shards, *rows, *latency)
		e := engine.New(store, engine.Options{Workers: *workers, Coord: coord.Options{}})
		fmt.Printf("streaming %d %s events over a %d-row table (%d shard(s)), rate=%v/s seed=%d\n",
			*events, *pattern, *rows, *shards, *rate, *seed)
		if _, err := runStream(ctx, e, cfg, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "coordserve: %v\n", err)
			os.Exit(1)
		}
		reportPlans(store)
		return
	}

	batches := produce(*requests, *queries, *rows, *batch)

	if *target != "" {
		fmt.Printf("serving %d requests (~%d queries each) end-to-end against %s, %d client workers, batches of %d\n",
			*requests, *queries, *target, *workers, *batch)
		served, elapsed, err := drainRemote(*target, batches, *workers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "coordserve: %v\n", err)
			os.Exit(1)
		}
		report(served, elapsed, *workers)
		if *compare {
			// The same materialised load through the engine directly, on
			// an identically built local store: the ratio is the wire
			// layer's end-to-end overhead.
			store := workload.NewStore(*shards, *rows, *latency)
			fmt.Println("in-process baseline over an identical local store:")
			served1, elapsed1 := drain(store, batches, *workers)
			report(served1, elapsed1, *workers)
			fmt.Printf("%s serving overhead at %d workers: %.2fx\n",
				protoLabel(*target), *workers, elapsed.Seconds()/elapsed1.Seconds())
		}
		return
	}

	store := workload.NewStore(*shards, *rows, *latency)
	fmt.Printf("serving %d requests (~%d queries each) over a %d-row table (%d shard(s)), %d workers, batches of %d\n",
		*requests, *queries, *rows, *shards, *workers, *batch)
	served, elapsed := drain(store, batches, *workers)
	report(served, elapsed, *workers)
	reportPlans(store)

	if *compare {
		// Requests are read-only during serving: reuse the same
		// materialised load so both runs serve the identical batches.
		served1, elapsed1 := drain(store, batches, 1)
		report(served1, elapsed1, 1)
		fmt.Printf("speedup with %d workers: %.2fx\n", *workers, elapsed1.Seconds()/elapsed.Seconds())
	}
}

// resolveTarget applies -proto to the -target URL: "http" forces the
// HTTP/JSON protocol, "binary" the binary wire protocol (tcp scheme),
// and "" leaves the URL's own scheme in charge. A bare host:port gets
// the chosen protocol's scheme prepended (http by default).
func resolveTarget(target, proto string) (string, error) {
	scheme := ""
	switch proto {
	case "":
	case "http":
		scheme = "http"
	case "binary":
		scheme = "tcp"
	default:
		return "", fmt.Errorf("unknown -proto %q (valid: http, binary)", proto)
	}
	u, err := url.Parse(target)
	if err != nil || u.Scheme == "" || u.Host == "" {
		// A bare host:port: prepend the chosen scheme.
		if scheme == "" {
			scheme = "http"
		}
		return scheme + "://" + target, nil
	}
	if scheme != "" && u.Scheme != scheme {
		u.Scheme = scheme
		return u.String(), nil
	}
	return target, nil
}

// protoLabel names the protocol a resolved target URL selects, for the
// -compare overhead report.
func protoLabel(target string) string {
	if u, err := url.Parse(target); err == nil && (u.Scheme == "tcp" || u.Scheme == "binary") {
		return "binary wire"
	}
	return "HTTP"
}

// reportPlans prints the store's plan-cache counters: every worker of
// the pool evaluates through one shared cache, so after the first few
// requests the hit rate should be ~100% (each body shape compiles
// once per schema version, not once per request).
func reportPlans(store db.Store) {
	st, ok := db.AggregatePlanStats(store)
	if !ok {
		return
	}
	total := st.Hits + st.Misses
	if total == 0 {
		return
	}
	fmt.Printf("plan cache: %d plans served %d queries (%.1f%% hit rate)\n",
		st.Entries, total, 100*float64(st.Hits)/float64(total))
}

// produce materialises the whole request load up front, already split
// into batches. Request generation is setup, not serving: building the
// query sets must never count toward the drain loop's wall clock, or
// throughput and -compare speedups lie. Each request pins one table
// value (request i grounds through c_{i mod rows}) — the "one scenario
// coordinates around one context" serving shape — so on a sharded
// store every request is single-shard routable and the fleet fans out
// across shards; the same load runs unsharded for comparison.
func produce(requests, queries, rows, batchSize int) [][]engine.Request {
	var batches [][]engine.Request
	batch := make([]engine.Request, 0, batchSize)
	for i := 0; i < requests; i++ {
		n := queries/2 + i%queries
		batch = append(batch, engine.Request{
			ID:      fmt.Sprintf("req%d", i),
			Queries: workload.ListQueriesAt(n, i%rows),
		})
		if len(batch) == batchSize {
			batches = append(batches, batch)
			batch = make([]engine.Request, 0, batchSize)
		}
	}
	if len(batch) > 0 {
		batches = append(batches, batch)
	}
	return batches
}

// drain serves each pre-built batch through CoordinateMany, returning
// per-request batch-amortised latencies and the wall-clock time of the
// serving loop alone.
func drain(store db.Store, batches [][]engine.Request, workers int) ([]time.Duration, time.Duration) {
	e := engine.New(store, engine.Options{
		Workers: workers,
		Coord:   coord.Options{SkipSafetyCheck: true},
	})
	var latencies []time.Duration
	start := time.Now()
	for _, batch := range batches {
		bStart := time.Now()
		for _, resp := range e.CoordinateMany(context.Background(), batch) {
			if resp.Err != nil {
				fmt.Fprintf(os.Stderr, "coordserve: %s: %v\n", resp.ID, resp.Err)
				os.Exit(1)
			}
		}
		per := time.Since(bStart) / time.Duration(len(batch))
		for range batch {
			latencies = append(latencies, per)
		}
	}
	return latencies, time.Since(start)
}

// report prints throughput and latency percentiles for one drain run.
func report(latencies []time.Duration, elapsed time.Duration, workers int) {
	n := len(latencies)
	sorted := append([]time.Duration(nil), latencies...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	pct := func(p float64) time.Duration {
		i := int(p * float64(n-1))
		return sorted[i]
	}
	fmt.Printf("  workers=%d: %d requests in %v (%.1f req/s), mean batch-amortised latency p50=%v p95=%v\n",
		workers, n, elapsed.Round(time.Millisecond),
		float64(n)/elapsed.Seconds(), pct(0.50).Round(time.Microsecond), pct(0.95).Round(time.Microsecond))
}
