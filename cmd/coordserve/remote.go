package main

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"entangled/internal/client"
	"entangled/internal/engine"
	"entangled/internal/workload"
)

// toWire converts one produced batch to the client's request shape.
func toWire(batch []engine.Request) []client.Request {
	out := make([]client.Request, len(batch))
	for i, r := range batch {
		out[i] = client.Request{ID: r.ID, Queries: r.Queries}
	}
	return out
}

// drainRemote serves the pre-built load against a remote coordination
// service: `workers` client goroutines pull whole batches from the
// queue and send each as one CoordinateBatch call, so the wire carries
// the same batch boundaries the in-process drain uses. Latencies are
// batch-amortised like drain's, and the wall clock covers the serving
// loop alone — end-to-end numbers honest enough to compare with the
// in-process path.
func drainRemote(target string, batches [][]engine.Request, workers int) ([]time.Duration, time.Duration, error) {
	c, err := client.New(target, client.Options{})
	if err != nil {
		return nil, 0, err
	}
	wire := make([][]client.Request, len(batches))
	for i, b := range batches {
		wire[i] = toWire(b)
	}

	type timing struct {
		batch int
		per   time.Duration
	}
	timings := make(chan timing, len(wire))
	idx := make(chan int)
	var (
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return firstErr != nil
	}
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// A failed worker keeps draining the queue (as no-ops) so the
			// feeder never blocks.
			for i := range idx {
				if failed() {
					continue
				}
				bStart := time.Now()
				resps, err := c.CoordinateBatch(context.Background(), wire[i])
				if err != nil {
					fail(fmt.Errorf("batch %d: %w", i, err))
					continue
				}
				bad := false
				for _, r := range resps {
					if r.Err != nil {
						fail(fmt.Errorf("batch %d, request %s: %w", i, r.ID, r.Err))
						bad = true
						break
					}
				}
				if !bad {
					timings <- timing{batch: i, per: time.Since(bStart) / time.Duration(len(wire[i]))}
				}
			}
		}()
	}
	for i := range wire {
		idx <- i
	}
	close(idx)
	wg.Wait()
	elapsed := time.Since(start)
	close(timings)
	if firstErr != nil {
		return nil, 0, firstErr
	}
	var latencies []time.Duration
	for tm := range timings {
		for range wire[tm.batch] {
			latencies = append(latencies, tm.per)
		}
	}
	return latencies, elapsed, nil
}

// runStreamRemote drives one remote streaming session: the arrival
// sequence is paced exactly like the in-process stream mode, but every
// event is a join/leave round trip against the service, so the
// reported latencies are end-to-end. SIGINT (via ctx) stops feeding
// and reports what was served; the remote session is closed either
// way.
func runStreamRemote(ctx context.Context, target string, cfg streamConfig, w io.Writer) error {
	c, err := client.New(target, client.Options{})
	if err != nil {
		return err
	}
	sess, err := c.CreateSession(ctx, "", cfg.park)
	if err != nil {
		return err
	}
	defer func() {
		cctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := sess.Close(cctx); err != nil {
			fmt.Fprintf(w, "closing session %s: %v\n", sess.ID, err)
		}
	}()
	fmt.Fprintf(w, "remote session %s on %s\n", sess.ID, target)

	arrivals := workload.Arrivals(cfg.pattern, cfg.events, cfg.rows, cfg.seed)
	meanGap := time.Duration(0)
	if cfg.rate > 0 {
		meanGap = time.Duration(float64(time.Second) / cfg.rate)
	}

	var (
		lat    []time.Duration
		dbq    []int64
		dirty  int
		reused int
		served int
	)
	start := time.Now()
loop:
	for _, a := range arrivals {
		if meanGap > 0 {
			select {
			case <-time.After(time.Duration(a.Gap * float64(meanGap))):
			case <-ctx.Done():
				break loop
			}
		}
		if ctx.Err() != nil {
			break
		}
		evStart := time.Now()
		var up = struct {
			Dirty, Reused int
			DBQueries     int64
		}{}
		if a.Leave {
			u, err := sess.Leave(ctx, a.ID)
			if err != nil {
				if ctx.Err() != nil {
					break // interrupted mid-flight: report, don't error
				}
				return fmt.Errorf("leave %s: %w", a.ID, err)
			}
			up.Dirty, up.Reused, up.DBQueries = u.Stats.Dirty, u.Stats.Reused, u.Stats.DBQueries
		} else {
			u, err := sess.Join(ctx, a.Query)
			if err != nil {
				if ctx.Err() != nil {
					break
				}
				return fmt.Errorf("join %s: %w", a.Query.ID, err)
			}
			up.Dirty, up.Reused, up.DBQueries = u.Stats.Dirty, u.Stats.Reused, u.Stats.DBQueries
		}
		served++
		lat = append(lat, time.Since(evStart))
		dbq = append(dbq, up.DBQueries)
		dirty += up.Dirty
		reused += up.Reused
	}
	elapsed := time.Since(start)

	if served < len(arrivals) {
		fmt.Fprintf(w, "stream interrupted after %d/%d events; session closed cleanly\n", served, len(arrivals))
	}
	if served == 0 {
		return nil
	}
	fmt.Fprintf(w, "  %d events in %v (%.1f events/s) end-to-end\n",
		served, elapsed.Round(time.Millisecond), float64(served)/elapsed.Seconds())
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	sort.Slice(dbq, func(i, j int) bool { return dbq[i] < dbq[j] })
	pct := func(p float64) int { return int(p * float64(served-1)) }
	var total int64
	for _, q := range dbq {
		total += q
	}
	fmt.Fprintf(w, "  per-event round trip: p50=%v p95=%v max=%v\n",
		lat[pct(0.50)].Round(time.Microsecond), lat[pct(0.95)].Round(time.Microsecond), lat[served-1].Round(time.Microsecond))
	fmt.Fprintf(w, "  per-event DB queries: p50=%d p95=%d max=%d total=%d\n",
		dbq[pct(0.50)], dbq[pct(0.95)], dbq[served-1], total)
	if solved := dirty + reused; solved > 0 {
		fmt.Fprintf(w, "  components: %d re-solved, %d spliced from cache (%.1f%% splice rate)\n",
			dirty, reused, 100*float64(reused)/float64(solved))
	}
	st, err := sess.Status(ctx, false)
	if err == nil {
		fmt.Fprintf(w, "  final session: %d live queries, team of %d, %d parked\n",
			st.Live, st.TeamSize, st.Parked)
	}
	return nil
}
