package main

import (
	"context"
	"fmt"
	"io"
	"sort"
	"time"

	"entangled/internal/engine"
	"entangled/internal/stream"
	"entangled/internal/workload"
)

// streamConfig is the -stream mode configuration.
type streamConfig struct {
	events  int
	pattern workload.Pattern
	rate    float64 // mean arrival rate in events/second; 0 = full speed
	seed    int64
	rows    int // table rows the generated bodies draw from
	park    bool
}

// runStream serves one streaming session: a producer goroutine paces
// the generated arrival sequence onto a channel (inter-event gaps scale
// the pattern's relative gaps to the target rate) and the session
// drains it, recording per-event latency and database-query cost.
//
// Cancelling ctx (coordserve wires SIGINT to it) is a graceful drain:
// the producer stops feeding, the event in flight finishes — events
// are atomic — the channel closes, and the final session state is
// reported like on a clean finish. The producer goroutine always exits
// before runStream returns, so repeated runs leak nothing.
func runStream(ctx context.Context, e *engine.Engine, cfg streamConfig, w io.Writer) (stream.Totals, error) {
	arrivals := workload.Arrivals(cfg.pattern, cfg.events, cfg.rows, cfg.seed)

	var perEvent []stream.Update
	sess := e.NewSession(stream.Options{
		ParkUnsafe: cfg.park,
		OnUpdate:   func(u stream.Update) { perEvent = append(perEvent, u) },
	})

	meanGap := time.Duration(0)
	if cfg.rate > 0 {
		meanGap = time.Duration(float64(time.Second) / cfg.rate)
	}
	events := make(chan stream.Event)
	producerDone := make(chan struct{})
	go func() {
		defer close(producerDone)
		defer close(events)
		for _, a := range arrivals {
			if meanGap > 0 {
				wait := time.Duration(a.Gap * float64(meanGap))
				select {
				case <-time.After(wait):
				case <-ctx.Done():
					return
				}
			}
			ev := stream.Event{Kind: stream.JoinEvent, Query: a.Query}
			if a.Leave {
				ev = stream.Event{Kind: stream.LeaveEvent, ID: a.ID}
			}
			select {
			case events <- ev:
			case <-ctx.Done():
				return
			}
		}
	}()

	start := time.Now()
	totals, err := sess.Run(ctx, events)
	elapsed := time.Since(start)
	<-producerDone // no goroutine outlives the run

	// Report interruption off the context, not Run's error alone: the
	// producer reacts to the same cancel by closing the channel, and
	// either side of that race is a correctly drained stream.
	if err == nil {
		err = ctx.Err()
	}
	if err != nil {
		fmt.Fprintf(w, "stream interrupted after %d/%d events (%v); draining finished cleanly\n",
			totals.Events, len(arrivals), err)
	}
	reportStream(w, totals, perEvent, elapsed)
	res, rerr := sess.Result()
	if rerr != nil {
		return totals, rerr
	}
	fmt.Fprintf(w, "  final session: %d live queries, team of %d, %d parked\n",
		sess.Size(), res.Size(), sess.ParkedCount())
	return totals, nil
}

// reportStream prints the streaming run's statistics: event throughput,
// per-event latency percentiles, the per-event database-query
// histogram (the delta-cost distribution — the whole point of
// incremental re-coordination), and the splice rate.
func reportStream(w io.Writer, totals stream.Totals, ups []stream.Update, elapsed time.Duration) {
	fmt.Fprintf(w, "  %d events in %v (%.1f events/s): %d joins, %d leaves, %d rejected, %d parked\n",
		totals.Events, elapsed.Round(time.Millisecond),
		float64(totals.Events)/elapsed.Seconds(),
		totals.Joins, totals.Leaves, totals.Rejected, totals.Parked)
	if len(ups) == 0 {
		return
	}
	lat := make([]time.Duration, 0, len(ups))
	dbq := make([]int64, 0, len(ups))
	for _, u := range ups {
		lat = append(lat, u.Elapsed)
		dbq = append(dbq, u.Stats.DBQueries)
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	sort.Slice(dbq, func(i, j int) bool { return dbq[i] < dbq[j] })
	pct := func(p float64) int { return int(p * float64(len(ups)-1)) }
	fmt.Fprintf(w, "  per-event latency: p50=%v p95=%v max=%v\n",
		lat[pct(0.50)].Round(time.Microsecond), lat[pct(0.95)].Round(time.Microsecond), lat[len(lat)-1].Round(time.Microsecond))
	fmt.Fprintf(w, "  per-event DB queries: p50=%d p95=%d max=%d total=%d\n",
		dbq[pct(0.50)], dbq[pct(0.95)], dbq[len(dbq)-1], totals.DBQueries)
	if solved := totals.Dirty + totals.Reused; solved > 0 {
		fmt.Fprintf(w, "  components: %d re-solved, %d spliced from cache (%.1f%% splice rate)\n",
			totals.Dirty, totals.Reused, 100*float64(totals.Reused)/float64(solved))
	}
}
