package main

import (
	"context"
	"runtime"
	"strings"
	"testing"
	"time"

	"entangled/internal/engine"
	"entangled/internal/workload"
)

// TestStreamDrainOnCancel exercises the graceful-drain path under the
// race detector: cancel fires mid-stream, in-flight work finishes, the
// session state is still reported, and no goroutine outlives the run.
func TestStreamDrainOnCancel(t *testing.T) {
	baseline := runtime.NumGoroutine()
	store := workload.NewStore(2, 32, 50*time.Microsecond)
	e := engine.New(store, engine.Options{Workers: 2})

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	var out strings.Builder
	// A paced run long enough (~4s at 1000 events/s) that the cancel
	// always lands mid-stream.
	totals, err := runStream(ctx, e, streamConfig{
		events:  4000,
		pattern: workload.Churn,
		rate:    1000,
		seed:    3,
		rows:    32,
	}, &out)
	if err != nil {
		t.Fatalf("runStream: %v", err)
	}
	if totals.Events <= 0 || totals.Events >= 4000 {
		t.Fatalf("cancel did not land mid-stream: %+v", totals)
	}
	if !strings.Contains(out.String(), "stream interrupted") ||
		!strings.Contains(out.String(), "final session") {
		t.Fatalf("drain report incomplete:\n%s", out.String())
	}

	// The producer goroutine must be gone; allow the runtime a moment.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline {
		t.Fatalf("goroutine leak after drain: %d > %d at start", n, baseline)
	}
}

// TestStreamCleanFinish runs a short stream to completion and checks
// the report accounts for every event.
func TestStreamCleanFinish(t *testing.T) {
	store := workload.NewStore(1, 16, 0)
	e := engine.New(store, engine.Options{Workers: 1})
	var out strings.Builder
	totals, err := runStream(context.Background(), e, streamConfig{
		events:  64,
		pattern: workload.Steady,
		seed:    9,
		rows:    16,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if totals.Events != 64 || totals.Joins != 64 {
		t.Fatalf("totals %+v", totals)
	}
	if strings.Contains(out.String(), "interrupted") {
		t.Fatalf("clean finish reported an interruption:\n%s", out.String())
	}
}
