// Command coordctl evaluates a set of entangled queries from a text
// file against a database loaded from CSV files, using the SCC
// Coordination Algorithm (or the Consistent Coordination Algorithm's
// generic translation via the brute-force solver when -brute is given).
//
// Usage:
//
//	coordctl -queries queries.eq -table Flights=flights.csv [-table Hotels=hotels.csv ...] [-brute]
//
// The query file uses the format of internal/eq:
//
//	query gwyneth {
//	  post: R(Chris, x)
//	  head: R(Gwyneth, x)
//	  body: Flights(x, Zurich)
//	}
//
// A query file ending in .json is decoded with the JSON codec of
// internal/eq instead ("?x" variables, "=v" constants).
//
// Each -table flag names a relation and a headerless CSV file; the
// relation's arity is taken from the first row, and an index is built on
// every column. On success coordctl prints the coordinating set and
// each query's variable assignment.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"entangled/internal/coord"
	"entangled/internal/db"
	"entangled/internal/eq"
)

type tableFlags []string

func (t *tableFlags) String() string { return strings.Join(*t, ",") }
func (t *tableFlags) Set(v string) error {
	*t = append(*t, v)
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "coordctl: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var tables tableFlags
	queries := flag.String("queries", "", "path to the entangled-query file (required)")
	flag.Var(&tables, "table", "relation=file.csv (repeatable)")
	brute := flag.Bool("brute", false, "use the exact brute-force solver (small inputs only)")
	explain := flag.Bool("explain", false, "print a step-by-step trace of the SCC algorithm")
	dot := flag.Bool("dot", false, "print the coordination graph in Graphviz DOT syntax and exit")
	flag.Parse()

	if *queries == "" {
		return fmt.Errorf("-queries is required")
	}
	src, err := os.ReadFile(*queries)
	if err != nil {
		return err
	}
	var qs []eq.Query
	if strings.HasSuffix(*queries, ".json") {
		qs, err = eq.DecodeSet(src)
	} else {
		qs, err = eq.ParseSet(string(src))
	}
	if err != nil {
		return err
	}

	inst := db.NewInstance()
	for _, spec := range tables {
		name, file, ok := strings.Cut(spec, "=")
		if !ok {
			return fmt.Errorf("bad -table %q, want relation=file.csv", spec)
		}
		if err := loadCSV(inst, name, file); err != nil {
			return err
		}
	}
	if err := eq.Validate(qs, inst.Schema()); err != nil {
		return err
	}

	if *dot {
		labels := make([]string, len(qs))
		for i, q := range qs {
			labels[i] = q.ID
		}
		return coord.CoordinationGraph(qs).WriteDOT(os.Stdout, "coordination", labels)
	}

	var res *coord.Result
	var trace *coord.Trace
	if *brute {
		res, err = coord.BruteForceMax(qs, inst)
		if errors.Is(err, coord.ErrTooManyQueries) {
			return fmt.Errorf("[%s] %w; drop -brute to use the polynomial SCC algorithm (the query set must be safe)", coord.Code(err), err)
		}
	} else {
		if *explain {
			trace = &coord.Trace{}
		}
		res, err = coord.SCCCoordinate(qs, inst, coord.Options{Trace: trace})
	}
	if err != nil {
		return err
	}
	if trace != nil {
		if err := trace.Render(os.Stdout, qs); err != nil {
			return err
		}
		fmt.Println()
	}
	if res == nil {
		fmt.Println("no coordinating set exists")
		return nil
	}
	fmt.Printf("coordinating set (%d of %d queries), %d database queries:\n",
		res.Size(), len(qs), res.DBQueries)
	for _, i := range res.Set {
		fmt.Printf("  %s:", qs[i].ID)
		vals := res.Values[i]
		names := make([]string, 0, len(vals))
		for v := range vals {
			names = append(names, v)
		}
		sort.Strings(names)
		for _, v := range names {
			fmt.Printf(" %s=%s", v, vals[v])
		}
		fmt.Println()
	}
	if err := coord.Verify(qs, res.Set, res.Values, inst); err != nil {
		return fmt.Errorf("internal error: result failed verification: %v", err)
	}
	return nil
}

func loadCSV(inst *db.Instance, name, file string) error {
	f, err := os.Open(file)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = inst.LoadCSV(name, f)
	return err
}
