// Command coordbench regenerates the figures of the paper's
// experimental evaluation (§6) and prints one table per figure.
//
// Usage:
//
//	coordbench [-fig all|4|5|6|7|8|ablations|parallel] [-rows N] [-seeds N] [-repeats N] [-parallel N] [-shards K] [-csv]
//
// -rows controls the size of the queried table for Figures 4 and 5 (the
// paper uses the 82,168-row Slashdot table; that is the default). -csv
// switches the output format for downstream plotting. -parallel runs
// the SCC algorithm's per-component searches on a worker pool of the
// given size; -fig parallel sweeps batched CoordinateMany throughput
// (sequential against the pool). -shards hash-partitions the queried
// table across K db.Instance shards in the -fig parallel sweep, so
// concurrent requests route to disjoint shard locks.
package main

import (
	"flag"
	"fmt"
	"os"

	"entangled/internal/experiments"
	"entangled/internal/netgen"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: all, 4, 5, 6, 7, 8, ablations or parallel")
	rows := flag.Int("rows", netgen.SlashdotSize, "queried-table rows for figures 4-5")
	seeds := flag.Int("seeds", 10, "random graphs averaged per point (figures 5-6)")
	repeats := flag.Int("repeats", 3, "timed runs averaged per point")
	csv := flag.Bool("csv", false, "emit CSV instead of tables")
	markdown := flag.Bool("markdown", false, "emit a markdown report (EXPERIMENTS.md style)")
	latency := flag.Duration("latency", 0, "simulated per-database-query latency (e.g. 1ms to model the paper's MySQL round trips)")
	parallel := flag.Int("parallel", 1, "worker goroutines for the SCC per-component searches (1 = the paper's sequential walk)")
	shards := flag.Int("shards", 1, "hash-partition the queried table across this many shards in -fig parallel (1 = one shared instance)")
	flag.Parse()

	cfg := experiments.Config{TableRows: *rows, Seeds: *seeds, Repeats: *repeats, Latency: *latency, Parallel: *parallel, Shards: *shards}
	var series []experiments.Series
	switch *fig {
	case "all":
		series = experiments.All(cfg)
	case "4":
		series = []experiments.Series{experiments.Figure4(cfg)}
	case "5":
		series = []experiments.Series{experiments.Figure5(cfg)}
	case "6":
		series = []experiments.Series{experiments.Figure6(cfg)}
	case "7":
		series = []experiments.Series{experiments.Figure7(cfg)}
	case "8":
		series = []experiments.Series{experiments.Figure8(cfg)}
	case "ablations":
		series = experiments.Ablations(cfg)
	case "parallel":
		series = experiments.ParallelBatch(cfg)
	default:
		fmt.Fprintf(os.Stderr, "coordbench: unknown figure %q\n", *fig)
		os.Exit(2)
	}
	if *markdown {
		fmt.Print(experiments.MarkdownReport("Reproduced figures", series))
		return
	}
	for i, s := range series {
		if i > 0 {
			fmt.Println()
		}
		if *csv {
			fmt.Printf("# %s\n%s", s.Name, s.CSV())
		} else {
			fmt.Print(s.Render())
		}
	}
}
