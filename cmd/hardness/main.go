// Command hardness demonstrates the paper's §3 reductions end to end:
// it takes a 3SAT formula (from a DIMACS file or randomly generated),
// decides it with the DPLL solver, builds the Theorem 1 and Theorem 2
// entangled-query instances, solves them exactly with the brute-force
// coordinating-set solver, and reports whether the theorems' promised
// equivalences hold on this instance.
//
// Usage:
//
//	hardness -dimacs formula.cnf
//	hardness -vars 3 -clauses 5 -seed 7
//
// Keep instances small (the exact solver enumerates subsets): at most
// ~5 variables and ~4 clauses is comfortable.
package main

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"entangled/internal/coord"
	"entangled/internal/sat"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "hardness: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	dimacs := flag.String("dimacs", "", "DIMACS CNF file (3 literals per clause for Theorem 2)")
	vars := flag.Int("vars", 3, "variables for a random formula")
	clauses := flag.Int("clauses", 3, "clauses for a random formula")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	var f sat.Formula
	if *dimacs != "" {
		file, err := os.Open(*dimacs)
		if err != nil {
			return err
		}
		defer file.Close()
		f, err = sat.ParseDIMACS(file)
		if err != nil {
			return err
		}
	} else {
		f = sat.Random3SAT(*vars, *clauses, rand.New(rand.NewSource(*seed)))
	}
	fmt.Printf("formula: %s\n", f)

	assign, satisfiable := f.Solve()
	if satisfiable {
		fmt.Printf("DPLL: satisfiable, e.g.")
		for v := 1; v <= f.NumVars; v++ {
			fmt.Printf(" x%d=%v", v, assign[v])
		}
		fmt.Println()
	} else {
		fmt.Println("DPLL: unsatisfiable")
	}

	// Theorem 1: coordinating set exists iff satisfiable, over a trivial
	// database.
	in1, err := sat.ReduceTheorem1(f)
	if err != nil {
		return err
	}
	exists, err := coord.BruteForceExists(in1.Queries, in1.DB)
	if errors.Is(err, coord.ErrTooManyQueries) {
		return fmt.Errorf("[%s] %w; the reduction produced %d queries — shrink the formula (at most ~5 variables and ~4 clauses)", coord.Code(err), err, len(in1.Queries))
	}
	if err != nil {
		return err
	}
	fmt.Printf("\nTheorem 1 instance: %d entangled queries over D = {0, 1}\n", len(in1.Queries))
	fmt.Printf("  coordinating set exists: %v — equivalence %s\n", exists, verdict(exists == satisfiable))

	// Theorem 2: maximum coordinating set = k+m iff satisfiable, with a
	// safe query set.
	in2, err := sat.ReduceTheorem2(f)
	if err != nil {
		fmt.Printf("\nTheorem 2 skipped: %v\n", err)
		return nil
	}
	max, err := coord.BruteForceMax(in2.Queries, in2.DB)
	if errors.Is(err, coord.ErrTooManyQueries) {
		return fmt.Errorf("[%s] %w; the reduction produced %d queries — shrink the formula", coord.Code(err), err, len(in2.Queries))
	}
	if err != nil {
		return err
	}
	fmt.Printf("\nTheorem 2 instance: %d safe entangled queries, target k+m = %d\n", len(in2.Queries), in2.Target)
	fmt.Printf("  safe: %v, maximum coordinating set: %d — equivalence %s\n",
		coord.IsSafe(in2.Queries), max.Size(), verdict((max.Size() == in2.Target) == satisfiable))

	// Appendix B: the mixed-coordination-attribute construction.
	inB, err := sat.ReduceAppendixB(f)
	if err != nil {
		return err
	}
	existsB, err := coord.BruteForceExists(inB.Queries, inB.DB)
	if errors.Is(err, coord.ErrTooManyQueries) {
		return fmt.Errorf("[%s] %w; the reduction produced %d queries — shrink the formula", coord.Code(err), err, len(inB.Queries))
	}
	if err != nil {
		return err
	}
	fmt.Printf("\nAppendix B instance: %d unsafe entangled queries\n", len(inB.Queries))
	fmt.Printf("  coordinating set exists: %v — equivalence %s\n", existsB, verdict(existsB == satisfiable))
	return nil
}

func verdict(ok bool) string {
	if ok {
		return "HOLDS"
	}
	return "VIOLATED (bug!)"
}
