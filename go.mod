module entangled

go 1.24
