package unify

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"entangled/internal/eq"
)

func TestUnifyVarVar(t *testing.T) {
	s := New()
	if err := s.UnifyTerms(eq.V("x"), eq.V("y")); err != nil {
		t.Fatal(err)
	}
	if !s.SameClass("x", "y") {
		t.Fatal("x and y must be in the same class")
	}
}

func TestUnifyVarConst(t *testing.T) {
	s := New()
	if err := s.UnifyTerms(eq.V("x"), eq.C("Zurich")); err != nil {
		t.Fatal(err)
	}
	v, ok := s.Value("x")
	if !ok || v != "Zurich" {
		t.Fatalf("x = %v, %v", v, ok)
	}
	if got := s.Resolve(eq.V("x")); got != eq.C("Zurich") {
		t.Fatalf("Resolve(x) = %v", got)
	}
}

func TestUnifyConstClash(t *testing.T) {
	s := New()
	if err := s.UnifyTerms(eq.C("a"), eq.C("b")); !errors.Is(err, ErrClash) {
		t.Fatalf("want ErrClash, got %v", err)
	}
}

func TestBindingPropagatesThroughUnion(t *testing.T) {
	s := New()
	if err := s.UnifyTerms(eq.V("x"), eq.V("y")); err != nil {
		t.Fatal(err)
	}
	if err := s.Bind("x", "c"); err != nil {
		t.Fatal(err)
	}
	v, ok := s.Value("y")
	if !ok || v != "c" {
		t.Fatalf("y should inherit x's binding, got %v %v", v, ok)
	}
	// Conflicting bind through the other class member fails.
	if err := s.Bind("y", "d"); !errors.Is(err, ErrClash) {
		t.Fatalf("want ErrClash, got %v", err)
	}
}

func TestUnionOfTwoBoundClassesSameConst(t *testing.T) {
	s := New()
	if err := s.Bind("x", "c"); err != nil {
		t.Fatal(err)
	}
	if err := s.Bind("y", "c"); err != nil {
		t.Fatal(err)
	}
	if err := s.UnifyTerms(eq.V("x"), eq.V("y")); err != nil {
		t.Fatalf("same-constant classes must merge: %v", err)
	}
	if err := s.Bind("z", "d"); err != nil {
		t.Fatal(err)
	}
	if err := s.UnifyTerms(eq.V("x"), eq.V("z")); !errors.Is(err, ErrClash) {
		t.Fatalf("want ErrClash merging c-class with d-class, got %v", err)
	}
}

func TestUnifyAtoms(t *testing.T) {
	s := New()
	a := eq.NewAtom("R", eq.C("G"), eq.V("x1"))
	b := eq.NewAtom("R", eq.C("G"), eq.V("y1"))
	if err := s.UnifyAtoms(a, b); err != nil {
		t.Fatal(err)
	}
	if !s.SameClass("x1", "y1") {
		t.Fatal("x1 and y1 must be unified")
	}
}

func TestUnifyAtomsMismatch(t *testing.T) {
	s := New()
	if err := s.UnifyAtoms(eq.NewAtom("R", eq.V("x")), eq.NewAtom("Q", eq.V("x"))); err == nil {
		t.Fatal("different relations must not unify")
	}
	if err := s.UnifyAtoms(eq.NewAtom("R", eq.V("x")), eq.NewAtom("R", eq.V("x"), eq.V("y"))); err == nil {
		t.Fatal("different arities must not unify")
	}
}

func TestUnifiablePaperExamples(t *testing.T) {
	// From §2.3: R(C, x1) and R(C, y1) are unifiable whereas R(C, x1)
	// and R(G, y1) are not.
	if !Unifiable(eq.NewAtom("R", eq.C("C"), eq.V("x1")), eq.NewAtom("R", eq.C("C"), eq.V("y1"))) {
		t.Fatal("R(C, x1) ~ R(C, y1) must unify")
	}
	if Unifiable(eq.NewAtom("R", eq.C("C"), eq.V("x1")), eq.NewAtom("R", eq.C("G"), eq.V("y1"))) {
		t.Fatal("R(C, x1) ~ R(G, y1) must not unify")
	}
}

func TestApply(t *testing.T) {
	s := New()
	if err := s.UnifyAtoms(eq.NewAtom("R", eq.V("x"), eq.V("y")), eq.NewAtom("R", eq.C("a"), eq.V("z"))); err != nil {
		t.Fatal(err)
	}
	got := s.Apply(eq.NewAtom("T", eq.V("x"), eq.V("y"), eq.V("w")))
	if got.Args[0] != eq.C("a") {
		t.Fatalf("x should resolve to a: %v", got)
	}
	if !got.Args[1].IsVar() {
		t.Fatalf("y stays a variable: %v", got)
	}
	// y and z resolve to the same representative.
	if s.Resolve(eq.V("y")) != s.Resolve(eq.V("z")) {
		t.Fatal("y and z must share a representative")
	}
}

func TestCloneIndependence(t *testing.T) {
	s := New()
	if err := s.Bind("x", "a"); err != nil {
		t.Fatal(err)
	}
	c := s.Clone()
	if err := c.Bind("y", "b"); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Value("y"); ok {
		t.Fatal("binding in clone must not leak into original")
	}
	if v, ok := c.Value("x"); !ok || v != "a" {
		t.Fatal("clone must keep original bindings")
	}
}

func TestBindings(t *testing.T) {
	s := New()
	_ = s.UnifyTerms(eq.V("x"), eq.V("y"))
	_ = s.Bind("x", "c")
	_ = s.UnifyTerms(eq.V("free1"), eq.V("free2"))
	b := s.Bindings()
	if b["x"] != "c" || b["y"] != "c" {
		t.Fatalf("Bindings = %v", b)
	}
	if _, ok := b["free1"]; ok {
		t.Fatal("unbound variables must not appear in Bindings")
	}
}

func TestMGU(t *testing.T) {
	s, err := MGU([][2]eq.Atom{
		{eq.NewAtom("R", eq.V("x"), eq.C("a")), eq.NewAtom("R", eq.V("y"), eq.V("z"))},
		{eq.NewAtom("Q", eq.V("y")), eq.NewAtom("Q", eq.C("b"))},
	})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Value("x"); v != "b" {
		t.Fatalf("x = %v, want b (via y)", v)
	}
	if v, _ := s.Value("z"); v != "a" {
		t.Fatalf("z = %v, want a", v)
	}
	if _, err := MGU([][2]eq.Atom{
		{eq.NewAtom("R", eq.C("a")), eq.NewAtom("R", eq.C("b"))},
	}); err == nil {
		t.Fatal("clash must surface")
	}
}

// randomAtom builds an atom over a small pool of variables and constants
// so collisions are common.
func randomAtom(rng *rand.Rand, rel string, arity int) eq.Atom {
	args := make([]eq.Term, arity)
	for i := range args {
		if rng.Intn(2) == 0 {
			args[i] = eq.V(string(rune('u' + rng.Intn(6))))
		} else {
			args[i] = eq.C(eq.Value(string(rune('A' + rng.Intn(3)))))
		}
	}
	return eq.Atom{Rel: rel, Args: args}
}

// Property: unification is symmetric — unify(a,b) succeeds iff
// unify(b,a) succeeds, and the resolved atoms agree.
func TestQuickUnifySymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func() bool {
		a := randomAtom(rng, "R", 3)
		b := randomAtom(rng, "R", 3)
		s1, s2 := New(), New()
		err1 := s1.UnifyAtoms(a, b)
		err2 := s2.UnifyAtoms(b, a)
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		if err1 != nil {
			return true
		}
		return s1.Apply(a).Equal(s1.Apply(b)) && s2.Apply(a).Equal(s2.Apply(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: after a successful unification, applying the substitution
// makes the two atoms syntactically equal (the defining property of a
// unifier), and applying it twice changes nothing (idempotence).
func TestQuickUnifierIsFixpoint(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func() bool {
		a := randomAtom(rng, "R", 4)
		b := randomAtom(rng, "R", 4)
		s := New()
		if err := s.UnifyAtoms(a, b); err != nil {
			return true // nothing to check
		}
		ra, rb := s.Apply(a), s.Apply(b)
		if !ra.Equal(rb) {
			return false
		}
		return s.Apply(ra).Equal(ra) && s.Apply(rb).Equal(rb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: Unifiable follows the paper's positional definition — it
// holds exactly when no position carries two distinct constants — and is
// complete for groundability: whenever independent groundings of the two
// atoms (variables in disjoint namespaces) can make them equal, the
// atoms are Unifiable. The converse fails by design for repeated
// variables (R(y, y) vs R(A, B)), which the MGU re-check catches later.
func TestQuickUnifiablePositional(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	domain := []eq.Value{"A", "B", "C"}
	f := func() bool {
		a := randomAtom(rng, "R", 2) // arity 2 keeps brute force cheap
		b := randomAtom(rng, "R", 2)
		ok := Unifiable(a, b)
		// Positional definition, computed independently.
		positional := true
		for i := range a.Args {
			if !a.Args[i].IsVar() && !b.Args[i].IsVar() && a.Args[i].Name != b.Args[i].Name {
				positional = false
			}
		}
		if ok != positional {
			return false
		}
		// Completeness: ground a and b independently (disjoint variable
		// namespaces) and look for a common instance.
		bRenamed := b.Clone()
		for i, tm := range bRenamed.Args {
			if tm.IsVar() {
				bRenamed.Args[i] = eq.V("rhs." + tm.Name)
			}
		}
		vars := map[string]bool{}
		for _, at := range []eq.Atom{a, bRenamed} {
			for _, tm := range at.Args {
				if tm.IsVar() {
					vars[tm.Name] = true
				}
			}
		}
		var names []string
		for v := range vars {
			names = append(names, v)
		}
		found := false
		var rec func(i int, m map[string]eq.Value)
		rec = func(i int, m map[string]eq.Value) {
			if found {
				return
			}
			if i == len(names) {
				if groundWith(a, m).Equal(groundWith(bRenamed, m)) {
					found = true
				}
				return
			}
			for _, d := range domain {
				m[names[i]] = d
				rec(i+1, m)
			}
		}
		rec(0, map[string]eq.Value{})
		if found && !ok {
			return false // groundable but rejected: incompleteness
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func groundWith(a eq.Atom, m map[string]eq.Value) eq.Atom {
	out := a.Clone()
	for i, t := range out.Args {
		if t.IsVar() {
			out.Args[i] = eq.C(m[t.Name])
		}
	}
	return out
}

// Property: Bindings and Resolve agree.
func TestQuickBindingsMatchResolve(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func() bool {
		s := New()
		for i := 0; i < 10; i++ {
			a := randomAtom(rng, "R", 2)
			b := randomAtom(rng, "R", 2)
			if err := s.UnifyAtoms(a, b); err != nil {
				s = New()
			}
		}
		for v, c := range s.Bindings() {
			r := s.Resolve(eq.V(v))
			if r.IsVar() || r.Const() != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestVarsSorted(t *testing.T) {
	s := New()
	_ = s.UnifyTerms(eq.V("zeta"), eq.V("alpha"))
	got := s.Vars()
	want := []string{"alpha", "zeta"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Vars = %v, want %v", got, want)
	}
}

func TestMergeFrom(t *testing.T) {
	a := New()
	_ = a.UnifyTerms(eq.V("x"), eq.V("y"))
	_ = a.Bind("x", "c")
	b := New()
	_ = b.UnifyTerms(eq.V("y"), eq.V("z"))
	if err := b.MergeFrom(a); err != nil {
		t.Fatal(err)
	}
	// Transitivity across the merge: z inherits x's binding via y.
	if v, ok := b.Value("z"); !ok || v != "c" {
		t.Fatalf("z = %v %v, want c", v, ok)
	}
	// The source is logically unchanged.
	if _, ok := a.Value("z"); ok {
		t.Fatal("merge must not modify the source")
	}
}

func TestMergeFromClash(t *testing.T) {
	a := New()
	_ = a.Bind("v", "1")
	b := New()
	_ = b.Bind("v", "2")
	if err := b.MergeFrom(a); !errors.Is(err, ErrClash) {
		t.Fatalf("want ErrClash, got %v", err)
	}
}

// Property: merging two substitutions is equivalent to replaying both
// construction traces into a fresh substitution.
func TestQuickMergeEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func() bool {
		type step struct{ a, b eq.Atom }
		mk := func(n int) ([]step, *Subst, bool) {
			s := New()
			var steps []step
			for i := 0; i < n; i++ {
				x, y := randomAtom(rng, "R", 2), randomAtom(rng, "R", 2)
				if err := s.UnifyAtoms(x, y); err != nil {
					return nil, nil, false
				}
				steps = append(steps, step{x, y})
			}
			return steps, s, true
		}
		stepsA, sa, okA := mk(1 + rng.Intn(4))
		stepsB, sb, okB := mk(1 + rng.Intn(4))
		if !okA || !okB {
			return true
		}
		merged := sa.Clone()
		errMerge := merged.MergeFrom(sb)

		replay := New()
		var errReplay error
		for _, st := range append(append([]step{}, stepsA...), stepsB...) {
			if err := replay.UnifyAtoms(st.a, st.b); err != nil {
				errReplay = err
				break
			}
		}
		if (errMerge == nil) != (errReplay == nil) {
			return false
		}
		if errMerge != nil {
			return true
		}
		// Same classes and bindings for every variable either saw.
		for _, v := range replay.Vars() {
			rm := merged.Resolve(eq.V(v))
			rr := replay.Resolve(eq.V(v))
			if rm.IsVar() != rr.IsVar() {
				return false
			}
			if !rm.IsVar() && rm.Const() != rr.Const() {
				return false
			}
		}
		// Class structure agrees pairwise.
		vars := replay.Vars()
		for i := 0; i < len(vars); i++ {
			for j := i + 1; j < len(vars); j++ {
				if merged.SameClass(vars[i], vars[j]) != replay.SameClass(vars[i], vars[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
