// Package unify implements unification of entangled-query atoms.
//
// The coordination algorithms of Mamouras et al. repeatedly unify
// postcondition atoms with head atoms and maintain the most general
// unifier (MGU) of a growing group of queries. A substitution is kept as
// a union-find structure over variable names; every equivalence class may
// carry at most one constant binding.
package unify
