package unify

import (
	"errors"
	"fmt"
	"sort"

	"entangled/internal/eq"
)

// ErrClash is returned when unification would force two distinct
// constants to be equal.
var ErrClash = errors.New("unify: constant clash")

// Subst is a substitution: a union-find forest over variable names, each
// class optionally bound to a constant. The zero value is not usable;
// call New.
//
// Variable names are interned to dense integer ids on first sight, so
// the forest lives in one flat node slice: find/union touch no maps
// beyond the one name -> id lookup, and path compression is a slice
// store instead of a map assignment. This matters because the SCC walk
// re-unifies every reachable component per candidate — union-find is a
// top entry in the coordination profiles.
type Subst struct {
	ids   map[string]int // variable name -> dense id
	names []string       // id -> name
	nodes []node         // id -> forest node
}

// node is one union-find entry: parent link, union-by-rank rank
// (log2(#vars) fits an int8 easily) and, on roots, the class's constant
// binding.
type node struct {
	parent int32
	rank   int8
	bok    bool
	val    eq.Value
}

// New returns an empty substitution.
func New() *Subst {
	return &Subst{ids: map[string]int{}}
}

// NewSized returns an empty substitution with capacity for about n
// variables preallocated, sparing the incremental growth when the
// caller knows the scale (the SCC walk sizes it from the candidate
// set).
func NewSized(n int) *Subst {
	return &Subst{
		ids:   make(map[string]int, n),
		names: make([]string, 0, n),
		nodes: make([]node, 0, n),
	}
}

// Clone returns an independent deep copy of s.
func (s *Subst) Clone() *Subst {
	c := &Subst{
		ids:   make(map[string]int, len(s.ids)),
		names: append([]string(nil), s.names...),
		nodes: append([]node(nil), s.nodes...),
	}
	for k, v := range s.ids {
		c.ids[k] = v
	}
	return c
}

// id interns a variable name, recording it in the forest on first
// sight (its own singleton class).
func (s *Subst) id(v string) int {
	i, ok := s.ids[v]
	if !ok {
		i = len(s.names)
		s.ids[v] = i
		s.names = append(s.names, v)
		s.nodes = append(s.nodes, node{parent: int32(i)})
	}
	return i
}

// findID returns the root of i's class, halving the path on the way.
func (s *Subst) findID(i int) int {
	for int(s.nodes[i].parent) != i {
		next := int(s.nodes[i].parent)
		s.nodes[i].parent = s.nodes[next].parent // path halving
		i = next
	}
	return i
}

func (s *Subst) find(v string) string {
	return s.names[s.findID(s.id(v))]
}

// union merges the classes of variables a and b, keeping constant
// bindings consistent.
func (s *Subst) union(a, b string) error {
	ra, rb := s.findID(s.id(a)), s.findID(s.id(b))
	if ra == rb {
		return nil
	}
	na, nb := &s.nodes[ra], &s.nodes[rb]
	if na.bok && nb.bok && na.val != nb.val {
		return fmt.Errorf("%w: %s=%s vs %s=%s", ErrClash, a, na.val, b, nb.val)
	}
	if na.rank < nb.rank {
		ra, rb = rb, ra
		na, nb = nb, na
	}
	nb.parent = int32(ra)
	if na.rank == nb.rank {
		na.rank++
	}
	// The merged class keeps whichever constant either side had (they
	// are equal when both exist); the binding must live on the new root.
	if nb.bok {
		na.bok, na.val = true, nb.val
	}
	nb.bok, nb.val = false, ""
	return nil
}

// bindConst binds variable v's class to constant c.
func (s *Subst) bindConst(v string, c eq.Value) error {
	n := &s.nodes[s.findID(s.id(v))]
	if n.bok {
		if n.val != c {
			return fmt.Errorf("%w: %s bound to %s, cannot bind %s", ErrClash, v, n.val, c)
		}
		return nil
	}
	n.bok, n.val = true, c
	return nil
}

// Bind records that variable v must equal constant c.
func (s *Subst) Bind(v string, c eq.Value) error { return s.bindConst(v, c) }

// UnifyTerms makes terms a and b equal under s, or returns ErrClash.
func (s *Subst) UnifyTerms(a, b eq.Term) error {
	switch {
	case a.IsVar() && b.IsVar():
		return s.union(a.Name, b.Name)
	case a.IsVar():
		return s.bindConst(a.Name, b.Const())
	case b.IsVar():
		return s.bindConst(b.Name, a.Const())
	default:
		if a.Const() != b.Const() {
			return fmt.Errorf("%w: %s vs %s", ErrClash, a.Const(), b.Const())
		}
		return nil
	}
}

// UnifyAtoms makes atoms a and b equal under s. The atoms must be over
// the same relation with the same arity; otherwise an error is returned
// without modifying semantics (callers should treat it as failure).
func (s *Subst) UnifyAtoms(a, b eq.Atom) error {
	if a.Rel != b.Rel {
		return fmt.Errorf("unify: relation mismatch %s vs %s", a.Rel, b.Rel)
	}
	if len(a.Args) != len(b.Args) {
		return fmt.Errorf("unify: arity mismatch %s vs %s", a, b)
	}
	for i := range a.Args {
		if err := s.UnifyTerms(a.Args[i], b.Args[i]); err != nil {
			return err
		}
	}
	return nil
}

// Resolve returns the canonical form of t under s: constants are
// unchanged, variables are replaced by their class constant if bound,
// otherwise by the class representative variable.
func (s *Subst) Resolve(t eq.Term) eq.Term {
	if !t.IsVar() {
		return t
	}
	r := s.findID(s.id(t.Name))
	if n := &s.nodes[r]; n.bok {
		return eq.C(n.val)
	}
	return eq.V(s.names[r])
}

// Apply returns a copy of atom a with every term resolved under s.
func (s *Subst) Apply(a eq.Atom) eq.Atom {
	out := eq.Atom{Rel: a.Rel, Args: make([]eq.Term, len(a.Args))}
	for i, t := range a.Args {
		out.Args[i] = s.Resolve(t)
	}
	return out
}

// ApplyAll maps Apply over a list of atoms.
func (s *Subst) ApplyAll(as []eq.Atom) []eq.Atom {
	out := make([]eq.Atom, len(as))
	for i, a := range as {
		out[i] = s.Apply(a)
	}
	return out
}

// Value returns the constant bound to variable v, if any.
func (s *Subst) Value(v string) (eq.Value, bool) {
	n := &s.nodes[s.findID(s.id(v))]
	return n.val, n.bok
}

// SameClass reports whether variables a and b have been unified.
func (s *Subst) SameClass(a, b string) bool {
	return s.findID(s.id(a)) == s.findID(s.id(b))
}

// Bindings returns all variable -> constant bindings induced by s,
// covering every variable s has seen whose class is bound.
func (s *Subst) Bindings() map[string]eq.Value {
	out := map[string]eq.Value{}
	for i, v := range s.names {
		if n := &s.nodes[s.findID(i)]; n.bok {
			out[v] = n.val
		}
	}
	return out
}

// Vars returns every variable name recorded in s, sorted.
func (s *Subst) Vars() []string {
	out := append([]string(nil), s.names...)
	sort.Strings(out)
	return out
}

// Unifiable reports whether two atoms unify per the paper's §2.3
// definition: they are over the same relation and do not contain
// different constants in the same position. The two atoms come from
// different queries, so their variables live in disjoint namespaces —
// only constant clashes matter, and the check allocates nothing. (An
// edge admitted here can still fail the full MGU computation later, e.g.
// R(y, y) against R(A, B); the coordination algorithms re-check with
// UnifyAtoms on alpha-renamed atoms.)
func Unifiable(a, b eq.Atom) bool {
	if a.Rel != b.Rel || len(a.Args) != len(b.Args) {
		return false
	}
	for i := range a.Args {
		ta, tb := a.Args[i], b.Args[i]
		if !ta.IsVar() && !tb.IsVar() && ta.Name != tb.Name {
			return false
		}
	}
	return true
}

// MGU computes the most general unifier of the given atom pairs: for
// every pair, the two atoms are made equal. Returns nil and an error on
// clash.
func MGU(pairs [][2]eq.Atom) (*Subst, error) {
	s := New()
	for _, p := range pairs {
		if err := s.UnifyAtoms(p[0], p[1]); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// MergeFrom replays every equivalence and constant binding of other into
// s. It fails with ErrClash when other's constraints contradict s's —
// which happens when two independently consistent substitutions disagree
// (e.g. each binds a shared variable to a different constant). other is
// not modified logically (only its internal path compression advances).
func (s *Subst) MergeFrom(other *Subst) error {
	for i, v := range other.names {
		r := other.findID(i)
		if i != r {
			if err := s.union(v, other.names[r]); err != nil {
				return err
			}
		} else {
			s.id(v) // make sure lone variables are recorded
		}
		if n := &other.nodes[r]; n.bok {
			if err := s.bindConst(v, n.val); err != nil {
				return err
			}
		}
	}
	return nil
}
