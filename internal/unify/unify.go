package unify

import (
	"errors"
	"fmt"
	"sort"

	"entangled/internal/eq"
)

// ErrClash is returned when unification would force two distinct
// constants to be equal.
var ErrClash = errors.New("unify: constant clash")

// Subst is a substitution: a union-find forest over variable names, each
// class optionally bound to a constant. The zero value is not usable;
// call New.
type Subst struct {
	parent map[string]string
	rank   map[string]int
	bound  map[string]eq.Value // root -> constant binding
}

// New returns an empty substitution.
func New() *Subst {
	return &Subst{
		parent: map[string]string{},
		rank:   map[string]int{},
		bound:  map[string]eq.Value{},
	}
}

// Clone returns an independent deep copy of s.
func (s *Subst) Clone() *Subst {
	c := &Subst{
		parent: make(map[string]string, len(s.parent)),
		rank:   make(map[string]int, len(s.rank)),
		bound:  make(map[string]eq.Value, len(s.bound)),
	}
	for k, v := range s.parent {
		c.parent[k] = v
	}
	for k, v := range s.rank {
		c.rank[k] = v
	}
	for k, v := range s.bound {
		c.bound[k] = v
	}
	return c
}

func (s *Subst) find(v string) string {
	p, ok := s.parent[v]
	if !ok {
		s.parent[v] = v
		return v
	}
	if p == v {
		return v
	}
	root := s.find(p)
	s.parent[v] = root // path compression
	return root
}

// union merges the classes of variables a and b, keeping constant
// bindings consistent.
func (s *Subst) union(a, b string) error {
	ra, rb := s.find(a), s.find(b)
	if ra == rb {
		return nil
	}
	ca, haveA := s.bound[ra]
	cb, haveB := s.bound[rb]
	if haveA && haveB && ca != cb {
		return fmt.Errorf("%w: %s=%s vs %s=%s", ErrClash, a, ca, b, cb)
	}
	if s.rank[ra] < s.rank[rb] {
		ra, rb = rb, ra
		cb, haveB = ca, haveA
	}
	s.parent[rb] = ra
	if s.rank[ra] == s.rank[rb] {
		s.rank[ra]++
	}
	// The merged class keeps whichever constant either side had (they
	// are equal when both exist); the binding must live on the new root.
	if haveB {
		s.bound[ra] = cb
	}
	delete(s.bound, rb)
	return nil
}

// bindConst binds variable v's class to constant c.
func (s *Subst) bindConst(v string, c eq.Value) error {
	r := s.find(v)
	if cur, ok := s.bound[r]; ok {
		if cur != c {
			return fmt.Errorf("%w: %s bound to %s, cannot bind %s", ErrClash, v, cur, c)
		}
		return nil
	}
	s.bound[r] = c
	return nil
}

// Bind records that variable v must equal constant c.
func (s *Subst) Bind(v string, c eq.Value) error { return s.bindConst(v, c) }

// UnifyTerms makes terms a and b equal under s, or returns ErrClash.
func (s *Subst) UnifyTerms(a, b eq.Term) error {
	switch {
	case a.IsVar() && b.IsVar():
		return s.union(a.Name, b.Name)
	case a.IsVar():
		return s.bindConst(a.Name, b.Const())
	case b.IsVar():
		return s.bindConst(b.Name, a.Const())
	default:
		if a.Const() != b.Const() {
			return fmt.Errorf("%w: %s vs %s", ErrClash, a.Const(), b.Const())
		}
		return nil
	}
}

// UnifyAtoms makes atoms a and b equal under s. The atoms must be over
// the same relation with the same arity; otherwise an error is returned
// without modifying semantics (callers should treat it as failure).
func (s *Subst) UnifyAtoms(a, b eq.Atom) error {
	if a.Rel != b.Rel {
		return fmt.Errorf("unify: relation mismatch %s vs %s", a.Rel, b.Rel)
	}
	if len(a.Args) != len(b.Args) {
		return fmt.Errorf("unify: arity mismatch %s vs %s", a, b)
	}
	for i := range a.Args {
		if err := s.UnifyTerms(a.Args[i], b.Args[i]); err != nil {
			return err
		}
	}
	return nil
}

// Resolve returns the canonical form of t under s: constants are
// unchanged, variables are replaced by their class constant if bound,
// otherwise by the class representative variable.
func (s *Subst) Resolve(t eq.Term) eq.Term {
	if !t.IsVar() {
		return t
	}
	r := s.find(t.Name)
	if c, ok := s.bound[r]; ok {
		return eq.C(c)
	}
	return eq.V(r)
}

// Apply returns a copy of atom a with every term resolved under s.
func (s *Subst) Apply(a eq.Atom) eq.Atom {
	out := eq.Atom{Rel: a.Rel, Args: make([]eq.Term, len(a.Args))}
	for i, t := range a.Args {
		out.Args[i] = s.Resolve(t)
	}
	return out
}

// ApplyAll maps Apply over a list of atoms.
func (s *Subst) ApplyAll(as []eq.Atom) []eq.Atom {
	out := make([]eq.Atom, len(as))
	for i, a := range as {
		out[i] = s.Apply(a)
	}
	return out
}

// Value returns the constant bound to variable v, if any.
func (s *Subst) Value(v string) (eq.Value, bool) {
	c, ok := s.bound[s.find(v)]
	return c, ok
}

// SameClass reports whether variables a and b have been unified.
func (s *Subst) SameClass(a, b string) bool {
	return s.find(a) == s.find(b)
}

// Bindings returns all variable -> constant bindings induced by s,
// covering every variable s has seen whose class is bound.
func (s *Subst) Bindings() map[string]eq.Value {
	out := map[string]eq.Value{}
	for v := range s.parent {
		if c, ok := s.bound[s.find(v)]; ok {
			out[v] = c
		}
	}
	return out
}

// Vars returns every variable name recorded in s, sorted.
func (s *Subst) Vars() []string {
	out := make([]string, 0, len(s.parent))
	for v := range s.parent {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Unifiable reports whether two atoms unify per the paper's §2.3
// definition: they are over the same relation and do not contain
// different constants in the same position. The two atoms come from
// different queries, so their variables live in disjoint namespaces —
// only constant clashes matter, and the check allocates nothing. (An
// edge admitted here can still fail the full MGU computation later, e.g.
// R(y, y) against R(A, B); the coordination algorithms re-check with
// UnifyAtoms on alpha-renamed atoms.)
func Unifiable(a, b eq.Atom) bool {
	if a.Rel != b.Rel || len(a.Args) != len(b.Args) {
		return false
	}
	for i := range a.Args {
		ta, tb := a.Args[i], b.Args[i]
		if !ta.IsVar() && !tb.IsVar() && ta.Name != tb.Name {
			return false
		}
	}
	return true
}

// MGU computes the most general unifier of the given atom pairs: for
// every pair, the two atoms are made equal. Returns nil and an error on
// clash.
func MGU(pairs [][2]eq.Atom) (*Subst, error) {
	s := New()
	for _, p := range pairs {
		if err := s.UnifyAtoms(p[0], p[1]); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// MergeFrom replays every equivalence and constant binding of other into
// s. It fails with ErrClash when other's constraints contradict s's —
// which happens when two independently consistent substitutions disagree
// (e.g. each binds a shared variable to a different constant). other is
// not modified logically (only its internal path compression advances).
func (s *Subst) MergeFrom(other *Subst) error {
	for v := range other.parent {
		r := other.find(v)
		if v != r {
			if err := s.union(v, r); err != nil {
				return err
			}
		} else {
			s.find(v) // make sure lone variables are recorded
		}
		if c, ok := other.bound[r]; ok {
			if err := s.bindConst(v, c); err != nil {
				return err
			}
		}
	}
	return nil
}
