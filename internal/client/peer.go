package client

import (
	"context"
	"errors"
	"fmt"

	"entangled/internal/api"
	"entangled/internal/wire"
)

// PeerConn is one persistent pipelined binary connection for
// cluster-internal forwarding: the same transport a tcp:// Client
// rides, with the subscription keeper's jittered-backoff redial
// running for the connection's whole lifetime — when a peer restarts,
// every node that forwards to it re-dials on a jittered schedule
// instead of in lockstep. It satisfies cluster.PeerConn.
type PeerConn struct {
	t *binaryTransport
}

// DialPeer opens the peer connection. The dial itself happens lazily
// (and is retried by the keeper), so DialPeer never fails — a peer
// that is down at boot connects when it comes up.
func DialPeer(addr string) *PeerConn {
	// Peers forward pre-admitted work; the connection carries no tenant
	// envelope of its own.
	t := newBinaryTransport(addr, "")
	t.mu.Lock()
	t.keeper = true
	t.mu.Unlock()
	go t.keepAlive(func() bool { return true })
	return &PeerConn{t: t}
}

// Call issues one raw frame and returns the reply. Per the
// cluster.PeerConn contract, an error wrapping api.ErrPeerUnavailable
// means nothing was transmitted (no live connection at send time —
// fate known); any other transport error means the connection died
// with the call in flight.
func (p *PeerConn) Call(ctx context.Context, kind wire.Kind, encode func(*wire.Enc)) (status int, body []byte, err error) {
	cc, err := p.t.live()
	if err != nil {
		if errors.Is(err, errClientClosed) {
			return 0, nil, err
		}
		return 0, nil, fmt.Errorf("%w: %v", api.ErrPeerUnavailable, err)
	}
	return cc.Call(ctx, kind, encode)
}

// Connected reports whether a live connection is currently held (it
// does not dial).
func (p *PeerConn) Connected() bool {
	p.t.mu.Lock()
	defer p.t.mu.Unlock()
	cc := p.t.conn
	if cc == nil {
		return false
	}
	select {
	case <-cc.Done():
		return false
	default:
		return true
	}
}

// Close tears the connection down and stops the keeper.
func (p *PeerConn) Close() error { return p.t.close() }
