package client

import (
	"context"
	"errors"
	"io"
	"testing"
	"time"

	"entangled/internal/api"
)

func typedErr(code string) error { return &Error{Status: 503, Code: code, Message: code} }

func TestIsRetryableCodes(t *testing.T) {
	for _, code := range []string{
		api.CodeOverloaded, api.CodeMailboxFull, api.CodeThrottled,
		api.CodeDegraded, api.CodeTimeout, api.CodeAckIndeterminate,
	} {
		if !IsRetryable(typedErr(code)) {
			t.Errorf("IsRetryable(%s) = false, want true", code)
		}
	}
	for _, code := range []string{
		api.CodeBadRequest, api.CodeSessionExists, api.CodeSessionNotFound,
		api.CodeDuplicateID, api.CodeInternal, api.CodeDraining,
	} {
		if IsRetryable(typedErr(code)) {
			t.Errorf("IsRetryable(%s) = true, want false", code)
		}
	}
	if !IsRetryable(io.EOF) {
		t.Error("IsRetryable(io.EOF) = false, want true (transport drop)")
	}
}

func TestFateKnown(t *testing.T) {
	for _, code := range []string{
		api.CodeOverloaded, api.CodeMailboxFull, api.CodeDraining, api.CodeDegraded,
		api.CodeThrottled,
	} {
		if !FateKnown(typedErr(code)) {
			t.Errorf("FateKnown(%s) = false, want true", code)
		}
	}
	for _, code := range []string{api.CodeAckIndeterminate, api.CodeTimeout, api.CodeInternal} {
		if FateKnown(typedErr(code)) {
			t.Errorf("FateKnown(%s) = true, want false", code)
		}
	}
	if FateKnown(io.EOF) {
		t.Error("FateKnown(io.EOF) = true, want false (fate unknown on a drop)")
	}
}

// fakeSleep records requested pauses without sleeping.
func fakeSleep(log *[]time.Duration) func(time.Duration) {
	return func(d time.Duration) { *log = append(*log, d) }
}

func TestRetryDoSucceedsAfterRetryableFailures(t *testing.T) {
	var pauses []time.Duration
	r := Retry{Attempts: 4, Seed: 1, sleep: fakeSleep(&pauses)}
	calls := 0
	err := r.Do(context.Background(), func(context.Context) error {
		calls++
		if calls < 3 {
			return typedErr(api.CodeDegraded)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	if len(pauses) != 2 {
		t.Fatalf("pauses = %v, want 2 entries", pauses)
	}
	// Jittered exponential: nth pause drawn from [base·2ⁿ/2, base·2ⁿ).
	for i, d := range pauses {
		lo := (10 * time.Millisecond) << uint(i) / 2
		hi := (10 * time.Millisecond) << uint(i)
		if d < lo || d >= hi {
			t.Errorf("pause %d = %v, want in [%v, %v)", i, d, lo, hi)
		}
	}
}

func TestRetryDoStopsOnNonRetryable(t *testing.T) {
	r := Retry{Attempts: 5, sleep: func(time.Duration) {}}
	calls := 0
	err := r.Do(context.Background(), func(context.Context) error {
		calls++
		return typedErr(api.CodeBadRequest)
	})
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (non-retryable must not retry)", calls)
	}
	var e *Error
	if !errors.As(err, &e) || e.Code != api.CodeBadRequest {
		t.Fatalf("err = %v, want the typed bad_request", err)
	}
}

func TestRetryDoExhaustsAttempts(t *testing.T) {
	r := Retry{Attempts: 3, sleep: func(time.Duration) {}}
	calls := 0
	err := r.Do(context.Background(), func(context.Context) error {
		calls++
		return typedErr(api.CodeOverloaded)
	})
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	if !IsRetryable(err) {
		t.Fatalf("err = %v, want the last typed error back", err)
	}
}

func TestRetryDoFateKnownStopsOnIndeterminate(t *testing.T) {
	r := Retry{Attempts: 5, sleep: func(time.Duration) {}}
	calls := 0
	err := r.DoFateKnown(context.Background(), func(context.Context) error {
		calls++
		return typedErr(api.CodeAckIndeterminate)
	})
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (indeterminate fate must not blind-retry)", calls)
	}
	var e *Error
	if !errors.As(err, &e) || e.Code != api.CodeAckIndeterminate {
		t.Fatalf("err = %v, want ack_indeterminate surfaced", err)
	}
}

func TestRetryDoFateKnownRetriesDegraded(t *testing.T) {
	r := Retry{Attempts: 5, sleep: func(time.Duration) {}}
	calls := 0
	err := r.DoFateKnown(context.Background(), func(context.Context) error {
		calls++
		if calls < 3 {
			return typedErr(api.CodeDegraded)
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err = %v calls = %d, want nil after 3 (degraded is fate-known)", err, calls)
	}
}

func TestRetryBudgetBoundsSleeps(t *testing.T) {
	var pauses []time.Duration
	// Base 100ms: the first backoff already busts a 50ms budget, so no
	// retry is taken at all.
	r := Retry{Attempts: 10, Base: 100 * time.Millisecond, Budget: 50 * time.Millisecond,
		Seed: 7, sleep: fakeSleep(&pauses)}
	calls := 0
	err := r.Do(context.Background(), func(context.Context) error {
		calls++
		return typedErr(api.CodeOverloaded)
	})
	if calls != 1 || len(pauses) != 0 {
		t.Fatalf("calls = %d pauses = %v, want 1 call and no pauses", calls, pauses)
	}
	if err == nil {
		t.Fatal("want the last error when the budget stops the loop")
	}
}

func TestRetryCtxCancelStops(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	r := Retry{Attempts: 10, sleep: func(time.Duration) {}}
	calls := 0
	err := r.Do(ctx, func(context.Context) error {
		calls++
		cancel()
		return typedErr(api.CodeOverloaded)
	})
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (canceled ctx stops the loop)", calls)
	}
	if err == nil {
		t.Fatal("want an error after cancel")
	}
}

// TestRetryHonorsRetryAfterHint: a throttled error carrying the
// server's capacity hint overrides the exponential schedule — every
// pause lands in the jittered [hint, 1.5·hint) window instead of the
// 10ms-base doubling, and DoFateKnown retries it (throttles are
// fate-known rejections).
func TestRetryHonorsRetryAfterHint(t *testing.T) {
	const hint = 200 * time.Millisecond
	var pauses []time.Duration
	r := Retry{Attempts: 4, Seed: 9, sleep: fakeSleep(&pauses)}
	calls := 0
	err := r.DoFateKnown(context.Background(), func(context.Context) error {
		calls++
		return &Error{Status: 429, Code: api.CodeThrottled, Message: "over budget", RetryAfter: hint}
	})
	if calls != 4 || len(pauses) != 3 {
		t.Fatalf("calls = %d pauses = %v, want 4 calls / 3 pauses", calls, pauses)
	}
	if err == nil {
		t.Fatal("want the throttle error after attempts run out")
	}
	for i, d := range pauses {
		if d < hint || d >= hint+hint/2 {
			t.Fatalf("pause %d = %v outside the hinted [%v, %v) window", i, d, hint, hint+hint/2)
		}
	}
}

// TestRetryBudgetCapsHintedSleeps: the overall budget still binds when
// the server's hint sets the pause — a hint larger than the remaining
// budget stops the loop instead of oversleeping it.
func TestRetryBudgetCapsHintedSleeps(t *testing.T) {
	var pauses []time.Duration
	// Hinted pauses draw from [250ms, 375ms): the first always fits a
	// 400ms budget, the first plus a second (≥500ms total) never does.
	r := Retry{Attempts: 10, Budget: 400 * time.Millisecond, Seed: 3, sleep: fakeSleep(&pauses)}
	calls := 0
	err := r.Do(context.Background(), func(context.Context) error {
		calls++
		return &Error{Status: 429, Code: api.CodeThrottled, RetryAfter: 250 * time.Millisecond}
	})
	if calls != 2 || len(pauses) != 1 {
		t.Fatalf("calls = %d pauses = %v, want 2 calls / 1 pause", calls, pauses)
	}
	if err == nil {
		t.Fatal("want the throttle error when the budget stops the loop")
	}
}

func TestRetrySeededScheduleDeterministic(t *testing.T) {
	run := func() []time.Duration {
		var pauses []time.Duration
		r := Retry{Attempts: 5, Seed: 42, sleep: fakeSleep(&pauses)}
		r.Do(context.Background(), func(context.Context) error {
			return typedErr(api.CodeOverloaded)
		})
		return pauses
	}
	a, b := run(), run()
	if len(a) != len(b) || len(a) != 4 {
		t.Fatalf("pause counts differ: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded schedules differ at %d: %v vs %v", i, a, b)
		}
	}
}
