package client

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"entangled/internal/api"
	"entangled/internal/eq"
	"entangled/internal/wire"
)

// errClientClosed reports a call on a deliberately Closed client; it
// is not retryable (the caller asked for the shutdown).
var errClientClosed = errors.New("client: closed")

// binaryTransport speaks the binary wire protocol over one persistent
// pipelined connection. A dropped connection fails its in-flight calls
// with a retryable error and the next call (or the subscription
// keeper) redials; active subscriptions re-issue themselves on every
// fresh connection, so the server's pending-push backlog flushes to
// the reconnected client.
type binaryTransport struct {
	addr string
	// tenant, when non-empty, wraps every call in a wire.KindTenant
	// envelope (the binary analogue of the HTTP X-Tenant header).
	tenant string

	mu      sync.Mutex
	conn    *wire.ClientConn
	subs    map[int]*subscription
	nextSub int
	keeper  bool
	closed  bool
}

type subscription struct {
	session string
	fn      func(Notification)
}

func newBinaryTransport(addr, tenant string) *binaryTransport {
	return &binaryTransport{addr: addr, tenant: tenant, subs: map[int]*subscription{}}
}

// live returns the current connection, dialing a fresh one (and
// re-issuing every active subscription on it) if the last one died.
func (t *binaryTransport) live() (*wire.ClientConn, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, errClientClosed
	}
	if cc := t.conn; cc != nil {
		select {
		case <-cc.Done():
			t.conn = nil
		default:
			t.mu.Unlock()
			return cc, nil
		}
	}
	cc, err := wire.Dial(t.addr, t.dispatchPush)
	if err != nil {
		t.mu.Unlock()
		return nil, err
	}
	t.conn = cc
	sessions := map[string]struct{}{}
	for _, s := range t.subs {
		sessions[s.session] = struct{}{}
	}
	t.mu.Unlock()
	for name := range sessions {
		// Re-subscribing is idempotent server-side; a failure here means
		// the new connection is already dying and the keeper will redial.
		go cc.Call(context.Background(), wire.KindSubscribe, wire.SessionReq{Session: name}.Encode)
	}
	return cc, nil
}

// dispatchPush fans a push out to the matching subscriptions. It runs
// on the connection's read loop, per the Subscribe contract.
func (t *binaryTransport) dispatchPush(p wire.Push) {
	t.mu.Lock()
	var fns []func(Notification)
	for _, s := range t.subs {
		if s.session == p.Session {
			fns = append(fns, s.fn)
		}
	}
	t.mu.Unlock()
	for _, fn := range fns {
		fn(Notification{Session: p.Session, QueryID: p.QueryID, Seq: p.Seq})
	}
}

// keepAlive holds a connection open while want (called under the
// transport lock) reports it is still needed: while subscriptions are
// active on a client transport, and for the connection's whole
// lifetime on a cluster peer conn (DialPeer). It exits when want goes
// false or the transport closes.
func (t *binaryTransport) keepAlive(want func() bool) {
	backoff := 10 * time.Millisecond
	for {
		t.mu.Lock()
		if t.closed || !want() {
			t.keeper = false
			t.mu.Unlock()
			return
		}
		t.mu.Unlock()
		cc, err := t.live()
		if err != nil {
			if errors.Is(err, errClientClosed) {
				continue // loop re-checks under the lock and exits
			}
			// Jittered: a server restart drops every keeper at once, and
			// pure doubling would have them all redial in lockstep.
			time.Sleep(backoff/2 + time.Duration(rand.Int63n(int64(backoff))))
			if backoff < time.Second {
				backoff *= 2
			}
			continue
		}
		backoff = 10 * time.Millisecond
		<-cc.Done()
	}
}

// call runs one request: service errors become the same typed *Error
// the HTTP transport produces, transport errors stay as-is (IsRetryable
// classifies them), and dec (when non-nil) reads the success payload.
func (t *binaryTransport) call(ctx context.Context, kind wire.Kind, enc func(*wire.Enc), dec func(status int, d *wire.Dec)) error {
	cc, err := t.live()
	if err != nil {
		return err
	}
	if t.tenant != "" {
		inner, innerKind := enc, kind
		kind = wire.KindTenant
		enc = func(e *wire.Enc) {
			e.String(t.tenant)
			e.Byte(byte(innerKind))
			if inner != nil {
				inner(e)
			}
		}
	}
	status, body, err := cc.Call(ctx, kind, enc)
	if err != nil {
		var re *wire.ReplyError
		if errors.As(err, &re) {
			return &Error{Status: re.Status, Code: re.Code, Message: re.Message, Owner: re.Owner,
				RetryAfter: time.Duration(re.RetryAfterMS) * time.Millisecond}
		}
		return fmt.Errorf("client: %v call: %w", kind, err)
	}
	if dec == nil {
		return nil
	}
	d := wire.NewDec(body)
	dec(status, d)
	if err := d.Finish(); err != nil {
		return fmt.Errorf("client: decoding %v reply: %w", kind, err)
	}
	return nil
}

func (t *binaryTransport) coordinate(ctx context.Context, reqs []api.Request) ([]api.Response, error) {
	var out []api.Response
	err := t.call(ctx, wire.KindCoordinate, wire.CoordinateReq{Requests: reqs}.Encode,
		func(_ int, d *wire.Dec) { out = wire.GetResponses(d) })
	if err != nil {
		return nil, err
	}
	return out, nil
}

func (t *binaryTransport) createSession(ctx context.Context, id string, parkUnsafe bool) (string, error) {
	var name string
	err := t.call(ctx, wire.KindCreateSession, wire.CreateSessionReq{ID: id, ParkUnsafe: parkUnsafe}.Encode,
		func(_ int, d *wire.Dec) { name = d.String() })
	if err != nil {
		return "", err
	}
	return name, nil
}

func (t *binaryTransport) join(ctx context.Context, session string, q eq.Query) (api.Update, error) {
	var up api.Update
	err := t.call(ctx, wire.KindJoin, wire.JoinReq{Session: session, Query: q}.Encode,
		func(_ int, d *wire.Dec) { up = wire.GetUpdate(d) })
	return up, err
}

func (t *binaryTransport) leave(ctx context.Context, session, queryID string) (api.Update, error) {
	var up api.Update
	err := t.call(ctx, wire.KindLeave, wire.LeaveReq{Session: session, QueryID: queryID}.Encode,
		func(_ int, d *wire.Dec) { up = wire.GetUpdate(d) })
	return up, err
}

func (t *binaryTransport) status(ctx context.Context, session string, trace bool) (*api.SessionStatus, error) {
	var st api.SessionStatus
	err := t.call(ctx, wire.KindStatus, wire.StatusReq{Session: session, Trace: trace}.Encode,
		func(_ int, d *wire.Dec) { st = wire.GetSessionStatus(d) })
	if err != nil {
		return nil, err
	}
	return &st, nil
}

func (t *binaryTransport) deleteSession(ctx context.Context, session string) error {
	return t.call(ctx, wire.KindDeleteSession, wire.SessionReq{Session: session}.Encode, nil)
}

func (t *binaryTransport) health(ctx context.Context) (*api.Health, error) {
	var h api.Health
	err := t.call(ctx, wire.KindHealth, nil,
		func(_ int, d *wire.Dec) { h = wire.GetHealth(d) })
	if err != nil {
		return nil, err
	}
	return &h, nil
}

func (t *binaryTransport) recovery(context.Context) (*api.RecoveryStatus, error) {
	return nil, fmt.Errorf("client: the recovery endpoint is served over HTTP only")
}

func (t *binaryTransport) metrics(context.Context) (*api.Metrics, error) {
	return nil, fmt.Errorf("client: the metrics endpoint is served over HTTP only")
}

func (t *binaryTransport) tenants(context.Context) (*api.TenantsStatus, error) {
	return nil, fmt.Errorf("client: the tenants endpoint is served over HTTP only")
}

func (t *binaryTransport) subscribe(ctx context.Context, session string, fn func(Notification)) (func(), error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, errClientClosed
	}
	t.nextSub++
	token := t.nextSub
	t.subs[token] = &subscription{session: session, fn: fn}
	if !t.keeper {
		t.keeper = true
		go t.keepAlive(func() bool { return len(t.subs) > 0 })
	}
	t.mu.Unlock()
	stop := func() {
		t.mu.Lock()
		delete(t.subs, token)
		t.mu.Unlock()
	}
	// Issue the subscribe on the live connection now, so an unknown
	// session surfaces as a typed error instead of a silent no-op (the
	// keeper re-issues it after any later reconnect).
	if err := t.call(ctx, wire.KindSubscribe, wire.SessionReq{Session: session}.Encode, nil); err != nil {
		stop()
		return nil, err
	}
	return stop, nil
}

func (t *binaryTransport) close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	cc := t.conn
	t.conn = nil
	t.mu.Unlock()
	if cc != nil {
		cc.Close()
	}
	return nil
}
