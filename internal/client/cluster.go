package client

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"entangled/internal/api"
	"entangled/internal/cluster"
	"entangled/internal/eq"
	"entangled/internal/wire"
)

// clusterTransport routes calls across a coordserve cluster: it
// fetches the membership from the seed node's /v1/cluster, rebuilds
// the consistent-hash ring locally (the ring is a pure function of
// membership + virtual-node count, so client and servers agree
// byte-for-byte), and holds one pooled binary transport per node.
// Session ops go straight to the session's owner; batch requests are
// partitioned by the same placement rule the servers use and
// scatter-gathered client-side. A route_moved reply — the ring this
// client holds is stale — triggers one refresh-and-reroute toward the
// owner the server named; a misrouted call that a server can serve by
// forwarding is simply served (one extra hop), so a stale client
// degrades to forwarding, never to failure.
type clusterTransport struct {
	seed string
	// tenant propagates to every pooled per-node transport, so each
	// edge node sees the same identity.
	tenant string

	mu        sync.Mutex
	ring      *cluster.Ring
	placement map[string]int
	addrs     map[string]string           // node name -> binary addr
	conns     map[string]*binaryTransport // binary addr -> pooled transport
	closed    bool
}

func newClusterTransport(seed, tenant string) *clusterTransport {
	return &clusterTransport{seed: seed, tenant: tenant, conns: map[string]*binaryTransport{}}
}

// connFor returns (creating if needed) the pooled transport for one
// node address.
func (t *clusterTransport) connFor(addr string) (*binaryTransport, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, errClientClosed
	}
	bt := t.conns[addr]
	if bt == nil {
		bt = newBinaryTransport(addr, t.tenant)
		t.conns[addr] = bt
	}
	return bt, nil
}

// knownAddrs returns every address worth asking for the ring: the
// membership we hold (sorted for determinism), then the seed.
func (t *clusterTransport) knownAddrs() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	addrs := make([]string, 0, len(t.addrs)+1)
	for _, a := range t.addrs {
		addrs = append(addrs, a)
	}
	sort.Strings(addrs)
	if len(addrs) == 0 {
		addrs = append(addrs, t.seed)
	}
	return addrs
}

// refresh re-fetches the cluster status and rebuilds the ring, trying
// every known node until one answers.
func (t *clusterTransport) refresh(ctx context.Context) error {
	var lastErr error
	for _, addr := range t.knownAddrs() {
		bt, err := t.connFor(addr)
		if err != nil {
			return err
		}
		var cs api.ClusterStatus
		err = bt.call(ctx, wire.KindCluster, nil, func(_ int, d *wire.Dec) { cs = wire.GetClusterStatus(d) })
		if err != nil {
			lastErr = err
			continue
		}
		if !cs.Enabled || len(cs.Nodes) == 0 {
			return fmt.Errorf("client: %s is not part of a cluster", addr)
		}
		names := make([]string, len(cs.Nodes))
		addrs := make(map[string]string, len(cs.Nodes))
		for i, n := range cs.Nodes {
			names[i] = n.Name
			addrs[n.Name] = n.Addr
		}
		placement := make(map[string]int, len(cs.Relations))
		for _, rp := range cs.Relations {
			placement[rp.Relation] = rp.Column
		}
		t.mu.Lock()
		t.ring = cluster.NewRing(names, cs.VirtualNodes)
		t.addrs = addrs
		t.placement = placement
		t.mu.Unlock()
		return nil
	}
	return fmt.Errorf("client: fetching cluster membership: %w", lastErr)
}

// view returns the current ring state, fetching it on first use.
func (t *clusterTransport) view(ctx context.Context) (*cluster.Ring, map[string]int, map[string]string, error) {
	t.mu.Lock()
	ring, placement, addrs := t.ring, t.placement, t.addrs
	t.mu.Unlock()
	if ring != nil {
		return ring, placement, addrs, nil
	}
	if err := t.refresh(ctx); err != nil {
		return nil, nil, nil, err
	}
	t.mu.Lock()
	ring, placement, addrs = t.ring, t.placement, t.addrs
	t.mu.Unlock()
	return ring, placement, addrs, nil
}

// connForNode resolves a node name to its pooled transport.
func (t *clusterTransport) connForNode(ctx context.Context, node string) (*binaryTransport, error) {
	_, _, addrs, err := t.view(ctx)
	if err != nil {
		return nil, err
	}
	addr, ok := addrs[node]
	if !ok {
		return nil, fmt.Errorf("client: cluster has no node %q", node)
	}
	return t.connFor(addr)
}

// sessionCall routes one session-scoped call to the session's owner,
// and on a route_moved reply (this client's ring was stale) refreshes
// the ring and retries exactly once against the owner the server
// named.
func (t *clusterTransport) sessionCall(ctx context.Context, session string, fn func(tt *binaryTransport) error) error {
	ring, _, _, err := t.view(ctx)
	if err != nil {
		return err
	}
	bt, err := t.connForNode(ctx, ring.Owner(session))
	if err != nil {
		return err
	}
	err = fn(bt)
	var e *Error
	if errors.As(err, &e) && e.Code == api.CodeRouteMoved {
		if rerr := t.refresh(ctx); rerr != nil {
			return err
		}
		owner := e.Owner
		if owner == "" {
			ring, _, _, verr := t.view(ctx)
			if verr != nil {
				return err
			}
			owner = ring.Owner(session)
		}
		bt2, cerr := t.connForNode(ctx, owner)
		if cerr != nil {
			return err
		}
		return fn(bt2)
	}
	return err
}

func (t *clusterTransport) coordinate(ctx context.Context, reqs []api.Request) ([]api.Response, error) {
	ring, placement, addrs, err := t.view(ctx)
	if err != nil {
		return nil, err
	}
	// Partition by owner exactly as the servers do; a request with no
	// single owner can be served (and, server-side, scatter-gathered)
	// by any node, so spread those by request ID.
	groups := map[string][]int{}
	for i, rq := range reqs {
		node, ok := cluster.OwnerOfQueries(ring, placement, rq.Queries)
		if !ok {
			node = ring.Owner(rq.ID)
		}
		groups[node] = append(groups[node], i)
	}
	out := make([]api.Response, len(reqs))
	var wg sync.WaitGroup
	for node, idxs := range groups {
		sub := make([]api.Request, len(idxs))
		for j, i := range idxs {
			sub[j] = reqs[i]
		}
		wg.Add(1)
		go func(node string, idxs []int, sub []api.Request) {
			defer wg.Done()
			fail := func(err error) {
				we := &api.Error{Code: api.CodePeerUnavailable,
					Message: fmt.Sprintf("cluster: node %s (%s) unreachable: %v", node, addrs[node], err)}
				var e *Error
				if errors.As(err, &e) {
					we = &api.Error{Code: e.Code, Message: e.Message, Owner: e.Owner,
						RetryAfterMS: int64(e.RetryAfter / time.Millisecond)}
				}
				for _, i := range idxs {
					out[i] = api.Response{ID: reqs[i].ID, Error: we}
				}
			}
			bt, err := t.connFor(addrs[node])
			if err != nil {
				fail(err)
				return
			}
			resps, err := bt.coordinate(ctx, sub)
			if err != nil || len(resps) != len(sub) {
				if err == nil {
					err = fmt.Errorf("%d responses for %d requests", len(resps), len(sub))
				}
				fail(err)
				return
			}
			for j, i := range idxs {
				out[i] = resps[j]
			}
		}(node, idxs, sub)
	}
	wg.Wait()
	return out, nil
}

func (t *clusterTransport) createSession(ctx context.Context, id string, parkUnsafe bool) (string, error) {
	if id == "" {
		// The serving node generates a name it owns, so the new session
		// starts life correctly placed; route to any live node.
		ring, _, _, err := t.view(ctx)
		if err != nil {
			return "", err
		}
		var name string
		nodes := ring.Nodes()
		var lastErr error
		for _, node := range nodes {
			bt, err := t.connForNode(ctx, node)
			if err != nil {
				return "", err
			}
			name, err = bt.createSession(ctx, id, parkUnsafe)
			if err == nil {
				return name, nil
			}
			lastErr = err
			var e *Error
			if errors.As(err, &e) {
				return "", err // service-level: another node would say the same
			}
		}
		return "", lastErr
	}
	var name string
	err := t.sessionCall(ctx, id, func(bt *binaryTransport) error {
		var err error
		name, err = bt.createSession(ctx, id, parkUnsafe)
		return err
	})
	return name, err
}

func (t *clusterTransport) join(ctx context.Context, session string, q eq.Query) (api.Update, error) {
	var up api.Update
	err := t.sessionCall(ctx, session, func(bt *binaryTransport) error {
		var err error
		up, err = bt.join(ctx, session, q)
		return err
	})
	return up, err
}

func (t *clusterTransport) leave(ctx context.Context, session, queryID string) (api.Update, error) {
	var up api.Update
	err := t.sessionCall(ctx, session, func(bt *binaryTransport) error {
		var err error
		up, err = bt.leave(ctx, session, queryID)
		return err
	})
	return up, err
}

func (t *clusterTransport) status(ctx context.Context, session string, trace bool) (*api.SessionStatus, error) {
	var st *api.SessionStatus
	err := t.sessionCall(ctx, session, func(bt *binaryTransport) error {
		var err error
		st, err = bt.status(ctx, session, trace)
		return err
	})
	return st, err
}

func (t *clusterTransport) deleteSession(ctx context.Context, session string) error {
	return t.sessionCall(ctx, session, func(bt *binaryTransport) error {
		return bt.deleteSession(ctx, session)
	})
}

func (t *clusterTransport) health(ctx context.Context) (*api.Health, error) {
	// Health is a per-node surface; report the first reachable node's.
	var lastErr error
	for _, addr := range t.knownAddrs() {
		bt, err := t.connFor(addr)
		if err != nil {
			return nil, err
		}
		h, err := bt.health(ctx)
		if err == nil {
			return h, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

func (t *clusterTransport) recovery(context.Context) (*api.RecoveryStatus, error) {
	return nil, fmt.Errorf("client: the recovery endpoint is served over HTTP only")
}

func (t *clusterTransport) metrics(context.Context) (*api.Metrics, error) {
	return nil, fmt.Errorf("client: the metrics endpoint is served over HTTP only")
}

func (t *clusterTransport) tenants(context.Context) (*api.TenantsStatus, error) {
	return nil, fmt.Errorf("client: the tenants endpoint is served over HTTP only")
}

func (t *clusterTransport) subscribe(ctx context.Context, session string, fn func(Notification)) (func(), error) {
	// Push flows only from the session's owner (subscribing elsewhere
	// answers route_moved), so the subscription lives on the owner's
	// pooled connection.
	var stop func()
	err := t.sessionCall(ctx, session, func(bt *binaryTransport) error {
		var err error
		stop, err = bt.subscribe(ctx, session, fn)
		return err
	})
	return stop, err
}

func (t *clusterTransport) close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	conns := make([]*binaryTransport, 0, len(t.conns))
	for _, bt := range t.conns {
		conns = append(conns, bt)
	}
	t.mu.Unlock()
	for _, bt := range conns {
		bt.close()
	}
	return nil
}
