// Package client is the typed Go client for the coordination service
// (internal/server): batch coordination, streaming sessions, and the
// operational surface, over the wire format defined in internal/api.
//
// Errors reconstruct the service's stable codes as typed values:
// errors.Is(err, coord.ErrUnsafeArrival), errors.Is(err,
// stream.ErrUnknownID) and friends hold across the network exactly as
// they do in-process, and IsRetryable identifies backpressure
// rejections (full queue or mailbox) worth retrying after a backoff.
package client
