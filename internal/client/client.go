package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"

	"entangled/internal/api"
	"entangled/internal/coord"
	"entangled/internal/eq"
)

// Error is a typed service error: the HTTP status, the stable wire
// code, and the remote message. It unwraps to the sentinel the code
// names, so errors.Is(err, coord.ErrUnsafeArrival) (and friends) hold
// across the network exactly as they do in-process.
type Error struct {
	Status  int
	Code    string
	Message string
}

func (e *Error) Error() string {
	return fmt.Sprintf("coordination service: %s (%s, HTTP %d)", e.Message, e.Code, e.Status)
}

// Unwrap attaches the sentinel named by the wire code (nil for
// transport-level codes, which stops the errors.Is chain).
func (e *Error) Unwrap() error { return api.Sentinel(e.Code) }

// Options configures a Client.
type Options struct {
	// HTTPClient overrides the transport; nil means
	// http.DefaultClient.
	HTTPClient *http.Client
}

// Client is a typed Go client for the coordination service
// (internal/server). The zero value is not usable; construct with New.
type Client struct {
	base string
	hc   *http.Client
}

// New returns a client for the service at baseURL (e.g.
// "http://127.0.0.1:8080").
func New(baseURL string, opts Options) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("client: parsing base URL: %w", err)
	}
	if u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("client: base URL %q needs a scheme and host", baseURL)
	}
	hc := opts.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(u.String(), "/"), hc: hc}, nil
}

// do runs one round trip: encode in (when non-nil), decode a 2xx body
// into out (when non-nil), and turn every non-2xx into a typed *Error
// from the wire envelope.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("client: encoding request: %w", err)
		}
		body = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return fmt.Errorf("client: building request: %w", err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var env api.ErrorEnvelope
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil || env.Error == nil {
			return &Error{Status: resp.StatusCode, Code: api.CodeInternal,
				Message: fmt.Sprintf("%s %s: HTTP %d with unreadable error body", method, path, resp.StatusCode)}
		}
		return &Error{Status: resp.StatusCode, Code: env.Error.Code, Message: env.Error.Message}
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decoding %s %s response: %w", method, path, err)
	}
	return nil
}

// Request is one coordination request of a batch.
type Request = api.Request

// Response is one request's decoded outcome; Err is typed (errors.Is
// sees the coord sentinels).
type Response struct {
	ID     string
	Result *coord.Result
	Err    error
}

// CoordinateBatch serves a batch of independent requests in one HTTP
// call. Per-request failures come back in the matching Response.Err;
// the returned error covers transport and envelope failures only.
func (c *Client) CoordinateBatch(ctx context.Context, reqs []Request) ([]Response, error) {
	var wire api.CoordinateResponse
	if err := c.do(ctx, http.MethodPost, "/v1/coordinate", api.CoordinateRequest{Requests: reqs}, &wire); err != nil {
		return nil, err
	}
	if len(wire.Responses) != len(reqs) {
		return nil, fmt.Errorf("client: %d responses for %d requests", len(wire.Responses), len(reqs))
	}
	out := make([]Response, len(wire.Responses))
	for i, r := range wire.Responses {
		out[i] = Response{ID: r.ID, Result: r.Result, Err: inlineErr(r.Error)}
	}
	return out, nil
}

// inlineErr converts a per-request wire error into the same typed
// *Error the transport path produces (Status 0: the call itself was
// 200), so errors.Is/errors.As treatment is uniform for callers.
func inlineErr(e *api.Error) error {
	if e == nil {
		return nil
	}
	return &Error{Code: e.Code, Message: e.Message}
}

// Coordinate serves one coordination request: the remote analogue of
// engine.Coordinate. The result's DBQueries is the exact per-request
// cost the server metered.
func (c *Client) Coordinate(ctx context.Context, qs []eq.Query) (*coord.Result, error) {
	resps, err := c.CoordinateBatch(ctx, []Request{{Queries: qs}})
	if err != nil {
		return nil, err
	}
	if resps[0].Err != nil {
		return nil, resps[0].Err
	}
	return resps[0].Result, nil
}

// Session is a handle on a named remote streaming session.
type Session struct {
	c *Client
	// ID is the session's name in the registry.
	ID string
}

// CreateSession opens a streaming session on the server. An empty id
// asks the server to pick a name; parkUnsafe selects park-and-retry
// admission for unsafe arrivals.
func (c *Client) CreateSession(ctx context.Context, id string, parkUnsafe bool) (*Session, error) {
	var resp api.CreateSessionResponse
	err := c.do(ctx, http.MethodPost, "/v1/sessions",
		api.CreateSessionRequest{ID: id, ParkUnsafe: parkUnsafe}, &resp)
	if err != nil {
		return nil, err
	}
	return &Session{c: c, ID: resp.ID}, nil
}

// Session returns a handle on an existing session by name, without a
// round trip.
func (c *Client) Session(id string) *Session { return &Session{c: c, ID: id} }

// Join admits one arriving query. A parked arrival (HTTP 202) returns
// the update with Parked set and a nil error; a rejected arrival
// returns a typed error for which errors.Is(err,
// coord.ErrUnsafeArrival) holds.
func (s *Session) Join(ctx context.Context, q eq.Query) (api.Update, error) {
	var up api.Update
	err := s.c.do(ctx, http.MethodPost, "/v1/sessions/"+url.PathEscape(s.ID)+"/join",
		api.JoinRequest{Query: q}, &up)
	return up, err
}

// Leave departs the live query with the given query ID.
func (s *Session) Leave(ctx context.Context, queryID string) (api.Update, error) {
	var up api.Update
	err := s.c.do(ctx, http.MethodPost, "/v1/sessions/"+url.PathEscape(s.ID)+"/leave",
		api.LeaveRequest{ID: queryID}, &up)
	return up, err
}

// Status reads the session's current state; includeTrace asks for the
// full coordination trace (the one a traced batch run over the live
// queries would produce).
func (s *Session) Status(ctx context.Context, includeTrace bool) (*api.SessionStatus, error) {
	path := "/v1/sessions/" + url.PathEscape(s.ID)
	if includeTrace {
		path += "?trace=1"
	}
	var st api.SessionStatus
	if err := s.c.do(ctx, http.MethodGet, path, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Close deletes the session from the registry; its goroutine drains
// and exits.
func (s *Session) Close(ctx context.Context) error {
	return s.c.do(ctx, http.MethodDelete, "/v1/sessions/"+url.PathEscape(s.ID), nil, nil)
}

// Health reads /healthz; a draining server still answers 200 with
// Status "draining" (the work endpoints are the ones that reject).
func (c *Client) Health(ctx context.Context) (*api.Health, error) {
	var h api.Health
	if err := c.do(ctx, http.MethodGet, "/healthz", nil, &h); err != nil {
		return nil, err
	}
	return &h, nil
}

// Recovery reads /v1/recovery: what the server replayed from its
// durable backend at startup. Enabled is false for an in-memory
// server.
func (c *Client) Recovery(ctx context.Context) (*api.RecoveryStatus, error) {
	var rs api.RecoveryStatus
	if err := c.do(ctx, http.MethodGet, "/v1/recovery", nil, &rs); err != nil {
		return nil, err
	}
	return &rs, nil
}

// Metrics reads /metrics.
func (c *Client) Metrics(ctx context.Context) (*api.Metrics, error) {
	var m api.Metrics
	if err := c.do(ctx, http.MethodGet, "/metrics", nil, &m); err != nil {
		return nil, err
	}
	return &m, nil
}

// IsRetryable reports whether an error is a backpressure rejection
// (queue or mailbox full) that a client may retry after a backoff.
func IsRetryable(err error) bool {
	var e *Error
	if !errors.As(err, &e) {
		return false
	}
	return e.Code == api.CodeOverloaded || e.Code == api.CodeMailboxFull
}
