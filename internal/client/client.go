// Package client is the typed Go client for the coordination service:
// one API over interchangeable transports. An "http://" or
// "https://" base URL speaks the HTTP/JSON protocol; a "tcp://" (or
// "binary://") base URL speaks the binary wire protocol
// (internal/wire) over one persistent pipelined connection, which also
// carries server-push notifications for parked arrivals. A
// "cluster://host:port" base URL treats the address as a seed node of
// a coordserve cluster: the client fetches the membership from
// /v1/cluster, rebuilds the consistent-hash ring locally, and routes
// every call straight to the owning node over one pooled binary
// connection per node — refreshing the ring and re-routing once when
// a node answers route_moved. All transports decode to the same
// internal/api DTOs and produce the same typed *Error values, so
// callers switch protocols by changing the URL and nothing else.
package client

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strings"
	"syscall"
	"time"

	"entangled/internal/api"
	"entangled/internal/coord"
	"entangled/internal/eq"
	"entangled/internal/wire"
)

// Error is a typed service error: the HTTP(-equivalent) status, the
// stable wire code, and the remote message. It unwraps to the sentinel
// the code names, so errors.Is(err, coord.ErrUnsafeArrival) (and
// friends) hold across the network exactly as they do in-process —
// over either transport.
type Error struct {
	Status  int
	Code    string
	Message string
	// Owner names the node owning the request's target on route_moved
	// errors; the cluster transport re-routes with it.
	Owner string
	// RetryAfter is the server's capacity hint on throttled errors
	// (from the wire field, or the HTTP Retry-After header); Retry
	// sleeps this long instead of its computed backoff. Zero means no
	// hint.
	RetryAfter time.Duration
}

func (e *Error) Error() string {
	return fmt.Sprintf("coordination service: %s (%s, HTTP %d)", e.Message, e.Code, e.Status)
}

// Unwrap attaches the sentinel named by the wire code (nil for
// transport-level codes, which stops the errors.Is chain).
func (e *Error) Unwrap() error { return api.Sentinel(e.Code) }

// Notification is a server-push event: the previously parked arrival
// QueryID in Session was admitted by the departure that cleared its
// conflict (Seq is that event's session sequence number). Push arrives
// over the binary transport only; HTTP clients poll session status.
type Notification struct {
	Session string
	QueryID string
	Seq     int
}

// transport is one wire protocol speaking the service's API. Both
// implementations return identical DTOs and identical typed errors for
// the same server state.
type transport interface {
	coordinate(ctx context.Context, reqs []api.Request) ([]api.Response, error)
	createSession(ctx context.Context, id string, parkUnsafe bool) (string, error)
	join(ctx context.Context, session string, q eq.Query) (api.Update, error)
	leave(ctx context.Context, session, queryID string) (api.Update, error)
	status(ctx context.Context, session string, trace bool) (*api.SessionStatus, error)
	deleteSession(ctx context.Context, session string) error
	health(ctx context.Context) (*api.Health, error)
	recovery(ctx context.Context) (*api.RecoveryStatus, error)
	metrics(ctx context.Context) (*api.Metrics, error)
	tenants(ctx context.Context) (*api.TenantsStatus, error)
	subscribe(ctx context.Context, session string, fn func(Notification)) (func(), error)
	close() error
}

// Options configures a Client.
type Options struct {
	// HTTPClient overrides the HTTP transport's client; nil means
	// http.DefaultClient. Ignored by the binary transport.
	HTTPClient *http.Client
	// Tenant is the admission identity sent with every request: the
	// X-Tenant header over HTTP, a wire.KindTenant envelope over the
	// binary protocol (and each of the cluster transport's pooled
	// connections). Empty means the server's default tenant.
	Tenant string
}

// Client is a typed Go client for the coordination service
// (internal/server). The zero value is not usable; construct with New.
type Client struct {
	t transport
}

// New returns a client for the service at baseURL. "http://host:port"
// (or https) selects the HTTP/JSON protocol; "tcp://host:port" (or
// "binary://") selects the binary wire protocol on a persistent
// pipelined connection that redials transparently after a drop.
func New(baseURL string, opts Options) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("client: parsing base URL: %w", err)
	}
	if u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("client: base URL %q needs a scheme and host", baseURL)
	}
	switch u.Scheme {
	case "http", "https":
		hc := opts.HTTPClient
		if hc == nil {
			hc = http.DefaultClient
		}
		return &Client{t: &httpTransport{base: strings.TrimRight(u.String(), "/"), hc: hc, tenant: opts.Tenant}}, nil
	case "tcp", "binary":
		return &Client{t: newBinaryTransport(u.Host, opts.Tenant)}, nil
	case "cluster":
		return &Client{t: newClusterTransport(u.Host, opts.Tenant)}, nil
	}
	return nil, fmt.Errorf("client: unsupported scheme %q (want http, https, tcp, binary, or cluster)", u.Scheme)
}

// Close releases the client's transport: the binary transport's
// persistent connection closes and its subscriptions end; the HTTP
// transport has nothing to release.
func (c *Client) Close() error { return c.t.close() }

// Request is one coordination request of a batch.
type Request = api.Request

// Response is one request's decoded outcome; Err is typed (errors.Is
// sees the coord sentinels).
type Response struct {
	ID     string
	Result *coord.Result
	Err    error
}

// CoordinateBatch serves a batch of independent requests in one call.
// Per-request failures come back in the matching Response.Err; the
// returned error covers transport and envelope failures only.
func (c *Client) CoordinateBatch(ctx context.Context, reqs []Request) ([]Response, error) {
	resps, err := c.t.coordinate(ctx, reqs)
	if err != nil {
		return nil, err
	}
	if len(resps) != len(reqs) {
		return nil, fmt.Errorf("client: %d responses for %d requests", len(resps), len(reqs))
	}
	out := make([]Response, len(resps))
	for i, r := range resps {
		out[i] = Response{ID: r.ID, Result: r.Result, Err: inlineErr(r.Error)}
	}
	return out, nil
}

// inlineErr converts a per-request wire error into the same typed
// *Error the transport path produces (Status 0: the call itself
// succeeded), so errors.Is/errors.As treatment is uniform for callers.
func inlineErr(e *api.Error) error {
	if e == nil {
		return nil
	}
	return &Error{Code: e.Code, Message: e.Message, Owner: e.Owner, RetryAfter: time.Duration(e.RetryAfterMS) * time.Millisecond}
}

// Coordinate serves one coordination request: the remote analogue of
// engine.Coordinate. The result's DBQueries is the exact per-request
// cost the server metered.
func (c *Client) Coordinate(ctx context.Context, qs []eq.Query) (*coord.Result, error) {
	resps, err := c.CoordinateBatch(ctx, []Request{{Queries: qs}})
	if err != nil {
		return nil, err
	}
	if resps[0].Err != nil {
		return nil, resps[0].Err
	}
	return resps[0].Result, nil
}

// Session is a handle on a named remote streaming session.
type Session struct {
	c *Client
	// ID is the session's name in the registry.
	ID string
}

// CreateSession opens a streaming session on the server. An empty id
// asks the server to pick a name; parkUnsafe selects park-and-retry
// admission for unsafe arrivals.
func (c *Client) CreateSession(ctx context.Context, id string, parkUnsafe bool) (*Session, error) {
	name, err := c.t.createSession(ctx, id, parkUnsafe)
	if err != nil {
		return nil, err
	}
	return &Session{c: c, ID: name}, nil
}

// Session returns a handle on an existing session by name, without a
// round trip.
func (c *Client) Session(id string) *Session { return &Session{c: c, ID: id} }

// Join admits one arriving query. A parked arrival (HTTP 202) returns
// the update with Parked set and a nil error; a rejected arrival
// returns a typed error for which errors.Is(err,
// coord.ErrUnsafeArrival) holds.
func (s *Session) Join(ctx context.Context, q eq.Query) (api.Update, error) {
	return s.c.t.join(ctx, s.ID, q)
}

// Leave departs the live query with the given query ID.
func (s *Session) Leave(ctx context.Context, queryID string) (api.Update, error) {
	return s.c.t.leave(ctx, s.ID, queryID)
}

// Status reads the session's current state; includeTrace asks for the
// full coordination trace (the one a traced batch run over the live
// queries would produce).
func (s *Session) Status(ctx context.Context, includeTrace bool) (*api.SessionStatus, error) {
	return s.c.t.status(ctx, s.ID, includeTrace)
}

// Close deletes the session from the registry; its goroutine drains
// and exits.
func (s *Session) Close(ctx context.Context) error {
	return s.c.t.deleteSession(ctx, s.ID)
}

// Subscribe registers fn for this session's push notifications: each
// previously parked arrival a departure admits is delivered exactly
// once, surviving connection drops (the transport redials,
// re-subscribes, and the server flushes what accumulated while the
// client was away). fn is called from the connection's read loop — it
// must not block. The returned stop function ends the subscription.
// Only the binary transport pushes; over HTTP Subscribe fails (poll
// Status instead).
func (s *Session) Subscribe(ctx context.Context, fn func(Notification)) (func(), error) {
	return s.c.t.subscribe(ctx, s.ID, fn)
}

// Health reads the health endpoint; a draining server still answers
// with Status "draining" (the work endpoints are the ones that
// reject).
func (c *Client) Health(ctx context.Context) (*api.Health, error) {
	return c.t.health(ctx)
}

// Recovery reads /v1/recovery: what the server replayed from its
// durable backend at startup. Enabled is false for an in-memory
// server. HTTP only.
func (c *Client) Recovery(ctx context.Context) (*api.RecoveryStatus, error) {
	return c.t.recovery(ctx)
}

// Metrics reads /metrics. HTTP only.
func (c *Client) Metrics(ctx context.Context) (*api.Metrics, error) {
	return c.t.metrics(ctx)
}

// Tenants reads /v1/tenants: every tenant's effective admission policy
// and live accounting (enabled=false when the server runs without
// admission). HTTP only.
func (c *Client) Tenants(ctx context.Context) (*api.TenantsStatus, error) {
	return c.t.tenants(ctx)
}

// IsRetryable reports whether an error may succeed on retry: a
// backpressure rejection (queue or mailbox full, after a backoff), an
// admission throttle (throttled — retry after Error.RetryAfter), a
// degraded-mode rejection (the server recovers once a probe write
// succeeds), a server-side timeout, an indeterminate ack, a cluster
// routing miss (route_moved — retry against Error.Owner after
// refreshing the ring; an unreachable peer recovers when it rejoins),
// or a transport-level connection drop (the binary transport redials
// on the next call; HTTP opens a fresh connection). A dropped
// connection, timeout, or indeterminate ack means the request's fate
// is unknown — retry only operations that are idempotent or whose
// duplication the caller can detect (see FateKnown and
// Retry.DoFateKnown).
func IsRetryable(err error) bool {
	var e *Error
	if errors.As(err, &e) {
		switch e.Code {
		case api.CodeOverloaded, api.CodeMailboxFull, api.CodeThrottled,
			api.CodeDegraded, api.CodeTimeout, api.CodeAckIndeterminate,
			api.CodeRouteMoved, api.CodePeerUnavailable:
			return true
		}
		return false
	}
	switch {
	case errors.Is(err, wire.ErrConnClosed),
		errors.Is(err, io.EOF),
		errors.Is(err, io.ErrUnexpectedEOF),
		errors.Is(err, net.ErrClosed),
		errors.Is(err, syscall.ECONNRESET),
		errors.Is(err, syscall.ECONNREFUSED),
		errors.Is(err, syscall.EPIPE):
		return true
	}
	var oe *net.OpError
	return errors.As(err, &oe)
}
