package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"entangled/internal/api"
	"entangled/internal/eq"
)

// httpTransport speaks the HTTP/JSON protocol.
type httpTransport struct {
	base   string
	hc     *http.Client
	tenant string
}

// do runs one round trip: encode in (when non-nil), decode a 2xx body
// into out (when non-nil), and turn every non-2xx into a typed *Error
// from the wire envelope.
func (t *httpTransport) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("client: encoding request: %w", err)
		}
		body = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, t.base+path, body)
	if err != nil {
		return fmt.Errorf("client: building request: %w", err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if t.tenant != "" {
		req.Header.Set(api.TenantHeader, t.tenant)
	}
	resp, err := t.hc.Do(req)
	if err != nil {
		return fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var env api.ErrorEnvelope
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil || env.Error == nil {
			return &Error{Status: resp.StatusCode, Code: api.CodeInternal,
				Message: fmt.Sprintf("%s %s: HTTP %d with unreadable error body", method, path, resp.StatusCode)}
		}
		retryAfter := time.Duration(env.Error.RetryAfterMS) * time.Millisecond
		if retryAfter == 0 {
			// Fall back to the standard header (whole seconds), which
			// the server also sets — a proxy may have stripped or
			// rewritten the body.
			if s, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && s > 0 {
				retryAfter = time.Duration(s) * time.Second
			}
		}
		return &Error{Status: resp.StatusCode, Code: env.Error.Code, Message: env.Error.Message,
			Owner: env.Error.Owner, RetryAfter: retryAfter}
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decoding %s %s response: %w", method, path, err)
	}
	return nil
}

func (t *httpTransport) coordinate(ctx context.Context, reqs []api.Request) ([]api.Response, error) {
	var resp api.CoordinateResponse
	if err := t.do(ctx, http.MethodPost, "/v1/coordinate", api.CoordinateRequest{Requests: reqs}, &resp); err != nil {
		return nil, err
	}
	return resp.Responses, nil
}

func (t *httpTransport) createSession(ctx context.Context, id string, parkUnsafe bool) (string, error) {
	var resp api.CreateSessionResponse
	err := t.do(ctx, http.MethodPost, "/v1/sessions",
		api.CreateSessionRequest{ID: id, ParkUnsafe: parkUnsafe}, &resp)
	if err != nil {
		return "", err
	}
	return resp.ID, nil
}

func (t *httpTransport) join(ctx context.Context, session string, q eq.Query) (api.Update, error) {
	var up api.Update
	err := t.do(ctx, http.MethodPost, "/v1/sessions/"+url.PathEscape(session)+"/join",
		api.JoinRequest{Query: q}, &up)
	return up, err
}

func (t *httpTransport) leave(ctx context.Context, session, queryID string) (api.Update, error) {
	var up api.Update
	err := t.do(ctx, http.MethodPost, "/v1/sessions/"+url.PathEscape(session)+"/leave",
		api.LeaveRequest{ID: queryID}, &up)
	return up, err
}

func (t *httpTransport) status(ctx context.Context, session string, trace bool) (*api.SessionStatus, error) {
	path := "/v1/sessions/" + url.PathEscape(session)
	if trace {
		path += "?trace=1"
	}
	var st api.SessionStatus
	if err := t.do(ctx, http.MethodGet, path, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

func (t *httpTransport) deleteSession(ctx context.Context, session string) error {
	return t.do(ctx, http.MethodDelete, "/v1/sessions/"+url.PathEscape(session), nil, nil)
}

func (t *httpTransport) health(ctx context.Context) (*api.Health, error) {
	var h api.Health
	if err := t.do(ctx, http.MethodGet, "/healthz", nil, &h); err != nil {
		return nil, err
	}
	return &h, nil
}

func (t *httpTransport) recovery(ctx context.Context) (*api.RecoveryStatus, error) {
	var rs api.RecoveryStatus
	if err := t.do(ctx, http.MethodGet, "/v1/recovery", nil, &rs); err != nil {
		return nil, err
	}
	return &rs, nil
}

func (t *httpTransport) metrics(ctx context.Context) (*api.Metrics, error) {
	var m api.Metrics
	if err := t.do(ctx, http.MethodGet, "/metrics", nil, &m); err != nil {
		return nil, err
	}
	return &m, nil
}

func (t *httpTransport) tenants(ctx context.Context) (*api.TenantsStatus, error) {
	var ts api.TenantsStatus
	if err := t.do(ctx, http.MethodGet, "/v1/tenants", nil, &ts); err != nil {
		return nil, err
	}
	return &ts, nil
}

func (t *httpTransport) subscribe(context.Context, string, func(Notification)) (func(), error) {
	return nil, fmt.Errorf("client: push subscriptions require the binary protocol (tcp:// base URL); poll Status over HTTP")
}

func (t *httpTransport) close() error { return nil }
