package client

import (
	"context"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"entangled/internal/engine"
	"entangled/internal/server"
	"entangled/internal/workload"
)

// chaosListener records accepted connections so the test can cut them
// while requests are pipelined on top.
type chaosListener struct {
	net.Listener
	mu    sync.Mutex
	conns []net.Conn
}

func (l *chaosListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err == nil {
		l.mu.Lock()
		l.conns = append(l.conns, c)
		l.mu.Unlock()
	}
	return c, err
}

func (l *chaosListener) killAll() {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, c := range l.conns {
		c.Close()
	}
	l.conns = nil
}

// TestBinaryPipelineConnDrop kills the connection while calls are
// pipelined on it, repeatedly. The transport contract under test: every
// in-flight call resolves exactly once — either with its result or with
// an error IsRetryable reports true for — no call hangs (a lost ack
// would), and retrying over the transparently redialed connection
// eventually succeeds for every caller.
func TestBinaryPipelineConnDrop(t *testing.T) {
	const rows = 32
	store := workload.NewStore(1, rows, 0)
	e := engine.New(store, engine.Options{})
	srv, err := server.New(e, server.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cl := &chaosListener{Listener: ln}
	go srv.ServeWire(cl)

	c, err := New("tcp://"+ln.Addr().String(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	const callers = 24
	var acked, retries int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			qs := workload.ListQueriesAt(4, i%rows)
			for attempt := 0; attempt < 200; attempt++ {
				res, err := c.Coordinate(ctx, qs)
				if err == nil {
					if res == nil || len(res.Set) == 0 {
						t.Errorf("caller %d: empty result", i)
					}
					atomic.AddInt64(&acked, 1)
					return
				}
				if !IsRetryable(err) {
					t.Errorf("caller %d: non-retryable %v (%T)", i, err, err)
					return
				}
				atomic.AddInt64(&retries, 1)
				time.Sleep(time.Millisecond)
			}
			t.Errorf("caller %d: no success after 200 retryable attempts", i)
		}(i)
	}
	close(start)
	// Cut the connection(s) several times while the pipeline is busy;
	// each cut fails everything in flight and forces a redial.
	for k := 0; k < 4; k++ {
		time.Sleep(3 * time.Millisecond)
		cl.killAll()
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("pipelined calls hung after connection drop: lost ack")
	}
	if got := atomic.LoadInt64(&acked); got != callers {
		t.Fatalf("%d of %d callers acked exactly once", got, callers)
	}
	t.Logf("drops surfaced %d retryable errors across %d callers", atomic.LoadInt64(&retries), callers)
}
