package client

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"syscall"
	"testing"

	"entangled/internal/api"
	"entangled/internal/coord"
	"entangled/internal/wire"
)

func TestNewValidatesBaseURL(t *testing.T) {
	for _, bad := range []string{"", "not a url", "localhost:8080", "/just/a/path"} {
		if _, err := New(bad, Options{}); err == nil {
			t.Errorf("New(%q) accepted", bad)
		}
	}
	c, err := New("http://127.0.0.1:8080/", Options{})
	if err != nil {
		t.Fatal(err)
	}
	ht, ok := c.t.(*httpTransport)
	if !ok {
		t.Fatalf("http URL selected %T", c.t)
	}
	if ht.base != "http://127.0.0.1:8080" {
		t.Fatalf("base %q not normalised", ht.base)
	}
	for _, u := range []string{"tcp://127.0.0.1:9090", "binary://127.0.0.1:9090"} {
		c, err := New(u, Options{})
		if err != nil {
			t.Fatal(err)
		}
		bt, ok := c.t.(*binaryTransport)
		if !ok {
			t.Fatalf("New(%q) selected %T", u, c.t)
		}
		if bt.addr != "127.0.0.1:9090" {
			t.Fatalf("New(%q) dial address %q", u, bt.addr)
		}
	}
	if _, err := New("ftp://127.0.0.1:21", Options{}); err == nil {
		t.Fatal("unsupported scheme accepted")
	}
}

// TestErrorDecoding drives do() against a stub server: the envelope
// must come back as a typed *Error carrying status, code and message,
// with the sentinel reattached for errors.Is.
func TestErrorDecoding(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusConflict)
		_, _ = w.Write([]byte(`{"error":{"code":"unsafe_arrival","message":"nope"}}`))
	}))
	defer ts.Close()
	c, err := New(ts.URL, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Coordinate(context.Background(), nil)
	if err == nil {
		t.Fatal("error envelope ignored")
	}
	var ce *Error
	if !errors.As(err, &ce) {
		t.Fatalf("error %T is not *client.Error", err)
	}
	if ce.Status != http.StatusConflict || ce.Code != coord.CodeUnsafeArrival || ce.Message != "nope" {
		t.Fatalf("decoded error %+v", ce)
	}
	if !errors.Is(err, coord.ErrUnsafeArrival) {
		t.Fatalf("%v does not wrap coord.ErrUnsafeArrival", err)
	}
}

func TestIsRetryable(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{&Error{Code: api.CodeOverloaded}, true},
		{&Error{Code: api.CodeMailboxFull}, true},
		{&Error{Code: api.CodeDraining}, false},
		{&Error{Code: coord.CodeUnsafeArrival}, false},
		{errors.New("plain"), false},
		{nil, false},
		// Transport-level drops: the binary connection redials, HTTP
		// reconnects — all worth a retry.
		{wire.ErrConnClosed, true},
		{fmt.Errorf("call: %w", wire.ErrConnClosed), true},
		{io.EOF, true},
		{io.ErrUnexpectedEOF, true},
		{net.ErrClosed, true},
		{syscall.ECONNRESET, true},
		{syscall.ECONNREFUSED, true},
		{syscall.EPIPE, true},
		{&net.OpError{Op: "read", Err: errors.New("reset")}, true},
		{fmt.Errorf("wrapped: %w", &net.OpError{Op: "dial", Err: errors.New("refused")}), true},
	}
	for _, tc := range cases {
		if got := IsRetryable(tc.err); got != tc.want {
			t.Errorf("IsRetryable(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}

// TestInlineErrTyped pins that per-request errors inside a 200 batch
// response get the same typed treatment as transport errors.
func TestInlineErrTyped(t *testing.T) {
	err := inlineErr(&api.Error{Code: coord.CodeTooManyQueries, Message: "too big"})
	if !errors.Is(err, coord.ErrTooManyQueries) {
		t.Fatalf("inline error %v does not wrap coord.ErrTooManyQueries", err)
	}
	if !IsRetryable(inlineErr(&api.Error{Code: api.CodeOverloaded, Message: "busy"})) {
		t.Fatal("inline overloaded error not retryable")
	}
	if inlineErr(nil) != nil {
		t.Fatal("nil inline error became non-nil")
	}
}
