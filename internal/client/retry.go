package client

import (
	"context"
	"errors"
	"math/rand"
	"time"

	"entangled/internal/api"
)

// FateKnown reports whether a failed call is known to have left no
// state behind on the server, so even a non-idempotent operation (a
// session join or leave) can be retried without risking a duplicate.
// True only for typed rejections issued before any work happened:
// backpressure (queue or mailbox full), an admission throttle, a
// draining server, degraded
// mode, and the cluster routing rejections — route_moved (the node
// refused because it does not own the target) and peer_unavailable
// (the forward was never transmitted; the degraded taxonomy's
// nothing-was-sent case) — the server gates those up front, before the
// event touches a session. Everything else is fate-unknown: an indeterminate
// ack means the event was applied in memory but its durability is
// unsettled, a timeout may have fired after the event landed, and a
// dropped connection says nothing about what the server did with the
// request it may or may not have read.
func FateKnown(err error) bool {
	var e *Error
	if !errors.As(err, &e) {
		return false // transport-level: the request may have been served
	}
	switch e.Code {
	case api.CodeOverloaded, api.CodeMailboxFull, api.CodeDraining, api.CodeDegraded,
		api.CodeRouteMoved, api.CodePeerUnavailable, api.CodeThrottled:
		return true
	}
	return false
}

// Retry retries calls that fail with retryable errors, backing off
// exponentially with jitter between attempts. The zero value is
// usable: 4 attempts, 10ms base, 1s cap, no overall budget.
//
// Two policies, matching the service's ack-fate taxonomy:
//
//   - Do retries anything IsRetryable — right for idempotent calls.
//     Batch coordination is a pure read (it mutates nothing), so a
//     request whose fate is unknown can always be re-asked.
//   - DoFateKnown also requires FateKnown — right for session events,
//     which mutate the session. A join whose ack was indeterminate or
//     whose connection dropped might already be applied; blindly
//     retrying it would double-apply (or trip duplicate_id), so those
//     fates stop the loop and surface the error to the caller.
type Retry struct {
	// Attempts is the total number of tries (the first call included).
	// Zero means 4.
	Attempts int
	// Base is the first backoff; each subsequent backoff doubles it.
	// Zero means 10ms.
	Base time.Duration
	// Cap bounds a single backoff. Zero means 1s.
	Cap time.Duration
	// Budget, when positive, bounds the total time spent sleeping
	// between attempts: a retry whose backoff would exceed the remaining
	// budget is not taken.
	Budget time.Duration
	// Seed seeds the jitter; zero draws from the global source. A fixed
	// seed makes the backoff schedule reproducible.
	Seed int64

	// sleep is a test hook; nil means time.Sleep (interruptible by ctx).
	sleep func(time.Duration)
}

// Do calls fn until it succeeds, fails with a non-retryable error, the
// attempts run out, the budget is spent, or ctx ends. The last error
// is returned. Use for idempotent operations; for session events use
// DoFateKnown.
func (r Retry) Do(ctx context.Context, fn func(context.Context) error) error {
	return r.run(ctx, fn, IsRetryable)
}

// DoFateKnown is Do for non-idempotent operations: it retries only
// errors that are both retryable and fate-known (the server rejected
// the call before applying anything). An indeterminate or unknown fate
// returns immediately so the caller can reconcile (re-read session
// status) instead of double-applying.
func (r Retry) DoFateKnown(ctx context.Context, fn func(context.Context) error) error {
	return r.run(ctx, fn, func(err error) bool { return IsRetryable(err) && FateKnown(err) })
}

func (r Retry) run(ctx context.Context, fn func(context.Context) error, retryable func(error) bool) error {
	attempts := r.Attempts
	if attempts <= 0 {
		attempts = 4
	}
	base := r.Base
	if base <= 0 {
		base = 10 * time.Millisecond
	}
	cap := r.Cap
	if cap <= 0 {
		cap = time.Second
	}
	var rng *rand.Rand
	if r.Seed != 0 {
		rng = rand.New(rand.NewSource(r.Seed))
	}
	var slept time.Duration
	var err error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			d := backoff(base, cap, attempt-1, rng)
			// A server retry-after hint overrides the blind exponential
			// schedule: the server knows when capacity returns (a token
			// bucket refilling), so sleeping less just burns an attempt
			// and sleeping much more wastes latency. Jittered upward by
			// up to 50% so synchronized throttled clients don't stampede
			// the instant the bucket refills; the budget still applies.
			if h := retryAfterOf(err); h > 0 {
				d = jitterUp(h, rng)
			}
			if r.Budget > 0 && slept+d > r.Budget {
				return err
			}
			if !r.pause(ctx, d) {
				return ctx.Err()
			}
			slept += d
		}
		if err = fn(ctx); err == nil {
			return nil
		}
		if ctx.Err() != nil || !retryable(err) {
			return err
		}
	}
	return err
}

// backoff is the nth delay: base·2ⁿ capped, then jittered to a uniform
// draw from [d/2, d) so synchronized clients (all rejected by the same
// degraded window) spread out instead of re-colliding.
func backoff(base, cap time.Duration, n int, rng *rand.Rand) time.Duration {
	d := base << uint(n)
	if d > cap || d <= 0 { // <=0: the shift overflowed
		d = cap
	}
	half := int64(d / 2)
	if half <= 0 {
		return d
	}
	if rng != nil {
		return time.Duration(half + rng.Int63n(half))
	}
	return time.Duration(half + rand.Int63n(half))
}

// retryAfterOf extracts the server's capacity hint from a typed error,
// zero when absent.
func retryAfterOf(err error) time.Duration {
	var e *Error
	if errors.As(err, &e) {
		return e.RetryAfter
	}
	return 0
}

// jitterUp draws uniformly from [d, 3d/2): never earlier than the
// server's hint, spread enough to break client synchronization.
func jitterUp(d time.Duration, rng *rand.Rand) time.Duration {
	half := int64(d / 2)
	if half <= 0 {
		return d
	}
	if rng != nil {
		return d + time.Duration(rng.Int63n(half))
	}
	return d + time.Duration(rand.Int63n(half))
}

// pause sleeps d, abandoning the wait when ctx ends; reports whether
// the full pause elapsed.
func (r Retry) pause(ctx context.Context, d time.Duration) bool {
	if r.sleep != nil {
		r.sleep(d)
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
