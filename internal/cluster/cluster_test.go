package cluster_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"testing"

	"entangled/internal/api"
	"entangled/internal/cluster"
	"entangled/internal/eq"
	"entangled/internal/wire"
)

// TestRingOrderIndependent pins the zero-protocol membership contract:
// every process given the same member set builds the identical ring,
// regardless of the order the members were listed in.
func TestRingOrderIndependent(t *testing.T) {
	names := []string{"n1", "n2", "n3", "n4", "n5"}
	base := cluster.NewRing(names, 0)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5; trial++ {
		shuffled := append([]string(nil), names...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		r := cluster.NewRing(shuffled, 0)
		for k := 0; k < 1000; k++ {
			key := "s" + strconv.Itoa(k)
			if got, want := r.Owner(key), base.Owner(key); got != want {
				t.Fatalf("trial %d: Owner(%q) = %q with order %v, want %q", trial, key, got, shuffled, want)
			}
		}
	}
}

// TestRingBalance checks DefaultVNodes spreads ownership across a
// 3-node ring: no node owns a wildly disproportionate share.
func TestRingBalance(t *testing.T) {
	r := cluster.NewRing([]string{"a", "b", "c"}, 0)
	counts := map[string]int{}
	const keys = 20000
	for k := 0; k < keys; k++ {
		counts[r.Owner("session-"+strconv.Itoa(k))]++
	}
	for _, n := range r.Nodes() {
		frac := float64(counts[n]) / keys
		if frac < 0.10 || frac > 0.60 {
			t.Fatalf("node %s owns %.1f%% of keys (%v); ring is badly unbalanced", n, 100*frac, counts)
		}
	}
}

// TestRingStability checks the consistent-hashing property: removing
// one member only moves the keys that member owned.
func TestRingStability(t *testing.T) {
	full := cluster.NewRing([]string{"a", "b", "c", "d"}, 0)
	reduced := cluster.NewRing([]string{"a", "b", "c"}, 0)
	for k := 0; k < 5000; k++ {
		key := "k" + strconv.Itoa(k)
		before := full.Owner(key)
		if before == "d" {
			continue
		}
		if after := reduced.Owner(key); after != before {
			t.Fatalf("key %q moved %s -> %s although its owner stayed in the membership", key, before, after)
		}
	}
}

func TestParsePeers(t *testing.T) {
	nodes, err := cluster.ParsePeers("c=10.0.0.3:9101, a=10.0.0.1:9101 ,b=10.0.0.2:9101")
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 3 {
		t.Fatalf("parsed %d nodes, want 3", len(nodes))
	}
	for _, bad := range []string{"", "a", "=addr", "a=", "a=1,a"} {
		if _, err := cluster.ParsePeers(bad); err == nil {
			t.Errorf("ParsePeers(%q) accepted", bad)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	nodes := []cluster.Node{{Name: "a", Addr: "h:1"}, {Name: "b", Addr: "h:2"}}
	dial := func(string) cluster.PeerConn { return deadPeer{} }
	cases := []struct {
		name string
		cfg  cluster.Config
		opts cluster.Options
	}{
		{"self not a member", cluster.Config{Self: "z", Nodes: nodes}, cluster.Options{Dial: dial}},
		{"duplicate name", cluster.Config{Self: "a", Nodes: []cluster.Node{{Name: "a", Addr: "h:1"}, {Name: "a", Addr: "h:2"}}}, cluster.Options{Dial: dial}},
		{"empty membership", cluster.Config{Self: "a"}, cluster.Options{Dial: dial}},
		{"missing dial", cluster.Config{Self: "a", Nodes: nodes}, cluster.Options{}},
		{"negative vnodes", cluster.Config{Self: "a", Nodes: nodes, VNodes: -1}, cluster.Options{Dial: dial}},
	}
	for _, tc := range cases {
		if _, err := cluster.New(tc.cfg, tc.opts); err == nil {
			t.Errorf("%s: New accepted", tc.name)
		}
	}
	// A single-node membership needs no Dial: there is nobody to call.
	r, err := cluster.New(cluster.Config{Self: "solo", Nodes: []cluster.Node{{Name: "solo", Addr: "h:1"}}}, cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if !r.OwnsLocally("anything") {
		t.Fatal("a single-node ring must own every key")
	}
}

// TestVersionFingerprint pins what the membership fingerprint is
// sensitive to: order must not matter, names, addresses, and the
// virtual-node count must.
func TestVersionFingerprint(t *testing.T) {
	a := cluster.Config{Self: "a", Nodes: []cluster.Node{{Name: "a", Addr: "h:1"}, {Name: "b", Addr: "h:2"}}}
	b := cluster.Config{Self: "b", Nodes: []cluster.Node{{Name: "b", Addr: "h:2"}, {Name: "a", Addr: "h:1"}}}
	if a.Version() != b.Version() {
		t.Fatalf("order/self changed the fingerprint: %s vs %s", a.Version(), b.Version())
	}
	diffs := []cluster.Config{
		{Self: "a", Nodes: []cluster.Node{{Name: "a", Addr: "h:1"}, {Name: "b", Addr: "h:9"}}},
		{Self: "a", Nodes: []cluster.Node{{Name: "a", Addr: "h:1"}, {Name: "c", Addr: "h:2"}}},
		{Self: "a", Nodes: a.Nodes, VNodes: 128},
	}
	for i, d := range diffs {
		if d.Version() == a.Version() {
			t.Errorf("diff %d: fingerprint unchanged (%s)", i, a.Version())
		}
	}
}

// pinned builds a one-atom query body pinning T's val column to c.
func pinned(id string, c eq.Value) eq.Query {
	return eq.Query{
		ID:   id,
		Head: []eq.Atom{eq.NewAtom("R", eq.C(eq.Value("U"+id)), eq.V("x"))},
		Body: []eq.Atom{eq.NewAtom("T", eq.V("k"), eq.C(c))},
	}
}

// valueOwnedBy scans for a table value the given node owns.
func valueOwnedBy(t *testing.T, r *cluster.Ring, node string) eq.Value {
	t.Helper()
	for i := 0; i < 10000; i++ {
		v := eq.Value("c" + strconv.Itoa(i))
		if r.OwnerOfValue(v) == node {
			return v
		}
	}
	t.Fatalf("no value owned by %s in 10000 candidates", node)
	return ""
}

func TestOwnerOfQueries(t *testing.T) {
	r := cluster.NewRing([]string{"a", "b", "c"}, 0)
	placement := map[string]int{"T": 1}
	va, vb := valueOwnedBy(t, r, "a"), valueOwnedBy(t, r, "b")

	if owner, ok := cluster.OwnerOfQueries(r, placement, []eq.Query{pinned("q1", va), pinned("q2", va)}); !ok || owner != "a" {
		t.Fatalf("single-value request: owner %q ok %v, want a", owner, ok)
	}
	// Constants hashing to different owners: no single owner.
	if _, ok := cluster.OwnerOfQueries(r, placement, []eq.Query{pinned("q1", va), pinned("q2", vb)}); ok {
		t.Fatal("split-owner request reported a single owner")
	}
	// A variable in the placement column: unroutable.
	free := pinned("q", va)
	free.Body = []eq.Atom{eq.NewAtom("T", eq.V("k"), eq.V("v"))}
	if _, ok := cluster.OwnerOfQueries(r, placement, []eq.Query{free}); ok {
		t.Fatal("free-column request reported an owner")
	}
	// A relation without a placement entry: unroutable.
	other := pinned("q", va)
	other.Body = []eq.Atom{eq.NewAtom("S", eq.V("k"), eq.C(va))}
	if _, ok := cluster.OwnerOfQueries(r, placement, []eq.Query{other}); ok {
		t.Fatal("unplaced-relation request reported an owner")
	}
	// No body atoms: nothing to place by.
	empty := eq.Query{ID: "q", Head: pinned("q", va).Head}
	if _, ok := cluster.OwnerOfQueries(r, placement, []eq.Query{empty}); ok {
		t.Fatal("bodiless request reported an owner")
	}
	// Placement agreement with db's shardIndex is pinned in
	// internal/server's cluster tests against a real sharded store.
}

// fakePeer answers Forward calls in-process: serve decodes the wrapped
// envelope and returns the inner reply (or an error).
type fakePeer struct {
	serve func(fwd wire.Forward) (int, []byte, error)
}

func (p fakePeer) Call(_ context.Context, kind wire.Kind, encode func(*wire.Enc)) (int, []byte, error) {
	if kind != wire.KindForward {
		return 0, nil, fmt.Errorf("fake peer got kind %v, want KindForward", kind)
	}
	var e wire.Enc
	encode(&e)
	d := wire.NewDec(e.Bytes())
	fwd := wire.DecodeForward(d)
	if err := d.Finish(); err != nil {
		return 0, nil, fmt.Errorf("fake peer: bad forward envelope: %w", err)
	}
	return p.serve(fwd)
}
func (p fakePeer) Connected() bool { return true }
func (p fakePeer) Close() error    { return nil }

// deadPeer refuses every call with the nothing-was-transmitted error.
type deadPeer struct{}

func (deadPeer) Call(context.Context, wire.Kind, func(*wire.Enc)) (int, []byte, error) {
	return 0, nil, fmt.Errorf("dial: %w", api.ErrPeerUnavailable)
}
func (deadPeer) Connected() bool { return false }
func (deadPeer) Close() error    { return nil }

// newFakeRouter builds an a/b/c router with self=a and the given peer
// connections for b and c.
func newFakeRouter(t *testing.T, peers map[string]cluster.PeerConn) *cluster.Router {
	t.Helper()
	r, err := cluster.New(cluster.Config{
		Self: "a",
		Nodes: []cluster.Node{
			{Name: "a", Addr: "h:1"}, {Name: "b", Addr: "h:2"}, {Name: "c", Addr: "h:3"},
		},
	}, cluster.Options{
		Placement: map[string]int{"T": 1},
		Dial: func(addr string) cluster.PeerConn {
			name := map[string]string{"h:2": "b", "h:3": "c"}[addr]
			return peers[name]
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r
}

func TestRouteMovedError(t *testing.T) {
	r := newFakeRouter(t, map[string]cluster.PeerConn{"b": deadPeer{}, "c": deadPeer{}})
	// Find a session name someone else owns.
	var name string
	for i := 0; i < 10000; i++ {
		name = "s" + strconv.Itoa(i)
		if !r.OwnsLocally(name) {
			break
		}
	}
	err := r.RouteMoved("session", name)
	if !errors.Is(err, api.ErrRouteMoved) {
		t.Fatalf("RouteMoved error %v does not unwrap to api.ErrRouteMoved", err)
	}
	var o api.Owned
	if !errors.As(err, &o) || o.OwnerNode() != r.Owner(name) {
		t.Fatalf("RouteMoved error does not carry owner %q: %v", r.Owner(name), err)
	}
	if we := api.WireError(err); we.Code != api.CodeRouteMoved || we.Owner != r.Owner(name) {
		t.Fatalf("WireError(%v) = %+v, want route_moved with owner", err, we)
	}
	if m := r.Metrics(); m.RouteMoved != 1 {
		t.Fatalf("RouteMoved counter %d, want 1", m.RouteMoved)
	}
}

// TestServeBatchScatterGather drives the Router's scatter-gather with
// fake peers: the local slice is served in-process, each peer's slice
// arrives as one wrapped KindCoordinate sub-batch, a dead peer fails
// only its own requests (typed inline errors), and the merged result
// preserves request order.
func TestServeBatchScatterGather(t *testing.T) {
	ring := cluster.NewRing([]string{"a", "b", "c"}, 0)
	var bBatches int
	peerB := fakePeer{serve: func(fwd wire.Forward) (int, []byte, error) {
		if fwd.Origin != "a" || fwd.Hops != 1 || fwd.Kind != wire.KindCoordinate {
			return 0, nil, fmt.Errorf("bad envelope %+v", fwd)
		}
		d := wire.NewDec(fwd.Body)
		req := wire.DecodeCoordinateReq(d)
		if err := d.Finish(); err != nil {
			return 0, nil, err
		}
		bBatches++
		resps := make([]api.Response, len(req.Requests))
		for i, rq := range req.Requests {
			resps[i] = api.Response{ID: rq.ID + "@b"}
		}
		var e wire.Enc
		wire.PutResponses(&e, resps)
		return 200, e.Bytes(), nil
	}}
	r := newFakeRouter(t, map[string]cluster.PeerConn{"b": peerB, "c": deadPeer{}})

	va, vb, vc := valueOwnedBy(t, ring, "a"), valueOwnedBy(t, ring, "b"), valueOwnedBy(t, ring, "c")
	reqs := []api.Request{
		{ID: "r0", Queries: []eq.Query{pinned("q0", vb)}},
		{ID: "r1", Queries: []eq.Query{pinned("q1", va)}},
		{ID: "r2", Queries: []eq.Query{pinned("q2", vc)}},
		{ID: "r3"}, // unroutable: serves locally
		{ID: "r4", Queries: []eq.Query{pinned("q4", vb)}},
	}
	var localIDs []string
	out := r.ServeBatch(context.Background(), reqs, func(_ context.Context, sub []api.Request) []api.Response {
		resps := make([]api.Response, len(sub))
		for i, rq := range sub {
			localIDs = append(localIDs, rq.ID)
			resps[i] = api.Response{ID: rq.ID + "@a"}
		}
		return resps
	})

	want := []string{"r0@b", "r1@a", "", "r3@a", "r4@b"}
	for i, w := range want {
		if w == "" {
			continue
		}
		if out[i].ID != w || out[i].Error != nil {
			t.Fatalf("out[%d] = %+v, want ID %q served cleanly", i, out[i], w)
		}
	}
	// The dead peer's request failed alone, with the typed code.
	if out[2].ID != "r2" || out[2].Error == nil || out[2].Error.Code != api.CodePeerUnavailable {
		t.Fatalf("dead-peer response %+v, want inline peer_unavailable for r2", out[2])
	}
	if len(localIDs) != 2 {
		t.Fatalf("local served %v, want exactly [r1 r3]", localIDs)
	}
	if bBatches != 1 {
		t.Fatalf("peer b served %d sub-batches, want 1 (r0 and r4 coalesced)", bBatches)
	}

	m := r.Metrics()
	if m.ForwardsSent != 2 || m.ForwardFailures != 1 || m.ScatterBatches != 1 {
		t.Fatalf("metrics %+v, want 2 forwards, 1 failure, 1 scatter batch", m)
	}
	// The batch touched 3 nodes: fan-out bucket index 2.
	if m.FanoutCounts[2] != 1 {
		t.Fatalf("fanout counts %v, want one 3-node batch", m.FanoutCounts)
	}
}

// BenchmarkClusterRoute measures the pure routing decision: hashing a
// batch request's pinned constants onto the ring. This is the per-call
// overhead cluster mode adds to every locally-served request.
func BenchmarkClusterRoute(b *testing.B) {
	ring := cluster.NewRing([]string{"a", "b", "c"}, 0)
	placement := map[string]int{"T": 1}
	qs := make([][]eq.Query, 64)
	for i := range qs {
		qs[i] = []eq.Query{pinned("q"+strconv.Itoa(i), eq.Value("c"+strconv.Itoa(i)))}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := cluster.OwnerOfQueries(ring, placement, qs[i%len(qs)]); !ok {
			b.Fatal("pinned query did not route")
		}
	}
}
