package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"entangled/internal/api"
	"entangled/internal/eq"
	"entangled/internal/persist"
	"entangled/internal/wire"
)

// PeerConn is one persistent pipelined connection to a peer node. It
// is implemented by client.DialPeer (which reuses the client's
// jittered-backoff redial keeper); the indirection keeps this package
// importable by internal/client. Call errors must wrap
// api.ErrPeerUnavailable when nothing was transmitted (no live
// connection at send time) and surface raw transport errors when the
// connection died mid-call.
type PeerConn interface {
	Call(ctx context.Context, kind wire.Kind, encode func(*wire.Enc)) (status int, body []byte, err error)
	Connected() bool
	Close() error
}

// Options configures a Router beyond its membership.
type Options struct {
	// Placement maps relation name -> hash column, the
	// db.ShardedInstance contract lifted to the ring. Requests whose
	// bodies pin every placed relation's column to constants owned by
	// one node route there; everything else serves locally. Nil means
	// only sessions are placed.
	Placement map[string]int
	// Dial opens the persistent connection to one peer address;
	// required when the membership has more than one node. Pass
	// client.DialPeer (wrapped to the interface) outside tests.
	Dial func(addr string) PeerConn
}

// fanoutBuckets bounds the scatter fan-out histogram: index i counts
// batches that touched i+1 nodes, the last bucket absorbs the rest.
const fanoutBuckets = 8

// peerState is the Router's per-peer slot: the pooled connection and
// its forward counters.
type peerState struct {
	name     string
	conn     PeerConn
	forwards atomic.Int64
	failures atomic.Int64
}

// Router is one node's view of the cluster: the ring, one pooled
// binary connection per peer, and the forwarding/scatter metrics. It
// decides where work lives; the server decides what to do with that
// answer (serve, forward, or refuse with route_moved).
type Router struct {
	cfg       Config
	ring      *Ring
	placement map[string]int
	version   string
	peers     map[string]*peerState // by name, self excluded
	addrs     map[string]string

	forwardsRecv atomic.Int64
	routeMoved   atomic.Int64
	scatter      atomic.Int64

	mu     sync.Mutex
	fanout [fanoutBuckets]int64
}

// New validates the membership and builds the node's router, dialing
// one persistent connection per peer (the connection keeper redials
// with jittered backoff, so peers may be down at boot).
func New(cfg Config, opts Options) (*Router, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	names := make([]string, len(cfg.Nodes))
	addrs := make(map[string]string, len(cfg.Nodes))
	for i, n := range cfg.Nodes {
		names[i] = n.Name
		addrs[n.Name] = n.Addr
	}
	r := &Router{
		cfg:       cfg,
		ring:      NewRing(names, cfg.VNodes),
		placement: opts.Placement,
		version:   cfg.Version(),
		peers:     make(map[string]*peerState, len(cfg.Nodes)-1),
		addrs:     addrs,
	}
	for _, n := range cfg.Nodes {
		if n.Name == cfg.Self {
			continue
		}
		if opts.Dial == nil {
			return nil, fmt.Errorf("cluster: %d-node membership needs Options.Dial", len(cfg.Nodes))
		}
		r.peers[n.Name] = &peerState{name: n.Name, conn: opts.Dial(n.Addr)}
	}
	return r, nil
}

// Close tears down every peer connection.
func (r *Router) Close() {
	for _, p := range r.peers {
		p.conn.Close()
	}
}

// Self returns this node's name.
func (r *Router) Self() string { return r.cfg.Self }

// SelfAddr returns this node's own binary wire address from the
// membership — the address peers forward to, and the natural default
// for the node's binary listener.
func (r *Router) SelfAddr() string { return r.addrs[r.cfg.Self] }

// Ring returns the (immutable) placement ring.
func (r *Router) Ring() *Ring { return r.ring }

// Version returns the membership fingerprint.
func (r *Router) Version() string { return r.version }

// Owner returns the node owning a session name.
func (r *Router) Owner(session string) string { return r.ring.Owner(session) }

// OwnsLocally reports whether this node owns the session.
func (r *Router) OwnsLocally(session string) bool { return r.ring.Owner(session) == r.cfg.Self }

// OwnerOfRequest returns the node owning a batch request, ok=false
// when the request has no single owner (serve it locally).
func (r *Router) OwnerOfRequest(qs []eq.Query) (string, bool) {
	return OwnerOfQueries(r.ring, r.placement, qs)
}

// RouteMoved records and builds the typed error a node answers when a
// request (forwarded, or sent by a stale direct client) targets
// something it does not own: route_moved, carrying the owner.
func (r *Router) RouteMoved(what, session string) error {
	r.routeMoved.Add(1)
	return &routeMovedError{what: what + " " + session, owner: r.ring.Owner(session)}
}

// routeMovedError wraps api.ErrRouteMoved and names the owning node so
// api.WireError carries it to the client.
type routeMovedError struct {
	what  string
	owner string
}

func (e *routeMovedError) Error() string {
	return fmt.Sprintf("cluster: route moved: %s is owned by %s", e.what, e.owner)
}

func (e *routeMovedError) Unwrap() error { return api.ErrRouteMoved }

// OwnerNode implements api.Owned.
func (e *routeMovedError) OwnerNode() string { return e.owner }

// ReceivedForward meters an inbound KindForward frame.
func (r *Router) ReceivedForward() { r.forwardsRecv.Add(1) }

// Forward sends one wrapped request to a peer and returns the reply
// the inner request received there: the HTTP-equivalent status and the
// raw kind-specific reply body on success, a *wire.ReplyError to relay
// verbatim on a service-level failure, or a typed transport error —
// api.ErrPeerUnavailable when nothing was transmitted (fate known,
// retry freely), persist.ErrIndeterminate when the connection died
// mid-call (the peer may have applied the event).
func (r *Router) Forward(ctx context.Context, node string, kind wire.Kind, encode func(*wire.Enc)) (status int, body []byte, err error) {
	p := r.peers[node]
	if p == nil {
		return 0, nil, fmt.Errorf("cluster: %q is not a peer of %s", node, r.cfg.Self)
	}
	p.forwards.Add(1)
	fwd := func(e *wire.Enc) {
		e.String(r.cfg.Self)
		e.Int(1)
		e.Byte(byte(kind))
		var inner wire.Enc
		encode(&inner)
		e.Uvarint(uint64(len(inner.Bytes())))
		e.Raw(inner.Bytes())
	}
	status, body, err = p.conn.Call(ctx, wire.KindForward, fwd)
	var re *wire.ReplyError
	switch {
	case err == nil || errors.As(err, &re):
		return status, body, err
	case errors.Is(err, api.ErrPeerUnavailable):
		p.failures.Add(1)
		return 0, nil, err
	case ctx.Err() != nil:
		p.failures.Add(1)
		return 0, nil, ctx.Err()
	default:
		p.failures.Add(1)
		return 0, nil, fmt.Errorf("%w: forward of %s to %s died mid-call: %v", persist.ErrIndeterminate, kind, node, err)
	}
}

// ServeBatch scatter-gathers one CoordinateMany batch: requests owned
// here (or with no single owner) go through local, each peer's slice
// is forwarded as one wrapped KindCoordinate sub-batch, and the
// per-node responses merge back in request order. A dead peer fails
// only its own slice — each affected request carries a typed inline
// error, the rest of the batch is unharmed (the batch contract).
func (r *Router) ServeBatch(ctx context.Context, reqs []api.Request, local func(context.Context, []api.Request) []api.Response) []api.Response {
	owners := make([]string, len(reqs))
	groups := make(map[string][]int)
	for i, rq := range reqs {
		node, ok := r.OwnerOfRequest(rq.Queries)
		if !ok || node == r.cfg.Self {
			node = r.cfg.Self
		}
		owners[i] = node
		groups[node] = append(groups[node], i)
	}
	r.observeFanout(len(groups))

	out := make([]api.Response, len(reqs))
	var wg sync.WaitGroup
	for node, idxs := range groups {
		sub := make([]api.Request, len(idxs))
		for j, i := range idxs {
			sub[j] = reqs[i]
		}
		wg.Add(1)
		go func(node string, idxs []int, sub []api.Request) {
			defer wg.Done()
			var resps []api.Response
			if node == r.cfg.Self {
				resps = local(ctx, sub)
			} else {
				_, body, err := r.Forward(ctx, node, wire.KindCoordinate, wire.CoordinateReq{Requests: sub}.Encode)
				if err != nil {
					we := replayWireError(err)
					for _, i := range idxs {
						out[i] = api.Response{ID: reqs[i].ID, Error: we}
					}
					return
				}
				d := wire.NewDec(body)
				resps = wire.GetResponses(d)
				if d.Err() != nil || len(resps) != len(sub) {
					we := api.Errf(api.CodeInternal, "cluster: %s returned a malformed batch reply", node)
					for _, i := range idxs {
						out[i] = api.Response{ID: reqs[i].ID, Error: we}
					}
					return
				}
			}
			for j, i := range idxs {
				out[i] = resps[j]
			}
		}(node, idxs, sub)
	}
	wg.Wait()
	return out
}

// replayWireError renders a forward failure as the inline error its
// requests carry: a peer's service-level reply relays verbatim, a
// transport failure maps through the typed taxonomy.
func replayWireError(err error) *api.Error {
	var re *wire.ReplyError
	if errors.As(err, &re) {
		return &api.Error{Code: re.Code, Message: re.Message, Owner: re.Owner}
	}
	return api.WireError(err)
}

// observeFanout meters how many nodes one batch touched.
func (r *Router) observeFanout(nodes int) {
	if nodes > 1 {
		r.scatter.Add(1)
	}
	i := nodes - 1
	if i < 0 {
		i = 0
	}
	if i >= fanoutBuckets {
		i = fanoutBuckets - 1
	}
	r.mu.Lock()
	r.fanout[i]++
	r.mu.Unlock()
}

// Status reports the node's cluster view for /v1/cluster.
func (r *Router) Status() api.ClusterStatus {
	cs := api.ClusterStatus{
		Enabled:      true,
		Self:         r.cfg.Self,
		VirtualNodes: r.cfg.VNodes,
		Version:      r.version,
		Nodes:        make([]api.ClusterNode, len(r.cfg.Nodes)),
	}
	for i, n := range r.cfg.Nodes {
		cn := api.ClusterNode{Name: n.Name, Addr: n.Addr, Self: n.Name == r.cfg.Self}
		if p := r.peers[n.Name]; p != nil {
			cn.Connected = p.conn.Connected()
		}
		cs.Nodes[i] = cn
	}
	rels := make([]string, 0, len(r.placement))
	for name := range r.placement {
		rels = append(rels, name)
	}
	sort.Strings(rels)
	for _, name := range rels {
		cs.Relations = append(cs.Relations, api.RelationPlacement{Relation: name, Column: r.placement[name]})
	}
	return cs
}

// Health reports the cluster slice of /healthz.
func (r *Router) Health() *api.ClusterHealth {
	ch := &api.ClusterHealth{Self: r.cfg.Self, Nodes: len(r.cfg.Nodes)}
	for _, n := range r.cfg.Nodes {
		if p := r.peers[n.Name]; p != nil && !p.conn.Connected() {
			ch.PeersDown = append(ch.PeersDown, n.Name)
		}
	}
	return ch
}

// Metrics reports the cluster slice of /metrics.
func (r *Router) Metrics() *api.ClusterMetrics {
	m := &api.ClusterMetrics{
		Self:             r.cfg.Self,
		Nodes:            len(r.cfg.Nodes),
		ForwardsReceived: r.forwardsRecv.Load(),
		RouteMoved:       r.routeMoved.Load(),
		ScatterBatches:   r.scatter.Load(),
		FanoutCounts:     make([]int64, fanoutBuckets),
	}
	r.mu.Lock()
	copy(m.FanoutCounts, r.fanout[:])
	r.mu.Unlock()
	for _, n := range r.cfg.Nodes {
		p := r.peers[n.Name]
		if p == nil {
			continue
		}
		pm := api.PeerMetrics{
			Name:      n.Name,
			Connected: p.conn.Connected(),
			Forwards:  p.forwards.Load(),
			Failures:  p.failures.Load(),
		}
		m.ForwardsSent += pm.Forwards
		m.ForwardFailures += pm.Failures
		m.Peers = append(m.Peers, pm)
	}
	return m
}
