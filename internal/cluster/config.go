package cluster

import (
	"fmt"
	"sort"
	"strings"
)

// Node is one cluster member: a stable name (the ring hashes names,
// so renaming a node moves its placements) and the binary wire address
// peers forward over and cluster-aware clients dial.
type Node struct {
	Name string
	Addr string
}

// Config is the static membership a node boots with. Every node in a
// cluster must be started with the same Nodes and VNodes (Version
// fingerprints both, so disagreement is detectable); Self names this
// process's own entry.
type Config struct {
	// Self is this node's name; it must appear in Nodes.
	Self string
	// Nodes is the full membership, self included.
	Nodes []Node
	// VNodes is the number of virtual ring points per node; 0 means
	// DefaultVNodes.
	VNodes int
}

// DefaultVNodes is the virtual-point count used when Config.VNodes is
// zero — enough that a 3-node ring balances within a few percent.
const DefaultVNodes = 64

// ParsePeers parses the -cluster-peers flag format: a comma-separated
// list of name=host:port entries, e.g.
//
//	a=10.0.0.1:9101,b=10.0.0.2:9101,c=10.0.0.3:9101
//
// Order does not matter; the ring is built from the sorted names.
func ParsePeers(s string) ([]Node, error) {
	var nodes []Node
	for _, ent := range strings.Split(s, ",") {
		ent = strings.TrimSpace(ent)
		if ent == "" {
			continue
		}
		name, addr, ok := strings.Cut(ent, "=")
		if !ok {
			return nil, fmt.Errorf("cluster: peer entry %q is not name=addr", ent)
		}
		name, addr = strings.TrimSpace(name), strings.TrimSpace(addr)
		if name == "" || addr == "" {
			return nil, fmt.Errorf("cluster: peer entry %q has an empty name or address", ent)
		}
		nodes = append(nodes, Node{Name: name, Addr: addr})
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: no peers in %q", s)
	}
	return nodes, nil
}

// normalize sorts the membership by name, applies defaults, and
// validates: names unique and non-empty, addresses non-empty, Self
// present.
func (c Config) normalize() (Config, error) {
	if c.VNodes == 0 {
		c.VNodes = DefaultVNodes
	}
	if c.VNodes < 1 {
		return c, fmt.Errorf("cluster: virtual node count %d < 1", c.VNodes)
	}
	if len(c.Nodes) == 0 {
		return c, fmt.Errorf("cluster: empty membership")
	}
	nodes := make([]Node, len(c.Nodes))
	copy(nodes, c.Nodes)
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Name < nodes[j].Name })
	c.Nodes = nodes
	seen := false
	for i, n := range nodes {
		if n.Name == "" || n.Addr == "" {
			return c, fmt.Errorf("cluster: node %d has an empty name or address", i)
		}
		if i > 0 && nodes[i-1].Name == n.Name {
			return c, fmt.Errorf("cluster: duplicate node name %q", n.Name)
		}
		if n.Name == c.Self {
			seen = true
		}
	}
	if !seen {
		return c, fmt.Errorf("cluster: self %q is not in the membership", c.Self)
	}
	return c, nil
}

// Version fingerprints the membership (names + addresses, order
// independent) and the virtual-node count: two nodes reporting the
// same version hold byte-identical rings and address tables.
func (c Config) Version() string {
	if c.VNodes == 0 {
		c.VNodes = DefaultVNodes
	}
	nodes := make([]Node, len(c.Nodes))
	copy(nodes, c.Nodes)
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Name < nodes[j].Name })
	c.Nodes = nodes
	h := uint32(2166136261)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint32(s[i])
			h *= 16777619
		}
		h ^= 0
		h *= 16777619
	}
	mix(fmt.Sprintf("v%d", c.VNodes))
	for _, n := range c.Nodes {
		mix(n.Name)
		mix(n.Addr)
	}
	return fmt.Sprintf("ring-%08x", h)
}
