// Package cluster turns N coordserve processes into one logical
// service: static membership, a consistent-hash ring with virtual
// nodes, and a per-node Router that serves locally-owned work and
// forwards the rest over pooled binary connections.
//
// The ring owns two placements, both derived from the same FNV-1a hash
// the in-process db.ShardedInstance shards with:
//
//   - named streaming sessions are placed by session name, preserving
//     the registry's single-goroutine-per-session model per node — a
//     session has exactly one home, so its event order is exactly the
//     single-node order;
//   - batch coordination requests are placed by the constant their body
//     atoms pin to their relation's hash column (the ShardedInstance
//     placement contract, lifted from shard index to ring owner). A
//     request whose bodies do not pin a single owner is served by the
//     node that received it — every node holds a full replica of the
//     reference store, so any node computes bit-identical results; the
//     ring only decides locality.
//
// Forwards travel inside wire.KindForward envelopes over one
// persistent pipelined connection per peer and are terminal: a node
// that receives a forward for a target it does not own answers a typed
// route_moved error naming the owner instead of forwarding again, so a
// request crosses at most one node boundary and a stale ring can never
// create a forwarding loop. CoordinateMany batches whose requests span
// owners are scatter-gathered: split by owner, served concurrently,
// and merged back in request order with exact per-request DBQueries
// preserved.
package cluster
