package cluster

import (
	"fmt"
	"sort"

	"entangled/internal/eq"
)

// fnv32 is the FNV-1a hash db.ShardedInstance places tuples with —
// cluster placement and in-process shard placement must agree on the
// hash of a value, so both use this exact function.
func fnv32(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// point is one virtual node position on the ring.
type point struct {
	hash uint32
	node string
}

// Ring is a consistent-hash ring: each node contributes vnodes virtual
// points (the hash of "name#i"), and a key is owned by the node whose
// point follows the key's hash clockwise. The construction is a pure
// function of the sorted member names and the virtual-point count, so
// every process given the same membership builds the identical ring —
// there is no ring-state protocol to run.
//
// A Ring is immutable after New and safe for concurrent use.
type Ring struct {
	points []point
	nodes  []string // sorted member names
	vnodes int
}

// NewRing builds the ring over the given member names (order
// independent; vnodes < 1 means DefaultVNodes).
func NewRing(nodes []string, vnodes int) *Ring {
	if vnodes < 1 {
		vnodes = DefaultVNodes
	}
	sorted := make([]string, len(nodes))
	copy(sorted, nodes)
	sort.Strings(sorted)
	r := &Ring{nodes: sorted, vnodes: vnodes, points: make([]point, 0, len(nodes)*vnodes)}
	for _, n := range sorted {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, point{hash: fnv32(fmt.Sprintf("%s#%d", n, i)), node: n})
		}
	}
	// Ties broken by name so the ring is deterministic even on hash
	// collisions between different nodes' points.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	return r
}

// Nodes returns the sorted member names.
func (r *Ring) Nodes() []string { return r.nodes }

// VNodes returns the virtual-point count per node.
func (r *Ring) VNodes() int { return r.vnodes }

// Owner returns the member owning key: the node of the first virtual
// point at or after fnv32(key), wrapping at the top of the ring.
func (r *Ring) Owner(key string) string {
	return r.ownerOf(fnv32(key))
}

// OwnerOfValue returns the member owning a relation value — the
// cluster-level analogue of db's shardIndex.
func (r *Ring) OwnerOfValue(v eq.Value) string {
	return r.ownerOf(fnv32(string(v)))
}

func (r *Ring) ownerOf(h uint32) string {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}

// OwnerOfQueries returns the single member owning every body atom of
// every query, mirroring db.ShardedInstance.Route exactly: each atom's
// relation must have a placement column, that column's term must be a
// constant, and every constant must hash to the same owner. Any other
// shape returns ok=false — the request has no single owner and the
// receiving node serves it locally against its full replica.
func OwnerOfQueries(r *Ring, placement map[string]int, qs []eq.Query) (owner string, ok bool) {
	for _, q := range qs {
		for _, a := range q.Body {
			col, known := placement[a.Rel]
			if !known || col >= len(a.Args) {
				return "", false
			}
			t := a.Args[col]
			if t.IsVar() {
				return "", false
			}
			o := r.OwnerOfValue(t.Const())
			if owner == "" {
				owner = o
			} else if owner != o {
				return "", false
			}
		}
	}
	if owner == "" {
		return "", false // no body atoms: nothing to place by
	}
	return owner, true
}
