package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddEdgeDedup(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	if g.M() != 2 {
		t.Fatalf("M = %d, want 2", g.M())
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Fatal("HasEdge wrong")
	}
	if g.OutDegree(0) != 1 {
		t.Fatalf("OutDegree(0) = %d", g.OutDegree(0))
	}
}

func TestSCCChain(t *testing.T) {
	// 0 -> 1 -> 2: three singleton components.
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	comp, n := g.SCC()
	if n != 3 {
		t.Fatalf("ncomp = %d", n)
	}
	// Reverse topological numbering: edges go from higher to lower ids.
	if !(comp[0] > comp[1] && comp[1] > comp[2]) {
		t.Fatalf("comp = %v, want reverse-topological numbering", comp)
	}
}

func TestSCCCycle(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	g.AddEdge(2, 3)
	comp, n := g.SCC()
	if n != 2 {
		t.Fatalf("ncomp = %d, want 2", n)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Fatalf("cycle should be one component: %v", comp)
	}
	if comp[3] == comp[0] {
		t.Fatal("node 3 is its own component")
	}
}

func TestSCCSelfLoop(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 0)
	g.AddEdge(0, 1)
	_, n := g.SCC()
	if n != 2 {
		t.Fatalf("ncomp = %d, want 2 (self loop is a singleton SCC)", n)
	}
}

func TestCondense(t *testing.T) {
	// Two 2-cycles joined by one edge.
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	g.AddEdge(2, 3)
	g.AddEdge(3, 2)
	g.AddEdge(1, 2)
	dag, comp, members := g.Condense()
	if dag.N() != 2 {
		t.Fatalf("dag has %d nodes", dag.N())
	}
	if comp[0] != comp[1] || comp[2] != comp[3] || comp[0] == comp[2] {
		t.Fatalf("comp = %v", comp)
	}
	if !dag.HasEdge(comp[0], comp[2]) {
		t.Fatal("condensation must keep the cross edge")
	}
	if len(members[comp[0]]) != 2 || len(members[comp[2]]) != 2 {
		t.Fatalf("members = %v", members)
	}
	if _, err := dag.TopoOrder(); err != nil {
		t.Fatalf("condensation must be a DAG: %v", err)
	}
}

func TestTopoOrder(t *testing.T) {
	g := New(4)
	g.AddEdge(3, 1)
	g.AddEdge(1, 0)
	g.AddEdge(3, 2)
	g.AddEdge(2, 0)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make([]int, 4)
	for i, v := range order {
		pos[v] = i
	}
	for _, e := range g.Edges() {
		if pos[e[0]] >= pos[e[1]] {
			t.Fatalf("order %v violates edge %v", order, e)
		}
	}
}

func TestTopoOrderCycle(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	if _, err := g.TopoOrder(); err != ErrCycle {
		t.Fatalf("want ErrCycle, got %v", err)
	}
}

func TestReachable(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	r := g.Reachable(0)
	if !r[0] || !r[1] || !r[2] || r[3] {
		t.Fatalf("Reachable = %v", r)
	}
}

func TestStronglyConnected(t *testing.T) {
	if !New(0).StronglyConnected() || !New(1).StronglyConnected() {
		t.Fatal("trivial graphs are strongly connected")
	}
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	if !g.StronglyConnected() {
		t.Fatal("3-cycle is strongly connected")
	}
	g2 := New(2)
	g2.AddEdge(0, 1)
	if g2.StronglyConnected() {
		t.Fatal("one-way pair is not strongly connected")
	}
}

func TestReverse(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	r := g.Reverse()
	if !r.HasEdge(1, 0) || !r.HasEdge(2, 1) || r.HasEdge(0, 1) {
		t.Fatal("Reverse wrong")
	}
}

func TestSubgraph(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	s, orig := g.Subgraph([]int{1, 2})
	if s.N() != 2 || s.M() != 1 {
		t.Fatalf("subgraph n=%d m=%d", s.N(), s.M())
	}
	if orig[0] != 1 || orig[1] != 2 {
		t.Fatalf("orig = %v", orig)
	}
}

func TestCountSimplePaths(t *testing.T) {
	// Diamond: two simple paths 0 -> 3.
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	if got := g.CountSimplePaths(0, 3, 5); got != 2 {
		t.Fatalf("paths = %d, want 2", got)
	}
	if got := g.CountSimplePaths(0, 3, 1); got != 1 {
		t.Fatalf("capped paths = %d, want 1", got)
	}
	if got := g.CountSimplePaths(3, 0, 5); got != 0 {
		t.Fatalf("no reverse path, got %d", got)
	}
	// Cycle through the start node.
	c := New(3)
	c.AddEdge(0, 1)
	c.AddEdge(1, 2)
	c.AddEdge(2, 0)
	if got := c.CountSimplePaths(0, 0, 5); got != 1 {
		t.Fatalf("cycle count = %d, want 1", got)
	}
}

// naiveSCC computes components by mutual reachability, as an oracle.
func naiveSCC(g *Digraph) []int {
	n := g.N()
	reach := make([][]bool, n)
	for i := 0; i < n; i++ {
		reach[i] = g.Reachable(i)
	}
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	next := 0
	for i := 0; i < n; i++ {
		if comp[i] >= 0 {
			continue
		}
		comp[i] = next
		for j := i + 1; j < n; j++ {
			if comp[j] < 0 && reach[i][j] && reach[j][i] {
				comp[j] = next
			}
		}
		next++
	}
	return comp
}

// Property: Tarjan agrees with the mutual-reachability oracle on random
// graphs, and the component numbering is reverse topological.
func TestQuickSCCMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func() bool {
		n := 1 + rng.Intn(10)
		g := New(n)
		for e := 0; e < rng.Intn(2*n+1); e++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		comp, _ := g.SCC()
		want := naiveSCC(g)
		// Same partition (possibly different numbering).
		pairEq := func(c []int, i, j int) bool { return c[i] == c[j] }
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if pairEq(comp, i, j) != pairEq(want, i, j) {
					return false
				}
			}
		}
		// Reverse topological numbering across components.
		for _, e := range g.Edges() {
			if comp[e[0]] != comp[e[1]] && comp[e[0]] <= comp[e[1]] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: TopoOrder of a condensation is always valid.
func TestQuickCondensationTopo(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	f := func() bool {
		n := 1 + rng.Intn(12)
		g := New(n)
		for e := 0; e < rng.Intn(3*n+1); e++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		dag, comp, members := g.Condense()
		order, err := dag.TopoOrder()
		if err != nil {
			return false
		}
		pos := make([]int, dag.N())
		for i, v := range order {
			pos[v] = i
		}
		for _, e := range g.Edges() {
			cu, cv := comp[e[0]], comp[e[1]]
			if cu != cv && pos[cu] >= pos[cv] {
				return false
			}
		}
		// members is a partition.
		seen := map[int]bool{}
		total := 0
		for _, ms := range members {
			for _, v := range ms {
				if seen[v] {
					return false
				}
				seen[v] = true
				total++
			}
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
