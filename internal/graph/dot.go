package graph

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the digraph in Graphviz DOT syntax. labels maps node
// ids to display labels; nil uses the node number. The output is
// deterministic (nodes and edges in ascending order), so it is safe to
// assert on in tests and diff across runs.
func (g *Digraph) WriteDOT(w io.Writer, name string, labels []string) error {
	if name == "" {
		name = "G"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n", name)
	for u := 0; u < g.n; u++ {
		label := fmt.Sprintf("%d", u)
		if labels != nil && u < len(labels) && labels[u] != "" {
			label = labels[u]
		}
		fmt.Fprintf(&sb, "  n%d [label=%q];\n", u, label)
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(&sb, "  n%d -> n%d;\n", e[0], e[1])
	}
	sb.WriteString("}\n")
	_, err := io.WriteString(w, sb.String())
	return err
}
