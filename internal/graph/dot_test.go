package graph

import (
	"strings"
	"testing"
)

func TestWriteDOT(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	var sb strings.Builder
	if err := g.WriteDOT(&sb, "coordination", []string{"qC", "qG", ""}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`digraph "coordination" {`,
		`n0 [label="qC"];`,
		`n1 [label="qG"];`,
		`n2 [label="2"];`, // empty label falls back to the node number
		`n0 -> n1;`,
		`n1 -> n2;`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestWriteDOTDefaults(t *testing.T) {
	g := New(1)
	var sb strings.Builder
	if err := g.WriteDOT(&sb, "", nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `digraph "G"`) {
		t.Fatalf("default name: %s", sb.String())
	}
	// Deterministic output.
	var sb2 strings.Builder
	_ = g.WriteDOT(&sb2, "", nil)
	if sb.String() != sb2.String() {
		t.Fatal("DOT output must be deterministic")
	}
}
