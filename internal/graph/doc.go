// Package graph provides the directed-graph substrate the paper's
// implementation takes from JGraphT: strongly connected components
// (Tarjan), condensation into a component DAG, topological order and
// reachability. Nodes are integers 0..n-1.
package graph
