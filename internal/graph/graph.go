package graph

import (
	"errors"
	"sort"
)

// Digraph is a simple directed graph. Parallel edges are collapsed;
// self-loops are allowed.
type Digraph struct {
	n   int
	adj [][]int
	has []map[int]bool
	m   int
}

// New returns an empty digraph on n nodes.
func New(n int) *Digraph {
	return &Digraph{
		n:   n,
		adj: make([][]int, n),
		has: make([]map[int]bool, n),
	}
}

// N returns the number of nodes.
func (g *Digraph) N() int { return g.n }

// M returns the number of (distinct) edges.
func (g *Digraph) M() int { return g.m }

// AddEdge inserts the edge u -> v, collapsing duplicates.
func (g *Digraph) AddEdge(u, v int) {
	if g.has[u] == nil {
		g.has[u] = map[int]bool{}
	}
	if g.has[u][v] {
		return
	}
	g.has[u][v] = true
	g.adj[u] = append(g.adj[u], v)
	g.m++
}

// HasEdge reports whether u -> v is present.
func (g *Digraph) HasEdge(u, v int) bool { return g.has[u] != nil && g.has[u][v] }

// Succ returns u's successor list (shared; do not mutate).
func (g *Digraph) Succ(u int) []int { return g.adj[u] }

// OutDegree returns the number of distinct successors of u.
func (g *Digraph) OutDegree(u int) int { return len(g.adj[u]) }

// InDegrees returns the in-degree of every node.
func (g *Digraph) InDegrees() []int {
	deg := make([]int, g.n)
	for u := 0; u < g.n; u++ {
		for _, v := range g.adj[u] {
			deg[v]++
		}
	}
	return deg
}

// Reverse returns the graph with all edges flipped.
func (g *Digraph) Reverse() *Digraph {
	r := New(g.n)
	for u := 0; u < g.n; u++ {
		for _, v := range g.adj[u] {
			r.AddEdge(v, u)
		}
	}
	return r
}

// Subgraph returns the induced subgraph on the given nodes, along with
// the mapping from new node ids to original ids.
func (g *Digraph) Subgraph(nodes []int) (*Digraph, []int) {
	idx := make(map[int]int, len(nodes))
	orig := make([]int, len(nodes))
	for i, u := range nodes {
		idx[u] = i
		orig[i] = u
	}
	s := New(len(nodes))
	for _, u := range nodes {
		for _, v := range g.adj[u] {
			if j, ok := idx[v]; ok {
				s.AddEdge(idx[u], j)
			}
		}
	}
	return s, orig
}

// SCC computes strongly connected components with an iterative Tarjan
// algorithm. It returns comp (node -> component id) and the number of
// components. Component ids are in reverse topological order of the
// condensation: if there is an edge from component a to component b
// (a != b) then a > b, i.e. component 0 is a sink.
func (g *Digraph) SCC() (comp []int, ncomp int) {
	const unvisited = -1
	index := make([]int, g.n)
	low := make([]int, g.n)
	onStack := make([]bool, g.n)
	comp = make([]int, g.n)
	for i := range index {
		index[i] = unvisited
		comp[i] = unvisited
	}
	var stack []int
	next := 0

	type frame struct {
		v  int
		ei int
	}
	for root := 0; root < g.n; root++ {
		if index[root] != unvisited {
			continue
		}
		work := []frame{{root, 0}}
		for len(work) > 0 {
			f := &work[len(work)-1]
			v := f.v
			if f.ei == 0 {
				index[v] = next
				low[v] = next
				next++
				stack = append(stack, v)
				onStack[v] = true
			}
			advanced := false
			for f.ei < len(g.adj[v]) {
				w := g.adj[v][f.ei]
				f.ei++
				if index[w] == unvisited {
					work = append(work, frame{w, 0})
					advanced = true
					break
				}
				if onStack[w] && low[w] < low[v] {
					low[v] = low[w]
				}
			}
			if advanced {
				continue
			}
			// v is finished.
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = ncomp
					if w == v {
						break
					}
				}
				ncomp++
			}
			work = work[:len(work)-1]
			if len(work) > 0 {
				parent := work[len(work)-1].v
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
		}
	}
	return comp, ncomp
}

// Condense returns the condensation DAG of g (one node per SCC, edges
// between distinct components) plus the membership: comp maps original
// nodes to component ids and members lists each component's nodes.
// Component ids follow SCC's reverse-topological numbering.
func (g *Digraph) Condense() (dag *Digraph, comp []int, members [][]int) {
	comp, ncomp := g.SCC()
	dag = New(ncomp)
	members = make([][]int, ncomp)
	for u := 0; u < g.n; u++ {
		members[comp[u]] = append(members[comp[u]], u)
		for _, v := range g.adj[u] {
			if comp[u] != comp[v] {
				dag.AddEdge(comp[u], comp[v])
			}
		}
	}
	return dag, comp, members
}

// ErrCycle is returned by TopoOrder on cyclic input.
var ErrCycle = errors.New("graph: not a DAG")

// TopoOrder returns a topological order (sources first) or ErrCycle.
func (g *Digraph) TopoOrder() ([]int, error) {
	deg := g.InDegrees()
	var queue []int
	for u := 0; u < g.n; u++ {
		if deg[u] == 0 {
			queue = append(queue, u)
		}
	}
	var order []int
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, v := range g.adj[u] {
			deg[v]--
			if deg[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	if len(order) != g.n {
		return nil, ErrCycle
	}
	return order, nil
}

// Reachable returns the set of nodes reachable from u (including u).
func (g *Digraph) Reachable(u int) []bool {
	seen := make([]bool, g.n)
	stack := []int{u}
	seen[u] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.adj[v] {
			if !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	return seen
}

// StronglyConnected reports whether there is a directed path between
// every ordered pair of nodes (the paper's uniqueness condition on the
// coordination graph). The empty and single-node graphs count as
// strongly connected.
func (g *Digraph) StronglyConnected() bool {
	if g.n <= 1 {
		return true
	}
	_, ncomp := g.SCC()
	return ncomp == 1
}

// CountSimplePaths counts simple paths (no repeated edge) from u to v, up
// to the given cap; it returns min(count, cap). When u == v only paths of
// length >= 1 (cycles through u) are counted. Used to test the paper's
// single-connectedness property, which requires at most one simple path
// between every pair; callers pass cap=2.
func (g *Digraph) CountSimplePaths(u, v, cap int) int {
	type edge struct{ a, b int }
	usedEdge := map[edge]bool{}
	count := 0
	var dfs func(x int, steps int)
	dfs = func(x, steps int) {
		if count >= cap {
			return
		}
		if x == v && steps > 0 {
			count++
			return
		}
		for _, w := range g.adj[x] {
			e := edge{x, w}
			if usedEdge[e] {
				continue
			}
			usedEdge[e] = true
			dfs(w, steps+1)
			delete(usedEdge, e)
			if count >= cap {
				return
			}
		}
	}
	dfs(u, 0)
	return count
}

// Edges returns all edges sorted lexicographically; handy for tests.
func (g *Digraph) Edges() [][2]int {
	var out [][2]int
	for u := 0; u < g.n; u++ {
		for _, v := range g.adj[u] {
			out = append(out, [2]int{u, v})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}
