package persist

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"os"

	"entangled/internal/fault"
)

// frameHeader is the fixed prefix of every frame: 4-byte little-endian
// payload length, then 4-byte CRC-32 (IEEE) of the payload.
const frameHeader = 8

// maxFrame bounds a single payload. Mutations and events are tiny; a
// length above this is corruption, not data, and rejecting it keeps a
// flipped length byte from asking replay to allocate gigabytes.
const maxFrame = 1 << 24

// ErrCorrupt is the sentinel wrapped by every corruption error; match
// with errors.Is. Replay stops cleanly at the last valid frame and
// reports the first bad byte's position — it never panics and never
// applies a partial frame.
var ErrCorrupt = errors.New("persist: corrupt log")

// CorruptError reports where a log stopped being decodable.
type CorruptError struct {
	// Path is the offending file ("" when replaying a bare reader).
	Path string
	// Offset is the start of the first undecodable frame: every byte
	// before it parsed and checksummed cleanly.
	Offset int64
	// Reason says what failed: torn header, torn payload, implausible
	// length, or CRC mismatch.
	Reason string
}

func (e *CorruptError) Error() string {
	if e.Path == "" {
		return fmt.Sprintf("persist: corrupt log at offset %d: %s", e.Offset, e.Reason)
	}
	return fmt.Sprintf("persist: %s: corrupt at offset %d: %s", e.Path, e.Offset, e.Reason)
}

// Is makes errors.Is(err, ErrCorrupt) true for every corruption error.
func (e *CorruptError) Is(target error) bool { return target == ErrCorrupt }

// appendFrame appends one framed payload to buf and returns it.
func appendFrame(buf, payload []byte) []byte {
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	return append(append(buf, hdr[:]...), payload...)
}

// ReplayFrames decodes frames from r in order, calling fn on each
// payload (valid only for the duration of the call). It returns the
// number of frames delivered and the offset just past the last valid
// frame. A clean end-of-log returns err == nil; anything undecodable —
// torn header, torn payload, implausible length, CRC mismatch — returns
// a *CorruptError positioned at the first bad frame, with every earlier
// frame already delivered. An error from fn aborts the replay and is
// returned as-is.
func ReplayFrames(r io.Reader, fn func(payload []byte) error) (frames int, valid int64, err error) {
	var hdr [frameHeader]byte
	var payload []byte
	for {
		n, err := io.ReadFull(r, hdr[:])
		if err == io.EOF {
			return frames, valid, nil
		}
		if err == io.ErrUnexpectedEOF {
			return frames, valid, &CorruptError{Offset: valid, Reason: fmt.Sprintf("torn frame header (%d of %d bytes)", n, frameHeader)}
		}
		if err != nil {
			return frames, valid, err
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		want := binary.LittleEndian.Uint32(hdr[4:8])
		if length == 0 || length > maxFrame {
			return frames, valid, &CorruptError{Offset: valid, Reason: fmt.Sprintf("implausible frame length %d", length)}
		}
		if cap(payload) < int(length) {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if n, err := io.ReadFull(r, payload); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return frames, valid, &CorruptError{Offset: valid, Reason: fmt.Sprintf("torn frame payload (%d of %d bytes)", n, length)}
			}
			return frames, valid, err
		}
		if got := crc32.ChecksumIEEE(payload); got != want {
			return frames, valid, &CorruptError{Offset: valid, Reason: fmt.Sprintf("crc mismatch (stored %08x, computed %08x)", want, got)}
		}
		if err := fn(payload); err != nil {
			return frames, valid, err
		}
		frames++
		valid += frameHeader + int64(length)
	}
}

// replayFile replays a log file from disk, annotating corruption with
// the path. Missing files replay as empty logs.
func replayFile(fsys fault.FS, path string, fn func(payload []byte) error) (frames int, valid int64, err error) {
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if errors.Is(err, fs.ErrNotExist) {
		return 0, 0, nil
	}
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	frames, valid, err = ReplayFrames(bufio.NewReaderSize(f, 64<<10), fn)
	var ce *CorruptError
	if errors.As(err, &ce) {
		ce.Path = path
	}
	return frames, valid, err
}
