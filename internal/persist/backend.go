package persist

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"entangled/internal/db"
	"entangled/internal/eq"
	"entangled/internal/fault"
	"entangled/internal/unify"
)

// Options configures Open. The zero value is usable: one shard, fsync
// on every append, 4 MiB segments, compaction after 64 MiB of log.
type Options struct {
	// Shards is the hash-partition count of the store the logs replay
	// into. 0 means 1 (a plain instance); >1 builds a ShardedInstance.
	// The count is recorded in meta.json on first open and must match on
	// every reopen — replaying one mutation stream into a different
	// shard count would reorder tuples across parts.
	Shards int
	// Sync is the fsync policy for the store WAL and session journals.
	Sync SyncPolicy
	// RotateBytes caps a WAL segment before rotation (default 4 MiB).
	RotateBytes int64
	// CompactBytes triggers snapshot-truncate compaction once that many
	// log bytes accumulate past the last snapshot (default 64 MiB;
	// negative disables automatic compaction).
	CompactBytes int64
	// FS is the filesystem every byte goes through (default fault.OS).
	// Tests inject fault.NewFS wrappers here; nothing in the backend
	// touches os.* directly.
	FS fault.FS
}

// RecoveryStats reports what Open (and RecoverSessions) replayed.
type RecoveryStats struct {
	// SnapshotSeq is the snapshot the store was restored from (0: none).
	SnapshotSeq int `json:"snapshot_seq"`
	// SnapshotFrames is the number of mutations in that snapshot.
	SnapshotFrames int `json:"snapshot_frames"`
	// WALFrames is the number of mutations replayed from log segments.
	WALFrames int `json:"wal_frames"`
	// WALSegments is the number of log segments replayed.
	WALSegments int `json:"wal_segments"`
	// TornTail is true when the last segment ended in a torn frame that
	// recovery truncated away.
	TornTail bool `json:"torn_tail,omitempty"`
	// Sessions and SessionEvents count recovered session journals and
	// the events replayed from them; SessionTornTails counts journals
	// that ended in a truncated torn frame.
	Sessions         int `json:"sessions"`
	SessionEvents    int `json:"session_events"`
	SessionTornTails int `json:"session_torn_tails,omitempty"`
	// DurationMS is wall time spent in Open's store replay.
	DurationMS int64 `json:"duration_ms"`
}

// Metrics is a point-in-time snapshot of the backend's durability
// counters for /metrics.
type Metrics struct {
	StoreAppends   int64 `json:"store_appends"`
	StoreBytes     int64 `json:"store_bytes"`
	StoreSyncs     int64 `json:"store_syncs"`
	StoreRotations int64 `json:"store_rotations"`
	SessionAppends int64 `json:"session_appends"`
	SessionBytes   int64 `json:"session_bytes"`
	SessionSyncs   int64 `json:"session_syncs"`
	OpenJournals   int   `json:"open_journals"`
	SnapshotSeq    int   `json:"snapshot_seq"`
	Compactions    int64 `json:"compactions"`
	// Degraded-mode state: whether the backend is currently read-only,
	// how many times it entered that state, probe attempts/failures,
	// payloads queued for the next successful probe to flush, and
	// auto-compactions that failed without failing an ack.
	Degraded        bool          `json:"degraded,omitempty"`
	DegradeEvents   int64         `json:"degrade_events,omitempty"`
	Probes          int64         `json:"probes,omitempty"`
	ProbeFailures   int64         `json:"probe_failures,omitempty"`
	PendingAppends  int           `json:"pending_appends,omitempty"`
	CompactFailures int64         `json:"compact_failures,omitempty"`
	Recovery        RecoveryStats `json:"recovery"`
}

// backendMeta is the meta.json shape: the store shape the logs replay
// into, pinned at first open.
type backendMeta struct {
	Version int `json:"version"`
	Shards  int `json:"shards"`
}

// ErrDegraded rejects a write while the backend is degraded
// (read-only). The write was NOT applied — its fate is known, so the
// caller may retry freely once a probe write succeeds.
var ErrDegraded = errors.New("persist: backend degraded: writes rejected until a probe write succeeds")

// ErrIndeterminate fails the ack of a write that WAS applied in memory
// but whose journal append failed. The payload is queued: a later
// successful probe makes it durable; a crash before that loses it.
// Either way the ack failed, so no acked write is lost — but a blind
// retry of a non-idempotent write may double-apply.
var ErrIndeterminate = errors.New("persist: ack indeterminate: applied in memory, not yet durable")

// Backend is a durable db.WriteStore: an in-memory Instance or
// ShardedInstance that journals every applied mutation to a rotating
// WAL, snapshots itself as a compacted mutation stream, and owns the
// per-session event journals under the same data directory. Reads
// delegate straight to the in-memory store (queries cost no I/O);
// writes pay one framed append plus the sync policy.
//
// Degraded mode: when an append or fsync fails, the failed payload
// queues on a pending list, the ack fails with ErrIndeterminate, and
// the backend turns read-only — every later write is rejected with
// ErrDegraded BEFORE being applied, so the in-memory store never runs
// ahead of the journal by more than the queued payloads. Probe writes
// a scratch file through the same filesystem and, on success, repairs
// the logs, flushes every pending payload in order, and lifts the
// degradation.
type Backend struct {
	dir         string
	storeDir    string
	sessionsDir string
	opts        Options
	fs          fault.FS
	shards      int
	fresh       bool

	inner  db.WriteStore
	router db.Router

	mu        sync.Mutex // serialises writes, compaction, close
	wal       *wal
	pending   [][]byte // store payloads awaiting a successful probe
	snapSeq   int
	sinceSnap int64
	closed    bool

	degraded        atomic.Bool
	dmu             sync.Mutex // guards degradeCause
	degradeCause    error
	degradeEvents   atomic.Int64
	probes          atomic.Int64
	probeFailures   atomic.Int64
	compactFailures atomic.Int64

	storeCtr    walCounters
	sessionCtr  walCounters
	compactions atomic.Int64

	smu      sync.Mutex
	sessions map[string]*SessionJournal

	rec RecoveryStats
}

var (
	_ db.WriteStore  = (*Backend)(nil)
	_ db.Router      = (*Backend)(nil)
	_ db.PlanStatser = (*Backend)(nil)
)

// Open opens (creating if needed) the data directory and restores the
// store: load the newest snapshot, replay every segment at or above its
// number, truncate a torn tail on the last segment. Mid-log corruption
// is a *CorruptError and Open fails. Session journals are NOT replayed
// here — call RecoverSessions for those.
func Open(dir string, opts Options) (*Backend, error) {
	start := time.Now()
	if opts.RotateBytes <= 0 {
		opts.RotateBytes = 4 << 20
	}
	if opts.CompactBytes == 0 {
		opts.CompactBytes = 64 << 20
	}
	if opts.FS == nil {
		opts.FS = fault.OS
	}
	b := &Backend{
		dir:         dir,
		storeDir:    filepath.Join(dir, "store"),
		sessionsDir: filepath.Join(dir, "sessions"),
		opts:        opts,
		fs:          opts.FS,
		sessions:    make(map[string]*SessionJournal),
	}
	for _, d := range []string{b.storeDir, b.sessionsDir} {
		if err := b.fs.MkdirAll(d, 0o755); err != nil {
			return nil, err
		}
	}
	if err := b.loadMeta(); err != nil {
		return nil, err
	}
	if b.shards <= 1 {
		b.inner = db.NewInstance()
	} else {
		sh := db.NewShardedInstance(b.shards)
		b.inner = sh
		b.router = sh
	}
	if err := b.recoverStore(); err != nil {
		return nil, err
	}
	b.rec.DurationMS = time.Since(start).Milliseconds()
	return b, nil
}

// loadMeta pins the shard count: first open writes it, reopens must
// match.
func (b *Backend) loadMeta() error {
	path := filepath.Join(b.dir, "meta.json")
	data, err := b.fs.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		b.fresh = true
		b.shards = b.opts.Shards
		if b.shards <= 0 {
			b.shards = 1
		}
		data, _ = json.Marshal(backendMeta{Version: 1, Shards: b.shards})
		if err := b.fs.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return err
		}
		return b.fs.SyncDir(b.dir)
	}
	if err != nil {
		return err
	}
	var meta backendMeta
	if err := json.Unmarshal(data, &meta); err != nil {
		return fmt.Errorf("persist: reading %s: %w", path, err)
	}
	if meta.Shards <= 0 {
		return fmt.Errorf("persist: %s records an invalid shard count %d", path, meta.Shards)
	}
	if b.opts.Shards != 0 && b.opts.Shards != meta.Shards {
		return fmt.Errorf("persist: data dir was created with %d shard(s), reopened asking for %d", meta.Shards, b.opts.Shards)
	}
	b.shards = meta.Shards
	return nil
}

// recoverStore replays snapshot + segments into the in-memory store
// and opens a fresh segment for appends.
func (b *Backend) recoverStore() error {
	segs, snaps, err := scanStoreDir(b.fs, b.storeDir)
	if err != nil {
		return err
	}
	if len(snaps) > 0 {
		b.snapSeq = snaps[len(snaps)-1]
		path := filepath.Join(b.storeDir, snapName(b.snapSeq))
		n, _, err := replayFile(b.fs, path, b.applyFrame)
		if err != nil {
			// Snapshots are written to a temp file and renamed, so a
			// torn snapshot is real corruption, not a crash artifact.
			return err
		}
		b.rec.SnapshotSeq = b.snapSeq
		b.rec.SnapshotFrames = n
	}
	// Drop files a crashed compaction left behind: snapshots and
	// segments the newest snapshot superseded.
	for _, s := range snaps {
		if s < b.snapSeq {
			b.fs.Remove(filepath.Join(b.storeDir, snapName(s)))
		}
	}
	live := segs[:0]
	for _, s := range segs {
		if s < b.snapSeq {
			b.fs.Remove(filepath.Join(b.storeDir, segName(s)))
		} else {
			live = append(live, s)
		}
	}
	for i, s := range live {
		path := filepath.Join(b.storeDir, segName(s))
		n, valid, err := replayFile(b.fs, path, b.applyFrame)
		if err != nil {
			if _, torn := err.(*CorruptError); torn && i == len(live)-1 {
				// A crash can tear only the tail of the last segment:
				// truncate past the last valid frame and carry on.
				if terr := b.fs.Truncate(path, valid); terr != nil {
					return terr
				}
				b.rec.TornTail = true
			} else {
				return err
			}
		}
		b.rec.WALFrames += n
		b.rec.WALSegments++
		b.sinceSnap += valid
	}
	next := b.snapSeq + 1
	if len(live) > 0 && live[len(live)-1]+1 > next {
		next = live[len(live)-1] + 1
	}
	if next < 1 {
		next = 1
	}
	b.wal, err = openWAL(b.fs, b.storeDir, next, b.opts.Sync, b.opts.RotateBytes, &b.storeCtr)
	return err
}

// applyFrame decodes one journaled mutation and applies it. Failures
// here (valid CRC, undecodable or unappliable payload) mean a writer
// bug, not a torn write, and fail recovery loudly.
func (b *Backend) applyFrame(payload []byte) error {
	var m db.Mutation
	if err := json.Unmarshal(payload, &m); err != nil {
		return fmt.Errorf("persist: decoding journaled mutation: %w", err)
	}
	if err := b.inner.Apply(m); err != nil {
		return fmt.Errorf("persist: replaying %s: %w", m, err)
	}
	return nil
}

// Fresh reports whether Open created the data directory's meta on this
// open — i.e. the store has never held data and needs populating.
func (b *Backend) Fresh() bool { return b.fresh }

// Shards returns the pinned shard count.
func (b *Backend) Shards() int { return b.shards }

// Dir returns the data directory.
func (b *Backend) Dir() string { return b.dir }

// RecoveryStats returns what Open and RecoverSessions replayed.
func (b *Backend) RecoveryStats() RecoveryStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.rec
}

// Degraded reports whether the backend is read-only awaiting a
// successful probe.
func (b *Backend) Degraded() bool { return b.degraded.Load() }

// DegradeCause returns the error that flipped the backend degraded
// (nil when healthy).
func (b *Backend) DegradeCause() error {
	b.dmu.Lock()
	defer b.dmu.Unlock()
	return b.degradeCause
}

// markDegraded flips the backend read-only, recording the first cause.
func (b *Backend) markDegraded(cause error) {
	if b.degraded.CompareAndSwap(false, true) {
		b.degradeEvents.Add(1)
		b.dmu.Lock()
		b.degradeCause = cause
		b.dmu.Unlock()
	}
}

func (b *Backend) clearDegraded() {
	if b.degraded.CompareAndSwap(true, false) {
		b.dmu.Lock()
		b.degradeCause = nil
		b.dmu.Unlock()
	}
}

// Apply validates and applies the mutation to the in-memory store,
// then journals it (rotating and compacting as configured). The
// in-memory apply runs first so an invalid mutation never reaches the
// log — a journal replay cannot fail to apply. While degraded, writes
// are rejected with ErrDegraded BEFORE touching the in-memory store; a
// journal failure on a healthy backend queues the payload, degrades
// the backend, and fails the ack with ErrIndeterminate.
func (b *Backend) Apply(m db.Mutation) error {
	payload, err := json.Marshal(m)
	if err != nil {
		return err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return errClosed
	}
	if b.degraded.Load() {
		return fmt.Errorf("%w (cause: %v)", ErrDegraded, b.DegradeCause())
	}
	if err := b.inner.Apply(m); err != nil {
		return err
	}
	if err := b.wal.append(payload); err != nil {
		b.pending = append(b.pending, payload)
		b.markDegraded(err)
		return fmt.Errorf("persist: store WAL: %w: %w", ErrIndeterminate, err)
	}
	b.sinceSnap += frameHeader + int64(len(payload))
	if b.opts.CompactBytes > 0 && b.sinceSnap >= b.opts.CompactBytes {
		if err := b.compactLocked(); err != nil {
			// The mutation is applied AND journaled — the ack is good.
			// Compaction retries on a later write; only count the miss.
			b.compactFailures.Add(1)
		}
	}
	return nil
}

var errClosed = fmt.Errorf("persist: backend is closed")

// Probe checks whether the filesystem accepts durable writes again: it
// writes, syncs, and removes a scratch file, then repairs the WAL and
// every open session journal and flushes their pending payloads in
// order. Only when everything is durable does the degradation lift.
// Cheap and a no-op when healthy and nothing is pending.
func (b *Backend) Probe() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return errClosed
	}
	b.probes.Add(1)
	err := b.probeLocked()
	b.mu.Unlock()
	if err == nil {
		for _, j := range b.openJournals() {
			if ferr := j.flushPending(); ferr != nil {
				err = ferr
				break
			}
		}
	}
	if err != nil {
		b.probeFailures.Add(1)
		return err
	}
	b.clearDegraded()
	return nil
}

// probeLocked runs the scratch-file probe and the store-WAL flush.
func (b *Backend) probeLocked() error {
	path := filepath.Join(b.dir, "probe.tmp")
	f, err := b.fs.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	_, err = f.Write([]byte("probe\n"))
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if rerr := b.fs.Remove(path); err == nil {
		err = rerr
	}
	if err != nil {
		return err
	}
	if err := b.wal.repair(); err != nil {
		return err
	}
	for len(b.pending) > 0 {
		payload := b.pending[0]
		if err := b.wal.append(payload); err != nil {
			return err
		}
		b.pending = b.pending[1:]
		b.sinceSnap += frameHeader + int64(len(payload))
	}
	return b.wal.sync()
}

// Compact writes the store as a snapshot (a compacted mutation
// stream), rotates the WAL past it, and deletes the segments and
// snapshots the new snapshot supersedes. Log replay cost resets to
// O(store), independent of write history.
func (b *Backend) Compact() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return errClosed
	}
	return b.compactLocked()
}

func (b *Backend) compactLocked() error {
	newSeq := b.wal.seq + 1
	tmp := filepath.Join(b.storeDir, "snapshot.tmp")
	f, err := b.fs.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 256<<10)
	var frame []byte
	dumpErr := b.inner.DumpMutations(func(m db.Mutation) error {
		payload, err := json.Marshal(m)
		if err != nil {
			return err
		}
		frame = appendFrame(frame[:0], payload)
		_, err = bw.Write(frame)
		return err
	})
	if dumpErr == nil {
		dumpErr = bw.Flush()
	}
	if dumpErr == nil {
		dumpErr = f.Sync()
	}
	if cerr := f.Close(); dumpErr == nil {
		dumpErr = cerr
	}
	if dumpErr != nil {
		b.fs.Remove(tmp)
		return dumpErr
	}
	if err := b.fs.Rename(tmp, filepath.Join(b.storeDir, snapName(newSeq))); err != nil {
		b.fs.Remove(tmp)
		return err
	}
	// A failed dir sync after rename is exactly the crash window the
	// snapshot exists to close: without it the rename may not survive
	// power loss, so compaction must not report success.
	if err := b.fs.SyncDir(b.storeDir); err != nil {
		return err
	}
	oldSeq := b.wal.seq
	if err := b.wal.rotateTo(newSeq); err != nil {
		return err
	}
	for s := b.snapSeq; s <= oldSeq; s++ {
		b.fs.Remove(filepath.Join(b.storeDir, segName(s)))
	}
	if b.snapSeq > 0 {
		b.fs.Remove(filepath.Join(b.storeDir, snapName(b.snapSeq)))
	}
	b.snapSeq = newSeq
	b.sinceSnap = 0
	b.compactions.Add(1)
	return nil
}

// Sync flushes the store WAL and every open session journal to stable
// storage regardless of the sync policy — the graceful-drain hook. A
// failed flush degrades the backend so the probe path can repair it.
func (b *Backend) Sync() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return errClosed
	}
	err := b.wal.sync()
	b.mu.Unlock()
	for _, j := range b.openJournals() {
		if serr := j.Sync(); err == nil {
			err = serr
		}
	}
	if err != nil {
		b.markDegraded(err)
	}
	return err
}

// Close syncs and closes the WAL and every open session journal. The
// backend rejects writes afterwards; the in-memory store stays
// readable.
func (b *Backend) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	err := b.wal.close()
	b.mu.Unlock()
	for _, j := range b.openJournals() {
		if cerr := j.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Abort closes every file handle WITHOUT syncing: the crash-simulation
// hook for recovery tests. Data the OS already buffered survives a
// reopen (as it would a process crash); nothing is flushed beyond what
// the sync policy already flushed.
func (b *Backend) Abort() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	b.wal.abort()
	b.mu.Unlock()
	for _, j := range b.openJournals() {
		j.abort()
	}
}

// openJournals snapshots the registered session journals.
func (b *Backend) openJournals() []*SessionJournal {
	b.smu.Lock()
	defer b.smu.Unlock()
	out := make([]*SessionJournal, 0, len(b.sessions))
	for _, j := range b.sessions {
		out = append(out, j)
	}
	return out
}

// Metrics snapshots the durability counters.
func (b *Backend) Metrics() Metrics {
	journals := b.openJournals()
	pendingSessions := 0
	for _, j := range journals {
		pendingSessions += j.pendingLen()
	}
	b.mu.Lock()
	snapSeq, rec := b.snapSeq, b.rec
	pending := len(b.pending) + pendingSessions
	b.mu.Unlock()
	return Metrics{
		StoreAppends:    b.storeCtr.appends.Load(),
		StoreBytes:      b.storeCtr.bytes.Load(),
		StoreSyncs:      b.storeCtr.syncs.Load(),
		StoreRotations:  b.storeCtr.rotations.Load(),
		SessionAppends:  b.sessionCtr.appends.Load(),
		SessionBytes:    b.sessionCtr.bytes.Load(),
		SessionSyncs:    b.sessionCtr.syncs.Load(),
		OpenJournals:    len(journals),
		SnapshotSeq:     snapSeq,
		Compactions:     b.compactions.Load(),
		Degraded:        b.degraded.Load(),
		DegradeEvents:   b.degradeEvents.Load(),
		Probes:          b.probes.Load(),
		ProbeFailures:   b.probeFailures.Load(),
		PendingAppends:  pending,
		CompactFailures: b.compactFailures.Load(),
		Recovery:        rec,
	}
}

// --- db.Store / db.WriteStore delegation: reads cost no I/O. ---

// Solve delegates to the in-memory store.
func (b *Backend) Solve(body []eq.Atom) (db.Binding, bool, error) { return b.inner.Solve(body) }

// SolveAll delegates to the in-memory store.
func (b *Backend) SolveAll(body []eq.Atom, limit int) ([]db.Binding, error) {
	return b.inner.SolveAll(body, limit)
}

// Satisfiable delegates to the in-memory store.
func (b *Backend) Satisfiable(body []eq.Atom) (bool, error) { return b.inner.Satisfiable(body) }

// SolveUnder delegates to the in-memory store.
func (b *Backend) SolveUnder(body []eq.Atom, s *unify.Subst) (db.Binding, bool, error) {
	return b.inner.SolveUnder(body, s)
}

// Contains delegates to the in-memory store.
func (b *Backend) Contains(a eq.Atom) bool { return b.inner.Contains(a) }

// Domain delegates to the in-memory store.
func (b *Backend) Domain() []eq.Value { return b.inner.Domain() }

// QueriesIssued delegates to the in-memory store.
func (b *Backend) QueriesIssued() int64 { return b.inner.QueriesIssued() }

// ResetCounters delegates to the in-memory store.
func (b *Backend) ResetCounters() { b.inner.ResetCounters() }

// DumpMutations delegates to the in-memory store (the snapshot format
// IS this dump, framed).
func (b *Backend) DumpMutations(yield func(db.Mutation) error) error {
	return b.inner.DumpMutations(yield)
}

// Schema delegates to the in-memory store.
func (b *Backend) Schema() map[string]int { return b.inner.Schema() }

// RelationNames delegates to the in-memory store.
func (b *Backend) RelationNames() []string { return b.inner.RelationNames() }

// Route exposes the inner sharded store's single-shard routing; a
// one-shard backend routes nothing.
func (b *Backend) Route(qs []eq.Query) (db.Store, bool) {
	if b.router == nil {
		return nil, false
	}
	return b.router.Route(qs)
}

// PlanStats aggregates the inner store's compiled-plan-cache counters.
func (b *Backend) PlanStats() db.PlanCacheStats {
	st, _ := db.AggregatePlanStats(b.inner)
	return st
}
