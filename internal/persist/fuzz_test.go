package persist

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzWALReplay throws arbitrary bytes at the frame decoder and checks
// the recovery contract on every input: ReplayFrames never panics,
// either succeeds or fails with the typed *CorruptError, reports a
// valid-prefix offset that is consistent (within bounds, covers every
// delivered frame, and replaying exactly that prefix succeeds and
// yields the same frames — no silent partial state).
func FuzzWALReplay(f *testing.F) {
	// Seed corpus: empty log, well-formed logs, and the corruption
	// shapes the unit tests cover (torn header, torn payload, bit flip,
	// implausible length).
	f.Add([]byte{})
	var good []byte
	for _, p := range [][]byte{[]byte(`{"k":"c"}`), []byte(`{"k":"i","t":["a","b"]}`), {}} {
		good = appendFrame(good, p)
	}
	f.Add(good)
	f.Add(good[:len(good)-3])
	f.Add(good[:5])
	flipped := bytes.Clone(good)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)
	huge := bytes.Clone(good)
	huge[0], huge[1], huge[2], huge[3] = 0xff, 0xff, 0xff, 0x7f
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		var frames [][]byte
		n, valid, err := ReplayFrames(bytes.NewReader(data), func(p []byte) error {
			frames = append(frames, bytes.Clone(p))
			return nil
		})
		if err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("non-corruption error from raw bytes: %v", err)
		}
		if n != len(frames) {
			t.Fatalf("reported %d frames, delivered %d", n, len(frames))
		}
		if valid < 0 || valid > int64(len(data)) {
			t.Fatalf("valid prefix %d out of bounds for %d bytes", valid, len(data))
		}
		if err == nil && valid != int64(len(data)) {
			t.Fatalf("clean replay of %d bytes but valid prefix %d", len(data), valid)
		}
		// The declared valid prefix must itself replay cleanly to the
		// identical frame sequence: truncating there loses nothing that
		// was delivered and resurrects nothing that was not.
		var again [][]byte
		n2, valid2, err2 := ReplayFrames(bytes.NewReader(data[:valid]), func(p []byte) error {
			again = append(again, bytes.Clone(p))
			return nil
		})
		if err2 != nil {
			t.Fatalf("replay of declared-valid prefix failed: %v", err2)
		}
		if n2 != n || valid2 != valid {
			t.Fatalf("prefix replay: %d frames / %d bytes, want %d / %d", n2, valid2, n, valid)
		}
		for i := range frames {
			if !bytes.Equal(frames[i], again[i]) {
				t.Fatalf("frame %d differs between full and prefix replay", i)
			}
		}
	})
}
