package persist

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"
)

func framesOf(payloads ...string) []byte {
	var buf []byte
	for _, p := range payloads {
		buf = appendFrame(buf, []byte(p))
	}
	return buf
}

func collect(t *testing.T, data []byte) ([]string, int64, error) {
	t.Helper()
	var got []string
	n, valid, err := ReplayFrames(bytes.NewReader(data), func(p []byte) error {
		got = append(got, string(p))
		return nil
	})
	if n != len(got) {
		t.Fatalf("frame count %d but %d payloads delivered", n, len(got))
	}
	return got, valid, err
}

func TestReplayFramesRoundTrip(t *testing.T) {
	data := framesOf("one", "two", `{"k":"insert","rel":"T","t":["a"]}`)
	got, valid, err := collect(t, data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != "one" || got[2] != `{"k":"insert","rel":"T","t":["a"]}` {
		t.Fatalf("bad payloads %q", got)
	}
	if valid != int64(len(data)) {
		t.Fatalf("valid offset %d, want %d", valid, len(data))
	}
}

func TestReplayFramesTornTail(t *testing.T) {
	whole := framesOf("alpha", "beta")
	prefix := framesOf("alpha")
	// Cut at every byte boundary inside the second frame: replay must
	// deliver exactly the first frame and report the cut as corruption
	// at the second frame's start.
	for cut := len(prefix) + 1; cut < len(whole); cut++ {
		got, valid, err := collect(t, whole[:cut])
		if err == nil {
			t.Fatalf("cut=%d: torn tail replayed cleanly", cut)
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("cut=%d: error %v is not ErrCorrupt", cut, err)
		}
		if len(got) != 1 || got[0] != "alpha" {
			t.Fatalf("cut=%d: delivered %q", cut, got)
		}
		if valid != int64(len(prefix)) {
			t.Fatalf("cut=%d: valid offset %d, want %d", cut, valid, len(prefix))
		}
	}
}

func TestReplayFramesBitFlips(t *testing.T) {
	clean := framesOf("alpha", "beta", "gamma")
	for bit := 0; bit < len(clean)*8; bit++ {
		data := append([]byte(nil), clean...)
		data[bit/8] ^= 1 << (bit % 8)
		got, valid, err := collect(t, data)
		if err == nil {
			t.Fatalf("bit %d: flip replayed cleanly (payloads %q)", bit, got)
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("bit %d: error %v is not ErrCorrupt", bit, err)
		}
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("bit %d: error %T is not *CorruptError", bit, err)
		}
		// Every frame before the flipped one must have been delivered,
		// none after it, and the valid offset must be a frame boundary
		// at or before the flipped byte.
		if valid > int64(bit/8) {
			t.Fatalf("bit %d: valid offset %d is past the flipped byte", bit, valid)
		}
		want := []string{"alpha", "beta", "gamma"}[:len(got)]
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("bit %d: delivered %q", bit, got)
			}
		}
	}
}

func TestReplayFramesImplausibleLength(t *testing.T) {
	data := framesOf("x")
	data[2] = 0xff // length byte: frame now claims >16MiB
	data[3] = 0xff
	_, _, err := collect(t, data)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("implausible length: %v", err)
	}
}

func TestReplayFramesCallbackError(t *testing.T) {
	boom := fmt.Errorf("boom")
	n, _, err := ReplayFrames(bytes.NewReader(framesOf("a", "b")), func(p []byte) error {
		if string(p) == "b" {
			return boom
		}
		return nil
	})
	if err != boom || n != 1 {
		t.Fatalf("callback error: n=%d err=%v", n, err)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for in, want := range map[string]SyncPolicy{
		"always": SyncAlways,
		"":       SyncAlways,
		"never":  SyncNever,
		"150ms":  SyncEvery(150 * time.Millisecond),
	} {
		got, err := ParseSyncPolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", in, got, err)
		}
		if back, err := ParseSyncPolicy(got.String()); err != nil || back != got {
			t.Fatalf("String round trip of %q: %v, %v", in, back, err)
		}
	}
	for _, bad := range []string{"sometimes", "-5ms", "0s"} {
		if _, err := ParseSyncPolicy(bad); err == nil {
			t.Fatalf("ParseSyncPolicy(%q) accepted", bad)
		}
	}
}
