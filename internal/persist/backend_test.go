package persist

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"testing"

	"entangled/internal/db"
	"entangled/internal/eq"
	"entangled/internal/fault"
	"entangled/internal/stream"
)

// seedMutations builds a small two-relation store with an index.
func seedMutations(rows int) []db.Mutation {
	ms := []db.Mutation{
		db.MCreate("T", 1, "key", "val"),
		db.MCreate("Likes", 0, "user", "item"),
	}
	for i := 0; i < rows; i++ {
		ms = append(ms,
			db.MInsert("T", eq.Value("t"+strconv.Itoa(i)), eq.Value("c"+strconv.Itoa(i%7))),
			db.MInsert("Likes", eq.Value("u"+strconv.Itoa(i%5)), eq.Value("t"+strconv.Itoa(i))))
	}
	return append(ms, db.MIndex("T", 1))
}

// probe answers a join over both relations, order-sensitive.
func probe(t *testing.T, s db.Store) []db.Binding {
	t.Helper()
	res, err := s.SolveAll([]eq.Atom{
		eq.NewAtom("Likes", eq.C("u2"), eq.V("i")),
		eq.NewAtom("T", eq.V("i"), eq.V("v")),
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func openT(t *testing.T, dir string, opts Options) *Backend {
	t.Helper()
	b, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestBackendReopenMatchesInMemoryReplay(t *testing.T) {
	for _, shards := range []int{1, 4} {
		dir := t.TempDir()
		ms := seedMutations(60)
		b := openT(t, dir, Options{Shards: shards, Sync: SyncNever})
		if !b.Fresh() {
			t.Fatal("first open of an empty dir is not fresh")
		}
		if err := db.ApplyAll(b, ms); err != nil {
			t.Fatal(err)
		}
		want := probe(t, b)
		if err := b.Close(); err != nil {
			t.Fatal(err)
		}

		re := openT(t, dir, Options{Shards: shards})
		if re.Fresh() {
			t.Fatal("reopen claims fresh")
		}
		rec := re.RecoveryStats()
		if rec.WALFrames != len(ms) {
			t.Fatalf("shards=%d: replayed %d frames, wrote %d", shards, rec.WALFrames, len(ms))
		}
		var mem db.WriteStore
		if shards <= 1 {
			mem = db.NewInstance()
		} else {
			mem = db.NewShardedInstance(shards)
		}
		if err := db.ApplyAll(mem, ms); err != nil {
			t.Fatal(err)
		}
		if got := probe(t, re); !reflect.DeepEqual(got, want) || !reflect.DeepEqual(got, probe(t, mem)) {
			t.Fatalf("shards=%d: recovered store answers differ:\n got  %v\n want %v\n mem  %v", shards, got, want, probe(t, mem))
		}
		if !reflect.DeepEqual(re.Domain(), mem.Domain()) {
			t.Fatalf("shards=%d: domains differ", shards)
		}
		re.Close()
	}
}

func TestBackendShardMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	openT(t, dir, Options{Shards: 2}).Close()
	if _, err := Open(dir, Options{Shards: 3}); err == nil {
		t.Fatal("reopen with a different shard count succeeded")
	}
	// Shards: 0 means "whatever the dir says".
	b := openT(t, dir, Options{})
	if b.Shards() != 2 {
		t.Fatalf("Shards() = %d, want 2", b.Shards())
	}
	b.Close()
}

func TestBackendRotationAndCompaction(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation; manual compaction only.
	b := openT(t, dir, Options{Sync: SyncNever, RotateBytes: 256, CompactBytes: -1})
	if err := db.ApplyAll(b, seedMutations(80)); err != nil {
		t.Fatal(err)
	}
	want := probe(t, b)
	segs, _, err := scanStoreDir(fault.OS, filepath.Join(dir, "store"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("no rotation: %d segment(s)", len(segs))
	}
	if err := b.Compact(); err != nil {
		t.Fatal(err)
	}
	segs, snaps, err := scanStoreDir(fault.OS, filepath.Join(dir, "store"))
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 1 || len(segs) != 1 || segs[0] != snaps[0] {
		t.Fatalf("after compaction: segments %v snapshots %v", segs, snaps)
	}
	if got := probe(t, b); !reflect.DeepEqual(got, want) {
		t.Fatal("compaction changed answers")
	}
	b.Close()

	re := openT(t, dir, Options{})
	rec := re.RecoveryStats()
	if rec.SnapshotFrames == 0 || rec.WALFrames != 0 {
		t.Fatalf("reopen after compaction: %+v", rec)
	}
	if got := probe(t, re); !reflect.DeepEqual(got, want) {
		t.Fatal("snapshot recovery changed answers")
	}
	// And writes after the snapshot land in the post-snapshot segment.
	if err := re.Apply(db.MInsert("Likes", "u2", "t1")); err != nil {
		t.Fatal(err)
	}
	re.Close()
	re2 := openT(t, dir, Options{})
	if got := probe(t, re2); len(got) != len(want)+1 {
		t.Fatalf("post-snapshot write lost: %d answers, want %d", len(got), len(want)+1)
	}
	re2.Close()
}

func TestBackendAutoCompaction(t *testing.T) {
	dir := t.TempDir()
	b := openT(t, dir, Options{Sync: SyncNever, RotateBytes: 256, CompactBytes: 2048})
	if err := db.ApplyAll(b, seedMutations(120)); err != nil {
		t.Fatal(err)
	}
	if n := b.Metrics().Compactions; n == 0 {
		t.Fatal("no automatic compaction triggered")
	}
	want := probe(t, b)
	b.Close()
	re := openT(t, dir, Options{})
	if got := probe(t, re); !reflect.DeepEqual(got, want) {
		t.Fatal("auto-compacted store recovered differently")
	}
	re.Close()
}

func TestBackendTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	b := openT(t, dir, Options{Sync: SyncNever})
	if err := db.ApplyAll(b, seedMutations(10)); err != nil {
		t.Fatal(err)
	}
	want := probe(t, b)
	b.Close()
	// Tear the tail: chop half of the last frame off the only segment.
	seg := filepath.Join(dir, "store", segName(1))
	info, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, info.Size()-7); err != nil {
		t.Fatal(err)
	}
	re := openT(t, dir, Options{})
	rec := re.RecoveryStats()
	if !rec.TornTail {
		t.Fatalf("torn tail not reported: %+v", rec)
	}
	// The torn frame was the last index mutation; the data survived.
	if got := probe(t, re); !reflect.DeepEqual(got, want) {
		t.Fatal("torn-tail recovery changed answers")
	}
	re.Close()
	// A third open sees a clean (already truncated) log.
	re2 := openT(t, dir, Options{})
	if re2.RecoveryStats().TornTail {
		t.Fatal("tail still torn after truncating open")
	}
	re2.Close()
}

func TestBackendMidLogCorruptionFailsOpen(t *testing.T) {
	dir := t.TempDir()
	b := openT(t, dir, Options{Sync: SyncNever, RotateBytes: 256, CompactBytes: -1})
	if err := db.ApplyAll(b, seedMutations(40)); err != nil {
		t.Fatal(err)
	}
	b.Close()
	segs, _, err := scanStoreDir(fault.OS, filepath.Join(dir, "store"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatal("need at least two segments")
	}
	// Flip a byte in the FIRST segment: not a crash artifact, must fail.
	seg := filepath.Join(dir, "store", segName(segs[0]))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mid-log corruption: Open returned %v, want ErrCorrupt", err)
	}
}

func TestSessionJournalLifecycle(t *testing.T) {
	dir := t.TempDir()
	b := openT(t, dir, Options{Sync: SyncNever})
	jq := func(id string) eq.Query {
		return eq.Query{
			ID:   id,
			Post: []eq.Atom{eq.NewAtom("R", eq.C(eq.Value(id)), eq.V("y"))},
			Head: []eq.Atom{eq.NewAtom("R", eq.C(eq.Value(id)), eq.V("x"))},
			Body: []eq.Atom{eq.NewAtom("T", eq.V("x"), eq.C("c0"))},
		}
	}
	j1, err := b.CreateSessionJournal("room/1", true)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := b.CreateSessionJournal("other", false)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range []stream.Event{
		{Kind: stream.JoinEvent, Query: jq("a")},
		{Kind: stream.JoinEvent, Query: jq("b")},
		{Kind: stream.LeaveEvent, ID: "a"},
	} {
		if err := j1.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := j2.Append(stream.Event{Kind: stream.JoinEvent, Query: jq("z")}); err != nil {
		t.Fatal(err)
	}
	if err := j2.Drop(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	re := openT(t, dir, Options{})
	recovered, err := re.RecoverSessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 1 {
		t.Fatalf("recovered %d sessions, want 1 (dropped journal resurrected?)", len(recovered))
	}
	rs := recovered[0]
	if rs.Name != "room/1" || !rs.Park {
		t.Fatalf("recovered meta %q park=%v", rs.Name, rs.Park)
	}
	if len(rs.Events) != 3 || rs.Events[0].Query.ID != "a" || rs.Events[2].ID != "a" {
		t.Fatalf("recovered events %v", rs.Events)
	}
	if got := re.RecoveryStats(); got.Sessions != 1 || got.SessionEvents != 3 {
		t.Fatalf("session recovery stats %+v", got)
	}
	// The recovered journal keeps appending where it left off.
	if err := rs.Journal.Append(stream.Event{Kind: stream.JoinEvent, Query: jq("c")}); err != nil {
		t.Fatal(err)
	}
	re.Close()

	re2 := openT(t, dir, Options{})
	again, err := re2.RecoverSessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != 1 || len(again[0].Events) != 4 {
		t.Fatalf("second recovery: %d sessions, %d events", len(again), len(again[0].Events))
	}
	re2.Close()
}

func TestSessionJournalTornTail(t *testing.T) {
	dir := t.TempDir()
	b := openT(t, dir, Options{})
	j, err := b.CreateSessionJournal("s", false)
	if err != nil {
		t.Fatal(err)
	}
	q := eq.Query{
		ID:   "a",
		Post: []eq.Atom{eq.NewAtom("R", eq.C("a"), eq.V("y"))},
		Head: []eq.Atom{eq.NewAtom("R", eq.C("a"), eq.V("x"))},
		Body: []eq.Atom{eq.NewAtom("T", eq.V("x"), eq.C("c0"))},
	}
	if err := j.Append(stream.Event{Kind: stream.JoinEvent, Query: q}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(stream.Event{Kind: stream.LeaveEvent, ID: "a"}); err != nil {
		t.Fatal(err)
	}
	b.Close()
	path := filepath.Join(dir, "sessions", "s.wal")
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-3); err != nil {
		t.Fatal(err)
	}
	re := openT(t, dir, Options{})
	recovered, err := re.RecoverSessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 1 || len(recovered[0].Events) != 1 {
		t.Fatalf("recovered %v", recovered)
	}
	if got := re.RecoveryStats(); got.SessionTornTails != 1 {
		t.Fatalf("stats %+v", got)
	}
	re.Close()
}

func TestBackendAbortLosesNothingBuffered(t *testing.T) {
	// Abort simulates a process crash: no final fsync, but the OS page
	// cache survives an in-process reopen, so SyncNever data is intact.
	dir := t.TempDir()
	b := openT(t, dir, Options{Sync: SyncNever})
	if err := db.ApplyAll(b, seedMutations(20)); err != nil {
		t.Fatal(err)
	}
	want := probe(t, b)
	b.Abort()
	if err := b.Apply(db.MInsert("T", "x", "y")); err == nil {
		t.Fatal("apply after abort succeeded")
	}
	re := openT(t, dir, Options{})
	if got := probe(t, re); !reflect.DeepEqual(got, want) {
		t.Fatal("abort+reopen changed answers")
	}
	re.Close()
}
