package persist

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"entangled/internal/fault"
)

// SyncPolicy says when appends reach stable storage. The zero value is
// SyncAlways: fsync after every append, so an acked write survives a
// machine crash. Interval > 0 fsyncs at most once per interval (a crash
// loses at most one interval of acked writes); Interval < 0 never
// fsyncs explicitly and trusts the OS page cache (process crashes still
// lose nothing — the data is in kernel buffers — but power loss can).
type SyncPolicy struct {
	Interval time.Duration
}

// SyncAlways fsyncs every append.
var SyncAlways = SyncPolicy{}

// SyncNever leaves flushing to the OS.
var SyncNever = SyncPolicy{Interval: -1}

// SyncEvery fsyncs at most once per d.
func SyncEvery(d time.Duration) SyncPolicy { return SyncPolicy{Interval: d} }

// String renders the policy the way ParseSyncPolicy reads it.
func (p SyncPolicy) String() string {
	switch {
	case p.Interval == 0:
		return "always"
	case p.Interval < 0:
		return "never"
	}
	return p.Interval.String()
}

// ParseSyncPolicy reads "always", "never", or a time.Duration such as
// "100ms" (the coordserve -fsync flag format).
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.TrimSpace(s) {
	case "always", "":
		return SyncAlways, nil
	case "never":
		return SyncNever, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil || d <= 0 {
		return SyncPolicy{}, fmt.Errorf("persist: sync policy %q is not \"always\", \"never\", or a positive duration", s)
	}
	return SyncEvery(d), nil
}

// walCounters aggregates append-path activity across the log files of
// one tier (the store WAL, or all session journals together).
type walCounters struct {
	appends   atomic.Int64
	bytes     atomic.Int64
	syncs     atomic.Int64
	rotations atomic.Int64
}

// logFile is one append-only framed log with a sync policy. Not
// concurrency-safe: callers serialise appends (the Backend mutex for
// the store WAL, the per-journal mutex for sessions).
//
// A failed write or sync marks the file broken: size stays at the end
// of the last fully-durable frame and further appends are refused
// until repair reopens the handle and truncates back to that point.
// The failed payload is the caller's to retry (the pending queues in
// Backend and SessionJournal), so a repaired log never holds a
// duplicated or half-written frame.
type logFile struct {
	path     string
	fsys     fault.FS
	f        fault.File
	size     int64
	policy   SyncPolicy
	counters *walCounters
	dirty    bool
	broken   bool
	lastSync time.Time
	buf      []byte
}

// openLogFile opens (creating if needed) a log for appending at size.
// The caller has already replayed and, if necessary, truncated the
// file, so size is the verified end of the last valid frame.
func openLogFile(fsys fault.FS, path string, size int64, policy SyncPolicy, counters *walCounters) (*logFile, error) {
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(size); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(size, 0); err != nil {
		f.Close()
		return nil, err
	}
	return &logFile{path: path, fsys: fsys, f: f, size: size, policy: policy, counters: counters, lastSync: time.Now()}, nil
}

// append writes one framed payload and applies the sync policy. On any
// failure the file is marked broken, size rolls back to the last good
// end, and the caller must queue the payload and repair before the
// next append — a torn or unsynced frame never counts as written.
func (lf *logFile) append(payload []byte) error {
	if lf.broken {
		return fmt.Errorf("persist: %s is broken and needs repair", lf.path)
	}
	base := lf.size
	lf.buf = appendFrame(lf.buf[:0], payload)
	if _, err := lf.f.Write(lf.buf); err != nil {
		lf.broken = true
		return fmt.Errorf("persist: appending to %s: %w", lf.path, err)
	}
	lf.size += int64(len(lf.buf))
	lf.dirty = true
	lf.counters.appends.Add(1)
	lf.counters.bytes.Add(int64(len(lf.buf)))
	var serr error
	switch {
	case lf.policy.Interval == 0:
		serr = lf.sync()
	case lf.policy.Interval > 0 && time.Since(lf.lastSync) >= lf.policy.Interval:
		serr = lf.sync()
	}
	if serr != nil {
		// The bytes hit the file but never durably: roll the logical end
		// back so repair truncates them and the retry re-appends cleanly.
		lf.size = base
	}
	return serr
}

// sync flushes to stable storage if anything was written since the
// last sync. A failed fsync marks the file broken: after fsync fails,
// retrying it on the same handle can falsely succeed (the kernel may
// have dropped the dirty pages), so repair reopens the file instead.
func (lf *logFile) sync() error {
	if !lf.dirty {
		return nil
	}
	if err := lf.f.Sync(); err != nil {
		lf.broken = true
		return fmt.Errorf("persist: syncing %s: %w", lf.path, err)
	}
	lf.dirty = false
	lf.lastSync = time.Now()
	lf.counters.syncs.Add(1)
	return nil
}

// repair recovers a broken log: reopen by path (the old handle may be
// poisoned or closed), truncate to the last good end, and seek there.
// A no-op on healthy files.
func (lf *logFile) repair() error {
	if !lf.broken {
		return nil
	}
	lf.f.Close()
	f, err := lf.fsys.OpenFile(lf.path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	if err := f.Truncate(lf.size); err != nil {
		f.Close()
		return err
	}
	if _, err := f.Seek(lf.size, 0); err != nil {
		f.Close()
		return err
	}
	lf.f = f
	lf.broken = false
	lf.dirty = true // flush state unknown: force the next sync to fsync
	return nil
}

// close syncs and closes.
func (lf *logFile) close() error {
	if err := lf.sync(); err != nil {
		lf.f.Close()
		return err
	}
	return lf.f.Close()
}

// abort closes the handle without syncing — the crash-simulation path.
func (lf *logFile) abort() { lf.f.Close() }

// segName/snapName build the numbered file names of the store log.
func segName(seq int) string  { return fmt.Sprintf("wal-%06d.log", seq) }
func snapName(seq int) string { return fmt.Sprintf("snapshot-%06d.snap", seq) }

// parseSeq extracts N from prefix+"%06d"+ext names; ok=false otherwise.
func parseSeq(name, prefix, ext string) (int, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, ext) {
		return 0, false
	}
	mid := name[len(prefix) : len(name)-len(ext)]
	var n int
	if _, err := fmt.Sscanf(mid, "%d", &n); err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// scanStoreDir lists the store directory's segment and snapshot
// sequence numbers, each ascending.
func scanStoreDir(fsys fault.FS, dir string) (segs, snaps []int, err error) {
	ents, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range ents {
		if n, ok := parseSeq(e.Name(), "wal-", ".log"); ok {
			segs = append(segs, n)
		}
		if n, ok := parseSeq(e.Name(), "snapshot-", ".snap"); ok {
			snaps = append(snaps, n)
		}
	}
	sort.Ints(segs)
	sort.Ints(snaps)
	return segs, snaps, nil
}

// wal is the rotating store-mutation log: numbered segments in dir,
// rotated once the active segment passes rotateBytes. Callers serialise
// through the Backend mutex.
type wal struct {
	dir         string
	fsys        fault.FS
	policy      SyncPolicy
	rotateBytes int64
	counters    *walCounters
	cur         *logFile
	seq         int
}

// openWAL starts a fresh segment numbered seq.
func openWAL(fsys fault.FS, dir string, seq int, policy SyncPolicy, rotateBytes int64, counters *walCounters) (*wal, error) {
	lf, err := openLogFile(fsys, filepath.Join(dir, segName(seq)), 0, policy, counters)
	if err != nil {
		return nil, err
	}
	return &wal{dir: dir, fsys: fsys, policy: policy, rotateBytes: rotateBytes, counters: counters, cur: lf, seq: seq}, nil
}

// append journals one payload, rotating first if the active segment is
// full.
func (w *wal) append(payload []byte) error {
	if w.cur.size >= w.rotateBytes && w.cur.size > 0 && !w.cur.broken {
		if err := w.rotateTo(w.seq + 1); err != nil {
			return err
		}
	}
	return w.cur.append(payload)
}

// rotateTo closes the active segment and opens a new one numbered seq.
func (w *wal) rotateTo(seq int) error {
	if err := w.cur.close(); err != nil {
		return err
	}
	lf, err := openLogFile(w.fsys, filepath.Join(w.dir, segName(seq)), 0, w.policy, w.counters)
	if err != nil {
		return err
	}
	w.cur = lf
	w.seq = seq
	w.counters.rotations.Add(1)
	return nil
}

func (w *wal) sync() error   { return w.cur.sync() }
func (w *wal) repair() error { return w.cur.repair() }
func (w *wal) close() error  { return w.cur.close() }
func (w *wal) abort()        { w.cur.abort() }
