package persist

import (
	"encoding/json"
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"entangled/internal/stream"
)

// sessionMeta is a journal's first frame: enough to rebuild the
// session with the admission mode it was created with.
type sessionMeta struct {
	Name string `json:"name"`
	Park bool   `json:"park,omitempty"`
}

// SessionJournal is one named session's durable event log: a meta
// frame, then every admitted stream.Event in admission order. The
// server journals an event after applying it in memory and before
// acking the client, so a replayed journal rebuilds exactly the acked
// state. Safe for concurrent use.
type SessionJournal struct {
	b    *Backend
	name string
	path string

	mu     sync.Mutex
	lf     *logFile
	closed bool
}

// journalPath escapes the session name into a filename (names come
// from URLs and may hold separators).
func (b *Backend) journalPath(name string) string {
	return filepath.Join(b.sessionsDir, url.PathEscape(name)+".wal")
}

// CreateSessionJournal starts a journal for a newly created session,
// truncating any leftover file of the same name (the registry
// guarantees live names are unique; a leftover journal here means the
// old session was never recovered). The meta frame is synced
// immediately regardless of policy, so the session's existence is
// durable before its first event.
func (b *Backend) CreateSessionJournal(name string, park bool) (*SessionJournal, error) {
	b.mu.Lock()
	closed := b.closed
	b.mu.Unlock()
	if closed {
		return nil, errClosed
	}
	path := b.journalPath(name)
	os.Remove(path)
	lf, err := openLogFile(path, 0, b.opts.Sync, &b.sessionCtr)
	if err != nil {
		return nil, err
	}
	meta, _ := json.Marshal(sessionMeta{Name: name, Park: park})
	if err := lf.append(meta); err != nil {
		lf.abort()
		os.Remove(path)
		return nil, err
	}
	if err := lf.sync(); err != nil {
		lf.abort()
		os.Remove(path)
		return nil, err
	}
	syncDir(b.sessionsDir)
	j := &SessionJournal{b: b, name: name, path: path, lf: lf}
	b.smu.Lock()
	b.sessions[name] = j
	b.smu.Unlock()
	return j, nil
}

// Name returns the session name the journal belongs to.
func (j *SessionJournal) Name() string { return j.name }

// Append journals one admitted event under the backend's sync policy.
func (j *SessionJournal) Append(ev stream.Event) error {
	payload, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("persist: session journal %q is closed", j.name)
	}
	return j.lf.append(payload)
}

// Sync flushes the journal to stable storage.
func (j *SessionJournal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	return j.lf.sync()
}

// Close syncs and closes the journal, keeping the file for recovery —
// the drain path.
func (j *SessionJournal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	j.unregister()
	return j.lf.close()
}

// Drop closes the journal and deletes its file — the path for sessions
// removed on purpose (DELETE, idle eviction), which must not resurrect
// on restart.
func (j *SessionJournal) Drop() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.closed {
		j.closed = true
		j.unregister()
		j.lf.abort()
	}
	err := os.Remove(j.path)
	syncDir(j.b.sessionsDir)
	return err
}

// abort closes the handle without syncing (crash simulation).
func (j *SessionJournal) abort() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return
	}
	j.closed = true
	j.unregister()
	j.lf.abort()
}

// unregister drops the journal from the backend's open set. Called
// with j.mu held; takes b.smu (never the reverse order anywhere).
func (j *SessionJournal) unregister() {
	j.b.smu.Lock()
	if j.b.sessions[j.name] == j {
		delete(j.b.sessions, j.name)
	}
	j.b.smu.Unlock()
}

// RecoveredSession is one session journal's replayable content: the
// admission mode it was created with, its admitted events in order,
// and the journal reopened for appending so the recovered session
// keeps journaling where it left off.
type RecoveredSession struct {
	Name    string
	Park    bool
	Events  []stream.Event
	Journal *SessionJournal
}

// RecoverSessions replays every session journal in the data directory,
// sorted by name. A torn tail on a journal is truncated (counted in
// RecoveryStats.SessionTornTails); a journal whose meta frame never
// made it to disk is removed — its session was never durably created.
// Each returned journal is registered open; callers must Close or Drop
// every one (sessions they decline to rebuild included).
func (b *Backend) RecoverSessions() ([]RecoveredSession, error) {
	ents, err := os.ReadDir(b.sessionsDir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".wal") {
			names = append(names, strings.TrimSuffix(e.Name(), ".wal"))
		}
	}
	sort.Strings(names)
	var out []RecoveredSession
	for _, escaped := range names {
		name, err := url.PathUnescape(escaped)
		if err != nil {
			return nil, fmt.Errorf("persist: session journal %q: undecodable name", escaped)
		}
		rs, err := b.recoverSession(name)
		if err != nil {
			return nil, err
		}
		if rs != nil {
			out = append(out, *rs)
		}
	}
	b.mu.Lock()
	b.rec.Sessions = len(out)
	b.rec.SessionEvents = 0
	for _, rs := range out {
		b.rec.SessionEvents += len(rs.Events)
	}
	b.mu.Unlock()
	return out, nil
}

// recoverSession replays one journal; returns nil (and removes the
// file) when no durable meta frame exists.
func (b *Backend) recoverSession(name string) (*RecoveredSession, error) {
	path := b.journalPath(name)
	var meta *sessionMeta
	var events []stream.Event
	frames, valid, err := replayFile(path, func(payload []byte) error {
		if meta == nil {
			meta = new(sessionMeta)
			if err := json.Unmarshal(payload, meta); err != nil {
				return fmt.Errorf("persist: session journal %q: decoding meta: %w", name, err)
			}
			return nil
		}
		var ev stream.Event
		if err := json.Unmarshal(payload, &ev); err != nil {
			return fmt.Errorf("persist: session journal %q: decoding event: %w", name, err)
		}
		events = append(events, ev)
		return nil
	})
	if err != nil {
		if _, torn := err.(*CorruptError); !torn {
			return nil, err
		}
		// A journal is a single file, so its tail is always the last
		// thing written: truncate and carry on.
		if terr := os.Truncate(path, valid); terr != nil {
			return nil, terr
		}
		b.mu.Lock()
		b.rec.SessionTornTails++
		b.mu.Unlock()
	}
	if frames == 0 || meta == nil {
		os.Remove(path)
		return nil, nil
	}
	lf, err := openLogFile(path, valid, b.opts.Sync, &b.sessionCtr)
	if err != nil {
		return nil, err
	}
	j := &SessionJournal{b: b, name: name, path: path, lf: lf}
	b.smu.Lock()
	b.sessions[name] = j
	b.smu.Unlock()
	return &RecoveredSession{Name: name, Park: meta.Park, Events: events, Journal: j}, nil
}
