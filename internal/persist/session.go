package persist

import (
	"encoding/json"
	"fmt"
	"net/url"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"entangled/internal/stream"
)

// sessionMeta is a journal's first frame: enough to rebuild the
// session with the admission mode it was created with.
type sessionMeta struct {
	Name string `json:"name"`
	Park bool   `json:"park,omitempty"`
}

// SessionJournal is one named session's durable event log: a meta
// frame, then every admitted stream.Event in admission order. The
// server journals an event after applying it in memory and before
// acking the client, so a replayed journal rebuilds exactly the acked
// state. Safe for concurrent use.
//
// While the backend is degraded, appended events queue on a pending
// list in admission order and the ack fails with ErrIndeterminate;
// Probe flushes the queue before lifting the degradation, so the
// on-disk journal order always matches the in-memory apply order.
type SessionJournal struct {
	b    *Backend
	name string
	path string

	mu      sync.Mutex
	lf      *logFile
	pending [][]byte
	closed  bool
}

// journalPath escapes the session name into a filename (names come
// from URLs and may hold separators).
func (b *Backend) journalPath(name string) string {
	return filepath.Join(b.sessionsDir, url.PathEscape(name)+".wal")
}

// CreateSessionJournal starts a journal for a newly created session,
// truncating any leftover file of the same name (the registry
// guarantees live names are unique; a leftover journal here means the
// old session was never recovered). The meta frame is synced
// immediately regardless of policy, so the session's existence is
// durable before its first event — including the directory entry: a
// failed dir sync fails the create.
func (b *Backend) CreateSessionJournal(name string, park bool) (*SessionJournal, error) {
	b.mu.Lock()
	closed := b.closed
	b.mu.Unlock()
	if closed {
		return nil, errClosed
	}
	if b.degraded.Load() {
		return nil, fmt.Errorf("persist: creating session journal %q: %w", name, ErrDegraded)
	}
	path := b.journalPath(name)
	b.fs.Remove(path)
	lf, err := openLogFile(b.fs, path, 0, b.opts.Sync, &b.sessionCtr)
	if err != nil {
		return nil, err
	}
	meta, _ := json.Marshal(sessionMeta{Name: name, Park: park})
	err = lf.append(meta)
	if err == nil {
		err = lf.sync()
	}
	if err == nil {
		err = b.fs.SyncDir(b.sessionsDir)
	}
	if err != nil {
		lf.abort()
		b.fs.Remove(path)
		b.markDegraded(err)
		return nil, err
	}
	j := &SessionJournal{b: b, name: name, path: path, lf: lf}
	b.smu.Lock()
	b.sessions[name] = j
	b.smu.Unlock()
	return j, nil
}

// Name returns the session name the journal belongs to.
func (j *SessionJournal) Name() string { return j.name }

// Append journals one admitted event under the backend's sync policy.
// The caller has already applied the event in memory, so a failed (or
// degraded-deferred) append returns ErrIndeterminate: the event is
// queued and becomes durable when a probe succeeds, but the ack must
// fail because a crash before that would lose it.
func (j *SessionJournal) Append(ev stream.Event) error {
	payload, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("persist: session journal %q is closed", j.name)
	}
	if j.b.degraded.Load() || len(j.pending) > 0 {
		// Queue in admission order behind whatever is already pending,
		// so the flush preserves the journal's replay order.
		j.pending = append(j.pending, payload)
		return fmt.Errorf("persist: session journal %q: %w", j.name, ErrIndeterminate)
	}
	if err := j.lf.append(payload); err != nil {
		j.pending = append(j.pending, payload)
		j.b.markDegraded(err)
		return fmt.Errorf("persist: session journal %q: %w: %w", j.name, ErrIndeterminate, err)
	}
	return nil
}

// flushPending repairs the log and writes queued payloads in order;
// called from Backend.Probe after the scratch-file probe succeeds.
func (j *SessionJournal) flushPending() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		// A closed journal's pending events were never acked; dropping
		// them on drain loses nothing the client was promised.
		return nil
	}
	if err := j.lf.repair(); err != nil {
		return err
	}
	for len(j.pending) > 0 {
		if err := j.lf.append(j.pending[0]); err != nil {
			return err
		}
		j.pending = j.pending[1:]
	}
	return j.lf.sync()
}

// pendingLen reports queued-but-not-durable payloads (for metrics).
func (j *SessionJournal) pendingLen() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.pending)
}

// Sync flushes the journal to stable storage.
func (j *SessionJournal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	if err := j.lf.sync(); err != nil {
		j.b.markDegraded(err)
		return err
	}
	return nil
}

// Close syncs and closes the journal, keeping the file for recovery —
// the drain path.
func (j *SessionJournal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	j.unregister()
	return j.lf.close()
}

// Drop closes the journal and deletes its file — the path for sessions
// removed on purpose (DELETE, idle eviction), which must not resurrect
// on restart. The directory sync after the unlink is part of the
// contract: its error propagates, it is not best-effort.
func (j *SessionJournal) Drop() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.closed {
		j.closed = true
		j.unregister()
		j.lf.abort()
	}
	err := j.b.fs.Remove(j.path)
	if serr := j.b.fs.SyncDir(j.b.sessionsDir); err == nil {
		err = serr
	}
	return err
}

// abort closes the handle without syncing (crash simulation).
func (j *SessionJournal) abort() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return
	}
	j.closed = true
	j.unregister()
	j.lf.abort()
}

// unregister drops the journal from the backend's open set. Called
// with j.mu held; takes b.smu (never the reverse order anywhere).
func (j *SessionJournal) unregister() {
	j.b.smu.Lock()
	if j.b.sessions[j.name] == j {
		delete(j.b.sessions, j.name)
	}
	j.b.smu.Unlock()
}

// RecoveredSession is one session journal's replayable content: the
// admission mode it was created with, its admitted events in order,
// and the journal reopened for appending so the recovered session
// keeps journaling where it left off.
type RecoveredSession struct {
	Name    string
	Park    bool
	Events  []stream.Event
	Journal *SessionJournal
}

// RecoverSessions replays every session journal in the data directory,
// sorted by name. A torn tail on a journal is truncated (counted in
// RecoveryStats.SessionTornTails); a journal whose meta frame never
// made it to disk is removed — its session was never durably created.
// Each returned journal is registered open; callers must Close or Drop
// every one (sessions they decline to rebuild included).
func (b *Backend) RecoverSessions() ([]RecoveredSession, error) {
	ents, err := b.fs.ReadDir(b.sessionsDir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".wal") {
			names = append(names, strings.TrimSuffix(e.Name(), ".wal"))
		}
	}
	sort.Strings(names)
	var out []RecoveredSession
	for _, escaped := range names {
		name, err := url.PathUnescape(escaped)
		if err != nil {
			return nil, fmt.Errorf("persist: session journal %q: undecodable name", escaped)
		}
		rs, err := b.recoverSession(name)
		if err != nil {
			return nil, err
		}
		if rs != nil {
			out = append(out, *rs)
		}
	}
	b.mu.Lock()
	b.rec.Sessions = len(out)
	b.rec.SessionEvents = 0
	for _, rs := range out {
		b.rec.SessionEvents += len(rs.Events)
	}
	b.mu.Unlock()
	return out, nil
}

// recoverSession replays one journal; returns nil (and removes the
// file) when no durable meta frame exists.
func (b *Backend) recoverSession(name string) (*RecoveredSession, error) {
	path := b.journalPath(name)
	var meta *sessionMeta
	var events []stream.Event
	frames, valid, err := replayFile(b.fs, path, func(payload []byte) error {
		if meta == nil {
			meta = new(sessionMeta)
			if err := json.Unmarshal(payload, meta); err != nil {
				return fmt.Errorf("persist: session journal %q: decoding meta: %w", name, err)
			}
			return nil
		}
		var ev stream.Event
		if err := json.Unmarshal(payload, &ev); err != nil {
			return fmt.Errorf("persist: session journal %q: decoding event: %w", name, err)
		}
		events = append(events, ev)
		return nil
	})
	if err != nil {
		if _, torn := err.(*CorruptError); !torn {
			return nil, err
		}
		// A journal is a single file, so its tail is always the last
		// thing written: truncate and carry on.
		if terr := b.fs.Truncate(path, valid); terr != nil {
			return nil, terr
		}
		b.mu.Lock()
		b.rec.SessionTornTails++
		b.mu.Unlock()
	}
	if frames == 0 || meta == nil {
		b.fs.Remove(path)
		return nil, nil
	}
	lf, err := openLogFile(b.fs, path, valid, b.opts.Sync, &b.sessionCtr)
	if err != nil {
		return nil, err
	}
	j := &SessionJournal{b: b, name: name, path: path, lf: lf}
	b.smu.Lock()
	b.sessions[name] = j
	b.smu.Unlock()
	return &RecoveredSession{Name: name, Park: meta.Park, Events: events, Journal: j}, nil
}
