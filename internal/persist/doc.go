// Package persist is the file-backed durable layer under the
// coordination stack: a db.WriteStore that journals every applied
// mutation to a CRC-framed append-only write-ahead log, snapshots the
// store as a compacted mutation stream, and keeps one event journal per
// named streaming session so a restarted server can rebuild live
// sessions by replay.
//
// # Layout
//
// A Backend owns one data directory:
//
//	meta.json               shard count (the store shape logs replay into)
//	store/wal-%06d.log      mutation log segments, rotated by size
//	store/snapshot-%06d.snap	compacted mutation stream; covers all
//	                        segments numbered below it
//	sessions/<name>.wal     one stream.Event journal per named session
//
// Every log file is a sequence of frames: a 4-byte little-endian
// payload length, a 4-byte CRC-32 (IEEE) of the payload, then the JSON
// payload (a db.Mutation or a stream.Event). Frames are self-checking,
// so replay detects torn tails and bit flips without trusting file
// sizes.
//
// # Recovery contract
//
// Open loads the newest snapshot, replays every segment at or above its
// number, and tolerates exactly one torn tail: a short or corrupt frame
// at the end of the LAST segment (the one a crash can tear) is
// truncated away and reported in RecoveryStats. Corruption anywhere
// else is a *CorruptError (errors.Is(err, ErrCorrupt)) and Open fails —
// never a panic, never silent partial state. Session journals are
// single files, so the same tail rule applies to each.
//
// Mutations are applied to the in-memory store before they are
// journaled, and the server acks a session event only after it is
// journaled, so an acked write is durable (under SyncAlways) and a
// replayed log never fails to apply.
package persist
