//go:build persist_integration

package persist

import (
	"fmt"
	"reflect"
	"testing"

	"entangled/internal/db"
	"entangled/internal/stream"
	"entangled/internal/workload"
)

// TestKillAndReopenCycles is the durable-tier soak (built only with
// -tags persist_integration): many cycles of write → stop → reopen over
// ONE data directory, alternating clean closes with aborts (the crash
// simulation), forcing compactions and rotations along the way. After
// every reopen the durable store must answer identically to an
// in-memory store replaying the full accumulated mutation stream, and
// every journaled session must come back with its full event history.
func TestKillAndReopenCycles(t *testing.T) {
	const cycles = 12
	for _, shards := range []int{1, 3} {
		for _, sync := range []SyncPolicy{SyncAlways, SyncNever} {
			t.Run(fmt.Sprintf("shards=%d/fsync=%s", shards, sync), func(t *testing.T) {
				dir := t.TempDir()
				// Small segments so rotation happens constantly.
				opts := Options{Shards: shards, Sync: sync, RotateBytes: 4 << 10, CompactBytes: -1}
				var applied []db.Mutation
				var journaled []stream.Event
				for cycle := 0; cycle < cycles; cycle++ {
					b := openT(t, dir, opts)
					if (cycle == 0) != b.Fresh() {
						t.Fatalf("cycle %d: fresh=%v", cycle, b.Fresh())
					}
					// The recovered store must equal an in-memory replay of
					// everything applied so far.
					mem := replayed(t, shards, applied)
					if cycle > 0 {
						if got, want := probe(t, b), probe(t, mem); !reflect.DeepEqual(got, want) {
							t.Fatalf("cycle %d: recovered answers differ:\ndurable %v\nmemory  %v", cycle, got, want)
						}
					}
					if !reflect.DeepEqual(b.Domain(), mem.Domain()) {
						t.Fatalf("cycle %d: recovered domain differs", cycle)
					}
					// The journal must hold every event journaled so far.
					rs, err := b.RecoverSessions()
					if err != nil {
						t.Fatalf("cycle %d: recovering sessions: %v", cycle, err)
					}
					var j *SessionJournal
					if cycle == 0 {
						if len(rs) != 0 {
							t.Fatalf("cycle 0: %d sessions in a fresh dir", len(rs))
						}
						if j, err = b.CreateSessionJournal("soak", true); err != nil {
							t.Fatal(err)
						}
					} else {
						if len(rs) != 1 || rs[0].Name != "soak" || !rs[0].Park {
							t.Fatalf("cycle %d: recovered sessions %+v", cycle, rs)
						}
						if !reflect.DeepEqual(rs[0].Events, journaled) {
							t.Fatalf("cycle %d: journal has %d events, want %d", cycle, len(rs[0].Events), len(journaled))
						}
						j = rs[0].Journal
					}

					// This cycle's writes: a fresh slice of skewed data plus
					// a few session events.
					chunk := workload.SkewedMutations(workload.SkewOptions{
						Relations: 2, MaxRows: 120, Seed: int64(100 + cycle),
					})
					// Relation names must not collide across cycles.
					for i := range chunk {
						chunk[i].Rel = fmt.Sprintf("c%d%s", cycle, chunk[i].Rel)
					}
					if cycle == 0 {
						chunk = append(seedMutations(40), chunk...)
					}
					if err := db.ApplyAll(b, chunk); err != nil {
						t.Fatalf("cycle %d: apply: %v", cycle, err)
					}
					applied = append(applied, chunk...)
					for k := 0; k < 3; k++ {
						ev := stream.Event{Kind: stream.JoinEvent, Query: workload.ChainQuery(cycle, k, 40)}
						ev.Query.ID = fmt.Sprintf("c%d.%d", cycle, k)
						if err := j.Append(ev); err != nil {
							t.Fatalf("cycle %d: journal append: %v", cycle, err)
						}
						journaled = append(journaled, ev)
					}
					if cycle%4 == 2 {
						if err := b.Compact(); err != nil {
							t.Fatalf("cycle %d: compact: %v", cycle, err)
						}
					}
					// Answers must already be right before the stop.
					mem2 := replayed(t, shards, applied)
					if got, want := probe(t, b), probe(t, mem2); !reflect.DeepEqual(got, want) {
						t.Fatalf("cycle %d: pre-stop answers differ", cycle)
					}
					if cycle%2 == 0 {
						b.Abort() // hard stop: no syncs, handles dropped
					} else {
						if err := b.Close(); err != nil {
							t.Fatalf("cycle %d: close: %v", cycle, err)
						}
					}
				}
				// Final verification pass.
				b := openT(t, dir, opts)
				defer b.Close()
				mem := replayed(t, shards, applied)
				if got, want := probe(t, b), probe(t, mem); !reflect.DeepEqual(got, want) {
					t.Fatal("final recovered answers differ from full in-memory replay")
				}
				rs, err := b.RecoverSessions()
				if err != nil {
					t.Fatal(err)
				}
				if len(rs) != 1 || !reflect.DeepEqual(rs[0].Events, journaled) {
					t.Fatalf("final journal: %d sessions, want the full %d-event history", len(rs), len(journaled))
				}
				st := b.RecoveryStats()
				if st.WALFrames+st.SnapshotFrames != len(applied) {
					t.Fatalf("final recovery covers %d+%d mutations, want %d",
						st.SnapshotFrames, st.WALFrames, len(applied))
				}
			})
		}
	}
}

// replayed builds the in-memory reference store.
func replayed(t *testing.T, shards int, ms []db.Mutation) db.WriteStore {
	t.Helper()
	var s db.WriteStore
	if shards > 1 {
		s = db.NewShardedInstance(shards)
	} else {
		s = db.NewInstance()
	}
	if err := db.ApplyAll(s, ms); err != nil {
		t.Fatal(err)
	}
	return s
}
