package persist

import (
	"errors"
	"reflect"
	"syscall"
	"testing"

	"entangled/internal/db"
	"entangled/internal/eq"
	"entangled/internal/fault"
	"entangled/internal/stream"
)

// faultOpts builds Options writing through an injected filesystem.
func faultOpts(inj *fault.Injector, sync SyncPolicy) Options {
	return Options{Sync: sync, FS: fault.NewFS(fault.OS, inj)}
}

// TestApplyWALFailureDegradesAndProbeRecovers is the core degraded-mode
// contract on the store WAL: a fsync failure fails exactly that ack
// (indeterminate — applied in memory, queued for the journal), every
// later write is rejected up front (degraded — fate known), a probe
// write flushes the pending payload and lifts the degradation, and a
// reopen replays exactly one copy of every journaled mutation (the
// rolled-back torn frame is not duplicated by the flush).
func TestApplyWALFailureDegradesAndProbeRecovers(t *testing.T) {
	dir := t.TempDir()
	inj := fault.NewInjector(1,
		fault.Rule{Op: fault.OpSync, Path: "wal-", After: 2, Count: 1,
			Fault: fault.Fault{Err: syscall.EIO}})
	b := openT(t, dir, faultOpts(inj, SyncAlways))
	defer b.Close()

	ms := seedMutations(6)
	applied := 0 // frames that must replay on reopen
	var indeterminate, rejected bool
	for _, m := range ms {
		err := b.Apply(m)
		switch {
		case err == nil:
			applied++
		case errors.Is(err, ErrIndeterminate):
			if indeterminate {
				t.Fatal("second indeterminate ack: only the failing append may be indeterminate")
			}
			indeterminate = true
			applied++ // queued; the probe below makes it durable
			if !b.Degraded() {
				t.Fatal("backend not degraded after an indeterminate ack")
			}
		case errors.Is(err, ErrDegraded):
			rejected = true // fate known: NOT applied, must not replay
		default:
			t.Fatalf("untyped Apply error: %v", err)
		}
	}
	if !indeterminate || !rejected {
		t.Fatalf("indeterminate=%v rejected=%v: the schedule should produce both", indeterminate, rejected)
	}
	if err := b.Probe(); err != nil {
		t.Fatalf("probe with a healthy disk: %v", err)
	}
	if b.Degraded() {
		t.Fatal("still degraded after a successful probe")
	}
	if m := b.Metrics(); m.PendingAppends != 0 || m.DegradeEvents != 1 {
		t.Fatalf("metrics after probe: %+v", m)
	}
	// The write path is open again.
	if err := b.Apply(db.MCreate("Extra", 0, "k")); err != nil {
		t.Fatalf("apply after recovery: %v", err)
	}
	applied++
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	re := openT(t, dir, Options{})
	defer re.Close()
	if got := re.RecoveryStats().WALFrames; got != applied {
		t.Fatalf("replayed %d frames, want %d (lost or duplicated a frame around the fault)", got, applied)
	}
}

// TestSessionJournalPendingPreservesOrder: an append that fails queues
// its payload; every append behind it queues too (order preserved even
// though the disk is healthy again by then), and the probe flush lands
// them in admission order.
func TestSessionJournalPendingPreservesOrder(t *testing.T) {
	dir := t.TempDir()
	// The journal's first write is its meta frame; fail the second (the
	// first event append).
	inj := fault.NewInjector(1,
		fault.Rule{Op: fault.OpWrite, Path: "s.wal", After: 1, Count: 1,
			Fault: fault.Fault{Err: syscall.EIO}})
	b := openT(t, dir, faultOpts(inj, SyncAlways))
	defer b.Close()

	j, err := b.CreateSessionJournal("s", false)
	if err != nil {
		t.Fatal(err)
	}
	evs := []stream.Event{
		{Kind: stream.JoinEvent, Query: eq.Query{ID: "a"}},
		{Kind: stream.JoinEvent, Query: eq.Query{ID: "b"}},
		{Kind: stream.LeaveEvent, ID: "a"},
	}
	for i, ev := range evs {
		if err := j.Append(ev); !errors.Is(err, ErrIndeterminate) {
			t.Fatalf("append %d: %v, want indeterminate (first failed, rest queued behind it)", i, err)
		}
	}
	if !b.Degraded() {
		t.Fatal("backend not degraded after a journal append failure")
	}
	if m := b.Metrics(); m.PendingAppends != len(evs) {
		t.Fatalf("pending %d, want %d", m.PendingAppends, len(evs))
	}
	if err := b.Probe(); err != nil {
		t.Fatalf("probe: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	re := openT(t, dir, Options{})
	defer re.Close()
	recovered, err := re.RecoverSessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 1 {
		t.Fatalf("recovered %d sessions, want 1", len(recovered))
	}
	got := recovered[0].Events
	if !reflect.DeepEqual(got, evs) {
		t.Fatalf("recovered events out of order or lost:\ngot  %+v\nwant %+v", got, evs)
	}
}

// TestCreateSessionJournalDirSyncFailure: the directory fsync that
// makes a new journal's directory entry durable is part of the create —
// its failure fails the create (no half-born journal) and degrades the
// backend, and no ghost session resurrects on reopen.
func TestCreateSessionJournalDirSyncFailure(t *testing.T) {
	dir := t.TempDir()
	inj := fault.NewInjector(1,
		fault.Rule{Op: fault.OpSyncDir, Path: "sessions", Count: 1,
			Fault: fault.Fault{Err: syscall.EIO}})
	b := openT(t, dir, faultOpts(inj, SyncAlways))
	defer b.Close()

	if _, err := b.CreateSessionJournal("ghost", false); err == nil {
		t.Fatal("create succeeded though the directory entry is not durable")
	} else if !errors.Is(err, syscall.EIO) {
		t.Fatalf("create error %v does not surface the injected cause", err)
	}
	if !b.Degraded() {
		t.Fatal("backend not degraded after a directory-sync failure")
	}
	// While degraded, creates are rejected up front.
	if _, err := b.CreateSessionJournal("next", false); !errors.Is(err, ErrDegraded) {
		t.Fatalf("create while degraded: %v, want ErrDegraded", err)
	}
	if err := b.Probe(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	re := openT(t, dir, Options{})
	defer re.Close()
	recovered, err := re.RecoverSessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 0 {
		t.Fatalf("ghost session resurrected: %v", recovered)
	}
}

// TestProbeFailureKeepsDegraded: a probe that cannot reach stable
// storage keeps the backend degraded (and counts the failure); the
// next healthy probe lifts it.
func TestProbeFailureKeepsDegraded(t *testing.T) {
	dir := t.TempDir()
	inj := fault.NewInjector(1,
		fault.Rule{Op: fault.OpSync, Path: "wal-", After: 1, Count: 1,
			Fault: fault.Fault{Err: syscall.EIO}},
		fault.Rule{Op: fault.OpWrite, Path: "probe.tmp", Count: 1,
			Fault: fault.Fault{Err: syscall.ENOSPC}})
	b := openT(t, dir, faultOpts(inj, SyncAlways))
	defer b.Close()

	ms := seedMutations(2)
	for _, m := range ms {
		if err := b.Apply(m); err != nil {
			break
		}
	}
	if !b.Degraded() {
		t.Fatal("schedule bug: backend should be degraded")
	}
	if err := b.Probe(); err == nil {
		t.Fatal("probe succeeded though the scratch write failed")
	}
	if !b.Degraded() {
		t.Fatal("failed probe lifted the degradation")
	}
	if err := b.Probe(); err != nil {
		t.Fatalf("second probe: %v", err)
	}
	if b.Degraded() {
		t.Fatal("still degraded after a successful probe")
	}
	m := b.Metrics()
	if m.Probes != 2 || m.ProbeFailures != 1 {
		t.Fatalf("probes=%d failures=%d, want 2/1", m.Probes, m.ProbeFailures)
	}
	if !inj.Exhausted() {
		t.Fatal("fault schedule not fully consumed")
	}
}

// TestSyncMarksDegraded: an explicit Sync failure (policy flush, drain
// path) degrades the backend instead of silently losing the flush.
func TestSyncMarksDegraded(t *testing.T) {
	dir := t.TempDir()
	inj := fault.NewInjector(1,
		fault.Rule{Op: fault.OpSync, Path: "wal-", Count: 1,
			Fault: fault.Fault{Err: syscall.EIO}})
	b := openT(t, dir, faultOpts(inj, SyncNever))
	defer b.Close()

	for _, m := range seedMutations(2) {
		if err := b.Apply(m); err != nil {
			t.Fatalf("apply under SyncNever: %v", err)
		}
	}
	if err := b.Sync(); err == nil {
		t.Fatal("Sync swallowed the injected fsync failure")
	}
	if !b.Degraded() {
		t.Fatal("backend not degraded after a failed Sync")
	}
	if err := b.Probe(); err != nil {
		t.Fatalf("probe: %v", err)
	}
	if err := b.Sync(); err != nil {
		t.Fatalf("sync after repair: %v", err)
	}
}
