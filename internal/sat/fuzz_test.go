package sat

import (
	"strings"
	"testing"
)

// FuzzParseDIMACS checks the DIMACS reader never panics, and that
// accepted formulas survive a Write -> Parse round trip.
func FuzzParseDIMACS(f *testing.F) {
	seeds := []string{
		"p cnf 3 2\n1 -2 3 0\n-1 2 0\n",
		"c comment\np cnf 1 1\n1 0\n",
		"p cnf 0 0\n",
		"p cnf 2 1\n1 2\n",
		"1 2 0\n",
		"p cnf x y\n",
		"p cnf 3 1\n1\n2\n3 0\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		form, err := ParseDIMACS(strings.NewReader(src))
		if err != nil {
			return
		}
		var sb strings.Builder
		if err := WriteDIMACS(&sb, form); err != nil {
			// Accepted formulas are always valid (Validate passes) —
			// except p cnf 0 0, which has no clauses and writes fine too.
			t.Fatalf("accepted formula failed to write: %v", err)
		}
		back, err := ParseDIMACS(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if back.NumVars != form.NumVars || len(back.Clauses) != len(form.Clauses) {
			t.Fatalf("round trip changed shape")
		}
	})
}
