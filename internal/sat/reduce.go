package sat

import (
	"fmt"
	"strconv"

	"entangled/internal/db"
	"entangled/internal/eq"
)

// Instance1 is the output of the Theorem 1 reduction: a set of entangled
// queries and a trivial database over which every conjunctive query is
// answerable in polynomial time (a single unary relation D = {0, 1}).
type Instance1 struct {
	Queries []eq.Query
	DB      *db.Instance
}

// ReduceTheorem1 encodes a 3SAT formula as an Entangled(Q_all) instance
// following the proof of Theorem 1:
//
//	Clause-Query: {C1(1), ..., Ck(1)}  C(1)   :- ∅
//	xi-Val:       {C(1)}               Ri(x)  :- D(x)
//	xi-True:      {Ri(1)}  ∧_{j: xi∈Cj}  Cj(1) :- ∅
//	xi-False:     {Ri(0)}  ∧_{j: ¬xi∈Cj} Cj(1) :- ∅
//
// The formula is satisfiable iff the instance has a coordinating set.
func ReduceTheorem1(f Formula) (Instance1, error) {
	if err := f.Validate(); err != nil {
		return Instance1{}, err
	}
	inst := db.NewInstance()
	d := inst.CreateRelation("D", "val")
	d.Insert("1")
	d.Insert("0")

	one := eq.C("1")
	zero := eq.C("0")
	clauseAtom := func(j int) eq.Atom { return eq.NewAtom("C"+strconv.Itoa(j+1), one) }

	var qs []eq.Query

	// Clause-Query.
	var posts []eq.Atom
	for j := range f.Clauses {
		posts = append(posts, clauseAtom(j))
	}
	qs = append(qs, eq.Query{
		ID:   "clause-query",
		Post: posts,
		Head: []eq.Atom{eq.NewAtom("C", one)},
	})

	for v := 1; v <= f.NumVars; v++ {
		ri := "R" + strconv.Itoa(v)
		// xi-Val.
		qs = append(qs, eq.Query{
			ID:   fmt.Sprintf("x%d-val", v),
			Post: []eq.Atom{eq.NewAtom("C", one)},
			Head: []eq.Atom{eq.NewAtom(ri, eq.V("x"))},
			Body: []eq.Atom{eq.NewAtom("D", eq.V("x"))},
		})
		// xi-True / xi-False heads: the clauses each polarity satisfies.
		var trueHeads, falseHeads []eq.Atom
		for j, c := range f.Clauses {
			for _, l := range c {
				if l.Var() != v {
					continue
				}
				if l.Positive() {
					trueHeads = append(trueHeads, clauseAtom(j))
				} else {
					falseHeads = append(falseHeads, clauseAtom(j))
				}
			}
		}
		qs = append(qs, eq.Query{
			ID:   fmt.Sprintf("x%d-true", v),
			Post: []eq.Atom{eq.NewAtom(ri, one)},
			Head: dedupeAtoms(trueHeads),
		})
		qs = append(qs, eq.Query{
			ID:   fmt.Sprintf("x%d-false", v),
			Post: []eq.Atom{eq.NewAtom(ri, zero)},
			Head: dedupeAtoms(falseHeads),
		})
	}
	return Instance1{Queries: qs, DB: inst}, nil
}

// Instance2 is the output of the Theorem 2 reduction: a *safe* set of
// entangled queries whose maximum coordinating set has size
// k+m (clauses + variables) iff the formula is satisfiable.
type Instance2 struct {
	Queries []eq.Query
	DB      *db.Instance
	// Target is k+m, the maximum coordinating-set size achieved exactly
	// when the formula is satisfiable.
	Target int
}

// ReduceTheorem2 encodes 3SAT as EntangledMax(Q_safe) following the
// proof of Theorem 2. Per clause C = x_{j1}^{v1} ∨ x_{j2}^{v2} ∨
// x_{j3}^{v3} the "selection gadget" issues three queries whose
// postconditions force at most one literal to witness the clause:
//
//	{R_{j1}(v1)}                          C(1) :- ∅
//	{R_{j2}(v2), R_{j1}(¬v1)}             C(1) :- ∅
//	{R_{j3}(v3), R_{j2}(¬v2), R_{j1}(¬v1)} C(1) :- ∅
//
// plus, per variable, the value-selection query {} Rj(xj) :- D(xj).
func ReduceTheorem2(f Formula) (Instance2, error) {
	if err := f.Validate(); err != nil {
		return Instance2{}, err
	}
	for i, c := range f.Clauses {
		if len(c) != 3 {
			return Instance2{}, fmt.Errorf("sat: clause %d must have exactly 3 literals for Theorem 2", i)
		}
	}
	inst := db.NewInstance()
	d := inst.CreateRelation("D", "val")
	d.Insert("1")
	d.Insert("0")

	valOf := func(l Literal) eq.Term {
		if l.Positive() {
			return eq.C("1")
		}
		return eq.C("0")
	}
	negValOf := func(l Literal) eq.Term {
		if l.Positive() {
			return eq.C("0")
		}
		return eq.C("1")
	}
	rel := func(l Literal) string { return "R" + strconv.Itoa(l.Var()) }

	var qs []eq.Query
	for i, c := range f.Clauses {
		ci := eq.NewAtom("C"+strconv.Itoa(i+1), eq.C("1"))
		for t := 0; t < 3; t++ {
			// Literal t is "constrained" by the negations of literals
			// 0..t-1: it may only witness the clause if they failed.
			post := []eq.Atom{eq.NewAtom(rel(c[t]), valOf(c[t]))}
			for u := t - 1; u >= 0; u-- {
				post = append(post, eq.NewAtom(rel(c[u]), negValOf(c[u])))
			}
			qs = append(qs, eq.Query{
				ID:   fmt.Sprintf("c%d-lit%d", i+1, t+1),
				Post: post,
				Head: []eq.Atom{ci},
			})
		}
	}
	for v := 1; v <= f.NumVars; v++ {
		x := eq.V("x")
		qs = append(qs, eq.Query{
			ID:   fmt.Sprintf("x%d-val", v),
			Head: []eq.Atom{eq.NewAtom("R"+strconv.Itoa(v), x)},
			Body: []eq.Atom{eq.NewAtom("D", x)},
		})
	}
	return Instance2{Queries: qs, DB: inst, Target: len(f.Clauses) + f.NumVars}, nil
}

// InstanceB is the output of the Appendix B reduction, which shows that
// letting some queries coordinate on attribute A0 and others on {A0, A1}
// re-introduces NP-hardness even in the consistent setting.
type InstanceB struct {
	Queries []eq.Query
	DB      *db.Instance
}

// ReduceAppendixB encodes 3SAT using the mixed-coordination-attribute
// construction of Appendix B: a global query qC requiring every clause,
// clause queries that coordinate with a "friend" literal, positive and
// negative literal queries pinned to the 1MAR and 2MAR flights, and a
// per-variable selection gadget S_i that forces at most one literal
// polarity to coordinate. The formula is satisfiable iff the query set
// has a coordinating set.
func ReduceAppendixB(f Formula) (InstanceB, error) {
	if err := f.Validate(); err != nil {
		return InstanceB{}, err
	}
	inst := db.NewInstance()
	fl := inst.CreateRelation("Fl", "fid", "date")
	fl.Insert("F1", "1MAR")
	fl.Insert("F2", "2MAR")
	fr := inst.CreateRelation("Fr", "clause", "friend")

	mar1 := eq.C("1MAR")
	mar2 := eq.C("2MAR")
	litName := func(l Literal) eq.Value {
		if l.Positive() {
			return eq.Value("X" + strconv.Itoa(l.Var()))
		}
		return eq.Value("X" + strconv.Itoa(l.Var()) + "*")
	}

	var qs []eq.Query

	// qC: all clauses must be witnessed.
	var posts, body []eq.Atom
	body = append(body, eq.NewAtom("Fl", eq.V("x"), mar1))
	for j := range f.Clauses {
		y := eq.V("y" + strconv.Itoa(j+1))
		posts = append(posts, eq.NewAtom("R", y, eq.C(clauseName(j))))
		body = append(body, eq.NewAtom("Fl", y, mar1))
	}
	qs = append(qs, eq.Query{
		ID:   "qC",
		Post: posts,
		Head: []eq.Atom{eq.NewAtom("R", eq.V("x"), eq.C("C"))},
		Body: body,
	})

	// Clause queries: coordinate with one friend (a satisfying literal).
	for j, c := range f.Clauses {
		name := clauseName(j)
		qs = append(qs, eq.Query{
			ID:   string(name),
			Post: []eq.Atom{eq.NewAtom("R", eq.V("y"), eq.V("f"))},
			Head: []eq.Atom{eq.NewAtom("R", eq.V("x"), eq.C(name))},
			Body: []eq.Atom{
				eq.NewAtom("Fr", eq.C(name), eq.V("f")),
				eq.NewAtom("Fl", eq.V("x"), mar1),
				eq.NewAtom("Fl", eq.V("y"), eq.V("d")),
			},
		})
		for _, l := range c {
			fr.Insert(eq.Value(name), litName(l))
		}
	}

	// Literal and selection-gadget queries.
	for v := 1; v <= f.NumVars; v++ {
		si := eq.Value("S" + strconv.Itoa(v))
		pos := litName(Literal(v))
		neg := litName(Literal(-v))
		qs = append(qs,
			eq.Query{
				ID:   string(pos),
				Post: []eq.Atom{eq.NewAtom("R", eq.V("y"), eq.C(si))},
				Head: []eq.Atom{eq.NewAtom("R", eq.V("x"), eq.C(pos))},
				Body: []eq.Atom{
					eq.NewAtom("Fl", eq.V("x"), mar1),
					eq.NewAtom("Fl", eq.V("y"), mar1),
				},
			},
			eq.Query{
				ID:   string(neg),
				Post: []eq.Atom{eq.NewAtom("R", eq.V("y"), eq.C(si))},
				Head: []eq.Atom{eq.NewAtom("R", eq.V("x"), eq.C(neg))},
				Body: []eq.Atom{
					eq.NewAtom("Fl", eq.V("x"), mar2),
					eq.NewAtom("Fl", eq.V("y"), mar2),
				},
			},
			eq.Query{
				ID:   string(si),
				Post: []eq.Atom{eq.NewAtom("R", eq.V("y"), eq.C("C"))},
				Head: []eq.Atom{eq.NewAtom("R", eq.V("x"), eq.C(si))},
				Body: []eq.Atom{
					eq.NewAtom("Fl", eq.V("x"), eq.V("d")),
					eq.NewAtom("Fl", eq.V("y"), eq.V("d2")),
				},
			},
		)
	}
	// Index the flight and friendship relations on their first columns.
	fl.BuildIndex(0)
	fr.BuildIndex(0)
	return InstanceB{Queries: qs, DB: inst}, nil
}

func clauseName(j int) eq.Value { return eq.Value("QC" + strconv.Itoa(j+1)) }

func dedupeAtoms(as []eq.Atom) []eq.Atom {
	var out []eq.Atom
	for _, a := range as {
		dup := false
		for _, b := range out {
			if a.Equal(b) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, a)
		}
	}
	return out
}
