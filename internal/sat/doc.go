// Package sat provides 3SAT machinery for the paper's hardness results
// (§3 and the appendices): a formula representation, a DPLL solver used
// as a verification oracle, a random 3SAT generator, and the three
// reductions from 3SAT to entangled-query problems (Theorem 1,
// Theorem 2's gadget, and Appendix B's mixed-coordination-attribute
// construction).
package sat
