package sat

import (
	"math/rand"
	"testing"

	"entangled/internal/coord"
	"entangled/internal/eq"
)

// The hardness-reduction tests verify the paper's Theorem 1, Theorem 2
// and Appendix B constructions end to end: a 3SAT formula is
// satisfiable (per the DPLL oracle) exactly when the reduced
// entangled-query instance behaves as the theorem claims (per the
// brute-force coordinating-set solver).

func TestReduceTheorem1Shape(t *testing.T) {
	f := Formula{NumVars: 2, Clauses: []Clause{{1, -2, 2}}}
	inst, err := ReduceTheorem1(f)
	if err != nil {
		t.Fatal(err)
	}
	// 1 clause-query + per variable (val, true, false).
	if len(inst.Queries) != 1+3*f.NumVars {
		t.Fatalf("query count = %d", len(inst.Queries))
	}
	// The database is trivial: one unary relation with two values.
	d, ok := inst.DB.Relation("D")
	if !ok || d.Len() != 2 || d.Arity() != 1 {
		t.Fatal("D must be the unary {0,1} relation")
	}
	// Entangled queries must be well formed over the schema.
	if err := eq.Validate(inst.Queries, inst.DB.Schema()); err != nil {
		t.Fatal(err)
	}
}

func TestReduceTheorem1Satisfiable(t *testing.T) {
	// (x1 | x2 | x3) & (!x1 | !x2 | x3): satisfiable.
	f := Formula{NumVars: 3, Clauses: []Clause{{1, 2, 3}, {-1, -2, 3}}}
	if _, ok := f.Solve(); !ok {
		t.Fatal("fixture must be satisfiable")
	}
	inst, err := ReduceTheorem1(f)
	if err != nil {
		t.Fatal(err)
	}
	exists, err := coord.BruteForceExists(inst.Queries, inst.DB)
	if err != nil {
		t.Fatal(err)
	}
	if !exists {
		t.Fatal("satisfiable formula must yield a coordinating set")
	}
}

func TestReduceTheorem1Unsatisfiable(t *testing.T) {
	// x1 must be both true and false through three-literal clauses:
	// (x1|x1|x1) is not legal 3SAT with distinct vars, so use the
	// classic unsat core over three variables.
	var clauses []Clause
	for s := 0; s < 8; s++ {
		c := Clause{}
		for v := 1; v <= 3; v++ {
			l := Literal(v)
			if s&(1<<(v-1)) != 0 {
				l = -l
			}
			c = append(c, l)
		}
		clauses = append(clauses, c)
	}
	f := Formula{NumVars: 3, Clauses: clauses}
	if _, ok := f.Solve(); ok {
		t.Fatal("fixture must be unsatisfiable")
	}
	inst, err := ReduceTheorem1(f)
	if err != nil {
		t.Fatal(err)
	}
	exists, err := coord.BruteForceExists(inst.Queries, inst.DB)
	if err != nil {
		t.Fatal(err)
	}
	if exists {
		t.Fatal("unsatisfiable formula must yield no coordinating set")
	}
}

func TestQuickTheorem1Equivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for i := 0; i < 12; i++ {
		f := Random3SAT(3, 2+rng.Intn(6), rng)
		_, sat := f.Solve()
		inst, err := ReduceTheorem1(f)
		if err != nil {
			t.Fatal(err)
		}
		exists, err := coord.BruteForceExists(inst.Queries, inst.DB)
		if err != nil {
			t.Fatal(err)
		}
		if sat != exists {
			t.Fatalf("equivalence broken for %s: sat=%v exists=%v", f, sat, exists)
		}
	}
}

func TestReduceTheorem2Shape(t *testing.T) {
	f := Formula{NumVars: 3, Clauses: []Clause{{1, -2, 3}}}
	inst, err := ReduceTheorem2(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(inst.Queries) != 3*len(f.Clauses)+f.NumVars {
		t.Fatalf("query count = %d", len(inst.Queries))
	}
	if inst.Target != len(f.Clauses)+f.NumVars {
		t.Fatalf("target = %d", inst.Target)
	}
	// Theorem 2 is about *safe* sets: the construction must be safe.
	if !coord.IsSafe(inst.Queries) {
		t.Fatal("Theorem 2 construction must be safe")
	}
	if err := eq.Validate(inst.Queries, inst.DB.Schema()); err != nil {
		t.Fatal(err)
	}
	// Non-3-literal clauses are rejected.
	if _, err := ReduceTheorem2(Formula{NumVars: 2, Clauses: []Clause{{1, 2}}}); err == nil {
		t.Fatal("clause of size 2 must be rejected")
	}
}

func TestQuickTheorem2MaxEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	for i := 0; i < 10; i++ {
		f := Random3SAT(3, 1+rng.Intn(3), rng)
		_, sat := f.Solve()
		inst, err := ReduceTheorem2(f)
		if err != nil {
			t.Fatal(err)
		}
		max, err := coord.BruteForceMax(inst.Queries, inst.DB)
		if err != nil {
			t.Fatal(err)
		}
		if max == nil {
			t.Fatal("variable queries alone always coordinate")
		}
		if max.Size() > inst.Target {
			t.Fatalf("maximum %d exceeds k+m=%d", max.Size(), inst.Target)
		}
		if sat != (max.Size() == inst.Target) {
			t.Fatalf("Theorem 2 equivalence broken for %s: sat=%v max=%d target=%d",
				f, sat, max.Size(), inst.Target)
		}
	}
}

func TestTheorem2GadgetOneLiteralPerClause(t *testing.T) {
	// For C = x1 | !x2 | x3 satisfied two ways, only one of the three
	// clause queries may coordinate at a time.
	f := Formula{NumVars: 3, Clauses: []Clause{{1, -2, 3}}}
	inst, err := ReduceTheorem2(f)
	if err != nil {
		t.Fatal(err)
	}
	max, err := coord.BruteForceMax(inst.Queries, inst.DB)
	if err != nil {
		t.Fatal(err)
	}
	clauseQueries := 0
	for _, i := range max.Set {
		if i < 3 { // first three queries are the clause gadget
			clauseQueries++
		}
	}
	if clauseQueries != 1 {
		t.Fatalf("exactly one clause query may coordinate, got %d (set %v)", clauseQueries, max.Set)
	}
}

func TestQuickAppendixBEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for i := 0; i < 8; i++ {
		f := Random3SAT(3, 1+rng.Intn(2), rng)
		_, sat := f.Solve()
		inst, err := ReduceAppendixB(f)
		if err != nil {
			t.Fatal(err)
		}
		exists, err := coord.BruteForceExists(inst.Queries, inst.DB)
		if err != nil {
			t.Fatal(err)
		}
		if sat != exists {
			t.Fatalf("Appendix B equivalence broken for %s: sat=%v exists=%v", f, sat, exists)
		}
	}
}

func TestAppendixBShape(t *testing.T) {
	f := Formula{NumVars: 3, Clauses: []Clause{{1, -2, 3}}}
	inst, err := ReduceAppendixB(f)
	if err != nil {
		t.Fatal(err)
	}
	// qC + per clause + per variable (pos, neg, S).
	want := 1 + len(f.Clauses) + 3*f.NumVars
	if len(inst.Queries) != want {
		t.Fatalf("query count = %d, want %d", len(inst.Queries), want)
	}
	if err := eq.Validate(inst.Queries, inst.DB.Schema()); err != nil {
		t.Fatal(err)
	}
	// The clause queries are unsafe (their friend variable unifies with
	// many heads) — that is the whole point of Appendix B.
	if coord.IsSafe(inst.Queries) {
		t.Fatal("Appendix B construction should be unsafe")
	}
}
