package sat

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseDIMACS(t *testing.T) {
	src := `c example
p cnf 3 2
1 -2 3 0
-1 2 0
`
	f, err := ParseDIMACS(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if f.NumVars != 3 || len(f.Clauses) != 2 {
		t.Fatalf("shape: %+v", f)
	}
	if f.Clauses[0][1] != -2 {
		t.Fatalf("clause 0: %v", f.Clauses[0])
	}
}

func TestParseDIMACSMultiline(t *testing.T) {
	src := "p cnf 3 1\n1\n-2\n3 0\n"
	f, err := ParseDIMACS(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Clauses) != 1 || len(f.Clauses[0]) != 3 {
		t.Fatalf("clauses: %v", f.Clauses)
	}
}

func TestParseDIMACSErrors(t *testing.T) {
	bad := []string{
		"",                      // no problem line
		"1 2 0\n",               // clause before p
		"p cnf x y\n",           // bad counts
		"p dnf 2 1\n1 0\n",      // wrong format tag
		"p cnf 2 1\n1 3 0\n",    // literal out of range
		"p cnf 2 2\n1 0\n",      // clause count mismatch
		"p cnf 2 1\n1 2\n",      // unterminated clause
		"p cnf 2 1\n0\n",        // empty clause
		"p cnf 2 1\n1 zonk 0\n", // garbage literal
	}
	for _, src := range bad {
		if _, err := ParseDIMACS(strings.NewReader(src)); err == nil {
			t.Errorf("ParseDIMACS(%q) should fail", src)
		}
	}
}

func TestWriteDIMACSRejectsInvalid(t *testing.T) {
	var sb strings.Builder
	if err := WriteDIMACS(&sb, Formula{NumVars: 1, Clauses: []Clause{{5}}}); err == nil {
		t.Fatal("invalid formula must be rejected")
	}
}

// Property: Write then Parse is the identity on random formulas.
func TestQuickDIMACSRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	f := func() bool {
		form := Random3SAT(3+rng.Intn(6), 1+rng.Intn(10), rng)
		var sb strings.Builder
		if err := WriteDIMACS(&sb, form); err != nil {
			return false
		}
		back, err := ParseDIMACS(strings.NewReader(sb.String()))
		if err != nil {
			return false
		}
		if back.NumVars != form.NumVars || len(back.Clauses) != len(form.Clauses) {
			return false
		}
		for i := range form.Clauses {
			if len(back.Clauses[i]) != len(form.Clauses[i]) {
				return false
			}
			for j := range form.Clauses[i] {
				if back.Clauses[i][j] != form.Clauses[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
