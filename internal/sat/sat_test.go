package sat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLiteral(t *testing.T) {
	l := Literal(3)
	if l.Var() != 3 || !l.Positive() || l.Neg() != -3 {
		t.Fatalf("literal mechanics broken: %v", l)
	}
	n := Literal(-5)
	if n.Var() != 5 || n.Positive() || n.Neg() != 5 {
		t.Fatalf("negative literal mechanics broken: %v", n)
	}
	if l.String() != "x3" || n.String() != "!x5" {
		t.Fatalf("rendering: %s %s", l, n)
	}
}

func TestFormulaValidate(t *testing.T) {
	f := Formula{NumVars: 2, Clauses: []Clause{{1, -2}}}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Formula{NumVars: 1, Clauses: []Clause{{2}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("out-of-range variable must fail")
	}
	empty := Formula{NumVars: 1, Clauses: []Clause{{}}}
	if err := empty.Validate(); err == nil {
		t.Fatal("empty clause must fail")
	}
	zero := Formula{NumVars: 1, Clauses: []Clause{{0}}}
	if err := zero.Validate(); err == nil {
		t.Fatal("zero literal must fail")
	}
}

func TestSolveTrivial(t *testing.T) {
	f := Formula{NumVars: 1, Clauses: []Clause{{1}}}
	assign, ok := f.Solve()
	if !ok || !assign[1] {
		t.Fatalf("x1 alone: assign=%v ok=%v", assign, ok)
	}
	g := Formula{NumVars: 1, Clauses: []Clause{{1}, {-1}}}
	if _, ok := g.Solve(); ok {
		t.Fatal("x1 & !x1 is unsatisfiable")
	}
}

func TestSolveKnownUnsat(t *testing.T) {
	// All eight sign patterns over three variables: unsatisfiable.
	var clauses []Clause
	for s := 0; s < 8; s++ {
		c := Clause{}
		for v := 1; v <= 3; v++ {
			l := Literal(v)
			if s&(1<<(v-1)) != 0 {
				l = -l
			}
			c = append(c, l)
		}
		clauses = append(clauses, c)
	}
	f := Formula{NumVars: 3, Clauses: clauses}
	if _, ok := f.Solve(); ok {
		t.Fatal("complete sign-pattern formula is unsatisfiable")
	}
}

func TestSolveKnownSat(t *testing.T) {
	f := Formula{NumVars: 4, Clauses: []Clause{
		{1, 2, 3}, {-1, -2, 4}, {-3, -4, 1}, {2, -3, -4},
	}}
	assign, ok := f.Solve()
	if !ok {
		t.Fatal("formula is satisfiable")
	}
	if !f.Eval(assign) {
		t.Fatalf("returned assignment %v does not satisfy %s", assign, f)
	}
}

// bruteSat enumerates all assignments; the oracle for the DPLL property
// test.
func bruteSat(f Formula) bool {
	n := f.NumVars
	for m := 0; m < 1<<n; m++ {
		assign := make([]bool, n+1)
		for v := 1; v <= n; v++ {
			assign[v] = m&(1<<(v-1)) != 0
		}
		if f.Eval(assign) {
			return true
		}
	}
	return false
}

// Property: DPLL agrees with exhaustive enumeration, and returned
// assignments always satisfy the formula.
func TestQuickDPLLMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	f := func() bool {
		nv := 3 + rng.Intn(5)
		nc := 1 + rng.Intn(3*nv)
		form := Random3SAT(nv, nc, rng)
		assign, ok := form.Solve()
		if ok != bruteSat(form) {
			return false
		}
		if ok && !form.Eval(assign) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRandom3SATShape(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := Random3SAT(6, 10, rng)
	if f.NumVars != 6 || len(f.Clauses) != 10 {
		t.Fatalf("shape: %d vars %d clauses", f.NumVars, len(f.Clauses))
	}
	for _, c := range f.Clauses {
		if len(c) != 3 {
			t.Fatalf("clause size %d", len(c))
		}
		seen := map[int]bool{}
		for _, l := range c {
			if seen[l.Var()] {
				t.Fatalf("repeated variable in clause %v", c)
			}
			seen[l.Var()] = true
		}
	}
}

func TestFormulaString(t *testing.T) {
	f := Formula{NumVars: 2, Clauses: []Clause{{1, -2}}}
	if f.String() != "(x1 | !x2)" {
		t.Fatalf("String = %q", f.String())
	}
}
