package sat

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseDIMACS reads a CNF formula in the standard DIMACS format:
//
//	c a comment
//	p cnf <variables> <clauses>
//	1 -2 3 0
//	...
//
// Clauses may span lines; each is terminated by 0. The declared clause
// count is checked against the clauses actually read.
func ParseDIMACS(r io.Reader) (Formula, error) {
	var f Formula
	declared := -1
	var cur Clause
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") {
			continue
		}
		if strings.HasPrefix(line, "p") {
			fields := strings.Fields(line)
			if len(fields) != 4 || fields[1] != "cnf" {
				return f, fmt.Errorf("sat: bad problem line %q", line)
			}
			nv, err1 := strconv.Atoi(fields[2])
			nc, err2 := strconv.Atoi(fields[3])
			if err1 != nil || err2 != nil || nv < 0 || nc < 0 {
				return f, fmt.Errorf("sat: bad problem line %q", line)
			}
			f.NumVars = nv
			declared = nc
			continue
		}
		if declared < 0 {
			return f, fmt.Errorf("sat: clause before problem line: %q", line)
		}
		for _, tok := range strings.Fields(line) {
			n, err := strconv.Atoi(tok)
			if err != nil {
				return f, fmt.Errorf("sat: bad literal %q", tok)
			}
			if n == 0 {
				if len(cur) == 0 {
					return f, fmt.Errorf("sat: empty clause")
				}
				f.Clauses = append(f.Clauses, cur)
				cur = nil
				continue
			}
			if abs(n) > f.NumVars {
				return f, fmt.Errorf("sat: literal %d out of range (%d variables)", n, f.NumVars)
			}
			cur = append(cur, Literal(n))
		}
	}
	if err := sc.Err(); err != nil {
		return f, err
	}
	if declared < 0 {
		return f, fmt.Errorf("sat: missing problem line")
	}
	if len(cur) > 0 {
		return f, fmt.Errorf("sat: unterminated clause (missing 0)")
	}
	if len(f.Clauses) != declared {
		return f, fmt.Errorf("sat: problem line declares %d clauses, found %d", declared, len(f.Clauses))
	}
	return f, nil
}

// WriteDIMACS renders the formula in DIMACS format.
func WriteDIMACS(w io.Writer, f Formula) error {
	if err := f.Validate(); err != nil {
		return err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "p cnf %d %d\n", f.NumVars, len(f.Clauses))
	for _, c := range f.Clauses {
		for _, l := range c {
			fmt.Fprintf(&sb, "%d ", int(l))
		}
		sb.WriteString("0\n")
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

func abs(n int) int {
	if n < 0 {
		return -n
	}
	return n
}
