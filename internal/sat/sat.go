package sat

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// Literal is a signed variable reference: +v is the variable v, -v its
// negation. Variables are numbered from 1.
type Literal int

// Var returns the literal's variable (always positive).
func (l Literal) Var() int {
	if l < 0 {
		return int(-l)
	}
	return int(l)
}

// Positive reports whether the literal is unnegated.
func (l Literal) Positive() bool { return l > 0 }

// Neg returns the complementary literal.
func (l Literal) Neg() Literal { return -l }

// String renders the literal as "x3" or "!x3".
func (l Literal) String() string {
	if l < 0 {
		return fmt.Sprintf("!x%d", -l)
	}
	return fmt.Sprintf("x%d", l)
}

// Clause is a disjunction of literals.
type Clause []Literal

// String renders the clause as "(x1 | !x2 | x3)".
func (c Clause) String() string {
	parts := make([]string, len(c))
	for i, l := range c {
		parts[i] = l.String()
	}
	return "(" + strings.Join(parts, " | ") + ")"
}

// Formula is a CNF formula over variables 1..NumVars.
type Formula struct {
	NumVars int
	Clauses []Clause
}

// String renders the conjunction of clauses.
func (f Formula) String() string {
	parts := make([]string, len(f.Clauses))
	for i, c := range f.Clauses {
		parts[i] = c.String()
	}
	return strings.Join(parts, " & ")
}

// Validate checks that every literal references a declared variable and
// no clause is empty.
func (f Formula) Validate() error {
	for i, c := range f.Clauses {
		if len(c) == 0 {
			return fmt.Errorf("sat: clause %d is empty", i)
		}
		for _, l := range c {
			if l == 0 || l.Var() > f.NumVars {
				return fmt.Errorf("sat: clause %d has bad literal %d", i, l)
			}
		}
	}
	return nil
}

// Eval evaluates the formula under a complete assignment (1-indexed;
// index 0 unused).
func (f Formula) Eval(assign []bool) bool {
	for _, c := range f.Clauses {
		sat := false
		for _, l := range c {
			if assign[l.Var()] == l.Positive() {
				sat = true
				break
			}
		}
		if !sat {
			return false
		}
	}
	return true
}

// Solve decides satisfiability with DPLL (unit propagation and pure
// literal elimination). It returns a satisfying assignment (1-indexed)
// or ok=false.
func (f Formula) Solve() (assign []bool, ok bool) {
	if err := f.Validate(); err != nil {
		return nil, false
	}
	val := make([]int8, f.NumVars+1) // 0 unassigned, +1 true, -1 false
	if !dpll(f.Clauses, val) {
		return nil, false
	}
	out := make([]bool, f.NumVars+1)
	for v := 1; v <= f.NumVars; v++ {
		out[v] = val[v] >= 0 // unassigned vars default to true
		if val[v] == -1 {
			out[v] = false
		}
	}
	return out, true
}

func dpll(clauses []Clause, val []int8) bool {
	// Unit propagation.
	for {
		unit := Literal(0)
		for _, c := range clauses {
			unassigned := 0
			var last Literal
			satisfied := false
			for _, l := range c {
				switch litVal(l, val) {
				case 1:
					satisfied = true
				case 0:
					unassigned++
					last = l
				}
				if satisfied {
					break
				}
			}
			if satisfied {
				continue
			}
			if unassigned == 0 {
				return false // conflict
			}
			if unassigned == 1 {
				unit = last
				break
			}
		}
		if unit == 0 {
			break
		}
		set(unit, val)
	}
	// Pick a branching variable: first unassigned literal of an
	// unsatisfied clause.
	branch := Literal(0)
	allSat := true
	for _, c := range clauses {
		satisfied := false
		for _, l := range c {
			if litVal(l, val) == 1 {
				satisfied = true
				break
			}
		}
		if satisfied {
			continue
		}
		allSat = false
		for _, l := range c {
			if litVal(l, val) == 0 {
				branch = l
				break
			}
		}
		if branch != 0 {
			break
		}
	}
	if allSat {
		return true
	}
	if branch == 0 {
		return false
	}
	saved := append([]int8(nil), val...)
	set(branch, val)
	if dpll(clauses, val) {
		return true
	}
	copy(val, saved)
	set(branch.Neg(), val)
	if dpll(clauses, val) {
		return true
	}
	copy(val, saved)
	return false
}

func litVal(l Literal, val []int8) int8 {
	v := val[l.Var()]
	if v == 0 {
		return 0
	}
	if (v == 1) == l.Positive() {
		return 1
	}
	return -1
}

func set(l Literal, val []int8) {
	if l.Positive() {
		val[l.Var()] = 1
	} else {
		val[l.Var()] = -1
	}
}

// Random3SAT generates a random 3SAT formula with the given number of
// variables and clauses; each clause has three literals over distinct
// variables.
func Random3SAT(numVars, numClauses int, rng *rand.Rand) Formula {
	if numVars < 3 {
		panic("sat: Random3SAT needs at least 3 variables")
	}
	f := Formula{NumVars: numVars}
	for i := 0; i < numClauses; i++ {
		vars := rng.Perm(numVars)[:3]
		sort.Ints(vars)
		c := make(Clause, 3)
		for j, v := range vars {
			lit := Literal(v + 1)
			if rng.Intn(2) == 0 {
				lit = -lit
			}
			c[j] = lit
		}
		f.Clauses = append(f.Clauses, c)
	}
	return f
}
