// Package admission is the tenant-aware admission layer between the
// transports and the engine: who may spend the server's database
// queries, and at what rate.
//
// A Tenant identity rides each request (HTTP X-Tenant header, binary
// KindTenant envelope; absent means the Default tenant) and is carried
// on the request context by WithTenant/FromContext. A per-tenant
// Policy combines three independent budgets — a token-bucket request
// rate, a concurrent-in-flight cap, and a rolling DBQueries budget
// drained post-paid by the exact Result.DBQueries metering — each of
// which is unlimited when zero. The Controller makes the decisions:
// Decide admits or rejects one unit of work (rejections are typed
// *ThrottleError wrapping ErrThrottled, mapping to wire code
// "throttled"/HTTP 429 with a retry-after hint), Done releases the
// in-flight slot and charges exact spend, and ChargeDB meters ungated
// work such as session leaves.
//
// The subsystem is opt-in and transparent when off: a nil *Controller
// disables every gate, the server's batcher collapses to the single
// FIFO it had before admission existed, and no header or envelope is
// required from clients.
package admission
