package admission

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock swaps the controller onto a hand-cranked clock so the
// token-bucket math is tested exactly, not statistically.
func fakeClock(c *Controller) *atomic.Int64 {
	var now atomic.Int64
	c.clock = now.Load
	c.mu.Lock()
	for _, st := range c.tenants {
		st.tokensAt, st.balanceAt = 0, 0
	}
	c.mu.Unlock()
	return &now
}

func TestContextRoundTrip(t *testing.T) {
	ctx := context.Background()
	if got := FromContext(ctx); got != "" {
		t.Fatalf("empty context carries tenant %q", got)
	}
	ctx = WithTenant(ctx, "acme")
	if got := FromContext(ctx); got != "acme" {
		t.Fatalf("FromContext = %q, want acme", got)
	}
}

func TestUnlimitedPolicyAdmitsAndMeters(t *testing.T) {
	c := NewController(Config{})
	for i := 0; i < 100; i++ {
		if err := c.Decide("acme"); err != nil {
			t.Fatalf("decide %d: %v", i, err)
		}
	}
	for i := 0; i < 100; i++ {
		c.Done("acme", 3)
	}
	snaps := c.Snapshot()
	if len(snaps) != 1 || snaps[0].Tenant != "acme" {
		t.Fatalf("snapshot %+v", snaps)
	}
	s := snaps[0]
	if s.Admitted != 100 || s.Throttled() != 0 || s.InFlight != 0 || s.DBQueriesSpent != 300 {
		t.Fatalf("snapshot %+v", s)
	}
}

func TestRateLimitAndRetryAfter(t *testing.T) {
	c := NewController(Config{Tenants: map[string]Policy{
		"hot": {Rate: 10, Burst: 2},
	}})
	now := fakeClock(c)
	// The bucket starts full: Burst admissions pass, then rejection.
	for i := 0; i < 2; i++ {
		if err := c.Decide("hot"); err != nil {
			t.Fatalf("burst decide %d: %v", i, err)
		}
	}
	err := c.Decide("hot")
	if !errors.Is(err, ErrThrottled) {
		t.Fatalf("over-burst decide: %v, want ErrThrottled", err)
	}
	var te *ThrottleError
	if !errors.As(err, &te) || te.Reason != ReasonRate || te.Tenant != "hot" {
		t.Fatalf("throttle error %+v", err)
	}
	// At 10 req/s one token is 100ms away from an empty bucket.
	if te.RetryAfter <= 0 || te.RetryAfter > 150*time.Millisecond {
		t.Fatalf("retry-after %v, want ~100ms", te.RetryAfter)
	}
	// Advancing the clock by the hint (plus a float-rounding margin)
	// makes the next decide pass.
	now.Add(int64(te.RetryAfter) + int64(time.Millisecond))
	if err := c.Decide("hot"); err != nil {
		t.Fatalf("decide after refill: %v", err)
	}
	// The bucket never overfills past Burst.
	now.Add(int64(time.Hour))
	for i := 0; i < 2; i++ {
		if err := c.Decide("hot"); err != nil {
			t.Fatalf("post-idle decide %d: %v", i, err)
		}
	}
	if err := c.Decide("hot"); !errors.Is(err, ErrThrottled) {
		t.Fatalf("burst cap after idle: %v, want ErrThrottled", err)
	}
}

func TestInFlightCap(t *testing.T) {
	c := NewController(Config{Tenants: map[string]Policy{
		"hot": {MaxInFlight: 2},
	}})
	if err := c.Decide("hot"); err != nil {
		t.Fatal(err)
	}
	if err := c.Decide("hot"); err != nil {
		t.Fatal(err)
	}
	err := c.Decide("hot")
	var te *ThrottleError
	if !errors.As(err, &te) || te.Reason != ReasonInFlight {
		t.Fatalf("over-cap decide: %v, want in_flight throttle", err)
	}
	if te.RetryAfter != 0 {
		t.Fatalf("in-flight throttle has retry-after %v, want none", te.RetryAfter)
	}
	c.Done("hot", 0)
	if err := c.Decide("hot"); err != nil {
		t.Fatalf("decide after done: %v", err)
	}
}

func TestDBBudgetPostPaid(t *testing.T) {
	c := NewController(Config{Tenants: map[string]Policy{
		"hot": {DBQueriesPerSec: 100, DBQueriesBurst: 50},
	}})
	now := fakeClock(c)
	// Budget starts at the burst cap; a big post-paid charge drives it
	// negative and the next decide is rejected with a refill hint.
	if err := c.Decide("hot"); err != nil {
		t.Fatal(err)
	}
	c.Done("hot", 200) // 150 over balance
	err := c.Decide("hot")
	var te *ThrottleError
	if !errors.As(err, &te) || te.Reason != ReasonBudget {
		t.Fatalf("over-budget decide: %v, want db_budget throttle", err)
	}
	// (1 - (-150)) / 100 per sec ≈ 1.51s to get back above zero.
	if te.RetryAfter < time.Second || te.RetryAfter > 2*time.Second {
		t.Fatalf("retry-after %v, want ~1.51s", te.RetryAfter)
	}
	now.Add(int64(te.RetryAfter))
	if err := c.Decide("hot"); err != nil {
		t.Fatalf("decide after budget refill: %v", err)
	}
	// ChargeDB (the ungated path) also drains the same budget.
	c.ChargeDB("hot", 1000)
	if err := c.Decide("hot"); !errors.Is(err, ErrThrottled) {
		t.Fatalf("decide after ChargeDB drain: %v, want ErrThrottled", err)
	}
	s := c.Snapshot()[0]
	if s.DBQueriesSpent != 1200 {
		t.Fatalf("spent %d, want 1200", s.DBQueriesSpent)
	}
}

func TestDefaultTenantAndPolicyResolution(t *testing.T) {
	c := NewController(Config{
		Default: Policy{MaxInFlight: 1, Weight: 2},
		Tenants: map[string]Policy{"vip": {Weight: 8}},
	})
	// "" and Default share one state under the default policy.
	if err := c.Decide(""); err != nil {
		t.Fatal(err)
	}
	if err := c.Decide(Default); !errors.Is(err, ErrThrottled) {
		t.Fatalf("second default decide: %v, want ErrThrottled", err)
	}
	// vip has its own policy (no merging with default).
	if err := c.Decide("vip"); err != nil {
		t.Fatal(err)
	}
	if err := c.Decide("vip"); err != nil {
		t.Fatalf("vip is uncapped: %v", err)
	}
	if w := c.Weight("vip"); w != 8 {
		t.Fatalf("vip weight %d, want 8", w)
	}
	if w := c.Weight("unknown"); w != 2 {
		t.Fatalf("default weight %d, want 2", w)
	}
	if w := c.Weight(""); w != 2 {
		t.Fatalf("empty-tenant weight %d, want 2", w)
	}
}

func TestParseConfig(t *testing.T) {
	cfg, err := ParseConfig([]byte(`{
		"default": {"rate": 100},
		"tenants": {"hot": {"rate": 5, "burst": 10, "max_in_flight": 2, "db_queries_per_sec": 50, "weight": 3}}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Default.Rate != 100 || cfg.Tenants["hot"].Weight != 3 {
		t.Fatalf("parsed %+v", cfg)
	}
	// Derived defaults: burst from rate, db burst from db rate.
	p := cfg.Tenants["hot"].withDefaults()
	if p.Burst != 10 || p.DBQueriesBurst != 50 || p.Weight != 3 {
		t.Fatalf("defaults %+v", p)
	}
	d := cfg.Default.withDefaults()
	if d.Burst != 100 || d.Weight != 1 {
		t.Fatalf("default defaults %+v", d)
	}
	if _, err := ParseConfig([]byte(`{"default": {"ratee": 1}}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := ParseConfig([]byte(`{"default": {"rate": -1}}`)); err == nil {
		t.Fatal("negative rate accepted")
	}
	if _, err := ParseConfig([]byte(`{"tenants": {"": {}}}`)); err == nil {
		t.Fatal("empty tenant name accepted")
	}
}

// TestControllerRace is the -race hammer over the policy store: many
// goroutines deciding, finishing, charging, and snapshotting a mix of
// shared and private tenants. Correctness assertion: in-flight drains
// to zero and admitted counts are conserved.
func TestControllerRace(t *testing.T) {
	c := NewController(Config{
		Default: Policy{Rate: 1e9, MaxInFlight: 1 << 30, DBQueriesPerSec: 1e9},
		Tenants: map[string]Policy{"shared": {Rate: 1e9, DBQueriesPerSec: 1e9}},
	})
	tenants := []Tenant{"shared", "shared", "a", "b", "c", ""}
	var admitted atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				ten := tenants[(g+i)%len(tenants)]
				if err := c.Decide(ten); err == nil {
					admitted.Add(1)
					c.Done(ten, int64(i%3))
				}
				if i%64 == 0 {
					c.ChargeDB(ten, 1)
					c.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	var total int64
	for _, s := range c.Snapshot() {
		total += s.Admitted
		if s.InFlight != 0 {
			t.Fatalf("tenant %s left %d in flight", s.Tenant, s.InFlight)
		}
	}
	if total != admitted.Load() {
		t.Fatalf("admitted %d, counters say %d", admitted.Load(), total)
	}
}

// BenchmarkAdmissionDecide measures the admit fast path (no rate or
// budget policy: no clock read, target <100ns and 0 allocs).
func BenchmarkAdmissionDecide(b *testing.B) {
	c := NewController(Config{Tenants: map[string]Policy{
		"t": {MaxInFlight: 1 << 30},
	}})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Decide("t"); err != nil {
			b.Fatal(err)
		}
		c.Done("t", 2)
	}
}

// BenchmarkAdmissionDecideMetered measures the full path: token-bucket
// refill plus budget refill (two clock reads).
func BenchmarkAdmissionDecideMetered(b *testing.B) {
	c := NewController(Config{Tenants: map[string]Policy{
		"t": {Rate: 1e12, DBQueriesPerSec: 1e12},
	}})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Decide("t"); err != nil {
			b.Fatal(err)
		}
		c.Done("t", 2)
	}
}

// BenchmarkAdmissionThrottled measures the rejection path (error
// construction included).
func BenchmarkAdmissionThrottled(b *testing.B) {
	c := NewController(Config{Tenants: map[string]Policy{
		"t": {MaxInFlight: 1},
	}})
	if err := c.Decide("t"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Decide("t"); err == nil {
			b.Fatal("admitted past the cap")
		}
	}
}
