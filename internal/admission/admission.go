package admission

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"time"
)

// Tenant identifies the principal a request is accounted against.
// Requests that arrive without an identity run as the Default tenant.
type Tenant string

// Default is the tenant requests are accounted against when they carry
// no identity (no HTTP header, no binary tenant envelope).
const Default Tenant = "default"

// normalize maps the absent identity onto the default tenant so every
// accounting path keys on a non-empty name.
func normalize(t Tenant) Tenant {
	if t == "" {
		return Default
	}
	return t
}

type ctxKey struct{}

// WithTenant returns a context carrying the tenant identity. The server
// edge calls this once per request (HTTP header middleware, binary
// tenant envelope) and every downstream accounting decision reads it
// back with FromContext.
func WithTenant(ctx context.Context, t Tenant) context.Context {
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the tenant identity carried by ctx, or the empty
// Tenant when none was attached (the caller runs as Default).
func FromContext(ctx context.Context) Tenant {
	t, _ := ctx.Value(ctxKey{}).(Tenant)
	return t
}

// Policy is one tenant's admission budget. The zero value of any field
// means "unlimited" on that dimension, so the zero Policy admits
// everything and only meters.
type Policy struct {
	// Rate is the sustained request admission rate (requests/second)
	// of the tenant's token bucket; Burst is the bucket capacity.
	// Burst defaults to max(1, ceil(Rate)) when unset.
	Rate  float64 `json:"rate,omitempty"`
	Burst int     `json:"burst,omitempty"`
	// MaxInFlight caps the tenant's concurrently admitted requests.
	MaxInFlight int `json:"max_in_flight,omitempty"`
	// DBQueriesPerSec is the rolling database-query budget, refilled
	// continuously and drained post-paid by the exact Result.DBQueries
	// metering of completed work. DBQueriesBurst is the balance cap;
	// it defaults to ceil(DBQueriesPerSec) (one second of budget).
	DBQueriesPerSec float64 `json:"db_queries_per_sec,omitempty"`
	DBQueriesBurst  int64   `json:"db_queries_burst,omitempty"`
	// Weight is the tenant's deficit-round-robin dispatch weight
	// (quantum per scheduling round). Defaults to 1.
	Weight int `json:"weight,omitempty"`
}

// withDefaults fills the derived fields so the controller and the
// scheduler never see a zero burst or weight.
func (p Policy) withDefaults() Policy {
	if p.Weight <= 0 {
		p.Weight = 1
	}
	if p.Rate > 0 && p.Burst <= 0 {
		p.Burst = int(math.Ceil(p.Rate))
		if p.Burst < 1 {
			p.Burst = 1
		}
	}
	if p.DBQueriesPerSec > 0 && p.DBQueriesBurst <= 0 {
		p.DBQueriesBurst = int64(math.Ceil(p.DBQueriesPerSec))
	}
	return p
}

func (p Policy) validate(who string) error {
	if p.Rate < 0 || p.Burst < 0 || p.MaxInFlight < 0 ||
		p.DBQueriesPerSec < 0 || p.DBQueriesBurst < 0 || p.Weight < 0 {
		return fmt.Errorf("admission: %s: negative policy field", who)
	}
	return nil
}

// Config is the parsed shape of a `-tenants policy.json` file: a
// default policy applied to tenants not named explicitly, plus
// per-tenant overrides. A tenant named in Tenants uses exactly its own
// policy (no merging with Default).
type Config struct {
	Default Policy            `json:"default"`
	Tenants map[string]Policy `json:"tenants,omitempty"`
}

// ParseConfig decodes and validates a policy JSON document. Unknown
// fields are rejected so a typo in a policy file fails loudly at boot
// instead of silently admitting everything.
func ParseConfig(data []byte) (Config, error) {
	var cfg Config
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return Config{}, fmt.Errorf("admission: parsing policy: %w", err)
	}
	if err := cfg.Default.validate("default"); err != nil {
		return Config{}, err
	}
	for name, p := range cfg.Tenants {
		if name == "" {
			return Config{}, errors.New("admission: empty tenant name in policy")
		}
		if err := p.validate("tenant " + name); err != nil {
			return Config{}, err
		}
	}
	return cfg, nil
}

// LoadConfig reads and parses a policy file.
func LoadConfig(path string) (Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Config{}, err
	}
	return ParseConfig(data)
}

// ErrThrottled is the sentinel every admission rejection wraps; it maps
// to wire code "throttled" (HTTP 429) and survives both protocols, so
// clients can `errors.Is` against it across the network. Throttled
// work was rejected before any state changed: the error is fate-known
// and retryable.
var ErrThrottled = errors.New("admission: tenant over budget")

// Throttle reasons, for operators reading errors and metrics.
const (
	ReasonRate     = "rate"      // request token bucket empty
	ReasonInFlight = "in_flight" // concurrent-in-flight cap reached
	ReasonBudget   = "db_budget" // rolling DBQueries budget exhausted
)

// ThrottleError reports one admission rejection: which tenant, which
// budget dimension, and — when the bucket refill rate makes it
// computable — how long until capacity returns.
type ThrottleError struct {
	Tenant Tenant
	Reason string
	// RetryAfter is the server's estimate of when one admission token
	// will be available again; zero when unknowable (in-flight caps
	// clear when outstanding work finishes, not on a clock).
	RetryAfter time.Duration
}

func (e *ThrottleError) Error() string {
	return fmt.Sprintf("admission: tenant %q throttled (%s)", e.Tenant, e.Reason)
}

func (e *ThrottleError) Unwrap() error { return ErrThrottled }

// RetryAfterHint implements the hint interface the api package uses to
// carry retry-after across both protocols.
func (e *ThrottleError) RetryAfterHint() time.Duration { return e.RetryAfter }
