package admission

import (
	"sort"
	"sync"
	"time"
)

// tenantState is one tenant's live accounting: both token buckets, the
// in-flight gauge, and the counters the status endpoint reports. One
// mutex per tenant keeps unrelated tenants off each other's cache
// lines and lets the admit fast path stay a few dozen nanoseconds.
type tenantState struct {
	mu     sync.Mutex
	policy Policy

	tokens    float64 // request-rate bucket balance
	tokensAt  int64   // last refill, ns on the controller clock
	balance   float64 // DBQueries budget balance (may run negative: post-paid)
	balanceAt int64
	inFlight  int

	admitted          int64
	throttledRate     int64
	throttledInFlight int64
	throttledBudget   int64
	dbSpent           int64
}

// Controller makes per-tenant admission decisions. All methods are
// safe for concurrent use. A nil *Controller is the documented "off"
// state — callers gate on nil before calling, so an unconfigured
// server carries zero admission overhead.
type Controller struct {
	cfg Config

	mu      sync.RWMutex
	tenants map[Tenant]*tenantState

	// clock returns nanoseconds on a monotonic scale; tests override.
	clock func() int64
}

// NewController builds a controller over a validated Config. States
// for explicitly configured tenants exist immediately so /v1/tenants
// shows every named tenant before its first request.
func NewController(cfg Config) *Controller {
	base := time.Now()
	c := &Controller{
		cfg:     cfg,
		tenants: make(map[Tenant]*tenantState, len(cfg.Tenants)+1),
		clock:   func() int64 { return int64(time.Since(base)) },
	}
	for name := range cfg.Tenants {
		c.state(Tenant(name))
	}
	return c
}

// policyFor resolves the effective policy for a (normalized) tenant:
// its own entry when named in the config, the default otherwise.
func (c *Controller) policyFor(t Tenant) Policy {
	if p, ok := c.cfg.Tenants[string(t)]; ok {
		return p.withDefaults()
	}
	return c.cfg.Default.withDefaults()
}

// Weight reports the tenant's deficit-round-robin dispatch weight.
func (c *Controller) Weight(t Tenant) int {
	return c.policyFor(normalize(t)).Weight
}

// state returns the tenant's accounting state, creating it with full
// buckets on first sight.
func (c *Controller) state(t Tenant) *tenantState {
	t = normalize(t)
	c.mu.RLock()
	st := c.tenants[t]
	c.mu.RUnlock()
	if st != nil {
		return st
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if st = c.tenants[t]; st != nil {
		return st
	}
	p := c.policyFor(t)
	now := c.clock()
	st = &tenantState{
		policy:    p,
		tokens:    float64(p.Burst),
		tokensAt:  now,
		balance:   float64(p.DBQueriesBurst),
		balanceAt: now,
	}
	c.tenants[t] = st
	return st
}

// refill tops a bucket up from its last-refill timestamp. Called with
// the tenant mutex held.
func refill(balance *float64, at *int64, now int64, rate, cap float64) {
	if now <= *at {
		return
	}
	*balance += float64(now-*at) / float64(time.Second) * rate
	if *balance > cap {
		*balance = cap
	}
	*at = now
}

// Decide admits or rejects one unit of tenant work. Admission takes a
// rate token and an in-flight slot and must be paired with Done when
// the work finishes. Rejections are typed *ThrottleError (wrapping
// ErrThrottled) and change no state beyond a throttle counter. The
// fast path — a tenant with no rate or budget policy — never reads the
// clock and performs zero allocations.
func (c *Controller) Decide(t Tenant) error {
	st := c.state(t)
	st.mu.Lock()
	p := &st.policy
	if p.Rate > 0 {
		refill(&st.tokens, &st.tokensAt, c.clock(), p.Rate, float64(p.Burst))
		if st.tokens < 1 {
			st.throttledRate++
			retry := time.Duration((1 - st.tokens) / p.Rate * float64(time.Second))
			st.mu.Unlock()
			return &ThrottleError{Tenant: normalize(t), Reason: ReasonRate, RetryAfter: retry}
		}
	}
	if p.MaxInFlight > 0 && st.inFlight >= p.MaxInFlight {
		st.throttledInFlight++
		st.mu.Unlock()
		return &ThrottleError{Tenant: normalize(t), Reason: ReasonInFlight}
	}
	if p.DBQueriesPerSec > 0 {
		refill(&st.balance, &st.balanceAt, c.clock(), p.DBQueriesPerSec, float64(p.DBQueriesBurst))
		if st.balance <= 0 {
			st.throttledBudget++
			retry := time.Duration((1 - st.balance) / p.DBQueriesPerSec * float64(time.Second))
			st.mu.Unlock()
			return &ThrottleError{Tenant: normalize(t), Reason: ReasonBudget, RetryAfter: retry}
		}
	}
	if p.Rate > 0 {
		st.tokens--
	}
	st.inFlight++
	st.admitted++
	st.mu.Unlock()
	return nil
}

// Done releases the in-flight slot taken by a successful Decide and
// charges the exact database queries the admitted work spent. The
// budget is post-paid: the balance may run negative, which future
// Decides observe as exhaustion until the refill catches up.
func (c *Controller) Done(t Tenant, dbQueries int64) {
	st := c.state(t)
	st.mu.Lock()
	if st.inFlight > 0 {
		st.inFlight--
	}
	st.charge(dbQueries)
	st.mu.Unlock()
}

// ChargeDB records database spend for ungated work (session leaves run
// unconditionally — shedding load must never block releasing it — but
// their cost still counts against the tenant's rolling budget).
func (c *Controller) ChargeDB(t Tenant, dbQueries int64) {
	if dbQueries == 0 {
		return
	}
	st := c.state(t)
	st.mu.Lock()
	st.charge(dbQueries)
	st.mu.Unlock()
}

// charge is the shared spend path; called with the tenant mutex held.
func (st *tenantState) charge(dbQueries int64) {
	if dbQueries <= 0 {
		return
	}
	st.dbSpent += dbQueries
	if st.policy.DBQueriesPerSec > 0 {
		st.balance -= float64(dbQueries)
	}
}

// TenantSnapshot is one tenant's point-in-time accounting for status
// and metrics endpoints.
type TenantSnapshot struct {
	Tenant            Tenant
	Policy            Policy
	InFlight          int
	Admitted          int64
	ThrottledRate     int64
	ThrottledInFlight int64
	ThrottledBudget   int64
	DBQueriesSpent    int64
	// DBBalance is the budget balance as of the last accounting touch
	// (no refill is applied at snapshot time).
	DBBalance float64
}

// Throttled is the tenant's total rejections across all dimensions.
func (s TenantSnapshot) Throttled() int64 {
	return s.ThrottledRate + s.ThrottledInFlight + s.ThrottledBudget
}

// Snapshot returns every known tenant's state, sorted by name.
func (c *Controller) Snapshot() []TenantSnapshot {
	c.mu.RLock()
	states := make(map[Tenant]*tenantState, len(c.tenants))
	for t, st := range c.tenants {
		states[t] = st
	}
	c.mu.RUnlock()
	out := make([]TenantSnapshot, 0, len(states))
	for t, st := range states {
		st.mu.Lock()
		out = append(out, TenantSnapshot{
			Tenant:            t,
			Policy:            st.policy,
			InFlight:          st.inFlight,
			Admitted:          st.admitted,
			ThrottledRate:     st.throttledRate,
			ThrottledInFlight: st.throttledInFlight,
			ThrottledBudget:   st.throttledBudget,
			DBQueriesSpent:    st.dbSpent,
			DBBalance:         st.balance,
		})
		st.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}
