package coord

import (
	"math/rand"
	"reflect"
	"testing"

	"entangled/internal/db"
	"entangled/internal/workload"
)

// Property: the compiled-plan evaluation path is invisible at the
// coordination level. For random safe query sets on a plain instance
// and on ShardedInstance{K=1,2,8}, SCCCoordinate with compiled plans
// returns the same team, the same step-by-step trace and the same
// exact Result.DBQueries as with the seed evaluator
// (DisableCompiledPlans), and every witness verifies everywhere. Only
// witness values may differ (choose-1 enumeration order is not part of
// the contract).
func TestCompiledPlansEquivalentAtCoordLevel(t *testing.T) {
	const rows = 12
	rng := rand.New(rand.NewSource(7))

	type storePair struct {
		name     string
		compiled db.Store
		seed     db.Store
	}
	var pairs []storePair
	{
		c := newWorkloadInstance(rows)
		s := newWorkloadInstance(rows)
		s.DisableCompiledPlans = true
		pairs = append(pairs, storePair{"plain", c, s})
	}
	for _, k := range []int{1, 2, 8} {
		c := shardedWorkloadInstance(k, rows)
		s := shardedWorkloadInstance(k, rows)
		s.SetDisableCompiledPlans(true)
		pairs = append(pairs, storePair{"k=" + string(rune('0'+k)), c, s})
	}

	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(10)
		qs := workload.RandomSafeQueries(n, rows, 0.3, 0.7, rng)
		for _, pr := range pairs {
			var trC, trS Trace
			got, err := SCCCoordinate(qs, pr.compiled, Options{Trace: &trC})
			if err != nil {
				t.Fatalf("trial %d %s compiled: %v", trial, pr.name, err)
			}
			want, err := SCCCoordinate(qs, pr.seed, Options{Trace: &trS})
			if err != nil {
				t.Fatalf("trial %d %s seed: %v", trial, pr.name, err)
			}
			if (got == nil) != (want == nil) {
				t.Fatalf("trial %d %s: existence differs: compiled=%v seed=%v", trial, pr.name, got, want)
			}
			if !reflect.DeepEqual(trC, trS) {
				t.Fatalf("trial %d %s: traces differ:\ncompiled %+v\nseed     %+v", trial, pr.name, trC, trS)
			}
			if got == nil {
				continue
			}
			if !reflect.DeepEqual(got.Set, want.Set) {
				t.Fatalf("trial %d %s: teams differ: %v vs %v", trial, pr.name, got.Set, want.Set)
			}
			if got.DBQueries != want.DBQueries {
				t.Fatalf("trial %d %s: DBQueries %d != %d", trial, pr.name, got.DBQueries, want.DBQueries)
			}
			// Witness values may differ; each must verify on both paths'
			// stores (identical tuples).
			if err := Verify(qs, got.Set, got.Values, pr.compiled); err != nil {
				t.Fatalf("trial %d %s: compiled witness fails on compiled store: %v", trial, pr.name, err)
			}
			if err := Verify(qs, got.Set, got.Values, pr.seed); err != nil {
				t.Fatalf("trial %d %s: compiled witness fails on seed store: %v", trial, pr.name, err)
			}
			if err := Verify(qs, want.Set, want.Values, pr.compiled); err != nil {
				t.Fatalf("trial %d %s: seed witness fails on compiled store: %v", trial, pr.name, err)
			}
		}
	}
}
