package coord

import (
	"math/rand"
	"testing"
	"testing/quick"

	"entangled/internal/db"
	"entangled/internal/graph"
	"entangled/internal/workload"
)

// newWorkloadInstance builds the small table the randomized workloads
// query.
func newWorkloadInstance(rows int) *db.Instance {
	in := db.NewInstance()
	workload.UserTable(in, rows)
	return in
}

// Property: on random safe query sets, the SCC algorithm finds a
// coordinating set exactly when one exists (the paper's guarantee),
// never exceeds the brute-force maximum, and every returned set passes
// the Definition-1 verifier.
func TestQuickSCCMatchesBruteForceExistence(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	f := func() bool {
		n := 1 + rng.Intn(7)
		qs := workload.RandomSafeQueries(n, 5, 0.3, 0.7, rng)
		if !IsSafe(qs) {
			return false // generator must produce safe sets
		}
		in := newWorkloadInstance(5)
		res, err := SCCCoordinate(qs, in, Options{})
		if err != nil {
			return false
		}
		bf, err := BruteForceMax(qs, in)
		if err != nil {
			return false
		}
		if (res != nil) != (bf != nil) {
			t.Logf("existence mismatch: scc=%v brute=%v", res, bf)
			return false
		}
		if res == nil {
			return true
		}
		if res.Size() > bf.Size() {
			t.Logf("scc set larger than optimum: %d > %d", res.Size(), bf.Size())
			return false
		}
		if err := Verify(qs, res.Set, res.Values, in); err != nil {
			t.Logf("scc result fails verification: %v", err)
			return false
		}
		if err := Verify(qs, bf.Set, bf.Values, in); err != nil {
			t.Logf("brute-force result fails verification: %v", err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: pruning is purely an optimisation — results agree with and
// without it.
func TestQuickPruningAblation(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	f := func() bool {
		n := 1 + rng.Intn(8)
		qs := workload.RandomSafeQueries(n, 5, 0.3, 0.6, rng)
		in := newWorkloadInstance(5)
		a, err := SCCCoordinate(qs, in, Options{})
		if err != nil {
			return false
		}
		b, err := SCCCoordinate(qs, in, Options{SkipPruning: true})
		if err != nil {
			return false
		}
		if (a == nil) != (b == nil) {
			return false
		}
		return a == nil || a.Size() == b.Size()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: on safe AND unique sets, the Gupta baseline and the SCC
// algorithm agree on existence, and when a set exists both return the
// whole input (uniqueness forces all-or-nothing coordination).
func TestQuickGuptaAgreesOnUniqueSets(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	checked := 0
	for checked < 60 {
		n := 2 + rng.Intn(5)
		// A random cycle permutation yields a safe, unique structure.
		qs := workload.GraphQueries(cyclePerm(n, rng), 5)
		if !IsSafe(qs) || !IsUnique(qs) {
			t.Fatal("cycle workload must be safe and unique")
		}
		in := newWorkloadInstance(5)
		g, err := GuptaCoordinate(qs, in)
		if err != nil {
			t.Fatal(err)
		}
		s, err := SCCCoordinate(qs, in, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if (g == nil) != (s == nil) {
			t.Fatalf("existence mismatch: gupta=%v scc=%v", g, s)
		}
		if g != nil {
			if g.Size() != n || s.Size() != n {
				t.Fatalf("unique sets coordinate all-or-nothing: gupta=%d scc=%d n=%d", g.Size(), s.Size(), n)
			}
			if err := Verify(qs, g.Set, g.Values, in); err != nil {
				t.Fatal(err)
			}
		}
		checked++
	}
}

// cyclePerm builds a directed cycle over a random permutation of n
// nodes.
func cyclePerm(n int, rng *rand.Rand) *graph.Digraph {
	perm := rng.Perm(n)
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddEdge(perm[i], perm[(i+1)%n])
	}
	return g
}

// Property: the chain workload of Figure 4 always coordinates in full
// (bodies all satisfiable), and the candidate for query 0 covers the
// whole chain.
func TestListWorkloadCoordinatesFully(t *testing.T) {
	for _, n := range []int{1, 2, 5, 17} {
		in := newWorkloadInstance(50)
		qs := workload.ListQueries(n, 50)
		res, err := SCCCoordinate(qs, in, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Size() != n {
			t.Fatalf("n=%d: size=%d", n, res.Size())
		}
		if err := Verify(qs, res.Set, res.Values, in); err != nil {
			t.Fatal(err)
		}
		// One pruning query per query plus one grounding per SCC.
		if res.DBQueries != int64(2*n) {
			t.Fatalf("n=%d: DBQueries=%d, want %d", n, res.DBQueries, 2*n)
		}
	}
}

// Property: scale-free workloads always coordinate in full as well (all
// bodies satisfiable, all postconditions providable).
func TestScaleFreeWorkloadCoordinates(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for _, n := range []int{5, 20, 60} {
		in := newWorkloadInstance(100)
		qs := workload.ScaleFreeQueries(n, 2, 100, rng)
		if !IsSafe(qs) {
			t.Fatal("scale-free workload must be safe")
		}
		res, err := SCCCoordinate(qs, in, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res == nil {
			t.Fatalf("n=%d: no coordinating set", n)
		}
		if err := Verify(qs, res.Set, res.Values, in); err != nil {
			t.Fatal(err)
		}
	}
}
