package coord

import (
	"errors"
	"math/rand"
	"testing"

	"entangled/internal/db"
	"entangled/internal/eq"
)

func TestIsSingleConnected(t *testing.T) {
	// A chain with single posts is single-connected.
	chain := eq.MustParseSet(`
query a { post: R(UB, x) head: R(UA, x) body: T(x) }
query b { head: R(UB, y) body: T(y) }`)
	if !IsSingleConnected(chain) {
		t.Fatal("chain must be single-connected")
	}
	// Two postconditions break the first condition.
	twoPosts := eq.MustParseSet(`
query a { post: R(UB, x), R(UC, x) head: R(UA, x) body: T(x) }
query b { head: R(UB, y) body: T(y) }
query c { head: R(UC, z) body: T(z) }`)
	if IsSingleConnected(twoPosts) {
		t.Fatal("two postconditions violate single-connectedness")
	}
	// A diamond of single-post queries violates the path condition: the
	// posts of a and a2 both point at b via variables... build an
	// explicit two-paths-to-one-target shape instead: u's post unifies
	// with both v and w heads (same user name twice), both of which
	// point at z.
	diamond := eq.MustParseSet(`
query u { post: R(S, x) head: R(UU, x) body: T(x) }
query v { post: R(Z, y) head: R(S, y) body: T(y) }
query w { post: R(Z, k) head: R(S, k) body: T(k) }
query z { head: R(Z, m) body: T(m) }`)
	if IsSingleConnected(diamond) {
		t.Fatal("diamond has two simple paths from u to z")
	}
}

func TestSingleConnectedRejectsMultiPost(t *testing.T) {
	qs := eq.MustParseSet(`
query a { post: R(UB, x), R(UC, x) head: R(UA, x) body: T(x) }`)
	in := db.NewInstance()
	in.CreateRelation("T", "v")
	if _, err := SingleConnectedCoordinate(qs, in); !errors.Is(err, ErrNotSingleConnected) {
		t.Fatalf("want ErrNotSingleConnected, got %v", err)
	}
}

func TestSingleConnectedChain(t *testing.T) {
	qs := eq.MustParseSet(`
query a { post: R(UB, x) head: R(UA, x) body: T(x) }
query b { post: R(UC, y) head: R(UB, y) body: T(y) }
query c { head: R(UC, z) body: T(z) }`)
	in := db.NewInstance()
	tr := in.CreateRelation("T", "v")
	tr.Insert("1")
	res, err := SingleConnectedCoordinate(qs, in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Size() != 3 {
		t.Fatalf("whole chain coordinates: %v", res)
	}
	if err := Verify(qs, res.Set, res.Values, in); err != nil {
		t.Fatal(err)
	}
}

func TestSingleConnectedCycle(t *testing.T) {
	qs := eq.MustParseSet(`
query a { post: R(UB, x) head: R(UA, x) body: T(x) }
query b { post: R(UA, y) head: R(UB, y) body: T(y) }`)
	in := db.NewInstance()
	tr := in.CreateRelation("T", "v")
	tr.Insert("1")
	res, err := SingleConnectedCoordinate(qs, in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Size() != 2 {
		t.Fatalf("2-cycle coordinates: %v", res)
	}
	if err := Verify(qs, res.Set, res.Values, in); err != nil {
		t.Fatal(err)
	}
}

func TestSingleConnectedUnsafeChoice(t *testing.T) {
	// Unsafe but single-post: u's post R(S, x) unifies with both v's and
	// w's heads. v's body is unsatisfiable, so the solver must pick w.
	qs := eq.MustParseSet(`
query u { post: R(S, x) head: R(UU, x) body: T(x) }
query v { head: R(S, y) body: Missing(y) }
query w { head: R(S, k) body: T(k) }`)
	in := db.NewInstance()
	tr := in.CreateRelation("T", "v")
	tr.Insert("1")
	in.CreateRelation("Missing", "v")
	if IsSafe(qs) {
		t.Fatal("this set is intentionally unsafe")
	}
	res, err := SingleConnectedCoordinate(qs, in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Size() != 2 {
		t.Fatalf("u+w coordinate: %v", res)
	}
	has := map[int]bool{}
	for _, i := range res.Set {
		has[i] = true
	}
	if !has[0] || !has[2] || has[1] {
		t.Fatalf("set should be {u, w}: %v", res.Set)
	}
	if err := Verify(qs, res.Set, res.Values, in); err != nil {
		t.Fatal(err)
	}
}

// Property: on random single-connected instances the solver agrees with
// brute force on existence and its results verify.
func TestQuickSingleConnectedMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	tried := 0
	for tried < 80 {
		qs := randomSinglePostSet(rng)
		if !IsSingleConnected(qs) {
			continue
		}
		tried++
		in := db.NewInstance()
		tr := in.CreateRelation("T", "v")
		tr.Insert("1")
		tr.Insert("2")
		res, err := SingleConnectedCoordinate(qs, in)
		if err != nil {
			t.Fatal(err)
		}
		bf, err := BruteForceMax(qs, in)
		if err != nil {
			t.Fatal(err)
		}
		if (res != nil) != (bf != nil) {
			t.Fatalf("existence mismatch on %v: solver=%v brute=%v", qs, res, bf)
		}
		if res != nil {
			if err := Verify(qs, res.Set, res.Values, in); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// randomSinglePostSet builds a random set of queries with at most one
// postcondition each, over a tiny name space so that unsafe choices and
// cycles occur.
func randomSinglePostSet(rng *rand.Rand) []eq.Query {
	n := 2 + rng.Intn(5)
	qs := make([]eq.Query, n)
	for i := 0; i < n; i++ {
		u := eq.Value(string(rune('A' + i)))
		q := eq.Query{
			ID:   string(u),
			Head: []eq.Atom{eq.NewAtom("R", eq.C(u), eq.V("x"))},
			Body: []eq.Atom{eq.NewAtom("T", eq.V("x"))},
		}
		if rng.Intn(3) > 0 {
			target := eq.Value(string(rune('A' + rng.Intn(n))))
			q.Post = []eq.Atom{eq.NewAtom("R", eq.C(target), eq.V("y"))}
		}
		qs[i] = q
	}
	return qs
}
