package coord

import (
	"context"
	"fmt"
	"sync"

	"entangled/internal/db"
	"entangled/internal/eq"
	"entangled/internal/unify"
)

// BruteForceExistsCtx is BruteForceExists with the subset enumeration
// sharded across workers goroutines and early cancellation through ctx.
// Size buckets are still visited smallest-first with a barrier between
// buckets, so the existence answer matches the sequential oracle
// exactly; within a bucket the workers race and the first hit cancels
// the rest.
func BruteForceExistsCtx(ctx context.Context, qs []eq.Query, store db.Store, workers int) (bool, error) {
	r, err := bruteForceParallel(ctx, qs, store, true, workers)
	if err != nil {
		return false, err
	}
	return r != nil, nil
}

// BruteForceMaxCtx is BruteForceMax with the subset enumeration sharded
// across workers goroutines and early cancellation through ctx. Buckets
// are visited largest-first with a barrier between sizes, so the
// returned set has exactly the sequential maximum size; when several
// sets of that size coordinate, the witness may be any of them (the
// sequential oracle always picks the lowest mask).
func BruteForceMaxCtx(ctx context.Context, qs []eq.Query, store db.Store, workers int) (*Result, error) {
	return bruteForceParallel(ctx, qs, store, false, workers)
}

// bruteForceParallel enumerates subset masks like bruteForce, but splits
// every size bucket into worker shards (strided, so shards stay
// balanced) and stops the whole bucket as soon as one shard finds a
// coordinating subset.
func bruteForceParallel(ctx context.Context, qs []eq.Query, store db.Store, smallestFirst bool, workers int) (*Result, error) {
	n := len(qs)
	if n == 0 {
		return nil, nil
	}
	if n > MaxBruteQueries {
		return nil, fmt.Errorf("%w (got %d)", ErrTooManyQueries, n)
	}
	if workers < 1 {
		workers = 1
	}
	meter := db.NewMeter(store)
	renamed := renameAll(qs)
	providers := providerEdges(qs)
	masks := masksBySize(n)

	for _, size := range sizeOrder(n, smallestFirst) {
		bucket := masks[size]
		if len(bucket) == 0 {
			continue
		}
		h, err := searchBucket(ctx, renamed, bucket, providers, meter, workers)
		if err != nil {
			return nil, err
		}
		if h != nil {
			return finishResult(qs, h.set, h.s, h.bind, meter)
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	return nil, nil
}

// bucketHit is one coordinating subset found inside a size bucket.
type bucketHit struct {
	set  []int
	s    *unify.Subst
	bind db.Binding
}

// searchBucket tries every mask of one size bucket across workers
// shards. Worker w owns masks w, w+workers, w+2*workers, ... so shards
// interleave across the bucket. The first hit cancels the remaining
// shards; errors win over hits.
func searchBucket(ctx context.Context, renamed []eq.Query, bucket []uint32, providers map[[2]int][]ExtendedEdge, store db.Store, workers int) (*bucketHit, error) {
	if workers > len(bucket) {
		workers = len(bucket)
	}
	bctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu       sync.Mutex
		hit      *bucketHit
		firstErr error
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(bucket); i += workers {
				if bctx.Err() != nil {
					return
				}
				set := maskSet(bucket[i])
				s, bind, ok, err := trySubset(renamed, set, providers, store)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					cancel()
					return
				}
				if ok {
					mu.Lock()
					if hit == nil {
						hit = &bucketHit{set: set, s: s, bind: bind}
					}
					mu.Unlock()
					cancel()
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return hit, nil
}
