package coord

import (
	"math/rand"
	"reflect"
	"strconv"
	"testing"

	"entangled/internal/db"
	"entangled/internal/eq"
	"entangled/internal/netgen"
)

// parallelFixture builds a small instance plus a randomized safe query
// set with both satisfiable and unsatisfiable bodies, so parallel runs
// exercise pruning, failing components and grounded candidates alike.
func parallelFixture(t *testing.T, seed int64, n int) ([]eq.Query, *db.Instance) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	inst := db.NewInstance()
	rel := inst.CreateRelation("T", "key", "val")
	for i := 0; i < 50; i++ {
		rel.Insert(eq.Value("t"+itoa(i)), eq.Value("c"+itoa(i)))
	}
	rel.BuildIndex(1)
	g := netgen.ErdosRenyi(n, 0.2, rng)
	qs := make([]eq.Query, n)
	for i := 0; i < n; i++ {
		body := eq.NewAtom("T", eq.V("x"), eq.C(eq.Value("c"+itoa(i%50))))
		if rng.Float64() < 0.3 {
			body = eq.NewAtom("T", eq.V("x"), eq.C(eq.Value("missing"+itoa(i))))
		}
		qs[i] = eq.Query{
			ID:   "u" + itoa(i),
			Head: []eq.Atom{eq.NewAtom("R", eq.C(eq.Value("U"+itoa(i))), eq.V("x"))},
			Body: []eq.Atom{body},
		}
		for k, j := range g.Succ(i) {
			qs[i].Post = append(qs[i].Post, eq.NewAtom("R", eq.C(eq.Value("U"+itoa(j))), eq.V("y"+itoa(k))))
		}
	}
	return qs, inst
}

func itoa(i int) string { return strconv.Itoa(i) }

// TestParallelCandidatesMatchSequential checks that the parallel walk
// produces the exact candidate family of the sequential walk — same
// sets, same order, same assignments — across randomized workloads and
// worker counts.
func TestParallelCandidatesMatchSequential(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		qs, inst := parallelFixture(t, seed, 30)
		seq, err := AllCandidates(qs, inst, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4, 16} {
			par, err := AllCandidates(qs, inst, Options{Parallelism: workers})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(seq, par) {
				t.Fatalf("seed=%d workers=%d: candidate families differ:\nseq %v\npar %v", seed, workers, seq, par)
			}
		}
	}
}

// TestParallelTraceMatchesSequential checks that a parallel run records
// the identical step-by-step trace.
func TestParallelTraceMatchesSequential(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		qs, inst := parallelFixture(t, seed, 25)
		var seqTr Trace
		if _, err := SCCCoordinate(qs, inst, Options{Trace: &seqTr}); err != nil {
			t.Fatal(err)
		}
		var parTr Trace
		if _, err := SCCCoordinate(qs, inst, Options{Trace: &parTr, Parallelism: 8}); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seqTr, parTr) {
			t.Fatalf("seed=%d: traces differ:\nseq %+v\npar %+v", seed, seqTr, parTr)
		}
	}
}

// TestParallelSelectorAndResult checks end-to-end SCCCoordinate
// equality under Parallelism, including a non-default selector.
func TestParallelSelectorAndResult(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		qs, inst := parallelFixture(t, seed, 20)
		for _, sel := range []Selector{nil, PreferQuery(3)} {
			seq, err := SCCCoordinate(qs, inst, Options{Select: sel})
			if err != nil {
				t.Fatal(err)
			}
			par, err := SCCCoordinate(qs, inst, Options{Select: sel, Parallelism: 4})
			if err != nil {
				t.Fatal(err)
			}
			if seq.Size() != par.Size() {
				t.Fatalf("seed=%d: results differ: seq %v par %v", seed, seq, par)
			}
			if seq != nil {
				if !reflect.DeepEqual(seq.Set, par.Set) {
					t.Fatalf("seed=%d: sets differ: seq %v par %v", seed, seq.Set, par.Set)
				}
				if err := Verify(qs, par.Set, par.Values, inst); err != nil {
					t.Fatalf("seed=%d: parallel result does not verify: %v", seed, err)
				}
			}
		}
	}
}

// TestParallelChain pins the degenerate case: a pure chain has zero
// component-level parallelism, and the scheduler must degrade to
// strictly sequential dispatch without deadlocking.
func TestParallelChain(t *testing.T) {
	inst := db.NewInstance()
	rel := inst.CreateRelation("T", "key", "val")
	rel.Insert(eq.Value("t0"), eq.Value("c0"))
	rel.BuildIndex(1)
	n := 40
	qs := make([]eq.Query, n)
	for i := 0; i < n; i++ {
		qs[i] = eq.Query{
			ID:   "u" + itoa(i),
			Head: []eq.Atom{eq.NewAtom("R", eq.C(eq.Value("U"+itoa(i))), eq.V("x"))},
			Body: []eq.Atom{eq.NewAtom("T", eq.V("x"), eq.C(eq.Value("c0")))},
		}
		if i+1 < n {
			qs[i].Post = []eq.Atom{eq.NewAtom("R", eq.C(eq.Value("U"+itoa(i+1))), eq.V("y"))}
		}
	}
	seq, err := SCCCoordinate(qs, inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := SCCCoordinate(qs, inst, Options{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Size() != n || par.Size() != n || !reflect.DeepEqual(seq.Set, par.Set) {
		t.Fatalf("chain: seq %v par %v", seq, par)
	}
}
