// Package coord implements the paper's coordination algorithms: the
// polynomial SCC Coordination Algorithm for safe query sets (§4-5),
// the Gupta et al. baseline for safe-and-unique sets, the
// single-connected solver of Theorem 3, and the exponential
// brute-force oracles used to cross-check them on small inputs.
//
// Every algorithm takes the database as a db.Store — a plain
// db.Instance, a hash-partitioned db.ShardedInstance, or any other
// implementation — and treats it purely as a conjunctive-query oracle.
// Algorithm control flow depends only on query outcomes
// (satisfiable/not, tuple found/not), which are identical across
// stores holding the same tuples, so the coordinating set (the team),
// the recorded Trace and the query count are store-independent; only
// the witnessing assignment may vary with the store's answer
// enumeration order (choose-1 semantics permit any witness, and
// Verify accepts all of them).
//
// # Metering contract
//
// Result.DBQueries is the paper's central cost metric: the number of
// conjunctive queries the run issued. Each entry point (SCCCoordinate,
// AllCandidates, GuptaCoordinate, SingleConnectedCoordinate, the
// BruteForce* oracles) wraps its store in a private db.Meter and
// counts on it, so the value is exact for that run alone even when
// many runs share one store concurrently (engine.CoordinateMany).
// Reading a delta of the store's aggregate counter — the pre-metering
// design — is wrong under concurrency and is not used anywhere.
//
// # Incremental coordination
//
// The batch entry points coordinate a finished set; Incremental is the
// resumable form for streaming traffic (internal/stream): queries Add
// and Remove one at a time, the extended graph is maintained
// incrementally (IncrementalGraph — the batch ExtendedGraph is its
// one-shot special case), and after each event only the condensation
// components whose reachable set changed are re-solved, with cached
// witnesses spliced for the rest. DeltaStats meters each event
// exactly; a quiesced Incremental matches a batch run over its live
// queries observationally (team, values, trace). Arrivals that would
// make the set unsafe are refused with ErrUnsafeArrival before any
// state changes, and Compact renumbers away tombstoned slots so
// long-lived streams stay O(live queries).
//
// The package's sentinel errors carry stable machine-readable codes
// (Code / FromCode, e.g. "unsafe_arrival", "too_many_queries") shared
// with the HTTP wire format, and Result, DeltaStats and Trace have
// canonical JSON encodings, so coordination outcomes — including the
// exact DBQueries cost — cross a network boundary unchanged
// (internal/api, internal/server, internal/client).
package coord
