package coord

import (
	"math/rand"
	"strconv"
	"testing"

	"entangled/internal/db"
	"entangled/internal/eq"
	"entangled/internal/workload"
)

// Coordination semantics are invariant under alpha renaming: renaming
// every query's variables must not change existence or size of the
// result.
func TestQuickAlphaRenamingInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(7)
		qs := workload.RandomSafeQueries(n, 5, 0.3, 0.7, rng)
		in := newWorkloadInstance(5)
		base, err := SCCCoordinate(qs, in, Options{})
		if err != nil {
			t.Fatal(err)
		}
		renamed := make([]eq.Query, len(qs))
		for i, q := range qs {
			renamed[i] = q.Rename("odd" + strconv.Itoa(rng.Intn(50)) + "_")
		}
		other, err := SCCCoordinate(renamed, in, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if base.Size() != other.Size() {
			t.Fatalf("trial %d: alpha renaming changed the result: %v vs %v", trial, base, other)
		}
		if other != nil {
			if err := Verify(renamed, other.Set, other.Values, in); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// Shuffling the order in which queries are submitted must not change
// existence or the size of the maximal candidate (the candidate family
// {R(q)} is order-independent).
func TestQuickPermutationInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(6)
		qs := workload.RandomSafeQueries(n, 5, 0.3, 0.7, rng)
		in := newWorkloadInstance(5)
		base, err := SCCCoordinate(qs, in, Options{})
		if err != nil {
			t.Fatal(err)
		}
		perm := rng.Perm(n)
		shuffled := make([]eq.Query, n)
		for i, p := range perm {
			shuffled[i] = qs[p]
		}
		other, err := SCCCoordinate(shuffled, in, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if base.Size() != other.Size() {
			t.Fatalf("trial %d: permutation changed the result size: %d vs %d", trial, base.Size(), other.Size())
		}
	}
}

// Coordinating sets are monotone in the database: inserting extra
// tuples can only create coordinating sets, never destroy them
// (Definition 1 is purely existential over the instance).
func TestQuickDatabaseMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(7)
		qs := workload.RandomSafeQueries(n, 5, 0.3, 0.6, rng)
		in := newWorkloadInstance(5)
		before, err := SCCCoordinate(qs, in, Options{})
		if err != nil {
			t.Fatal(err)
		}
		// Insert tuples, including some that complete missing bodies.
		tbl, _ := in.Relation("T")
		for k := 0; k < 1+rng.Intn(4); k++ {
			if rng.Intn(2) == 0 {
				tbl.Insert(eq.Value("extra"+strconv.Itoa(k)), eq.Value("missing"+strconv.Itoa(rng.Intn(n))))
			} else {
				tbl.Insert(eq.Value("extra"+strconv.Itoa(k)), eq.Value("c"+strconv.Itoa(rng.Intn(5))))
			}
		}
		after, err := SCCCoordinate(qs, in, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if before != nil && after == nil {
			t.Fatalf("trial %d: inserting tuples destroyed the coordinating set", trial)
		}
		if before != nil && after.Size() < before.Size() {
			t.Fatalf("trial %d: inserting tuples shrank the best candidate: %d -> %d", trial, before.Size(), after.Size())
		}
	}
}

// The candidate family really is {R(q)}: every candidate the algorithm
// grounds must be closed under reachability in the coordination graph.
func TestCandidatesAreReachableSets(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(6)
		qs := workload.RandomSafeQueries(n, 5, 0.4, 1.0, rng)
		in := newWorkloadInstance(5)
		tr := &Trace{}
		if _, err := SCCCoordinate(qs, in, Options{Trace: tr}); err != nil {
			t.Fatal(err)
		}
		g := CoordinationGraph(qs)
		for _, ev := range tr.Components {
			if ev.Status != "grounded" {
				continue
			}
			inSet := map[int]bool{}
			for _, q := range ev.Set {
				inSet[q] = true
			}
			for _, q := range ev.Set {
				reach := g.Reachable(q)
				for v, r := range reach {
					if r && !inSet[v] {
						t.Fatalf("trial %d: candidate %v not closed under reachability (%d reaches %d)", trial, ev.Set, q, v)
					}
				}
			}
		}
	}
}

// An empty database never coordinates queries with non-empty bodies,
// and queries with empty bodies and ground atoms coordinate over any
// instance with a matching head structure.
func TestEdgeInstances(t *testing.T) {
	in := db.NewInstance()
	in.CreateRelation("T", "key", "val")
	qs := workload.ListQueries(3, 5)
	res, err := SCCCoordinate(qs, in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res != nil {
		t.Fatalf("empty table: want nil, got %v", res)
	}

	// Fully ground query with an empty body coordinates even over an
	// empty database.
	ground := eq.MustParseSet(`query g { head: R(A, B) }`)
	res, err = SCCCoordinate(ground, db.NewInstance(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Size() != 1 {
		t.Fatalf("ground query must coordinate: %v", res)
	}
	if err := Verify(ground, res.Set, res.Values, db.NewInstance()); err != nil {
		t.Fatal(err)
	}
}

// The incremental-unification mode (§6.1's described implementation)
// must agree exactly with the recompute-from-scratch mode.
func TestQuickIncrementalUnifyAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(105))
	for trial := 0; trial < 80; trial++ {
		n := 1 + rng.Intn(8)
		qs := workload.RandomSafeQueries(n, 5, 0.35, 0.7, rng)
		in := newWorkloadInstance(5)
		a, err := SCCCoordinate(qs, in, Options{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := SCCCoordinate(qs, in, Options{IncrementalUnify: true})
		if err != nil {
			t.Fatal(err)
		}
		if (a == nil) != (b == nil) {
			t.Fatalf("trial %d: existence mismatch", trial)
		}
		if a == nil {
			continue
		}
		if a.Size() != b.Size() {
			t.Fatalf("trial %d: sizes differ: %v vs %v", trial, a.Set, b.Set)
		}
		for i := range a.Set {
			if a.Set[i] != b.Set[i] {
				t.Fatalf("trial %d: sets differ: %v vs %v", trial, a.Set, b.Set)
			}
		}
		if err := Verify(qs, b.Set, b.Values, in); err != nil {
			t.Fatalf("trial %d: incremental result fails verification: %v", trial, err)
		}
	}
}
