package coord

import (
	"strings"
	"testing"

	"entangled/internal/db"
	"entangled/internal/eq"
)

func TestTraceFlightHotel(t *testing.T) {
	qs, in := flightHotel()
	tr := &Trace{}
	res, err := SCCCoordinate(qs, in, Options{Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	if res.Size() != 2 {
		t.Fatalf("res = %v", res)
	}
	if len(tr.Pruned) != 0 {
		t.Fatalf("nothing prunes here: %v", tr.Pruned)
	}
	if len(tr.Components) != 3 {
		t.Fatalf("three components: %v", tr.Components)
	}
	// Reverse topological order: {qC,qG} first, then qJ, then qW.
	if len(tr.Components[0].Members) != 2 || tr.Components[0].Status != "grounded" {
		t.Fatalf("component 0: %+v", tr.Components[0])
	}
	if tr.Components[1].Status != "no tuple" {
		t.Fatalf("qJ should fail to ground: %+v", tr.Components[1])
	}
	if tr.Components[2].Status != "successor failed" {
		t.Fatalf("qW should be skipped: %+v", tr.Components[2])
	}
	// The grounded component's combined query mentions both bodies.
	if !strings.Contains(tr.Components[0].Combined, "F(") || !strings.Contains(tr.Components[0].Combined, "H(") {
		t.Fatalf("combined = %q", tr.Components[0].Combined)
	}
}

func TestTracePruneEvents(t *testing.T) {
	qs := eq.MustParseSet(`
query a {
  post: R(UB, x)
  head: R(UA, x)
  body: T(x)
}
query b {
  head: R(UB, y)
  body: Missing(y)
}`)
	in := db.NewInstance()
	tr1 := in.CreateRelation("T", "v")
	tr1.Insert("1")
	in.CreateRelation("Missing", "v")
	tr := &Trace{}
	res, err := SCCCoordinate(qs, in, Options{Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	if res != nil {
		t.Fatalf("nothing coordinates: %v", res)
	}
	if len(tr.Pruned) != 2 {
		t.Fatalf("b's body prunes, then a's postcondition cascades: %v", tr.Pruned)
	}
	if tr.Pruned[0].Reason != "unsatisfiable body" || tr.Pruned[1].Reason != "unsatisfiable postcondition" {
		t.Fatalf("prune reasons: %v", tr.Pruned)
	}
}

func TestTraceRender(t *testing.T) {
	qs, in := flightHotel()
	tr := &Trace{}
	if _, err := SCCCoordinate(qs, in, Options{Trace: tr}); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := tr.Render(&sb, qs); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"qC", "qG", "grounded", "no tuple", "successor failed"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTracedRunMatchesPlain(t *testing.T) {
	qs, in := flightHotel()
	plain, err := SCCCoordinate(qs, in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	traced, err := SCCCoordinate(qs, in, Options{Trace: &Trace{}})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Size() != traced.Size() {
		t.Fatalf("trace must not change the result: %v vs %v", plain, traced)
	}
}
