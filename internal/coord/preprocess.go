package coord

import (
	"entangled/internal/eq"
	"entangled/internal/graph"
)

// PreprocessStats summarises the graph-building phase of the SCC
// Coordination Algorithm, isolated from database work. Figure 6 of the
// paper stress-tests exactly this phase.
type PreprocessStats struct {
	Queries       int
	ExtendedEdges int
	Edges         int // coordination-graph edges after collapsing
	Components    int // strongly connected components
	TopoOrder     []int
}

// Preprocess runs graph construction and preprocessing only: build the
// extended coordination graph, collapse it, condense into strongly
// connected components, and compute the processing order. No database
// queries are issued.
func Preprocess(qs []eq.Query) PreprocessStats {
	edges := ExtendedGraph(qs)
	g := coordinationGraph(len(qs), edges)
	dag, _, members := g.Condense()
	order, err := dag.TopoOrder()
	if err != nil {
		// Unreachable: a condensation is always a DAG.
		panic(err)
	}
	_ = members
	return PreprocessStats{
		Queries:       len(qs),
		ExtendedEdges: len(edges),
		Edges:         g.M(),
		Components:    dag.N(),
		TopoOrder:     order,
	}
}

// ComponentsOf exposes the condensation of a query set's coordination
// graph: the component DAG and each component's member queries.
func ComponentsOf(qs []eq.Query) (dag *graph.Digraph, members [][]int) {
	g := CoordinationGraph(qs)
	dag, _, members = g.Condense()
	return dag, members
}
