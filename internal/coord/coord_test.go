package coord

import (
	"errors"
	"testing"

	"entangled/internal/db"
	"entangled/internal/eq"
)

// zurichInstance builds the §2.1 example database.
func zurichInstance() *db.Instance {
	in := db.NewInstance()
	f := in.CreateRelation("Flights", "fid", "dest")
	f.Insert("101", "Zurich")
	f.Insert("102", "Paris")
	return in
}

// gwynethChris returns the two queries of §2.1: Gwyneth wants to fly
// with Chris to Zurich; Chris just wants a Zurich flight.
func gwynethChris() []eq.Query {
	return eq.MustParseSet(`
query gwyneth {
  post: R(Chris, x)
  head: R(Gwyneth, x)
  body: Flights(x, Zurich)
}
query chris {
  head: R(Chris, y)
  body: Flights(y, Zurich)
}`)
}

// flightHotel builds the §2.2 flight-hotel example: the Figure 1 query
// set and a database with flights and hotels. Paris is fully served;
// Athens has a hotel but its flight is distinct from the Paris flight,
// so qJ (who wants to share Chris's flight but fly to Athens) cannot
// coordinate, and neither can qW who depends on qJ's hotel.
func flightHotel() ([]eq.Query, *db.Instance) {
	qs := eq.MustParseSet(`
query qC {
  post: R(G, x1)
  head: R(C, x1), Q(C, x2)
  body: F(x1, x), H(x2, x)
}
query qG {
  post: R(C, y1), Q(C, y2)
  head: R(G, y1), Q(G, y2)
  body: F(y1, Paris), H(y2, Paris)
}
query qJ {
  post: R(C, z1), R(G, z1)
  head: R(J, z1), Q(J, z2)
  body: F(z1, Athens), H(z2, Athens)
}
query qW {
  post: R(C, w1), Q(J, w2)
  head: R(W, w1), Q(W, w2)
  body: F(w1, Madrid), H(w2, Madrid)
}`)
	in := db.NewInstance()
	f := in.CreateRelation("F", "fid", "dest")
	f.Insert("70", "Paris")
	f.Insert("71", "Athens")
	f.Insert("72", "Madrid")
	h := in.CreateRelation("H", "hid", "loc")
	h.Insert("h1", "Paris")
	h.Insert("h2", "Athens")
	h.Insert("h3", "Madrid")
	return qs, in
}

func TestExtendedGraphFlightHotel(t *testing.T) {
	qs, _ := flightHotel()
	edges := ExtendedGraph(qs)
	// Figure 2 shows exactly 7 extended edges.
	if len(edges) != 7 {
		t.Fatalf("extended edges = %d, want 7: %v", len(edges), edges)
	}
	g := coordinationGraph(len(qs), edges)
	// Figure in §2.3: qC->qG, qG->qC, qJ->qC, qJ->qG, qW->qC, qW->qJ.
	want := [][2]int{{0, 1}, {1, 0}, {2, 0}, {2, 1}, {3, 0}, {3, 2}}
	got := g.Edges()
	if len(got) != len(want) {
		t.Fatalf("coordination graph edges = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("coordination graph edges = %v, want %v", got, want)
		}
	}
}

func TestSafetyFlightHotel(t *testing.T) {
	qs, _ := flightHotel()
	if !IsSafe(qs) {
		t.Fatal("Figure 1 set is safe")
	}
	if IsUnique(qs) {
		t.Fatal("Figure 1 set is not unique (qW is reachable from nobody)")
	}
}

func TestUnsafeDetection(t *testing.T) {
	// Example 1: Gwyneth also wants to fly with Chris, making two heads
	// that Coldplay-member posts unify with? Simpler: two queries both
	// answering for Chris make any post naming Chris unsafe.
	qs := eq.MustParseSet(`
query band {
  post: R(Chris, x)
  head: R(Guy, x)
  body: Flights(x, Zurich)
}
query chris1 {
  head: R(Chris, y)
  body: Flights(y, Zurich)
}
query chris2 {
  head: R(Chris, z)
  body: Flights(z, Zurich)
}`)
	unsafe := UnsafeQueries(qs)
	if len(unsafe) != 1 || unsafe[0] != 0 {
		t.Fatalf("UnsafeQueries = %v, want [0]", unsafe)
	}
	if _, err := SCCCoordinate(qs, zurichInstance(), Options{}); !errors.Is(err, ErrUnsafe) {
		t.Fatalf("want ErrUnsafe, got %v", err)
	}
}

func TestSCCGwynethChris(t *testing.T) {
	qs := gwynethChris()
	in := zurichInstance()
	res, err := SCCCoordinate(qs, in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Size() != 2 {
		t.Fatalf("want both queries, got %v", res)
	}
	if err := Verify(qs, res.Set, res.Values, in); err != nil {
		t.Fatal(err)
	}
	// Choose-1: Gwyneth and Chris share the same flight.
	if res.Values[0]["x"] != res.Values[1]["y"] {
		t.Fatalf("must share a flight: %v", res.Values)
	}
	if res.Values[0]["x"] != "101" {
		t.Fatalf("only flight 101 goes to Zurich: %v", res.Values)
	}
}

func TestSCCGwynethChrisNoFlight(t *testing.T) {
	qs := gwynethChris()
	in := db.NewInstance()
	f := in.CreateRelation("Flights", "fid", "dest")
	f.Insert("102", "Paris")
	res, err := SCCCoordinate(qs, in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res != nil {
		t.Fatalf("no Zurich flight: want nil, got %v", res)
	}
}

func TestSCCFlightHotel(t *testing.T) {
	qs, in := flightHotel()
	res, err := SCCCoordinate(qs, in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Size() != 2 {
		t.Fatalf("want {qC, qG}, got %v", res)
	}
	if res.Set[0] != 0 || res.Set[1] != 1 {
		t.Fatalf("want queries 0 and 1, got %v", res.Set)
	}
	if err := Verify(qs, res.Set, res.Values, in); err != nil {
		t.Fatal(err)
	}
	// Chris and Guy share flight 70 to Paris and hotel h1.
	if res.Values[0]["x1"] != "70" || res.Values[1]["y1"] != "70" {
		t.Fatalf("flight values: %v", res.Values)
	}
	if res.Values[0]["x2"] != "h1" || res.Values[1]["y2"] != "h1" {
		t.Fatalf("hotel values: %v", res.Values)
	}
}

func TestSCCFlightHotelJonnyJoinsWhenPossible(t *testing.T) {
	// If Jonny also wants Paris (and shares Chris's flight), the set
	// {qC, qG, qJ} coordinates; qW still fails because no Madrid hotel
	// requirement conflicts — give Will a Madrid flight and Jonny's
	// hotel, which is in Paris, not Madrid... qW requires H(w2, Madrid)
	// yet also Q(J, w2): Jonny's hotel is in Paris, so qW fails.
	qs := eq.MustParseSet(`
query qC {
  post: R(G, x1)
  head: R(C, x1), Q(C, x2)
  body: F(x1, x), H(x2, x)
}
query qG {
  post: R(C, y1), Q(C, y2)
  head: R(G, y1), Q(G, y2)
  body: F(y1, Paris), H(y2, Paris)
}
query qJ {
  post: R(C, z1), R(G, z1)
  head: R(J, z1), Q(J, z2)
  body: F(z1, Paris), H(z2, Paris)
}
query qW {
  post: R(C, w1), Q(J, w2)
  head: R(W, w1), Q(W, w2)
  body: F(w1, Madrid), H(w2, Madrid)
}`)
	in := db.NewInstance()
	f := in.CreateRelation("F", "fid", "dest")
	f.Insert("70", "Paris")
	f.Insert("72", "Madrid")
	h := in.CreateRelation("H", "hid", "loc")
	h.Insert("h1", "Paris")
	h.Insert("h3", "Madrid")
	res, err := SCCCoordinate(qs, in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Size() != 3 {
		t.Fatalf("want {qC, qG, qJ}, got %v", res)
	}
	if err := Verify(qs, res.Set, res.Values, in); err != nil {
		t.Fatal(err)
	}
}

func TestSCCCandidateStructure(t *testing.T) {
	// The components-graph example of §4: q3+q4 -> q1+q2 <- q5+q6.
	// All unifications and groundings succeed, so the discovered
	// candidates are {q1,q2}, {q1,q2,q3,q4}, {q1,q2,q5,q6}; the winner
	// has size 4.
	qs := eq.MustParseSet(`
query q1 {
  post: R(U2, a)
  head: R(U1, a)
  body: T(a)
}
query q2 {
  post: R(U1, b)
  head: R(U2, b)
  body: T(b)
}
query q3 {
  post: R(U4, c), R(U1, c2)
  head: R(U3, c)
  body: T(c), T(c2)
}
query q4 {
  post: R(U3, d)
  head: R(U4, d)
  body: T(d)
}
query q5 {
  post: R(U6, e), R(U2, e2)
  head: R(U5, e)
  body: T(e), T(e2)
}
query q6 {
  post: R(U5, f)
  head: R(U6, f)
  body: T(f)
}`)
	in := db.NewInstance()
	tr := in.CreateRelation("T", "v")
	tr.Insert("1")
	res, err := SCCCoordinate(qs, in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Size() != 4 {
		t.Fatalf("want a 4-query set, got %v", res)
	}
	if err := Verify(qs, res.Set, res.Values, in); err != nil {
		t.Fatal(err)
	}
	// The union {q1..q6} may also coordinate, but the algorithm only
	// considers sets of the form R(q); brute force finds the bigger one.
	bf, err := BruteForceMax(qs, in)
	if err != nil {
		t.Fatal(err)
	}
	if bf.Size() != 6 {
		t.Fatalf("brute force should find all 6, got %v", bf)
	}
	if err := Verify(qs, bf.Set, bf.Values, in); err != nil {
		t.Fatal(err)
	}
}

func TestSCCPreferQuerySelector(t *testing.T) {
	// Same structure as above: preferring q5 (index 4) switches the
	// winner to {q1,q2,q5,q6}.
	qs := eq.MustParseSet(`
query q1 {
  post: R(U2, a)
  head: R(U1, a)
  body: T(a)
}
query q2 {
  post: R(U1, b)
  head: R(U2, b)
  body: T(b)
}
query q3 {
  post: R(U4, c), R(U1, c2)
  head: R(U3, c)
  body: T(c), T(c2)
}
query q4 {
  post: R(U3, d)
  head: R(U4, d)
  body: T(d)
}
query q5 {
  post: R(U6, e), R(U2, e2)
  head: R(U5, e)
  body: T(e), T(e2)
}
query q6 {
  post: R(U5, f)
  head: R(U6, f)
  body: T(f)
}`)
	in := db.NewInstance()
	tr := in.CreateRelation("T", "v")
	tr.Insert("1")
	res, err := SCCCoordinate(qs, in, Options{Select: PreferQuery(4)})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, i := range res.Set {
		if i == 4 {
			found = true
		}
	}
	if !found {
		t.Fatalf("selector must include q5: %v", res.Set)
	}
	if res.Size() != 4 {
		t.Fatalf("still a 4-query set: %v", res)
	}
}

func TestSCCPruningCascade(t *testing.T) {
	// A chain where the tail's body is unsatisfiable: everything that
	// transitively depends on it must be pruned, leaving only the free
	// tail-less query.
	qs := eq.MustParseSet(`
query a {
  post: R(UB, x)
  head: R(UA, x)
  body: T(x)
}
query b {
  post: R(UC, y)
  head: R(UB, y)
  body: T(y)
}
query c {
  head: R(UC, z)
  body: Missing(z)
}
query d {
  head: R(UD, w)
  body: T(w)
}`)
	in := db.NewInstance()
	tr := in.CreateRelation("T", "v")
	tr.Insert("1")
	in.CreateRelation("Missing", "v") // empty: c's body cannot ground
	res, err := SCCCoordinate(qs, in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Size() != 1 || res.Set[0] != 3 {
		t.Fatalf("only query d coordinates, got %v", res)
	}
	if err := Verify(qs, res.Set, res.Values, in); err != nil {
		t.Fatal(err)
	}
}

func TestSCCSkipPruningSameAnswer(t *testing.T) {
	qs, in := flightHotel()
	a, err := SCCCoordinate(qs, in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SCCCoordinate(qs, in, Options{SkipPruning: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.Size() != b.Size() {
		t.Fatalf("pruning must not change the result size: %d vs %d", a.Size(), b.Size())
	}
	for i := range a.Set {
		if a.Set[i] != b.Set[i] {
			t.Fatalf("sets differ: %v vs %v", a.Set, b.Set)
		}
	}
}

func TestSCCEmptyInput(t *testing.T) {
	res, err := SCCCoordinate(nil, db.NewInstance(), Options{})
	if err != nil || res != nil {
		t.Fatalf("empty input: res=%v err=%v", res, err)
	}
}

func TestSCCSelfSatisfyingQuery(t *testing.T) {
	// A query whose post unifies with its own head coordinates alone.
	qs := eq.MustParseSet(`
query selfie {
  post: R(Me, x)
  head: R(Me, y)
  body: T(x), T(y)
}`)
	in := db.NewInstance()
	tr := in.CreateRelation("T", "v")
	tr.Insert("7")
	res, err := SCCCoordinate(qs, in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Size() != 1 {
		t.Fatalf("self-satisfying query must coordinate: %v", res)
	}
	if err := Verify(qs, res.Set, res.Values, in); err != nil {
		t.Fatal(err)
	}
	if res.Values[0]["x"] != res.Values[0]["y"] {
		t.Fatalf("x and y must be unified: %v", res.Values)
	}
}

func TestGuptaRequiresUniqueness(t *testing.T) {
	qs, in := flightHotel()
	if _, err := GuptaCoordinate(qs, in); !errors.Is(err, ErrNotUnique) {
		t.Fatalf("want ErrNotUnique, got %v", err)
	}
}

func TestGuptaOnUniqueSet(t *testing.T) {
	// A 2-cycle is safe and unique.
	qs := eq.MustParseSet(`
query p {
  post: R(UQ, a)
  head: R(UP, a)
  body: T(a)
}
query q {
  post: R(UP, b)
  head: R(UQ, b)
  body: T(b)
}`)
	in := db.NewInstance()
	tr := in.CreateRelation("T", "v")
	tr.Insert("1")
	if !IsSafe(qs) || !IsUnique(qs) {
		t.Fatal("2-cycle must be safe and unique")
	}
	g, err := GuptaCoordinate(qs, in)
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != 2 {
		t.Fatalf("Gupta should coordinate both: %v", g)
	}
	if err := Verify(qs, g.Set, g.Values, in); err != nil {
		t.Fatal(err)
	}
	s, err := SCCCoordinate(qs, in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Size() != g.Size() {
		t.Fatalf("SCC and Gupta disagree: %v vs %v", s, g)
	}
}

func TestVerifyRejectsBadSets(t *testing.T) {
	qs := gwynethChris()
	in := zurichInstance()
	res, err := SCCCoordinate(qs, in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Empty set.
	if err := Verify(qs, nil, res.Values, in); err == nil {
		t.Fatal("empty set must fail")
	}
	// Unassigned variable.
	bad := map[int]map[string]eq.Value{0: {}, 1: {}}
	if err := Verify(qs, res.Set, bad, in); err == nil {
		t.Fatal("unassigned variables must fail")
	}
	// Body atom not in the instance.
	bad2 := map[int]map[string]eq.Value{
		0: {"x": "999"},
		1: {"y": "999"},
	}
	if err := Verify(qs, res.Set, bad2, in); err == nil {
		t.Fatal("grounded body must be present")
	}
	// Post not among heads: drop Chris from the set.
	if err := Verify(qs, []int{0}, res.Values, in); err == nil {
		t.Fatal("Gwyneth alone leaves her postcondition unsatisfied")
	}
	// Duplicate members.
	if err := Verify(qs, []int{0, 0}, res.Values, in); err == nil {
		t.Fatal("duplicate members must fail")
	}
	// Out-of-range member.
	if err := Verify(qs, []int{0, 9}, res.Values, in); err == nil {
		t.Fatal("out-of-range member must fail")
	}
}

func TestDBQueriesCounted(t *testing.T) {
	qs, in := flightHotel()
	res, err := SCCCoordinate(qs, in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// 4 pruning checks + 2 component queries ({qC,qG} succeeds, {qJ}
	// fails, {qW} is skipped because its successor failed).
	if res.DBQueries != 6 {
		t.Fatalf("DBQueries = %d, want 6", res.DBQueries)
	}
}

func TestAllCandidates(t *testing.T) {
	// The §4 components-graph structure: candidates are {q1,q2},
	// {q1,q2,q3,q4}, {q1,q2,q5,q6}, sorted largest first.
	qs := eq.MustParseSet(`
query q1 { post: R(U2, a) head: R(U1, a) body: T(a) }
query q2 { post: R(U1, b) head: R(U2, b) body: T(b) }
query q3 { post: R(U4, c), R(U1, c2) head: R(U3, c) body: T(c), T(c2) }
query q4 { post: R(U3, d) head: R(U4, d) body: T(d) }
query q5 { post: R(U6, e), R(U2, e2) head: R(U5, e) body: T(e), T(e2) }
query q6 { post: R(U5, f) head: R(U6, f) body: T(f) }`)
	in := db.NewInstance()
	tr := in.CreateRelation("T", "v")
	tr.Insert("1")
	cands, err := AllCandidates(qs, in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 3 {
		t.Fatalf("want 3 candidates, got %d: %v", len(cands), cands)
	}
	if len(cands[0].Set) != 4 || len(cands[1].Set) != 4 || len(cands[2].Set) != 2 {
		t.Fatalf("sizes: %d %d %d", len(cands[0].Set), len(cands[1].Set), len(cands[2].Set))
	}
	// Every candidate verifies against Definition 1.
	for _, c := range cands {
		if err := Verify(qs, c.Set, c.Values, in); err != nil {
			t.Fatalf("candidate %v: %v", c.Set, err)
		}
	}
}

func TestAllCandidatesEmpty(t *testing.T) {
	in := db.NewInstance()
	in.CreateRelation("T", "v") // empty
	qs := eq.MustParseSet(`query a { head: R(U0, x) body: T(x) }`)
	cands, err := AllCandidates(qs, in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 0 {
		t.Fatalf("no candidates over an empty table: %v", cands)
	}
}

func TestGuptaNoProviderReturnsNil(t *testing.T) {
	// Strongly connected pair, but one post names a user nobody answers
	// for: uniqueness's precondition (every post providable) fails and
	// the baseline reports "no coordinating set".
	qs := eq.MustParseSet(`
query p { post: R(UQ, a), R(UZ, a2) head: R(UP, a) body: T(a) }
query q { post: R(UP, b) head: R(UQ, b) body: T(b) }`)
	in := db.NewInstance()
	tr := in.CreateRelation("T", "v")
	tr.Insert("1")
	// The set is not even unique by the coordination graph? p->q (via
	// UQ), q->p (via UP); the UZ post has no edge, so the graph is still
	// strongly connected. GuptaCoordinate must detect the hopeless post.
	res, err := GuptaCoordinate(qs, in)
	if err != nil {
		t.Fatal(err)
	}
	if res != nil {
		t.Fatalf("unprovidable post: want nil, got %v", res)
	}
}

func TestGuptaUnificationClash(t *testing.T) {
	// The edge exists positionally (§2.3's definition only compares
	// constants per position) but the MGU fails: q's head repeats the
	// variable b, and p's post forces b to be both A and B.
	qs := eq.MustParseSet(`
query p { post: R(UQ, A, B) head: R(UP, u, v) body: T(u) }
query q { post: R(UP, c, d) head: R(UQ, b, b) body: T(b) }`)
	in := db.NewInstance()
	tr := in.CreateRelation("T", "v")
	tr.Insert("1")
	res, err := GuptaCoordinate(qs, in)
	if err != nil {
		t.Fatal(err)
	}
	if res != nil {
		t.Fatalf("constant clash: want nil, got %v", res)
	}
	// The SCC algorithm agrees: the 2-cycle is one component and its
	// unification fails, so nothing coordinates.
	res, err = SCCCoordinate(qs, in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res != nil {
		t.Fatalf("SCC should agree: %v", res)
	}
}

func TestGuptaGroundingFailure(t *testing.T) {
	qs := eq.MustParseSet(`
query p { post: R(UQ, a) head: R(UP, a) body: T(a) }
query q { post: R(UP, b) head: R(UQ, b) body: Missing(b) }`)
	in := db.NewInstance()
	tr := in.CreateRelation("T", "v")
	tr.Insert("1")
	in.CreateRelation("Missing", "v")
	res, err := GuptaCoordinate(qs, in)
	if err != nil {
		t.Fatal(err)
	}
	if res != nil {
		t.Fatalf("empty Missing: want nil, got %v", res)
	}
}

func TestGuptaEmptyInput(t *testing.T) {
	res, err := GuptaCoordinate(nil, db.NewInstance())
	if err != nil || res != nil {
		t.Fatalf("empty input: %v %v", res, err)
	}
}

func TestSingleConnectedNoSolution(t *testing.T) {
	qs := eq.MustParseSet(`
query a { post: R(UB, x) head: R(UA, x) body: Missing(x) }
query b { head: R(UB, y) body: Missing(y) }`)
	in := db.NewInstance()
	in.CreateRelation("Missing", "v")
	res, err := SingleConnectedCoordinate(qs, in)
	if err != nil {
		t.Fatal(err)
	}
	if res != nil {
		t.Fatalf("nothing satisfiable: %v", res)
	}
}
