package coord

import (
	"fmt"
	"sort"
	"strings"

	"entangled/internal/db"
	"entangled/internal/eq"
	"entangled/internal/unify"
)

// Result is a coordinating set together with the witnessing assignment.
type Result struct {
	// Set holds the indices (into the input query slice) of the queries
	// in the coordinating set, sorted ascending.
	Set []int
	// Values maps each query index in Set to an assignment of that
	// query's original variable names to database values. Every variable
	// of every query in the set is assigned (Definition 1, condition 1).
	Values map[int]map[string]eq.Value
	// DBQueries is the number of conjunctive queries issued while
	// computing this result — the paper's central cost metric. Every
	// algorithm counts on a private per-run db.Meter, so the value is
	// exact for this run alone even when the underlying store is shared
	// with concurrent requests (engine.CoordinateMany).
	DBQueries int64
}

// IDs returns the query identifiers of the coordinating set.
func (r *Result) IDs(qs []eq.Query) []string {
	out := make([]string, len(r.Set))
	for i, qi := range r.Set {
		out[i] = qs[qi].ID
	}
	return out
}

// String renders the result compactly for logs and examples.
func (r *Result) String() string {
	if r == nil {
		return "<no coordinating set>"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "coordinating set of %d queries %v", len(r.Set), r.Set)
	return sb.String()
}

// Size returns the number of queries in the set (0 for nil).
func (r *Result) Size() int {
	if r == nil {
		return 0
	}
	return len(r.Set)
}

// Verify checks that (set, values) is a coordinating set for qs over
// inst, per Definition 1 of the paper:
//
//  1. every variable of every query in the set is assigned;
//  2. the grounded version of every body atom appears in the instance;
//  3. the grounded postcondition atoms form a subset of the grounded
//     head atoms of the set.
//
// It returns nil when all three conditions hold.
func Verify(qs []eq.Query, set []int, values map[int]map[string]eq.Value, store db.Store) error {
	if len(set) == 0 {
		return fmt.Errorf("coord: coordinating set must be non-empty")
	}
	inSet := map[int]bool{}
	for _, i := range set {
		if i < 0 || i >= len(qs) {
			return fmt.Errorf("coord: set member %d out of range", i)
		}
		if inSet[i] {
			return fmt.Errorf("coord: duplicate set member %d", i)
		}
		inSet[i] = true
	}

	ground := func(qi int, a eq.Atom) (eq.Atom, error) {
		out := a.Clone()
		for k, t := range out.Args {
			if !t.IsVar() {
				continue
			}
			v, ok := values[qi][t.Name]
			if !ok {
				return out, fmt.Errorf("coord: query %d variable %s unassigned", qi, t.Name)
			}
			out.Args[k] = eq.C(v)
		}
		return out, nil
	}

	headSet := map[string]bool{}
	type postAtom struct {
		qi int
		a  eq.Atom
	}
	var posts []postAtom
	for _, qi := range set {
		q := qs[qi]
		// Condition 1 for variables that appear anywhere in the query.
		for _, v := range q.Vars() {
			if _, ok := values[qi][v]; !ok {
				return fmt.Errorf("coord: query %d (%s) variable %s unassigned", qi, q.ID, v)
			}
		}
		// Condition 2: grounded bodies present in the instance.
		for _, b := range q.Body {
			g, err := ground(qi, b)
			if err != nil {
				return err
			}
			if !store.Contains(g) {
				return fmt.Errorf("coord: query %d (%s): grounded body atom %s not in database", qi, q.ID, g)
			}
		}
		for _, h := range q.Head {
			g, err := ground(qi, h)
			if err != nil {
				return err
			}
			headSet[g.String()] = true
		}
		for _, p := range q.Post {
			g, err := ground(qi, p)
			if err != nil {
				return err
			}
			posts = append(posts, postAtom{qi, g})
		}
	}
	// Condition 3: grounded posts ⊆ grounded heads.
	for _, p := range posts {
		if !headSet[p.a.String()] {
			return fmt.Errorf("coord: query %d (%s): grounded postcondition %s not among grounded heads", p.qi, qs[p.qi].ID, p.a)
		}
	}
	return nil
}

// extractValues converts the algorithm-internal state (renamed queries,
// accumulated MGU, database binding) back into per-query assignments of
// the original variable names. Variables left unconstrained by both the
// unifier and the database are assigned fallback (Definition 1 only
// requires that some value be assigned; any domain value works since
// such variables occur in no body atom and their post/head occurrences
// were equalised by unification).
func extractValues(qs []eq.Query, set []int, s *unify.Subst, bind db.Binding, fallback eq.Value) map[int]map[string]eq.Value {
	values := map[int]map[string]eq.Value{}
	for _, qi := range set {
		m := map[string]eq.Value{}
		for _, v := range qs[qi].Vars() {
			renamed := varPrefix(qi) + v
			t := s.Resolve(eq.V(renamed))
			if !t.IsVar() {
				m[v] = t.Const()
				continue
			}
			if val, ok := bind[t.Name]; ok {
				m[v] = val
				continue
			}
			m[v] = fallback
		}
		values[qi] = m
	}
	return values
}

// sortedCopy returns a sorted copy of xs.
func sortedCopy(xs []int) []int {
	out := append([]int(nil), xs...)
	sort.Ints(out)
	return out
}
