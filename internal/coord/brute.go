package coord

import (
	"errors"
	"fmt"

	"entangled/internal/db"
	"entangled/internal/eq"
	"entangled/internal/unify"
)

// MaxBruteQueries bounds the brute-force oracles: subset enumeration is
// exponential, and the 2^20 ceiling keeps a worst-case run within a
// testing-oracle budget.
const MaxBruteQueries = 20

// ErrTooManyQueries is returned by the brute-force oracles when the
// query set exceeds MaxBruteQueries. Callers should fall back to the
// polynomial SCC algorithm (for safe sets) or shrink the input.
var ErrTooManyQueries = errors.New("coord: brute force limited to " +
	fmt.Sprint(MaxBruteQueries) + " queries")

// BruteForceExists decides Entangled(Q): does any non-empty coordinating
// subset of qs exist over inst? Exponential; intended as a testing
// oracle on small instances (the hardness reductions of §3). Query sets
// larger than MaxBruteQueries yield ErrTooManyQueries.
func BruteForceExists(qs []eq.Query, store db.Store) (bool, error) {
	r, err := bruteForce(qs, store, true)
	if err != nil {
		return false, err
	}
	return r != nil, nil
}

// BruteForceMax solves EntangledMax(Q) exactly: it returns a coordinating
// set of maximum size (with witnessing assignment), or nil when no
// coordinating set exists. Exponential in |qs|; use only on small
// instances. Query sets larger than MaxBruteQueries yield
// ErrTooManyQueries.
func BruteForceMax(qs []eq.Query, store db.Store) (*Result, error) {
	return bruteForce(qs, store, false)
}

// bruteForce enumerates subsets grouped by size — descending for the
// maximisation problem (first hit is a maximum set), ascending for the
// existence problem (small sets are cheaper to refute or confirm).
func bruteForce(qs []eq.Query, store db.Store, smallestFirst bool) (*Result, error) {
	n := len(qs)
	if n == 0 {
		return nil, nil
	}
	if n > MaxBruteQueries {
		return nil, fmt.Errorf("%w (got %d)", ErrTooManyQueries, n)
	}
	meter := db.NewMeter(store)
	renamed := renameAll(qs)
	providers := providerEdges(qs)

	masks := masksBySize(n)
	sizes := sizeOrder(n, smallestFirst)
	for _, size := range sizes {
		for _, m := range masks[size] {
			set := maskSet(m)
			s, bind, ok, err := trySubset(renamed, set, providers, meter)
			if err != nil {
				return nil, err
			}
			if ok {
				return finishResult(qs, set, s, bind, meter)
			}
		}
	}
	return nil, nil
}

// trySubset decides whether the given subset coordinates: it searches
// over the choice of provider head for every postcondition (all heads
// must come from within the subset), accumulating the unifier, then
// grounds the combined body.
func trySubset(renamed []eq.Query, set []int, providers map[[2]int][]ExtendedEdge, store db.Store) (*unify.Subst, db.Binding, bool, error) {
	inSet := map[int]bool{}
	for _, i := range set {
		inSet[i] = true
	}
	// Collect the posts to satisfy and each one's in-subset providers.
	type need struct {
		q, p  int
		cands []ExtendedEdge
	}
	var needs []need
	for _, i := range set {
		for pi := range renamed[i].Post {
			var cs []ExtendedEdge
			for _, e := range providers[[2]int{i, pi}] {
				if inSet[e.ToQ] {
					cs = append(cs, e)
				}
			}
			if len(cs) == 0 {
				return nil, nil, false, nil // unsatisfiable postcondition
			}
			needs = append(needs, need{i, pi, cs})
		}
	}
	var body []eq.Atom
	for _, i := range set {
		body = append(body, renamed[i].Body...)
	}

	var solve func(k int, s *unify.Subst) (*unify.Subst, db.Binding, bool, error)
	solve = func(k int, s *unify.Subst) (*unify.Subst, db.Binding, bool, error) {
		if k == len(needs) {
			bind, found, err := store.SolveUnder(body, s)
			if err != nil || !found {
				return nil, nil, false, err
			}
			return s, bind, true, nil
		}
		nd := needs[k]
		for _, e := range nd.cands {
			s2 := s.Clone()
			p := renamed[e.FromQ].Post[e.PostIdx]
			h := renamed[e.ToQ].Head[e.HeadIdx]
			if err := s2.UnifyAtoms(p, h); err != nil {
				continue
			}
			rs, rb, ok, err := solve(k+1, s2)
			if err != nil {
				return nil, nil, false, err
			}
			if ok {
				return rs, rb, true, nil
			}
		}
		return nil, nil, false, nil
	}
	return solve(0, unify.New())
}

// providerEdges groups the extended graph's edges by (query, post-atom):
// which heads can provide each postcondition.
func providerEdges(qs []eq.Query) map[[2]int][]ExtendedEdge {
	providers := map[[2]int][]ExtendedEdge{}
	for _, e := range ExtendedGraph(qs) {
		k := [2]int{e.FromQ, e.PostIdx}
		providers[k] = append(providers[k], e)
	}
	return providers
}

// masksBySize buckets every non-empty subset mask of {0..n-1} by its
// popcount.
func masksBySize(n int) [][]uint32 {
	masks := make([][]uint32, n+1)
	for m := uint32(1); m < 1<<n; m++ {
		pc := popcount(m)
		masks[pc] = append(masks[pc], m)
	}
	return masks
}

// sizeOrder is the bucket visit order: ascending for existence checks,
// descending for maximisation.
func sizeOrder(n int, smallestFirst bool) []int {
	sizes := make([]int, 0, n)
	if smallestFirst {
		for s := 1; s <= n; s++ {
			sizes = append(sizes, s)
		}
	} else {
		for s := n; s >= 1; s-- {
			sizes = append(sizes, s)
		}
	}
	return sizes
}

func popcount(m uint32) int {
	c := 0
	for m != 0 {
		m &= m - 1
		c++
	}
	return c
}

func maskSet(m uint32) []int {
	var out []int
	for i := 0; m != 0; i++ {
		if m&1 == 1 {
			out = append(out, i)
		}
		m >>= 1
	}
	return out
}
