package coord

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"regexp"
	"strconv"
	"testing"

	"entangled/internal/db"
	"entangled/internal/eq"
)

// chainQuery builds one link of a backward chain inside a cluster: user
// (c, i) wants to coordinate with the already-present user (c, i-1).
// Backward chains are the streaming-friendly shape: a new tail extends
// the graph without touching any existing component's reachable set.
func chainQuery(c, i int) eq.Query {
	q := eq.Query{
		ID:   fmt.Sprintf("c%d.u%d", c, i),
		Head: []eq.Atom{eq.NewAtom("R", eq.C(eq.Value(fmt.Sprintf("U%d.%d", c, i))), eq.V("x"))},
		Body: []eq.Atom{eq.NewAtom("T", eq.V("x"), eq.C(eq.Value("c"+strconv.Itoa(c))))},
	}
	if i > 0 {
		q.Post = []eq.Atom{eq.NewAtom("R", eq.C(eq.Value(fmt.Sprintf("U%d.%d", c, i-1))), eq.V("y"))}
	}
	return q
}

func chainStore(clusters int) *db.Instance {
	in := db.NewInstance()
	t := in.CreateRelation("T", "key", "val")
	for c := 0; c < clusters; c++ {
		t.Insert(eq.Value("t"+strconv.Itoa(c)), eq.Value("c"+strconv.Itoa(c)))
	}
	t.BuildIndex(1)
	return in
}

// TestIncrementalGraphMatchesBatch checks that growing the graph one
// query at a time ends at exactly the edge list the batch path
// computes — they share the code path, so this pins the Add bookkeeping
// (self-edges, head-vs-post probe split, fanout) against the one-shot
// build.
func TestIncrementalGraphMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		qs := randomEntangled(rng, 2+rng.Intn(8))
		g := NewIncrementalGraph()
		for _, q := range qs {
			g.Add(q)
		}
		got := g.Edges()
		want := ExtendedGraph(qs)
		if !reflect.DeepEqual(append([]ExtendedEdge{}, got...), append([]ExtendedEdge{}, want...)) {
			t.Fatalf("trial %d: incremental %v != batch %v\nqueries: %v", trial, got, want, qs)
		}
		// And the incremental unsafety report matches the batch one.
		if !reflect.DeepEqual(g.Unsafe(), UnsafeQueries(qs)) {
			t.Fatalf("trial %d: unsafe %v != %v", trial, g.Unsafe(), UnsafeQueries(qs))
		}
	}
}

// TestIncrementalGraphRemove checks that removing a query leaves the
// graph equal to one never containing it (modulo the tombstoned slot).
func TestIncrementalGraphRemove(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		qs := randomEntangled(rng, 3+rng.Intn(6))
		victim := rng.Intn(len(qs))
		g := NewIncrementalGraph()
		for _, q := range qs {
			g.Add(q)
		}
		g.Remove(victim)
		// Rebuild without the victim, then map slot numbers: slots after
		// the victim shift down by one in the fresh build.
		var rest []eq.Query
		for i, q := range qs {
			if i != victim {
				rest = append(rest, q)
			}
		}
		want := ExtendedGraph(rest)
		shift := func(i int) int {
			if i > victim {
				return i - 1
			}
			return i
		}
		got := make([]ExtendedEdge, 0, len(g.Edges()))
		for _, e := range g.Edges() {
			got = append(got, ExtendedEdge{shift(e.FromQ), e.PostIdx, shift(e.ToQ), e.HeadIdx})
		}
		if !reflect.DeepEqual(got, append([]ExtendedEdge{}, want...)) {
			t.Fatalf("trial %d: after remove %d: %v != %v", trial, victim, got, want)
		}
	}
}

// randomEntangled builds a small random query set with shared user
// constants, so unifiable pairs (and occasionally unsafe fanout) occur.
func randomEntangled(rng *rand.Rand, n int) []eq.Query {
	users := 1 + n/2
	user := func() eq.Term { return eq.C(eq.Value("U" + strconv.Itoa(rng.Intn(users)))) }
	qs := make([]eq.Query, n)
	for i := range qs {
		q := eq.Query{
			ID:   "q" + strconv.Itoa(i),
			Head: []eq.Atom{eq.NewAtom("R", user(), eq.V("x"))},
			Body: []eq.Atom{eq.NewAtom("T", eq.V("x"))},
		}
		for p := rng.Intn(3); p > 0; p-- {
			q.Post = append(q.Post, eq.NewAtom("R", user(), eq.V("y"+strconv.Itoa(p))))
		}
		qs[i] = q
	}
	return qs
}

// renumber maps "q<slot>." variable prefixes through slot -> compact
// index, so a session trace string can be compared byte-for-byte with a
// batch trace over the compacted set.
var prefixRe = regexp.MustCompile(`q(\d+)\.`)

func renumber(s string, compact map[int]int) string {
	return prefixRe.ReplaceAllStringFunc(s, func(m string) string {
		slot, _ := strconv.Atoi(m[1 : len(m)-1])
		return "q" + strconv.Itoa(compact[slot]) + "."
	})
}

// checkIncrementalMatchesBatch compares an Incremental's entire
// observable state against a fresh batch run over its live queries:
// team, witness values, full trace (pruning and component events,
// including the combined-query rendering), and the delta-cost bound —
// the event can never cost more database queries than coordinating its
// result from scratch.
func checkIncrementalMatchesBatch(t *testing.T, inc *Incremental, store db.Store, d DeltaStats) {
	t.Helper()
	live := inc.LiveSlots()
	compact := make(map[int]int, len(live))
	for j, s := range live {
		compact[s] = j
	}
	qs := inc.LiveQueries()

	tr := &Trace{}
	batch, err := SCCCoordinate(qs, store, Options{Trace: tr})
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	got, err := inc.Result()
	if err != nil {
		t.Fatalf("incremental result: %v", err)
	}
	if (got == nil) != (batch == nil) {
		t.Fatalf("result presence: incremental %v, batch %v", got, batch)
	}
	if got != nil {
		mapped := make([]int, len(got.Set))
		for i, s := range got.Set {
			mapped[i] = compact[s]
		}
		if !reflect.DeepEqual(mapped, batch.Set) {
			t.Fatalf("team: incremental %v (slots %v) != batch %v", mapped, got.Set, batch.Set)
		}
		for i, s := range got.Set {
			if !reflect.DeepEqual(got.Values[s], batch.Values[batch.Set[i]]) {
				t.Fatalf("values for slot %d: %v != %v", s, got.Values[s], batch.Values[batch.Set[i]])
			}
		}
		if err := Verify(qs, batch.Set, mappedValues(got, compact), store); err != nil {
			t.Fatalf("incremental witness fails Definition 1: %v", err)
		}
	}
	if d.DBQueries > batch.DBQueriesOrZero() {
		t.Fatalf("delta cost %d exceeds batch cost %d", d.DBQueries, batch.DBQueriesOrZero())
	}

	// Trace equality, index-for-index.
	str := inc.Trace()
	if len(str.Pruned) != len(tr.Pruned) {
		t.Fatalf("pruned: %v != %v", str.Pruned, tr.Pruned)
	}
	for i, p := range str.Pruned {
		if compact[p.Query] != tr.Pruned[i].Query || p.Reason != tr.Pruned[i].Reason {
			t.Fatalf("pruned[%d]: %+v != %+v", i, p, tr.Pruned[i])
		}
	}
	if len(str.Components) != len(tr.Components) {
		t.Fatalf("components: %d != %d\n%v\n%v", len(str.Components), len(tr.Components), str.Components, tr.Components)
	}
	for i, c := range str.Components {
		want := tr.Components[i]
		if c.Status != want.Status || c.SetSize != want.SetSize {
			t.Fatalf("component %d: %+v != %+v", i, c, want)
		}
		if !reflect.DeepEqual(mapInts(c.Members, compact), want.Members) {
			t.Fatalf("component %d members: %v != %v", i, c.Members, want.Members)
		}
		if !reflect.DeepEqual(mapInts(c.Set, compact), want.Set) {
			t.Fatalf("component %d set: %v != %v", i, c.Set, want.Set)
		}
		if renumber(c.Combined, compact) != want.Combined {
			t.Fatalf("component %d combined:\n%q !=\n%q", i, renumber(c.Combined, compact), want.Combined)
		}
	}
}

func mapInts(xs []int, m map[int]int) []int {
	if xs == nil {
		return nil
	}
	out := make([]int, len(xs))
	for i, x := range xs {
		out[i] = m[x]
	}
	return out
}

func mappedValues(r *Result, compact map[int]int) map[int]map[string]eq.Value {
	out := map[int]map[string]eq.Value{}
	for s, v := range r.Values {
		out[compact[s]] = v
	}
	return out
}

// DBQueriesOrZero lets the cost comparison treat "no coordinating set"
// batches uniformly.
func (r *Result) DBQueriesOrZero() int64 {
	if r == nil {
		return 1 << 62 // nil result: batch still paid; don't bound the delta
	}
	return r.DBQueries
}

// TestIncrementalMatchesBatchOnChains grows cluster chains one arrival
// at a time and checks full observable equality with batch after every
// event, plus the delta property: a chain-extending arrival dirties
// exactly one component and costs exactly two database queries (one
// pruning probe, one grounding).
func TestIncrementalMatchesBatchOnChains(t *testing.T) {
	const clusters, perCluster = 3, 5
	store := chainStore(clusters)
	inc := NewIncremental(store, Options{})
	for i := 0; i < perCluster; i++ {
		for c := 0; c < clusters; c++ {
			_, d, err := inc.Add(chainQuery(c, i))
			if err != nil {
				t.Fatalf("add c%d.u%d: %v", c, i, err)
			}
			if d.Dirty != 1 {
				t.Fatalf("chain arrival c%d.u%d dirtied %d components, want 1 (%+v)", c, i, d.Dirty, d)
			}
			if d.DBQueries != 2 {
				t.Fatalf("chain arrival c%d.u%d cost %d queries, want 2", c, i, d.DBQueries)
			}
			checkIncrementalMatchesBatch(t, inc, store, d)
		}
	}
	// Lifetime cost: every arrival cost 2 queries; the final batch run
	// costs one satisfiability probe per query plus one grounding per
	// component — identical here, so streaming paid no premium at all.
	if want := int64(2 * clusters * perCluster); inc.TotalDBQueries() != want {
		t.Fatalf("lifetime cost %d, want %d", inc.TotalDBQueries(), want)
	}
}

// TestIncrementalRandomChurn drives a random interleaving of arrivals
// and departures (including bodies that fail the pruning probe) and
// checks observable equality with batch after every event.
func TestIncrementalRandomChurn(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		store := chainStore(4)
		inc := NewIncremental(store, Options{})
		next := map[int]int{} // cluster -> next chain index
		var liveSlots []int
		for ev := 0; ev < 40; ev++ {
			if len(liveSlots) > 0 && rng.Float64() < 0.3 {
				k := rng.Intn(len(liveSlots))
				slot := liveSlots[k]
				liveSlots = append(liveSlots[:k], liveSlots[k+1:]...)
				d, err := inc.Remove(slot)
				if err != nil {
					t.Fatalf("seed %d remove %d: %v", seed, slot, err)
				}
				checkIncrementalMatchesBatch(t, inc, store, d)
				continue
			}
			c := rng.Intn(4)
			q := chainQuery(c, next[c])
			next[c]++
			if rng.Float64() < 0.2 {
				// An unsatisfiable body exercises the pruning cascade.
				q.Body = []eq.Atom{eq.NewAtom("T", eq.V("x"), eq.C(eq.Value("missing")))}
			}
			slot, d, err := inc.Add(q)
			if err != nil {
				t.Fatalf("seed %d add %s: %v", seed, q.ID, err)
			}
			liveSlots = append(liveSlots, slot)
			checkIncrementalMatchesBatch(t, inc, store, d)
		}
	}
}

// TestIncrementalUnsafeAdmission checks the admission contract: an
// arrival whose postcondition would find two unifiable heads is
// rejected with ErrUnsafeArrival, the state is untouched, and after the
// conflicting query departs the same arrival is admitted.
func TestIncrementalUnsafeAdmission(t *testing.T) {
	store := chainStore(1)
	inc := NewIncremental(store, Options{})
	a := eq.Query{
		ID:   "a",
		Head: []eq.Atom{eq.NewAtom("R", eq.C("A"), eq.V("x"))},
		Body: []eq.Atom{eq.NewAtom("T", eq.V("x"), eq.C("c0"))},
	}
	b := eq.Query{ // second head for the same user
		ID:   "b",
		Head: []eq.Atom{eq.NewAtom("R", eq.C("A"), eq.V("x"))},
		Body: []eq.Atom{eq.NewAtom("T", eq.V("x"), eq.C("c0"))},
	}
	arrival := eq.Query{
		ID:   "c",
		Post: []eq.Atom{eq.NewAtom("R", eq.C("A"), eq.V("y"))},
		Head: []eq.Atom{eq.NewAtom("R", eq.C("C"), eq.V("x"))},
		Body: []eq.Atom{eq.NewAtom("T", eq.V("x"), eq.C("c0"))},
	}
	if _, _, err := inc.Add(a); err != nil {
		t.Fatal(err)
	}
	slotB, _, err := inc.Add(b)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := inc.Add(arrival); !errors.Is(err, ErrUnsafeArrival) {
		t.Fatalf("unsafe arrival admitted: %v", err)
	}
	if inc.Len() != 2 {
		t.Fatalf("rejected arrival mutated the set: %d live", inc.Len())
	}
	if _, err := inc.Remove(slotB); err != nil {
		t.Fatal(err)
	}
	if _, d, err := inc.Add(arrival); err != nil {
		t.Fatalf("arrival should be safe after departure: %v", err)
	} else {
		checkIncrementalMatchesBatch(t, inc, store, d)
	}
}

// TestIncrementalSkipSafetyCheck: with the check disabled the arrival
// is admitted and batch comparison still holds (batch must then also
// skip the check).
func TestIncrementalSkipSafetyCheck(t *testing.T) {
	store := chainStore(2)
	inc := NewIncremental(store, Options{SkipSafetyCheck: true, SkipPruning: true})
	for i := 0; i < 4; i++ {
		_, d, err := inc.Add(chainQuery(0, i))
		if err != nil {
			t.Fatal(err)
		}
		if d.DBQueries != 1 {
			t.Fatalf("with pruning skipped an arrival costs 1 query, got %d", d.DBQueries)
		}
		// Batch with the same options must agree on the team.
		got, err := inc.Result()
		if err != nil {
			t.Fatal(err)
		}
		want, err := SCCCoordinate(inc.LiveQueries(), store, Options{SkipSafetyCheck: true, SkipPruning: true})
		if err != nil {
			t.Fatal(err)
		}
		if got.Size() != want.Size() {
			t.Fatalf("team size %d != %d", got.Size(), want.Size())
		}
	}
}
