package coord

import (
	"errors"
	"fmt"

	"entangled/internal/db"
	"entangled/internal/eq"
	"entangled/internal/unify"
)

// ErrNotSingleConnected is returned when the input violates Definition 6.
var ErrNotSingleConnected = errors.New("coord: query set is not single-connected")

// IsSingleConnected checks Definition 6: every query has at most one
// postcondition atom, and the coordination graph has at most one simple
// path between every (ordered) pair of queries.
func IsSingleConnected(qs []eq.Query) bool {
	for _, q := range qs {
		if len(q.Post) > 1 {
			return false
		}
	}
	g := CoordinationGraph(qs)
	for u := 0; u < g.N(); u++ {
		for v := 0; v < g.N(); v++ {
			if g.CountSimplePaths(u, v, 2) > 1 {
				return false
			}
		}
	}
	return true
}

// SingleConnectedCoordinate solves Entangled for single-connected query
// sets (Theorem 3). The paper states the theorem without an algorithm;
// this is our reconstruction. Each query has at most one postcondition,
// so a coordinating set containing q is a chain of provider choices
// starting at q (possibly closing into a cycle); the single-simple-path
// property keeps provider chains from constraining one another through
// multiple routes, so a depth-first search over provider choices with
// one combined conjunctive query per attempted chain extension decides
// each query in turn. On single-connected inputs the number of database
// queries issued is bounded by the number of extended-graph edges plus
// |Q| (each of linear size), matching the theorem's bound.
//
// The returned result is the largest coordinating set found over all
// starting queries, or nil when none exists.
func SingleConnectedCoordinate(qs []eq.Query, store db.Store) (*Result, error) {
	for _, q := range qs {
		if len(q.Post) > 1 {
			return nil, fmt.Errorf("%w: query %s has %d postconditions", ErrNotSingleConnected, q.ID, len(q.Post))
		}
	}
	if len(qs) == 0 {
		return nil, nil
	}
	meter := db.NewMeter(store)
	renamed := renameAll(qs)
	edges := ExtendedGraph(qs)
	// Provider candidates for each query's single postcondition.
	cands := make([][]ExtendedEdge, len(qs))
	for _, e := range edges {
		cands[e.FromQ] = append(cands[e.FromQ], e)
	}

	type state struct {
		set  []int
		s    *unify.Subst
		bind db.Binding
	}
	var best *state

	// grow attempts to extend the chain rooted at the original start
	// query by satisfying query cur's postcondition; inChain guards
	// against revisiting (closing a cycle is handled explicitly).
	var grow func(cur int, set []int, inChain map[int]bool, s *unify.Subst) (*state, error)
	grow = func(cur int, set []int, inChain map[int]bool, s *unify.Subst) (*state, error) {
		if len(renamed[cur].Post) == 0 {
			// Chain complete; ground the combined body.
			var body []eq.Atom
			for _, i := range set {
				body = append(body, renamed[i].Body...)
			}
			bind, ok, err := meter.SolveUnder(body, s)
			if err != nil || !ok {
				return nil, err
			}
			return &state{append([]int(nil), set...), s, bind}, nil
		}
		for _, e := range cands[cur] {
			s2 := s.Clone()
			if err := s2.UnifyAtoms(renamed[e.FromQ].Post[e.PostIdx], renamed[e.ToQ].Head[e.HeadIdx]); err != nil {
				continue
			}
			if inChain[e.ToQ] {
				// The chain closes into a cycle: every postcondition in
				// the chain is now provided for; ground the whole chain.
				var body []eq.Atom
				for _, i := range set {
					body = append(body, renamed[i].Body...)
				}
				bind, ok, err := meter.SolveUnder(body, s2)
				if err != nil {
					return nil, err
				}
				if ok {
					return &state{append([]int(nil), set...), s2, bind}, nil
				}
				continue
			}
			inChain[e.ToQ] = true
			res, err := grow(e.ToQ, append(set, e.ToQ), inChain, s2)
			delete(inChain, e.ToQ)
			if err != nil {
				return nil, err
			}
			if res != nil {
				return res, nil
			}
		}
		return nil, nil
	}

	for i := range renamed {
		st, err := grow(i, []int{i}, map[int]bool{i: true}, unify.New())
		if err != nil {
			return nil, err
		}
		if st != nil && (best == nil || len(st.set) > len(best.set)) {
			best = st
		}
	}
	if best == nil {
		return nil, nil
	}
	return finishResult(qs, sortedCopy(best.set), best.s, best.bind, meter)
}
