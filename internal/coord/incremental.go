package coord

import (
	"errors"
	"fmt"
	"strconv"

	"entangled/internal/db"
	"entangled/internal/eq"
	"entangled/internal/graph"
	"entangled/internal/unify"
)

// ErrUnsafeArrival is returned by Incremental.Add when admitting the
// query would make the session's set unsafe (some postcondition would
// unify with more than one head, Definition 2). The set is left
// unchanged; the caller can reject the arrival or park it and retry
// after a departure clears the conflict.
var ErrUnsafeArrival = errors.New("coord: arrival would make the query set unsafe")

// ErrNoQuery is returned by Incremental.Remove for a slot that holds no
// live query.
var ErrNoQuery = errors.New("coord: no live query in slot")

// DeltaStats reports what one incremental event (arrival or departure)
// cost: how much of the condensation DAG was dirty — re-unified and
// re-grounded — versus spliced from the previous pass's cache, and the
// exact number of database queries the event issued (counted on a
// private db.Meter, like every other coord entry point).
// The JSON tags define the canonical wire encoding used by the HTTP
// service layer (internal/api).
type DeltaStats struct {
	// Slot is the slot the event touched.
	Slot int `json:"slot"`
	// Components is the number of strongly connected components of the
	// live, unpruned set after the event.
	Components int `json:"components"`
	// Dirty counts components whose reachable set changed, so their MGU
	// and grounding had to be recomputed (one database query each, when
	// unification succeeds).
	Dirty int `json:"dirty"`
	// Reused counts components spliced from the previous pass: their
	// reachable set is untouched, so the cached outcome — witness,
	// binding, or failure — is still exact.
	Reused int `json:"reused"`
	// DBQueries is the exact number of conjunctive queries this event
	// issued: one body-satisfiability probe on an arrival plus one
	// grounding query per dirty component that unified.
	DBQueries int64 `json:"db_queries"`
}

// compOutcome is the cached result of searching one component: the
// outcome of unifying its reachable set and grounding the combination.
// It is a pure function of (reachable live query slots, store
// contents), so it stays valid for splicing as long as neither changes;
// the dirty-region invariant in DESIGN.md spells this out.
type compOutcome struct {
	status   string // "grounded", "unification failed", "no tuple"
	set      []int  // reachable query slots, sorted ascending
	subst    *unify.Subst
	binding  db.Binding
	combined string
	grounded bool
	failed   bool
}

// Incremental is the resumable state of the SCC Coordination Algorithm
// over a query set that changes one query at a time. It is the core of
// the streaming sessions in internal/stream: Add and Remove maintain
// the extended coordination graph incrementally (edges only ever appear
// or disappear with their endpoint queries), re-prune from cached
// per-query body-satisfiability, recondense — pure graph work, no
// database traffic — and then re-solve only the components whose
// reachable set changed, splicing cached witnesses for everything else.
//
// Queries live in slots: Add assigns the next slot, Remove tombstones
// one. Slots are never reused, so a query's alpha-renaming prefix is
// stable for the life of the session and cached substitutions never go
// stale. A quiesced Incremental reports exactly what a batch
// SCCCoordinate over its live queries (in slot order) would: same
// team, same trace, same witness values.
//
// Incremental is not safe for concurrent use; stream.Session adds the
// locking.
type Incremental struct {
	store db.Store
	opts  Options

	g       *IncrementalGraph
	queries []eq.Query // by slot
	renamed []eq.Query // by slot, prefix q<slot>.
	bodySat []bool     // by slot: cached body-satisfiability probe
	// Liveness lives in g (IncrementalGraph.Live): one bitmap, no
	// lockstep copy to desynchronize.

	cache map[string]*compOutcome // reachable-set signature -> outcome

	// State of the last reconcile pass.
	pruned []PruneEvent
	events []ComponentEvent
	cands  []Candidate
	last   DeltaStats
	total  int64 // lifetime database queries
}

// NewIncremental returns an empty resumable coordinator over store.
// opts.Select chooses among candidates in Result; SkipPruning and
// SkipSafetyCheck have their batch meanings (SkipSafetyCheck disables
// the Add-time admission check); Trace, IncrementalUnify and
// Parallelism are ignored — the trace is available from Trace(), and
// events re-solve only the dirty region, which is the incremental
// strategy taken to its conclusion.
func NewIncremental(store db.Store, opts Options) *Incremental {
	return &Incremental{
		store: store,
		opts:  opts,
		g:     NewIncrementalGraph(),
		cache: map[string]*compOutcome{},
	}
}

// Len returns the number of live queries.
func (inc *Incremental) Len() int {
	n := 0
	for i := range inc.queries {
		if inc.g.Live(i) {
			n++
		}
	}
	return n
}

// LiveSlots returns the live slots in ascending order.
func (inc *Incremental) LiveSlots() []int {
	var out []int
	for i := range inc.queries {
		if inc.g.Live(i) {
			out = append(out, i)
		}
	}
	return out
}

// LiveQueries returns the live queries in slot order — the set a batch
// run would be given to reproduce this state.
func (inc *Incremental) LiveQueries() []eq.Query {
	var out []eq.Query
	for i, q := range inc.queries {
		if inc.g.Live(i) {
			out = append(out, q)
		}
	}
	return out
}

// Query returns the query in a slot (live or not). It panics on a slot
// never assigned.
func (inc *Incremental) Query(slot int) eq.Query { return inc.queries[slot] }

// Add admits one arriving query: it extends the extended graph with the
// newcomer's incident edges, probes the newcomer's body satisfiability
// (the §6.1 pruning input — one database query, cached for the life of
// the slot), and re-coordinates the dirty region. It returns the
// assigned slot and the event's cost.
//
// When the arrival would make the set unsafe the set is left untouched
// and ErrUnsafeArrival is returned (unless opts.SkipSafetyCheck trusts
// the caller). Safety is checked on the delta only: the incremental
// fanout counters make it O(newcomer's edges), not O(n²).
func (inc *Incremental) Add(q eq.Query) (int, DeltaStats, error) {
	var slot int
	if inc.opts.SkipSafetyCheck {
		slot, _ = inc.g.Add(q)
	} else {
		// One probe serves both the admission check and the commit.
		edges, unsafe := inc.g.Probe(q)
		if len(unsafe) > 0 {
			return -1, DeltaStats{}, fmt.Errorf("%w %s: would make queries %v unsafe", ErrUnsafeArrival, q.ID, unsafe)
		}
		slot, _ = inc.g.commit(q, edges)
	}
	m := db.NewMeter(inc.store)
	inc.queries = append(inc.queries, q)
	inc.renamed = append(inc.renamed, q.Rename(varPrefix(slot)))
	sat := true
	if !inc.opts.SkipPruning {
		var err error
		sat, err = m.Satisfiable(inc.renamed[slot].Body)
		if err != nil {
			inc.g.Remove(slot)
			inc.bodySat = append(inc.bodySat, false)
			inc.total += m.Count()
			return -1, DeltaStats{Slot: -1, DBQueries: m.Count()}, err
		}
	}
	inc.bodySat = append(inc.bodySat, sat)
	d, err := inc.reconcile(m)
	d.Slot = slot
	inc.last = d
	return slot, d, err
}

// Remove departs the query in a slot: its incident edges leave the
// graph with it, pruning is redone from cached probes (a departure can
// strand postconditions that the cascade then removes), and only
// components that could reach the departed query are re-solved.
// Departures issue database queries only for those dirty components.
func (inc *Incremental) Remove(slot int) (DeltaStats, error) {
	if !inc.g.Live(slot) {
		return DeltaStats{}, fmt.Errorf("%w %d", ErrNoQuery, slot)
	}
	inc.g.Remove(slot)
	m := db.NewMeter(inc.store)
	d, err := inc.reconcile(m)
	d.Slot = slot
	inc.last = d
	return d, err
}

// Result returns the coordinating set selected from the current
// candidate family (opts.Select, MaxSize by default), or nil when
// nothing grounds. Asking costs no database queries — the answer is
// assembled from cached state — and Result.DBQueries reports the
// marginal cost of the event that produced this state, the streaming
// analogue of the paper's per-run cost metric.
func (inc *Incremental) Result() (*Result, error) {
	if len(inc.cands) == 0 {
		return nil, nil
	}
	sel := inc.opts.Select
	if sel == nil {
		sel = MaxSize
	}
	win := inc.cands[sel(inc.cands)]
	fallback, err := pickFallback(inc.queries, win.Set, win.subst, win.binding, inc.store)
	if err != nil {
		return nil, err
	}
	return &Result{
		Set:       win.Set,
		Values:    extractValues(inc.queries, win.Set, win.subst, win.binding, fallback),
		DBQueries: inc.last.DBQueries,
	}, nil
}

// TeamSize returns the size of the coordinating set Result would
// select, without materialising the witness values.
func (inc *Incremental) TeamSize() int {
	if len(inc.cands) == 0 {
		return 0
	}
	sel := inc.opts.Select
	if sel == nil {
		sel = MaxSize
	}
	return len(inc.cands[sel(inc.cands)].Set)
}

// Candidates returns the current candidate family in processing order,
// like AllCandidates for a batch run, without issuing database queries.
func (inc *Incremental) Candidates() ([]CandidateSet, error) {
	out := make([]CandidateSet, 0, len(inc.cands))
	for _, c := range inc.cands {
		fallback, err := pickFallback(inc.queries, c.Set, c.subst, c.binding, inc.store)
		if err != nil {
			return nil, err
		}
		out = append(out, CandidateSet{
			Set:    c.Set,
			Values: extractValues(inc.queries, c.Set, c.subst, c.binding, fallback),
		})
	}
	return out, nil
}

// Trace returns the step-by-step record of the current state, in the
// shape a traced batch run over the live set would produce: pruning
// events then per-component outcomes in reverse topological order.
// Query indices are slots.
func (inc *Incremental) Trace() *Trace {
	return &Trace{
		Pruned:     append([]PruneEvent(nil), inc.pruned...),
		Components: append([]ComponentEvent(nil), inc.events...),
	}
}

// LastDelta returns the cost of the most recent event.
func (inc *Incremental) LastDelta() DeltaStats { return inc.last }

// TotalDBQueries returns the lifetime database-query count across every
// event of this coordinator.
func (inc *Incremental) TotalDBQueries() int64 { return inc.total }

// Refresh rebuilds every store-dependent part of the state: cached
// component outcomes are dropped, body-satisfiability probes are redone
// for all live queries, and the whole condensation is re-solved. This
// is the escape hatch from the dirty-region invariant — cached
// witnesses assume the store's contents have not changed since they
// were computed, so a caller that interleaves writes with a session
// calls Refresh (with writers paused) to resynchronise. It costs what
// a batch run costs.
func (inc *Incremental) Refresh() (DeltaStats, error) {
	m := db.NewMeter(inc.store)
	inc.cache = map[string]*compOutcome{}
	if !inc.opts.SkipPruning {
		for i := range inc.queries {
			if !inc.g.Live(i) {
				continue
			}
			sat, err := m.Satisfiable(inc.renamed[i].Body)
			if err != nil {
				return DeltaStats{}, err
			}
			inc.bodySat[i] = sat
		}
	}
	d, err := inc.reconcile(m)
	d.Slot = -1
	inc.last = d
	return d, err
}

// reconcile brings the coordination state up to date after a graph
// change. Pruning and condensation are recomputed from cached inputs —
// pure graph work. The component walk mirrors runSCC exactly, except
// that a component whose reachable set matches a cached outcome splices
// it instead of re-unifying and re-grounding. Live slots are compacted
// before condensation so the walk is index-for-index identical to a
// batch run over the live queries in slot order: same Tarjan numbering,
// same topological order, same candidate order, same tie-breaks.
func (inc *Incremental) reconcile(m *db.Meter) (DeltaStats, error) {
	defer func() { inc.total += m.Count() }()
	n := len(inc.queries)
	edges := inc.g.Edges()

	// §6.1 pruning from cached body-satisfiability probes, then the
	// provider cascade — same rounds, same order, no database traffic.
	alive := make([]bool, n)
	inc.pruned = inc.pruned[:0]
	for i := 0; i < n; i++ {
		if !inc.g.Live(i) {
			continue
		}
		if inc.bodySat[i] || inc.opts.SkipPruning {
			alive[i] = true
		} else {
			inc.pruned = append(inc.pruned, PruneEvent{Query: i, Reason: "unsatisfiable body"})
		}
	}
	if !inc.opts.SkipPruning {
		for {
			changed := false
			providers := map[[2]int]int{}
			for _, e := range edges {
				if alive[e.FromQ] && alive[e.ToQ] {
					providers[[2]int{e.FromQ, e.PostIdx}]++
				}
			}
			for i := 0; i < n; i++ {
				if !alive[i] {
					continue
				}
				for pi := range inc.queries[i].Post {
					if providers[[2]int{i, pi}] == 0 {
						alive[i] = false
						changed = true
						inc.pruned = append(inc.pruned, PruneEvent{Query: i, Reason: "unsatisfiable postcondition"})
						break
					}
				}
			}
			if !changed {
				break
			}
		}
	}

	// Compact live slots and condense. Compaction is monotone, so the
	// graph is isomorphic to the batch one with identical adjacency
	// order.
	live := make([]int, 0, n)
	idx := make([]int, n)
	for i := 0; i < n; i++ {
		if inc.g.Live(i) {
			idx[i] = len(live)
			live = append(live, i)
		}
	}
	cg := graph.New(len(live))
	for _, e := range edges {
		if alive[e.FromQ] && alive[e.ToQ] {
			cg.AddEdge(idx[e.FromQ], idx[e.ToQ])
		}
	}
	dag, _, members := cg.Condense()
	order, err := dag.TopoOrder()
	if err != nil {
		return DeltaStats{}, err // cannot happen: condensation is a DAG
	}
	reverse(order)

	nc := dag.N()
	reach := make([][]bool, nc)
	failed := make([]bool, nc)
	newCache := make(map[string]*compOutcome, nc)
	inc.events = inc.events[:0]
	inc.cands = inc.cands[:0]
	d := DeltaStats{Components: nc}

	for _, c := range order {
		slots := make([]int, len(members[c]))
		for j, mcj := range members[c] {
			slots[j] = live[mcj]
		}
		ev := ComponentEvent{Members: slots}
		if !alive[slots[0]] {
			failed[c] = true
			ev.Status = "pruned"
			inc.events = append(inc.events, ev)
			continue
		}
		r := make([]bool, nc)
		r[c] = true
		ok := true
		for _, succ := range dag.Succ(c) {
			if failed[succ] {
				ok = false
				break
			}
			for i, b := range reach[succ] {
				if b {
					r[i] = true
				}
			}
		}
		reach[c] = r
		if !ok {
			failed[c] = true
			ev.Status = "successor failed"
			inc.events = append(inc.events, ev)
			continue
		}

		// The reachable set, in ascending component order like runSCC
		// (the combined body is assembled in this order, so the frozen
		// join plan — and with it the chosen witness — matches batch).
		var set []int
		for cc := 0; cc < nc; cc++ {
			if r[cc] {
				for _, mcc := range members[cc] {
					set = append(set, live[mcc])
				}
			}
		}
		sig := sigOf(set)
		out := inc.cache[sig]
		if out == nil {
			out, err = inc.solve(set, edges, m)
			if err != nil {
				return d, err
			}
			d.Dirty++
		} else {
			d.Reused++
		}
		newCache[sig] = out
		failed[c] = out.failed
		ev.Status = out.status
		ev.Set = out.set
		ev.Combined = out.combined
		if out.grounded {
			ev.SetSize = len(out.set)
			inc.cands = append(inc.cands, Candidate{Set: out.set, subst: out.subst, binding: out.binding})
		}
		inc.events = append(inc.events, ev)
	}
	inc.cache = newCache
	d.DBQueries = m.Count()
	return d, nil
}

// solve runs one component's search exactly as the batch walk does:
// unify every edge inside the reachable set (edges arrive in canonical
// order, so the union sequence — and the resulting substitution — is
// the one a batch run computes) and ground the combined body with a
// single database query.
func (inc *Incremental) solve(set []int, edges []ExtendedEdge, m *db.Meter) (*compOutcome, error) {
	inSet := make([]bool, len(inc.queries))
	for _, i := range set {
		inSet[i] = true
	}
	s := unify.NewSized(2*len(set) + 4)
	for _, e := range edges {
		if !inSet[e.FromQ] || !inSet[e.ToQ] {
			continue
		}
		p := inc.renamed[e.FromQ].Post[e.PostIdx]
		h := inc.renamed[e.ToQ].Head[e.HeadIdx]
		if err := s.UnifyAtoms(p, h); err != nil {
			return &compOutcome{status: "unification failed", set: sortedCopy(set), failed: true}, nil
		}
	}
	nAtoms := 0
	for _, i := range set {
		nAtoms += len(inc.renamed[i].Body)
	}
	body := make([]eq.Atom, 0, nAtoms)
	for _, i := range set {
		body = append(body, inc.renamed[i].Body...)
	}
	bind, found, err := m.SolveUnder(body, s)
	if err != nil {
		return nil, err
	}
	out := &compOutcome{
		set:      sortedCopy(set),
		subst:    s,
		combined: renderCombined(s.ApplyAll(body)),
	}
	if !found {
		out.status = "no tuple"
		out.failed = true
		return out, nil
	}
	out.status = "grounded"
	out.grounded = true
	out.binding = bind
	return out, nil
}

// sigOf builds the cache key of a reachable slot set in assembly
// order, NOT sorted: the combined body is concatenated in this order,
// and the frozen join plan — hence the chosen witness and the rendered
// combined query — depends on it. A departure elsewhere in the graph
// can renumber Tarjan components and reorder an otherwise unchanged
// reachable set; keying on the ordered sequence makes that a cache
// miss (re-solve, stay exact) instead of a stale splice. Slots are
// stable for the life of a session, so signatures are too.
func sigOf(set []int) string {
	buf := make([]byte, 0, 4*len(set))
	for _, s := range set {
		buf = strconv.AppendInt(buf, int64(s), 10)
		buf = append(buf, ',')
	}
	return string(buf)
}
