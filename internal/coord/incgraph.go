package coord

import (
	"sort"

	"entangled/internal/eq"
	"entangled/internal/unify"
)

// headRef locates one head atom: the h-th head of query q.
type headRef struct {
	q, h int
	atom eq.Atom
}

// postRef locates one postcondition atom: the p-th post of query q.
type postRef struct {
	q, p int
	atom eq.Atom
}

// atomBuckets prefilters unification candidates for one side (heads or
// posts) of the extended graph. Atoms are bucketed per relation by the
// constant in their first argument; atoms whose first argument is a
// variable (or that have no arguments) can match anything over their
// relation and live in the wildcard bucket. A probe with a constant
// first argument touches only the matching constant bucket plus the
// wildcards; a probe without one touches the whole relation. Every
// candidate surviving the prefilter is still checked with
// unify.Unifiable, so the buckets are purely an optimisation — Figure
// 6's near-linear graph construction relies on them.
type atomBuckets[R any] struct {
	byConst map[string]map[string][]R // rel -> first-arg constant -> refs
	wild    map[string][]R            // rel -> refs with variable/absent first arg
	all     map[string][]R            // rel -> every ref
}

func newAtomBuckets[R any]() atomBuckets[R] {
	return atomBuckets[R]{
		byConst: map[string]map[string][]R{},
		wild:    map[string][]R{},
		all:     map[string][]R{},
	}
}

// insert files one atom under its buckets.
func (b *atomBuckets[R]) insert(a eq.Atom, ref R) {
	b.all[a.Rel] = append(b.all[a.Rel], ref)
	if len(a.Args) > 0 && !a.Args[0].IsVar() {
		m := b.byConst[a.Rel]
		if m == nil {
			m = map[string][]R{}
			b.byConst[a.Rel] = m
		}
		m[a.Args[0].Name] = append(m[a.Args[0].Name], ref)
	} else {
		b.wild[a.Rel] = append(b.wild[a.Rel], ref)
	}
}

// candidates returns the refs a probe atom could unify with.
func (b *atomBuckets[R]) candidates(a eq.Atom, yield func(R)) {
	if len(a.Args) > 0 && !a.Args[0].IsVar() {
		for _, r := range b.byConst[a.Rel][a.Args[0].Name] {
			yield(r)
		}
		for _, r := range b.wild[a.Rel] {
			yield(r)
		}
		return
	}
	for _, r := range b.all[a.Rel] {
		yield(r)
	}
}

// IncrementalGraph maintains the extended coordination graph of a
// growing and shrinking query set. A new query only adds edges incident
// to itself, so Add probes the cached head/post buckets and extends the
// edge set in time proportional to the newcomer's unifiable pairs
// instead of rebuilding the O(n²) graph; Remove drops a query's
// incident edges and tombstones it. The batch ExtendedGraph is the
// special case "add everything, then read Edges once" and is
// implemented on top of this type, so the streaming and batch paths
// share one graph-construction code path.
//
// The per-(query, postcondition) fanout of unifiable heads is
// maintained alongside the edges, which makes the paper's Definition-2
// safety check incremental too: Probe reports which queries an arrival
// would make unsafe without committing it.
type IncrementalGraph struct {
	n     int    // slots handed out, including removed ones
	gone  []bool // slot -> removed
	nPost []int  // slot -> number of postcondition atoms

	heads atomBuckets[headRef]
	posts atomBuckets[postRef]

	edges  []ExtendedEdge // edges among live slots, unsorted
	fanout map[[2]int]int // (slot, post index) -> live unifiable heads

	sorted []ExtendedEdge // canonical view, rebuilt lazily
	dirty  bool
}

// NewIncrementalGraph returns an empty graph index.
func NewIncrementalGraph() *IncrementalGraph {
	return &IncrementalGraph{
		heads:  newAtomBuckets[headRef](),
		posts:  newAtomBuckets[postRef](),
		fanout: map[[2]int]int{},
	}
}

// N returns the number of slots handed out so far (including removed
// ones); the next Add returns slot N.
func (g *IncrementalGraph) N() int { return g.n }

// Live reports whether slot i holds a query that has not been removed.
func (g *IncrementalGraph) Live(i int) bool { return i >= 0 && i < g.n && !g.gone[i] }

// probeNew computes the edges a new query in slot slot would contribute:
// its postconditions against every live head (including its own), and
// every live postcondition against its heads. The graph is not
// modified.
func (g *IncrementalGraph) probeNew(slot int, q eq.Query) []ExtendedEdge {
	var out []ExtendedEdge
	// The newcomer's posts against live heads plus the newcomer's own
	// heads (self-edges are part of the extended graph).
	for pi, p := range q.Post {
		g.heads.candidates(p, func(h headRef) {
			if !g.gone[h.q] && unify.Unifiable(p, h.atom) {
				out = append(out, ExtendedEdge{slot, pi, h.q, h.h})
			}
		})
		for hi, h := range q.Head {
			if unify.Unifiable(p, h) {
				out = append(out, ExtendedEdge{slot, pi, slot, hi})
			}
		}
	}
	// Live posts of earlier queries against the newcomer's heads.
	for hi, h := range q.Head {
		g.posts.candidates(h, func(p postRef) {
			if !g.gone[p.q] && unify.Unifiable(p.atom, h) {
				out = append(out, ExtendedEdge{p.q, p.p, slot, hi})
			}
		})
	}
	return out
}

// Probe dry-runs an Add: it returns the edges the query would
// contribute and the slots (including the prospective newcomer's,
// which is returned by N) that the arrival would make unsafe — a query
// is unsafe when one of its postconditions unifies with more than one
// head in the set (Definition 2). The graph is not modified.
func (g *IncrementalGraph) Probe(q eq.Query) (edges []ExtendedEdge, unsafe []int) {
	edges = g.probeNew(g.n, q)
	over := map[int]bool{}
	delta := map[[2]int]int{}
	for _, e := range edges {
		k := [2]int{e.FromQ, e.PostIdx}
		delta[k]++
		if g.fanout[k]+delta[k] > 1 {
			over[e.FromQ] = true
		}
	}
	for i := range over {
		unsafe = append(unsafe, i)
	}
	sort.Ints(unsafe)
	return edges, unsafe
}

// Add commits query q to the next slot and returns the slot index and
// the edges the query contributed (every returned edge has the new slot
// as an endpoint). Safety is not enforced here — callers that admit
// arrivals conditionally use Probe first and commit its edge list,
// paying for the probe once.
func (g *IncrementalGraph) Add(q eq.Query) (slot int, added []ExtendedEdge) {
	return g.commit(q, g.probeNew(g.n, q))
}

// commit files q under the next slot with a previously probed edge
// list. added must come from Probe/probeNew on the current graph state
// with no intervening mutation.
func (g *IncrementalGraph) commit(q eq.Query, added []ExtendedEdge) (int, []ExtendedEdge) {
	slot := g.n
	g.n++
	g.gone = append(g.gone, false)
	g.nPost = append(g.nPost, len(q.Post))
	for hi, h := range q.Head {
		g.heads.insert(h, headRef{slot, hi, h})
	}
	for pi, p := range q.Post {
		g.posts.insert(p, postRef{slot, pi, p})
	}
	g.edges = append(g.edges, added...)
	for _, e := range added {
		g.fanout[[2]int{e.FromQ, e.PostIdx}]++
	}
	g.dirty = true
	return slot, added
}

// Remove tombstones slot i and drops its incident edges. Bucket entries
// are left in place and skipped during probes (removal surgery on the
// per-constant maps is not worth it; sessions churn queries, not
// relations). Removing an absent or already-removed slot is a no-op.
func (g *IncrementalGraph) Remove(i int) {
	if !g.Live(i) {
		return
	}
	g.gone[i] = true
	kept := g.edges[:0]
	for _, e := range g.edges {
		if e.FromQ == i || e.ToQ == i {
			g.fanout[[2]int{e.FromQ, e.PostIdx}]--
			continue
		}
		kept = append(kept, e)
	}
	g.edges = kept
	for pi := 0; pi < g.nPost[i]; pi++ {
		delete(g.fanout, [2]int{i, pi})
	}
	g.dirty = true
}

// Edges returns the extended graph's edges among live slots in
// canonical order: sorted by (FromQ, PostIdx, ToQ, HeadIdx). The slice
// is shared and rebuilt lazily; callers must not mutate it. Canonical
// order matters: the SCC algorithm's unification loops walk edges in
// this order, so a graph grown one query at a time and a graph built in
// one batch drive identical union sequences and produce identical
// substitutions.
func (g *IncrementalGraph) Edges() []ExtendedEdge {
	if g.dirty {
		g.sorted = append(g.sorted[:0], g.edges...)
		sort.Slice(g.sorted, func(a, b int) bool {
			x, y := g.sorted[a], g.sorted[b]
			if x.FromQ != y.FromQ {
				return x.FromQ < y.FromQ
			}
			if x.PostIdx != y.PostIdx {
				return x.PostIdx < y.PostIdx
			}
			if x.ToQ != y.ToQ {
				return x.ToQ < y.ToQ
			}
			return x.HeadIdx < y.HeadIdx
		})
		g.dirty = false
	}
	return g.sorted
}

// Unsafe returns the live slots that are unsafe in the current set,
// sorted ascending.
func (g *IncrementalGraph) Unsafe() []int {
	var out []int
	seen := map[int]bool{}
	for k, c := range g.fanout {
		if c > 1 && !seen[k[0]] {
			seen[k[0]] = true
			out = append(out, k[0])
		}
	}
	sort.Ints(out)
	return out
}
