package coord

import (
	"sync"

	"entangled/internal/db"
	"entangled/internal/eq"
	"entangled/internal/unify"
)

// runSCCParallel is the concurrent variant of runSCC: the per-component
// provider searches (MGU computation plus one database query each) run
// on a pool of opts.Parallelism workers, scheduled over the component
// DAG — a component is dispatched as soon as every successor component
// has been processed, so independent branches of the condensation
// proceed concurrently while the chain case degrades gracefully to
// sequential execution. The returned candidate family, its order, and
// any recorded Trace are identical to the sequential walk.
func runSCCParallel(qs []eq.Query, store db.Store, opts Options) ([]Candidate, error) {
	tr := opts.Trace
	st, err := prepareSCC(qs, store, opts)
	if err != nil {
		return nil, err
	}
	nc := st.dag.N()

	// Per-component state. Each slot is written by exactly one worker;
	// the scheduler's channels order those writes before any dependent
	// component reads them.
	w := &sccWalk{
		st:     st,
		store:  store,
		trace:  tr != nil,
		reach:  make([][]bool, nc),
		failed: make([]bool, nc),
		events: make([]ComponentEvent, nc),
		cands:  make([]*Candidate, nc),
	}

	// preds[c] lists the components that wait on c; pending[c] counts
	// the successors c itself waits on.
	preds := make([][]int, nc)
	pending := make([]int, nc)
	for c := 0; c < nc; c++ {
		pending[c] = len(st.dag.Succ(c))
		for _, s := range st.dag.Succ(c) {
			preds[s] = append(preds[s], c)
		}
	}
	var ready []int
	for c := 0; c < nc; c++ {
		if pending[c] == 0 {
			ready = append(ready, c)
		}
	}

	workers := opts.Parallelism
	if workers > nc {
		workers = nc
	}
	tasks := make(chan int)
	results := make(chan compDone)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range tasks {
				results <- compDone{c: c, err: w.processComponent(c)}
			}
		}()
	}

	// Scheduler loop: hand out ready components, collect completions,
	// release predecessors whose successors are all done. On error, stop
	// dispatching and drain what is in flight.
	var firstErr error
	outstanding, completed := 0, 0
	for completed < nc && firstErr == nil {
		var send chan int
		next := -1
		if len(ready) > 0 {
			send = tasks
			next = ready[len(ready)-1]
		}
		select {
		case send <- next:
			ready = ready[:len(ready)-1]
			outstanding++
		case r := <-results:
			outstanding--
			completed++
			if r.err != nil {
				firstErr = r.err
				continue
			}
			for _, p := range preds[r.c] {
				pending[p]--
				if pending[p] == 0 {
					ready = append(ready, p)
				}
			}
		}
	}
	close(tasks)
	for outstanding > 0 {
		r := <-results
		outstanding--
		if r.err != nil && firstErr == nil {
			firstErr = r.err
		}
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	// Assemble trace events and candidates in the sequential processing
	// order so parallel runs are observationally identical.
	var cands []Candidate
	for _, c := range st.order {
		if tr != nil {
			tr.Components = append(tr.Components, w.events[c])
		}
		if w.cands[c] != nil {
			cands = append(cands, *w.cands[c])
		}
	}
	return cands, nil
}

type compDone struct {
	c   int
	err error
}

// sccWalk holds the shared arrays of a parallel component walk.
type sccWalk struct {
	st     *sccSetup
	store  db.Store
	trace  bool
	reach  [][]bool
	failed []bool
	events []ComponentEvent
	cands  []*Candidate
}

// processComponent mirrors one iteration of the sequential walk: fold
// the successors' reachability, recompute the reachable set's MGU from
// scratch, and ground the combined body with one database query. It
// only reads state of components the scheduler has already completed.
func (w *sccWalk) processComponent(c int) error {
	st := w.st
	nc := st.dag.N()
	var ev ComponentEvent
	if w.trace {
		ev.Members = append([]int(nil), st.members[c]...)
	}
	if !st.alive[st.members[c][0]] {
		w.failed[c] = true
		ev.Status = "pruned"
		w.events[c] = ev
		return nil
	}
	r := make([]bool, nc)
	r[c] = true
	ok := true
	for _, succ := range st.dag.Succ(c) {
		if w.failed[succ] {
			ok = false
			break
		}
		for i, b := range w.reach[succ] {
			if b {
				r[i] = true
			}
		}
	}
	w.reach[c] = r
	if !ok {
		w.failed[c] = true
		ev.Status = "successor failed"
		w.events[c] = ev
		return nil
	}

	var set []int
	for cc := 0; cc < nc; cc++ {
		if r[cc] {
			set = append(set, st.members[cc]...)
		}
	}
	inSet := make([]bool, len(st.renamed))
	for _, i := range set {
		inSet[i] = true
	}
	s := unify.NewSized(2*len(set) + 4)
	unifyOK := true
	for _, e := range st.edges {
		if !inSet[e.FromQ] || !inSet[e.ToQ] {
			continue
		}
		p := st.renamed[e.FromQ].Post[e.PostIdx]
		h := st.renamed[e.ToQ].Head[e.HeadIdx]
		if err := s.UnifyAtoms(p, h); err != nil {
			unifyOK = false
			break
		}
	}
	if !unifyOK {
		w.failed[c] = true
		ev.Status = "unification failed"
		if w.trace {
			ev.Set = sortedCopy(set)
		}
		w.events[c] = ev
		return nil
	}

	nAtoms := 0
	for _, i := range set {
		nAtoms += len(st.renamed[i].Body)
	}
	body := make([]eq.Atom, 0, nAtoms)
	for _, i := range set {
		body = append(body, st.renamed[i].Body...)
	}
	bind, found, err := w.store.SolveUnder(body, s)
	if err != nil {
		return err
	}
	if w.trace {
		ev.Set = sortedCopy(set)
		ev.Combined = renderCombined(s.ApplyAll(body))
	}
	if !found {
		w.failed[c] = true
		ev.Status = "no tuple"
		w.events[c] = ev
		return nil
	}
	ev.Status = "grounded"
	ev.SetSize = len(set)
	w.events[c] = ev
	w.cands[c] = &Candidate{Set: sortedCopy(set), subst: s, binding: bind}
	return nil
}
