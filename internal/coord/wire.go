package coord

import "errors"

// Stable machine-readable codes for the package's sentinel errors. The
// HTTP wire format (internal/api) transports errors as {code, message}
// pairs, and clients reconstruct the sentinel from the code, so
// errors.Is works identically on both sides of the network. Codes are
// part of the public wire contract: renaming one is a breaking change.
const (
	// CodeUnsafe names ErrUnsafe: a batch algorithm requiring safety
	// was given an unsafe set.
	CodeUnsafe = "unsafe_set"
	// CodeNotUnique names ErrNotUnique: the Gupta baseline was given a
	// non-unique set.
	CodeNotUnique = "not_unique"
	// CodeUnsafeArrival names ErrUnsafeArrival: admitting the arriving
	// query would make a streaming session's set unsafe.
	CodeUnsafeArrival = "unsafe_arrival"
	// CodeNoQuery names ErrNoQuery: a departure targeted a slot with no
	// live query.
	CodeNoQuery = "no_query"
	// CodeTooManyQueries names ErrTooManyQueries: the brute-force
	// oracles refuse sets larger than MaxBruteQueries.
	CodeTooManyQueries = "too_many_queries"
)

// Code returns the stable code of the sentinel error err wraps, or ""
// when err is nil or wraps no coord sentinel. ErrUnsafeArrival is
// checked before ErrUnsafe so wrapped arrival rejections keep their
// more specific code.
func Code(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrUnsafeArrival):
		return CodeUnsafeArrival
	case errors.Is(err, ErrTooManyQueries):
		return CodeTooManyQueries
	case errors.Is(err, ErrNoQuery):
		return CodeNoQuery
	case errors.Is(err, ErrNotUnique):
		return CodeNotUnique
	case errors.Is(err, ErrUnsafe):
		return CodeUnsafe
	}
	return ""
}

// FromCode returns the sentinel error a code names, or nil for a code
// this package does not define. It is the decoding half of Code: for
// every coord sentinel e, errors.Is(FromCode(Code(e)), e) holds.
func FromCode(code string) error {
	switch code {
	case CodeUnsafe:
		return ErrUnsafe
	case CodeNotUnique:
		return ErrNotUnique
	case CodeUnsafeArrival:
		return ErrUnsafeArrival
	case CodeNoQuery:
		return ErrNoQuery
	case CodeTooManyQueries:
		return ErrTooManyQueries
	}
	return nil
}
