// Package coord implements the paper's coordination algorithms over
// entangled queries: coordination-graph construction, the safety and
// uniqueness properties (§2.3), the Gupta et al. baseline for safe and
// unique sets, the SCC Coordination Algorithm (§4), a solver for
// single-connected sets (Theorem 3), an exact brute-force solver used as
// a testing oracle, and the Definition-1 verifier.
package coord

import (
	"sort"
	"strconv"

	"entangled/internal/eq"
	"entangled/internal/graph"
)

// ExtendedEdge is one edge of the extended coordination graph: the
// PostIdx-th postcondition atom of query FromQ unifies with the
// HeadIdx-th head atom of query ToQ (indices into the query slice).
type ExtendedEdge struct {
	FromQ, PostIdx int
	ToQ, HeadIdx   int
}

// ExtendedGraph computes all edges of the extended coordination graph of
// qs: one edge per unifiable (postcondition atom, head atom) pair,
// including pairs within a single query. Edges come back in the
// canonical (FromQ, PostIdx, ToQ, HeadIdx) order.
//
// The computation is the batch special case of IncrementalGraph — add
// every query, read the edges once — so the streaming sessions that
// grow the graph one arrival at a time and this one-shot path share a
// single code path and produce identical edge lists. Head and post
// atoms are bucketed by relation and by the constant in their first
// argument, so a postcondition with a constant first argument (the
// common "R(User, x)" pattern) only probes the handful of heads that
// could match instead of all of them; Figure 6's graph-construction
// sweep relies on this being near-linear in practice.
func ExtendedGraph(qs []eq.Query) []ExtendedEdge {
	g := NewIncrementalGraph()
	for _, q := range qs {
		g.Add(q)
	}
	return g.Edges()
}

// CoordinationGraph collapses the extended graph's parallel edges into
// the coordination graph: node per query, edge i -> j when some
// postcondition of query i unifies with some head of query j.
func CoordinationGraph(qs []eq.Query) *graph.Digraph {
	return coordinationGraph(len(qs), ExtendedGraph(qs))
}

func coordinationGraph(n int, edges []ExtendedEdge) *graph.Digraph {
	g := graph.New(n)
	for _, e := range edges {
		g.AddEdge(e.FromQ, e.ToQ)
	}
	return g
}

// UnsafeQueries returns the indices of queries that are unsafe in qs: a
// query is unsafe if one of its postcondition atoms unifies with more
// than one head atom appearing in the set (Definition 2).
func UnsafeQueries(qs []eq.Query) []int {
	return unsafeIn(len(qs), ExtendedGraph(qs))
}

func unsafeIn(n int, edges []ExtendedEdge) []int {
	fanout := map[[2]int]int{} // (query, post index) -> number of unifiable heads
	for _, e := range edges {
		fanout[[2]int{e.FromQ, e.PostIdx}]++
	}
	bad := map[int]bool{}
	for k, c := range fanout {
		if c > 1 {
			bad[k[0]] = true
		}
	}
	var out []int
	for i := range bad {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// IsSafe reports whether the whole set is safe (no unsafe query).
func IsSafe(qs []eq.Query) bool { return len(UnsafeQueries(qs)) == 0 }

// IsUnique reports whether a safe set is unique: its coordination graph
// has a directed path between every two vertices (Definition 3), i.e. it
// is strongly connected.
func IsUnique(qs []eq.Query) bool {
	return CoordinationGraph(qs).StronglyConnected()
}

// renameAll returns copies of qs with disjoint variable namespaces:
// query i's variables are prefixed "q<i>.".
func renameAll(qs []eq.Query) []eq.Query {
	out := make([]eq.Query, len(qs))
	for i, q := range qs {
		out[i] = q.Rename(varPrefix(i))
	}
	return out
}

func varPrefix(i int) string {
	return "q" + strconv.Itoa(i) + "."
}
