package coord

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"strconv"
	"testing"

	"entangled/internal/eq"
)

// TestResultJSONGolden pins the canonical Result encoding byte for
// byte: the HTTP wire format depends on it, so a change here is a
// breaking protocol change.
func TestResultJSONGolden(t *testing.T) {
	r := Result{
		Set: []int{0, 2},
		Values: map[int]map[string]eq.Value{
			0: {"x": "c1"},
			2: {"x": "c1", "y": "t0"},
		},
		DBQueries: 7,
	}
	got, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"set":[0,2],"values":{"0":{"x":"c1"},"2":{"x":"c1","y":"t0"}},"db_queries":7}`
	if string(got) != want {
		t.Fatalf("result encoding drifted:\ngot  %s\nwant %s", got, want)
	}
	var back Result
	if err := json.Unmarshal(got, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, r) {
		t.Fatalf("round trip changed the result:\ngot  %+v\nwant %+v", back, r)
	}
}

// TestResultJSONRejectsBadKeys checks the decoder refuses non-integer
// value keys instead of silently dropping assignments.
func TestResultJSONRejectsBadKeys(t *testing.T) {
	var r Result
	if err := json.Unmarshal([]byte(`{"set":[0],"values":{"zero":{"x":"v"}},"db_queries":1}`), &r); err == nil {
		t.Fatal("non-integer values key accepted")
	}
}

// TestDeltaStatsAndTraceJSONGolden pins the DeltaStats and Trace wire
// encodings.
func TestDeltaStatsAndTraceJSONGolden(t *testing.T) {
	d := DeltaStats{Slot: 3, Components: 4, Dirty: 1, Reused: 3, DBQueries: 2}
	got, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"slot":3,"components":4,"dirty":1,"reused":3,"db_queries":2}`
	if string(got) != want {
		t.Fatalf("delta encoding drifted:\ngot  %s\nwant %s", got, want)
	}

	tr := Trace{
		Pruned: []PruneEvent{{Query: 1, Reason: "unsatisfiable body"}},
		Components: []ComponentEvent{
			{Members: []int{0}, Status: "grounded", Set: []int{0}, SetSize: 1, Combined: "T(q0.x, 'c0')"},
			{Members: []int{2}, Status: "successor failed"},
		},
	}
	gotTr, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	wantTr := `{"pruned":[{"query":1,"reason":"unsatisfiable body"}],` +
		`"components":[{"members":[0],"set":[0],"status":"grounded","set_size":1,"combined":"T(q0.x, 'c0')"},` +
		`{"members":[2],"status":"successor failed"}]}`
	if string(gotTr) != wantTr {
		t.Fatalf("trace encoding drifted:\ngot  %s\nwant %s", gotTr, wantTr)
	}
	var back Trace
	if err := json.Unmarshal(gotTr, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, tr) {
		t.Fatalf("trace round trip changed:\ngot  %+v\nwant %+v", back, tr)
	}
}

// TestResultJSONRoundTripProperty round-trips randomly generated
// results: decode(encode(x)) == x for any shape the algorithms can
// produce (including nil values maps and empty sets).
func TestResultJSONRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		r := Result{DBQueries: int64(rng.Intn(1000))}
		n := rng.Intn(6)
		if n > 0 {
			r.Values = map[int]map[string]eq.Value{}
			for j := 0; j < n; j++ {
				qi := rng.Intn(32)
				r.Set = append(r.Set, qi)
				m := map[string]eq.Value{}
				for v := 0; v < rng.Intn(4); v++ {
					m["v"+strconv.Itoa(v)] = eq.Value("c" + strconv.Itoa(rng.Intn(9)))
				}
				r.Values[qi] = m
			}
		}
		buf, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		var back Result
		if err := json.Unmarshal(buf, &back); err != nil {
			t.Fatal(err)
		}
		// Compare via re-encoding: nil-vs-empty distinctions that the
		// wire cannot express must not fail the property.
		buf2, err := json.Marshal(back)
		if err != nil {
			t.Fatal(err)
		}
		if string(buf) != string(buf2) {
			t.Fatalf("round trip not stable:\nfirst  %s\nsecond %s", buf, buf2)
		}
	}
}

// TestErrorCodes checks the code taxonomy is total over the package's
// sentinels and inverts through FromCode.
func TestErrorCodes(t *testing.T) {
	sentinels := []error{ErrUnsafe, ErrNotUnique, ErrUnsafeArrival, ErrNoQuery, ErrTooManyQueries}
	seen := map[string]bool{}
	for _, s := range sentinels {
		code := Code(s)
		if code == "" {
			t.Fatalf("sentinel %v has no code", s)
		}
		if seen[code] {
			t.Fatalf("code %s names two sentinels", code)
		}
		seen[code] = true
		back := FromCode(code)
		if back == nil || !reflect.DeepEqual(back, s) {
			t.Fatalf("FromCode(%s) = %v, want %v", code, back, s)
		}
	}
	if Code(nil) != "" {
		t.Fatal("nil error got a code")
	}
	if FromCode("no_such_code") != nil {
		t.Fatal("unknown code produced a sentinel")
	}
}
