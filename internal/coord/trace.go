package coord

import (
	"fmt"
	"io"
	"strings"

	"entangled/internal/db"
	"entangled/internal/eq"
	"entangled/internal/graph"
	"entangled/internal/unify"
)

// Trace records the steps the SCC Coordination Algorithm took, for
// debugging and for coordctl's -explain flag. Populate it by passing a
// non-nil Options.Trace to SCCCoordinate.
// The JSON tags define the trace's wire encoding (internal/api): a
// decoded trace is field-for-field equal to the one the server
// rendered, so over-the-wire traces compare byte-for-byte against
// local batch runs.
type Trace struct {
	// Pruned lists queries removed by the §6.1 preprocessing, with the
	// reason ("body" or "postcondition").
	Pruned []PruneEvent `json:"pruned,omitempty"`
	// Components holds one event per strongly connected component, in
	// the order processed (reverse topological).
	Components []ComponentEvent `json:"components,omitempty"`
}

// PruneEvent is one preprocessing removal.
type PruneEvent struct {
	Query  int    `json:"query"`
	Reason string `json:"reason"` // "unsatisfiable body" or "unsatisfiable postcondition"
}

// ComponentEvent is the outcome of processing one component.
type ComponentEvent struct {
	Members  []int  `json:"members"`            // queries in this component
	Set      []int  `json:"set,omitempty"`      // R(q): the full candidate set (members + reachable)
	Status   string `json:"status"`             // "grounded", "unification failed", "no tuple", "successor failed", "pruned"
	SetSize  int    `json:"set_size,omitempty"` // len(Set) when grounded
	Combined string `json:"combined,omitempty"` // the combined conjunctive query sent to the database (when any)
}

// WriteTo renders the trace as indented text, naming queries by ID.
func (t *Trace) Render(w io.Writer, qs []eq.Query) error {
	var sb strings.Builder
	if len(t.Pruned) > 0 {
		sb.WriteString("pruned during preprocessing:\n")
		for _, p := range t.Pruned {
			fmt.Fprintf(&sb, "  %s: %s\n", qs[p.Query].ID, p.Reason)
		}
	}
	fmt.Fprintf(&sb, "components processed (reverse topological order):\n")
	for i, c := range t.Components {
		ids := make([]string, len(c.Members))
		for j, m := range c.Members {
			ids[j] = qs[m].ID
		}
		fmt.Fprintf(&sb, "  %d. {%s}: %s", i+1, strings.Join(ids, ", "), c.Status)
		if c.Status == "grounded" {
			fmt.Fprintf(&sb, " (candidate set of %d)", c.SetSize)
		}
		sb.WriteString("\n")
		if c.Combined != "" {
			fmt.Fprintf(&sb, "     query: %s\n", c.Combined)
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// sccSetup is the state shared by the sequential and parallel component
// walks: the extended graph, alpha-renamed queries, pruning outcome and
// the condensation of the coordination graph with its processing order.
type sccSetup struct {
	edges   []ExtendedEdge
	renamed []eq.Query
	alive   []bool
	dag     *graph.Digraph
	members [][]int
	order   []int // component ids, reverse topological
}

// prepareSCC runs everything up to the per-component searches: safety
// check, alpha renaming, §6.1 pruning, condensation and topological
// ordering.
func prepareSCC(qs []eq.Query, store db.Store, opts Options) (*sccSetup, error) {
	tr := opts.Trace
	edges := ExtendedGraph(qs)
	if !opts.SkipSafetyCheck {
		if bad := unsafeIn(len(qs), edges); len(bad) > 0 {
			return nil, fmt.Errorf("%w: unsafe queries %v", ErrUnsafe, bad)
		}
	}
	renamed := renameAll(qs)

	alive := make([]bool, len(qs))
	for i := range alive {
		alive[i] = true
	}
	if !opts.SkipPruning {
		if err := pruneTraced(renamed, edges, store, alive, tr); err != nil {
			return nil, err
		}
	}

	g := graph.New(len(qs))
	for _, e := range edges {
		if alive[e.FromQ] && alive[e.ToQ] {
			g.AddEdge(e.FromQ, e.ToQ)
		}
	}
	dag, _, members := g.Condense()

	order, err := dag.TopoOrder()
	if err != nil {
		return nil, err // cannot happen: condensation is a DAG
	}
	reverse(order)
	return &sccSetup{edges: edges, renamed: renamed, alive: alive, dag: dag, members: members, order: order}, nil
}

// runSCC executes the SCC Coordination Algorithm and returns every
// grounded candidate (the family {R(q)}), in processing order.
// SCCCoordinate applies the selector to pick one; AllCandidates exposes
// the whole family.
func runSCC(qs []eq.Query, store db.Store, opts Options) ([]Candidate, error) {
	if len(qs) == 0 {
		return nil, nil
	}
	if opts.Parallelism > 1 {
		return runSCCParallel(qs, store, opts)
	}
	tr := opts.Trace
	st, err := prepareSCC(qs, store, opts)
	if err != nil {
		return nil, err
	}
	edges, renamed, alive := st.edges, st.renamed, st.alive
	dag, members, order := st.dag, st.members, st.order

	nc := dag.N()
	reach := make([][]bool, nc)
	failed := make([]bool, nc)
	compSubst := make([]*unify.Subst, nc) // incremental mode: per-component MGU
	inSet := make([]bool, len(qs))        // scratch, cleared after each component
	var cands []Candidate

	for _, c := range order {
		ev := ComponentEvent{Members: append([]int(nil), members[c]...)}
		if !alive[members[c][0]] {
			failed[c] = true
			if tr != nil {
				ev.Status = "pruned"
				tr.Components = append(tr.Components, ev)
			}
			continue
		}
		r := make([]bool, nc)
		r[c] = true
		ok := true
		for _, succ := range dag.Succ(c) {
			if failed[succ] {
				ok = false
				break
			}
			for i, b := range reach[succ] {
				if b {
					r[i] = true
				}
			}
		}
		reach[c] = r
		if !ok {
			failed[c] = true
			if tr != nil {
				ev.Status = "successor failed"
				tr.Components = append(tr.Components, ev)
			}
			continue
		}

		var set []int
		for cc := 0; cc < nc; cc++ {
			if r[cc] {
				set = append(set, members[cc]...)
			}
		}
		for _, i := range set {
			inSet[i] = true
		}
		// Pre-size the forest: the reachable set's queries contribute a
		// handful of renamed variables each.
		s := unify.NewSized(2*len(set) + 4)
		unifyOK := true
		if opts.IncrementalUnify {
			// The paper's implementation: reuse each successor's combined
			// MGU and only unify this component's own postconditions.
			for _, succ := range dag.Succ(c) {
				if err := s.MergeFrom(compSubst[succ]); err != nil {
					unifyOK = false
					break
				}
			}
			if unifyOK {
				inComp := make(map[int]bool, len(members[c]))
				for _, i := range members[c] {
					inComp[i] = true
				}
				for _, e := range edges {
					if !inComp[e.FromQ] || !inSet[e.ToQ] {
						continue
					}
					p := renamed[e.FromQ].Post[e.PostIdx]
					h := renamed[e.ToQ].Head[e.HeadIdx]
					if err := s.UnifyAtoms(p, h); err != nil {
						unifyOK = false
						break
					}
				}
			}
		} else {
			// Recompute the MGU of the whole reachable set from scratch.
			for _, e := range edges {
				if !inSet[e.FromQ] || !inSet[e.ToQ] {
					continue
				}
				p := renamed[e.FromQ].Post[e.PostIdx]
				h := renamed[e.ToQ].Head[e.HeadIdx]
				if err := s.UnifyAtoms(p, h); err != nil {
					unifyOK = false
					break
				}
			}
		}
		for _, i := range set {
			inSet[i] = false // inSet is only read by the unify loops above
		}
		if !unifyOK {
			failed[c] = true
			if tr != nil {
				ev.Status = "unification failed"
				ev.Set = sortedCopy(set)
				tr.Components = append(tr.Components, ev)
			}
			continue
		}

		compSubst[c] = s

		nAtoms := 0
		for _, i := range set {
			nAtoms += len(renamed[i].Body)
		}
		body := make([]eq.Atom, 0, nAtoms)
		for _, i := range set {
			body = append(body, renamed[i].Body...)
		}
		bind, found, err := store.SolveUnder(body, s)
		if err != nil {
			return nil, err
		}
		if tr != nil {
			ev.Set = sortedCopy(set)
			ev.Combined = renderCombined(s.ApplyAll(body))
		}
		if !found {
			failed[c] = true
			if tr != nil {
				ev.Status = "no tuple"
				tr.Components = append(tr.Components, ev)
			}
			continue
		}
		if tr != nil {
			ev.Status = "grounded"
			ev.SetSize = len(set)
			tr.Components = append(tr.Components, ev)
		}
		cands = append(cands, Candidate{Set: sortedCopy(set), subst: s, binding: bind})
	}

	return cands, nil
}

// pruneTraced is prune with event recording.
func pruneTraced(renamed []eq.Query, edges []ExtendedEdge, store db.Store, alive []bool, tr *Trace) error {
	for i, q := range renamed {
		sat, err := store.Satisfiable(q.Body)
		if err != nil {
			return err
		}
		if !sat {
			alive[i] = false
			if tr != nil {
				tr.Pruned = append(tr.Pruned, PruneEvent{Query: i, Reason: "unsatisfiable body"})
			}
		}
	}
	for {
		changed := false
		providers := map[[2]int]int{}
		for _, e := range edges {
			if alive[e.FromQ] && alive[e.ToQ] {
				providers[[2]int{e.FromQ, e.PostIdx}]++
			}
		}
		for i, q := range renamed {
			if !alive[i] {
				continue
			}
			for pi := range q.Post {
				if providers[[2]int{i, pi}] == 0 {
					alive[i] = false
					changed = true
					if tr != nil {
						tr.Pruned = append(tr.Pruned, PruneEvent{Query: i, Reason: "unsatisfiable postcondition"})
					}
					break
				}
			}
		}
		if !changed {
			return nil
		}
	}
}

func renderCombined(body []eq.Atom) string {
	parts := make([]string, len(body))
	for i, a := range body {
		parts[i] = a.String()
	}
	return strings.Join(parts, ", ")
}
