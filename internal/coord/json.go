package coord

import (
	"encoding/json"
	"fmt"
	"strconv"

	"entangled/internal/eq"
)

// The canonical JSON encoding of a Result. Values is keyed by query
// index, and JSON object keys are strings, so indices are rendered in
// decimal; encoding/json sorts object keys, which makes the encoding
// deterministic — golden tests and the HTTP wire format rely on that.
type resultJSON struct {
	Set       []int                          `json:"set"`
	Values    map[string]map[string]eq.Value `json:"values,omitempty"`
	DBQueries int64                          `json:"db_queries"`
}

// MarshalJSON encodes the result as
// {"set": [...], "values": {"<index>": {"<var>": "<value>"}}, "db_queries": N}.
func (r Result) MarshalJSON() ([]byte, error) {
	w := resultJSON{Set: r.Set, DBQueries: r.DBQueries}
	if r.Values != nil {
		w.Values = make(map[string]map[string]eq.Value, len(r.Values))
		for qi, m := range r.Values {
			w.Values[strconv.Itoa(qi)] = m
		}
	}
	return json.Marshal(w)
}

// UnmarshalJSON decodes the canonical result encoding.
func (r *Result) UnmarshalJSON(data []byte) error {
	var w resultJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	r.Set = w.Set
	r.DBQueries = w.DBQueries
	r.Values = nil
	if w.Values != nil {
		r.Values = make(map[int]map[string]eq.Value, len(w.Values))
		for k, m := range w.Values {
			qi, err := strconv.Atoi(k)
			if err != nil {
				return fmt.Errorf("coord: result values key %q is not a query index", k)
			}
			r.Values[qi] = m
		}
	}
	return nil
}
