package coord

import (
	"errors"
	"fmt"
	"sort"

	"entangled/internal/db"
	"entangled/internal/eq"
	"entangled/internal/unify"
)

// ErrUnsafe is returned when an algorithm that requires safety is given
// an unsafe query set.
var ErrUnsafe = errors.New("coord: query set is not safe")

// ErrNotUnique is returned by the Gupta baseline on non-unique input.
var ErrNotUnique = errors.New("coord: query set is not unique")

// Candidate is one coordinating set discovered by the SCC algorithm: the
// set R(q) of all queries reachable from some query q, together with its
// witnessing state.
type Candidate struct {
	Set     []int // sorted query indices
	subst   *unify.Subst
	binding db.Binding
}

// Selector chooses which discovered candidate to return. It receives a
// non-empty candidate list and returns the index of the winner.
type Selector func(cands []Candidate) int

// MaxSize is the default selector: the candidate covering the most
// queries, first one on ties.
func MaxSize(cands []Candidate) int {
	best := 0
	for i, c := range cands {
		if len(c.Set) > len(cands[best].Set) {
			best = i
		}
	}
	return best
}

// PreferQuery returns a selector that picks the largest candidate
// containing query qi (the paper's "VIP client" criterion), falling back
// to MaxSize when no candidate contains it.
func PreferQuery(qi int) Selector {
	return func(cands []Candidate) int {
		best := -1
		for i, c := range cands {
			for _, q := range c.Set {
				if q == qi {
					if best < 0 || len(c.Set) > len(cands[best].Set) {
						best = i
					}
					break
				}
			}
		}
		if best < 0 {
			return MaxSize(cands)
		}
		return best
	}
}

// Options configures SCCCoordinate.
type Options struct {
	// Select picks among the discovered coordinating sets; nil means
	// MaxSize.
	Select Selector
	// SkipPruning disables the §6.1 preprocessing step that removes
	// queries with unsatisfiable bodies or unsatisfiable postconditions
	// before graph condensation. Used by the ablation benchmarks; the
	// algorithm remains correct either way.
	SkipPruning bool
	// SkipSafetyCheck trusts the caller that qs is safe. The safety
	// check is quadratic in the query-set size, and workload generators
	// construct safe sets by design.
	SkipSafetyCheck bool
	// Trace, when non-nil, receives a step-by-step record of the run
	// (pruning events and per-component outcomes); see coord.Trace.
	Trace *Trace
	// IncrementalUnify reuses each successor component's accumulated
	// MGU instead of recomputing the reachable set's unifier from
	// scratch — the strategy §6.1 describes for the paper's
	// implementation ("unifies the queries corresponding to that node
	// with the combined queries that resulted from its successors").
	// Results are identical either way; the ablation benchmark compares
	// cost.
	IncrementalUnify bool
	// Parallelism is the number of worker goroutines used to process
	// independent strongly connected components concurrently (the
	// component DAG bounds the available parallelism: a component runs
	// once all its successors have). Values <= 1 select the sequential
	// path. The candidate family, its order, and any Trace are identical
	// to a sequential run. The parallel path always recomputes each
	// component's MGU from scratch (substitutions are union-find
	// structures that mutate on read, so successors' MGUs cannot be
	// shared across goroutines); IncrementalUnify is ignored.
	Parallelism int
}

// SCCCoordinate runs the SCC Coordination Algorithm of §4 on a safe (but
// not necessarily unique) set of entangled queries. It returns the
// selected coordinating set, or nil if none exists. The input set must
// be safe; ErrUnsafe is returned otherwise.
//
// The algorithm: build the coordination graph, condense it into its DAG
// of strongly connected components, walk components in reverse
// topological order, and for each component unify its queries with the
// combined queries of its successors and ground the combination with a
// single database query. Every component that grounds successfully
// yields the candidate set R(q) of all queries reachable from it; the
// selector picks among candidates (maximum size by default).
//
// The implementation lives in runSCC (trace.go) so that a single code
// path serves plain, traced and candidate-enumerating runs.
//
// The store may be shared with concurrent requests: every query this
// run issues is counted on a private db.Meter, so Result.DBQueries is
// exact for this run alone regardless of concurrent traffic.
func SCCCoordinate(qs []eq.Query, store db.Store, opts Options) (*Result, error) {
	m := db.NewMeter(store)
	cands, err := runSCC(qs, m, opts)
	if err != nil || len(cands) == 0 {
		return nil, err
	}
	sel := opts.Select
	if sel == nil {
		sel = MaxSize
	}
	win := cands[sel(cands)]
	return finishResult(qs, win.Set, win.subst, win.binding, m)
}

// CandidateSet is one member of the candidate family {R(q)} with its
// witnessing assignment, as returned by AllCandidates.
type CandidateSet struct {
	Set    []int
	Values map[int]map[string]eq.Value
}

// AllCandidates runs the SCC Coordination Algorithm and returns every
// coordinating set it discovers — the grounded members of the family
// {R(q) | q in Q} — sorted largest first. Callers with bespoke
// selection criteria (the paper mentions gold-status passengers and VIP
// clients) can choose among them directly.
func AllCandidates(qs []eq.Query, store db.Store, opts Options) ([]CandidateSet, error) {
	m := db.NewMeter(store)
	cands, err := runSCC(qs, m, opts)
	if err != nil {
		return nil, err
	}
	out := make([]CandidateSet, 0, len(cands))
	for _, c := range cands {
		fallback, err := pickFallback(qs, c.Set, c.subst, c.binding, m)
		if err != nil {
			return nil, err
		}
		out = append(out, CandidateSet{
			Set:    c.Set,
			Values: extractValues(qs, c.Set, c.subst, c.binding, fallback),
		})
	}
	sort.SliceStable(out, func(i, j int) bool { return len(out[i].Set) > len(out[j].Set) })
	return out, nil
}

// finishResult turns internal state into a verified-shape Result. The
// meter is the one every query of the run went through; its count is
// the run's exact DBQueries.
func finishResult(qs []eq.Query, set []int, s *unify.Subst, bind db.Binding, m *db.Meter) (*Result, error) {
	fallback, err := pickFallback(qs, set, s, bind, m)
	if err != nil {
		return nil, err
	}
	values := extractValues(qs, set, s, bind, fallback)
	return &Result{
		Set:       set,
		Values:    values,
		DBQueries: m.Count(),
	}, nil
}

// pickFallback chooses a domain value for variables left free by both
// unification and grounding. If no such variable exists the fallback is
// never used; if one exists but the domain is empty, no assignment is
// possible (Definition 1 draws values from the instance domain).
func pickFallback(qs []eq.Query, set []int, s *unify.Subst, bind db.Binding, store db.Store) (eq.Value, error) {
	free := false
	for _, qi := range set {
		for _, v := range qs[qi].Vars() {
			t := s.Resolve(eq.V(varPrefix(qi) + v))
			if t.IsVar() {
				if _, ok := bind[t.Name]; !ok {
					free = true
				}
			}
		}
	}
	if !free {
		return "", nil
	}
	dom := store.Domain()
	if len(dom) == 0 {
		return "", fmt.Errorf("coord: free variables but empty database domain")
	}
	return dom[0], nil
}

// GuptaCoordinate is the baseline algorithm of Gupta et al. (SIGMOD
// 2011): it requires the set to be both safe and unique, computes the
// most general unifier of all the queries' postcondition/head
// constraints, and issues a single combined conjunctive query. It
// returns the full set as the coordinating set, or nil when the combined
// query cannot be grounded.
func GuptaCoordinate(qs []eq.Query, store db.Store) (*Result, error) {
	if len(qs) == 0 {
		return nil, nil
	}
	edges := ExtendedGraph(qs)
	if bad := unsafeIn(len(qs), edges); len(bad) > 0 {
		return nil, fmt.Errorf("%w: unsafe queries %v", ErrUnsafe, bad)
	}
	if !coordinationGraph(len(qs), edges).StronglyConnected() {
		return nil, ErrNotUnique
	}
	// Uniqueness additionally demands that every postcondition has a
	// provider; a post with no unifiable head can never be satisfied.
	providers := map[[2]int]int{}
	for _, e := range edges {
		providers[[2]int{e.FromQ, e.PostIdx}]++
	}
	for i, q := range qs {
		for pi := range q.Post {
			if providers[[2]int{i, pi}] == 0 {
				return nil, nil
			}
		}
	}
	m := db.NewMeter(store)
	renamed := renameAll(qs)
	s := unify.New()
	for _, e := range edges {
		p := renamed[e.FromQ].Post[e.PostIdx]
		h := renamed[e.ToQ].Head[e.HeadIdx]
		if err := s.UnifyAtoms(p, h); err != nil {
			return nil, nil // unification failure: no coordinating set
		}
	}
	var body []eq.Atom
	set := make([]int, len(qs))
	for i := range qs {
		set[i] = i
		body = append(body, renamed[i].Body...)
	}
	bind, found, err := m.SolveUnder(body, s)
	if err != nil {
		return nil, err
	}
	if !found {
		return nil, nil
	}
	return finishResult(qs, set, s, bind, m)
}

func reverse(xs []int) {
	for i, j := 0, len(xs)-1; i < j; i, j = i+1, j-1 {
		xs[i], xs[j] = xs[j], xs[i]
	}
}
