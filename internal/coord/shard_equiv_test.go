package coord

import (
	"math/rand"
	"reflect"
	"testing"

	"entangled/internal/db"
	"entangled/internal/workload"
)

// shardedWorkloadInstance builds the same T(key, val) contents as
// newWorkloadInstance on a store hash-partitioned across k shards.
func shardedWorkloadInstance(k, rows int) *db.ShardedInstance {
	sh := db.NewShardedInstance(k)
	workload.UserTableSharded(sh, rows)
	return sh
}

// Property: any safe query set yields the same coordinating set
// (team), the same step-by-step trace and the same exact DBQueries
// count on ShardedInstance{K=1,2,8} as on a plain Instance holding the
// same tuples, and every returned witness verifies against every
// store. Only the witness values may differ (choose-1 answer
// enumeration order is the one thing sharding changes).
func TestShardedEquivalentToInstance(t *testing.T) {
	const rows = 12
	rng := rand.New(rand.NewSource(42))
	plain := newWorkloadInstance(rows)
	shards := map[int]*db.ShardedInstance{}
	for _, k := range []int{1, 2, 8} {
		shards[k] = shardedWorkloadInstance(k, rows)
	}
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(10)
		qs := workload.RandomSafeQueries(n, rows, 0.3, 0.7, rng)
		if !IsSafe(qs) {
			t.Fatalf("trial %d: generator produced unsafe set", trial)
		}
		var refTrace Trace
		ref, err := SCCCoordinate(qs, plain, Options{Trace: &refTrace})
		if err != nil {
			t.Fatalf("trial %d: plain: %v", trial, err)
		}
		for _, k := range []int{1, 2, 8} {
			var tr Trace
			got, err := SCCCoordinate(qs, shards[k], Options{Trace: &tr})
			if err != nil {
				t.Fatalf("trial %d k=%d: %v", trial, k, err)
			}
			if (ref == nil) != (got == nil) {
				t.Fatalf("trial %d k=%d: existence differs: plain=%v sharded=%v", trial, k, ref, got)
			}
			if !reflect.DeepEqual(refTrace, tr) {
				t.Fatalf("trial %d k=%d: traces differ:\nplain   %+v\nsharded %+v", trial, k, refTrace, tr)
			}
			if ref == nil {
				continue
			}
			if !reflect.DeepEqual(ref.Set, got.Set) {
				t.Fatalf("trial %d k=%d: teams differ: %v vs %v", trial, k, ref.Set, got.Set)
			}
			if ref.DBQueries != got.DBQueries {
				t.Fatalf("trial %d k=%d: DBQueries %d != %d", trial, k, ref.DBQueries, got.DBQueries)
			}
			// Witness values may legitimately differ; each must verify
			// on its own store and on the other one (same tuples).
			if err := Verify(qs, got.Set, got.Values, shards[k]); err != nil {
				t.Fatalf("trial %d k=%d: sharded witness fails on sharded store: %v", trial, k, err)
			}
			if err := Verify(qs, got.Set, got.Values, plain); err != nil {
				t.Fatalf("trial %d k=%d: sharded witness fails on plain store: %v", trial, k, err)
			}
			if err := Verify(qs, ref.Set, ref.Values, shards[k]); err != nil {
				t.Fatalf("trial %d k=%d: plain witness fails on sharded store: %v", trial, k, err)
			}
		}
	}
}

// The brute-force oracles must agree across stores too: existence and
// maximum size are order-independent.
func TestShardedBruteForceEquivalence(t *testing.T) {
	const rows = 8
	rng := rand.New(rand.NewSource(5))
	plain := newWorkloadInstance(rows)
	sh := shardedWorkloadInstance(4, rows)
	for trial := 0; trial < 15; trial++ {
		qs := workload.RandomSafeQueries(1+rng.Intn(7), rows, 0.3, 0.7, rng)
		wantEx, err := BruteForceExists(qs, plain)
		if err != nil {
			t.Fatal(err)
		}
		gotEx, err := BruteForceExists(qs, sh)
		if err != nil {
			t.Fatal(err)
		}
		if wantEx != gotEx {
			t.Fatalf("trial %d: exists %v != %v", trial, wantEx, gotEx)
		}
		want, err := BruteForceMax(qs, plain)
		if err != nil {
			t.Fatal(err)
		}
		got, err := BruteForceMax(qs, sh)
		if err != nil {
			t.Fatal(err)
		}
		if want.Size() != got.Size() {
			t.Fatalf("trial %d: max size %d != %d", trial, want.Size(), got.Size())
		}
		if want != nil && want.DBQueries != got.DBQueries {
			t.Fatalf("trial %d: DBQueries %d != %d", trial, want.DBQueries, got.DBQueries)
		}
		if got != nil {
			if err := Verify(qs, got.Set, got.Values, sh); err != nil {
				t.Fatalf("trial %d: sharded brute witness: %v", trial, err)
			}
		}
	}
}
