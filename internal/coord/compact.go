package coord

import (
	"fmt"

	"entangled/internal/db"
	"entangled/internal/eq"
)

// Tombstones returns the number of dead slots: queries that were
// admitted and have since departed (or failed mid-admission). Per-event
// graph work is proportional to total slots ever handed out, so a
// long-lived high-churn coordinator grows linearly in its history until
// Compact is called; stream.Session compacts automatically once this
// crosses its threshold.
func (inc *Incremental) Tombstones() int {
	n := 0
	for i := range inc.queries {
		if !inc.g.Live(i) {
			n++
		}
	}
	return n
}

// Compact renumbers the live queries into dense slots 0..len(live)-1,
// dropping every tombstone, so subsequent events cost O(live queries)
// instead of O(total slots ever). It returns the slot remapping (old
// slot -> new slot, -1 for dead slots) and the cost of re-establishing
// the coordination state.
//
// Renumbering changes every query's alpha-renaming prefix, so cached
// component outcomes (whose substitutions and signatures are expressed
// in old-slot variables) cannot be carried over: the next reconcile
// re-solves every component, at batch grounding cost. Cached
// body-satisfiability probes ARE carried over — they depend only on the
// query body and the store — so compaction issues no pruning probes.
// Compaction is amortised: triggered once tombstones exceed a
// threshold, its one-off batch-shaped cost is spread over the departures
// that created the garbage, exactly like a hash-table resize.
//
// A compacted coordinator is observably identical to a fresh one built
// from the live queries in slot order: same team, same witness values,
// same trace (the stream-vs-batch property tests run under aggressive
// compaction to pin this).
func (inc *Incremental) Compact() ([]int, DeltaStats, error) {
	remap := make([]int, len(inc.queries))
	live := make([]int, 0, len(inc.queries))
	for i := range inc.queries {
		if inc.g.Live(i) {
			remap[i] = len(live)
			live = append(live, i)
		} else {
			remap[i] = -1
		}
	}

	g := NewIncrementalGraph()
	newQueries := make([]eq.Query, 0, len(live))
	newRenamed := make([]eq.Query, 0, len(live))
	newSat := make([]bool, 0, len(live))
	for _, old := range live {
		q := inc.queries[old]
		slot, _ := g.Add(q)
		if slot != len(newQueries) {
			return nil, DeltaStats{}, fmt.Errorf("coord: compaction slot skew: got %d, want %d", slot, len(newQueries))
		}
		newQueries = append(newQueries, q)
		newRenamed = append(newRenamed, q.Rename(varPrefix(slot)))
		newSat = append(newSat, inc.bodySat[old])
	}
	inc.g = g
	inc.queries = newQueries
	inc.renamed = newRenamed
	inc.bodySat = newSat
	// Outcome signatures and substitutions are slot-addressed; a dense
	// renumbering invalidates all of them.
	inc.cache = map[string]*compOutcome{}

	m := db.NewMeter(inc.store)
	d, err := inc.reconcile(m)
	d.Slot = -1
	inc.last = d
	return remap, d, err
}
