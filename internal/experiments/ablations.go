package experiments

import (
	"math/rand"
	"time"

	"entangled/internal/consistent"
	"entangled/internal/coord"
	"entangled/internal/db"
	"entangled/internal/netgen"
	"entangled/internal/workload"
)

// AblationIndexes compares indexed against scan-only conjunctive
// evaluation on the list workload — the DESIGN.md ablation for the
// hash-index substrate. The x-axis is the number of queries; two series
// are returned (indexed, scan).
func AblationIndexes(cfg Config) []Series {
	cfg = cfg.withDefaults(seq(10, 50, 10))
	if cfg.TableRows == netgen.SlashdotSize {
		cfg.TableRows = 2000 // full scans over 82k rows take minutes
	}
	var out []Series
	for _, indexed := range []bool{true, false} {
		name := "Ablation: indexed evaluation"
		if !indexed {
			name = "Ablation: scan evaluation"
		}
		s := Series{Name: name, XLabel: "queries"}
		inst := db.NewInstance()
		inst.SimulatedLatency = cfg.Latency
		workload.UserTable(inst, cfg.TableRows)
		inst.UseIndexes = indexed
		for _, n := range cfg.Sizes {
			qs := workload.ListQueries(n, cfg.TableRows)
			p := timeSCC(inst, qs, cfg.Repeats, cfg.Parallel)
			p.X = n
			s.Points = append(s.Points, p)
		}
		out = append(out, s)
	}
	return out
}

// AblationPruning compares the §6.1 pre-pruning step against processing
// without it on workloads where a fraction of bodies are unsatisfiable.
func AblationPruning(cfg Config) []Series {
	cfg = cfg.withDefaults(seq(10, 50, 10))
	if cfg.TableRows == netgen.SlashdotSize {
		cfg.TableRows = 2000
	}
	var out []Series
	for _, skip := range []bool{false, true} {
		name := "Ablation: with pruning"
		if skip {
			name = "Ablation: without pruning"
		}
		s := Series{Name: name, XLabel: "queries"}
		inst := db.NewInstance()
		inst.SimulatedLatency = cfg.Latency
		workload.UserTable(inst, cfg.TableRows)
		for _, n := range cfg.Sizes {
			rng := rand.New(rand.NewSource(int64(n)))
			qs := workload.RandomSafeQueries(n, cfg.TableRows, 0.1, 0.5, rng)
			var p Point
			for r := 0; r < cfg.Repeats; r++ {
				inst.ResetCounters()
				start := time.Now()
				res, err := coord.SCCCoordinate(qs, inst, coord.Options{SkipPruning: skip, SkipSafetyCheck: true})
				if err != nil {
					panic(err)
				}
				p.Millis += float64(time.Since(start).Microseconds()) / 1000.0
				p.DBQueries += float64(inst.QueriesIssued())
				p.SetSize += float64(res.Size())
			}
			k := float64(cfg.Repeats)
			s.Points = append(s.Points, Point{X: n, Millis: p.Millis / k, DBQueries: p.DBQueries / k, SetSize: p.SetSize / k})
		}
		out = append(out, s)
	}
	return out
}

// AblationCleaning compares the queue-driven and full-sweep cleaning
// phases of the Consistent Coordination Algorithm on the Figure 8
// workload.
func AblationCleaning(cfg Config) []Series {
	cfg = cfg.withDefaults(seq(10, 50, 10))
	sch := workload.FlightSchema()
	var out []Series
	for _, sweep := range []bool{false, true} {
		name := "Ablation: queue cleaning"
		if sweep {
			name = "Ablation: sweep cleaning"
		}
		s := Series{Name: name, XLabel: "queries"}
		for _, users := range cfg.Sizes {
			inst := db.NewInstance()
			inst.SimulatedLatency = cfg.Latency
			workload.FlightsTable(inst, 100, 100)
			workload.CompleteFriends(inst, users)
			qs := workload.FlightQueries(users)
			var p Point
			for r := 0; r < cfg.Repeats; r++ {
				inst.ResetCounters()
				start := time.Now()
				res, err := consistent.Coordinate(sch, qs, inst, consistent.Options{SweepCleaning: sweep})
				if err != nil {
					panic(err)
				}
				p.Millis += float64(time.Since(start).Microseconds()) / 1000.0
				p.DBQueries += float64(inst.QueriesIssued())
				p.SetSize += float64(len(res.Members))
			}
			k := float64(cfg.Repeats)
			s.Points = append(s.Points, Point{X: users, Millis: p.Millis / k, DBQueries: p.DBQueries / k, SetSize: p.SetSize / k})
		}
		out = append(out, s)
	}
	return out
}

// Ablations runs every ablation sweep.
func Ablations(cfg Config) []Series {
	var out []Series
	out = append(out, AblationIndexes(cfg)...)
	out = append(out, AblationPruning(cfg)...)
	out = append(out, AblationCleaning(cfg)...)
	return out
}
