package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"entangled/internal/consistent"
	"entangled/internal/coord"
	"entangled/internal/db"
	"entangled/internal/eq"
	"entangled/internal/netgen"
	"entangled/internal/workload"
)

// Point is one x-axis position of a figure.
type Point struct {
	X         int     // figure-specific: #queries, table size, ...
	Millis    float64 // mean wall-clock processing time per run
	DBQueries float64 // mean number of database queries issued
	SetSize   float64 // mean size of the returned coordinating set
}

// Series is a reproduced figure.
type Series struct {
	Name   string
	XLabel string
	Points []Point
}

// Config tunes the sweeps; zero values select the paper's parameters.
type Config struct {
	// TableRows is the size of the queried table for Figures 4-6. The
	// paper uses the 82,168-row Slashdot table; tests use smaller ones.
	TableRows int
	// Seeds is the number of random graphs averaged per point in
	// Figures 5 and 6 (the paper uses 10).
	Seeds int
	// Repeats is the number of timed runs averaged per point.
	Repeats int
	// Sizes overrides the per-figure x-axis values.
	Sizes []int
	// Latency is an optional per-database-query delay simulating the
	// networked-SQL-server round trips of the paper's testbed (see
	// db.Instance.SimulatedLatency). Zero measures pure compute.
	Latency time.Duration
	// Parallel is the worker count for the SCC algorithm's
	// per-component searches (coord.Options.Parallelism); values <= 1
	// keep the sequential path of the paper's implementation.
	Parallel int
	// Shards hash-partitions the queried table across this many
	// db.Instance shards in the ParallelBatch sweep, so CoordinateMany
	// requests route to disjoint shard locks. Values <= 1 keep the
	// single shared instance.
	Shards int
}

func (c Config) withDefaults(sizes []int) Config {
	if c.TableRows == 0 {
		c.TableRows = netgen.SlashdotSize
	}
	if c.Seeds == 0 {
		c.Seeds = 10
	}
	if c.Repeats == 0 {
		c.Repeats = 3
	}
	if len(c.Sizes) == 0 {
		c.Sizes = sizes
	}
	return c
}

func seq(from, to, step int) []int {
	var out []int
	for x := from; x <= to; x += step {
		out = append(out, x)
	}
	return out
}

// Figure4 — SCC Coordination Algorithm processing time on the list
// structure: each of n queries coordinates with the next; the paper
// sweeps n up to 100 over the 82k-row Slashdot table.
func Figure4(cfg Config) Series {
	cfg = cfg.withDefaults(seq(10, 100, 10))
	s := Series{Name: "Figure 4: SCC algorithm, list structure", XLabel: "queries"}
	inst := db.NewInstance()
	inst.SimulatedLatency = cfg.Latency
	workload.UserTable(inst, cfg.TableRows)
	for _, n := range cfg.Sizes {
		qs := workload.ListQueries(n, cfg.TableRows)
		p := timeSCC(inst, qs, cfg.Repeats, cfg.Parallel)
		p.X = n
		s.Points = append(s.Points, p)
	}
	return s
}

// Figure5 — SCC Coordination Algorithm processing time on scale-free
// coordination structures, averaged over cfg.Seeds random
// Barabási–Albert graphs per size.
func Figure5(cfg Config) Series {
	cfg = cfg.withDefaults(seq(10, 100, 10))
	s := Series{Name: "Figure 5: SCC algorithm, scale-free structure", XLabel: "queries"}
	inst := db.NewInstance()
	inst.SimulatedLatency = cfg.Latency
	workload.UserTable(inst, cfg.TableRows)
	for _, n := range cfg.Sizes {
		var acc Point
		for seed := 0; seed < cfg.Seeds; seed++ {
			rng := rand.New(rand.NewSource(int64(1000*n + seed)))
			qs := workload.ScaleFreeQueries(n, 2, cfg.TableRows, rng)
			p := timeSCC(inst, qs, cfg.Repeats, cfg.Parallel)
			acc.Millis += p.Millis
			acc.DBQueries += p.DBQueries
			acc.SetSize += p.SetSize
		}
		k := float64(cfg.Seeds)
		s.Points = append(s.Points, Point{X: n, Millis: acc.Millis / k, DBQueries: acc.DBQueries / k, SetSize: acc.SetSize / k})
	}
	return s
}

// Figure6 — graph construction and preprocessing time only, on
// scale-free structures of 100 to 1000 queries (no database work).
func Figure6(cfg Config) Series {
	cfg = cfg.withDefaults(seq(100, 1000, 100))
	s := Series{Name: "Figure 6: graph processing time, scale-free structure", XLabel: "queries"}
	for _, n := range cfg.Sizes {
		var total float64
		for seed := 0; seed < cfg.Seeds; seed++ {
			rng := rand.New(rand.NewSource(int64(1000*n + seed)))
			qs := workload.ScaleFreeQueries(n, 2, 100, rng)
			start := time.Now()
			for r := 0; r < cfg.Repeats; r++ {
				_ = coord.Preprocess(qs)
			}
			total += float64(time.Since(start).Microseconds()) / 1000.0 / float64(cfg.Repeats)
		}
		s.Points = append(s.Points, Point{X: n, Millis: total / float64(cfg.Seeds)})
	}
	return s
}

// Figure7 — Consistent Coordination Algorithm processing time as a
// function of the number of possible coordination-attribute values: 50
// all-wildcard queries over a complete friendship graph against Flights
// tables of 100 to 1000 unique flights.
func Figure7(cfg Config) Series {
	cfg = cfg.withDefaults(seq(100, 1000, 100))
	const users = 50
	s := Series{Name: "Figure 7: consistent algorithm vs possible values", XLabel: "flights (= values)"}
	for _, rows := range cfg.Sizes {
		inst := db.NewInstance()
		inst.SimulatedLatency = cfg.Latency
		workload.FlightsTable(inst, rows, rows)
		workload.CompleteFriends(inst, users)
		qs := workload.FlightQueries(users)
		p := timeConsistent(inst, qs, cfg.Repeats)
		p.X = rows
		s.Points = append(s.Points, p)
	}
	return s
}

// Figure8 — Consistent Coordination Algorithm processing time as a
// function of the number of queries: a 100-row Flights table with 100
// distinct (dest, day) pairs, sweeping 10 to 100 users.
func Figure8(cfg Config) Series {
	cfg = cfg.withDefaults(seq(10, 100, 10))
	s := Series{Name: "Figure 8: consistent algorithm vs queries", XLabel: "queries"}
	for _, users := range cfg.Sizes {
		inst := db.NewInstance()
		inst.SimulatedLatency = cfg.Latency
		workload.FlightsTable(inst, 100, 100)
		workload.CompleteFriends(inst, users)
		qs := workload.FlightQueries(users)
		p := timeConsistent(inst, qs, cfg.Repeats)
		p.X = users
		s.Points = append(s.Points, p)
	}
	return s
}

// All runs every figure.
func All(cfg Config) []Series {
	return []Series{Figure4(cfg), Figure5(cfg), Figure6(cfg), Figure7(cfg), Figure8(cfg)}
}

func timeSCC(inst *db.Instance, qs []eq.Query, repeats, parallel int) Point {
	var p Point
	for r := 0; r < repeats; r++ {
		inst.ResetCounters()
		start := time.Now()
		res, err := coord.SCCCoordinate(qs, inst, coord.Options{SkipSafetyCheck: true, Parallelism: parallel})
		elapsed := time.Since(start)
		if err != nil {
			panic(err) // generated workloads are always safe
		}
		p.Millis += float64(elapsed.Microseconds()) / 1000.0
		p.DBQueries += float64(inst.QueriesIssued())
		p.SetSize += float64(res.Size())
	}
	k := float64(repeats)
	p.Millis /= k
	p.DBQueries /= k
	p.SetSize /= k
	return p
}

func timeConsistent(inst *db.Instance, qs []consistent.Query, repeats int) Point {
	sch := workload.FlightSchema()
	var p Point
	for r := 0; r < repeats; r++ {
		inst.ResetCounters()
		start := time.Now()
		res, err := consistent.Coordinate(sch, qs, inst, consistent.Options{})
		elapsed := time.Since(start)
		if err != nil {
			panic(err)
		}
		p.Millis += float64(elapsed.Microseconds()) / 1000.0
		p.DBQueries += float64(inst.QueriesIssued())
		if res != nil {
			p.SetSize += float64(len(res.Members))
		}
	}
	k := float64(repeats)
	p.Millis /= k
	p.DBQueries /= k
	p.SetSize /= k
	return p
}

// Render prints the series as an aligned text table.
func (s Series) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", s.Name)
	fmt.Fprintf(&sb, "%12s %12s %12s %12s\n", s.XLabel, "time (ms)", "db queries", "set size")
	for _, p := range s.Points {
		fmt.Fprintf(&sb, "%12d %12.3f %12.1f %12.1f\n", p.X, p.Millis, p.DBQueries, p.SetSize)
	}
	return sb.String()
}

// CSV renders the series as comma-separated values with a header.
func (s Series) CSV() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "x,millis,db_queries,set_size\n")
	for _, p := range s.Points {
		fmt.Fprintf(&sb, "%d,%.4f,%.1f,%.1f\n", p.X, p.Millis, p.DBQueries, p.SetSize)
	}
	return sb.String()
}
