package experiments

import (
	"fmt"
	"math"
	"strings"
)

// Markdown renders the series as a GitHub-style markdown table with a
// fitted-trend footer, the format EXPERIMENTS.md uses.
func (s Series) Markdown() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "### %s\n\n", s.Name)
	fmt.Fprintf(&sb, "| %s | time (ms) | db queries | set size |\n", s.XLabel)
	sb.WriteString("|---:|---:|---:|---:|\n")
	for _, p := range s.Points {
		fmt.Fprintf(&sb, "| %d | %.3f | %.1f | %.1f |\n", p.X, p.Millis, p.DBQueries, p.SetSize)
	}
	slope, r2 := s.LinearFit()
	fmt.Fprintf(&sb, "\nLinear fit of time vs %s: slope %.4f ms/unit, r² = %.4f\n", s.XLabel, slope, r2)
	return sb.String()
}

// LinearFit performs ordinary least squares of Millis against X and
// returns the slope and the coefficient of determination r². It backs
// the "growth is linear" claims of the paper's figures with a number.
func (s Series) LinearFit() (slope, r2 float64) {
	n := float64(len(s.Points))
	if n < 2 {
		return 0, 1
	}
	var sx, sy, sxx, sxy, syy float64
	for _, p := range s.Points {
		x, y := float64(p.X), p.Millis
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
		syy += y * y
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, 1
	}
	slope = (n*sxy - sx*sy) / den
	intercept := (sy - slope*sx) / n
	// r² = 1 - SSres/SStot.
	ssTot := syy - sy*sy/n
	var ssRes float64
	for _, p := range s.Points {
		d := p.Millis - (slope*float64(p.X) + intercept)
		ssRes += d * d
	}
	if ssTot == 0 {
		return slope, 1
	}
	r2 = 1 - ssRes/ssTot
	if math.IsNaN(r2) {
		r2 = 0
	}
	return slope, r2
}

// MarkdownReport renders a list of series as one markdown document.
func MarkdownReport(title string, series []Series) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# %s\n\n", title)
	for _, s := range series {
		sb.WriteString(s.Markdown())
		sb.WriteString("\n")
	}
	return sb.String()
}
