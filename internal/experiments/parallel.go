package experiments

import (
	"context"
	"fmt"
	"time"

	"entangled/internal/db"
	"entangled/internal/engine"
	"entangled/internal/workload"
)

// parallelBatchRequests is the number of independent coordination
// requests per batch in the ParallelBatch sweep — the "many scenarios"
// load served over one shared instance.
const parallelBatchRequests = 32

// ParallelBatch measures engine.CoordinateMany throughput: batches of
// independent list-workload requests served over one shared instance,
// once on a single worker and once on cfg.Parallel workers. The x-axis
// is the per-request query count; Millis is the wall-clock time for the
// whole batch, DBQueries the batch's total, SetSize the per-request
// coordinating-set size.
func ParallelBatch(cfg Config) []Series {
	cfg = cfg.withDefaults(seq(10, 50, 10))
	if cfg.Parallel <= 1 {
		cfg.Parallel = 4
	}
	var out []Series
	for _, workers := range []int{1, cfg.Parallel} {
		s := Series{
			Name:   fmt.Sprintf("Parallel batch: CoordinateMany, %d worker(s)", workers),
			XLabel: "queries/request",
		}
		inst := db.NewInstance()
		inst.SimulatedLatency = cfg.Latency
		workload.UserTable(inst, cfg.TableRows)
		e := engine.New(inst, engine.Options{Workers: workers})
		for _, n := range cfg.Sizes {
			reqs := make([]engine.Request, parallelBatchRequests)
			for i := range reqs {
				reqs[i] = engine.Request{ID: fmt.Sprintf("r%d", i), Queries: workload.ListQueries(n, cfg.TableRows)}
			}
			var p Point
			for r := 0; r < cfg.Repeats; r++ {
				inst.ResetCounters()
				start := time.Now()
				for _, resp := range e.CoordinateMany(context.Background(), reqs) {
					if resp.Err != nil {
						panic(resp.Err)
					}
					p.SetSize += float64(resp.Result.Size()) / parallelBatchRequests
				}
				p.Millis += float64(time.Since(start).Microseconds()) / 1000.0
				p.DBQueries += float64(inst.QueriesIssued())
			}
			k := float64(cfg.Repeats)
			s.Points = append(s.Points, Point{X: n, Millis: p.Millis / k, DBQueries: p.DBQueries / k, SetSize: p.SetSize / k})
		}
		out = append(out, s)
	}
	return out
}
