package experiments

import (
	"context"
	"fmt"
	"time"

	"entangled/internal/engine"
	"entangled/internal/workload"
)

// parallelBatchRequests is the number of independent coordination
// requests per batch in the ParallelBatch sweep — the "many scenarios"
// load served over one shared instance.
const parallelBatchRequests = 32

// ParallelBatch measures engine.CoordinateMany throughput: batches of
// independent list-workload requests served over one shared store,
// once on a single worker and once on cfg.Parallel workers. With
// cfg.Shards > 1 the store is hash-partitioned and each request routes
// to the single shard its bodies pin. The x-axis is the per-request
// query count; Millis is the wall-clock time for the whole batch,
// DBQueries the batch's total, SetSize the per-request
// coordinating-set size.
func ParallelBatch(cfg Config) []Series {
	cfg = cfg.withDefaults(seq(10, 50, 10))
	if cfg.Parallel <= 1 {
		cfg.Parallel = 4
	}
	var out []Series
	for _, workers := range []int{1, cfg.Parallel} {
		name := fmt.Sprintf("Parallel batch: CoordinateMany, %d worker(s)", workers)
		if cfg.Shards > 1 {
			name += fmt.Sprintf(", %d shards", cfg.Shards)
		}
		s := Series{Name: name, XLabel: "queries/request"}
		inst := workload.NewStore(cfg.Shards, cfg.TableRows, cfg.Latency)
		e := engine.New(inst, engine.Options{Workers: workers})
		for _, n := range cfg.Sizes {
			reqs := make([]engine.Request, parallelBatchRequests)
			for i := range reqs {
				// Request i pins table value c_i, so on a sharded store
				// every request routes to one shard and the batch fans
				// out; the unsharded sweep serves the identical load.
				reqs[i] = engine.Request{ID: fmt.Sprintf("r%d", i), Queries: workload.ListQueriesAt(n, i%cfg.TableRows)}
			}
			var p Point
			for r := 0; r < cfg.Repeats; r++ {
				inst.ResetCounters()
				start := time.Now()
				for _, resp := range e.CoordinateMany(context.Background(), reqs) {
					if resp.Err != nil {
						panic(resp.Err)
					}
					p.SetSize += float64(resp.Result.Size()) / parallelBatchRequests
				}
				p.Millis += float64(time.Since(start).Microseconds()) / 1000.0
				p.DBQueries += float64(inst.QueriesIssued())
			}
			k := float64(cfg.Repeats)
			s.Points = append(s.Points, Point{X: n, Millis: p.Millis / k, DBQueries: p.DBQueries / k, SetSize: p.SetSize / k})
		}
		out = append(out, s)
	}
	return out
}
