package experiments

import (
	"strings"
	"testing"
)

// small keeps the sweeps tiny so the test suite stays fast; the real
// parameters are exercised by cmd/coordbench and the root benchmarks.
func small(sizes []int) Config {
	return Config{TableRows: 200, Seeds: 2, Repeats: 1, Sizes: sizes}
}

func TestFigure4Small(t *testing.T) {
	s := Figure4(small([]int{5, 10}))
	if len(s.Points) != 2 {
		t.Fatalf("points = %v", s.Points)
	}
	for _, p := range s.Points {
		// The list workload coordinates in full and issues 2n database
		// queries (n pruning + n components).
		if p.SetSize != float64(p.X) {
			t.Fatalf("set size %v at n=%d", p.SetSize, p.X)
		}
		if p.DBQueries != float64(2*p.X) {
			t.Fatalf("db queries %v at n=%d", p.DBQueries, p.X)
		}
	}
}

func TestFigure5Small(t *testing.T) {
	s := Figure5(small([]int{5, 10}))
	for _, p := range s.Points {
		// The algorithm returns the largest R(q); in a scale-free DAG no
		// single query need reach everybody, so the set is non-empty but
		// may be smaller than n.
		if p.SetSize < 1 || p.SetSize > float64(p.X) {
			t.Fatalf("set size %v out of range at n=%d", p.SetSize, p.X)
		}
		// Fewer or equal DB queries than the list case: components can
		// be larger than one query.
		if p.DBQueries > float64(2*p.X) {
			t.Fatalf("db queries %v at n=%d", p.DBQueries, p.X)
		}
	}
}

func TestFigure6Small(t *testing.T) {
	s := Figure6(small([]int{20, 40}))
	if len(s.Points) != 2 {
		t.Fatalf("points = %v", s.Points)
	}
	for _, p := range s.Points {
		if p.Millis < 0 {
			t.Fatal("negative time")
		}
	}
}

func TestFigure7Small(t *testing.T) {
	s := Figure7(small([]int{20, 40}))
	for _, p := range s.Points {
		if p.SetSize != 50 {
			t.Fatalf("all 50 users coordinate: %v", p.SetSize)
		}
		if p.DBQueries != 150 {
			t.Fatalf("3 queries per user: %v", p.DBQueries)
		}
	}
}

func TestFigure8Small(t *testing.T) {
	s := Figure8(small([]int{5, 10}))
	for _, p := range s.Points {
		if p.SetSize != float64(p.X) {
			t.Fatalf("all users coordinate: %v at n=%d", p.SetSize, p.X)
		}
		if p.DBQueries != float64(3*p.X) {
			t.Fatalf("3 queries per user: %v at n=%d", p.DBQueries, p.X)
		}
	}
}

func TestRenderAndCSV(t *testing.T) {
	s := Figure4(small([]int{5}))
	txt := s.Render()
	if !strings.Contains(txt, "Figure 4") || !strings.Contains(txt, "db queries") {
		t.Fatalf("render: %s", txt)
	}
	csv := s.CSV()
	if !strings.HasPrefix(csv, "x,millis,db_queries,set_size\n") {
		t.Fatalf("csv: %s", csv)
	}
	if len(strings.Split(strings.TrimSpace(csv), "\n")) != 2 {
		t.Fatalf("csv rows: %s", csv)
	}
}

func TestAllRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	out := All(Config{TableRows: 100, Seeds: 1, Repeats: 1, Sizes: []int{5}})
	if len(out) != 5 {
		t.Fatalf("series = %d", len(out))
	}
}

func TestAblationIndexesSmall(t *testing.T) {
	out := AblationIndexes(Config{TableRows: 200, Seeds: 1, Repeats: 1, Sizes: []int{5}})
	if len(out) != 2 {
		t.Fatalf("series = %d", len(out))
	}
	// Same workload, same answers regardless of indexing.
	if out[0].Points[0].SetSize != out[1].Points[0].SetSize {
		t.Fatalf("indexing changed the result: %v vs %v", out[0].Points, out[1].Points)
	}
}

func TestAblationPruningSmall(t *testing.T) {
	out := AblationPruning(Config{TableRows: 200, Seeds: 1, Repeats: 1, Sizes: []int{8}})
	if len(out) != 2 {
		t.Fatalf("series = %d", len(out))
	}
	if out[0].Points[0].SetSize != out[1].Points[0].SetSize {
		t.Fatalf("pruning changed the result: %v vs %v", out[0].Points, out[1].Points)
	}
	// Pruning issues at most as many grounding queries (it may add the
	// n satisfiability probes but removes failed components).
	if out[0].Points[0].Millis < 0 || out[1].Points[0].Millis < 0 {
		t.Fatal("negative time")
	}
}

func TestAblationCleaningSmall(t *testing.T) {
	out := AblationCleaning(Config{Seeds: 1, Repeats: 1, Sizes: []int{6}})
	if len(out) != 2 {
		t.Fatalf("series = %d", len(out))
	}
	if out[0].Points[0].SetSize != out[1].Points[0].SetSize {
		t.Fatalf("cleaning strategy changed the result")
	}
}

func TestMarkdownAndLinearFit(t *testing.T) {
	s := Series{Name: "Test", XLabel: "n", Points: []Point{
		{X: 10, Millis: 10}, {X: 20, Millis: 20}, {X: 30, Millis: 30},
	}}
	slope, r2 := s.LinearFit()
	if slope < 0.99 || slope > 1.01 {
		t.Fatalf("slope = %v, want 1", slope)
	}
	if r2 < 0.999 {
		t.Fatalf("perfect line should fit with r2=1, got %v", r2)
	}
	md := s.Markdown()
	for _, want := range []string{"### Test", "| n |", "| 10 | 10.000", "r² ="} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
	doc := MarkdownReport("Figures", []Series{s})
	if !strings.HasPrefix(doc, "# Figures") {
		t.Fatalf("report: %s", doc)
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	s := Series{Points: []Point{{X: 1, Millis: 5}}}
	if slope, r2 := s.LinearFit(); slope != 0 || r2 != 1 {
		t.Fatalf("single point: %v %v", slope, r2)
	}
	flat := Series{Points: []Point{{X: 1, Millis: 5}, {X: 2, Millis: 5}}}
	if slope, r2 := flat.LinearFit(); slope != 0 || r2 != 1 {
		t.Fatalf("flat line: %v %v", slope, r2)
	}
}

func TestFigureDBQueriesLinearFit(t *testing.T) {
	// The database-query counts of Figure 4 are exactly 2n — slope 2
	// through the origin, r² = 1 when fitted as a series.
	s := Figure4(small([]int{5, 10, 15}))
	q := Series{XLabel: s.XLabel}
	for _, p := range s.Points {
		q.Points = append(q.Points, Point{X: p.X, Millis: p.DBQueries})
	}
	slope, r2 := q.LinearFit()
	if slope < 1.99 || slope > 2.01 || r2 < 0.9999 {
		t.Fatalf("db queries must be exactly 2n: slope=%v r2=%v", slope, r2)
	}
}
