// Package experiments regenerates every figure of the paper's
// experimental evaluation (§6). Each RunFigureN function executes the
// corresponding workload sweep and returns a Series whose points mirror
// the figure's x-axis; the cmd/coordbench binary prints them as text
// tables, and the root bench_test.go exposes each sweep point as a Go
// benchmark.
//
// The substrate differs from the paper's testbed (in-memory Go engine
// instead of MySQL+JDBC+Java), so absolute milliseconds differ; the
// shapes — linear growth in the number of queries (Figures 4, 5, 8),
// negligible graph-processing overhead (Figure 6) and linear growth in
// the number of candidate values (Figure 7) — are the reproduction
// targets. See EXPERIMENTS.md.
package experiments
