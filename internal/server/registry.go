package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"entangled/internal/stream"
)

// Session-path errors, mapped to wire codes by the handlers.
var (
	errSessionExists   = errors.New("server: session name taken")
	errSessionNotFound = errors.New("server: no such session")
	errSessionClosed   = errors.New("server: session closed")
	errMailboxFull     = errors.New("server: session mailbox full")
)

// eventJournal is the durability hook a session handle writes through:
// persist.SessionJournal satisfies it. Append must be called only after
// the event was applied in memory; Close keeps the journal file for
// recovery (drain), Drop deletes it (deliberate removal).
type eventJournal interface {
	Append(ev stream.Event) error
	Sync() error
	Close() error
	Drop() error
}

// sessionOp is one unit of serialized session work: an event posted to
// the session's mailbox, answered on reply.
type sessionOp struct {
	ev    stream.Event
	reply chan sessionReply // buffered(1): the loop never blocks on it
}

type sessionReply struct {
	up  stream.Update
	err error
}

// sessionHandle owns one named stream.Session: a dedicated goroutine
// serializes its events through a bounded mailbox, so concurrent
// clients of the same session observe a total order with backpressure
// (a full mailbox rejects instead of queueing unboundedly). Reads
// (status, metrics) go straight to the Session, which has its own lock
// — they need no ordering against writes.
type sessionHandle struct {
	name    string
	sess    *stream.Session
	journal eventJournal // nil when the server runs without durability
	// notify observes every applied update (called from the session
	// loop, after journaling, before the reply). The server points it at
	// the push hub so parked arrivals admitted by a departure reach
	// subscribed binary connections. Nil when nobody listens.
	notify func(name string, up stream.Update)

	mailbox  chan sessionOp
	stop     chan struct{} // closed on delete/evict/server drain
	done     chan struct{} // closed when the loop exits
	stopOnce sync.Once
	lastUsed atomic.Int64 // unix nanos of the last client touch
}

func newSessionHandle(name string, sess *stream.Session, journal eventJournal, mailboxSize int) *sessionHandle {
	h := &sessionHandle{
		name:    name,
		sess:    sess,
		journal: journal,
		mailbox: make(chan sessionOp, mailboxSize),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	h.touch()
	go h.loop()
	return h
}

func (h *sessionHandle) touch() { h.lastUsed.Store(time.Now().UnixNano()) }

// loop serializes the session's events. On stop it drains the ops that
// made it into the mailbox — an admitted event always executes (the
// graceful-drain contract the stream layer established: events are
// atomic, so the drain leaves no partial coordination state) — and
// exits.
func (h *sessionHandle) loop() {
	defer close(h.done)
	for {
		select {
		case op := <-h.mailbox:
			h.exec(op)
		case <-h.stop:
			for {
				select {
				case op := <-h.mailbox:
					h.exec(op)
				default:
					return
				}
			}
		}
	}
}

// exec applies one event and, when it changed the session (admitted,
// or parked for retry — parked arrivals are replayed too, so a
// recovered session re-parks them), journals it BEFORE replying: the
// ack implies the event is in the journal, flushed per the backend's
// sync policy. A journal failure is reported to the caller — the
// in-memory state holds the event but its durability is indeterminate.
func (h *sessionHandle) exec(op sessionOp) {
	up, err := h.sess.Apply(op.ev)
	if h.journal != nil && (up.Admitted || up.Parked) {
		if jerr := h.journal.Append(op.ev); jerr != nil && err == nil {
			err = fmt.Errorf("server: journaling event for session %s: %w", h.name, jerr)
		}
	}
	if h.notify != nil && err == nil {
		h.notify(h.name, up)
	}
	op.reply <- sessionReply{up: up, err: err}
}

// post submits one event and waits for its update. A full mailbox
// rejects immediately (backpressure, HTTP 429); a stopped session
// rejects with errSessionClosed. An op that was admitted right as the
// drain finished gets errSessionClosed from the done branch — it never
// executed.
func (h *sessionHandle) post(ctx context.Context, ev stream.Event) (stream.Update, error) {
	h.touch()
	op := sessionOp{ev: ev, reply: make(chan sessionReply, 1)}
	select {
	case <-h.stop:
		return stream.Update{}, errSessionClosed
	default:
	}
	select {
	case h.mailbox <- op:
	case <-h.stop:
		return stream.Update{}, errSessionClosed
	default:
		return stream.Update{}, errMailboxFull
	}
	select {
	case r := <-op.reply:
		h.touch()
		return r.up, r.err
	case <-h.done:
		// done and reply can become ready together (the drain executed
		// this op just before the loop exited); an op that DID execute
		// must never report errSessionClosed, so re-check the reply.
		select {
		case r := <-op.reply:
			return r.up, r.err
		default:
		}
		return stream.Update{}, errSessionClosed
	case <-ctx.Done():
		return stream.Update{}, ctx.Err()
	}
}

// close stops the handle's loop after it drains admitted work.
func (h *sessionHandle) close() {
	h.stopOnce.Do(func() { close(h.stop) })
	<-h.done
}

// registry is the concurrent session registry: named handles over one
// shared store, created on demand, evicted after idleTimeout without a
// client touch, torn down together on server drain.
type registry struct {
	newSession  func(parkUnsafe bool) *stream.Session
	newJournal  func(name string, parkUnsafe bool) (eventJournal, error) // nil: no durability
	notify      func(name string, up stream.Update)                      // nil: no push listeners
	onDrop      func(name string)                                        // nil: nothing to clean up
	skipEvict   func() bool                                              // nil: never skip a janitor pass
	nameOK      func(name string) bool                                   // nil: any generated name is fine
	mailboxSize int
	idleTimeout time.Duration

	mu       sync.Mutex
	handles  map[string]*sessionHandle
	draining bool
	nextAuto int64

	created atomic.Int64
	evicted atomic.Int64

	janitorStop chan struct{}
	janitorDone chan struct{}
}

func newRegistry(newSession func(bool) *stream.Session, mailboxSize int, idleTimeout time.Duration) *registry {
	r := &registry{
		newSession:  newSession,
		mailboxSize: mailboxSize,
		idleTimeout: idleTimeout,
		handles:     map[string]*sessionHandle{},
		janitorStop: make(chan struct{}),
		janitorDone: make(chan struct{}),
	}
	go r.janitor()
	return r
}

// create registers a new named session. An empty name asks for a
// generated one ("s1", "s2", ...; generated names skip taken ones).
func (r *registry) create(name string, parkUnsafe bool) (*sessionHandle, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.draining {
		return nil, errDraining
	}
	if name == "" {
		// Generated names skip taken ones and, on a cluster node, names
		// the ring places elsewhere (nameOK), so a new session always
		// starts life on its owner.
		for {
			r.nextAuto++
			name = fmt.Sprintf("s%d", r.nextAuto)
			if _, taken := r.handles[name]; !taken && (r.nameOK == nil || r.nameOK(name)) {
				break
			}
		}
	} else if _, taken := r.handles[name]; taken {
		return nil, fmt.Errorf("%w: %s", errSessionExists, name)
	}
	var journal eventJournal
	if r.newJournal != nil {
		j, err := r.newJournal(name, parkUnsafe)
		if err != nil {
			return nil, fmt.Errorf("server: creating session journal: %w", err)
		}
		journal = j
	}
	h := newSessionHandle(name, r.newSession(parkUnsafe), journal, r.mailboxSize)
	h.notify = r.notify
	r.handles[name] = h
	r.created.Add(1)
	return h, nil
}

// adopt registers a handle over an already rebuilt session (recovery):
// the journal is the recovered one, reopened for appending.
func (r *registry) adopt(name string, sess *stream.Session, journal eventJournal) (*sessionHandle, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.draining {
		return nil, errDraining
	}
	if _, taken := r.handles[name]; taken {
		return nil, fmt.Errorf("%w: %s", errSessionExists, name)
	}
	h := newSessionHandle(name, sess, journal, r.mailboxSize)
	h.notify = r.notify
	r.handles[name] = h
	r.created.Add(1)
	return h, nil
}

func (r *registry) get(name string) (*sessionHandle, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.handles[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", errSessionNotFound, name)
	}
	return h, nil
}

// remove deregisters and stops one session; it blocks until the
// session's loop has drained.
func (r *registry) remove(name string) error {
	r.mu.Lock()
	h, ok := r.handles[name]
	if ok {
		delete(r.handles, name)
	}
	r.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", errSessionNotFound, name)
	}
	h.close()
	// A deliberately removed session must not resurrect on restart.
	if h.journal != nil {
		h.journal.Drop()
	}
	if r.onDrop != nil {
		r.onDrop(name)
	}
	return nil
}

// snapshot returns the live handles.
func (r *registry) snapshot() []*sessionHandle {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*sessionHandle, 0, len(r.handles))
	for _, h := range r.handles {
		out = append(out, h)
	}
	return out
}

func (r *registry) open() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.handles)
}

// janitor evicts sessions idle past the timeout. It scans at a quarter
// of the timeout so eviction lags idleness by at most ~1.25x.
func (r *registry) janitor() {
	defer close(r.janitorDone)
	if r.idleTimeout <= 0 {
		<-r.janitorStop
		return
	}
	tick := r.idleTimeout / 4
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-r.janitorStop:
			return
		case now := <-t.C:
			// Pause eviction when asked (the server sets this to the
			// backend's degraded check): dropping a journal needs the
			// filesystem, and a lost drop resurrects the session later.
			if r.skipEvict != nil && r.skipEvict() {
				continue
			}
			cutoff := now.Add(-r.idleTimeout).UnixNano()
			r.mu.Lock()
			var idle []*sessionHandle
			for name, h := range r.handles {
				if h.lastUsed.Load() < cutoff {
					idle = append(idle, h)
					delete(r.handles, name)
				}
			}
			r.mu.Unlock()
			for _, h := range idle {
				h.close()
				// Eviction is removal: the journal goes too.
				if h.journal != nil {
					h.journal.Drop()
				}
				if r.onDrop != nil {
					r.onDrop(h.name)
				}
				r.evicted.Add(1)
			}
		}
	}
}

// close drains the registry: no new sessions, janitor stopped, every
// session's mailbox drained and its loop exited.
func (r *registry) close() {
	r.mu.Lock()
	r.draining = true
	handles := make([]*sessionHandle, 0, len(r.handles))
	for name, h := range r.handles {
		handles = append(handles, h)
		delete(r.handles, name)
	}
	r.mu.Unlock()
	close(r.janitorStop)
	<-r.janitorDone
	for _, h := range handles {
		h.close()
		// A drain keeps the journal: the session comes back on restart
		// with every admitted event intact. Close syncs it.
		if h.journal != nil {
			h.journal.Close()
		}
	}
}
