package server_test

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"entangled/internal/client"
	"entangled/internal/coord"
	"entangled/internal/db"
	"entangled/internal/engine"
	"entangled/internal/eq"
	"entangled/internal/server"
	"entangled/internal/stream"
	"entangled/internal/workload"
)

// newLoopback boots a server over the given store on a loopback
// listener and returns a client for it.
func newLoopback(t *testing.T, store db.Store, sopts server.Options) (*client.Client, *server.Server) {
	t.Helper()
	e := engine.New(store, engine.Options{})
	srv, err := server.New(e, sopts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() { ts.Close(); srv.Close() })
	c, err := client.New(ts.URL, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return c, srv
}

// TestServerLoopbackIntegration is the end-to-end acceptance test: N
// concurrent clients — half speaking HTTP/JSON, half the binary wire
// protocol — drive batch requests and two named streaming sessions over
// ONE sharded store. Every batch response, over either protocol, must
// match an in-process run of the same request — same team, same witness
// values, and the same exact DBQueries — and every quiesced session's
// team, values and trace must decode identically through both protocols
// and match a batch SCCCoordinate over its live set byte-for-byte.
func TestServerLoopbackIntegration(t *testing.T) {
	const (
		shards     = 4
		rows       = 64
		nClients   = 6
		reqsPerCli = 8
	)
	store := workload.NewStore(shards, rows, 0)
	httpC, binC, _ := newDualLoopback(t, store, server.Options{})
	clients := []*client.Client{httpC, binC}
	ctx := context.Background()

	// Batch traffic: concurrent clients, each sending one multi-request
	// batch call; results recorded for post-hoc comparison.
	type servedReq struct {
		qs  []eq.Query
		res *coord.Result
	}
	served := make([][]servedReq, nClients)
	var wg sync.WaitGroup
	errs := make(chan error, nClients+2)
	for cli := 0; cli < nClients; cli++ {
		wg.Add(1)
		go func(cli int) {
			defer wg.Done()
			c := clients[cli%len(clients)] // alternate protocols
			reqs := make([]client.Request, reqsPerCli)
			sets := make([][]eq.Query, reqsPerCli)
			for j := range reqs {
				n := 4 + (cli+j)%9
				sets[j] = workload.ListQueriesAt(n, (cli*reqsPerCli+j)%rows)
				reqs[j] = client.Request{ID: fmt.Sprintf("c%d.r%d", cli, j), Queries: sets[j]}
			}
			resps, err := c.CoordinateBatch(ctx, reqs)
			if err != nil {
				errs <- fmt.Errorf("client %d: %w", cli, err)
				return
			}
			rec := make([]servedReq, 0, len(resps))
			for j, r := range resps {
				if r.Err != nil {
					errs <- fmt.Errorf("client %d request %d: %w", cli, j, r.Err)
					return
				}
				rec = append(rec, servedReq{qs: sets[j], res: r.Result})
			}
			served[cli] = rec
		}(cli)
	}

	// Streaming traffic: two named sessions, each driven sequentially by
	// its own goroutine, concurrent with the batch clients and each
	// other.
	sessionEvents := map[string][]workload.Arrival{
		"alpha": workload.Arrivals(workload.Churn, 48, rows, 7),
		"beta":  workload.Arrivals(workload.Churn, 48, rows, 11),
	}
	sessionClient := map[string]*client.Client{"alpha": httpC, "beta": binC}
	for name, arrivals := range sessionEvents {
		wg.Add(1)
		go func(name string, arrivals []workload.Arrival) {
			defer wg.Done()
			sess, err := sessionClient[name].CreateSession(ctx, name, false)
			if err != nil {
				errs <- fmt.Errorf("create %s: %w", name, err)
				return
			}
			for i, a := range arrivals {
				if a.Leave {
					_, err = sess.Leave(ctx, a.ID)
				} else {
					_, err = sess.Join(ctx, a.Query)
				}
				if err != nil {
					errs <- fmt.Errorf("session %s event %d: %w", name, i, err)
					return
				}
			}
		}(name, arrivals)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Batch equivalence: replay every served request in-process over an
	// identical store and compare team, values and the exact DBQueries.
	store2 := workload.NewStore(shards, rows, 0)
	e2 := engine.New(store2, engine.Options{})
	for cli, rec := range served {
		for j, sr := range rec {
			want, err := e2.Coordinate(ctx, sr.qs)
			if err != nil {
				t.Fatalf("in-process replay c%d.r%d: %v", cli, j, err)
			}
			if (sr.res == nil) != (want == nil) {
				t.Fatalf("c%d.r%d: wire result %v, in-process %v", cli, j, sr.res, want)
			}
			if sr.res == nil {
				continue
			}
			if !reflect.DeepEqual(sr.res.Set, want.Set) {
				t.Fatalf("c%d.r%d: team %v != %v", cli, j, sr.res.Set, want.Set)
			}
			if !reflect.DeepEqual(sr.res.Values, want.Values) {
				t.Fatalf("c%d.r%d: values differ:\nwire       %v\nin-process %v", cli, j, sr.res.Values, want.Values)
			}
			if sr.res.DBQueries != want.DBQueries {
				t.Fatalf("c%d.r%d: DBQueries over the wire %d != in-process %d", cli, j, sr.res.DBQueries, want.DBQueries)
			}
			if err := coord.Verify(sr.qs, sr.res.Set, sr.res.Values, store); err != nil {
				t.Fatalf("c%d.r%d: wire witness fails Definition 1: %v", cli, j, err)
			}
		}
	}

	// Session equivalence: each quiesced session's wire-read state must
	// decode identically through both protocols and match batch
	// SCCCoordinate over its live queries byte-for-byte.
	for name := range sessionEvents {
		st, err := httpC.Session(name).Status(ctx, true)
		if err != nil {
			t.Fatalf("status %s: %v", name, err)
		}
		stBin, err := binC.Session(name).Status(ctx, true)
		if err != nil {
			t.Fatalf("binary status %s: %v", name, err)
		}
		if !reflect.DeepEqual(st, stBin) {
			t.Fatalf("%s: status DTOs differ across protocols:\nHTTP   %+v\nbinary %+v", name, st, stBin)
		}
		btr := &coord.Trace{}
		want, err := coord.SCCCoordinate(st.Queries, store, coord.Options{Trace: btr})
		if err != nil {
			t.Fatalf("batch over %s live set: %v", name, err)
		}
		if (st.Result == nil) != (want == nil) {
			t.Fatalf("%s: result presence: wire %v, batch %v", name, st.Result, want)
		}
		if st.Result != nil {
			if !reflect.DeepEqual(st.Result.Set, want.Set) {
				t.Fatalf("%s: team %v != %v", name, st.Result.Set, want.Set)
			}
			if !reflect.DeepEqual(st.Result.Values, want.Values) {
				t.Fatalf("%s: values differ:\nwire  %v\nbatch %v", name, st.Result.Values, want.Values)
			}
			if err := coord.Verify(st.Queries, st.Result.Set, st.Result.Values, store); err != nil {
				t.Fatalf("%s: wire witness fails Definition 1: %v", name, err)
			}
		}
		if st.Trace == nil {
			t.Fatalf("%s: no trace over the wire", name)
		}
		if !reflect.DeepEqual(st.Trace.Pruned, btr.Pruned) && !(len(st.Trace.Pruned) == 0 && len(btr.Pruned) == 0) {
			t.Fatalf("%s: pruned %v != %v", name, st.Trace.Pruned, btr.Pruned)
		}
		if len(st.Trace.Components) != len(btr.Components) {
			t.Fatalf("%s: %d trace components != %d", name, len(st.Trace.Components), len(btr.Components))
		}
		for i := range st.Trace.Components {
			if !reflect.DeepEqual(st.Trace.Components[i], btr.Components[i]) {
				t.Fatalf("%s: component %d:\nwire  %+v\nbatch %+v", name, i, st.Trace.Components[i], btr.Components[i])
			}
		}
	}

	// The operational surface must account for the traffic (from both
	// protocols: the serving path is shared, so the counters are too).
	m, err := httpC.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(nClients * reqsPerCli); m.Coordinate.Requests != want {
		t.Fatalf("metrics: %d coordinate requests, want %d", m.Coordinate.Requests, want)
	}
	if m.Coordinate.Batches < 1 || m.Coordinate.Batches > m.Coordinate.Requests {
		t.Fatalf("metrics: implausible batch count %d for %d requests", m.Coordinate.Batches, m.Coordinate.Requests)
	}
	if m.Sessions.Open != 2 || len(m.Sessions.PerSession) != 2 {
		t.Fatalf("metrics: %d open sessions (%d detailed), want 2", m.Sessions.Open, len(m.Sessions.PerSession))
	}
	for _, sc := range m.Sessions.PerSession {
		if sc.DBQueries <= 0 || sc.Events != len(sessionEvents[sc.ID]) {
			t.Fatalf("metrics: session %s counters %+v implausible (want %d events)", sc.ID, sc, len(sessionEvents[sc.ID]))
		}
	}
	if m.PlanCache == nil || m.PlanCache.HitRate <= 0.5 {
		t.Fatalf("metrics: plan cache %+v, want a warm cache", m.PlanCache)
	}
	for proto, hc := range map[string]*client.Client{"HTTP": httpC, "binary": binC} {
		h, err := hc.Health(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if h.Status != "ok" || h.Sessions != 2 {
			t.Fatalf("%s health %+v, want ok with 2 sessions", proto, h)
		}
	}
}

// TestServerSessionLifecycle covers create/duplicate/status/delete and
// the idle janitor.
func TestServerSessionLifecycle(t *testing.T) {
	store := workload.NewStore(1, 8, 0)
	c, _ := newLoopback(t, store, server.Options{IdleTimeout: 80 * time.Millisecond})
	ctx := context.Background()

	sess, err := c.CreateSession(ctx, "room", false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateSession(ctx, "room", false); err == nil {
		t.Fatal("duplicate session name accepted")
	} else {
		var ce *client.Error
		if !errors.As(err, &ce) || ce.Code != "session_exists" || ce.Status != 409 {
			t.Fatalf("duplicate create: %v, want session_exists/409", err)
		}
	}
	// Generated names must not collide with taken ones.
	gen, err := c.CreateSession(ctx, "", false)
	if err != nil || gen.ID == "" || gen.ID == "room" {
		t.Fatalf("generated session: %v %v", gen, err)
	}

	up, err := sess.Join(ctx, workload.ChainQuery(0, 0, 8))
	if err != nil {
		t.Fatal(err)
	}
	if !up.Admitted || up.TeamSize != 1 || up.Stats.DBQueries <= 0 {
		t.Fatalf("join update %+v implausible", up)
	}
	if err := sess.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Status(ctx, false); err == nil {
		t.Fatal("status of deleted session succeeded")
	} else {
		var ce *client.Error
		if !errors.As(err, &ce) || ce.Code != "session_not_found" || ce.Status != 404 {
			t.Fatalf("deleted status: %v, want session_not_found/404", err)
		}
	}

	// The generated session goes idle; the janitor must evict it.
	// Status requests count as touches, so poll /metrics (which does
	// not) and only then confirm the 404.
	deadline := time.Now().Add(2 * time.Second)
	for {
		m, err := c.Metrics(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if m.Sessions.Evicted >= 1 {
			if m.Sessions.Evicted != 1 || m.Sessions.Created != 2 {
				t.Fatalf("metrics after eviction: %+v", m.Sessions)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("idle session not evicted")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if _, err := gen.Status(ctx, false); err == nil {
		t.Fatal("evicted session still answers status")
	}
}

// TestServerBackpressure forces both bounded buffers to overflow: the
// session mailbox (concurrent joins against a slow store) and the batch
// admission queue. Rejections must be typed 429s, and every accepted
// operation must still succeed.
func TestServerBackpressure(t *testing.T) {
	inst := db.NewInstance()
	inst.SimulatedLatency = 3 * time.Millisecond
	workload.UserTable(inst, 8)
	c, _ := newLoopback(t, inst, server.Options{
		MailboxSize: 1,
		QueueDepth:  1,
		MaxBatch:    1,
	})
	ctx := context.Background()

	sess, err := c.CreateSession(ctx, "slow", false)
	if err != nil {
		t.Fatal(err)
	}
	const n = 32
	var wg sync.WaitGroup
	var full, joined int64
	var mu sync.Mutex
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := sess.Join(ctx, workload.ChainQuery(i, 0, 8))
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				joined++
			case client.IsRetryable(err):
				full++
			default:
				t.Errorf("join %d: unexpected %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if joined == 0 || full == 0 {
		t.Fatalf("mailbox backpressure: %d joined, %d rejected — want both > 0", joined, full)
	}

	var okReqs, rejected int64
	wg = sync.WaitGroup{}
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := c.Coordinate(ctx, workload.ListQueriesAt(4, i%8))
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				okReqs++
			case client.IsRetryable(err):
				rejected++
			default:
				t.Errorf("coordinate %d: unexpected %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if okReqs == 0 || rejected == 0 {
		t.Fatalf("queue backpressure: %d ok, %d rejected — want both > 0", okReqs, rejected)
	}
}

// TestServerDrain checks the shutdown contract: after Close, batch
// requests are rejected with the draining code and session work is
// gone, but the server still answers health probes (status
// "draining").
func TestServerDrain(t *testing.T) {
	store := workload.NewStore(1, 8, 0)
	c, srv := newLoopback(t, store, server.Options{})
	ctx := context.Background()

	sess, err := c.CreateSession(ctx, "doomed", false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Join(ctx, workload.ChainQuery(0, 0, 8)); err != nil {
		t.Fatal(err)
	}
	srv.Close()

	if _, err := c.Coordinate(ctx, workload.ListQueriesAt(4, 0)); err == nil {
		t.Fatal("coordinate succeeded on a draining server")
	} else {
		var ce *client.Error
		if !errors.As(err, &ce) || ce.Code != "draining" {
			t.Fatalf("drain rejection: %v, want code draining", err)
		}
	}
	if _, err := c.CreateSession(ctx, "late", false); err == nil {
		t.Fatal("session created on a draining server")
	}
	if _, err := sess.Join(ctx, workload.ChainQuery(0, 1, 8)); err == nil {
		t.Fatal("join succeeded on a drained session")
	}
	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "draining" {
		t.Fatalf("health status %q, want draining", h.Status)
	}
}

// TestServerUnsafeArrivalTaxonomy checks that admission outcomes keep
// their types across the wire: a rejected unsafe arrival satisfies
// errors.Is(err, coord.ErrUnsafeArrival); with park-and-retry the same
// arrival parks (202, no error) and is admitted after the conflicting
// departure; duplicate and unknown IDs map to their stream sentinels.
func TestServerUnsafeArrivalTaxonomy(t *testing.T) {
	store := workload.NewStore(1, 8, 0)
	c, _ := newLoopback(t, store, server.Options{})
	ctx := context.Background()

	mk := func(id, user string, posts ...string) eq.Query {
		q := eq.Query{
			ID:   id,
			Head: []eq.Atom{eq.NewAtom("R", eq.C(eq.Value(user)), eq.V("x"))},
			Body: []eq.Atom{eq.NewAtom("T", eq.V("k"), eq.C(eq.Value("c0")))},
		}
		for _, p := range posts {
			q.Post = append(q.Post, eq.NewAtom("R", eq.C(eq.Value(p)), eq.V("y")))
		}
		return q
	}

	for _, park := range []bool{false, true} {
		name := fmt.Sprintf("taxonomy-park=%v", park)
		sess, err := c.CreateSession(ctx, name, park)
		if err != nil {
			t.Fatal(err)
		}
		// Two queries whose heads both unify with a later post R(A, y):
		// admitting the poster is unsafe (fanout 2).
		if _, err := sess.Join(ctx, mk("qa", "A")); err != nil {
			t.Fatal(err)
		}
		if _, err := sess.Join(ctx, mk("qa2", "A")); err != nil {
			t.Fatal(err)
		}
		up, err := sess.Join(ctx, mk("qp", "B", "A"))
		if park {
			if err != nil {
				t.Fatalf("%s: parked join errored: %v", name, err)
			}
			if !up.Parked || up.Admitted {
				t.Fatalf("%s: update %+v, want parked and not admitted", name, up)
			}
			// The departure clears the fanout conflict; the parked query
			// must be admitted by the retry.
			if _, err := sess.Leave(ctx, "qa2"); err != nil {
				t.Fatal(err)
			}
			st, err := sess.Status(ctx, false)
			if err != nil {
				t.Fatal(err)
			}
			if st.Live != 2 || st.Parked != 0 {
				t.Fatalf("%s: status %+v, want the parked query admitted", name, st)
			}
		} else {
			if !errors.Is(err, coord.ErrUnsafeArrival) {
				t.Fatalf("%s: unsafe join error %v does not wrap coord.ErrUnsafeArrival", name, err)
			}
			var ce *client.Error
			if !errors.As(err, &ce) || ce.Code != coord.CodeUnsafeArrival || ce.Status != 409 {
				t.Fatalf("%s: unsafe join %v, want %s/409", name, err, coord.CodeUnsafeArrival)
			}
		}

		if _, err := sess.Join(ctx, mk("qa", "C")); !errors.Is(err, stream.ErrDuplicateID) {
			t.Fatalf("%s: duplicate join error %v does not wrap stream.ErrDuplicateID", name, err)
		}
		if _, err := sess.Leave(ctx, "nobody"); !errors.Is(err, stream.ErrUnknownID) {
			t.Fatalf("%s: unknown leave error %v does not wrap stream.ErrUnknownID", name, err)
		}
	}
}
