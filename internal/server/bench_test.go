package server_test

import (
	"context"
	"fmt"
	"net"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"entangled/internal/admission"
	"entangled/internal/client"
	"entangled/internal/engine"
	"entangled/internal/eq"
	"entangled/internal/server"
	"entangled/internal/workload"
)

// benchLoopback boots a loopback server and client for benchmarking.
func benchLoopback(b *testing.B, shards, rows int) (*client.Client, *engine.Engine) {
	b.Helper()
	store := workload.NewStore(shards, rows, 0)
	e := engine.New(store, engine.Options{})
	srv, err := server.New(e, server.Options{})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	b.Cleanup(func() { ts.Close(); srv.Close() })
	c, err := client.New(ts.URL, client.Options{})
	if err != nil {
		b.Fatal(err)
	}
	return c, e
}

// benchWireLoopback boots a loopback server speaking the binary wire
// protocol and a binary client for it.
func benchWireLoopback(b *testing.B, shards, rows int) (*client.Client, *engine.Engine) {
	b.Helper()
	store := workload.NewStore(shards, rows, 0)
	e := engine.New(store, engine.Options{})
	srv, err := server.New(e, server.Options{})
	if err != nil {
		b.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.ServeWire(ln)
	c, err := client.New("tcp://"+ln.Addr().String(), client.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close(); srv.Close() })
	return c, e
}

// batchOf builds one wire batch of reqs coordination requests.
func batchOf(reqs, queries, rows int) []client.Request {
	out := make([]client.Request, reqs)
	for i := range out {
		out[i] = client.Request{
			ID:      "r" + strconv.Itoa(i),
			Queries: workload.ListQueriesAt(queries, i%rows),
		}
	}
	return out
}

// BenchmarkServerBatch measures end-to-end batch serving over loopback
// HTTP: one CoordinateBatch call of 64 requests per iteration; the
// reported ns/op divided by 64 is the per-request end-to-end cost.
// Compare with BenchmarkServerBatchInProcess for the HTTP layer's
// overhead.
func BenchmarkServerBatch(b *testing.B) {
	const rows, reqs, queries = 256, 64, 8
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			c, _ := benchLoopback(b, shards, rows)
			batch := batchOf(reqs, queries, rows)
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				resps, err := c.CoordinateBatch(ctx, batch)
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range resps {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
			b.ReportMetric(float64(b.N*reqs)/b.Elapsed().Seconds(), "req/s")
		})
	}
}

// BenchmarkServerBatchInProcess serves the identical load straight
// through engine.CoordinateMany — the in-process baseline the HTTP
// numbers are compared against (server overhead = ServerBatch /
// ServerBatchInProcess per request).
func BenchmarkServerBatchInProcess(b *testing.B) {
	const rows, reqs, queries = 256, 64, 8
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			store := workload.NewStore(shards, rows, 0)
			e := engine.New(store, engine.Options{})
			wire := batchOf(reqs, queries, rows)
			batch := make([]engine.Request, len(wire))
			for i, r := range wire {
				batch[i] = engine.Request{ID: r.ID, Queries: r.Queries}
			}
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, r := range e.CoordinateMany(ctx, batch) {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
			b.ReportMetric(float64(b.N*reqs)/b.Elapsed().Seconds(), "req/s")
		})
	}
}

// BenchmarkServerSession measures streaming over loopback HTTP: each
// iteration joins one query into a warm remote session and departs it
// again (two round trips, two incremental re-coordinations).
func BenchmarkServerSession(b *testing.B) {
	const rows = 64
	c, _ := benchLoopback(b, 1, rows)
	ctx := context.Background()
	sess, err := c.CreateSession(ctx, "bench", false)
	if err != nil {
		b.Fatal(err)
	}
	// Warm the session with a standing population.
	for i := 0; i < 32; i++ {
		if _, err := sess.Join(ctx, workload.ChainQuery(i%4, i/4, rows)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := workload.ChainQuery(100, 0, rows) // standalone scenario head
		q.ID = "bench-" + strconv.Itoa(i)
		if _, err := sess.Join(ctx, q); err != nil {
			b.Fatal(err)
		}
		if _, err := sess.Leave(ctx, q.ID); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(2*b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkWireBatch is BenchmarkServerBatch over the binary wire
// protocol: one pipelined Coordinate call of 64 requests per iteration
// on a persistent connection. Compare against BenchmarkServerBatch
// (HTTP) and BenchmarkServerBatchInProcess (no protocol) — the PR 7
// acceptance bar is per-request binary overhead ≤ 2x in-process where
// HTTP measured ~4x.
func BenchmarkWireBatch(b *testing.B) {
	const rows, reqs, queries = 256, 64, 8
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			c, _ := benchWireLoopback(b, shards, rows)
			batch := batchOf(reqs, queries, rows)
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				resps, err := c.CoordinateBatch(ctx, batch)
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range resps {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
			b.ReportMetric(float64(b.N*reqs)/b.Elapsed().Seconds(), "req/s")
		})
	}
}

// BenchmarkWireSession is BenchmarkServerSession over the binary wire
// protocol: one join and one leave (two pipelined round trips) per
// iteration against a warm session.
func BenchmarkWireSession(b *testing.B) {
	const rows = 64
	c, _ := benchWireLoopback(b, 1, rows)
	ctx := context.Background()
	sess, err := c.CreateSession(ctx, "bench", false)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		if _, err := sess.Join(ctx, workload.ChainQuery(i%4, i/4, rows)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := workload.ChainQuery(100, 0, rows)
		q.ID = "bench-" + strconv.Itoa(i)
		if _, err := sess.Join(ctx, q); err != nil {
			b.Fatal(err)
		}
		if _, err := sess.Leave(ctx, q.ID); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(2*b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkAdmissionFairDispatch measures the tenant-aware serving
// path under contention: a weight-4 and a weight-1 tenant each drive a
// 32-request batch per iteration through one binary-protocol server
// with admission enabled, so every request pays for identity
// propagation, the admission decision, DBQueries settlement, and the
// deficit-round-robin scheduler. Compare req/s against
// BenchmarkWireBatch (no admission) for the subsystem's total
// overhead.
func BenchmarkAdmissionFairDispatch(b *testing.B) {
	const rows, reqs, queries = 256, 32, 8
	store := workload.NewStore(1, rows, 0)
	e := engine.New(store, engine.Options{})
	ctl := admission.NewController(admission.Config{Tenants: map[string]admission.Policy{
		"vip": {Weight: 4},
		"std": {Weight: 1},
	}})
	srv, err := server.New(e, server.Options{Admission: ctl})
	if err != nil {
		b.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.ServeWire(ln)
	b.Cleanup(func() { srv.Close() })
	clients := make([]*client.Client, 0, 2)
	for _, tenant := range []string{"vip", "std"} {
		c, err := client.New("tcp://"+ln.Addr().String(), client.Options{Tenant: tenant})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { c.Close() })
		clients = append(clients, c)
	}
	batch := batchOf(reqs, queries, rows)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		errs := make([]error, len(clients))
		for j, c := range clients {
			wg.Add(1)
			go func(j int, c *client.Client) {
				defer wg.Done()
				resps, err := c.CoordinateBatch(ctx, batch)
				if err != nil {
					errs[j] = err
					return
				}
				for _, r := range resps {
					if r.Err != nil {
						errs[j] = r.Err
						return
					}
				}
			}(j, c)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(b.N*reqs*len(clients))/b.Elapsed().Seconds(), "req/s")
}

// BenchmarkWirePush measures the push path end to end: each iteration
// parks an arrival, departs the conflicting query, and waits for the
// server-push notification announcing the admission — the reported
// ns/op covers four session events plus one push delivery.
func BenchmarkWirePush(b *testing.B) {
	c, _ := benchWireLoopback(b, 1, 64)
	ctx := context.Background()
	sess, err := c.CreateSession(ctx, "push", true)
	if err != nil {
		b.Fatal(err)
	}
	got := make(chan client.Notification, 16)
	stop, err := sess.Subscribe(ctx, func(n client.Notification) { got <- n })
	if err != nil {
		b.Fatal(err)
	}
	defer stop()
	mk := func(id, user string, posts ...string) eq.Query {
		q := eq.Query{
			ID:   id,
			Head: []eq.Atom{eq.NewAtom("R", eq.C(eq.Value(user)), eq.V("x"))},
			Body: []eq.Atom{eq.NewAtom("T", eq.V("k"), eq.C(eq.Value("c0")))},
		}
		for _, p := range posts {
			q.Post = append(q.Post, eq.NewAtom("R", eq.C(eq.Value(p)), eq.V("y")))
		}
		return q
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := strconv.Itoa(i)
		// Two heads on user u<i>, then a poster that fans out to both:
		// it parks; departing one head admits it and pushes.
		if _, err := sess.Join(ctx, mk("a"+n, "u"+n)); err != nil {
			b.Fatal(err)
		}
		if _, err := sess.Join(ctx, mk("a2"+n, "u"+n)); err != nil {
			b.Fatal(err)
		}
		if up, err := sess.Join(ctx, mk("p"+n, "v"+n, "u"+n)); err != nil || !up.Parked {
			b.Fatalf("poster: %+v %v", up, err)
		}
		if _, err := sess.Leave(ctx, "a2"+n); err != nil {
			b.Fatal(err)
		}
		select {
		case pn := <-got:
			if pn.QueryID != "p"+n {
				b.Fatalf("push %+v, want p%s", pn, n)
			}
		case <-time.After(5 * time.Second):
			b.Fatal("push never arrived")
		}
		// Reset the session for the next iteration.
		if _, err := sess.Leave(ctx, "a"+n); err != nil {
			b.Fatal(err)
		}
		if _, err := sess.Leave(ctx, "p"+n); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "push/s")
}
