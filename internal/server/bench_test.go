package server_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"strconv"
	"testing"

	"entangled/internal/client"
	"entangled/internal/engine"
	"entangled/internal/server"
	"entangled/internal/workload"
)

// benchLoopback boots a loopback server and client for benchmarking.
func benchLoopback(b *testing.B, shards, rows int) (*client.Client, *engine.Engine) {
	b.Helper()
	store := workload.NewStore(shards, rows, 0)
	e := engine.New(store, engine.Options{})
	srv, err := server.New(e, server.Options{})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	b.Cleanup(func() { ts.Close(); srv.Close() })
	c, err := client.New(ts.URL, client.Options{})
	if err != nil {
		b.Fatal(err)
	}
	return c, e
}

// batchOf builds one wire batch of reqs coordination requests.
func batchOf(reqs, queries, rows int) []client.Request {
	out := make([]client.Request, reqs)
	for i := range out {
		out[i] = client.Request{
			ID:      "r" + strconv.Itoa(i),
			Queries: workload.ListQueriesAt(queries, i%rows),
		}
	}
	return out
}

// BenchmarkServerBatch measures end-to-end batch serving over loopback
// HTTP: one CoordinateBatch call of 64 requests per iteration; the
// reported ns/op divided by 64 is the per-request end-to-end cost.
// Compare with BenchmarkServerBatchInProcess for the HTTP layer's
// overhead.
func BenchmarkServerBatch(b *testing.B) {
	const rows, reqs, queries = 256, 64, 8
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			c, _ := benchLoopback(b, shards, rows)
			batch := batchOf(reqs, queries, rows)
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				resps, err := c.CoordinateBatch(ctx, batch)
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range resps {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
			b.ReportMetric(float64(b.N*reqs)/b.Elapsed().Seconds(), "req/s")
		})
	}
}

// BenchmarkServerBatchInProcess serves the identical load straight
// through engine.CoordinateMany — the in-process baseline the HTTP
// numbers are compared against (server overhead = ServerBatch /
// ServerBatchInProcess per request).
func BenchmarkServerBatchInProcess(b *testing.B) {
	const rows, reqs, queries = 256, 64, 8
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			store := workload.NewStore(shards, rows, 0)
			e := engine.New(store, engine.Options{})
			wire := batchOf(reqs, queries, rows)
			batch := make([]engine.Request, len(wire))
			for i, r := range wire {
				batch[i] = engine.Request{ID: r.ID, Queries: r.Queries}
			}
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, r := range e.CoordinateMany(ctx, batch) {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
			b.ReportMetric(float64(b.N*reqs)/b.Elapsed().Seconds(), "req/s")
		})
	}
}

// BenchmarkServerSession measures streaming over loopback HTTP: each
// iteration joins one query into a warm remote session and departs it
// again (two round trips, two incremental re-coordinations).
func BenchmarkServerSession(b *testing.B) {
	const rows = 64
	c, _ := benchLoopback(b, 1, rows)
	ctx := context.Background()
	sess, err := c.CreateSession(ctx, "bench", false)
	if err != nil {
		b.Fatal(err)
	}
	// Warm the session with a standing population.
	for i := 0; i < 32; i++ {
		if _, err := sess.Join(ctx, workload.ChainQuery(i%4, i/4, rows)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := workload.ChainQuery(100, 0, rows) // standalone scenario head
		q.ID = "bench-" + strconv.Itoa(i)
		if _, err := sess.Join(ctx, q); err != nil {
			b.Fatal(err)
		}
		if _, err := sess.Leave(ctx, q.ID); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(2*b.N)/b.Elapsed().Seconds(), "events/s")
}
