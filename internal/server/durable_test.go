package server_test

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"reflect"
	"sort"
	"sync"
	"testing"

	"entangled/internal/client"
	"entangled/internal/coord"
	"entangled/internal/db"
	"entangled/internal/engine"
	"entangled/internal/persist"
	"entangled/internal/server"
	"entangled/internal/workload"
)

// openBackend opens a durable backend over dir, seeding a fresh
// directory with the canonical rows-row workload table.
func openBackend(t *testing.T, dir string, shards, rows int, sync persist.SyncPolicy) *persist.Backend {
	t.Helper()
	b, err := persist.Open(dir, persist.Options{Shards: shards, Sync: sync})
	if err != nil {
		t.Fatal(err)
	}
	if b.Fresh() {
		if err := db.ApplyAll(b, workload.UserTableMutations(rows)); err != nil {
			t.Fatal(err)
		}
	}
	return b
}

// durableLoopback boots a loopback server over the backend. The
// returned httptest server and coordination server are NOT auto-closed:
// durability tests control the shutdown order (drain vs hard stop)
// themselves.
func durableLoopback(t *testing.T, b *persist.Backend) (*client.Client, *server.Server, *httptest.Server) {
	t.Helper()
	e := engine.New(b, engine.Options{})
	srv, err := server.New(e, server.Options{Persist: b})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	c, err := client.New(ts.URL, client.Options{})
	if err != nil {
		ts.Close()
		srv.Close()
		t.Fatal(err)
	}
	return c, srv, ts
}

// churn drives one session through arrivals over the wire, tracking the
// outcome of every acknowledged event: the IDs that should be live at
// the end and how many events were admitted or parked (i.e. journaled).
type churnTrack struct {
	name    string
	acked   int             // events acked as admitted or parked
	live    map[string]bool // expected surviving query IDs
	arrived []workload.Arrival
}

func churnSession(ctx context.Context, c *client.Client, name string, park bool, arrivals []workload.Arrival) (*churnTrack, error) {
	sess, err := c.CreateSession(ctx, name, park)
	if err != nil {
		return nil, fmt.Errorf("create %s: %w", name, err)
	}
	tr := &churnTrack{name: name, live: map[string]bool{}, arrived: arrivals}
	for i, a := range arrivals {
		if a.Leave {
			up, err := sess.Leave(ctx, a.ID)
			if err != nil {
				var ce *client.Error
				if errors.As(err, &ce) {
					continue // unknown ID etc: rejected, not journaled
				}
				return nil, fmt.Errorf("%s event %d: %w", name, i, err)
			}
			if up.Admitted {
				tr.acked++
				delete(tr.live, a.ID)
			}
			continue
		}
		up, err := sess.Join(ctx, a.Query)
		if err != nil {
			var ce *client.Error
			if errors.As(err, &ce) {
				continue // rejected arrival: no state change, not journaled
			}
			return nil, fmt.Errorf("%s event %d: %w", name, i, err)
		}
		if up.Admitted || up.Parked {
			tr.acked++
			tr.live[a.Query.ID] = true
		}
	}
	return tr, nil
}

// liveIDs returns the sorted expected survivors.
func (tr *churnTrack) liveIDs() []string {
	ids := make([]string, 0, len(tr.live))
	for id := range tr.live {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// checkRecovered compares one recovered session against its pre-stop
// tracking and against a fresh batch SCCCoordinate over its live set:
// same surviving query IDs, and byte-for-byte the same quiesced team,
// values and trace.
func checkRecovered(t *testing.T, ctx context.Context, c *client.Client, store db.Store, tr *churnTrack) {
	t.Helper()
	st, err := c.Session(tr.name).Status(ctx, true)
	if err != nil {
		t.Fatalf("recovered %s: status: %v", tr.name, err)
	}
	gotIDs := make([]string, 0, len(st.Queries))
	for _, q := range st.Queries {
		gotIDs = append(gotIDs, q.ID)
	}
	sort.Strings(gotIDs)
	if want := tr.liveIDs(); !reflect.DeepEqual(gotIDs, want) {
		t.Fatalf("recovered %s: live queries %v, want %v", tr.name, gotIDs, want)
	}
	btr := &coord.Trace{}
	want, err := coord.SCCCoordinate(st.Queries, store, coord.Options{Trace: btr})
	if err != nil {
		t.Fatalf("batch over recovered %s live set: %v", tr.name, err)
	}
	if (st.Result == nil) != (want == nil) {
		t.Fatalf("recovered %s: result presence: wire %v, batch %v", tr.name, st.Result, want)
	}
	if st.Result != nil {
		if !reflect.DeepEqual(st.Result.Set, want.Set) {
			t.Fatalf("recovered %s: team %v != %v", tr.name, st.Result.Set, want.Set)
		}
		if !reflect.DeepEqual(st.Result.Values, want.Values) {
			t.Fatalf("recovered %s: values differ:\nwire  %v\nbatch %v", tr.name, st.Result.Values, want.Values)
		}
		if err := coord.Verify(st.Queries, st.Result.Set, st.Result.Values, store); err != nil {
			t.Fatalf("recovered %s: witness fails Definition 1: %v", tr.name, err)
		}
	}
	if st.Trace == nil {
		t.Fatalf("recovered %s: no trace", tr.name)
	}
	if len(st.Trace.Components) != len(btr.Components) {
		t.Fatalf("recovered %s: %d trace components != %d", tr.name, len(st.Trace.Components), len(btr.Components))
	}
	for i := range st.Trace.Components {
		if !reflect.DeepEqual(st.Trace.Components[i], btr.Components[i]) {
			t.Fatalf("recovered %s: component %d:\nwire  %+v\nbatch %+v", tr.name, i, st.Trace.Components[i], btr.Components[i])
		}
	}
}

// TestServerDrainLosesNoAdmittedEvents is the graceful-drain guarantee
// under the race detector: concurrent sessions churn over the wire
// while the sync policy is "never" (so nothing reaches disk except
// through the drain path), the server drains, and a reopened server
// recovers every session with exactly the acked events — the drain
// flushed and fsynced every open WAL.
func TestServerDrainLosesNoAdmittedEvents(t *testing.T) {
	const rows = 48
	dir := t.TempDir()
	backend := openBackend(t, dir, 1, rows, persist.SyncNever)
	c, srv, ts := durableLoopback(t, backend)
	ctx := context.Background()

	names := []string{"drain-a", "drain-b", "drain-c"}
	tracks := make([]*churnTrack, len(names))
	var wg sync.WaitGroup
	errs := make(chan error, len(names))
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			arrivals := workload.Arrivals(workload.Churn, 40, rows, int64(13+i))
			tr, err := churnSession(ctx, c, name, i == 0, arrivals)
			if err != nil {
				errs <- err
				return
			}
			tracks[i] = tr
		}(i, name)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Graceful drain, then release the data directory.
	ts.Close()
	srv.Close()
	if err := backend.Close(); err != nil {
		t.Fatalf("closing backend after drain: %v", err)
	}

	// Reopen: every session must come back with every acked event.
	backend2 := openBackend(t, dir, 1, rows, persist.SyncNever)
	c2, srv2, ts2 := durableLoopback(t, backend2)
	t.Cleanup(func() { ts2.Close(); srv2.Close(); backend2.Close() })
	rec, err := c2.Recovery(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Enabled || rec.Sessions != len(names) || rec.TornTail || rec.SessionTornTails != 0 {
		t.Fatalf("recovery status %+v: want %d clean sessions", rec, len(names))
	}
	wantEvents := 0
	for _, tr := range tracks {
		wantEvents += tr.acked
	}
	if rec.SessionEvents != wantEvents {
		t.Fatalf("recovered %d session events, want %d acked — the drain lost events", rec.SessionEvents, wantEvents)
	}
	for _, tr := range tracks {
		checkRecovered(t, ctx, c2, backend2, tr)
	}
}

// TestServerCrashRecoveryEquivalence is the acceptance property test:
// named sessions (one parking unsafe arrivals) churn through the HTTP
// server over a sharded durable store, the process hard-stops — close
// without drain, simulated by Backend.Abort — and a server reopened on
// the same data directory must recover every session to a quiesced
// state byte-for-byte equal to batch SCCCoordinate over its live set,
// while the recovered store answers identically (same bindings, same
// exact DBQueries) to an in-memory store built by replaying the same
// mutation stream.
func TestServerCrashRecoveryEquivalence(t *testing.T) {
	const (
		shards = 2
		rows   = 64
	)
	dir := t.TempDir()
	// SyncAlways: an ack means the event is fsynced, so a hard stop may
	// lose nothing acked.
	backend := openBackend(t, dir, shards, rows, persist.SyncAlways)
	c, srv, ts := durableLoopback(t, backend)
	ctx := context.Background()

	sessions := []struct {
		name string
		park bool
		seed int64
	}{
		{"crash-alpha", false, 7},
		{"crash-beta", true, 11},
		{"crash-gamma", false, 23},
	}
	tracks := make([]*churnTrack, len(sessions))
	var wg sync.WaitGroup
	errs := make(chan error, len(sessions))
	for i, sc := range sessions {
		wg.Add(1)
		go func(i int, name string, park bool, seed int64) {
			defer wg.Done()
			arrivals := workload.Arrivals(workload.Churn, 48, rows, seed)
			tr, err := churnSession(ctx, c, name, park, arrivals)
			if err != nil {
				errs <- err
				return
			}
			tracks[i] = tr
		}(i, sc.name, sc.park, sc.seed)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Hard stop: listener gone, WAL handles dropped without a sync,
	// no drain. The registry goroutines are cleaned up afterwards;
	// their journals are already dead, which the cleanup tolerates.
	ts.Close()
	backend.Abort()
	t.Cleanup(srv.Close)

	// Reopen the data directory and recover.
	backend2 := openBackend(t, dir, shards, rows, persist.SyncAlways)
	c2, srv2, ts2 := durableLoopback(t, backend2)
	t.Cleanup(func() { ts2.Close(); srv2.Close(); backend2.Close() })

	rec, err := c2.Recovery(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Enabled || rec.Sessions != len(sessions) {
		t.Fatalf("recovery status %+v: want %d sessions", rec, len(sessions))
	}
	wantEvents := 0
	for _, tr := range tracks {
		wantEvents += tr.acked
	}
	if rec.SessionEvents != wantEvents {
		t.Fatalf("recovered %d session events, want %d acked — the crash lost acked events", rec.SessionEvents, wantEvents)
	}
	sort.Strings(rec.RecoveredSessions)
	wantNames := make([]string, 0, len(sessions))
	for _, sc := range sessions {
		wantNames = append(wantNames, sc.name)
	}
	sort.Strings(wantNames)
	if !reflect.DeepEqual(rec.RecoveredSessions, wantNames) {
		t.Fatalf("recovered sessions %v, want %v", rec.RecoveredSessions, wantNames)
	}

	// Every recovered session quiesces to the batch answer.
	for _, tr := range tracks {
		checkRecovered(t, ctx, c2, backend2, tr)
	}

	// Store equivalence: the recovered durable store must answer
	// exactly like an in-memory store replayed from the same mutation
	// stream — same teams, same bindings, and the same exact DBQueries.
	mem := db.NewShardedInstance(shards)
	if err := db.ApplyAll(mem, workload.UserTableMutations(rows)); err != nil {
		t.Fatal(err)
	}
	eDur := engine.New(backend2, engine.Options{})
	eMem := engine.New(mem, engine.Options{})
	for i := 0; i < 12; i++ {
		qs := workload.ListQueriesAt(3+i%7, (i*5)%rows)
		got, err := eDur.Coordinate(ctx, qs)
		if err != nil {
			t.Fatalf("durable coordinate %d: %v", i, err)
		}
		want, err := eMem.Coordinate(ctx, qs)
		if err != nil {
			t.Fatalf("in-memory coordinate %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("request %d: durable result differs from in-memory replay:\ndurable %+v\nmemory  %+v", i, got, want)
		}
	}
}
