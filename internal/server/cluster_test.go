package server_test

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"testing"
	"time"

	"entangled/internal/api"
	"entangled/internal/client"
	"entangled/internal/cluster"
	"entangled/internal/db"
	"entangled/internal/engine"
	"entangled/internal/eq"
	"entangled/internal/server"
	"entangled/internal/workload"
)

// clusterNode is one member of a loopback test cluster.
type clusterNode struct {
	name   string
	addr   string
	router *cluster.Router
	srv    *server.Server
	hs     *httptest.Server
	dead   bool
}

// loopCluster boots n coordserve nodes into one cluster on loopback
// TCP: every node holds an identically built full-replica store, the
// shared static membership, and real peer connections, exactly as n
// processes started with -cluster-peers would.
type loopCluster struct {
	tb      testing.TB
	nodes   []*clusterNode
	members []cluster.Node
	shards  int
	rows    int
	sopts   server.Options
}

func newLoopCluster(tb testing.TB, n, shards, rows int, sopts server.Options) *loopCluster {
	tb.Helper()
	lc := &loopCluster{tb: tb, shards: shards, rows: rows, sopts: sopts}
	// Listeners first: the membership needs every node's address before
	// any node can boot.
	lns := make([]net.Listener, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			tb.Fatal(err)
		}
		lns[i] = ln
		lc.members = append(lc.members, cluster.Node{Name: "n" + strconv.Itoa(i+1), Addr: ln.Addr().String()})
	}
	lc.nodes = make([]*clusterNode, n)
	for i := range lns {
		lc.nodes[i] = lc.boot(i, lns[i])
	}
	tb.Cleanup(func() {
		for _, cn := range lc.nodes {
			if !cn.dead {
				lc.stop(cn)
			}
		}
	})
	return lc
}

// boot builds one member: its own store replica, router, and server
// speaking both protocols.
func (lc *loopCluster) boot(i int, ln net.Listener) *clusterNode {
	lc.tb.Helper()
	store := workload.NewStore(lc.shards, lc.rows, 0)
	placement := workload.Placement()
	if sh, ok := store.(*db.ShardedInstance); ok {
		placement = sh.HashColumns()
	}
	r, err := cluster.New(cluster.Config{Self: lc.members[i].Name, Nodes: lc.members}, cluster.Options{
		Placement: placement,
		Dial:      func(addr string) cluster.PeerConn { return client.DialPeer(addr) },
	})
	if err != nil {
		lc.tb.Fatal(err)
	}
	sopts := lc.sopts
	sopts.Cluster = r
	srv, err := server.New(engine.New(store, engine.Options{}), sopts)
	if err != nil {
		lc.tb.Fatal(err)
	}
	go srv.ServeWire(ln)
	return &clusterNode{
		name:   lc.members[i].Name,
		addr:   lc.members[i].Addr,
		router: r,
		srv:    srv,
		hs:     httptest.NewServer(srv),
	}
}

func (lc *loopCluster) stop(cn *clusterNode) {
	cn.hs.Close()
	cn.srv.Close()
	cn.router.Close()
	cn.dead = true
}

// kill takes node i down hard: server, listeners, and peer connections
// all close, as a crashed process would.
func (lc *loopCluster) kill(i int) { lc.stop(lc.nodes[i]) }

// rejoin brings a killed node back on its original membership address
// with a fresh (empty-session) replica, as a restarted process would.
func (lc *loopCluster) rejoin(i int) {
	lc.tb.Helper()
	var ln net.Listener
	var err error
	for deadline := time.Now().Add(5 * time.Second); ; {
		ln, err = net.Listen("tcp", lc.nodes[i].addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			lc.tb.Fatalf("rebinding %s: %v", lc.nodes[i].addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	lc.nodes[i] = lc.boot(i, ln)
}

// binTo returns a direct binary client pointed at node i (a client
// that has NOT fetched the ring — misrouted calls exercise forwarding).
func (lc *loopCluster) binTo(t testing.TB, i int) *client.Client {
	t.Helper()
	c, err := client.New("tcp://"+lc.nodes[i].addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// httpTo returns an HTTP client pointed at node i.
func (lc *loopCluster) httpTo(t testing.TB, i int) *client.Client {
	t.Helper()
	c, err := client.New(lc.nodes[i].hs.URL, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// clusterClient returns a ring-aware cluster:// client seeded at node 0.
func (lc *loopCluster) clusterClient(t testing.TB) *client.Client {
	t.Helper()
	c, err := client.New("cluster://"+lc.nodes[0].addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// owner returns the member name owning a session name.
func (lc *loopCluster) owner(session string) string { return lc.nodes[0].router.Owner(session) }

// nameOwnedBy scans for a session name the given member owns.
func (lc *loopCluster) nameOwnedBy(prefix, node string) string {
	for i := 0; ; i++ {
		name := prefix + strconv.Itoa(i)
		if lc.owner(name) == node {
			return name
		}
	}
}

// valueIdxOwnedBy scans for a table row index whose value c<idx> the
// given member owns under the canonical placement.
func (lc *loopCluster) valueIdxOwnedBy(t testing.TB, node string) int {
	t.Helper()
	ring := lc.nodes[0].router.Ring()
	for i := 0; i < lc.rows; i++ {
		if ring.OwnerOfValue(eq.Value("c"+strconv.Itoa(i))) == node {
			return i
		}
	}
	t.Fatalf("no table value owned by %s among %d rows", node, lc.rows)
	return 0
}

// TestClusterMatchesSingleNode is the distribution property test: the
// same workload driven through a 3-node cluster and through one
// standalone node must produce identical results — deep-equal batch
// responses with exactly equal DBQueries, and byte-identical session
// status DTOs — for plain and sharded stores alike. Three client paths
// cover the three routing paths: the ring-aware cluster client (routes
// to owners), a direct binary client at one node (the server forwards
// and scatter-gathers), and an HTTP client at one node (HTTP-side
// forwarding re-rendering wire DTOs as JSON).
func TestClusterMatchesSingleNode(t *testing.T) {
	const rows = 32
	for _, shards := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			lc := newLoopCluster(t, 3, shards, rows, server.Options{MaxBatch: 64})
			_, single, _ := newDualLoopback(t, workload.NewStore(shards, rows, 0), server.Options{MaxBatch: 64})
			cc := lc.clusterClient(t)
			direct := lc.binTo(t, 0)
			ctx := context.Background()

			// Randomized batches mixing single-owner requests (pinned to
			// one table value) with unroutable multi-value requests (served
			// locally against the full replica).
			rng := rand.New(rand.NewSource(42))
			for round := 0; round < 5; round++ {
				n := 1 + rng.Intn(12)
				reqs := make([]client.Request, n)
				for i := range reqs {
					id := fmt.Sprintf("r%d.%d", round, i)
					if rng.Intn(4) == 0 {
						reqs[i] = client.Request{ID: id, Queries: workload.ListQueries(2+rng.Intn(6), rows)}
					} else {
						reqs[i] = client.Request{ID: id, Queries: workload.ListQueriesAt(2+rng.Intn(8), rng.Intn(rows))}
					}
				}
				sr, serr := single.CoordinateBatch(ctx, reqs)
				cr, cerr := cc.CoordinateBatch(ctx, reqs)
				dr, derr := direct.CoordinateBatch(ctx, reqs)
				if serr != nil || cerr != nil || derr != nil {
					t.Fatalf("round %d: single %v, cluster %v, direct %v", round, serr, cerr, derr)
				}
				sameResponses(t, fmt.Sprintf("round %d cluster-client", round), cr, sr)
				sameResponses(t, fmt.Sprintf("round %d direct-node", round), dr, sr)
				var ssum, csum int64
				for i := range sr {
					if sr[i].Result != nil {
						ssum += sr[i].Result.DBQueries
					}
					if cr[i].Result != nil {
						csum += cr[i].Result.DBQueries
					}
				}
				if ssum != csum {
					t.Fatalf("round %d: summed DBQueries %d (cluster) != %d (single)", round, csum, ssum)
				}
			}

			// Churny session streams: one session owned by each member,
			// each driven through a different client path, every one
			// compared event-by-event and status-byte-by-status-byte
			// against the standalone node.
			arrivals := workload.Arrivals(workload.Churn, 30, rows, 7)
			runStream := func(c *client.Client, name string) ([]interface{}, []byte) {
				t.Helper()
				sess, err := c.CreateSession(ctx, name, true)
				if err != nil {
					t.Fatalf("create %s: %v", name, err)
				}
				var ups []interface{}
				for i, a := range arrivals {
					var up api.Update
					if a.Leave {
						up, err = sess.Leave(ctx, a.ID)
					} else {
						up, err = sess.Join(ctx, a.Query)
					}
					if err != nil {
						t.Fatalf("%s event %d: %v", name, i, err)
					}
					up.ElapsedNS = 0
					ups = append(ups, up)
				}
				st, err := sess.Status(ctx, true)
				if err != nil {
					t.Fatalf("%s status: %v", name, err)
				}
				js, err := json.Marshal(st)
				if err != nil {
					t.Fatal(err)
				}
				return ups, js
			}
			drivers := []struct {
				path string
				c    *client.Client
				name string
			}{
				{"owned-by-serving-node via cluster client", cc, lc.nameOwnedBy("pa", "n1")},
				{"forwarded binary", direct, lc.nameOwnedBy("pb", "n2")},
				{"forwarded HTTP", lc.httpTo(t, 0), lc.nameOwnedBy("pc", "n3")},
			}
			for _, d := range drivers {
				cups, cst := runStream(d.c, d.name)
				sups, sst := runStream(single, d.name)
				if !reflect.DeepEqual(cups, sups) {
					t.Fatalf("%s (%s): update streams diverge:\ncluster %+v\nsingle  %+v", d.path, d.name, cups, sups)
				}
				if string(cst) != string(sst) {
					t.Fatalf("%s (%s): quiesced status differs:\ncluster %s\nsingle  %s", d.path, d.name, cst, sst)
				}
			}
		})
	}
}

// TestClusterPlacementAndForwarding pins the routing surfaces on a live
// 3-node cluster: /v1/cluster membership agreement, self-owned
// auto-generated session names, one session mutated through all three
// nodes, route_moved on a misplaced subscribe, and the forward counters.
func TestClusterPlacementAndForwarding(t *testing.T) {
	lc := newLoopCluster(t, 3, 2, 16, server.Options{})
	ctx := context.Background()

	// Every node reports the same membership fingerprint, flags itself,
	// and publishes the placement contract.
	var versions []string
	for i, cn := range lc.nodes {
		resp, err := http.Get(cn.hs.URL + "/v1/cluster")
		if err != nil {
			t.Fatal(err)
		}
		var cs api.ClusterStatus
		if err := json.NewDecoder(resp.Body).Decode(&cs); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if !cs.Enabled || len(cs.Nodes) != 3 || cs.Self != cn.name {
			t.Fatalf("node %d cluster status %+v", i, cs)
		}
		for _, n := range cs.Nodes {
			if n.Self != (n.Name == cn.name) {
				t.Fatalf("node %d misflags self: %+v", i, cs.Nodes)
			}
		}
		if len(cs.Relations) != 1 || cs.Relations[0].Relation != "T" || cs.Relations[0].Column != 1 {
			t.Fatalf("node %d placement %+v, want T/1", i, cs.Relations)
		}
		versions = append(versions, cs.Version)
	}
	if versions[0] != versions[1] || versions[1] != versions[2] {
		t.Fatalf("membership fingerprints disagree: %v", versions)
	}

	// Auto-generated names are self-owned: ownership partitions the
	// generated namespace, so a new session never starts life misplaced.
	for i := range lc.nodes {
		sess, err := lc.binTo(t, i).CreateSession(ctx, "", false)
		if err != nil {
			t.Fatal(err)
		}
		if owner := lc.owner(sess.ID); owner != lc.nodes[i].name {
			t.Fatalf("node %s generated name %q owned by %s", lc.nodes[i].name, sess.ID, owner)
		}
	}

	// One session owned by n2, created and mutated only through OTHER
	// nodes over both protocols: every op forwards, and all three nodes
	// agree on the resulting state.
	name := lc.nameOwnedBy("fwd", "n2")
	c0, c2 := lc.binTo(t, 0), lc.binTo(t, 2)
	h2 := lc.httpTo(t, 2)
	if _, err := c0.CreateSession(ctx, name, true); err != nil {
		t.Fatalf("forwarded create: %v", err)
	}
	trio := unsafeTrio("fw")
	if _, err := c0.Session(name).Join(ctx, trio[0]); err != nil {
		t.Fatalf("forwarded binary join: %v", err)
	}
	if _, err := h2.Session(name).Join(ctx, trio[1]); err != nil {
		t.Fatalf("forwarded HTTP join: %v", err)
	}
	// The parked arrival's 202 semantics survive the hop.
	up, err := c2.Session(name).Join(ctx, trio[2])
	if err != nil || !up.Parked {
		t.Fatalf("forwarded parked join: %+v %v", up, err)
	}
	var stats []string
	for i := range lc.nodes {
		st, err := lc.binTo(t, i).Session(name).Status(ctx, true)
		if err != nil {
			t.Fatalf("status via node %d: %v", i, err)
		}
		js, _ := json.Marshal(st)
		stats = append(stats, string(js))
	}
	if stats[0] != stats[1] || stats[1] != stats[2] {
		t.Fatalf("nodes disagree on session state:\n%s\n%s\n%s", stats[0], stats[1], stats[2])
	}
	var st api.SessionStatus
	json.Unmarshal([]byte(stats[0]), &st)
	if st.Live != 2 || st.Parked != 1 {
		t.Fatalf("session state %+v, want 2 live 1 parked", st)
	}

	// Subscribe is ownership-gated: push flows only from the owner, so a
	// misplaced subscribe answers the typed route_moved naming the owner.
	_, err = c0.Session(name).Subscribe(ctx, func(client.Notification) {})
	var ce *client.Error
	if !asClientError(err, &ce) || ce.Code != api.CodeRouteMoved {
		t.Fatalf("misplaced subscribe: %v, want route_moved", err)
	}
	if ce.Owner != "n2" {
		t.Fatalf("route_moved owner %q, want n2", ce.Owner)
	}
	if ce.Status != http.StatusMisdirectedRequest {
		t.Fatalf("route_moved status %d, want 421", ce.Status)
	}
	if !client.IsRetryable(err) || !client.FateKnown(err) {
		t.Fatalf("route_moved must be fate-known retryable: retryable=%v fateKnown=%v",
			client.IsRetryable(err), client.FateKnown(err))
	}
	// Subscribing at the owner works.
	stop, err := lc.binTo(t, 1).Session(name).Subscribe(ctx, func(client.Notification) {})
	if err != nil {
		t.Fatalf("owner subscribe: %v", err)
	}
	stop()

	// The forward counters saw the hops: node 0 sent, node 2 received
	// (and the scatter metrics surface shape is present).
	m0, err := lc.httpTo(t, 0).Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m0.Cluster == nil || m0.Cluster.ForwardsSent < 2 {
		t.Fatalf("node 0 cluster metrics %+v, want >= 2 forwards sent", m0.Cluster)
	}
	m1, err := lc.httpTo(t, 1).Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Cluster == nil || m1.Cluster.ForwardsReceived < 2 {
		t.Fatalf("node 1 (n2) cluster metrics %+v, want >= 2 forwards received", m1.Cluster)
	}
	if len(m0.Cluster.FanoutCounts) == 0 || len(m0.Cluster.Peers) != 2 {
		t.Fatalf("node 0 cluster metrics missing scatter/peer shape: %+v", m0.Cluster)
	}
	// Health carries the cluster slice.
	h, err := c0.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Cluster == nil || h.Cluster.Nodes != 3 || len(h.Cluster.PeersDown) != 0 {
		t.Fatalf("health cluster slice %+v, want 3 nodes all up", h.Cluster)
	}
}

// asClientError is errors.As without importing errors twice in tests.
func asClientError(err error, ce **client.Error) bool {
	for err != nil {
		if e, ok := err.(*client.Error); ok {
			*ce = e
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// TestClusterKillNodeTypedErrorsAndRejoin kills one member and checks
// the degradation contract: work owned by the dead node fails with the
// typed, fate-known peer_unavailable (never a hang, never an untyped
// error), work owned by live nodes is unharmed — and when the node
// rejoins on its old address, forwarding resumes without restarting
// anything else.
func TestClusterKillNodeTypedErrorsAndRejoin(t *testing.T) {
	const rows = 64 // enough table values that every member owns some
	lc := newLoopCluster(t, 3, 1, rows, server.Options{})
	ctx := context.Background()
	c0 := lc.binTo(t, 0)

	victim := 2 // kill n3
	name := lc.nameOwnedBy("kill", "n3")
	if _, err := c0.CreateSession(ctx, name, false); err != nil {
		t.Fatalf("pre-kill forwarded create: %v", err)
	}
	lc.kill(victim)

	// Session ops owned by the dead node: typed errors only. The call
	// in flight when the connection dropped may (correctly) come back
	// ack_indeterminate — the peer might have applied it — but once the
	// drop is observed every send fails fate-known peer_unavailable.
	var ce *client.Error
	for deadline := time.Now().Add(5 * time.Second); ; {
		_, err := c0.Session(name).Join(ctx, workload.ChainQuery(0, 0, rows))
		if !asClientError(err, &ce) {
			t.Fatalf("join to dead owner: %v, want a typed *client.Error", err)
		}
		if ce.Code == api.CodePeerUnavailable {
			if ce.Status != http.StatusBadGateway {
				t.Fatalf("peer_unavailable status %d, want 502", ce.Status)
			}
			if !client.IsRetryable(err) || !client.FateKnown(err) {
				t.Fatal("peer_unavailable must be fate-known retryable")
			}
			break
		}
		if ce.Code != api.CodeAckIndeterminate {
			t.Fatalf("join to dead owner: %v, want peer_unavailable or ack_indeterminate", err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("drop never settled to peer_unavailable: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	// Same over HTTP forwarding.
	_, herr := lc.httpTo(t, 0).Session(name).Status(ctx, false)
	if !asClientError(herr, &ce) || ce.Code != api.CodePeerUnavailable {
		t.Fatalf("HTTP status to dead owner: %v, want peer_unavailable", herr)
	}

	// A scattered batch: the dead node's slice fails inline with the
	// typed code, every other request in the batch is served.
	deadIdx := lc.valueIdxOwnedBy(t, "n3")
	liveIdx := lc.valueIdxOwnedBy(t, "n1")
	resps, err := c0.CoordinateBatch(ctx, []client.Request{
		{ID: "dead", Queries: workload.ListQueriesAt(4, deadIdx)},
		{ID: "live", Queries: workload.ListQueriesAt(4, liveIdx)},
	})
	if err != nil {
		t.Fatalf("batch with a dead owner must not fail as a whole: %v", err)
	}
	if !asClientError(resps[0].Err, &ce) || ce.Code != api.CodePeerUnavailable {
		t.Fatalf("dead slice: %+v, want inline peer_unavailable", resps[0])
	}
	if resps[1].Err != nil || resps[1].Result == nil {
		t.Fatalf("live slice harmed by the dead peer: %+v", resps[1])
	}

	// Health on a survivor reports the dead peer (the pooled connection
	// noticed the drop).
	for deadline := time.Now().Add(5 * time.Second); ; {
		h, err := c0.Health(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if h.Cluster != nil && len(h.Cluster.PeersDown) == 1 && h.Cluster.PeersDown[0] == "n3" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("survivor never reported n3 down: %+v", h.Cluster)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Rejoin on the old address: the survivors' keepers redial and
	// forwarding resumes. The restarted replica has no sessions (this
	// cluster is in-memory), so re-create and use the same name.
	lc.rejoin(victim)
	var sess *client.Session
	for deadline := time.Now().Add(10 * time.Second); ; {
		sess, err = c0.CreateSession(ctx, name, false)
		if err == nil {
			break
		}
		if !client.IsRetryable(err) {
			t.Fatalf("rejoin create failed non-retryably: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("forwarding never recovered after rejoin: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if up, err := sess.Join(ctx, workload.ChainQuery(0, 0, rows)); err != nil || !up.Admitted {
		t.Fatalf("post-rejoin forwarded join: %+v %v", up, err)
	}
	// The batch path recovered too.
	resps, err = c0.CoordinateBatch(ctx, []client.Request{{ID: "back", Queries: workload.ListQueriesAt(4, deadIdx)}})
	if err != nil || resps[0].Err != nil {
		t.Fatalf("post-rejoin scattered batch: %v %+v", err, resps)
	}
}

// BenchmarkClusterForward measures one forwarded session op on a
// 2-node loopback cluster — the full hop: encode, peer call, serve at
// the owner, raw reply splice — and reports the exact cross-node
// message count per arrival (the O(1)-forwards-per-arrival contract).
func BenchmarkClusterForward(b *testing.B) {
	const rows = 16
	lc := newLoopCluster(b, 2, 1, rows, server.Options{})
	ctx := context.Background()
	// A session owned by n2, driven via n1: every event is one forward.
	name := lc.nameOwnedBy("bf", "n2")
	c0 := lc.binTo(b, 0)
	if _, err := c0.CreateSession(ctx, name, false); err != nil {
		b.Fatal(err)
	}
	sess := c0.Session(name)
	q := workload.ChainQuery(0, 0, rows)
	before := lc.nodes[0].router.Metrics().ForwardsSent
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.Join(ctx, q); err != nil {
			b.Fatal(err)
		}
		if _, err := sess.Leave(ctx, q.ID); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	forwards := lc.nodes[0].router.Metrics().ForwardsSent - before
	b.ReportMetric(float64(forwards)/float64(2*b.N), "xnode/arrival")
}

// BenchmarkClusterScatterGather measures a 16-request batch scattered
// from one node across a 3-node cluster and merged back, reporting the
// cross-node sub-batches per batch.
func BenchmarkClusterScatterGather(b *testing.B) {
	const rows = 64
	lc := newLoopCluster(b, 3, 2, rows, server.Options{MaxBatch: 64})
	ctx := context.Background()
	c0 := lc.binTo(b, 0)
	rng := rand.New(rand.NewSource(3))
	reqs := make([]client.Request, 16)
	for i := range reqs {
		reqs[i] = client.Request{ID: "b" + strconv.Itoa(i), Queries: workload.ListQueriesAt(4, rng.Intn(rows))}
	}
	before := lc.nodes[0].router.Metrics().ForwardsSent
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resps, err := c0.CoordinateBatch(ctx, reqs)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range resps {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}
	b.StopTimer()
	forwards := lc.nodes[0].router.Metrics().ForwardsSent - before
	b.ReportMetric(float64(forwards)/float64(b.N), "xnode/batch")
	b.ReportMetric(float64(16*b.N)/b.Elapsed().Seconds(), "req/s")
}
