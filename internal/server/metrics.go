package server

import (
	"sync"
	"sync/atomic"
	"time"

	"entangled/internal/admission"
	"entangled/internal/api"
	"entangled/internal/db"
)

// latencyBucketsNS are the histogram bounds shared by the batch and
// session latency histograms: roughly logarithmic from 50µs to 1s, with
// a final unbounded bucket.
var latencyBucketsNS = []int64{
	50_000, 100_000, 250_000, 500_000,
	1_000_000, 2_500_000, 5_000_000, 10_000_000,
	25_000_000, 50_000_000, 100_000_000, 250_000_000,
	1_000_000_000,
}

// histogram is a fixed-bucket concurrent latency histogram.
type histogram struct {
	counts []atomic.Int64 // len(latencyBucketsNS)+1; last = overflow
	count  atomic.Int64
	sum    atomic.Int64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]atomic.Int64, len(latencyBucketsNS)+1)}
}

func (h *histogram) observe(d time.Duration) {
	ns := d.Nanoseconds()
	i := 0
	for i < len(latencyBucketsNS) && ns > latencyBucketsNS[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
}

func (h *histogram) snapshot() api.Histogram {
	out := api.Histogram{
		BucketsNS: latencyBucketsNS,
		Counts:    make([]int64, len(h.counts)),
		Count:     h.count.Load(),
		SumNS:     h.sum.Load(),
	}
	for i := range h.counts {
		out.Counts[i] = h.counts[i].Load()
	}
	return out
}

// metrics aggregates the server's operational counters. Everything is
// atomic: handlers record without locks, and /metrics reads a
// consistent-enough snapshot.
type metrics struct {
	start time.Time

	coordRequests atomic.Int64
	coordBatches  atomic.Int64
	coordErrors   atomic.Int64
	coordRejected atomic.Int64
	coordQueries  atomic.Int64
	coordLatency  *histogram

	// Session creations/evictions are counted by the registry, which
	// owns those transitions.
	sessionEvents  atomic.Int64
	sessionLatency *histogram

	// shares tracks, per tenant, the fair batcher's dispatch accounting;
	// only populated when admission is configured (the batcher's onShare
	// hook is wired), so the lock is off every hot path otherwise.
	shareMu sync.Mutex
	shares  map[admission.Tenant]*shareStats
}

// shareStats is one tenant's fair-dispatch history: how many of its
// requests were dispatched, and a decile histogram of the fraction of
// each contended batch the tenant received. A tenant pinned to the top
// decile is monopolizing batches; a flat spread is fair sharing under
// contention.
type shareStats struct {
	dispatched int64
	deciles    [10]int64
}

func newMetrics() *metrics {
	return &metrics{
		start:          time.Now(),
		coordLatency:   newHistogram(),
		sessionLatency: newHistogram(),
		shares:         map[admission.Tenant]*shareStats{},
	}
}

// observeShare records one tenant's slice of one dispatched batch; it
// is the batcher's onShare hook when admission is on.
func (m *metrics) observeShare(t admission.Tenant, n, batch int) {
	if batch <= 0 {
		return
	}
	d := n * 10 / batch
	if d > 9 {
		d = 9
	}
	m.shareMu.Lock()
	s := m.shares[t]
	if s == nil {
		s = &shareStats{}
		m.shares[t] = s
	}
	s.dispatched += int64(n)
	s.deciles[d]++
	m.shareMu.Unlock()
}

// shareSnapshot copies the per-tenant dispatch accounting.
func (m *metrics) shareSnapshot() map[admission.Tenant]shareStats {
	m.shareMu.Lock()
	defer m.shareMu.Unlock()
	out := make(map[admission.Tenant]shareStats, len(m.shares))
	for t, s := range m.shares {
		out[t] = *s
	}
	return out
}

// planStats sums the plan-cache counters of the caches behind a Store
// through the db seam, so durable and wrapped stores report too.
func planStats(store db.Store) (api.PlanCacheMetrics, bool) {
	st, ok := db.AggregatePlanStats(store)
	if !ok {
		return api.PlanCacheMetrics{}, false
	}
	out := api.PlanCacheMetrics{Hits: st.Hits, Misses: st.Misses, Entries: int64(st.Entries)}
	if total := st.Hits + st.Misses; total > 0 {
		out.HitRate = float64(st.Hits) / float64(total)
	}
	return out, true
}
