package server

import (
	"context"
	"errors"
	"sync"
	"time"

	"entangled/internal/engine"
)

// Batch-path admission errors, mapped to wire codes by the handlers.
var (
	// errOverloaded means the admission queue was full.
	errOverloaded = errors.New("server: coordinate queue full")
	// errDraining means the server is shutting down.
	errDraining = errors.New("server: draining")
)

// batchItem is one admitted coordination request waiting for dispatch.
type batchItem struct {
	req   engine.Request
	reply chan engine.Response // buffered(1): dispatch never blocks on it
}

// batcher turns many concurrent HTTP requests into few CoordinateMany
// calls: admitted requests queue on a bounded channel, and one
// dispatcher goroutine greedily drains whatever is queued — up to
// maxBatch — into a single engine call. Under light load a request
// dispatches alone with no added latency (the dispatcher is parked on
// the channel); under heavy load batches form naturally and the
// engine's worker pool serves them concurrently. The bounded queue is
// the admission control: a full queue rejects with errOverloaded (wire
// code "overloaded", inlined per request by the handler) instead of
// building an unbounded backlog.
type batcher struct {
	e          *engine.Engine
	queue      chan batchItem
	maxBatch   int
	timeout    time.Duration       // per-dispatch deadline; <=0 means none
	onDispatch func(batchSize int) // observes every CoordinateMany dispatch
	stop       chan struct{}       // closed by close(): reject new, drain queued
	done       chan struct{}       // closed when the dispatcher exits
	stopOnce   sync.Once
}

func newBatcher(e *engine.Engine, queueDepth, maxBatch int, timeout time.Duration, onDispatch func(int)) *batcher {
	b := &batcher{
		e:          e,
		queue:      make(chan batchItem, queueDepth),
		maxBatch:   maxBatch,
		timeout:    timeout,
		onDispatch: onDispatch,
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	go b.loop()
	return b
}

// submit admits one request and waits for its response. Admission is
// non-blocking: a full queue or a draining server rejects immediately.
// Cancelling ctx abandons the wait; the request still executes (it was
// admitted) but the response is dropped.
func (b *batcher) submit(ctx context.Context, req engine.Request) (engine.Response, error) {
	it := batchItem{req: req, reply: make(chan engine.Response, 1)}
	select {
	case <-b.stop:
		return engine.Response{}, errDraining
	default:
	}
	select {
	case b.queue <- it:
	case <-b.stop:
		return engine.Response{}, errDraining
	default:
		return engine.Response{}, errOverloaded
	}
	select {
	case resp := <-it.reply:
		return resp, nil
	case <-b.done:
		// done and reply can become ready together (the drain served
		// this item just before exiting); a served request must never
		// report errDraining, so re-check the reply first.
		select {
		case resp := <-it.reply:
			return resp, nil
		default:
		}
		// Drain raced the enqueue: the dispatcher exited without seeing
		// this item.
		return engine.Response{}, errDraining
	case <-ctx.Done():
		return engine.Response{}, ctx.Err()
	}
}

// loop is the dispatcher: block for one item, then greedily collect
// whatever else is already queued and serve the lot in one
// CoordinateMany call. On stop it drains the queue — everything
// admitted before the drain still gets served — then exits.
func (b *batcher) loop() {
	defer close(b.done)
	for {
		select {
		case it := <-b.queue:
			b.dispatch(it)
		case <-b.stop:
			for {
				select {
				case it := <-b.queue:
					b.dispatch(it)
				default:
					return
				}
			}
		}
	}
}

// dispatch collects a batch seeded with first and serves it.
func (b *batcher) dispatch(first batchItem) {
	items := []batchItem{first}
	for len(items) < b.maxBatch {
		select {
		case it := <-b.queue:
			items = append(items, it)
		default:
			goto serve
		}
	}
serve:
	if b.onDispatch != nil {
		b.onDispatch(len(items))
	}
	reqs := make([]engine.Request, len(items))
	for i, it := range items {
		reqs[i] = it.req
	}
	// The dispatch deadline is what keeps a stalled store (or injected
	// fault) from wedging the single dispatcher goroutine forever: past
	// it, the engine's context-wrapped store fails each remaining query
	// with DeadlineExceeded and the batch returns. It bounds the work
	// between store calls — one store call already in flight must still
	// return on its own.
	ctx := context.Background()
	if b.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, b.timeout)
		defer cancel()
	}
	for i, resp := range b.e.CoordinateMany(ctx, reqs) {
		items[i].reply <- resp
	}
}

// close stops admission and waits for the dispatcher to drain the
// queued work.
func (b *batcher) close() {
	b.stopOnce.Do(func() { close(b.stop) })
	<-b.done
}
