package server

import (
	"context"
	"errors"
	"sync"
	"time"

	"entangled/internal/admission"
	"entangled/internal/engine"
)

// Batch-path admission errors, mapped to wire codes by the handlers.
var (
	// errOverloaded means the admission queue was full.
	errOverloaded = errors.New("server: coordinate queue full")
	// errDraining means the server is shutting down.
	errDraining = errors.New("server: draining")
)

// batchItem is one admitted coordination request waiting for dispatch.
type batchItem struct {
	req   engine.Request
	reply chan engine.Response // buffered(1): dispatch never blocks on it
}

// tenantQueue is one tenant's FIFO backlog plus its deficit round-robin
// bookkeeping. Guarded by the batcher mutex.
type tenantQueue struct {
	tenant admission.Tenant
	items  []batchItem
	head   int // items[:head] are already dispatched (kept to amortize shifts)
	// deficit is the DRR counter: each scheduler visit credits weight
	// items, and each dispatched item debits one, so over time a
	// tenant's share of every contended batch converges to
	// weight/Σweights regardless of how fast it submits.
	deficit int
	weight  int
	active  bool // on the scheduler's active ring
}

func (q *tenantQueue) depth() int { return len(q.items) - q.head }

// batcher turns many concurrent requests into few CoordinateMany calls:
// admitted requests queue per tenant, and one dispatcher goroutine
// drains the backlog — up to maxBatch per dispatch — into single engine
// calls. Under light load a request dispatches alone with no added
// latency; under heavy load batches form naturally and the engine's
// worker pool serves them concurrently.
//
// Batches are formed by deficit round-robin over the tenants with
// backlog: each pass over the active ring credits every queue its
// weight and drains up to its deficit, so a hot tenant with a deep
// backlog cannot crowd a quiet tenant's single request out of the next
// dispatch — coalescing (many tenants in one engine call) is preserved,
// ordering within a tenant is FIFO, and with one tenant (a server
// without admission routes everything to the "" tenant) the schedule
// degenerates to the plain FIFO it replaced. Each per-tenant queue is
// bounded: a full queue rejects that tenant's request with
// errOverloaded (wire code "overloaded") instead of building an
// unbounded backlog, and the bound is per tenant, so one tenant's
// flood cannot consume another's queue space.
type batcher struct {
	e          *engine.Engine
	depth      int // per-tenant queue bound
	maxBatch   int
	timeout    time.Duration       // per-dispatch deadline; <=0 means none
	onDispatch func(batchSize int) // observes every CoordinateMany dispatch
	// weight maps a tenant to its DRR weight (>=1); nil means every
	// tenant weighs 1.
	weight func(admission.Tenant) int
	// onShare observes, per dispatch, how many of the batch's items each
	// contributing tenant supplied; nil skips the accounting.
	onShare func(t admission.Tenant, n, batchSize int)

	mu     sync.Mutex
	queues map[admission.Tenant]*tenantQueue
	active []*tenantQueue // ring of queues with backlog
	next   int            // ring cursor
	total  int            // items queued across all tenants

	notify   chan struct{} // cap 1: "backlog is non-empty" edge signal
	stop     chan struct{} // closed by close(): reject new, drain queued
	done     chan struct{} // closed when the dispatcher exits
	stopOnce sync.Once
}

func newBatcher(e *engine.Engine, queueDepth, maxBatch int, timeout time.Duration,
	onDispatch func(int), weight func(admission.Tenant) int, onShare func(admission.Tenant, int, int)) *batcher {
	b := &batcher{
		e:          e,
		depth:      queueDepth,
		maxBatch:   maxBatch,
		timeout:    timeout,
		onDispatch: onDispatch,
		weight:     weight,
		onShare:    onShare,
		queues:     map[admission.Tenant]*tenantQueue{},
		notify:     make(chan struct{}, 1),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	go b.loop()
	return b
}

// submit admits one request under a tenant and waits for its response.
// Admission is non-blocking: a full tenant queue or a draining server
// rejects immediately. Cancelling ctx abandons the wait; the request
// still executes (it was admitted) but the response is dropped.
func (b *batcher) submit(ctx context.Context, tenant admission.Tenant, req engine.Request) (engine.Response, error) {
	it := batchItem{req: req, reply: make(chan engine.Response, 1)}
	select {
	case <-b.stop:
		return engine.Response{}, errDraining
	default:
	}
	b.mu.Lock()
	q := b.queues[tenant]
	if q == nil {
		w := 1
		if b.weight != nil {
			if got := b.weight(tenant); got > 0 {
				w = got
			}
		}
		q = &tenantQueue{tenant: tenant, weight: w}
		b.queues[tenant] = q
	}
	if q.depth() >= b.depth {
		b.mu.Unlock()
		return engine.Response{}, errOverloaded
	}
	q.items = append(q.items, it)
	if !q.active {
		q.active = true
		b.active = append(b.active, q)
	}
	b.total++
	b.mu.Unlock()
	select {
	case b.notify <- struct{}{}:
	default:
	}
	select {
	case resp := <-it.reply:
		return resp, nil
	case <-b.done:
		// done and reply can become ready together (the drain served
		// this item just before exiting); a served request must never
		// report errDraining, so re-check the reply first.
		select {
		case resp := <-it.reply:
			return resp, nil
		default:
		}
		// Drain raced the enqueue: the dispatcher exited without seeing
		// this item.
		return engine.Response{}, errDraining
	case <-ctx.Done():
		return engine.Response{}, ctx.Err()
	}
}

// queueDepth reports the queued backlog for one tenant (0 when it has
// never submitted).
func (b *batcher) queueDepth(t admission.Tenant) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if q := b.queues[t]; q != nil {
		return q.depth()
	}
	return 0
}

// loop is the dispatcher: wait for backlog, then form DRR batches until
// the backlog is empty again. On stop it drains everything admitted
// before the drain, then exits.
func (b *batcher) loop() {
	defer close(b.done)
	for {
		select {
		case <-b.notify:
			b.drain()
		case <-b.stop:
			b.drain()
			return
		}
	}
}

// drain dispatches batches until no backlog remains.
func (b *batcher) drain() {
	for {
		items, shares := b.popBatch()
		if len(items) == 0 {
			return
		}
		b.dispatch(items, shares)
	}
}

// tenantShare is one tenant's contribution to a dispatched batch.
type tenantShare struct {
	tenant admission.Tenant
	n      int
}

// popBatch forms one batch by deficit round-robin over the active ring:
// each visited queue is credited its weight and drained while it holds
// both deficit and backlog. A queue drained empty leaves the ring (its
// deficit resets — credit does not accrue while idle); a queue stopped
// by its deficit keeps the remainder for its next visit. Weights are
// >=1, so every visited queue yields at least one item and the loop
// always progresses toward either a full batch or an empty ring.
func (b *batcher) popBatch() ([]batchItem, []tenantShare) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.total == 0 {
		return nil, nil
	}
	items := make([]batchItem, 0, min(b.total, b.maxBatch))
	var shares []tenantShare
	for len(items) < b.maxBatch && b.total > 0 {
		if b.next >= len(b.active) {
			b.next = 0
		}
		q := b.active[b.next]
		q.deficit += q.weight
		took := 0
		for q.deficit > 0 && q.depth() > 0 && len(items) < b.maxBatch {
			items = append(items, q.items[q.head])
			q.items[q.head] = batchItem{} // release refs to dispatched work
			q.head++
			q.deficit--
			b.total--
			took++
		}
		if took > 0 && b.onShare != nil {
			shares = append(shares, tenantShare{tenant: q.tenant, n: took})
		}
		if q.depth() == 0 {
			q.items = q.items[:0]
			q.head = 0
			q.deficit = 0
			q.active = false
			b.active = append(b.active[:b.next], b.active[b.next+1:]...)
			// next now points at the following queue; don't advance.
		} else {
			b.next++
		}
	}
	return items, shares
}

// dispatch serves one formed batch in a single engine call.
func (b *batcher) dispatch(items []batchItem, shares []tenantShare) {
	if b.onDispatch != nil {
		b.onDispatch(len(items))
	}
	if b.onShare != nil {
		for _, sh := range shares {
			b.onShare(sh.tenant, sh.n, len(items))
		}
	}
	reqs := make([]engine.Request, len(items))
	for i, it := range items {
		reqs[i] = it.req
	}
	// The dispatch deadline is what keeps a stalled store (or injected
	// fault) from wedging the single dispatcher goroutine forever: past
	// it, the engine's context-wrapped store fails each remaining query
	// with DeadlineExceeded and the batch returns. It bounds the work
	// between store calls — one store call already in flight must still
	// return on its own.
	ctx := context.Background()
	if b.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, b.timeout)
		defer cancel()
	}
	for i, resp := range b.e.CoordinateMany(ctx, reqs) {
		items[i].reply <- resp
	}
}

// close stops admission and waits for the dispatcher to drain the
// queued work.
func (b *batcher) close() {
	b.stopOnce.Do(func() { close(b.stop) })
	<-b.done
}
