// Package server is the coordination service: it exposes an
// engine.Engine over HTTP/JSON so coordination requests cross a real
// process boundary, the regime the paper's MySQL-backed prototype
// serves and the one where coordination cost is measurable as
// communication.
//
// Three pieces:
//
//   - the batch path: POST /v1/coordinate admits each request into a
//     bounded queue, and one dispatcher greedily coalesces whatever is
//     queued — across concurrent HTTP calls — into single
//     engine.CoordinateMany dispatches (see batcher.go). A full queue
//     rejects requests with the typed code "overloaded" (inline in the
//     batch response) instead of building backlog.
//   - the session registry: named stream.Sessions over the shared
//     store, each serialized on its own goroutine behind a bounded
//     mailbox, evicted after an idle timeout, drained (not dropped) on
//     shutdown (see registry.go). Park/retry admission outcomes
//     surface as typed wire errors.
//   - the operational surface: /healthz, and /metrics with request
//     throughput, latency histograms, plan-cache hit rate and exact
//     per-session DBQueries.
//
// Wire shapes and the error taxonomy live in internal/api; the typed
// Go client in internal/client. Result.DBQueries crosses the wire
// unchanged, so the paper's cost metric is end-to-end exact (the
// loopback integration tests pin this).
package server
