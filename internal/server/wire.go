package server

import (
	"bufio"
	"context"
	"io"
	"net"
	"net/http"
	"sync"

	"entangled/internal/admission"
	"entangled/internal/api"
	"entangled/internal/stream"
	"entangled/internal/wire"
)

// maxPendingPush bounds the undelivered-notification backlog one
// session keeps while no subscriber is connected; past it the oldest
// notification drops. A reconnecting client re-syncs from session
// status anyway — the backlog is a convenience window, not a journal.
const maxPendingPush = 1024

// pushHub routes parked-arrival-admitted notifications to the binary
// connections subscribed to each session. A notification is delivered
// to every live subscriber; with none connected it is buffered so a
// client that reconnects and re-subscribes still gets it exactly once.
type pushHub struct {
	mu      sync.Mutex
	subs    map[string]map[*wireConn]struct{}
	pending map[string][]wire.Push
}

func newPushHub() *pushHub {
	return &pushHub{
		subs:    map[string]map[*wireConn]struct{}{},
		pending: map[string][]wire.Push{},
	}
}

// admitted is the registry's notify hook: each parked arrival the
// update's retry pass admitted becomes one push. Called from the
// session loop, so ordering follows the session's event order.
func (p *pushHub) admitted(name string, up stream.Update) {
	for _, id := range up.AdmittedParked {
		p.deliver(wire.Push{Session: name, QueryID: id, Seq: up.Seq})
	}
}

// deliver sends one push to every live subscriber, or buffers it when
// none is connected (or every write failed): a push is either written
// to at least one connection or kept pending, never both, never
// dropped short of the backlog cap.
func (p *pushHub) deliver(ps wire.Push) {
	p.mu.Lock()
	conns := make([]*wireConn, 0, len(p.subs[ps.Session]))
	for wc := range p.subs[ps.Session] {
		conns = append(conns, wc)
	}
	if len(conns) == 0 {
		p.buffer(ps)
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()
	delivered := 0
	for _, wc := range conns {
		if wc.sendPush(ps) == nil {
			delivered++
		}
	}
	if delivered == 0 {
		p.mu.Lock()
		p.buffer(ps)
		p.mu.Unlock()
	}
}

// buffer queues an undeliverable push; callers hold p.mu.
func (p *pushHub) buffer(ps wire.Push) {
	q := append(p.pending[ps.Session], ps)
	if len(q) > maxPendingPush {
		q = q[len(q)-maxPendingPush:]
	}
	p.pending[ps.Session] = q
}

// subscribe registers the connection for one session's pushes and
// flushes the pending backlog to it. A backlog write failing re-queues
// the unsent remainder (the connection is dying; its unsubscribe
// races, so re-buffering keeps the exactly-once promise for the next
// subscriber).
func (p *pushHub) subscribe(wc *wireConn, name string) {
	p.mu.Lock()
	set := p.subs[name]
	if set == nil {
		set = map[*wireConn]struct{}{}
		p.subs[name] = set
	}
	set[wc] = struct{}{}
	backlog := p.pending[name]
	delete(p.pending, name)
	p.mu.Unlock()
	for i, ps := range backlog {
		if wc.sendPush(ps) != nil {
			p.mu.Lock()
			p.pending[name] = append(backlog[i:], p.pending[name]...)
			p.mu.Unlock()
			return
		}
	}
}

// unsubscribe removes a dying connection from every session's set.
func (p *pushHub) unsubscribe(wc *wireConn) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for name, set := range p.subs {
		delete(set, wc)
		if len(set) == 0 {
			delete(p.subs, name)
		}
	}
}

// dropSession forgets a removed/evicted session's subscribers and
// backlog.
func (p *pushHub) dropSession(name string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.subs, name)
	delete(p.pending, name)
}

// wireConn is the server side of one binary-protocol connection:
// requests dispatch concurrently (pipelining), replies and pushes
// serialize through the write mutex.
type wireConn struct {
	srv      *Server
	c        net.Conn
	wmu      sync.Mutex
	inflight sync.WaitGroup
}

// write sends one frame payload.
func (wc *wireConn) write(payload []byte) error {
	wc.wmu.Lock()
	defer wc.wmu.Unlock()
	return wire.WriteFrame(wc.c, payload)
}

// send encodes a frame through a pooled buffer and writes it.
func (wc *wireConn) send(h wire.Header, put func(*wire.Enc)) error {
	buf := wire.GetBuf()
	var e wire.Enc
	e.Reset(*buf)
	wire.PutHeader(&e, h)
	if put != nil {
		put(&e)
	}
	err := wc.write(e.Bytes())
	*buf = e.Bytes()
	wire.PutBuf(buf)
	return err
}

// sendPush delivers one unsolicited notification.
func (wc *wireConn) sendPush(p wire.Push) error {
	return wc.send(wire.Header{Kind: wire.KindPush, ID: 0}, p.Encode)
}

// replyOK answers a request with a success status and body.
func (wc *wireConn) replyOK(id uint64, status int, put func(*wire.Enc)) {
	wc.send(wire.Header{Kind: wire.KindReply, ID: id}, func(e *wire.Enc) {
		wire.PutReplyOK(e, status)
		if put != nil {
			put(e)
		}
	})
}

// replyErr answers a request with the same status/code/message triple
// the HTTP error envelope would carry.
func (wc *wireConn) replyErr(id uint64, status int, we *api.Error) {
	wc.send(wire.Header{Kind: wire.KindReply, ID: id}, func(e *wire.Enc) {
		wire.PutReplyErr(e, status, we)
	})
}

// replyServiceErr maps a service-layer error exactly the way the HTTP
// handlers do, so both protocols report identical errors.
func (wc *wireConn) replyServiceErr(id uint64, err error) {
	status, we := serviceError(err)
	wc.replyErr(id, status, we)
}

// ServeWire accepts binary-protocol connections on l until the
// listener closes. The listener joins the server's drain: Close stops
// it, lets in-flight requests finish, then closes the connections.
// Run it like http.Serve:
//
//	ln, _ := net.Listen("tcp", addr)
//	go srv.ServeWire(ln)
func (s *Server) ServeWire(l net.Listener) error {
	s.wireMu.Lock()
	if s.draining() {
		s.wireMu.Unlock()
		l.Close()
		return errDraining
	}
	s.wireLs[l] = struct{}{}
	s.wireMu.Unlock()
	defer func() {
		s.wireMu.Lock()
		delete(s.wireLs, l)
		s.wireMu.Unlock()
		l.Close()
	}()
	for {
		c, err := l.Accept()
		if err != nil {
			if s.draining() {
				return nil
			}
			return err
		}
		go s.serveWireConn(c)
	}
}

// serveWireConn runs one connection: verify the preamble, then decode
// frames and dispatch until the peer goes away or a framing error
// leaves the stream unsynchronized (nothing to salvage — drop the
// connection; a pipelined client redials).
func (s *Server) serveWireConn(c net.Conn) {
	wc := &wireConn{srv: s, c: c}
	s.wireMu.Lock()
	if s.draining() {
		s.wireMu.Unlock()
		c.Close()
		return
	}
	s.wireConns[wc] = struct{}{}
	s.wireMu.Unlock()

	ctx, cancel := context.WithCancel(context.Background())
	defer func() {
		s.push.unsubscribe(wc)
		s.wireMu.Lock()
		delete(s.wireConns, wc)
		s.wireMu.Unlock()
		cancel()
		wc.inflight.Wait()
		c.Close()
	}()

	br := bufio.NewReaderSize(c, 64<<10)
	var magic [len(wire.Magic)]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil || string(magic[:]) != wire.Magic {
		return
	}
	var buf []byte
	for {
		payload, err := wire.ReadFrame(br, buf)
		if err != nil {
			return
		}
		buf = payload
		d := wire.NewDec(payload)
		h := wire.GetHeader(d)
		if d.Err() != nil || h.ID == 0 {
			return // not even a header; the stream is garbage
		}
		if !s.dispatch(ctx, wc, h, d, false) {
			return
		}
	}
}

// dispatch decodes one request body synchronously (the read buffer is
// reused by the next frame) and serves it on its own goroutine, so
// pipelined requests overlap. A body that fails to decode answers
// bad_request with the same message the HTTP handlers use; an unknown
// kind kills the connection (protocol error, not a request error).
// forwarded marks a request unwrapped from a KindForward envelope:
// forwards are terminal, so a forwarded request this node does not own
// answers route_moved instead of forwarding again.
func (s *Server) dispatch(ctx context.Context, wc *wireConn, h wire.Header, d *wire.Dec, forwarded bool) bool {
	badBody := func(err error) bool {
		wc.inflight.Add(1)
		go func() {
			defer wc.inflight.Done()
			wc.replyErr(h.ID, http.StatusBadRequest, api.Errf(api.CodeBadRequest, "decoding body: %v", err))
		}()
		return true
	}
	serve := func(f func()) bool {
		wc.inflight.Add(1)
		go func() {
			defer wc.inflight.Done()
			f()
		}()
		return true
	}

	switch h.Kind {
	case wire.KindCoordinate:
		req := wire.DecodeCoordinateReq(d)
		if err := d.Finish(); err != nil {
			return badBody(err)
		}
		return serve(func() {
			if we := s.checkBatch(len(req.Requests)); we != nil {
				wc.replyErr(h.ID, http.StatusBadRequest, we)
				return
			}
			out := s.serveBatchRouted(ctx, req.Requests, forwarded)
			wc.replyOK(h.ID, http.StatusOK, func(e *wire.Enc) { wire.PutResponses(e, out) })
		})

	case wire.KindCreateSession:
		req := wire.DecodeCreateSessionReq(d)
		if err := d.Finish(); err != nil {
			return badBody(err)
		}
		return serve(func() {
			// Admission decides at the edge, before any forward; a
			// forwarded create is pre-admitted by the node that gated it.
			var done func(int64)
			if !forwarded {
				var aerr error
				if done, aerr = s.admitEvent(ctx); aerr != nil {
					wc.replyServiceErr(h.ID, aerr)
					return
				}
			}
			if done != nil {
				defer done(0) // creates do no store work
			}
			// A named create belongs to the name's owner; auto-named
			// creates are served here (the registry generates self-owned
			// names).
			if req.ID != "" && wc.forwardOrServe(ctx, h.ID, req.ID, forwarded, wire.KindCreateSession, req.Encode, nil) {
				return
			}
			sh, err := s.createSession(req.ID, req.ParkUnsafe)
			if err != nil {
				wc.replyServiceErr(h.ID, err)
				return
			}
			wc.replyOK(h.ID, http.StatusCreated, func(e *wire.Enc) { e.String(sh.name) })
		})

	case wire.KindJoin:
		req := wire.DecodeJoinReq(d)
		if err := d.Finish(); err != nil {
			return badBody(err)
		}
		return serve(func() {
			var done func(int64)
			if !forwarded {
				var aerr error
				if done, aerr = s.admitEvent(ctx); aerr != nil {
					wc.replyServiceErr(h.ID, aerr)
					return
				}
			}
			if wc.forwardOrServe(ctx, h.ID, req.Session, forwarded, wire.KindJoin, req.Encode, done) {
				return
			}
			wc.replyUpdate(ctx, h.ID, req.Session, stream.Event{Kind: stream.JoinEvent, Query: req.Query}, done)
		})

	case wire.KindLeave:
		req := wire.DecodeLeaveReq(d)
		if err := d.Finish(); err != nil {
			return badBody(err)
		}
		return serve(func() {
			// Metered, never gated: shedding load must not block
			// releasing it.
			var charge func(int64)
			if !forwarded {
				charge = s.meterEvent(ctx)
			}
			if wc.forwardOrServe(ctx, h.ID, req.Session, forwarded, wire.KindLeave, req.Encode, charge) {
				return
			}
			wc.replyUpdate(ctx, h.ID, req.Session, stream.Event{Kind: stream.LeaveEvent, ID: req.QueryID}, charge)
		})

	case wire.KindStatus:
		req := wire.DecodeStatusReq(d)
		if err := d.Finish(); err != nil {
			return badBody(err)
		}
		return serve(func() {
			if wc.forwardOrServe(ctx, h.ID, req.Session, forwarded, wire.KindStatus, req.Encode, nil) {
				return
			}
			st, status, we := s.sessionStatus(req.Session, req.Trace)
			if we != nil {
				wc.replyErr(h.ID, status, we)
				return
			}
			wc.replyOK(h.ID, http.StatusOK, func(e *wire.Enc) { wire.PutSessionStatus(e, st) })
		})

	case wire.KindDeleteSession:
		req := wire.DecodeSessionReq(d)
		if err := d.Finish(); err != nil {
			return badBody(err)
		}
		return serve(func() {
			if wc.forwardOrServe(ctx, h.ID, req.Session, forwarded, wire.KindDeleteSession, req.Encode, nil) {
				return
			}
			if err := s.deleteSession(req.Session); err != nil {
				wc.replyServiceErr(h.ID, err)
				return
			}
			wc.replyOK(h.ID, http.StatusNoContent, nil)
		})

	case wire.KindSubscribe:
		req := wire.DecodeSessionReq(d)
		if err := d.Finish(); err != nil {
			return badBody(err)
		}
		return serve(func() {
			// Push flows only from a session's owner (the owner's session
			// loop feeds its hub), so a misplaced subscribe answers
			// route_moved rather than silently never delivering.
			if _, ok := s.remoteOwner(req.Session); ok {
				wc.replyServiceErr(h.ID, s.opts.Cluster.RouteMoved("session", req.Session))
				return
			}
			if _, err := s.reg.get(req.Session); err != nil {
				wc.replyServiceErr(h.ID, err)
				return
			}
			// Reply before flushing the backlog so the client observes
			// "subscribed" before the first notification.
			wc.replyOK(h.ID, http.StatusOK, nil)
			s.push.subscribe(wc, req.Session)
		})

	case wire.KindHealth:
		if err := d.Finish(); err != nil {
			return badBody(err)
		}
		return serve(func() {
			wc.replyOK(h.ID, http.StatusOK, func(e *wire.Enc) { wire.PutHealth(e, s.health()) })
		})

	case wire.KindCluster:
		if err := d.Finish(); err != nil {
			return badBody(err)
		}
		return serve(func() {
			wc.replyOK(h.ID, http.StatusOK, func(e *wire.Enc) { wire.PutClusterStatus(e, s.clusterStatus()) })
		})

	case wire.KindTenant:
		if forwarded {
			// Forwards never carry tenant envelopes: admission was decided
			// (and is accounted) at the edge node, so a tenant frame inside
			// a forward is a protocol violation.
			return false
		}
		te := wire.DecodeTenantReq(d)
		if err := d.Finish(); err != nil {
			return badBody(err)
		}
		if te.Kind == wire.KindTenant || te.Kind == wire.KindForward {
			// The envelope must be outermost and must not smuggle a
			// forward past the edge gate.
			return false
		}
		// Re-dispatch the wrapped request under the outer frame's id with
		// the tenant identity on the context — the exact analogue of the
		// HTTP X-Tenant middleware. The inner body decodes synchronously
		// here (it aliases the connection's read buffer).
		return s.dispatch(admission.WithTenant(ctx, admission.Tenant(te.Tenant)), wc,
			wire.Header{Kind: te.Kind, ID: h.ID}, wire.NewDec(te.Body), false)

	case wire.KindForward:
		if forwarded {
			return false // a forward inside a forward breaks terminality
		}
		fwd := wire.DecodeForward(d)
		if err := d.Finish(); err != nil {
			return badBody(err)
		}
		if fwd.Hops != 1 {
			return false // the terminal-forward invariant is checkable; enforce it
		}
		if s.opts.Cluster != nil {
			s.opts.Cluster.ReceivedForward()
		}
		// Re-dispatch the wrapped request under the outer frame's id:
		// the inner body decodes synchronously here (it aliases the
		// connection's read buffer), and the reply the inner request
		// produces IS the forward's reply.
		return s.dispatch(ctx, wc, wire.Header{Kind: fwd.Kind, ID: h.ID}, wire.NewDec(fwd.Body), true)
	}
	return false
}

// replyUpdate serves the shared join/leave path and renders the
// outcome with the HTTP status semantics (202 for a parked arrival).
// done, when non-nil, settles the tenant's admission accounting
// exactly once: the event's exact DBQueries on success, zero on
// failure.
func (wc *wireConn) replyUpdate(ctx context.Context, id uint64, session string, ev stream.Event, done func(int64)) {
	up, err := wc.srv.sessionEvent(ctx, session, ev)
	if err != nil {
		if done != nil {
			done(0)
		}
		wc.replyServiceErr(id, err)
		return
	}
	if done != nil {
		done(up.Stats.DBQueries)
	}
	status := http.StatusOK
	if up.Parked {
		status = http.StatusAccepted
	}
	wc.replyOK(id, status, func(e *wire.Enc) { wire.PutUpdate(e, api.UpdateFrom(up)) })
}
