package server_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"entangled/internal/client"
	"entangled/internal/coord"
	"entangled/internal/db"
	"entangled/internal/engine"
	"entangled/internal/eq"
	"entangled/internal/server"
	"entangled/internal/stream"
	"entangled/internal/workload"
)

// newDualLoopback boots ONE server speaking both protocols — HTTP on an
// httptest listener, binary on a loopback TCP listener — and returns a
// client for each. Every equivalence assertion in this file drives the
// same server state through both and compares the decoded results.
func newDualLoopback(t *testing.T, store db.Store, sopts server.Options) (httpC, binC *client.Client, srv *server.Server) {
	t.Helper()
	e := engine.New(store, engine.Options{})
	srv, err := server.New(e, sopts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.ServeWire(ln)
	httpC, err = client.New(ts.URL, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	binC, err = client.New("tcp://"+ln.Addr().String(), client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		binC.Close()
		ts.Close()
		srv.Close()
	})
	return httpC, binC, srv
}

// unsafeTrio builds the fanout-2 taxonomy fixture: two queries whose
// heads unify with the third query's post, so the set is unsafe in
// batch mode and the poster parks (or is rejected) in stream mode.
func unsafeTrio(prefix string) []eq.Query {
	mk := func(id, user string, posts ...string) eq.Query {
		q := eq.Query{
			ID:   id,
			Head: []eq.Atom{eq.NewAtom("R", eq.C(eq.Value(user)), eq.V("x"))},
			Body: []eq.Atom{eq.NewAtom("T", eq.V("k"), eq.C(eq.Value("c0")))},
		}
		for _, p := range posts {
			q.Post = append(q.Post, eq.NewAtom("R", eq.C(eq.Value(p)), eq.V("y")))
		}
		return q
	}
	return []eq.Query{
		mk(prefix+"a", prefix+"A"),
		mk(prefix+"a2", prefix+"A"),
		mk(prefix+"p", prefix+"B", prefix+"A"),
	}
}

// sameClientError asserts both protocols produced the same typed
// *client.Error — status, code, message — and agree on every coord and
// stream sentinel under errors.Is.
func sameClientError(t *testing.T, what string, herr, berr error) {
	t.Helper()
	if (herr == nil) != (berr == nil) {
		t.Fatalf("%s: HTTP error %v, binary error %v", what, herr, berr)
	}
	if herr == nil {
		return
	}
	var he, be *client.Error
	if !errors.As(herr, &he) {
		t.Fatalf("%s: HTTP error %T is not *client.Error: %v", what, herr, herr)
	}
	if !errors.As(berr, &be) {
		t.Fatalf("%s: binary error %T is not *client.Error: %v", what, berr, berr)
	}
	if *he != *be {
		t.Fatalf("%s: errors differ:\nHTTP   %+v\nbinary %+v", what, he, be)
	}
	for _, sentinel := range []error{
		coord.ErrUnsafe, coord.ErrUnsafeArrival, coord.ErrTooManyQueries,
		stream.ErrDuplicateID, stream.ErrUnknownID,
	} {
		if errors.Is(herr, sentinel) != errors.Is(berr, sentinel) {
			t.Fatalf("%s: errors.Is(%v) disagrees: HTTP %v, binary %v", what, sentinel, herr, berr)
		}
	}
}

// sameResponses asserts two decoded batch results are identical DTOs:
// same IDs, deep-equal results (witness values and exact DBQueries
// included), equivalent typed errors.
func sameResponses(t *testing.T, what string, hr, br []client.Response) {
	t.Helper()
	if len(hr) != len(br) {
		t.Fatalf("%s: %d HTTP responses, %d binary", what, len(hr), len(br))
	}
	for i := range hr {
		if hr[i].ID != br[i].ID {
			t.Fatalf("%s[%d]: ID %q != %q", what, i, hr[i].ID, br[i].ID)
		}
		if !reflect.DeepEqual(hr[i].Result, br[i].Result) {
			t.Fatalf("%s[%d]: results differ:\nHTTP   %+v\nbinary %+v", what, i, hr[i].Result, br[i].Result)
		}
		sameClientError(t, fmt.Sprintf("%s[%d]", what, i), hr[i].Err, br[i].Err)
	}
}

// TestWireCodecsEquivalent is the cross-codec harness: randomized
// batches, session event streams, and every reachable error-code path
// go through the HTTP/JSON and binary codecs against one server, and
// each pair of decoded outcomes must be identical — same api DTOs, same
// *client.Error fields, same errors.Is sentinel behavior.
func TestWireCodecsEquivalent(t *testing.T) {
	const rows = 32
	store := workload.NewStore(2, rows, 0)
	httpC, binC, _ := newDualLoopback(t, store, server.Options{MaxBatch: 8})
	ctx := context.Background()

	// Randomized read-only batches: identical requests through both
	// protocols must decode to deep-equal responses (coordination over
	// an immutable store is deterministic, so the protocols see the
	// same server-side answers — any difference is a codec bug).
	rng := rand.New(rand.NewSource(1))
	for round := 0; round < 6; round++ {
		n := 1 + rng.Intn(8)
		reqs := make([]client.Request, n)
		for i := range reqs {
			reqs[i] = client.Request{
				ID:      fmt.Sprintf("r%d.%d", round, i),
				Queries: workload.ListQueriesAt(2+rng.Intn(8), rng.Intn(rows)),
			}
		}
		hr, herr := httpC.CoordinateBatch(ctx, reqs)
		br, berr := binC.CoordinateBatch(ctx, reqs)
		if herr != nil || berr != nil {
			t.Fatalf("round %d: HTTP %v, binary %v", round, herr, berr)
		}
		sameResponses(t, fmt.Sprintf("round %d", round), hr, br)
	}

	// A batch mixing a good request with an inline per-request error
	// (unsafe set): the error rides inside a 200 envelope on both
	// protocols with the same code and message.
	mixed := []client.Request{
		{ID: "bad", Queries: unsafeTrio("x")},
		{ID: "good", Queries: workload.ListQueriesAt(4, 3)},
	}
	hr, herr := httpC.CoordinateBatch(ctx, mixed)
	br, berr := binC.CoordinateBatch(ctx, mixed)
	if herr != nil || berr != nil {
		t.Fatalf("mixed batch: HTTP %v, binary %v", herr, berr)
	}
	sameResponses(t, "mixed", hr, br)
	if hr[0].Err == nil || hr[1].Err != nil {
		t.Fatalf("mixed batch shape wrong: %+v", hr)
	}

	// Transport-level error paths, pairwise. Each case runs the same
	// doomed call over both protocols against identical server state.
	errCases := []struct {
		name string
		call func(c *client.Client) error
	}{
		{"empty batch", func(c *client.Client) error {
			_, err := c.CoordinateBatch(ctx, nil)
			return err
		}},
		{"oversized batch", func(c *client.Client) error {
			_, err := c.CoordinateBatch(ctx, make([]client.Request, 9))
			return err
		}},
		{"status of missing session", func(c *client.Client) error {
			_, err := c.Session("nope").Status(ctx, false)
			return err
		}},
		{"join missing session", func(c *client.Client) error {
			_, err := c.Session("nope").Join(ctx, workload.ChainQuery(0, 0, rows))
			return err
		}},
		{"delete missing session", func(c *client.Client) error {
			return c.Session("nope").Close(ctx)
		}},
	}
	for _, tc := range errCases {
		sameClientError(t, tc.name, tc.call(httpC), tc.call(binC))
	}

	// Session-scoped error paths need a session per protocol so both
	// observe the same (fresh) state: duplicate create, duplicate join,
	// unknown leave, unsafe arrival rejection.
	sessionErrs := func(c *client.Client, name string) (dup, dupJoin, unkLeave, unsafe error) {
		sess, err := c.CreateSession(ctx, name, false)
		if err != nil {
			t.Fatalf("create %s: %v", name, err)
		}
		_, dup = c.CreateSession(ctx, name, false)
		trio := unsafeTrio(name)
		if _, err := sess.Join(ctx, trio[0]); err != nil {
			t.Fatalf("%s join: %v", name, err)
		}
		if _, err := sess.Join(ctx, trio[1]); err != nil {
			t.Fatalf("%s join: %v", name, err)
		}
		_, dupJoin = sess.Join(ctx, trio[0])
		_, unkLeave = sess.Leave(ctx, "nobody")
		_, unsafe = sess.Join(ctx, trio[2])
		return
	}
	// The two protocols necessarily use distinct session names (one
	// server); scrub the name out of the message before comparing.
	scrub := func(err error, name string) error {
		var ce *client.Error
		if errors.As(err, &ce) {
			ce.Message = strings.ReplaceAll(ce.Message, name, "NAME")
		}
		return err
	}
	hDup, hDupJoin, hUnk, hUnsafe := sessionErrs(httpC, "eh")
	bDup, bDupJoin, bUnk, bUnsafe := sessionErrs(binC, "eb")
	sameClientError(t, "duplicate create", scrub(hDup, "eh"), scrub(bDup, "eb"))
	sameClientError(t, "duplicate join", scrub(hDupJoin, "eh"), scrub(bDupJoin, "eb"))
	sameClientError(t, "unknown leave", scrub(hUnk, "eh"), scrub(bUnk, "eb"))
	sameClientError(t, "unsafe arrival", scrub(hUnsafe, "eh"), scrub(bUnsafe, "eb"))

	// Session event streams: the same arrival/departure sequence driven
	// into one session per protocol yields identical updates (modulo
	// the wall-clock ElapsedNS) and identical final status DTOs (modulo
	// the session name).
	arrivals := workload.Arrivals(workload.Churn, 24, rows, 5)
	runStream := func(c *client.Client, name string) []interface{} {
		sess, err := c.CreateSession(ctx, name, true)
		if err != nil {
			t.Fatalf("create %s: %v", name, err)
		}
		var ups []interface{}
		for i, a := range arrivals {
			var up interface{}
			var err error
			if a.Leave {
				u, e := sess.Leave(ctx, a.ID)
				u.ElapsedNS = 0
				up, err = u, e
			} else {
				u, e := sess.Join(ctx, a.Query)
				u.ElapsedNS = 0
				up, err = u, e
			}
			if err != nil {
				t.Fatalf("%s event %d: %v", name, i, err)
			}
			ups = append(ups, up)
		}
		st, err := sess.Status(ctx, true)
		if err != nil {
			t.Fatalf("%s status: %v", name, err)
		}
		st.ID = ""
		ups = append(ups, st)
		return ups
	}
	if hs, bs := runStream(httpC, "sh"), runStream(binC, "sb"); !reflect.DeepEqual(hs, bs) {
		t.Fatalf("session streams diverge:\nHTTP   %+v\nbinary %+v", hs, bs)
	}

	// Parked-arrival semantics: the binary 202 analogue must decode to
	// the same Update the HTTP 202 body carries.
	parkPair := func(c *client.Client, name string) (up interface{}) {
		sess, err := c.CreateSession(ctx, name, true)
		if err != nil {
			t.Fatal(err)
		}
		trio := unsafeTrio(name)
		for _, q := range trio[:2] {
			if _, err := sess.Join(ctx, q); err != nil {
				t.Fatal(err)
			}
		}
		u, err := sess.Join(ctx, trio[2])
		if err != nil {
			t.Fatalf("%s parked join errored: %v", name, err)
		}
		if !u.Parked || u.Admitted {
			t.Fatalf("%s parked join update %+v", name, u)
		}
		u.ElapsedNS = 0
		return u
	}
	if hu, bu := parkPair(httpC, "ph"), parkPair(binC, "pb"); !reflect.DeepEqual(hu, bu) {
		t.Fatalf("parked updates differ:\nHTTP   %+v\nbinary %+v", hu, bu)
	}

	// Health: identical modulo uptime.
	hh, err := httpC.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	bh, err := binC.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	hh.UptimeS, bh.UptimeS = 0, 0
	if !reflect.DeepEqual(hh, bh) {
		t.Fatalf("health differs: HTTP %+v, binary %+v", hh, bh)
	}
}

// TestWirePushParkedArrival pins the push contract end to end: a parked
// arrival over the binary connection (the 202 "parked":true analogue)
// is announced by exactly one push notification when the conflicting
// departure admits it.
func TestWirePushParkedArrival(t *testing.T) {
	store := workload.NewStore(1, 8, 0)
	_, binC, _ := newDualLoopback(t, store, server.Options{})
	ctx := context.Background()

	sess, err := binC.CreateSession(ctx, "pushy", true)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan client.Notification, 8)
	stop, err := sess.Subscribe(ctx, func(n client.Notification) { got <- n })
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	trio := unsafeTrio("w")
	for _, q := range trio[:2] {
		if _, err := sess.Join(ctx, q); err != nil {
			t.Fatal(err)
		}
	}
	up, err := sess.Join(ctx, trio[2])
	if err != nil || !up.Parked {
		t.Fatalf("poster join: update %+v err %v, want parked", up, err)
	}
	select {
	case n := <-got:
		t.Fatalf("push %+v before any departure", n)
	case <-time.After(50 * time.Millisecond):
	}

	// The departure clears the fanout conflict; the retry pass admits
	// the parked query and the admission must push exactly once.
	left, err := sess.Leave(ctx, trio[1].ID)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-got:
		if n.Session != "pushy" || n.QueryID != trio[2].ID || n.Seq != left.Seq {
			t.Fatalf("push %+v, want session pushy query %s seq %d", n, trio[2].ID, left.Seq)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no push for the admitted parked arrival")
	}
	select {
	case n := <-got:
		t.Fatalf("duplicate push %+v", n)
	case <-time.After(150 * time.Millisecond):
	}

	// The server state agrees with the notification.
	st, err := sess.Status(ctx, false)
	if err != nil {
		t.Fatal(err)
	}
	if st.Live != 2 || st.Parked != 0 {
		t.Fatalf("status %+v, want the parked query live", st)
	}
}

// killableListener records accepted connections so a test can cut them
// mid-protocol, simulating a network drop between client and server.
type killableListener struct {
	net.Listener
	mu    sync.Mutex
	conns []net.Conn
}

func (l *killableListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err == nil {
		l.mu.Lock()
		l.conns = append(l.conns, c)
		l.mu.Unlock()
	}
	return c, err
}

func (l *killableListener) killAll() {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, c := range l.conns {
		c.Close()
	}
	l.conns = nil
}

// TestWirePushSurvivesReconnect kills the subscriber's connection out
// from under it and checks the exactly-once promise holds across the
// redial: pushes raised while the client is away are buffered and
// flushed to the re-subscribed connection, never dropped, never
// duplicated.
func TestWirePushSurvivesReconnect(t *testing.T) {
	store := workload.NewStore(1, 8, 0)
	e := engine.New(store, engine.Options{})
	srv, err := server.New(e, server.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	kl := &killableListener{Listener: ln}
	go srv.ServeWire(kl)

	httpC, err := client.New(ts.URL, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	binC, err := client.New("tcp://"+ln.Addr().String(), client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer binC.Close()
	ctx := context.Background()

	// Park the poster over HTTP (the session does not care which
	// protocol drives it), subscribe over binary.
	sess, err := httpC.CreateSession(ctx, "flaky", true)
	if err != nil {
		t.Fatal(err)
	}
	trio := unsafeTrio("f")
	for _, q := range trio[:2] {
		if _, err := sess.Join(ctx, q); err != nil {
			t.Fatal(err)
		}
	}
	if up, err := sess.Join(ctx, trio[2]); err != nil || !up.Parked {
		t.Fatalf("poster join: %+v %v", up, err)
	}
	got := make(chan client.Notification, 8)
	stop, err := binC.Session("flaky").Subscribe(ctx, func(n client.Notification) { got <- n })
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	// Cut every server-side connection. The binary transport's keeper
	// redials and re-subscribes on its own; the departure below may
	// land before or after the re-subscribe — either way the push must
	// arrive exactly once (live delivery or backlog flush).
	kl.killAll()
	if _, err := sess.Leave(ctx, trio[1].ID); err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-got:
		if n.Session != "flaky" || n.QueryID != trio[2].ID {
			t.Fatalf("push %+v, want query %s", n, trio[2].ID)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("push lost across reconnect")
	}
	select {
	case n := <-got:
		t.Fatalf("duplicate push after reconnect: %+v", n)
	case <-time.After(150 * time.Millisecond):
	}
}

// TestWirePushBacklogFlush is the deterministic no-subscriber path: a
// push raised with nobody connected buffers server-side and flushes,
// exactly once, to the next subscriber.
func TestWirePushBacklogFlush(t *testing.T) {
	store := workload.NewStore(1, 8, 0)
	httpC, binC, _ := newDualLoopback(t, store, server.Options{})
	ctx := context.Background()

	sess, err := httpC.CreateSession(ctx, "later", true)
	if err != nil {
		t.Fatal(err)
	}
	trio := unsafeTrio("l")
	for _, q := range trio[:2] {
		if _, err := sess.Join(ctx, q); err != nil {
			t.Fatal(err)
		}
	}
	if up, err := sess.Join(ctx, trio[2]); err != nil || !up.Parked {
		t.Fatalf("poster join: %+v %v", up, err)
	}
	left, err := sess.Leave(ctx, trio[1].ID)
	if err != nil {
		t.Fatal(err)
	}

	// Nobody was subscribed when the admission happened; subscribing
	// now must deliver the buffered notification.
	got := make(chan client.Notification, 8)
	stop, err := binC.Session("later").Subscribe(ctx, func(n client.Notification) { got <- n })
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	select {
	case n := <-got:
		if n.Session != "later" || n.QueryID != trio[2].ID || n.Seq != left.Seq {
			t.Fatalf("buffered push %+v, want query %s seq %d", n, trio[2].ID, left.Seq)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("buffered push never flushed")
	}
	select {
	case n := <-got:
		t.Fatalf("buffered push duplicated: %+v", n)
	case <-time.After(150 * time.Millisecond):
	}
}
