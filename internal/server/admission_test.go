package server_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http/httptest"
	"sync"
	"testing"

	"entangled/internal/admission"
	"entangled/internal/api"
	"entangled/internal/client"
	"entangled/internal/engine"
	"entangled/internal/server"
	"entangled/internal/workload"
)

// tenantHarness is one server speaking both protocols with (or
// without) admission, plus a per-tenant client factory.
type tenantHarness struct {
	t       *testing.T
	srv     *server.Server
	httpURL string
	binAddr string
}

func newAdmissionLoopback(t *testing.T, cfg *admission.Config, sopts server.Options) *tenantHarness {
	t.Helper()
	e := engine.New(workload.NewStore(1, 64, 0), engine.Options{})
	if cfg != nil {
		sopts.Admission = admission.NewController(*cfg)
	}
	srv, err := server.New(e, sopts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.ServeWire(ln)
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return &tenantHarness{t: t, srv: srv, httpURL: ts.URL, binAddr: ln.Addr().String()}
}

// client returns a client for one tenant over one protocol ("http" or
// "binary").
func (h *tenantHarness) client(proto, tenant string) *client.Client {
	h.t.Helper()
	base := h.httpURL
	if proto == "binary" {
		base = "tcp://" + h.binAddr
	}
	c, err := client.New(base, client.Options{Tenant: tenant})
	if err != nil {
		h.t.Fatal(err)
	}
	h.t.Cleanup(func() { c.Close() })
	return c
}

// requireThrottled asserts one error is the full typed throttle
// contract: the stable code, the sentinel surviving errors.Is across
// the network, fate-known (safe to blind-retry), and retryable.
func requireThrottled(t *testing.T, err error) *client.Error {
	t.Helper()
	if err == nil {
		t.Fatal("want a throttled error, got success")
	}
	var e *client.Error
	if !errors.As(err, &e) {
		t.Fatalf("throttle is not a typed *client.Error: %v", err)
	}
	if e.Code != api.CodeThrottled {
		t.Fatalf("code = %q, want %q (%v)", e.Code, api.CodeThrottled, err)
	}
	if !errors.Is(err, admission.ErrThrottled) {
		t.Fatalf("errors.Is(err, admission.ErrThrottled) is false for %v", err)
	}
	if !client.FateKnown(err) || !client.IsRetryable(err) {
		t.Fatalf("throttle must be fate-known and retryable: %v", err)
	}
	return e
}

// TestAdmissionFairnessAcrossProtocols is the fairness proof: a hot
// tenant submits a batch far over its in-flight quota while four
// in-quota tenants run their full workloads concurrently, over both
// protocols. The in-quota tenants' admitted throughput must equal
// their solo baseline (every request succeeds — trivially >= the 90%
// bar), the hot tenant must receive ONLY the typed throttled error for
// its rejected requests (zero untyped errors, zero silent drops), and
// the controller's in-flight accounting must drain back to zero.
func TestAdmissionFairnessAcrossProtocols(t *testing.T) {
	const quietReqs = 20
	for _, proto := range []string{"http", "binary"} {
		t.Run(proto, func(t *testing.T) {
			h := newAdmissionLoopback(t, &admission.Config{
				Tenants: map[string]admission.Policy{
					"hot": {MaxInFlight: 1},
				},
			}, server.Options{})

			quietBatch := func() []client.Request {
				reqs := make([]client.Request, quietReqs)
				for i := range reqs {
					reqs[i] = client.Request{ID: fmt.Sprintf("q%d", i), Queries: workload.ListQueriesAt(4, i%64)}
				}
				return reqs
			}

			// Solo baseline: an in-quota tenant alone admits everything.
			solo := h.client(proto, "baseline")
			resps, err := solo.CoordinateBatch(context.Background(), quietBatch())
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range resps {
				if r.Err != nil {
					t.Fatalf("solo baseline rejected: %v", r.Err)
				}
			}

			// Contention: the hot tenant floods one batch of 32 — 32x its
			// in-flight quota of 1 — while four quiet tenants run the solo
			// workload concurrently.
			var wg sync.WaitGroup
			quietErrs := make(chan error, 4)
			for i := 0; i < 4; i++ {
				c := h.client(proto, fmt.Sprintf("quiet%d", i))
				wg.Add(1)
				go func() {
					defer wg.Done()
					resps, err := c.CoordinateBatch(context.Background(), quietBatch())
					if err != nil {
						quietErrs <- err
						return
					}
					for _, r := range resps {
						if r.Err != nil {
							quietErrs <- r.Err
							return
						}
					}
				}()
			}
			hot := h.client(proto, "hot")
			hotReqs := make([]client.Request, 32)
			for i := range hotReqs {
				hotReqs[i] = client.Request{ID: fmt.Sprintf("h%d", i), Queries: workload.ListQueriesAt(4, i%64)}
			}
			hotResps, err := hot.CoordinateBatch(context.Background(), hotReqs)
			if err != nil {
				t.Fatalf("hot batch call itself failed: %v", err)
			}
			wg.Wait()
			select {
			case err := <-quietErrs:
				t.Fatalf("in-quota tenant rejected under hot-tenant load: %v", err)
			default:
			}

			// Every hot response is either a result or the typed throttle —
			// nothing untyped, nothing missing. Admission decides the batch
			// sequentially against an in-flight cap of 1, so exactly one
			// request was admitted.
			admitted, throttled := 0, 0
			for _, r := range hotResps {
				switch {
				case r.Err == nil && r.Result != nil:
					admitted++
				case r.Err != nil:
					requireThrottled(t, r.Err)
					throttled++
				default:
					t.Fatalf("silent drop: response %q has neither result nor error", r.ID)
				}
			}
			if admitted != 1 || throttled != 31 {
				t.Fatalf("hot batch: %d admitted / %d throttled, want 1/31", admitted, throttled)
			}

			// The ledger agrees, and every in-flight slot was released.
			st, err := h.client("http", "").Tenants(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if !st.Enabled {
				t.Fatal("tenants endpoint reports admission disabled")
			}
			byName := map[string]api.TenantStatus{}
			for _, ts := range st.Tenants {
				byName[ts.Tenant] = ts
			}
			hotSt, ok := byName["hot"]
			if !ok {
				t.Fatalf("no hot tenant in %+v", st.Tenants)
			}
			if hotSt.Admitted != 1 || hotSt.Throttled != 31 {
				t.Fatalf("hot ledger: admitted %d throttled %d, want 1/31", hotSt.Admitted, hotSt.Throttled)
			}
			for name, ts := range byName {
				if ts.InFlight != 0 {
					t.Fatalf("tenant %s still holds %d in-flight slots after quiescence", name, ts.InFlight)
				}
			}
			for i := 0; i < 4; i++ {
				q := byName[fmt.Sprintf("quiet%d", i)]
				if q.Admitted != quietReqs || q.Throttled != 0 {
					t.Fatalf("quiet%d ledger: admitted %d throttled %d, want %d/0", i, q.Admitted, q.Throttled, quietReqs)
				}
				if q.DBQueriesSpent == 0 {
					t.Fatalf("quiet%d spent no DBQueries despite %d admitted requests", i, quietReqs)
				}
			}
		})
	}
}

// TestAdmissionRetryAfterAcrossProtocols: a rate-limited tenant's
// rejection carries a positive retry-after hint through both codecs
// (the wire field and the HTTP envelope + Retry-After header), and the
// session create path reports the same typed error as the batch path.
func TestAdmissionRetryAfterAcrossProtocols(t *testing.T) {
	h := newAdmissionLoopback(t, &admission.Config{
		Tenants: map[string]admission.Policy{
			// One token, refilled at 0.1/s: the first call admits, the
			// second throttles with a ~10s hint.
			"limh": {Rate: 0.1, Burst: 1},
			"limb": {Rate: 0.1, Burst: 1},
		},
	}, server.Options{})
	ctx := context.Background()
	for proto, tenant := range map[string]string{"http": "limh", "binary": "limb"} {
		c := h.client(proto, tenant)
		if _, err := c.Coordinate(ctx, workload.ListQueriesAt(4, 0)); err != nil {
			t.Fatalf("%s: first request should admit: %v", proto, err)
		}
		_, err := c.Coordinate(ctx, workload.ListQueriesAt(4, 0))
		e := requireThrottled(t, err)
		if e.RetryAfter <= 0 {
			t.Fatalf("%s: inline throttle has no retry-after hint: %+v", proto, e)
		}
		// The session-create path throttles identically — but as the
		// call's own error (HTTP 429 / wire error reply), not inline.
		_, err = c.CreateSession(ctx, "s-"+tenant, false)
		e = requireThrottled(t, err)
		if e.RetryAfter <= 0 {
			t.Fatalf("%s: create throttle has no retry-after hint: %+v", proto, e)
		}
		if proto == "http" && e.Status != 429 {
			t.Fatalf("http create throttle status = %d, want 429", e.Status)
		}
	}
}

// TestAdmissionSessionGatesJoinNotLeave: creates and joins are gated,
// leaves never are — a tenant over budget can always release load, and
// the release is still metered against its spend.
func TestAdmissionSessionGatesJoinNotLeave(t *testing.T) {
	for proto, tenant := range map[string]string{"http": "sh", "binary": "sb"} {
		h := newAdmissionLoopback(t, &admission.Config{
			Tenants: map[string]admission.Policy{
				// Two tokens, effectively never refilled: one create + one
				// join, then the gate closes.
				tenant: {Rate: 0.0001, Burst: 2},
			},
		}, server.Options{})
		ctx := context.Background()
		c := h.client(proto, tenant)
		sess, err := c.CreateSession(ctx, "team", false)
		if err != nil {
			t.Fatalf("%s create: %v", proto, err)
		}
		q := workload.ListQueriesAt(2, 0)
		if _, err := sess.Join(ctx, q[0]); err != nil {
			t.Fatalf("%s first join: %v", proto, err)
		}
		_, err = sess.Join(ctx, q[1])
		requireThrottled(t, err)
		// The leave proceeds despite the empty bucket...
		if _, err := sess.Leave(ctx, q[0].ID); err != nil {
			t.Fatalf("%s leave while throttled: %v", proto, err)
		}
		// ...and its store work landed on the tenant's ledger.
		st, err := h.client("http", "").Tenants(ctx)
		if err != nil {
			t.Fatal(err)
		}
		for _, ts := range st.Tenants {
			if ts.Tenant == tenant && ts.DBQueriesSpent == 0 {
				t.Fatalf("%s: tenant %s has zero spend after join+leave", proto, tenant)
			}
		}
	}
}

// TestAdmissionTransparentWhenUnconfigured: a server without Admission
// behaves exactly as before the layer existed, even for clients that
// send tenant identity — no gating, no tenant accounting, and the
// tenants endpoint reports the feature off.
func TestAdmissionTransparentWhenUnconfigured(t *testing.T) {
	h := newAdmissionLoopback(t, nil, server.Options{})
	ctx := context.Background()
	for _, proto := range []string{"http", "binary"} {
		c := h.client(proto, "acme")
		if _, err := c.Coordinate(ctx, workload.ListQueriesAt(4, 0)); err != nil {
			t.Fatalf("%s coordinate with tenant set: %v", proto, err)
		}
		sess, err := c.CreateSession(ctx, "plain-"+proto, false)
		if err != nil {
			t.Fatalf("%s create: %v", proto, err)
		}
		q := workload.ListQueriesAt(1, 0)[0]
		if _, err := sess.Join(ctx, q); err != nil {
			t.Fatalf("%s join: %v", proto, err)
		}
		if _, err := sess.Leave(ctx, q.ID); err != nil {
			t.Fatalf("%s leave: %v", proto, err)
		}
	}
	st, err := h.client("http", "").Tenants(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Enabled || len(st.Tenants) != 0 {
		t.Fatalf("unconfigured server reports tenants: %+v", st)
	}
	m, err := h.client("http", "").Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Admission != nil {
		t.Fatalf("unconfigured server reports admission metrics: %+v", m.Admission)
	}
}

// TestAdmissionMetricsShares: under admission, /metrics grows the
// per-tenant admission block with dispatch counts and share
// histograms fed by the fair batcher.
func TestAdmissionMetricsShares(t *testing.T) {
	h := newAdmissionLoopback(t, &admission.Config{}, server.Options{})
	ctx := context.Background()
	c := h.client("http", "acme")
	for i := 0; i < 5; i++ {
		if _, err := c.Coordinate(ctx, workload.ListQueriesAt(4, i)); err != nil {
			t.Fatal(err)
		}
	}
	m, err := h.client("http", "").Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Admission == nil {
		t.Fatal("no admission metrics block")
	}
	if m.Admission.Admitted < 5 {
		t.Fatalf("admitted = %d, want >= 5", m.Admission.Admitted)
	}
	var acme *api.TenantCounters
	for i := range m.Admission.Tenants {
		if m.Admission.Tenants[i].Tenant == "acme" {
			acme = &m.Admission.Tenants[i]
		}
	}
	if acme == nil {
		t.Fatalf("no acme tenant in %+v", m.Admission.Tenants)
	}
	if acme.Dispatched != 5 {
		t.Fatalf("dispatched = %d, want 5", acme.Dispatched)
	}
	var shareSum int64
	for _, n := range acme.ShareCounts {
		shareSum += n
	}
	if len(acme.ShareCounts) != 10 || shareSum != 5 {
		t.Fatalf("share histogram %v, want 10 deciles summing to 5", acme.ShareCounts)
	}
	if acme.DBQueriesSpent == 0 {
		t.Fatal("acme spent no DBQueries despite 5 coordinations")
	}
}
