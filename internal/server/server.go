package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"entangled/internal/admission"
	"entangled/internal/api"
	"entangled/internal/cluster"
	"entangled/internal/coord"
	"entangled/internal/engine"
	"entangled/internal/persist"
	"entangled/internal/stream"
	"entangled/internal/wire"
)

// Options configures a Server.
type Options struct {
	// MaxBatch caps both the number of requests accepted in one
	// POST /v1/coordinate call and the size of the batches the
	// dispatcher forms across calls. Zero means 1024.
	MaxBatch int
	// QueueDepth bounds the batch path's admission queue. A full queue
	// rejects the request with the typed code "overloaded", reported
	// inline in its Response (the HTTP call itself stays 200 so one hot
	// spot cannot fail a whole batch; single-request clients get the
	// typed error from Coordinate). Zero means 4096.
	QueueDepth int
	// MailboxSize bounds each session's mailbox; a full mailbox answers
	// 429. Zero means 64.
	MailboxSize int
	// IdleTimeout evicts sessions with no client activity for this
	// long. Zero means 5 minutes; negative disables eviction.
	IdleTimeout time.Duration
	// Session is the base configuration for sessions the registry
	// creates; its ParkUnsafe is overridden per create request.
	Session stream.Options
	// Persist, when non-nil, makes sessions durable: every admitted (or
	// parked) event is journaled to the backend before it is acked, and
	// New rebuilds the sessions found in the backend's data directory by
	// replaying their journals. The server does not own the backend's
	// lifecycle — the caller opens it (replaying the store WAL) and
	// closes it after Close.
	Persist *persist.Backend
	// ProbeInterval is how often the server probes a degraded backend
	// trying to lift degraded mode (flush pending journal payloads and
	// resume accepting writes). Zero means 500ms; negative disables the
	// probe loop (a caller then drives persist.Backend.Probe itself).
	// Ignored without Persist.
	ProbeInterval time.Duration
	// DispatchTimeout bounds each batch dispatch: past it, every
	// remaining store query in the batch fails with a deadline error
	// instead of wedging the dispatcher goroutine on a stalled store.
	// Zero means 30s; negative disables the deadline.
	DispatchTimeout time.Duration
	// Admission, when non-nil, turns on tenant-aware admission: every
	// request is attributed to the tenant named by the HTTP X-Tenant
	// header or the binary tenant envelope (Default when absent), gated
	// against the tenant's policy (token-bucket rate, in-flight cap,
	// rolling DBQueries budget), queued through the weighted-fair
	// batcher, and metered by exact Result.DBQueries spend. Rejections
	// are the typed, fate-known "throttled" error carrying a
	// retry-after hint. Nil (the default) disables admission entirely —
	// no gating, no tenant queues, no per-tenant metrics — so an
	// unconfigured server behaves exactly as before the layer existed.
	Admission *admission.Controller
	// Cluster, when non-nil, makes this node one member of a coordserve
	// cluster: session-scoped requests it does not own forward to the
	// owning peer (terminally — a forwarded request that still misses
	// answers route_moved), batches scatter-gather across owners, and
	// the cluster view appears on /v1/cluster, /healthz and /metrics.
	// The server does not own the router's lifecycle — the caller builds
	// it (dialing peers) and closes it after Close. Nil runs standalone.
	Cluster *cluster.Router
}

func (o Options) withDefaults() Options {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 1024
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 4096
	}
	if o.MailboxSize <= 0 {
		o.MailboxSize = 64
	}
	if o.IdleTimeout == 0 {
		o.IdleTimeout = 5 * time.Minute
	}
	if o.ProbeInterval == 0 {
		o.ProbeInterval = 500 * time.Millisecond
	}
	if o.DispatchTimeout == 0 {
		o.DispatchTimeout = 30 * time.Second
	}
	return o
}

// Server exposes an engine.Engine over HTTP/JSON: the batch
// coordination endpoint, the streaming-session resource, and the
// operational surface. It implements http.Handler; serve it with any
// http.Server and call Close on shutdown to drain admitted work.
//
//	POST   /v1/coordinate          batch coordination
//	POST   /v1/sessions            create a streaming session
//	GET    /v1/sessions/{id}       session status (?trace=1 adds the trace)
//	POST   /v1/sessions/{id}/join  admit one arriving query
//	POST   /v1/sessions/{id}/leave depart one query by ID
//	DELETE /v1/sessions/{id}       close the session
//	GET    /v1/cluster             membership, ring parameters, relation placements
//	GET    /healthz                liveness and drain state
//	GET    /metrics                counters, latency histograms, plan-cache and per-session stats
type Server struct {
	e        *engine.Engine
	opts     Options
	mux      *http.ServeMux
	adm      *admission.Controller // nil: admission off
	batch    *batcher
	reg      *registry
	met      *metrics
	push     *pushHub
	recovery api.RecoveryStatus
	closing  sync.Once
	closed   chan struct{}
	// probeDone is closed when the degraded-mode probe loop exits; nil
	// when the server runs without one (no backend, or disabled).
	probeDone chan struct{}

	wireMu    sync.Mutex
	wireLs    map[net.Listener]struct{}
	wireConns map[*wireConn]struct{}
}

// New builds a server over the engine. The server owns a dispatcher
// goroutine and a session janitor from this point on; Close releases
// them. With Options.Persist set, New also rebuilds every session
// journaled in the backend's data directory — replaying each journal's
// events through a fresh incremental session — and the error return is
// recovery failing (it is always nil without persistence).
func New(e *engine.Engine, opts Options) (*Server, error) {
	opts = opts.withDefaults()
	s := &Server{
		e:         e,
		opts:      opts,
		mux:       http.NewServeMux(),
		met:       newMetrics(),
		push:      newPushHub(),
		closed:    make(chan struct{}),
		wireLs:    make(map[net.Listener]struct{}),
		wireConns: make(map[*wireConn]struct{}),
	}
	s.adm = opts.Admission
	// The batcher's fairness hooks exist only when admission is on: an
	// unconfigured server runs one anonymous queue with weight 1, which
	// is exactly the single FIFO it always had.
	var weight func(admission.Tenant) int
	var onShare func(admission.Tenant, int, int)
	if s.adm != nil {
		weight = s.adm.Weight
		onShare = s.met.observeShare
	}
	s.batch = newBatcher(e, opts.QueueDepth, opts.MaxBatch, opts.DispatchTimeout, func(int) {
		s.met.coordBatches.Add(1)
	}, weight, onShare)
	newSession := func(park bool) *stream.Session {
		so := opts.Session
		so.ParkUnsafe = park
		return e.NewSession(so)
	}
	var newJournal func(string, bool) (eventJournal, error)
	if opts.Persist != nil {
		newJournal = func(name string, park bool) (eventJournal, error) {
			return opts.Persist.CreateSessionJournal(name, park)
		}
	}
	s.reg = newRegistry(newSession, opts.MailboxSize, opts.IdleTimeout)
	s.reg.newJournal = newJournal
	// Parked arrivals a departure admitted become push notifications on
	// subscribed binary connections; dropped sessions drop their
	// undelivered backlog.
	s.reg.notify = s.push.admitted
	s.reg.onDrop = s.push.dropSession
	if opts.Persist != nil {
		// Eviction pauses while the backend is degraded: dropping a
		// journal needs the filesystem, and a failed drop would resurrect
		// the session as a ghost on the next restart. Idle sessions wait
		// out the outage instead.
		s.reg.skipEvict = opts.Persist.Degraded
	}
	if opts.Cluster != nil {
		// A cluster node generates only session names it owns, so an
		// auto-named create lands correctly placed on whichever node
		// served it (ownership partitions the generated namespace, so
		// nodes cannot collide either).
		s.reg.nameOK = opts.Cluster.OwnsLocally
	}
	if err := s.recoverSessions(newSession); err != nil {
		s.Close()
		return nil, err
	}
	if opts.Persist != nil && opts.ProbeInterval > 0 {
		s.probeDone = make(chan struct{})
		go s.probeLoop(opts.ProbeInterval)
	}

	s.mux.HandleFunc("POST /v1/coordinate", s.handleCoordinate)
	s.mux.HandleFunc("POST /v1/sessions", s.handleCreateSession)
	s.mux.HandleFunc("GET /v1/sessions/{id}", s.handleSessionStatus)
	s.mux.HandleFunc("POST /v1/sessions/{id}/join", s.handleSessionJoin)
	s.mux.HandleFunc("POST /v1/sessions/{id}/leave", s.handleSessionLeave)
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleSessionDelete)
	s.mux.HandleFunc("GET /v1/recovery", s.handleRecovery)
	s.mux.HandleFunc("GET /v1/cluster", s.handleCluster)
	s.mux.HandleFunc("GET /v1/tenants", s.handleTenants)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s, nil
}

// recoverSessions rebuilds the sessions journaled in the durable
// backend: each journal's admitted events replay in order through a
// fresh session (the same incremental path that admitted them), so the
// recovered session's live set, parked set, and coordination state
// match the pre-crash session. Replay is deterministic because the
// store was recovered first and events re-run against it in admission
// order.
func (s *Server) recoverSessions(newSession func(bool) *stream.Session) error {
	if s.opts.Persist == nil {
		return nil
	}
	recovered, err := s.opts.Persist.RecoverSessions()
	if err != nil {
		return err
	}
	for _, rs := range recovered {
		sess := newSession(rs.Park)
		for _, ev := range rs.Events {
			// Outcomes are not re-checked: only admitted/parked events
			// were journaled, and replay over the recovered store is
			// deterministic, so each event lands as it originally did.
			sess.Apply(ev)
		}
		if _, err := s.reg.adopt(rs.Name, sess, rs.Journal); err != nil {
			return fmt.Errorf("server: recovering session %s: %w", rs.Name, err)
		}
		s.recovery.RecoveredSessions = append(s.recovery.RecoveredSessions, rs.Name)
	}
	rec := s.opts.Persist.RecoveryStats()
	s.recovery.Enabled = true
	s.recovery.DataDir = s.opts.Persist.Dir()
	s.recovery.SnapshotSeq = rec.SnapshotSeq
	s.recovery.SnapshotFrames = rec.SnapshotFrames
	s.recovery.WALFrames = rec.WALFrames
	s.recovery.WALSegments = rec.WALSegments
	s.recovery.TornTail = rec.TornTail
	s.recovery.Sessions = rec.Sessions
	s.recovery.SessionEvents = rec.SessionEvents
	s.recovery.SessionTornTails = rec.SessionTornTails
	s.recovery.DurationMS = rec.DurationMS
	return nil
}

// probeLoop periodically tries to lift degraded mode: while the
// backend reports degraded, each tick issues a probe write; the first
// one that reaches stable storage flushes the pending journal payloads
// and re-opens the write path. Healthy ticks are free (one atomic
// load).
func (s *Server) probeLoop(interval time.Duration) {
	defer close(s.probeDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.closed:
			return
		case <-t.C:
			if s.opts.Persist.Degraded() {
				// A failed probe keeps degraded mode; the next tick
				// retries. The backend counts both outcomes.
				_ = s.opts.Persist.Probe()
			}
		}
	}
}

// writeGate rejects write-path work while the durable backend is
// degraded: the request fails up front with a typed, retryable error —
// its fate known — instead of mutating in-memory state the journal
// cannot yet record. Read paths (status, health, metrics, recovery)
// are never gated.
func (s *Server) writeGate() error {
	if s.opts.Persist != nil && s.opts.Persist.Degraded() {
		return fmt.Errorf("%w (cause: %v)", persist.ErrDegraded, s.opts.Persist.DegradeCause())
	}
	return nil
}

// createSession gates and creates one named session; both protocols'
// create paths come through here.
func (s *Server) createSession(name string, parkUnsafe bool) (*sessionHandle, error) {
	if err := s.writeGate(); err != nil {
		return nil, err
	}
	return s.reg.create(name, parkUnsafe)
}

// deleteSession gates and removes one session. Deletion is a write:
// it drops the journal from the data directory, and a drop the
// degraded filesystem loses would resurrect the session on restart.
func (s *Server) deleteSession(name string) error {
	if err := s.writeGate(); err != nil {
		return err
	}
	return s.reg.remove(name)
}

// ServeHTTP implements http.Handler. The X-Tenant header, when
// present, attaches the caller's tenant identity to the request
// context — the HTTP analogue of the binary protocol's tenant
// envelope; handlers read it back with admission.FromContext.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if ten := r.Header.Get(api.TenantHeader); ten != "" {
		r = r.WithContext(admission.WithTenant(r.Context(), admission.Tenant(ten)))
	}
	s.mux.ServeHTTP(w, r)
}

// tenantOf resolves the request's tenant for queue routing and
// accounting: the context's identity when admission is on (absent
// means Default), the single anonymous tenant otherwise.
func (s *Server) tenantOf(ctx context.Context) admission.Tenant {
	if s.adm == nil {
		return ""
	}
	if t := admission.FromContext(ctx); t != "" {
		return t
	}
	return admission.Default
}

// admitEvent gates one session-mutating request (create, join) against
// the tenant's policy. The returned release must be called exactly once
// with the work's DBQueries spend — it frees the in-flight slot and
// lands the charge. A nil release with nil error means admission is
// off.
func (s *Server) admitEvent(ctx context.Context) (func(dbq int64), error) {
	if s.adm == nil {
		return nil, nil
	}
	ten := s.tenantOf(ctx)
	if err := s.adm.Decide(ten); err != nil {
		return nil, err
	}
	return func(dbq int64) { s.adm.Done(ten, dbq) }, nil
}

// meterEvent returns a charge-only hook for ungated work: a leave is
// never throttled (shedding load must not block releasing it), but the
// store work it triggers still lands on the tenant's budget. Nil when
// admission is off.
func (s *Server) meterEvent(ctx context.Context) func(dbq int64) {
	if s.adm == nil {
		return nil
	}
	ten := s.tenantOf(ctx)
	return func(dbq int64) { s.adm.ChargeDB(ten, dbq) }
}

// Close drains the server: the batch queue stops admitting and serves
// what it holds, every session's mailbox drains and its goroutine
// exits, the janitor stops. Safe to call more than once. Pair it with
// http.Server.Shutdown, which drains the connections; Close drains the
// work behind them.
func (s *Server) Close() {
	s.closing.Do(func() {
		close(s.closed)
		if s.probeDone != nil {
			<-s.probeDone
		}
		// Stop accepting binary connections first so no new work arrives
		// while the queues drain.
		s.wireMu.Lock()
		for l := range s.wireLs {
			l.Close()
		}
		s.wireMu.Unlock()
		s.batch.close()
		s.reg.close()
		// Existing binary connections finish their in-flight requests
		// (the drained queues answer them, typically with "draining"),
		// then close.
		s.wireMu.Lock()
		conns := make([]*wireConn, 0, len(s.wireConns))
		for wc := range s.wireConns {
			conns = append(conns, wc)
		}
		s.wireMu.Unlock()
		for _, wc := range conns {
			wc.inflight.Wait()
			wc.c.Close()
		}
		// Registry close already synced and closed every session
		// journal; flush the store WAL too, so a drained server's whole
		// data directory is on stable storage regardless of sync
		// policy. The backend itself stays open — the caller owns it.
		if s.opts.Persist != nil {
			s.opts.Persist.Sync()
		}
	})
}

// draining reports whether Close has begun.
func (s *Server) draining() bool {
	select {
	case <-s.closed:
		return true
	default:
		return false
	}
}

// writeJSON writes a JSON body with a status code.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError writes the error envelope. A retry-after hint also goes
// out as the standard Retry-After header (whole seconds, rounded up),
// so plain HTTP clients that never parse the envelope still see it.
func writeError(w http.ResponseWriter, status int, e *api.Error) {
	if e != nil && e.RetryAfterMS > 0 {
		w.Header().Set("Retry-After", strconv.FormatInt((e.RetryAfterMS+999)/1000, 10))
	}
	writeJSON(w, status, api.ErrorEnvelope{Error: e})
}

// statusFor maps a service-layer error to its HTTP status and wire
// code.
func statusFor(err error) (int, string) {
	switch {
	case errors.Is(err, errDraining):
		return http.StatusServiceUnavailable, api.CodeDraining
	case errors.Is(err, errOverloaded):
		return http.StatusTooManyRequests, api.CodeOverloaded
	// A throttle is fate-known by construction: admission decides
	// before the request touches the batcher, a session, or the store.
	case errors.Is(err, admission.ErrThrottled):
		return http.StatusTooManyRequests, api.CodeThrottled
	case errors.Is(err, errMailboxFull):
		return http.StatusTooManyRequests, api.CodeMailboxFull
	case errors.Is(err, errSessionExists):
		return http.StatusConflict, api.CodeSessionExists
	case errors.Is(err, errSessionNotFound):
		return http.StatusNotFound, api.CodeSessionNotFound
	case errors.Is(err, errSessionClosed):
		return http.StatusGone, api.CodeSessionClosed
	case errors.Is(err, stream.ErrDuplicateID):
		return http.StatusConflict, api.CodeDuplicateID
	case errors.Is(err, stream.ErrUnknownID):
		return http.StatusNotFound, api.CodeUnknownID
	case errors.Is(err, coord.ErrUnsafeArrival):
		return http.StatusConflict, coord.CodeUnsafeArrival
	// The cluster routing rejections are both fate-known: route_moved
	// was refused before the event touched anything (421 — the request
	// was directed at a server unable to produce a response for it), and
	// peer_unavailable means the forward was never transmitted (502).
	case errors.Is(err, api.ErrRouteMoved):
		return http.StatusMisdirectedRequest, api.CodeRouteMoved
	case errors.Is(err, api.ErrPeerUnavailable):
		return http.StatusBadGateway, api.CodePeerUnavailable
	// Indeterminate before degraded: a journal-append failure wraps
	// ErrIndeterminate (the event may yet survive), and the distinction
	// is what tells a client whether a blind retry is safe.
	case errors.Is(err, persist.ErrIndeterminate):
		return http.StatusServiceUnavailable, api.CodeAckIndeterminate
	case errors.Is(err, persist.ErrDegraded):
		return http.StatusServiceUnavailable, api.CodeDegraded
	case errors.Is(err, context.DeadlineExceeded):
		// A server-side deadline (dispatch timeout, stalled store), not a
		// vanished client: report it as a typed, retryable timeout.
		return http.StatusGatewayTimeout, api.CodeTimeout
	case errors.Is(err, context.Canceled):
		return 499, api.CodeInternal // client gone; status is never seen
	}
	return http.StatusInternalServerError, api.CodeInternal
}

// handleCoordinate serves the batch endpoint: every request in the
// payload is admitted into the shared batcher individually, so requests
// from concurrent HTTP calls coalesce into the same CoordinateMany
// dispatches. Admission rejections (queue full, draining) come back
// inline as that request's error — the call itself stays 200 so one
// hot spot cannot fail a whole batch.
func (s *Server) handleCoordinate(w http.ResponseWriter, r *http.Request) {
	var req api.CoordinateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, api.Errf(api.CodeBadRequest, "decoding body: %v", err))
		return
	}
	if we := s.checkBatch(len(req.Requests)); we != nil {
		writeError(w, http.StatusBadRequest, we)
		return
	}
	writeJSON(w, http.StatusOK, api.CoordinateResponse{Responses: s.serveBatchRouted(r.Context(), req.Requests, false)})
}

// checkBatch validates a coordinate batch's size; a non-nil return is
// the bad_request error both protocols report verbatim.
func (s *Server) checkBatch(n int) *api.Error {
	if n == 0 {
		return api.Errf(api.CodeBadRequest, "empty batch")
	}
	if n > s.opts.MaxBatch {
		return api.Errf(api.CodeBadRequest, "batch of %d exceeds the %d-request cap", n, s.opts.MaxBatch)
	}
	return nil
}

// serveBatch admits every request into the shared batcher individually
// and collects the responses. Both protocols serve batches through this
// one path, so an HTTP call and a binary frame carrying the same
// requests produce identical api.Response values — results and error
// text alike.
func (s *Server) serveBatch(ctx context.Context, reqs []api.Request) []api.Response {
	ten := s.tenantOf(ctx)
	out := make([]api.Response, len(reqs))
	var wg sync.WaitGroup
	for i, cr := range reqs {
		wg.Add(1)
		go func(i int, cr api.Request) {
			defer wg.Done()
			start := time.Now()
			resp, err := s.batch.submit(ctx, ten, engine.Request{ID: cr.ID, Queries: cr.Queries})
			s.met.coordLatency.observe(time.Since(start))
			if err == nil {
				err = resp.Err
			}
			s.met.coordRequests.Add(1)
			switch {
			case err != nil:
				if errors.Is(err, errOverloaded) || errors.Is(err, errDraining) {
					s.met.coordRejected.Add(1)
				} else {
					s.met.coordErrors.Add(1)
				}
				_, code := statusFor(err)
				if c := api.CodeOf(err); c != api.CodeInternal {
					code = c
				}
				out[i] = api.Response{ID: cr.ID, Error: &api.Error{Code: code, Message: err.Error()}}
			default:
				if resp.Result != nil {
					s.met.coordQueries.Add(resp.Result.DBQueries)
				}
				out[i] = api.Response{ID: cr.ID, Result: resp.Result}
			}
		}(i, cr)
	}
	wg.Wait()
	return out
}

func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	var req api.CreateSessionRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, api.Errf(api.CodeBadRequest, "decoding body: %v", err))
		return
	}
	// Admission decides at the edge — before any forward — so a
	// throttled create never crosses the cluster, and the charge lands
	// on the node that talked to the client.
	done, aerr := s.admitEvent(r.Context())
	if aerr != nil {
		status, we := serviceError(aerr)
		writeError(w, status, we)
		return
	}
	if done != nil {
		defer done(0) // creates do no store work
	}
	// A named create belongs to the name's owner; an auto-named one is
	// served wherever it lands (the registry generates self-owned names).
	if node, ok := s.remoteOwner(req.ID); ok && req.ID != "" {
		s.forwardHTTP(w, r.Context(), node, wire.KindCreateSession,
			wire.CreateSessionReq{ID: req.ID, ParkUnsafe: req.ParkUnsafe}.Encode,
			func(d *wire.Dec) any { return api.CreateSessionResponse{ID: d.String()} })
		return
	}
	h, err := s.createSession(req.ID, req.ParkUnsafe)
	if err != nil {
		status, we := serviceError(err)
		writeError(w, status, we)
		return
	}
	writeJSON(w, http.StatusCreated, api.CreateSessionResponse{ID: h.name})
}

// postEvent runs the shared join/leave path: resolve the session, post
// the event through its mailbox, meter, and map the outcome. A parked
// arrival is 202 Accepted with the update (the query is queued for
// retry, not live); admission rejections and failures are typed error
// envelopes. done, when non-nil, settles the tenant's admission
// accounting exactly once: the event's exact DBQueries on success,
// zero on failure.
func (s *Server) postEvent(w http.ResponseWriter, r *http.Request, ev stream.Event, done func(int64)) {
	up, err := s.sessionEvent(r.Context(), r.PathValue("id"), ev)
	if err != nil {
		if done != nil {
			done(0)
		}
		status, we := serviceError(err)
		writeError(w, status, we)
		return
	}
	if done != nil {
		done(up.Stats.DBQueries)
	}
	status := http.StatusOK
	if up.Parked {
		status = http.StatusAccepted
	}
	writeJSON(w, status, api.UpdateFrom(up))
}

// sessionEvent resolves the session and posts the event through its
// mailbox, metering the trip. Shared by both protocols so their
// outcomes (and error text) match. The degraded gate runs before the
// event touches the session: a rejected event was never applied, so
// its fate is known and the client can retry it freely.
func (s *Server) sessionEvent(ctx context.Context, name string, ev stream.Event) (stream.Update, error) {
	if err := s.writeGate(); err != nil {
		return stream.Update{}, err
	}
	h, err := s.reg.get(name)
	if err != nil {
		return stream.Update{}, err
	}
	start := time.Now()
	up, err := h.post(ctx, ev)
	s.met.sessionLatency.observe(time.Since(start))
	s.met.sessionEvents.Add(1)
	return up, err
}

func (s *Server) handleSessionJoin(w http.ResponseWriter, r *http.Request) {
	var req api.JoinRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, api.Errf(api.CodeBadRequest, "decoding body: %v", err))
		return
	}
	done, aerr := s.admitEvent(r.Context())
	if aerr != nil {
		status, we := serviceError(aerr)
		writeError(w, status, we)
		return
	}
	if node, ok := s.remoteOwner(r.PathValue("id")); ok {
		// Forwarded joins are pre-admitted (the envelope carries no
		// tenant); the edge charges the exact spend the owner reports.
		s.forwardHTTP(w, r.Context(), node, wire.KindJoin,
			wire.JoinReq{Session: r.PathValue("id"), Query: req.Query}.Encode,
			func(d *wire.Dec) any {
				up := wire.GetUpdate(d)
				if done != nil {
					done(up.Stats.DBQueries)
					done = nil
				}
				return up
			})
		if done != nil {
			done(0) // the forward failed before a decodable update came back
		}
		return
	}
	s.postEvent(w, r, stream.Event{Kind: stream.JoinEvent, Query: req.Query}, done)
}

func (s *Server) handleSessionLeave(w http.ResponseWriter, r *http.Request) {
	var req api.LeaveRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, api.Errf(api.CodeBadRequest, "decoding body: %v", err))
		return
	}
	// Leaves are metered, never gated: a tenant over budget must still
	// be able to release load, but the store work the departure
	// triggers lands on its budget all the same.
	charge := s.meterEvent(r.Context())
	if node, ok := s.remoteOwner(r.PathValue("id")); ok {
		s.forwardHTTP(w, r.Context(), node, wire.KindLeave,
			wire.LeaveReq{Session: r.PathValue("id"), QueryID: req.ID}.Encode,
			func(d *wire.Dec) any {
				up := wire.GetUpdate(d)
				if charge != nil {
					charge(up.Stats.DBQueries)
				}
				return up
			})
		return
	}
	s.postEvent(w, r, stream.Event{Kind: stream.LeaveEvent, ID: req.ID}, charge)
}

func (s *Server) handleSessionStatus(w http.ResponseWriter, r *http.Request) {
	if node, ok := s.remoteOwner(r.PathValue("id")); ok {
		s.forwardHTTP(w, r.Context(), node, wire.KindStatus,
			wire.StatusReq{Session: r.PathValue("id"), Trace: r.URL.Query().Get("trace") == "1"}.Encode,
			func(d *wire.Dec) any { return wire.GetSessionStatus(d) })
		return
	}
	st, status, we := s.sessionStatus(r.PathValue("id"), r.URL.Query().Get("trace") == "1")
	if we != nil {
		writeError(w, status, we)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// sessionStatus snapshots one session as its API DTO. Shared by both
// protocols; a non-nil *api.Error comes with its HTTP-equivalent
// status.
func (s *Server) sessionStatus(name string, trace bool) (api.SessionStatus, int, *api.Error) {
	h, err := s.reg.get(name)
	if err != nil {
		status, code := statusFor(err)
		return api.SessionStatus{}, status, api.Errf(code, "%v", err)
	}
	h.touch()
	// One locked snapshot: Result's indices must agree with Queries
	// even while other clients join and leave this session.
	snap, err := h.sess.Status(trace)
	if err != nil {
		return api.SessionStatus{}, http.StatusInternalServerError,
			api.Errf(api.CodeInternal, "reading session state: %v", err)
	}
	return api.SessionStatus{
		ID:       h.name,
		Live:     len(snap.Queries),
		Parked:   snap.Parked,
		Queries:  snap.Queries,
		Result:   snap.Result,
		Totals:   api.TotalsFrom(snap.Totals),
		Trace:    snap.Trace,
		TeamSize: snap.Result.Size(),
	}, 0, nil
}

func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	if node, ok := s.remoteOwner(r.PathValue("id")); ok {
		s.forwardHTTP(w, r.Context(), node, wire.KindDeleteSession,
			wire.SessionReq{Session: r.PathValue("id")}.Encode, nil)
		return
	}
	if err := s.deleteSession(r.PathValue("id")); err != nil {
		status, we := serviceError(err)
		writeError(w, status, we)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.health())
}

// health reports liveness and drain state; both protocols serve it.
// Always answered (never an error): the work endpoints are the ones
// that reject during a drain, and a health probe that can still be
// answered should be.
func (s *Server) health() api.Health {
	h := api.Health{
		Status:   "ok",
		Sessions: s.reg.open(),
		UptimeS:  time.Since(s.met.start).Seconds(),
	}
	if s.opts.Persist != nil && s.opts.Persist.Degraded() {
		h.Status = "degraded"
		h.Degraded = true
		if cause := s.opts.Persist.DegradeCause(); cause != nil {
			h.DegradedCause = cause.Error()
		}
	}
	if c := s.opts.Cluster; c != nil {
		h.Cluster = c.Health()
	}
	// Draining wins: a shutting-down server is past caring about its
	// disk, and probes should steer traffic away either way.
	if s.draining() {
		h.Status = "draining"
	}
	return h
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := api.Metrics{
		UptimeS: time.Since(s.met.start).Seconds(),
		Coordinate: api.CoordinateMetrics{
			Requests:  s.met.coordRequests.Load(),
			Batches:   s.met.coordBatches.Load(),
			Errors:    s.met.coordErrors.Load(),
			Rejected:  s.met.coordRejected.Load(),
			DBQueries: s.met.coordQueries.Load(),
			Latency:   s.met.coordLatency.snapshot(),
		},
		Sessions: api.SessionMetrics{
			Created: s.reg.created.Load(),
			Evicted: s.reg.evicted.Load(),
			Events:  s.met.sessionEvents.Load(),
			Latency: s.met.sessionLatency.snapshot(),
		},
	}
	handles := s.reg.snapshot()
	sort.Slice(handles, func(i, j int) bool { return handles[i].name < handles[j].name })
	for _, h := range handles {
		t := h.sess.Totals()
		m.Sessions.Open++
		m.Sessions.DBQueries += t.DBQueries
		m.Sessions.PerSession = append(m.Sessions.PerSession, api.SessionCounters{
			ID:        h.name,
			Live:      h.sess.Size(),
			Parked:    h.sess.ParkedCount(),
			Events:    t.Events,
			DBQueries: t.DBQueries,
		})
	}
	if pc, ok := planStats(s.e.Store()); ok {
		m.PlanCache = &pc
	}
	if c := s.opts.Cluster; c != nil {
		m.Cluster = c.Metrics()
	}
	if s.adm != nil {
		m.Admission = s.admissionMetrics()
	}
	if s.opts.Persist != nil {
		pm := s.opts.Persist.Metrics()
		m.Persist = &api.PersistMetrics{
			StoreAppends:    pm.StoreAppends,
			StoreBytes:      pm.StoreBytes,
			StoreSyncs:      pm.StoreSyncs,
			StoreRotations:  pm.StoreRotations,
			SessionAppends:  pm.SessionAppends,
			SessionBytes:    pm.SessionBytes,
			SessionSyncs:    pm.SessionSyncs,
			OpenJournals:    pm.OpenJournals,
			SnapshotSeq:     pm.SnapshotSeq,
			Compactions:     pm.Compactions,
			Degraded:        pm.Degraded,
			DegradeEvents:   pm.DegradeEvents,
			Probes:          pm.Probes,
			ProbeFailures:   pm.ProbeFailures,
			PendingAppends:  pm.PendingAppends,
			CompactFailures: pm.CompactFailures,
		}
	}
	writeJSON(w, http.StatusOK, m)
}

// admissionMetrics assembles the per-tenant admission block: the
// controller's accounting joined with the batcher's live queue depths
// and the fair-dispatch share histograms.
func (s *Server) admissionMetrics() *api.AdmissionMetrics {
	am := &api.AdmissionMetrics{}
	shares := s.met.shareSnapshot()
	for _, sn := range s.adm.Snapshot() {
		tc := api.TenantCounters{
			Tenant:            string(sn.Tenant),
			Admitted:          sn.Admitted,
			Throttled:         sn.Throttled(),
			ThrottledRate:     sn.ThrottledRate,
			ThrottledInFlight: sn.ThrottledInFlight,
			ThrottledBudget:   sn.ThrottledBudget,
			InFlight:          sn.InFlight,
			QueueDepth:        s.batch.queueDepth(sn.Tenant),
			DBQueriesSpent:    sn.DBQueriesSpent,
		}
		if sh, ok := shares[sn.Tenant]; ok {
			tc.Dispatched = sh.dispatched
			tc.ShareCounts = append([]int64(nil), sh.deciles[:]...)
		}
		am.Admitted += sn.Admitted
		am.Throttled += tc.Throttled
		am.Tenants = append(am.Tenants, tc)
	}
	return am
}

// handleTenants serves GET /v1/tenants: each tenant's effective
// policy and live accounting. Without admission it answers
// enabled=false, so clients can probe for the feature.
func (s *Server) handleTenants(w http.ResponseWriter, r *http.Request) {
	ts := api.TenantsStatus{}
	if s.adm != nil {
		ts.Enabled = true
		for _, sn := range s.adm.Snapshot() {
			ts.Tenants = append(ts.Tenants, api.TenantStatus{
				Tenant:         string(sn.Tenant),
				Policy:         sn.Policy,
				InFlight:       sn.InFlight,
				QueueDepth:     s.batch.queueDepth(sn.Tenant),
				Admitted:       sn.Admitted,
				Throttled:      sn.Throttled(),
				DBQueriesSpent: sn.DBQueriesSpent,
				DBBalance:      sn.DBBalance,
			})
		}
	}
	writeJSON(w, http.StatusOK, ts)
}

// handleRecovery reports what this process replayed at startup; with
// no durable backend it answers enabled=false, so clients can probe
// for durability. Degraded state is live (sampled per request), not a
// startup snapshot.
func (s *Server) handleRecovery(w http.ResponseWriter, r *http.Request) {
	rec := s.recovery
	if s.opts.Persist != nil && s.opts.Persist.Degraded() {
		rec.Degraded = true
		if cause := s.opts.Persist.DegradeCause(); cause != nil {
			rec.DegradedCause = cause.Error()
		}
	}
	writeJSON(w, http.StatusOK, rec)
}

// String identifies the server in logs.
func (s *Server) String() string {
	return fmt.Sprintf("coordination server (max batch %d, queue %d, mailbox %d, idle timeout %v)",
		s.opts.MaxBatch, s.opts.QueueDepth, s.opts.MailboxSize, s.opts.IdleTimeout)
}
