package server

import (
	"context"
	"errors"
	"net/http"

	"entangled/internal/api"
	"entangled/internal/wire"
)

// remoteOwner reports the peer node owning a session name, ok=false
// when this node serves it itself (standalone server, or the ring says
// the session is ours).
func (s *Server) remoteOwner(session string) (string, bool) {
	c := s.opts.Cluster
	if c == nil {
		return "", false
	}
	owner := c.Owner(session)
	if owner == c.Self() {
		return "", false
	}
	return owner, true
}

// serveBatchRouted is the cluster-aware batch path: a standalone server
// (or a forwarded sub-batch — forwards are terminal, a receiver never
// re-scatters) serves everything locally; a cluster node scatter-gathers
// the batch across owners with its own slice going through serveBatch.
//
// Admission gates here, at the edge: the node that received the batch
// from a client decides each request against the tenant's policy,
// scatter-gathers only the admitted subset (forwarded sub-batches are
// pre-admitted and never re-gated), and settles the exact DBQueries
// charge when the gathered responses come back — so a tenant's spend
// accrues on the nodes it talks to, not wherever the ring placed its
// data.
func (s *Server) serveBatchRouted(ctx context.Context, reqs []api.Request, forwarded bool) []api.Response {
	c := s.opts.Cluster
	serve := func(reqs []api.Request) []api.Response {
		if c == nil || forwarded {
			return s.serveBatch(ctx, reqs)
		}
		return c.ServeBatch(ctx, reqs, s.serveBatch)
	}
	if s.adm == nil || forwarded {
		return serve(reqs)
	}
	ten := s.tenantOf(ctx)
	out := make([]api.Response, len(reqs))
	admitted := make([]api.Request, 0, len(reqs))
	idx := make([]int, 0, len(reqs))
	for i, rq := range reqs {
		if err := s.adm.Decide(ten); err != nil {
			// Inline, like the other per-request rejections: one throttled
			// tenant in a mixed batch must not fail its batchmates.
			s.met.coordRequests.Add(1)
			s.met.coordRejected.Add(1)
			out[i] = api.Response{ID: rq.ID, Error: api.WireError(err)}
			continue
		}
		admitted = append(admitted, rq)
		idx = append(idx, i)
	}
	if len(admitted) > 0 {
		resps := serve(admitted)
		for j, i := range idx {
			out[i] = resps[j]
			var dbq int64
			if resps[j].Result != nil {
				dbq = resps[j].Result.DBQueries
			}
			s.adm.Done(ten, dbq)
		}
	}
	return out
}

// clusterStatus reports the node's membership view; a standalone server
// answers enabled=false so clients can probe for cluster mode.
func (s *Server) clusterStatus() api.ClusterStatus {
	if c := s.opts.Cluster; c != nil {
		return c.Status()
	}
	return api.ClusterStatus{}
}

// handleCluster serves GET /v1/cluster.
func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.clusterStatus())
}

// serviceError renders a service-layer failure as its HTTP status and
// wire error, carrying the owning node when the error names one
// (route_moved), so both protocols' envelopes let a stale client
// re-route without a second round trip.
func serviceError(err error) (int, *api.Error) {
	status, code := statusFor(err)
	we := api.Errf(code, "%v", err)
	var o api.Owned
	if errors.As(err, &o) {
		we.Owner = o.OwnerNode()
	}
	// A throttle's retry-after hint crosses the wire the same way.
	we.RetryAfterMS = api.RetryHintMS(err)
	return status, we
}

// forwardHTTP forwards one session-scoped request to its owning node
// and writes the reply as this node's own handler would have: a
// service-level failure relays verbatim (status, code, message, owner),
// a transport failure maps through the typed taxonomy, and a successful
// reply's wire body decodes through dec into the JSON value written
// with the reply's own status (so a parked join stays 202 across the
// hop). A nil dec writes the bare status (delete's 204).
func (s *Server) forwardHTTP(w http.ResponseWriter, ctx context.Context, node string, kind wire.Kind, enc func(*wire.Enc), dec func(d *wire.Dec) any) {
	status, body, err := s.opts.Cluster.Forward(ctx, node, kind, enc)
	if err != nil {
		var re *wire.ReplyError
		if errors.As(err, &re) {
			writeError(w, re.Status, &api.Error{Code: re.Code, Message: re.Message, Owner: re.Owner, RetryAfterMS: re.RetryAfterMS})
			return
		}
		st, we := serviceError(err)
		writeError(w, st, we)
		return
	}
	if dec == nil {
		w.WriteHeader(status)
		return
	}
	d := wire.NewDec(body)
	v := dec(d)
	if d.Finish() != nil {
		writeError(w, http.StatusInternalServerError,
			api.Errf(api.CodeInternal, "cluster: %s returned a malformed %v reply", node, kind))
		return
	}
	writeJSON(w, status, v)
}

// forwardOrServe routes one session-scoped binary request. Owned here
// (or standalone) it returns false: the caller serves locally (and
// still owns done). Owned elsewhere, the request forwards to its owner
// and the reply body relays byte-for-byte — unless the request was
// itself a forward (terminal) or a subscribe (push flows only from the
// owner), which answer the typed route_moved error instead. A true
// return means the reply was sent and done (when non-nil) was settled:
// a join/leave relay that came back 2xx charges the exact DBQueries
// the owner's update reports — edge accounting, the same rule the
// HTTP forwarders follow — and every other outcome settles zero.
func (wc *wireConn) forwardOrServe(ctx context.Context, id uint64, session string, terminal bool, kind wire.Kind, enc func(*wire.Enc), done func(int64)) bool {
	s := wc.srv
	node, ok := s.remoteOwner(session)
	if !ok {
		return false
	}
	settle := func(dbq int64) {
		if done != nil {
			done(dbq)
		}
	}
	if terminal {
		settle(0)
		wc.replyServiceErr(id, s.opts.Cluster.RouteMoved("session", session))
		return true
	}
	status, body, err := s.opts.Cluster.Forward(ctx, node, kind, enc)
	if err != nil {
		settle(0)
		var re *wire.ReplyError
		if errors.As(err, &re) {
			wc.replyErr(id, re.Status, &api.Error{Code: re.Code, Message: re.Message, Owner: re.Owner, RetryAfterMS: re.RetryAfterMS})
			return true
		}
		wc.replyServiceErr(id, err)
		return true
	}
	if done != nil {
		var dbq int64
		if status < 300 && (kind == wire.KindJoin || kind == wire.KindLeave) {
			d := wire.NewDec(body)
			up := wire.GetUpdate(d)
			if d.Finish() == nil {
				dbq = up.Stats.DBQueries
			}
		}
		done(dbq)
	}
	wc.send(wire.Header{Kind: wire.KindReply, ID: id}, func(e *wire.Enc) {
		wire.PutReplyOK(e, status)
		e.Raw(body)
	})
	return true
}
