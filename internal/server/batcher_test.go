package server

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"entangled/internal/admission"
	"entangled/internal/db"
	"entangled/internal/engine"
	"entangled/internal/workload"
)

func testBatcher(t *testing.T, store db.Store, timeout time.Duration) *batcher {
	t.Helper()
	e := engine.New(store, engine.Options{Workers: 2})
	b := newBatcher(e, 64, 8, timeout, nil, nil, nil)
	t.Cleanup(b.close)
	return b
}

func memStore(rows int) *db.Instance {
	inst := db.NewInstance()
	workload.UserTable(inst, rows)
	return inst
}

// TestBatcherCanceledSubmitterDoesNotPoisonBatchmates: a submitter
// whose context is already dead gets ctx.Err back, but its request —
// admitted — still executes under the batcher's own dispatch context,
// and requests from other clients keep being served. One client
// hanging up must never fail a batchmate or wedge the dispatcher.
func TestBatcherCanceledSubmitterDoesNotPoisonBatchmates(t *testing.T) {
	b := testBatcher(t, memStore(40), 30*time.Second)
	dead, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := b.submit(dead, "", engine.Request{ID: "gone", Queries: workload.ListQueries(4, 40)}); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled submitter got %v, want context.Canceled", err)
	}
	// The dispatcher is still healthy: live submitters get real results.
	for i := 0; i < 3; i++ {
		resp, err := b.submit(context.Background(), "", engine.Request{ID: "live", Queries: workload.ListQueries(4, 40)})
		if err != nil || resp.Err != nil {
			t.Fatalf("batchmate %d after a canceled submitter: submit=%v resp=%v", i, err, resp.Err)
		}
		if resp.Result == nil || resp.Result.Size() == 0 {
			t.Fatalf("batchmate %d: empty result %+v", i, resp.Result)
		}
	}
}

// TestBatcherDispatchTimeout: a store slow enough to bust the dispatch
// deadline fails the requests with a typed deadline error instead of
// wedging the dispatcher goroutine — the next submit is still served.
func TestBatcherDispatchTimeout(t *testing.T) {
	// 2ms per store query versus a 1ms dispatch budget: the deadline
	// expires during the first queries of the plan.
	slow := workload.NewStore(1, 40, 2*time.Millisecond)
	b := testBatcher(t, slow, time.Millisecond)
	resp, err := b.submit(context.Background(), "", engine.Request{ID: "slow", Queries: workload.ListQueries(6, 40)})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if !errors.Is(resp.Err, context.DeadlineExceeded) {
		t.Fatalf("resp.Err = %v, want context.DeadlineExceeded", resp.Err)
	}
	// The dispatcher survived and keeps serving (and timing out) work.
	resp, err = b.submit(context.Background(), "", engine.Request{ID: "again", Queries: workload.ListQueries(6, 40)})
	if err != nil || !errors.Is(resp.Err, context.DeadlineExceeded) {
		t.Fatalf("second submit: %v / %v", err, resp.Err)
	}
}

// drrBatcher builds a batcher without its dispatcher goroutine, so the
// scheduler (popBatch) can be driven deterministically, and fills the
// given per-tenant backlogs.
func drrBatcher(maxBatch int, weights map[admission.Tenant]int, backlogs map[admission.Tenant]int) *batcher {
	b := &batcher{
		depth:    1 << 20,
		maxBatch: maxBatch,
		queues:   map[admission.Tenant]*tenantQueue{},
	}
	for ten, n := range backlogs {
		w := weights[ten]
		if w <= 0 {
			w = 1
		}
		q := &tenantQueue{tenant: ten, weight: w, active: true}
		for i := 0; i < n; i++ {
			q.items = append(q.items, batchItem{req: engine.Request{ID: fmt.Sprintf("%s-%d", ten, i)}})
		}
		b.queues[ten] = q
		b.active = append(b.active, q)
		b.total += n
	}
	return b
}

// counts tallies one popped batch by tenant and checks FIFO order
// within each tenant.
func counts(t *testing.T, items []batchItem) map[admission.Tenant]int {
	t.Helper()
	out := map[admission.Tenant]int{}
	last := map[admission.Tenant]int{}
	for _, it := range items {
		var ten admission.Tenant
		var i int
		if _, err := fmt.Sscanf(it.req.ID, "%s-%d", &ten, &i); err != nil {
			// Sscanf cannot split on '-' inside %s; parse manually.
			for j := len(it.req.ID) - 1; j >= 0; j-- {
				if it.req.ID[j] == '-' {
					ten = admission.Tenant(it.req.ID[:j])
					fmt.Sscanf(it.req.ID[j+1:], "%d", &i)
					break
				}
			}
		}
		if prev, seen := last[ten]; seen && i <= prev {
			t.Fatalf("tenant %s dispatched out of FIFO order: %d after %d", ten, i, prev)
		}
		last[ten] = i
		out[ten]++
	}
	return out
}

// TestBatcherDRREqualWeights: two tenants with equal weight and deep
// backlogs split every contended batch evenly, FIFO within each.
func TestBatcherDRREqualWeights(t *testing.T) {
	b := drrBatcher(10, nil, map[admission.Tenant]int{"a": 100, "b": 100})
	for round := 0; round < 5; round++ {
		items, _ := b.popBatch()
		if len(items) != 10 {
			t.Fatalf("round %d: batch of %d, want 10", round, len(items))
		}
		got := counts(t, items)
		if got["a"] != 5 || got["b"] != 5 {
			t.Fatalf("round %d: split %v, want 5/5", round, got)
		}
	}
}

// TestBatcherDRRWeightedShares: a weight-4 tenant receives 4x the
// batch share of a weight-1 tenant while both have backlog.
func TestBatcherDRRWeightedShares(t *testing.T) {
	b := drrBatcher(10, map[admission.Tenant]int{"vip": 4, "std": 1},
		map[admission.Tenant]int{"vip": 100, "std": 100})
	total := map[admission.Tenant]int{}
	for round := 0; round < 5; round++ {
		items, _ := b.popBatch()
		if len(items) != 10 {
			t.Fatalf("round %d: batch of %d, want 10", round, len(items))
		}
		for ten, n := range counts(t, items) {
			total[ten] += n
		}
	}
	if total["vip"] != 40 || total["std"] != 10 {
		t.Fatalf("50 dispatched as %v, want vip=40 std=10", total)
	}
}

// TestBatcherDRRDeepBacklogCannotStarve: a tenant with a single queued
// request makes it into the very next batch even though another tenant
// holds a backlog far deeper than the batch size.
func TestBatcherDRRDeepBacklogCannotStarve(t *testing.T) {
	b := drrBatcher(8, nil, map[admission.Tenant]int{"hot": 1000, "quiet": 1})
	items, _ := b.popBatch()
	if len(items) != 8 {
		t.Fatalf("batch of %d, want 8", len(items))
	}
	got := counts(t, items)
	if got["quiet"] != 1 {
		t.Fatalf("quiet tenant's request missed the first dispatch: %v", got)
	}
	// The drained quiet queue left the ring; the hot tenant now owns
	// whole batches.
	items, _ = b.popBatch()
	if got := counts(t, items); got["hot"] != 8 {
		t.Fatalf("second batch %v, want hot=8", got)
	}
}

// TestBatcherDRRSingleTenantIsFIFO: with one queue (admission off
// routes everything to the anonymous tenant) the schedule is the plain
// FIFO the batcher replaced.
func TestBatcherDRRSingleTenantIsFIFO(t *testing.T) {
	b := drrBatcher(4, nil, map[admission.Tenant]int{"": 10})
	var seen []string
	for {
		items, _ := b.popBatch()
		if len(items) == 0 {
			break
		}
		for _, it := range items {
			seen = append(seen, it.req.ID)
		}
	}
	if len(seen) != 10 {
		t.Fatalf("dispatched %d items, want 10", len(seen))
	}
	for i, id := range seen {
		if want := fmt.Sprintf("-%d", i); id != want {
			t.Fatalf("position %d dispatched %q, want %q", i, id, want)
		}
	}
}

// TestBatcherPerTenantBound: one tenant filling its queue to the bound
// is rejected with errOverloaded while another tenant still has its
// full queue space.
func TestBatcherPerTenantBound(t *testing.T) {
	b := &batcher{
		depth:    2,
		maxBatch: 8,
		queues:   map[admission.Tenant]*tenantQueue{},
		notify:   make(chan struct{}, 1),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	// No dispatcher: the backlog stays queued. Submitters use a dead
	// context so the enqueue happens but the wait returns immediately.
	dead, cancel := context.WithCancel(context.Background())
	cancel()
	for i := 0; i < 2; i++ {
		if _, err := b.submit(dead, "hog", engine.Request{}); !errors.Is(err, context.Canceled) {
			t.Fatalf("fill %d: %v", i, err)
		}
	}
	if _, err := b.submit(dead, "hog", engine.Request{}); !errors.Is(err, errOverloaded) {
		t.Fatalf("over-bound submit: %v, want errOverloaded", err)
	}
	if _, err := b.submit(dead, "other", engine.Request{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("other tenant rejected by hog's full queue: %v", err)
	}
	if d := b.queueDepth("hog"); d != 2 {
		t.Fatalf("hog depth = %d, want 2", d)
	}
}

// TestStatusForTimeoutAndDegradedCodes pins the error → wire-code
// mapping for the fault-path sentinels (both protocols go through
// statusFor, so this covers the wire path too).
func TestStatusForTimeoutAndDegradedCodes(t *testing.T) {
	status, code := statusFor(context.DeadlineExceeded)
	if status != 504 || code != "timeout" {
		t.Fatalf("deadline: %d %q, want 504 timeout", status, code)
	}
	status, code = statusFor(context.Canceled)
	if status != 499 {
		t.Fatalf("canceled: %d, want 499", status)
	}
}
