package server

import (
	"context"
	"errors"
	"testing"
	"time"

	"entangled/internal/db"
	"entangled/internal/engine"
	"entangled/internal/workload"
)

func testBatcher(t *testing.T, store db.Store, timeout time.Duration) *batcher {
	t.Helper()
	e := engine.New(store, engine.Options{Workers: 2})
	b := newBatcher(e, 64, 8, timeout, nil)
	t.Cleanup(b.close)
	return b
}

func memStore(rows int) *db.Instance {
	inst := db.NewInstance()
	workload.UserTable(inst, rows)
	return inst
}

// TestBatcherCanceledSubmitterDoesNotPoisonBatchmates: a submitter
// whose context is already dead gets ctx.Err back, but its request —
// admitted — still executes under the batcher's own dispatch context,
// and requests from other clients keep being served. One client
// hanging up must never fail a batchmate or wedge the dispatcher.
func TestBatcherCanceledSubmitterDoesNotPoisonBatchmates(t *testing.T) {
	b := testBatcher(t, memStore(40), 30*time.Second)
	dead, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := b.submit(dead, engine.Request{ID: "gone", Queries: workload.ListQueries(4, 40)}); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled submitter got %v, want context.Canceled", err)
	}
	// The dispatcher is still healthy: live submitters get real results.
	for i := 0; i < 3; i++ {
		resp, err := b.submit(context.Background(), engine.Request{ID: "live", Queries: workload.ListQueries(4, 40)})
		if err != nil || resp.Err != nil {
			t.Fatalf("batchmate %d after a canceled submitter: submit=%v resp=%v", i, err, resp.Err)
		}
		if resp.Result == nil || resp.Result.Size() == 0 {
			t.Fatalf("batchmate %d: empty result %+v", i, resp.Result)
		}
	}
}

// TestBatcherDispatchTimeout: a store slow enough to bust the dispatch
// deadline fails the requests with a typed deadline error instead of
// wedging the dispatcher goroutine — the next submit is still served.
func TestBatcherDispatchTimeout(t *testing.T) {
	// 2ms per store query versus a 1ms dispatch budget: the deadline
	// expires during the first queries of the plan.
	slow := workload.NewStore(1, 40, 2*time.Millisecond)
	b := testBatcher(t, slow, time.Millisecond)
	resp, err := b.submit(context.Background(), engine.Request{ID: "slow", Queries: workload.ListQueries(6, 40)})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if !errors.Is(resp.Err, context.DeadlineExceeded) {
		t.Fatalf("resp.Err = %v, want context.DeadlineExceeded", resp.Err)
	}
	// The dispatcher survived and keeps serving (and timing out) work.
	resp, err = b.submit(context.Background(), engine.Request{ID: "again", Queries: workload.ListQueries(6, 40)})
	if err != nil || !errors.Is(resp.Err, context.DeadlineExceeded) {
		t.Fatalf("second submit: %v / %v", err, resp.Err)
	}
}

// TestStatusForTimeoutAndDegradedCodes pins the error → wire-code
// mapping for the fault-path sentinels (both protocols go through
// statusFor, so this covers the wire path too).
func TestStatusForTimeoutAndDegradedCodes(t *testing.T) {
	status, code := statusFor(context.DeadlineExceeded)
	if status != 504 || code != "timeout" {
		t.Fatalf("deadline: %d %q, want 504 timeout", status, code)
	}
	status, code = statusFor(context.Canceled)
	if status != 499 {
		t.Fatalf("canceled: %d, want 499", status)
	}
}
