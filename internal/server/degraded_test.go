package server_test

import (
	"context"
	"errors"
	"net"
	"net/http/httptest"
	"syscall"
	"testing"
	"time"

	"entangled/internal/api"
	"entangled/internal/client"
	"entangled/internal/db"
	"entangled/internal/engine"
	"entangled/internal/fault"
	"entangled/internal/persist"
	"entangled/internal/server"
	"entangled/internal/workload"
)

// openFaultBackend opens a durable backend whose bytes go through the
// injected filesystem, seeding a fresh directory first. Schedules
// should path-filter so seeding never consumes their budget.
func openFaultBackend(t *testing.T, dir string, inj *fault.Injector, rows int) *persist.Backend {
	t.Helper()
	b, err := persist.Open(dir, persist.Options{
		Sync: persist.SyncAlways,
		FS:   fault.NewFS(fault.OS, inj),
	})
	if err != nil {
		t.Fatal(err)
	}
	if b.Fresh() {
		if err := db.ApplyAll(b, workload.UserTableMutations(rows)); err != nil {
			t.Fatal(err)
		}
	}
	return b
}

func wantCode(t *testing.T, err error, code string) *client.Error {
	t.Helper()
	var ce *client.Error
	if !errors.As(err, &ce) {
		t.Fatalf("err %v (%T) is not a typed client error", err, err)
	}
	if ce.Code != code {
		t.Fatalf("code %q, want %q (err: %v)", ce.Code, code, err)
	}
	return ce
}

// TestServerDegradedModeAckFateAndRecovery walks the whole degraded
// state machine over live HTTP and binary clients: an injected fsync
// failure fails exactly one ack (indeterminate), flips the server
// read-only (later writes rejected with the degraded code on both
// protocols, fate known), surfaces in /healthz, /metrics and
// /v1/recovery, lifts after a successful probe, and a restart
// recovers every event whose ack — or pending flush — reached the
// journal.
func TestServerDegradedModeAckFateAndRecovery(t *testing.T) {
	const rows = 32
	dir := t.TempDir()
	// The journal's first fsync is the create's meta frame; the second —
	// the first event append — fails once.
	inj := fault.NewInjector(1, fault.Rule{
		Op: fault.OpSync, Path: "dg.wal", After: 1, Count: 1,
		Fault: fault.Fault{Err: syscall.EIO},
	})
	backend := openFaultBackend(t, dir, inj, rows)
	e := engine.New(backend, engine.Options{})
	// ProbeInterval < 0: the test drives recovery explicitly, so the
	// degraded window is deterministic.
	srv, err := server.New(e, server.Options{Persist: backend, ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	httpC, err := client.New(ts.URL, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.ServeWire(ln)
	binC, err := client.New("tcp://"+ln.Addr().String(), client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer binC.Close()
	ctx := context.Background()

	sess, err := httpC.CreateSession(ctx, "dg", false)
	if err != nil {
		t.Fatal(err)
	}
	arrivals := workload.Arrivals(workload.Steady, 4, rows, 3)

	// Event 1: applied in memory, journal fsync fails → indeterminate.
	_, err = sess.Join(ctx, arrivals[0].Query)
	ce := wantCode(t, err, api.CodeAckIndeterminate)
	if !errors.Is(ce, persist.ErrIndeterminate) {
		t.Fatal("typed error does not unwrap to persist.ErrIndeterminate across the network")
	}
	if client.FateKnown(ce) {
		t.Fatal("an indeterminate ack must not be fate-known")
	}
	if !client.IsRetryable(ce) {
		t.Fatal("an indeterminate ack should be retryable (for idempotent ops)")
	}

	// Every later write is gated up front, on both protocols.
	_, err = sess.Join(ctx, arrivals[1].Query)
	ce = wantCode(t, err, api.CodeDegraded)
	if !errors.Is(ce, persist.ErrDegraded) || !client.FateKnown(ce) || !client.IsRetryable(ce) {
		t.Fatalf("degraded rejection should unwrap, be fate-known and retryable: %v", ce)
	}
	if _, err := binC.Session("dg").Join(ctx, arrivals[1].Query); true {
		wantCode(t, err, api.CodeDegraded)
	}
	if _, err := httpC.CreateSession(ctx, "other", false); true {
		wantCode(t, err, api.CodeDegraded)
	}
	if _, err := binC.CreateSession(ctx, "other2", false); true {
		wantCode(t, err, api.CodeDegraded)
	}
	if err := sess.Close(ctx); true {
		wantCode(t, err, api.CodeDegraded)
	}

	// Reads still work: the server degrades, it does not die.
	if st, err := sess.Status(ctx, false); err != nil || st.Live != 1 {
		t.Fatalf("status while degraded: %v (live %d, want the applied event visible)", err, st.Live)
	}
	h, err := httpC.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "degraded" || !h.Degraded || h.DegradedCause == "" {
		t.Fatalf("healthz %+v, want degraded with a cause", h)
	}
	if bh, err := binC.Health(ctx); err != nil || !bh.Degraded || bh.Status != "degraded" {
		t.Fatalf("binary healthz %+v (%v)", bh, err)
	}
	m, err := httpC.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Persist == nil || !m.Persist.Degraded || m.Persist.DegradeEvents != 1 || m.Persist.PendingAppends == 0 {
		t.Fatalf("persist metrics %+v, want degraded with pending appends", m.Persist)
	}
	rec, err := httpC.Recovery(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Degraded || rec.DegradedCause == "" {
		t.Fatalf("recovery status %+v, want live degraded state", rec)
	}

	// The disk is healthy again (the schedule is spent): one probe
	// flushes the pending event and reopens the write path.
	if !inj.Exhausted() {
		t.Fatal("fault schedule not consumed where expected")
	}
	if err := backend.Probe(); err != nil {
		t.Fatalf("probe: %v", err)
	}
	if h, err := httpC.Health(ctx); err != nil || h.Status != "ok" || h.Degraded {
		t.Fatalf("healthz after probe %+v (%v), want ok", h, err)
	}
	if _, err := sess.Join(ctx, arrivals[1].Query); err != nil {
		t.Fatalf("join after recovery: %v", err)
	}

	// Restart: both events — the flushed indeterminate one and the
	// post-recovery ack — survive byte-for-byte.
	ts.Close()
	srv.Close()
	if err := backend.Close(); err != nil {
		t.Fatal(err)
	}
	backend2 := openBackend(t, dir, 1, rows, persist.SyncAlways)
	c2, srv2, ts2 := durableLoopback(t, backend2)
	t.Cleanup(func() { ts2.Close(); srv2.Close(); backend2.Close() })
	rec2, err := c2.Recovery(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rec2.Sessions != 1 || rec2.SessionEvents != 2 {
		t.Fatalf("recovered %d sessions / %d events, want 1/2 (pending flush lost?)", rec2.Sessions, rec2.SessionEvents)
	}
	tr := &churnTrack{name: "dg", live: map[string]bool{
		arrivals[0].Query.ID: true,
		arrivals[1].Query.ID: true,
	}}
	checkRecovered(t, ctx, c2, backend2, tr)
}

// TestServerProbeLoopLiftsDegradedMode: with the probe loop on, the
// server recovers from a transient disk fault by itself — no client
// intervention — and the eviction janitor holds off while degraded.
func TestServerProbeLoopLiftsDegradedMode(t *testing.T) {
	const rows = 32
	dir := t.TempDir()
	inj := fault.NewInjector(1, fault.Rule{
		Op: fault.OpSync, Path: "auto.wal", After: 1, Count: 1,
		Fault: fault.Fault{Err: syscall.ENOSPC},
	})
	backend := openFaultBackend(t, dir, inj, rows)
	e := engine.New(backend, engine.Options{})
	srv, err := server.New(e, server.Options{Persist: backend, ProbeInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() { ts.Close(); srv.Close(); backend.Close() })
	c, err := client.New(ts.URL, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	sess, err := c.CreateSession(ctx, "auto", false)
	if err != nil {
		t.Fatal(err)
	}
	arrivals := workload.Arrivals(workload.Steady, 2, rows, 5)
	_, err = sess.Join(ctx, arrivals[0].Query)
	wantCode(t, err, api.CodeAckIndeterminate)

	deadline := time.Now().Add(10 * time.Second)
	for {
		h, err := c.Health(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if h.Status == "ok" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("probe loop never lifted degraded mode")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, err := sess.Join(ctx, arrivals[1].Query); err != nil {
		t.Fatalf("join after self-recovery: %v", err)
	}
}

// TestSessionEventTimeoutIsTyped: a client deadline that expires while
// the event waits in the mailbox comes back as context.DeadlineExceeded
// — and once wrapped by a transport it is the typed, retryable (but
// fate-unknown) timeout. Here the posting path itself returns the raw
// context error; the mapping is pinned in statusFor.
func TestSessionEventTimeoutIsTyped(t *testing.T) {
	inst := db.NewInstance()
	workload.UserTable(inst, 16)
	e := engine.New(inst, engine.Options{})
	srv, err := server.New(e, server.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() { ts.Close(); srv.Close() })
	c, err := client.New(ts.URL, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	sess, err := c.CreateSession(ctx, "t", false)
	if err != nil {
		t.Fatal(err)
	}
	short, cancel := context.WithDeadline(ctx, time.Now().Add(-time.Second))
	defer cancel()
	_, err = sess.Join(short, workload.ChainQuery(0, 0, 16))
	if err == nil {
		t.Fatal("join with an expired deadline succeeded")
	}
	// The expired deadline fails on the client side before the request
	// leaves; it must NOT be fate-known (the server may have seen it in
	// the general case).
	if client.FateKnown(err) {
		t.Fatalf("client-side deadline error %v must not be fate-known", err)
	}
}
