//go:build chaos_integration

// Chaos soak: the PR-8 acceptance property. Churny sessions drive both
// protocols against a server whose filesystem AND network are fault-
// injected, the process is repeatedly hard-killed and recovered, and
// after every cycle the recovered state must equal the state observed
// just before the kill — byte-for-byte against a batch SCCCoordinate
// over each session's live set. Along the way every failed ack must be
// a typed, retryable error (no lies, no untyped failures), degraded
// mode must be entered on injected fsync failures and visible in
// /healthz, and it must exit once a probe write succeeds.
//
// Run with: go test -tags chaos_integration -race ./internal/server/
package server_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http/httptest"
	"sort"
	"syscall"
	"testing"
	"time"

	"entangled/internal/api"
	"entangled/internal/client"
	"entangled/internal/coord"
	"entangled/internal/db"
	"entangled/internal/engine"
	"entangled/internal/eq"
	"entangled/internal/fault"
	"entangled/internal/persist"
	"entangled/internal/server"
	"entangled/internal/workload"
)

const (
	chaosCycles   = 14 // kill/recover cycles (acceptance floor: 12)
	chaosSessions = 3
	chaosRows     = 40
	chaosEvents   = 16 // arrivals per session per cycle
)

// diskRules is the seeded per-cycle disk-fault schedule. Every rule is
// Count-bounded so each cycle injects a fixed, reproducible budget of
// faults and the disk is provably healthy again once they are spent.
// Session journals are "<name>.wal"; store segments are "wal-NNN.log" —
// the substrings ".wal" and "wal-" are disjoint filters.
func diskRules(cycle int) []fault.Rule {
	switch cycle % 4 {
	case 0:
		if cycle == 0 {
			return nil // first cycle seeds the store; keep it clean
		}
		// fsync failure mid-churn on a session journal.
		return []fault.Rule{{Op: fault.OpSync, Path: ".wal", After: 3, Count: 1,
			Fault: fault.Fault{Err: syscall.EIO}}}
	case 1:
		// Torn write + ENOSPC on the store WAL (the per-cycle store
		// mutations exercise it), plus some write latency.
		return []fault.Rule{
			{Op: fault.OpWrite, Path: "wal-", After: 1, Count: 1,
				Fault: fault.Fault{Err: syscall.ENOSPC, Torn: 3}},
			{Op: fault.OpWrite, Path: ".wal", After: 6, Count: 2,
				Fault: fault.Fault{Delay: 200 * time.Microsecond}},
		}
	case 2:
		// Write errors on session journals, two in a row.
		return []fault.Rule{{Op: fault.OpWrite, Path: ".wal", After: 5, Count: 2,
			Fault: fault.Fault{Err: syscall.EIO}}}
	default:
		// fsync failure on the store WAL.
		return []fault.Rule{{Op: fault.OpSync, Path: "wal-", After: 1, Count: 1,
			Fault: fault.Fault{Err: syscall.EIO}}}
	}
}

// wireNetRules fault the binary listener: corruption (which the CRC
// frames must catch and turn into a dropped connection, never a wrong
// answer), resets, and stalls.
func wireNetRules(cycle int) []fault.Rule {
	switch cycle % 4 {
	case 1:
		return []fault.Rule{{Op: fault.OpConnWrite, After: 6, Count: 1,
			Fault: fault.Fault{Corrupt: true}}}
	case 2:
		return []fault.Rule{{Op: fault.OpConnRead, After: 10, Count: 1,
			Fault: fault.Fault{Err: syscall.ECONNRESET}}}
	case 3:
		return []fault.Rule{
			{Op: fault.OpConnRead, After: 4, Count: 3,
				Fault: fault.Fault{Delay: time.Millisecond}},
			{Op: fault.OpConnWrite, After: 14, Count: 1,
				Fault: fault.Fault{Err: syscall.EPIPE}},
		}
	}
	return nil
}

// httpNetRules fault the HTTP listener: drops and stalls only — HTTP
// has no frame CRC, so corruption there could make the transport lie
// rather than fail, which is exactly what the binary protocol's frames
// exist to prevent.
func httpNetRules(cycle int) []fault.Rule {
	if cycle%3 != 2 {
		return nil
	}
	return []fault.Rule{{Op: fault.OpConnRead, After: 20, Count: 1,
		Fault: fault.Fault{Err: syscall.ECONNRESET}}}
}

// triState tracks one session's per-query-ID knowledge: confirmed
// live, confirmed gone, or (absent from both) unknown — the fate of an
// event whose ack failed indeterminately or vanished with the
// connection.
type triState struct {
	live map[string]bool
	gone map[string]bool
}

func newTriState() *triState {
	return &triState{live: map[string]bool{}, gone: map[string]bool{}}
}

func (ts *triState) unknown(id string) { delete(ts.live, id); delete(ts.gone, id) }

// ackFate classifies one event's outcome and fails the test on any
// untyped or non-retryable failure that is not a semantic rejection.
// Returns "acked", "rejected" (fate known, nothing changed), or
// "unknown".
func ackFate(t *testing.T, err error) string {
	t.Helper()
	if err == nil {
		return "acked"
	}
	var ce *client.Error
	if errors.As(err, &ce) {
		switch ce.Code {
		case coord.CodeUnsafeArrival, api.CodeDuplicateID, api.CodeUnknownID,
			api.CodeSessionExists, api.CodeSessionNotFound:
			return "rejected" // semantic rejection: typed, final, fate known
		}
		if !client.IsRetryable(ce) {
			t.Fatalf("failed ack is typed but not retryable: %v", ce)
		}
		if client.FateKnown(ce) {
			return "rejected"
		}
		return "unknown"
	}
	if !client.IsRetryable(err) {
		t.Fatalf("untyped, non-retryable error escaped to the client: %v", err)
	}
	return "unknown" // transport drop: the request's fate is unknown
}

func TestChaosSoakNoAckedWriteEverLost(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	names := make([]string, chaosSessions)
	for i := range names {
		names[i] = fmt.Sprintf("chaos-%c", 'a'+i)
	}
	// observed[name] is the live set read just before the previous kill;
	// the next cycle's recovery must reproduce it exactly.
	observed := map[string][]string{}
	var (
		degradedSeen      bool  // degraded mode observed in /healthz
		indeterminateSeen bool  // at least one indeterminate ack
		diskFaults        int64 // faults actually fired, summed over cycles
		netFaults         int64
	)

	for cycle := 0; cycle < chaosCycles; cycle++ {
		diskInj := fault.NewInjector(int64(1000+cycle), diskRules(cycle)...)
		diskInj.Disarm() // recovery replay and reads run clean
		wireInj := fault.NewInjector(int64(2000+cycle), wireNetRules(cycle)...)
		wireInj.Disarm()
		httpInj := fault.NewInjector(int64(3000+cycle), httpNetRules(cycle)...)
		httpInj.Disarm()

		backend, err := persist.Open(dir, persist.Options{
			Sync: persist.SyncAlways,
			FS:   fault.NewFS(fault.OS, diskInj),
		})
		if err != nil {
			t.Fatalf("cycle %d: open: %v", cycle, err)
		}
		if backend.Fresh() {
			if err := db.ApplyAll(backend, workload.UserTableMutations(chaosRows)); err != nil {
				t.Fatal(err)
			}
			if err := backend.Apply(db.MCreate("Chaos", 0, "cycle", "n")); err != nil {
				t.Fatal(err)
			}
		}
		e := engine.New(backend, engine.Options{})
		// ProbeInterval < 0: the soak drives probes itself so the
		// degraded windows are deterministic and observable.
		srv, err := server.New(e, server.Options{Persist: backend, ProbeInterval: -1})
		if err != nil {
			t.Fatalf("cycle %d: server: %v", cycle, err)
		}
		ts2 := httptest.NewUnstartedServer(srv)
		ts2.Listener = fault.NewListener(ts2.Listener, httpInj)
		ts2.Start()
		wireLn, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go srv.ServeWire(fault.NewListener(wireLn, wireInj))
		httpC, err := client.New(ts2.URL, client.Options{})
		if err != nil {
			t.Fatal(err)
		}
		binC, err := client.New("tcp://"+wireLn.Addr().String(), client.Options{})
		if err != nil {
			t.Fatal(err)
		}

		// ---- Recovery check (clean transports): every session's live
		// set must match what was observed before the kill, and its
		// quiesced state must equal a fresh batch SCCCoordinate over
		// that set, byte-for-byte.
		if cycle > 0 {
			rec, err := httpC.Recovery(ctx)
			if err != nil {
				t.Fatalf("cycle %d: recovery status: %v", cycle, err)
			}
			if rec.Sessions != chaosSessions {
				t.Fatalf("cycle %d: recovered %d sessions, want %d", cycle, rec.Sessions, chaosSessions)
			}
			for _, name := range names {
				tr := &churnTrack{name: name, live: map[string]bool{}}
				for _, id := range observed[name] {
					tr.live[id] = true
				}
				checkRecovered(t, ctx, httpC, backend, tr)
			}
		}

		// ---- Churn under fire.
		diskInj.Arm()
		wireInj.Arm()
		httpInj.Arm()
		states := map[string]*triState{}
		probe := func() {
			// Best-effort operator probe; failures consume the fault
			// budget and the next one succeeds.
			_ = backend.Probe()
		}
		for si, name := range names {
			c := httpC
			if (cycle+si)%2 == 1 {
				c = binC
			}
			if cycle == 0 {
				var sess *client.Session
				for attempt := 0; attempt < 8; attempt++ {
					sess, err = c.CreateSession(ctx, name, false)
					if err == nil || ackFate(t, err) == "acked" {
						break
					}
					probe()
				}
				if sess == nil {
					t.Fatalf("cycle 0: creating %s never succeeded: %v", name, err)
				}
			}
			st := newTriState()
			states[name] = st
			sess := c.Session(name)
			arrivals := workload.Arrivals(workload.Churn, chaosEvents, chaosRows, int64(97*cycle+si))
			for _, a := range arrivals {
				if a.Leave {
					up, err := sess.Leave(ctx, a.ID)
					switch ackFate(t, err) {
					case "acked":
						if up.Admitted {
							st.gone[a.ID] = true
							delete(st.live, a.ID)
						}
					case "unknown":
						st.unknown(a.ID)
					}
				} else {
					up, err := sess.Join(ctx, a.Query)
					switch ackFate(t, err) {
					case "acked":
						if up.Admitted || up.Parked {
							st.live[a.Query.ID] = true
							delete(st.gone, a.Query.ID)
						}
					case "unknown":
						st.unknown(a.Query.ID)
					}
				}
				// Surface and then heal degraded windows so churn makes
				// progress: a degraded /healthz is the required
				// observable, a probe the required exit.
				if backend.Degraded() {
					h, herr := httpC.Health(ctx)
					if herr == nil {
						if h.Status != "degraded" || !h.Degraded {
							t.Fatalf("backend degraded but healthz says %+v", h)
						}
						degradedSeen = true
					}
					probe()
				}
			}
		}

		// Store-WAL writes under the same fault schedule.
		for k := 0; k < 3; k++ {
			err := backend.Apply(db.MInsert("Chaos",
				eq.Value(fmt.Sprintf("c%d", cycle)), eq.Value(fmt.Sprintf("n%d", k))))
			switch {
			case err == nil:
			case errors.Is(err, persist.ErrIndeterminate):
				indeterminateSeen = true
			case errors.Is(err, persist.ErrDegraded):
			default:
				t.Fatalf("untyped store apply error: %v", err)
			}
			if backend.Degraded() {
				probe()
			}
		}
		// Batch coordination keeps both protocols honest under network
		// faults: results either verify or fail typed.
		for _, c := range []*client.Client{httpC, binC} {
			if _, err := c.Coordinate(ctx, workload.ListQueriesAt(4, cycle%chaosRows)); err != nil {
				ackFate(t, err) // typed or retryable, never a lie
			}
		}

		// ---- Settle: lift any remaining degradation (the fault budget
		// is finite), then require /healthz ok — at that point pending
		// payloads are flushed and the journal equals the in-memory
		// state.
		deadline := time.Now().Add(15 * time.Second)
		for backend.Degraded() {
			if time.Now().After(deadline) {
				t.Fatalf("cycle %d: degradation never lifted: %v", cycle, backend.DegradeCause())
			}
			probe()
			time.Sleep(time.Millisecond)
		}
		diskInj.Disarm()
		wireInj.Disarm()
		httpInj.Disarm()
		if h, err := httpC.Health(ctx); err != nil || h.Status != "ok" {
			t.Fatalf("cycle %d: healthz after settle: %+v (%v)", cycle, h, err)
		}

		// ---- Observe: confirmed acks must be visible; confirmed
		// removals must not. The observed live set becomes the truth the
		// next cycle's recovery is held to.
		for _, name := range names {
			st, err := httpC.Session(name).Status(ctx, false)
			if err != nil {
				t.Fatalf("cycle %d: status %s: %v", cycle, name, err)
			}
			liveNow := map[string]bool{}
			ids := make([]string, 0, len(st.Queries))
			for _, q := range st.Queries {
				liveNow[q.ID] = true
				ids = append(ids, q.ID)
			}
			tr := states[name]
			for id := range tr.live {
				if !liveNow[id] {
					t.Fatalf("cycle %d: %s: acked join of %q vanished before the kill", cycle, name, id)
				}
			}
			for id := range tr.gone {
				if liveNow[id] {
					t.Fatalf("cycle %d: %s: acked leave of %q did not stick", cycle, name, id)
				}
			}
			sort.Strings(ids)
			observed[name] = ids
		}

		_, df := diskInj.Stats()
		diskFaults += df
		_, wf := wireInj.Stats()
		_, hf := httpInj.Stats()
		netFaults += wf + hf

		// ---- Kill: no drain, no sync — the acked state must already
		// be durable.
		binC.Close()
		httpC.Close()
		ts2.Close()
		backend.Abort()
		srv.Close()
		if err := backend.Close(); err != nil && !errors.Is(err, persist.ErrDegraded) {
			// Abort already released everything; Close after Abort only
			// reports the terminal state.
			_ = err
		}
	}

	if !degradedSeen {
		t.Fatal("soak never observed degraded mode in /healthz — the disk schedule is too gentle")
	}
	if diskFaults == 0 || netFaults == 0 {
		t.Fatalf("soak fired %d disk / %d net faults; both must be exercised", diskFaults, netFaults)
	}
	_ = indeterminateSeen // indeterminate acks depend on which op the schedule hits; degradedSeen is the hard gate
}
