package netgen

import (
	"math"
	"sort"

	"entangled/internal/graph"
)

// DegreeStats summarises a graph's in-degree distribution; the paper
// motivates the scale-free workload by the power-law in-degrees of real
// social networks.
type DegreeStats struct {
	N         int
	Edges     int
	MaxIn     int
	MeanIn    float64
	GiniIn    float64 // inequality of the in-degree distribution (0 = uniform)
	TailAlpha float64 // continuous MLE power-law exponent fit over in-degrees >= TailXMin
	TailXMin  int
}

// InDegreeHistogram returns counts[d] = number of nodes with in-degree
// d.
func InDegreeHistogram(g *graph.Digraph) []int {
	deg := g.InDegrees()
	max := 0
	for _, d := range deg {
		if d > max {
			max = d
		}
	}
	counts := make([]int, max+1)
	for _, d := range deg {
		counts[d]++
	}
	return counts
}

// AnalyzeDegrees computes summary statistics of the in-degree
// distribution, including a maximum-likelihood power-law exponent over
// the tail (in-degrees >= xmin, default 2). The estimator is the
// standard continuous approximation alpha = 1 + n / sum(ln(x/xmin-0.5));
// it is meant for sanity checks in tests and examples, not for rigorous
// fitting.
func AnalyzeDegrees(g *graph.Digraph, xmin int) DegreeStats {
	if xmin < 1 {
		xmin = 2
	}
	deg := g.InDegrees()
	st := DegreeStats{N: g.N(), Edges: g.M(), TailXMin: xmin}
	if g.N() == 0 {
		return st
	}
	sum := 0
	for _, d := range deg {
		sum += d
		if d > st.MaxIn {
			st.MaxIn = d
		}
	}
	st.MeanIn = float64(sum) / float64(len(deg))

	// Gini coefficient over in-degrees.
	sorted := append([]int(nil), deg...)
	sort.Ints(sorted)
	if sum > 0 {
		var cum float64
		for i, d := range sorted {
			cum += float64(i+1) * float64(d)
		}
		n := float64(len(sorted))
		st.GiniIn = (2*cum)/(n*float64(sum)) - (n+1)/n
	}

	// Tail exponent MLE.
	var logSum float64
	tail := 0
	for _, d := range deg {
		if d >= xmin {
			logSum += math.Log(float64(d) / (float64(xmin) - 0.5))
			tail++
		}
	}
	if tail > 0 && logSum > 0 {
		st.TailAlpha = 1 + float64(tail)/logSum
	}
	return st
}
