// Package netgen generates the social-network structures driving the
// paper's experiments (§6): the list/chain structure of Figure 4, the
// Barabási–Albert scale-free networks of Figures 5 and 6 (the paper's
// own generator, citing Barabási & Albert 1999), complete graphs for the
// friendship tables of Figures 7 and 8, plus Erdős–Rényi graphs and a
// Slashdot-scale power-law network standing in for the unavailable
// Slashdot crawl.
package netgen
