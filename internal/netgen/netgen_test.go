package netgen

import (
	"math/rand"
	"testing"
	"testing/quick"

	"entangled/internal/graph"
)

func TestChain(t *testing.T) {
	g := Chain(4)
	if g.M() != 3 {
		t.Fatalf("edges = %d", g.M())
	}
	for i := 0; i < 3; i++ {
		if !g.HasEdge(i, i+1) {
			t.Fatalf("missing edge %d->%d", i, i+1)
		}
	}
	if g.OutDegree(3) != 0 {
		t.Fatal("last node has no successor")
	}
	if Chain(0).N() != 0 || Chain(1).M() != 0 {
		t.Fatal("degenerate chains")
	}
}

func TestComplete(t *testing.T) {
	g := Complete(4)
	if g.M() != 12 {
		t.Fatalf("edges = %d, want n(n-1)", g.M())
	}
	for i := 0; i < 4; i++ {
		if g.HasEdge(i, i) {
			t.Fatal("no self loops")
		}
	}
}

func TestCycle(t *testing.T) {
	g := Cycle(5)
	if g.M() != 5 {
		t.Fatalf("edges = %d", g.M())
	}
	if !g.StronglyConnected() {
		t.Fatal("cycle is strongly connected")
	}
}

func TestBarabasiAlbertShape(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	g := BarabasiAlbert(200, 2, rng)
	if g.N() != 200 {
		t.Fatalf("n = %d", g.N())
	}
	// Node v >= m attaches exactly m edges; earlier nodes fewer.
	for v := 2; v < 200; v++ {
		if g.OutDegree(v) != 2 {
			t.Fatalf("node %d out-degree %d, want 2", v, g.OutDegree(v))
		}
	}
	if g.OutDegree(0) != 0 || g.OutDegree(1) != 1 {
		t.Fatalf("seed degrees: %d %d", g.OutDegree(0), g.OutDegree(1))
	}
}

func TestBarabasiAlbertHeavyTail(t *testing.T) {
	// Preferential attachment concentrates in-degree: the maximum
	// in-degree must far exceed the mean (a loose heavy-tail check that
	// holds for any seed at this size).
	rng := rand.New(rand.NewSource(72))
	g := BarabasiAlbert(2000, 3, rng)
	deg := g.InDegrees()
	max, sum := 0, 0
	for _, d := range deg {
		if d > max {
			max = d
		}
		sum += d
	}
	mean := float64(sum) / float64(len(deg))
	if float64(max) < 8*mean {
		t.Fatalf("max in-degree %d vs mean %.2f: no heavy tail", max, mean)
	}
}

func TestBarabasiAlbertNoSelfLoopsNoDups(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	g := BarabasiAlbert(300, 3, rng)
	for u := 0; u < g.N(); u++ {
		if g.HasEdge(u, u) {
			t.Fatalf("self loop at %d", u)
		}
		// New nodes only attach to earlier nodes.
		for _, v := range g.Succ(u) {
			if v >= u {
				t.Fatalf("edge %d->%d goes forward", u, v)
			}
		}
	}
}

func TestBarabasiAlbertPanicsOnBadM(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("m=0 must panic")
		}
	}()
	BarabasiAlbert(10, 0, rand.New(rand.NewSource(1)))
}

func TestErdosRenyi(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	g0 := ErdosRenyi(20, 0, rng)
	if g0.M() != 0 {
		t.Fatal("p=0 gives no edges")
	}
	g1 := ErdosRenyi(20, 1, rng)
	if g1.M() != 20*19 {
		t.Fatalf("p=1 gives all edges, got %d", g1.M())
	}
}

func TestSlashdotLike(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	g := SlashdotLike(500, rng)
	if g.N() != 500 {
		t.Fatalf("n = %d", g.N())
	}
	if SlashdotSize != 82168 {
		t.Fatal("the paper's table has 82168 rows")
	}
}

// Property: BA graphs are always acyclic (edges point backward), so the
// condensation equals the graph itself.
func TestQuickBAAcyclic(t *testing.T) {
	rng := rand.New(rand.NewSource(76))
	f := func() bool {
		n := 2 + rng.Intn(60)
		m := 1 + rng.Intn(3)
		g := BarabasiAlbert(n, m, rng)
		_, ncomp := g.SCC()
		return ncomp == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestInDegreeHistogram(t *testing.T) {
	g := Chain(4) // in-degrees: 0,1,1,1
	h := InDegreeHistogram(g)
	if len(h) != 2 || h[0] != 1 || h[1] != 3 {
		t.Fatalf("histogram = %v", h)
	}
}

func TestAnalyzeDegreesChainVsScaleFree(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	ba := AnalyzeDegrees(BarabasiAlbert(3000, 3, rng), 2)
	ch := AnalyzeDegrees(Chain(3000), 2)
	if ba.N != 3000 || ba.Edges == 0 {
		t.Fatalf("stats: %+v", ba)
	}
	// Preferential attachment is far more unequal than a chain.
	if ba.GiniIn <= ch.GiniIn {
		t.Fatalf("BA gini %.3f should exceed chain gini %.3f", ba.GiniIn, ch.GiniIn)
	}
	// The BA in-degree tail exponent is near the theoretical 3 — accept
	// a generous band since the estimator is rough and n is modest.
	if ba.TailAlpha < 1.7 || ba.TailAlpha > 4.5 {
		t.Fatalf("BA tail alpha = %.2f, expected in [1.7, 4.5]", ba.TailAlpha)
	}
	if ba.MaxIn < 10*int(ba.MeanIn) {
		t.Fatalf("BA max in-degree %d should dwarf the mean %.2f", ba.MaxIn, ba.MeanIn)
	}
}

func TestAnalyzeDegreesEmpty(t *testing.T) {
	st := AnalyzeDegrees(graphNew(0), 2)
	if st.N != 0 || st.MeanIn != 0 {
		t.Fatalf("empty graph stats: %+v", st)
	}
}

// graphNew avoids an extra import alias collision in this file.
func graphNew(n int) *graph.Digraph { return graph.New(n) }
