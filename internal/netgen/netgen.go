package netgen

import (
	"math/rand"
	"sort"

	"entangled/internal/graph"
)

// Chain returns the list structure of Figure 4: node i points at node
// i+1; the last node has no successor.
func Chain(n int) *graph.Digraph {
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

// Complete returns the complete directed graph (no self-loops), used as
// the Friends table of the consistent-coordination experiments.
func Complete(n int) *graph.Digraph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

// Cycle returns a directed cycle on n nodes.
func Cycle(n int) *graph.Digraph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n)
	}
	return g
}

// BarabasiAlbert generates a scale-free directed network by preferential
// attachment: nodes arrive one at a time and attach m edges to existing
// nodes chosen with probability proportional to their current (in +
// out) degree, so in-degrees follow a power law — the model the paper
// uses for realistic coordination structures. Edges point from the new
// node to its chosen targets (a query coordinates with earlier queries).
func BarabasiAlbert(n, m int, rng *rand.Rand) *graph.Digraph {
	if m < 1 {
		panic("netgen: BarabasiAlbert needs m >= 1")
	}
	g := graph.New(n)
	if n == 0 {
		return g
	}
	// repeated holds each node once per unit of degree plus once
	// unconditionally, so new and isolated nodes remain reachable
	// targets (the standard implementation trick).
	var repeated []int
	repeated = append(repeated, 0)
	for v := 1; v < n; v++ {
		targets := map[int]bool{}
		want := m
		if v < m {
			want = v
		}
		for len(targets) < want {
			t := repeated[rng.Intn(len(repeated))]
			if t != v {
				targets[t] = true
			}
		}
		// Iterate the target set in sorted order: ranging over the map
		// would feed map-iteration randomness into `repeated` and make
		// same-seed runs produce different graphs.
		ts := make([]int, 0, len(targets))
		for t := range targets {
			ts = append(ts, t)
		}
		sort.Ints(ts)
		for _, t := range ts {
			g.AddEdge(v, t)
			repeated = append(repeated, t)
		}
		repeated = append(repeated, v)
	}
	return g
}

// ErdosRenyi generates G(n, p): each ordered pair (i, j), i != j, is an
// edge independently with probability p.
func ErdosRenyi(n int, p float64, rng *rand.Rand) *graph.Digraph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && rng.Float64() < p {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

// SlashdotLike generates a power-law network at the scale of the
// Slashdot crawl used by the paper (82,168 users); pass a smaller n for
// cheaper runs. It is Barabási–Albert with m = 3, which gives the heavy
// in-degree tail characteristic of the Slashdot friend graph.
func SlashdotLike(n int, rng *rand.Rand) *graph.Digraph {
	return BarabasiAlbert(n, 3, rng)
}

// SlashdotSize is the number of rows of the paper's Slashdot table.
const SlashdotSize = 82168
