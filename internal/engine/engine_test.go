package engine

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"entangled/internal/coord"
	"entangled/internal/db"
	"entangled/internal/eq"
	"entangled/internal/workload"
)

const testRows = 500

func listInstance(t testing.TB) *db.Instance {
	t.Helper()
	inst := db.NewInstance()
	workload.UserTable(inst, testRows)
	return inst
}

// TestCoordinateMatchesSequential checks that the engine's
// component-parallel path returns exactly the sequential result on the
// Figure 4 list workload and on scale-free structures.
func TestCoordinateMatchesSequential(t *testing.T) {
	inst := listInstance(t)
	e := New(inst, Options{Workers: 8, Coord: coord.Options{SkipSafetyCheck: true}})
	for _, n := range []int{1, 10, 25, 50, 100} {
		qs := workload.ListQueries(n, testRows)
		seq, err := coord.SCCCoordinate(qs, inst, coord.Options{SkipSafetyCheck: true})
		if err != nil {
			t.Fatal(err)
		}
		par, err := e.Coordinate(context.Background(), qs)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq.Set, par.Set) {
			t.Fatalf("n=%d: sequential set %v != parallel set %v", n, seq.Set, par.Set)
		}
		if !reflect.DeepEqual(seq.Values, par.Values) {
			t.Fatalf("n=%d: assignments differ", n)
		}
	}
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		qs := workload.ScaleFreeQueries(40, 2, testRows, rng)
		seq, err := coord.SCCCoordinate(qs, inst, coord.Options{SkipSafetyCheck: true})
		if err != nil {
			t.Fatal(err)
		}
		par, err := e.Coordinate(context.Background(), qs)
		if err != nil {
			t.Fatal(err)
		}
		if seq.Size() != par.Size() || !reflect.DeepEqual(seq.Set, par.Set) {
			t.Fatalf("seed=%d: sequential %v != parallel %v", seed, seq.Set, par.Set)
		}
	}
}

// TestCoordinateManySharedInstance drives a batch of independent
// requests through one shared instance and checks every response; with
// -race this exercises the db layer's concurrent-reader guarantees.
func TestCoordinateManySharedInstance(t *testing.T) {
	inst := listInstance(t)
	e := New(inst, Options{Workers: 8, Coord: coord.Options{SkipSafetyCheck: true}})
	const batch = 64
	reqs := make([]Request, batch)
	for i := range reqs {
		n := 5 + i%20
		reqs[i] = Request{ID: fmt.Sprintf("req%d", i), Queries: workload.ListQueries(n, testRows)}
	}
	out := e.CoordinateMany(context.Background(), reqs)
	if len(out) != batch {
		t.Fatalf("got %d responses, want %d", len(out), batch)
	}
	for i, r := range out {
		n := 5 + i%20
		if r.Err != nil {
			t.Fatalf("request %d: %v", i, r.Err)
		}
		if r.ID != fmt.Sprintf("req%d", i) {
			t.Fatalf("request %d: response out of order (id %s)", i, r.ID)
		}
		if r.Result.Size() != n {
			t.Fatalf("request %d: set size %d, want %d", i, r.Result.Size(), n)
		}
	}
}

// TestCoordinateManyWithConcurrentWriters runs a request batch while
// other goroutines insert into the shared instance — the serving shape
// where the database keeps growing under read traffic. Results may
// legitimately vary in witness, but never in error or set size, because
// the list workload's bodies always stay satisfiable.
func TestCoordinateManyWithConcurrentWriters(t *testing.T) {
	inst := listInstance(t)
	rel, _ := inst.Relation("T")
	e := New(inst, Options{Workers: 4, Coord: coord.Options{SkipSafetyCheck: true}})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				rel.Insert(eq.Value(fmt.Sprintf("w%d-%d", w, i)), eq.Value(fmt.Sprintf("c%d", i%testRows)))
				side := inst.CreateRelation(fmt.Sprintf("Side%d_%d", w, i), "a")
				side.Insert(eq.Value("x"))
			}
		}(w)
	}
	reqs := make([]Request, 32)
	for i := range reqs {
		reqs[i] = Request{Queries: workload.ListQueries(10, testRows)}
	}
	out := e.CoordinateMany(context.Background(), reqs)
	close(stop)
	wg.Wait()
	for i, r := range out {
		if r.Err != nil {
			t.Fatalf("request %d: %v", i, r.Err)
		}
		if r.Result.Size() != 10 {
			t.Fatalf("request %d: set size %d, want 10", i, r.Result.Size())
		}
	}
}

// TestCoordinateManyCancel checks that cancelling the batch context
// stops serving and surfaces ctx.Err on unserved requests.
func TestCoordinateManyCancel(t *testing.T) {
	inst := listInstance(t)
	e := New(inst, Options{Workers: 2, Coord: coord.Options{SkipSafetyCheck: true}})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	reqs := make([]Request, 8)
	for i := range reqs {
		reqs[i] = Request{Queries: workload.ListQueries(5, testRows)}
	}
	out := e.CoordinateMany(ctx, reqs)
	for i, r := range out {
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("request %d: err = %v, want context.Canceled", i, r.Err)
		}
	}
}

// TestBruteForceParallelMatchesSequential compares the sharded oracle
// against the sequential one on randomized safe workloads.
func TestBruteForceParallelMatchesSequential(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		inst := db.NewInstance()
		workload.UserTable(inst, 50)
		qs := workload.RandomSafeQueries(9, 50, 0.25, 0.7, rng)
		e := New(inst, Options{Workers: 4})

		seqExists, err := coord.BruteForceExists(qs, inst)
		if err != nil {
			t.Fatal(err)
		}
		parExists, err := e.BruteForceExists(context.Background(), qs)
		if err != nil {
			t.Fatal(err)
		}
		if seqExists != parExists {
			t.Fatalf("seed=%d: exists %v != parallel %v", seed, seqExists, parExists)
		}

		seqMax, err := coord.BruteForceMax(qs, inst)
		if err != nil {
			t.Fatal(err)
		}
		parMax, err := e.BruteForceMax(context.Background(), qs)
		if err != nil {
			t.Fatal(err)
		}
		if seqMax.Size() != parMax.Size() {
			t.Fatalf("seed=%d: max size %d != parallel %d", seed, seqMax.Size(), parMax.Size())
		}
		if parMax != nil {
			if err := coord.Verify(qs, parMax.Set, parMax.Values, inst); err != nil {
				t.Fatalf("seed=%d: parallel witness does not verify: %v", seed, err)
			}
		}
	}
}

// TestBruteForceTooManyQueries checks the typed-error contract on
// oversized inputs for both oracles and both paths.
func TestBruteForceTooManyQueries(t *testing.T) {
	inst := listInstance(t)
	qs := workload.ListQueries(coord.MaxBruteQueries+1, testRows)
	if _, err := coord.BruteForceExists(qs, inst); !errors.Is(err, coord.ErrTooManyQueries) {
		t.Fatalf("sequential exists: err = %v, want ErrTooManyQueries", err)
	}
	if _, err := coord.BruteForceMax(qs, inst); !errors.Is(err, coord.ErrTooManyQueries) {
		t.Fatalf("sequential max: err = %v, want ErrTooManyQueries", err)
	}
	e := New(inst, Options{Workers: 4})
	if _, err := e.BruteForceExists(context.Background(), qs); !errors.Is(err, coord.ErrTooManyQueries) {
		t.Fatalf("parallel exists: err = %v, want ErrTooManyQueries", err)
	}
	if _, err := e.BruteForceMax(context.Background(), qs); !errors.Is(err, coord.ErrTooManyQueries) {
		t.Fatalf("parallel max: err = %v, want ErrTooManyQueries", err)
	}
}

// TestBruteForceCancel checks early cancellation of the sharded
// enumeration.
func TestBruteForceCancel(t *testing.T) {
	inst := listInstance(t)
	e := New(inst, Options{Workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	qs := workload.ListQueries(12, testRows)
	if _, err := e.BruteForceMax(ctx, qs); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
