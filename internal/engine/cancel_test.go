package engine

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"entangled/internal/db"
	"entangled/internal/eq"
	"entangled/internal/unify"
	"entangled/internal/workload"
)

// gateStore counts queries and can block them on a gate, so a test can
// cancel a context while a plan is mid-flight and then let the blocked
// call return.
type gateStore struct {
	inner   db.Store
	queries atomic.Int64
	gate    chan struct{} // nil: never block
	started chan struct{} // closed on the first counted query
	once    atomic.Bool
}

func newGateStore(inner db.Store) *gateStore {
	return &gateStore{inner: inner, gate: make(chan struct{}), started: make(chan struct{})}
}

func (g *gateStore) enter() {
	g.queries.Add(1)
	if g.once.CompareAndSwap(false, true) {
		close(g.started)
	}
	if g.gate != nil {
		<-g.gate
	}
}

func (g *gateStore) Solve(body []eq.Atom) (db.Binding, bool, error) {
	g.enter()
	return g.inner.Solve(body)
}
func (g *gateStore) SolveAll(body []eq.Atom, limit int) ([]db.Binding, error) {
	g.enter()
	return g.inner.SolveAll(body, limit)
}
func (g *gateStore) Satisfiable(body []eq.Atom) (bool, error) {
	g.enter()
	return g.inner.Satisfiable(body)
}
func (g *gateStore) SolveUnder(body []eq.Atom, s *unify.Subst) (db.Binding, bool, error) {
	g.enter()
	return g.inner.SolveUnder(body, s)
}
func (g *gateStore) Contains(a eq.Atom) bool { return g.inner.Contains(a) }
func (g *gateStore) Domain() []eq.Value      { return g.inner.Domain() }
func (g *gateStore) QueriesIssued() int64    { return g.queries.Load() }
func (g *gateStore) ResetCounters()          { g.queries.Store(0) }

// TestCoordinateManyCancelAbortsMidPlan: cancelling the batch context
// while a plan is blocked inside a store call makes the engine return
// promptly once that call comes back — the context-wrapped store fails
// every later query instead of running the plan to completion — and
// the responses carry the typed context error.
func TestCoordinateManyCancelAbortsMidPlan(t *testing.T) {
	gs := newGateStore(listInstance(t))
	e := New(gs, Options{Workers: 2})
	reqs := []Request{
		{ID: "a", Queries: workload.ListQueries(6, testRows)},
		{ID: "b", Queries: workload.ListQueries(6, testRows)},
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan []Response, 1)
	go func() { done <- e.CoordinateMany(ctx, reqs) }()

	<-gs.started // a plan is inside its first store call
	cancel()
	close(gs.gate) // release every blocked (and future) call

	select {
	case out := <-done:
		for _, r := range out {
			if r.Err == nil {
				t.Fatalf("request %s completed despite cancellation", r.ID)
			}
			if !errors.Is(r.Err, context.Canceled) {
				t.Fatalf("request %s: %v, want context.Canceled", r.ID, r.Err)
			}
		}
	case <-time.After(10 * time.Second):
		t.Fatal("CoordinateMany did not return after cancel — a canceled plan ran on")
	}
	// The abort is at the next query boundary: at most one in-flight
	// store call per worker finished after cancel, the rest of each plan
	// (dozens of queries for these sets) never ran.
	if n := gs.queries.Load(); n > int64(2*len(reqs)) {
		t.Fatalf("%d store queries issued after cancel-at-first-query; the plans kept running", n)
	}
}

// TestCoordinateCancelledBeforeStart fails fast without touching the
// store at all.
func TestCoordinateCancelledBeforeStart(t *testing.T) {
	gs := newGateStore(listInstance(t))
	gs.gate = nil // never block; the call must not even reach the store
	e := New(gs, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Coordinate(ctx, workload.ListQueries(4, testRows)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := gs.queries.Load(); n != 0 {
		t.Fatalf("%d store queries issued for a pre-canceled request", n)
	}
}

// TestCoordinateDeadlinePropagates: an expired deadline surfaces as
// context.DeadlineExceeded from the store boundary mid-plan.
func TestCoordinateDeadlinePropagates(t *testing.T) {
	gs := newGateStore(listInstance(t))
	gs.gate = nil
	e := New(gs, Options{})
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	out := e.CoordinateMany(ctx, []Request{{ID: "x", Queries: workload.ListQueries(4, testRows)}})
	if !errors.Is(out[0].Err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", out[0].Err)
	}
}
