package engine

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"entangled/internal/coord"
	"entangled/internal/db"
	"entangled/internal/eq"
	"entangled/internal/workload"
)

// exactMeteringStores builds one plain and one 8-shard store with
// identical contents for the metering tests.
func exactMeteringStores() (*db.Instance, *db.ShardedInstance) {
	inst := db.NewInstance()
	workload.UserTable(inst, testRows)
	sh := db.NewShardedInstance(8)
	workload.UserTableSharded(sh, testRows)
	return inst, sh
}

// TestCoordinateManyExactMetering is the paper's cost-metric guarantee
// under serving load: N concurrent identical requests over one shared
// store must each report exactly the DBQueries a solo run reports —
// concurrent traffic must never leak into another request's count. Run
// with -race this also exercises the per-request meters under the
// engine's full concurrency.
func TestCoordinateManyExactMetering(t *testing.T) {
	inst, sh := exactMeteringStores()
	for name, store := range map[string]db.Store{"instance": inst, "sharded8": sh} {
		t.Run(name, func(t *testing.T) {
			e := New(store, Options{Workers: 8, Coord: coord.Options{SkipSafetyCheck: true}})
			qs := workload.ListQueries(20, testRows)

			solo := e.CoordinateMany(context.Background(), []Request{{ID: "solo", Queries: qs}})
			if solo[0].Err != nil {
				t.Fatal(solo[0].Err)
			}
			want := solo[0].Result.DBQueries
			if want == 0 {
				t.Fatal("solo run reported zero queries; the workload should issue some")
			}

			const n = 32
			reqs := make([]Request, n)
			for i := range reqs {
				reqs[i] = Request{ID: fmt.Sprintf("req%d", i), Queries: qs}
			}
			store.ResetCounters()
			for i, resp := range e.CoordinateMany(context.Background(), reqs) {
				if resp.Err != nil {
					t.Fatalf("request %d: %v", i, resp.Err)
				}
				if resp.Result.DBQueries != want {
					t.Fatalf("request %d: DBQueries %d, want the solo count %d", i, resp.Result.DBQueries, want)
				}
			}
			// The aggregate still totals the whole batch.
			if got := store.QueriesIssued(); got != int64(n)*want {
				t.Fatalf("aggregate %d, want %d requests x %d", got, n, want)
			}
		})
	}
}

// TestCoordinateManyRoutedMatchesUnrouted checks that a routable
// request batch (every body pins the same shard) returns exactly the
// same sets and counts through the sharded fast path as through a
// plain instance.
func TestCoordinateManyRoutedMatchesUnrouted(t *testing.T) {
	inst, sh := exactMeteringStores()
	// rows=1 makes every body T(x, c0): all requests pin c0's shard.
	mkReqs := func() []Request {
		reqs := make([]Request, 16)
		for i := range reqs {
			reqs[i] = Request{ID: fmt.Sprintf("r%d", i), Queries: workload.ListQueries(5+i%10, 1)}
		}
		return reqs
	}
	if _, ok := sh.Route(mkReqs()[0].Queries); !ok {
		t.Fatal("test workload should be single-shard routable")
	}
	plainE := New(inst, Options{Workers: 4, Coord: coord.Options{SkipSafetyCheck: true}})
	shardE := New(sh, Options{Workers: 4, Coord: coord.Options{SkipSafetyCheck: true}})
	want := plainE.CoordinateMany(context.Background(), mkReqs())
	got := shardE.CoordinateMany(context.Background(), mkReqs())
	for i := range want {
		if want[i].Err != nil || got[i].Err != nil {
			t.Fatalf("request %d: errs %v / %v", i, want[i].Err, got[i].Err)
		}
		if !reflect.DeepEqual(want[i].Result.Set, got[i].Result.Set) {
			t.Fatalf("request %d: sets differ: %v vs %v", i, want[i].Result.Set, got[i].Result.Set)
		}
		if want[i].Result.DBQueries != got[i].Result.DBQueries {
			t.Fatalf("request %d: DBQueries %d vs %d", i, want[i].Result.DBQueries, got[i].Result.DBQueries)
		}
		if err := coord.Verify(mkReqs()[i].Queries, got[i].Result.Set, got[i].Result.Values, sh); err != nil {
			t.Fatalf("request %d: routed witness fails verification: %v", i, err)
		}
	}
}

// TestCoordinateManyShardedMixedRoutability mixes routable and
// non-routable requests in one batch over a sharded store; every
// response must still be correct and exactly metered.
func TestCoordinateManyShardedMixedRoutability(t *testing.T) {
	_, sh := exactMeteringStores()
	e := New(sh, Options{Workers: 8, Coord: coord.Options{SkipSafetyCheck: true}})
	reqs := make([]Request, 24)
	for i := range reqs {
		if i%2 == 0 {
			reqs[i] = Request{ID: fmt.Sprintf("routable%d", i), Queries: workload.ListQueries(8, 1)}
		} else {
			reqs[i] = Request{ID: fmt.Sprintf("scatter%d", i), Queries: workload.ListQueries(8, testRows)}
		}
	}
	solo := map[bool]int64{}
	for _, routable := range []bool{true, false} {
		rows := testRows
		if routable {
			rows = 1
		}
		res, err := coord.SCCCoordinate(workload.ListQueries(8, rows), sh, coord.Options{SkipSafetyCheck: true})
		if err != nil {
			t.Fatal(err)
		}
		solo[routable] = res.DBQueries
	}
	for i, resp := range e.CoordinateMany(context.Background(), reqs) {
		if resp.Err != nil {
			t.Fatalf("request %d: %v", i, resp.Err)
		}
		if resp.Result.Size() != 8 {
			t.Fatalf("request %d: set size %d, want 8", i, resp.Result.Size())
		}
		if want := solo[i%2 == 0]; resp.Result.DBQueries != want {
			t.Fatalf("request %d: DBQueries %d, want %d", i, resp.Result.DBQueries, want)
		}
	}
}

// TestEngineShardedWithConcurrentWriters serves a sharded batch while
// writers keep inserting into the same sharded relation — the
// contention shape the sharding exists for; with -race this checks the
// lock discipline end to end. eq import keeps the writer tuples typed.
func TestEngineShardedWithConcurrentWriters(t *testing.T) {
	_, sh := exactMeteringStores()
	rel := sh.CreateRelation("Side", 0, "a", "b")
	e := New(sh, Options{Workers: 4, Coord: coord.Options{SkipSafetyCheck: true}})
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			rel.Insert(eq.Value(fmt.Sprintf("k%d", i)), eq.Value("v"))
		}
	}()
	reqs := make([]Request, 32)
	for i := range reqs {
		reqs[i] = Request{Queries: workload.ListQueries(10, testRows)}
	}
	out := e.CoordinateMany(context.Background(), reqs)
	close(stop)
	<-done
	for i, r := range out {
		if r.Err != nil {
			t.Fatalf("request %d: %v", i, r.Err)
		}
		if r.Result.Size() != 10 {
			t.Fatalf("request %d: set size %d, want 10", i, r.Result.Size())
		}
	}
}
