// Package engine serves coordination requests concurrently over one
// shared database store.
//
// The paper's tractable case — the SCC Coordination Algorithm of §5 —
// decomposes a safe query set into the DAG of its strongly connected
// components, and each component's provider search is an independent
// unification-plus-one-database-query unit of work. The engine exploits
// that structure at two levels: inside a single request it runs
// independent components on a worker pool (coord.Options.Parallelism),
// and across requests it drains a batch of distinct query sets through
// the pool concurrently (CoordinateMany) — the heavy-traffic serving
// shape, where many independent scenarios query one shared store.
//
// # Shard routing
//
// The engine accepts any db.Store. Over a *db.ShardedInstance it adds
// per-request routing: when every body atom of a request pins its
// relation's hash column to constants that all hash to one shard, the
// request is served against that shard alone (db.ShardedInstance.Route),
// so independent requests touch disjoint relation locks and writers to
// other shards never stall this request. Non-routable requests fall
// back to the cross-shard store, which is always correct. Routing
// lives here rather than in the db layer because only the serving
// layer sees request boundaries; the db layer answers any single query
// correctly without needing to know which request it belongs to.
//
// # Metering
//
// Result.DBQueries on every Response is exact for that request alone:
// each coord run counts its queries on a private db.Meter rather than
// reading a delta of the store's shared counter, so concurrent
// requests cannot pollute each other's counts. The store's aggregate
// QueriesIssued still totals all traffic and remains the right way to
// meter a whole batch.
//
// # Compiled plans
//
// The engine adds nothing for query planning, by design: compiled
// query plans live on the store (db.Instance / db.ShardedInstance
// carry a per-store plan cache keyed by body shape), so every
// CoordinateMany worker — and every routed shard view and per-request
// db.Meter wrapped around the store — shares the same hot plans across
// requests. A serving fleet re-issuing the workload's body shapes
// compiles each shape once per schema version, not once per request;
// db.Instance.PlanStats exposes the hit rate (cmd/coordserve prints
// it).
//
// # Streaming sessions
//
// NewSession opens a stream.Session over the engine's store for
// traffic that arrives one query at a time rather than as a finished
// batch: joins and leaves re-coordinate incrementally (only the dirty
// region of the condensation DAG is re-solved), with exact per-event
// metering. Sessions are not shard-routed — their query set
// accumulates over time, so no single shard is pinned up front.
package engine
