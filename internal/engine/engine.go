// Package engine serves coordination requests concurrently over one
// shared database instance.
//
// The paper's tractable case — the SCC Coordination Algorithm of §5 —
// decomposes a safe query set into the DAG of its strongly connected
// components, and each component's provider search is an independent
// unification-plus-one-database-query unit of work. The engine exploits
// that structure at two levels: inside a single request it runs
// independent components on a worker pool (coord.Options.Parallelism),
// and across requests it drains a batch of distinct query sets through
// the pool concurrently (CoordinateMany) — the heavy-traffic serving
// shape, where many independent scenarios query one shared instance.
// The db layer's RWMutex-guarded relations and atomic query counter
// make the shared instance safe under this concurrency.
package engine

import (
	"context"
	"runtime"
	"sync"

	"entangled/internal/coord"
	"entangled/internal/db"
	"entangled/internal/eq"
)

// Options configures an Engine.
type Options struct {
	// Workers is the size of the worker pool used both for
	// per-component parallelism inside a single request and for
	// draining request batches. Zero means GOMAXPROCS.
	Workers int
	// Coord is the base coordination configuration applied to every
	// request (selector, pruning and safety-check toggles). Its
	// Parallelism field is managed by the engine and ignored.
	Coord coord.Options
}

// Engine runs coordination workloads over one shared instance.
type Engine struct {
	inst    *db.Instance
	workers int
	base    coord.Options
}

// New returns an engine over the given instance.
func New(inst *db.Instance, opts Options) *Engine {
	w := opts.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	return &Engine{inst: inst, workers: w, base: opts.Coord}
}

// Workers returns the configured worker-pool size.
func (e *Engine) Workers() int { return e.workers }

// Instance returns the shared database instance.
func (e *Engine) Instance() *db.Instance { return e.inst }

// Coordinate serves one request, parallelising the SCC algorithm's
// per-component searches across the worker pool. The result is
// identical to a sequential coord.SCCCoordinate run.
func (e *Engine) Coordinate(ctx context.Context, qs []eq.Query) (*coord.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	opts := e.base
	opts.Parallelism = e.workers
	return coord.SCCCoordinate(qs, e.inst, opts)
}

// Request is one unit of CoordinateMany work: an independent entangled
// query set to coordinate over the engine's shared instance.
type Request struct {
	// ID is an opaque caller tag echoed in the Response.
	ID string
	// Queries is the entangled query set for this request.
	Queries []eq.Query
	// Opts, when non-nil, replaces the engine's base coordination
	// options for this request (its Parallelism is still managed by the
	// engine).
	Opts *coord.Options
}

// Response pairs a request's outcome with its ID, in request order.
// Result.DBQueries is a delta of the instance's shared counter and so
// includes queries from requests served concurrently; meter whole
// batches with Instance.ResetCounters/QueriesIssued instead.
type Response struct {
	ID     string
	Result *coord.Result
	Err    error
}

// CoordinateMany serves a batch of independent requests concurrently on
// the worker pool, one goroutine per in-flight request over the shared
// instance. Each request runs the sequential per-request path
// (inter-request parallelism already saturates the pool). Responses
// come back in request order. Cancelling ctx stops dispatching; the
// remaining responses carry ctx.Err().
func (e *Engine) CoordinateMany(ctx context.Context, reqs []Request) []Response {
	out := make([]Response, len(reqs))
	workers := e.workers
	if workers > len(reqs) {
		workers = len(reqs)
	}
	if workers <= 1 {
		for i := range reqs {
			out[i] = e.serve(ctx, &reqs[i])
		}
		return out
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i] = e.serve(ctx, &reqs[i])
			}
		}()
	}
	for i := range reqs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}

// serve runs one request sequentially.
func (e *Engine) serve(ctx context.Context, req *Request) Response {
	if err := ctx.Err(); err != nil {
		return Response{ID: req.ID, Err: err}
	}
	opts := e.base
	if req.Opts != nil {
		opts = *req.Opts
	}
	opts.Parallelism = 0
	res, err := coord.SCCCoordinate(req.Queries, e.inst, opts)
	return Response{ID: req.ID, Result: res, Err: err}
}

// BruteForceExists runs the exponential existence oracle with the
// subset enumeration sharded across the worker pool; ctx cancels the
// search between subsets.
func (e *Engine) BruteForceExists(ctx context.Context, qs []eq.Query) (bool, error) {
	return coord.BruteForceExistsCtx(ctx, qs, e.inst, e.workers)
}

// BruteForceMax runs the exponential maximisation oracle with the
// subset enumeration sharded across the worker pool; ctx cancels the
// search between subsets. The returned set size equals the sequential
// oracle's.
func (e *Engine) BruteForceMax(ctx context.Context, qs []eq.Query) (*coord.Result, error) {
	return coord.BruteForceMaxCtx(ctx, qs, e.inst, e.workers)
}
