package engine

import (
	"context"
	"runtime"
	"sync"

	"entangled/internal/coord"
	"entangled/internal/db"
	"entangled/internal/eq"
	"entangled/internal/stream"
)

// Options configures an Engine.
type Options struct {
	// Workers is the size of the worker pool used both for
	// per-component parallelism inside a single request and for
	// draining request batches. Zero means GOMAXPROCS.
	Workers int
	// Coord is the base coordination configuration applied to every
	// request (selector, pruning and safety-check toggles). Its
	// Parallelism field is managed by the engine and ignored.
	Coord coord.Options
}

// Engine runs coordination workloads over one shared store.
type Engine struct {
	store   db.Store
	router  db.Router // non-nil when store routes: requests route per shard
	workers int
	base    coord.Options
}

// New returns an engine over the given store — a *db.Instance, a
// *db.ShardedInstance, a durable persist.Backend, or any other
// db.Store. When the store implements db.Router (sharded stores and
// wrappers over them), the engine routes each request to the single
// shard its query bodies pin, when they pin one, so independent
// requests fan out to disjoint shard locks instead of contending on
// one relation lock.
func New(store db.Store, opts Options) *Engine {
	w := opts.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	e := &Engine{store: store, workers: w, base: opts.Coord}
	if r, ok := store.(db.Router); ok {
		e.router = r
	}
	return e
}

// Workers returns the configured worker-pool size.
func (e *Engine) Workers() int { return e.workers }

// Store returns the shared database store.
func (e *Engine) Store() db.Store { return e.store }

// routed returns the store a request should run against: the single
// shard pinned by the request's query bodies when the engine serves a
// sharded store and the request is routable, the shared store
// otherwise. Routing is the engine's job, not the db layer's: only the
// serving layer sees request boundaries, and the db layer stays
// correct for arbitrary queries without guessing at them.
func (e *Engine) routed(qs []eq.Query) db.Store {
	if e.router != nil {
		if view, ok := e.router.Route(qs); ok {
			return view
		}
	}
	return e.store
}

// Coordinate serves one request, parallelising the SCC algorithm's
// per-component searches across the worker pool. The result is
// identical to a sequential coord.SCCCoordinate run.
func (e *Engine) Coordinate(ctx context.Context, qs []eq.Query) (*coord.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	opts := e.base
	opts.Parallelism = e.workers
	return coord.SCCCoordinate(qs, db.WithContext(ctx, e.routed(qs)), opts)
}

// Request is one unit of CoordinateMany work: an independent entangled
// query set to coordinate over the engine's shared instance.
type Request struct {
	// ID is an opaque caller tag echoed in the Response.
	ID string
	// Queries is the entangled query set for this request.
	Queries []eq.Query
	// Opts, when non-nil, replaces the engine's base coordination
	// options for this request (its Parallelism is still managed by the
	// engine).
	Opts *coord.Options
}

// Response pairs a request's outcome with its ID, in request order.
// Result.DBQueries is exact for the request alone — each run counts on
// a private db.Meter — so the paper's cost metric survives concurrent
// serving; the store's aggregate QueriesIssued still totals the whole
// batch.
type Response struct {
	ID     string
	Result *coord.Result
	Err    error
}

// CoordinateMany serves a batch of independent requests concurrently on
// the worker pool, one goroutine per in-flight request over the shared
// instance. Each request runs the sequential per-request path
// (inter-request parallelism already saturates the pool). Responses
// come back in request order. Cancelling ctx stops dispatching; the
// remaining responses carry ctx.Err().
func (e *Engine) CoordinateMany(ctx context.Context, reqs []Request) []Response {
	out := make([]Response, len(reqs))
	workers := e.workers
	if workers > len(reqs) {
		workers = len(reqs)
	}
	if workers <= 1 {
		for i := range reqs {
			out[i] = e.serve(ctx, &reqs[i])
		}
		return out
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i] = e.serve(ctx, &reqs[i])
			}
		}()
	}
	for i := range reqs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}

// serve runs one request sequentially, against the single shard its
// bodies pin when the store is sharded and the request is routable.
// The store is context-wrapped, so a canceled or expired ctx aborts
// the plan at the next query instead of running it to completion.
func (e *Engine) serve(ctx context.Context, req *Request) Response {
	if err := ctx.Err(); err != nil {
		return Response{ID: req.ID, Err: err}
	}
	opts := e.base
	if req.Opts != nil {
		opts = *req.Opts
	}
	opts.Parallelism = 0
	res, err := coord.SCCCoordinate(req.Queries, db.WithContext(ctx, e.routed(req.Queries)), opts)
	return Response{ID: req.ID, Result: res, Err: err}
}

// NewSession opens a streaming coordination session over the engine's
// shared store: queries join and leave one at a time, and coordination
// state is maintained incrementally (only the condensation components
// whose reachable set an event touches are re-solved; see
// internal/stream). The engine's base coordination options replace
// opts.Coord, so every session coordinates the way the engine's batch
// paths do; callers needing different per-session options use
// stream.New directly. Sessions run against the whole store, not a
// routed shard — a session's queries accumulate over time, so no single
// shard is pinned up front; per-request routing remains a batch-path
// optimisation.
func (e *Engine) NewSession(opts stream.Options) *stream.Session {
	opts.Coord = e.base
	opts.Coord.Parallelism = 0
	return stream.New(e.store, opts)
}

// BruteForceExists runs the exponential existence oracle with the
// subset enumeration sharded across the worker pool; ctx cancels the
// search between subsets.
func (e *Engine) BruteForceExists(ctx context.Context, qs []eq.Query) (bool, error) {
	return coord.BruteForceExistsCtx(ctx, qs, e.store, e.workers)
}

// BruteForceMax runs the exponential maximisation oracle with the
// subset enumeration sharded across the worker pool; ctx cancels the
// search between subsets. The returned set size equals the sequential
// oracle's.
func (e *Engine) BruteForceMax(ctx context.Context, qs []eq.Query) (*coord.Result, error) {
	return coord.BruteForceMaxCtx(ctx, qs, e.store, e.workers)
}
