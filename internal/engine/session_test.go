package engine

import (
	"testing"

	"entangled/internal/coord"
	"entangled/internal/stream"
	"entangled/internal/workload"
)

// TestEngineNewSession: a session opened through the engine coordinates
// over the engine's store with the engine's base options, and its
// quiesced result matches what the engine's batch path computes on the
// same queries.
func TestEngineNewSession(t *testing.T) {
	for _, shards := range []int{1, 4} {
		store := workload.NewStore(shards, 8, 0)
		e := New(store, Options{Workers: 2})
		s := e.NewSession(stream.Options{})
		for i := 0; i < 12; i++ {
			up, err := s.Join(workload.ChainQuery(i%3, i/3, 8))
			if err != nil {
				t.Fatalf("shards=%d join %d: %v", shards, i, err)
			}
			if !up.Admitted {
				t.Fatalf("shards=%d join %d not admitted: %+v", shards, i, up)
			}
		}
		got, err := s.Result()
		if err != nil {
			t.Fatal(err)
		}
		want, err := coord.SCCCoordinate(s.Queries(), store, coord.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if got.Size() != want.Size() || got.Size() != 4 {
			t.Fatalf("shards=%d: session team %v, batch team %v", shards, got, want)
		}
	}
}
