package db

import (
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"

	"entangled/internal/eq"
	"entangled/internal/unify"
)

func flightsInstance() *Instance {
	in := NewInstance()
	f := in.CreateRelation("Flights", "fid", "dest")
	f.Insert("101", "Zurich")
	f.Insert("102", "Paris")
	f.Insert("103", "Zurich")
	f.BuildIndex(1)
	h := in.CreateRelation("Hotels", "hid", "loc")
	h.Insert("h1", "Zurich")
	h.Insert("h2", "Paris")
	return in
}

func TestSolveSingleAtom(t *testing.T) {
	in := flightsInstance()
	b, ok, err := in.Solve([]eq.Atom{eq.NewAtom("Flights", eq.V("x"), eq.C("Zurich"))})
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if b["x"] != "101" && b["x"] != "103" {
		t.Fatalf("x = %v", b["x"])
	}
}

func TestSolveNoMatch(t *testing.T) {
	in := flightsInstance()
	_, ok, err := in.Solve([]eq.Atom{eq.NewAtom("Flights", eq.V("x"), eq.C("Oslo"))})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("no flight to Oslo")
	}
}

func TestSolveJoin(t *testing.T) {
	in := flightsInstance()
	// A flight and a hotel in the same place.
	body := []eq.Atom{
		eq.NewAtom("Flights", eq.V("f"), eq.V("loc")),
		eq.NewAtom("Hotels", eq.V("h"), eq.V("loc")),
	}
	b, ok, err := in.Solve(body)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	// Cross-check the join condition.
	fl, _ := in.Relation("Flights")
	ho, _ := in.Relation("Hotels")
	okF, okH := false, false
	for i := 0; i < fl.Len(); i++ {
		tp := fl.Tuple(i)
		if tp[0] == b["f"] && tp[1] == b["loc"] {
			okF = true
		}
	}
	for i := 0; i < ho.Len(); i++ {
		tp := ho.Tuple(i)
		if tp[0] == b["h"] && tp[1] == b["loc"] {
			okH = true
		}
	}
	if !okF || !okH {
		t.Fatalf("binding %v is not a join answer", b)
	}
}

func TestSolveEmptyBody(t *testing.T) {
	in := flightsInstance()
	b, ok, err := in.Solve(nil)
	if err != nil || !ok {
		t.Fatalf("empty body must be satisfiable: ok=%v err=%v", ok, err)
	}
	if len(b) != 0 {
		t.Fatalf("empty body binds nothing, got %v", b)
	}
}

func TestSolveRepeatedVariable(t *testing.T) {
	in := NewInstance()
	r := in.CreateRelation("P", "a", "b")
	r.Insert("1", "2")
	r.Insert("3", "3")
	b, ok, err := in.Solve([]eq.Atom{eq.NewAtom("P", eq.V("x"), eq.V("x"))})
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if b["x"] != "3" {
		t.Fatalf("x = %v, want 3", b["x"])
	}
}

func TestSolveUnknownRelation(t *testing.T) {
	in := NewInstance()
	if _, _, err := in.Solve([]eq.Atom{eq.NewAtom("Nope", eq.V("x"))}); err == nil {
		t.Fatal("unknown relation must error")
	}
}

func TestSolveArityMismatch(t *testing.T) {
	in := flightsInstance()
	if _, _, err := in.Solve([]eq.Atom{eq.NewAtom("Flights", eq.V("x"))}); err == nil {
		t.Fatal("arity mismatch must error")
	}
}

func TestSolveAllLimit(t *testing.T) {
	in := flightsInstance()
	body := []eq.Atom{eq.NewAtom("Flights", eq.V("x"), eq.V("d"))}
	all, err := in.SolveAll(body, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 {
		t.Fatalf("want 3 answers, got %d", len(all))
	}
	two, err := in.SolveAll(body, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(two) != 2 {
		t.Fatalf("limit 2 gave %d", len(two))
	}
}

func TestSolveUnder(t *testing.T) {
	in := flightsInstance()
	s := unify.New()
	if err := s.Bind("dest", "Paris"); err != nil {
		t.Fatal(err)
	}
	b, ok, err := in.SolveUnder([]eq.Atom{eq.NewAtom("Flights", eq.V("x"), eq.V("dest"))}, s)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if b["x"] != "102" {
		t.Fatalf("x = %v", b["x"])
	}
}

func TestQueryCounter(t *testing.T) {
	in := flightsInstance()
	in.ResetCounters()
	_, _, _ = in.Solve(nil)
	_, _ = in.Satisfiable(nil)
	if got := in.QueriesIssued(); got != 2 {
		t.Fatalf("QueriesIssued = %d, want 2", got)
	}
	in.ResetCounters()
	if got := in.QueriesIssued(); got != 0 {
		t.Fatalf("after reset: %d", got)
	}
}

func TestContains(t *testing.T) {
	in := flightsInstance()
	if !in.Contains(eq.NewAtom("Flights", eq.C("101"), eq.C("Zurich"))) {
		t.Fatal("tuple should be present")
	}
	if in.Contains(eq.NewAtom("Flights", eq.C("101"), eq.C("Paris"))) {
		t.Fatal("tuple should be absent")
	}
	if in.Contains(eq.NewAtom("Flights", eq.V("x"), eq.C("Paris"))) {
		t.Fatal("non-ground atom is not contained")
	}
	if in.Contains(eq.NewAtom("Nope", eq.C("1"))) {
		t.Fatal("unknown relation is not contained")
	}
}

func TestDistinct(t *testing.T) {
	in := flightsInstance()
	f, _ := in.Relation("Flights")
	d := f.Distinct([]int{1})
	if len(d) != 2 {
		t.Fatalf("distinct destinations = %v", d)
	}
}

func TestProject(t *testing.T) {
	in := flightsInstance()
	rows, err := in.Project("Flights", []int{1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("want 2 distinct destinations, got %v", rows)
	}
	rows, err = in.Project("Flights", []int{0}, map[int]eq.Value{1: "Zurich"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("want flights 101 and 103, got %v", rows)
	}
	if _, err := in.Project("Nope", []int{0}, nil); err == nil {
		t.Fatal("unknown relation must error")
	}
}

func TestSelectOne(t *testing.T) {
	in := flightsInstance()
	tp, ok, err := in.SelectOne("Flights", map[int]eq.Value{1: "Paris"})
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if tp[0] != "102" {
		t.Fatalf("tuple = %v", tp)
	}
	_, ok, err = in.SelectOne("Flights", map[int]eq.Value{1: "Oslo"})
	if err != nil || ok {
		t.Fatal("no Oslo flight")
	}
}

func TestInsertArityPanics(t *testing.T) {
	in := NewInstance()
	r := in.CreateRelation("R", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("bad arity insert must panic")
		}
	}()
	r.Insert("only-one")
}

func TestDomain(t *testing.T) {
	in := flightsInstance()
	dom := in.Domain()
	want := map[eq.Value]bool{"101": true, "Zurich": true, "Paris": true, "102": true, "103": true, "h1": true, "h2": true}
	if len(dom) != len(want) {
		t.Fatalf("domain = %v", dom)
	}
	for _, v := range dom {
		if !want[v] {
			t.Fatalf("unexpected domain value %v", v)
		}
	}
}

// naiveSolveAll enumerates all answers by plain nested loops, used as
// the oracle for the property test.
func naiveSolveAll(in *Instance, body []eq.Atom) []Binding {
	var results []Binding
	var rec func(i int, bound Binding)
	rec = func(i int, bound Binding) {
		if i == len(body) {
			cp := Binding{}
			for k, v := range bound {
				cp[k] = v
			}
			results = append(results, cp)
			return
		}
		a := body[i]
		r, ok := in.Relation(a.Rel)
		if !ok {
			return
		}
		for ti := 0; ti < r.Len(); ti++ {
			tp := r.Tuple(ti)
			tmp := Binding{}
			for k, v := range bound {
				tmp[k] = v
			}
			match := true
			for j, arg := range a.Args {
				if !arg.IsVar() {
					if arg.Const() != tp[j] {
						match = false
						break
					}
					continue
				}
				if v, ok := tmp[arg.Name]; ok {
					if v != tp[j] {
						match = false
						break
					}
					continue
				}
				tmp[arg.Name] = tp[j]
			}
			if match {
				rec(i+1, tmp)
			}
		}
	}
	rec(0, Binding{})
	return results
}

// Property: the indexed backtracking evaluator agrees with the naive
// nested-loop evaluator on answer sets, over random small instances and
// random conjunctive bodies.
func TestQuickEvalMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func() bool {
		in := NewInstance()
		r := in.CreateRelation("A", "c0", "c1")
		for i := 0; i < 1+rng.Intn(8); i++ {
			r.Insert(eq.Value(strconv.Itoa(rng.Intn(4))), eq.Value(strconv.Itoa(rng.Intn(4))))
		}
		if rng.Intn(2) == 0 {
			r.BuildIndex(rng.Intn(2))
		}
		s := in.CreateRelation("B", "c0")
		for i := 0; i < 1+rng.Intn(4); i++ {
			s.Insert(eq.Value(strconv.Itoa(rng.Intn(4))))
		}
		var body []eq.Atom
		nAtoms := 1 + rng.Intn(3)
		for i := 0; i < nAtoms; i++ {
			term := func() eq.Term {
				if rng.Intn(2) == 0 {
					return eq.V(string(rune('x' + rng.Intn(3))))
				}
				return eq.C(eq.Value(strconv.Itoa(rng.Intn(4))))
			}
			if rng.Intn(2) == 0 {
				body = append(body, eq.NewAtom("A", term(), term()))
			} else {
				body = append(body, eq.NewAtom("B", term()))
			}
		}
		got, err := in.SolveAll(body, 0)
		if err != nil {
			return false
		}
		want := naiveSolveAll(in, body)
		return sameBindingSet(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func sameBindingSet(a, b []Binding) bool {
	key := func(x Binding) string {
		// Deterministic rendering independent of map order.
		names := []string{"x", "y", "z"}
		out := ""
		for _, n := range names {
			if v, ok := x[n]; ok {
				out += n + "=" + string(v) + ";"
			}
		}
		return out
	}
	am := map[string]int{}
	for _, x := range a {
		am[key(x)]++
	}
	bm := map[string]int{}
	for _, x := range b {
		bm[key(x)]++
	}
	if len(am) != len(bm) {
		return false
	}
	for k := range am {
		// The two evaluators may enumerate duplicates differently when a
		// binding arises from different tuples; compare as sets.
		if bm[k] == 0 {
			return false
		}
	}
	return true
}

func TestUseIndexesOffSameAnswers(t *testing.T) {
	in := flightsInstance()
	body := []eq.Atom{eq.NewAtom("Flights", eq.V("x"), eq.C("Zurich"))}
	withIdx, err := in.SolveAll(body, 0)
	if err != nil {
		t.Fatal(err)
	}
	in.UseIndexes = false
	withoutIdx, err := in.SolveAll(body, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(withIdx) != len(withoutIdx) {
		t.Fatalf("index on/off disagree: %d vs %d", len(withIdx), len(withoutIdx))
	}
}
