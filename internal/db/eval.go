package db

import (
	"fmt"
	"sort"

	"entangled/internal/eq"
	"entangled/internal/unify"
)

// Binding maps variable names to database values; it is the result of
// grounding a conjunctive query.
type Binding map[string]eq.Value

// Solve answers the conjunctive query given by body under choose-1
// semantics: it returns one assignment of the body's variables to domain
// values such that every grounded atom is in the instance, or ok=false
// if none exists. An empty body is vacuously satisfiable.
func (in *Instance) Solve(body []eq.Atom) (Binding, bool, error) {
	res, err := in.solve(body, 1)
	if err != nil {
		return nil, false, err
	}
	if len(res) == 0 {
		return nil, false, nil
	}
	return res[0], true, nil
}

// SolveAll returns up to limit assignments satisfying the body (limit <=
// 0 means no limit). Each assignment grounds every variable of the body.
func (in *Instance) SolveAll(body []eq.Atom, limit int) ([]Binding, error) {
	return in.solve(body, limit)
}

// Satisfiable reports whether the body has at least one answer.
func (in *Instance) Satisfiable(body []eq.Atom) (bool, error) {
	_, ok, err := in.Solve(body)
	return ok, err
}

// SolveUnder answers the body under a pre-existing substitution (the MGU
// accumulated by a coordination algorithm): the atoms are resolved under
// s before evaluation, and the returned binding covers the resolved
// variables.
func (in *Instance) SolveUnder(body []eq.Atom, s *unify.Subst) (Binding, bool, error) {
	return in.Solve(s.ApplyAll(body))
}

func (in *Instance) solve(body []eq.Atom, limit int) ([]Binding, error) {
	in.countQuery()
	rels, err := in.relsFor(body)
	if err != nil {
		return nil, err
	}
	defer readLockAll(rels)()
	e := &evaluator{useIndexes: in.UseIndexes, rels: viewsOf(rels), body: body, limit: limit, bound: Binding{}}
	e.run()
	return e.results, nil
}

// viewsOf wraps a plain instance's relation snapshot as single-part
// views for the evaluator. The caller must already hold the read locks
// (sizes are read directly from the tuple slices).
func viewsOf(rels map[string]*Relation) map[string]relView {
	out := make(map[string]relView, len(rels))
	for n, r := range rels {
		out[n] = relView{parts: []*Relation{r}, key: -1, size: len(r.tuples)}
	}
	return out
}

// relsFor resolves and validates every relation the body mentions,
// returning a name -> relation snapshot so the evaluator never touches
// the registry map mid-run.
func (in *Instance) relsFor(body []eq.Atom) (map[string]*Relation, error) {
	in.mu.RLock()
	defer in.mu.RUnlock()
	rels := make(map[string]*Relation, len(body))
	for _, a := range body {
		r, ok := in.rels[a.Rel]
		if !ok {
			return nil, fmt.Errorf("db: unknown relation %s", a.Rel)
		}
		if r.Arity() != len(a.Args) {
			return nil, fmt.Errorf("db: atom %s has arity %d, relation has %d", a, len(a.Args), r.Arity())
		}
		rels[a.Rel] = r
	}
	return rels, nil
}

// readLockAll read-locks every relation in the snapshot for the duration
// of an evaluation (in sorted name order, so lock acquisition is
// deterministic) and returns the matching unlock function. Holding the
// read locks across the whole backtracking join lets the evaluator access
// tuples and indexes directly while concurrent readers proceed and
// writers wait.
func readLockAll(rels map[string]*Relation) func() {
	names := make([]string, 0, len(rels))
	for n := range rels {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		rels[n].mu.RLock()
	}
	return func() {
		for _, n := range names {
			rels[n].mu.RUnlock()
		}
	}
}

// relView is the data the evaluator joins over for one relation name:
// the shard parts holding its tuples (exactly one for a plain Instance,
// K for a ShardedInstance) plus the hash column used to route a bound
// lookup to the single part that can hold matches (-1 when unsharded).
// size is the tuple count across the parts the caller read-locked; the
// join-order heuristic uses it as the relation's cardinality.
type relView struct {
	parts []*Relation
	key   int
	size  int
}

// evaluator performs a backtracking join over the body atoms. At every
// step it picks the not-yet-joined atom with the most bound arguments
// (a greedy selectivity heuristic) and iterates its matching tuples,
// using a hash index on one bound column when available. When a
// relation is sharded and the atom binds the hash column, only the
// owning part is probed; the caller guarantees that every part the
// evaluator can reach is read-locked for the whole run.
type evaluator struct {
	useIndexes bool
	rels       map[string]relView // read-locked snapshot from the caller
	body       []eq.Atom
	limit      int
	bound      Binding
	used       []bool
	results    []Binding
	// yield, when set, switches the evaluator to streaming mode: every
	// answer goes to the callback (which may stop the run) and nothing
	// is materialised.
	yield   func(Binding) bool
	stopped bool
}

func (e *evaluator) run() {
	e.used = make([]bool, len(e.body))
	e.step(0)
}

func (e *evaluator) done() bool {
	if e.stopped {
		return true
	}
	return e.yield == nil && e.limit > 0 && len(e.results) >= e.limit
}

func (e *evaluator) step(depth int) {
	if e.done() {
		return
	}
	if depth == len(e.body) {
		if e.yield != nil {
			if !e.yield(e.bound) {
				e.stopped = true
			}
			return
		}
		out := make(Binding, len(e.bound))
		for k, v := range e.bound {
			out[k] = v
		}
		e.results = append(e.results, out)
		return
	}
	ai := e.pickAtom()
	e.used[ai] = true
	defer func() { e.used[ai] = false }()

	a := e.body[ai]
	for _, rel := range e.partsFor(e.rels[a.Rel], a) {
		rows := e.candidateRows(rel, a)
		for _, row := range rows {
			t := rel.tuples[row]
			newVars := e.match(a, t)
			if newVars == nil {
				continue
			}
			e.step(depth + 1)
			for _, v := range newVars {
				delete(e.bound, v)
			}
			if e.done() {
				return
			}
		}
	}
}

// partsFor narrows a sharded relation to the single part owning the
// atom's hash-column value when that value is already bound (the tuple
// placement invariant: a tuple lives on the shard its hash column
// selects); otherwise every part must be probed.
func (e *evaluator) partsFor(rv relView, a eq.Atom) []*Relation {
	if rv.key < 0 || len(rv.parts) == 1 || rv.key >= len(a.Args) {
		return rv.parts
	}
	if v, ok := e.termValue(a.Args[rv.key]); ok {
		i := shardIndex(v, len(rv.parts))
		return rv.parts[i : i+1]
	}
	return rv.parts
}

// pickAtom selects the unused atom with the most arguments already bound
// (constants count as bound).
func (e *evaluator) pickAtom() int {
	best, bestScore := -1, -1
	for i, a := range e.body {
		if e.used[i] {
			continue
		}
		score := 0
		for _, t := range a.Args {
			if !t.IsVar() {
				score++
			} else if _, ok := e.bound[t.Name]; ok {
				score++
			}
		}
		// Prefer more-bound atoms, break ties toward smaller relations.
		if score > bestScore || (score == bestScore && e.rels[a.Rel].size < e.rels[e.body[best].Rel].size) {
			best, bestScore = i, score
		}
	}
	return best
}

// candidateRows returns the rows of rel worth probing for atom a: if a
// column of a is bound and indexed, only the matching rows; otherwise all
// rows.
func (e *evaluator) candidateRows(rel *Relation, a eq.Atom) []int {
	if e.useIndexes {
		for col, t := range a.Args {
			v, ok := e.termValue(t)
			if !ok {
				continue
			}
			if idx, has := rel.indexes[col]; has {
				return idx[v]
			}
		}
	}
	rows := make([]int, len(rel.tuples))
	for i := range rows {
		rows[i] = i
	}
	return rows
}

func (e *evaluator) termValue(t eq.Term) (eq.Value, bool) {
	if !t.IsVar() {
		return t.Const(), true
	}
	v, ok := e.bound[t.Name]
	return v, ok
}

// match tests tuple t against atom a under the current bindings. On
// success it extends e.bound and returns the list of newly bound
// variables (possibly empty but non-nil); on mismatch it returns nil and
// leaves e.bound unchanged.
func (e *evaluator) match(a eq.Atom, t Tuple) []string {
	newVars := []string{}
	for i, arg := range a.Args {
		if !arg.IsVar() {
			if arg.Const() != t[i] {
				e.unbind(newVars)
				return nil
			}
			continue
		}
		if v, ok := e.bound[arg.Name]; ok {
			if v != t[i] {
				e.unbind(newVars)
				return nil
			}
			continue
		}
		e.bound[arg.Name] = t[i]
		newVars = append(newVars, arg.Name)
	}
	return newVars
}

func (e *evaluator) unbind(vars []string) {
	for _, v := range vars {
		delete(e.bound, v)
	}
}
