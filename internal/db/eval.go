package db

import (
	"fmt"
	"sort"

	"entangled/internal/eq"
	"entangled/internal/unify"
)

// Binding maps variable names to database values; it is the result of
// grounding a conjunctive query.
type Binding map[string]eq.Value

// Solve answers the conjunctive query given by body under choose-1
// semantics: it returns one assignment of the body's variables to domain
// values such that every grounded atom is in the instance, or ok=false
// if none exists. An empty body is vacuously satisfiable.
func (in *Instance) Solve(body []eq.Atom) (Binding, bool, error) {
	res, err := in.solve(body, 1)
	if err != nil {
		return nil, false, err
	}
	if len(res) == 0 {
		return nil, false, nil
	}
	return res[0], true, nil
}

// SolveAll returns up to limit assignments satisfying the body (limit <=
// 0 means no limit). Each assignment grounds every variable of the body.
func (in *Instance) SolveAll(body []eq.Atom, limit int) ([]Binding, error) {
	return in.solve(body, limit)
}

// Satisfiable reports whether the body has at least one answer. On the
// compiled path it runs the plan in existence mode: no binding is
// materialised.
func (in *Instance) Satisfiable(body []eq.Atom) (bool, error) {
	in.countQuery()
	if in.DisableCompiledPlans {
		res, err := in.legacySolve(body, 1)
		return len(res) > 0, err
	}
	p, err := in.planFor(body, nil)
	if err != nil {
		return false, err
	}
	return p.satisfiable(body, in.UseIndexes), nil
}

// SolveUnder answers the body under a pre-existing substitution (the MGU
// accumulated by a coordination algorithm): the atoms are resolved under
// s before evaluation, and the returned binding covers the resolved
// variables. The compiled path resolves terms at bind time instead of
// materialising a substituted copy of the body.
func (in *Instance) SolveUnder(body []eq.Atom, s *unify.Subst) (Binding, bool, error) {
	in.countQuery()
	if in.DisableCompiledPlans {
		res, err := in.legacySolve(s.ApplyAll(body), 1)
		return first(res, err)
	}
	p, err := in.planFor(body, s)
	if err != nil {
		return nil, false, err
	}
	return first(p.solve(body, s, 1, in.UseIndexes), nil)
}

// first adapts a result list to choose-1 semantics.
func first(res []Binding, err error) (Binding, bool, error) {
	if err != nil || len(res) == 0 {
		return nil, false, err
	}
	return res[0], true, nil
}

// solve answers one conjunctive query: compile (or fetch) the body
// shape's plan and run it over a slot frame. The seed backtracking
// evaluator below remains as the DisableCompiledPlans path and as the
// oracle the equivalence property tests compare against.
func (in *Instance) solve(body []eq.Atom, limit int) ([]Binding, error) {
	in.countQuery()
	if in.DisableCompiledPlans {
		return in.legacySolve(body, limit)
	}
	p, err := in.planFor(body, nil)
	if err != nil {
		return nil, err
	}
	return p.solve(body, nil, limit, in.UseIndexes), nil
}

// legacySolve is the seed evaluation path: per-call join ordering over a
// name -> value binding map.
func (in *Instance) legacySolve(body []eq.Atom, limit int) ([]Binding, error) {
	rels, err := in.relsFor(body)
	if err != nil {
		return nil, err
	}
	defer readLockAll(rels)()
	e := &evaluator{useIndexes: in.UseIndexes, rels: viewsOf(rels), body: body, limit: limit, bound: Binding{}}
	e.run()
	return e.results, nil
}

// viewsOf wraps a plain instance's relation snapshot as single-part
// views for the evaluator. The caller must already hold the read locks
// (sizes are read directly from the tuple slices).
func viewsOf(rels map[string]*Relation) map[string]relView {
	out := make(map[string]relView, len(rels))
	for n, r := range rels {
		out[n] = relView{parts: []*Relation{r}, key: -1, size: len(r.tuples)}
	}
	return out
}

// relsFor resolves and validates every relation the body mentions,
// returning a name -> relation snapshot so the evaluator never touches
// the registry map mid-run.
func (in *Instance) relsFor(body []eq.Atom) (map[string]*Relation, error) {
	in.mu.RLock()
	defer in.mu.RUnlock()
	rels := make(map[string]*Relation, len(body))
	for _, a := range body {
		r, ok := in.rels[a.Rel]
		if !ok {
			return nil, fmt.Errorf("db: unknown relation %s", a.Rel)
		}
		if r.Arity() != len(a.Args) {
			return nil, fmt.Errorf("db: atom %s has arity %d, relation has %d", a, len(a.Args), r.Arity())
		}
		rels[a.Rel] = r
	}
	return rels, nil
}

// readLockAll read-locks every relation in the snapshot for the duration
// of an evaluation (in sorted name order, so lock acquisition is
// deterministic) and returns the matching unlock function. Holding the
// read locks across the whole backtracking join lets the evaluator access
// tuples and indexes directly while concurrent readers proceed and
// writers wait.
func readLockAll(rels map[string]*Relation) func() {
	names := make([]string, 0, len(rels))
	for n := range rels {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		rels[n].mu.RLock()
	}
	return func() {
		for _, n := range names {
			rels[n].mu.RUnlock()
		}
	}
}

// relView is the data the evaluator joins over for one relation name:
// the shard parts holding its tuples (exactly one for a plain Instance,
// K for a ShardedInstance) plus the hash column used to route a bound
// lookup to the single part that can hold matches (-1 when unsharded).
// size is the tuple count across the parts the caller read-locked; the
// join-order heuristic uses it as the relation's cardinality.
type relView struct {
	parts []*Relation
	key   int
	size  int
}

// evaluator performs a backtracking join over the body atoms. At every
// step it picks the not-yet-joined atom with the most bound arguments
// (a greedy selectivity heuristic) and iterates its matching tuples,
// using a hash index on one bound column when available. When a
// relation is sharded and the atom binds the hash column, only the
// owning part is probed; the caller guarantees that every part the
// evaluator can reach is read-locked for the whole run.
//
// This is the seed evaluation strategy. Production queries run through
// compiled plans (plan.go/exec.go) instead; the evaluator remains as
// the DisableCompiledPlans path and as the independently-written oracle
// for the equivalence property tests.
type evaluator struct {
	useIndexes bool
	rels       map[string]relView // read-locked snapshot from the caller
	body       []eq.Atom
	limit      int
	bound      Binding
	used       []bool
	results    []Binding
	// scratch holds one newly-bound-variables buffer per depth, reused
	// across sibling tuples so the scan path does not allocate.
	scratch [][]string
	// yield, when set, switches the evaluator to streaming mode: every
	// answer goes to the callback (which may stop the run) and nothing
	// is materialised.
	yield   func(Binding) bool
	stopped bool
}

func (e *evaluator) run() {
	e.used = make([]bool, len(e.body))
	e.scratch = make([][]string, len(e.body))
	e.step(0)
}

func (e *evaluator) done() bool {
	if e.stopped {
		return true
	}
	return e.yield == nil && e.limit > 0 && len(e.results) >= e.limit
}

func (e *evaluator) step(depth int) {
	if e.done() {
		return
	}
	if depth == len(e.body) {
		if e.yield != nil {
			if !e.yield(e.bound) {
				e.stopped = true
			}
			return
		}
		out := make(Binding, len(e.bound))
		for k, v := range e.bound {
			out[k] = v
		}
		e.results = append(e.results, out)
		return
	}
	ai := e.pickAtom()
	e.used[ai] = true
	defer func() { e.used[ai] = false }()

	a := e.body[ai]
	for _, rel := range e.partsFor(e.rels[a.Rel], a) {
		if rows, probed := e.probeRows(rel, a); probed {
			for _, row := range rows {
				if e.tryTuple(a, rel.tuples[row], depth) {
					return
				}
			}
		} else {
			// No usable index: iterate the tuples in place instead of
			// materialising an all-rows candidate list per search node.
			for ti := range rel.tuples {
				if e.tryTuple(a, rel.tuples[ti], depth) {
					return
				}
			}
		}
	}
}

// tryTuple matches one tuple, recurses on success, and undoes the
// bindings; it reports whether the walk should stop.
func (e *evaluator) tryTuple(a eq.Atom, t Tuple, depth int) bool {
	newVars, ok := e.match(a, t, depth)
	if !ok {
		return false
	}
	e.step(depth + 1)
	for _, v := range newVars {
		delete(e.bound, v)
	}
	return e.done()
}

// partsFor narrows a sharded relation to the single part owning the
// atom's hash-column value when that value is already bound (the tuple
// placement invariant: a tuple lives on the shard its hash column
// selects); otherwise every part must be probed.
func (e *evaluator) partsFor(rv relView, a eq.Atom) []*Relation {
	if rv.key < 0 || len(rv.parts) == 1 || rv.key >= len(a.Args) {
		return rv.parts
	}
	if v, ok := e.termValue(a.Args[rv.key]); ok {
		i := shardIndex(v, len(rv.parts))
		return rv.parts[i : i+1]
	}
	return rv.parts
}

// pickAtom selects the unused atom with the most arguments already bound
// (constants count as bound).
func (e *evaluator) pickAtom() int {
	best, bestScore := -1, -1
	for i, a := range e.body {
		if e.used[i] {
			continue
		}
		score := 0
		for _, t := range a.Args {
			if !t.IsVar() {
				score++
			} else if _, ok := e.bound[t.Name]; ok {
				score++
			}
		}
		// Prefer more-bound atoms, break ties toward smaller relations.
		if score > bestScore || (score == bestScore && e.rels[a.Rel].size < e.rels[e.body[best].Rel].size) {
			best, bestScore = i, score
		}
	}
	return best
}

// probeRows returns the index rows worth probing for atom a when a
// bound, indexed column exists; probed is false when the caller must
// scan the relation instead.
func (e *evaluator) probeRows(rel *Relation, a eq.Atom) (rows []int, probed bool) {
	if !e.useIndexes {
		return nil, false
	}
	for col, t := range a.Args {
		v, ok := e.termValue(t)
		if !ok {
			continue
		}
		if idx, has := rel.indexes[col]; has {
			return idx[v], true
		}
	}
	return nil, false
}

func (e *evaluator) termValue(t eq.Term) (eq.Value, bool) {
	if !t.IsVar() {
		return t.Const(), true
	}
	v, ok := e.bound[t.Name]
	return v, ok
}

// match tests tuple t against atom a under the current bindings. On
// success it extends e.bound and returns the list of newly bound
// variables in the depth's reused scratch buffer; on mismatch it
// reports ok=false and leaves e.bound unchanged.
func (e *evaluator) match(a eq.Atom, t Tuple, depth int) (newVars []string, ok bool) {
	newVars = e.scratch[depth][:0]
	for i, arg := range a.Args {
		if !arg.IsVar() {
			if arg.Const() != t[i] {
				e.unbind(newVars)
				return nil, false
			}
			continue
		}
		if v, bound := e.bound[arg.Name]; bound {
			if v != t[i] {
				e.unbind(newVars)
				return nil, false
			}
			continue
		}
		e.bound[arg.Name] = t[i]
		newVars = append(newVars, arg.Name)
	}
	e.scratch[depth] = newVars
	return newVars, true
}

func (e *evaluator) unbind(vars []string) {
	for _, v := range vars {
		delete(e.bound, v)
	}
}
