package db

import (
	"context"

	"entangled/internal/eq"
	"entangled/internal/unify"
)

// WithContext wraps a store so every counted query first checks the
// context: once it is canceled or past its deadline, each query fails
// with ctx.Err() instead of touching the store. Coordination
// algorithms issue many queries per plan, so this is what lets a
// server deadline abort a plan mid-flight — a stalled store call still
// has to return on its own, but no further calls are issued after it.
//
// A context that can never be canceled (Background, TODO) returns the
// store unwrapped.
func WithContext(ctx context.Context, s Store) Store {
	if ctx == nil || ctx.Done() == nil {
		return s
	}
	return &ctxStore{ctx: ctx, inner: s}
}

type ctxStore struct {
	ctx   context.Context
	inner Store
}

var _ Store = (*ctxStore)(nil)

func (c *ctxStore) Solve(body []eq.Atom) (Binding, bool, error) {
	if err := c.ctx.Err(); err != nil {
		return nil, false, err
	}
	return c.inner.Solve(body)
}

func (c *ctxStore) SolveAll(body []eq.Atom, limit int) ([]Binding, error) {
	if err := c.ctx.Err(); err != nil {
		return nil, err
	}
	return c.inner.SolveAll(body, limit)
}

func (c *ctxStore) Satisfiable(body []eq.Atom) (bool, error) {
	if err := c.ctx.Err(); err != nil {
		return false, err
	}
	return c.inner.Satisfiable(body)
}

func (c *ctxStore) SolveUnder(body []eq.Atom, s *unify.Subst) (Binding, bool, error) {
	if err := c.ctx.Err(); err != nil {
		return nil, false, err
	}
	return c.inner.SolveUnder(body, s)
}

func (c *ctxStore) Contains(a eq.Atom) bool { return c.inner.Contains(a) }
func (c *ctxStore) Domain() []eq.Value      { return c.inner.Domain() }
func (c *ctxStore) QueriesIssued() int64    { return c.inner.QueriesIssued() }
func (c *ctxStore) ResetCounters()          { c.inner.ResetCounters() }
