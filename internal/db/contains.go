package db

import "entangled/internal/eq"

// Contains reports whether the ground atom a denotes a tuple present in
// the instance. Unlike Solve it does not increment the query counter; it
// exists for verifiers and tests. Atoms over unknown relations or with
// variables are simply not contained.
//
// Membership runs through the compiled-plan path in existence mode (no
// binding is materialised), so verifier sweeps share the hot plans of
// the queries they check.
func (in *Instance) Contains(a eq.Atom) bool {
	for _, t := range a.Args {
		if t.IsVar() {
			return false
		}
	}
	if in.DisableCompiledPlans {
		return in.legacyContains(a)
	}
	body := [1]eq.Atom{a}
	p, err := in.planFor(body[:], nil)
	if err != nil {
		return false
	}
	// Indexes are always consulted here, matching the seed Contains
	// (UseIndexes only ablates query evaluation, not membership).
	return p.satisfiable(body[:], true)
}

// legacyContains is the seed membership check.
func (in *Instance) legacyContains(a eq.Atom) bool {
	r, ok := in.Relation(a.Rel)
	if !ok || r.Arity() != len(a.Args) {
		return false
	}
	vals := make([]eq.Value, len(a.Args))
	for i, t := range a.Args {
		vals[i] = t.Const()
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	// Use an index when one exists.
	for col, idx := range r.indexes {
		rows := idx[vals[col]]
		for _, row := range rows {
			if tupleEqual(r.tuples[row], vals) {
				return true
			}
		}
		return false
	}
	for _, t := range r.tuples {
		if tupleEqual(t, vals) {
			return true
		}
	}
	return false
}

func tupleEqual(t Tuple, vals []eq.Value) bool {
	for i := range t {
		if t[i] != vals[i] {
			return false
		}
	}
	return true
}
