// Package db implements the in-memory relational database substrate.
//
// The paper's prototypes issue conjunctive queries to MySQL through
// JDBC; the algorithms treat the database purely as an oracle that
// answers conjunctive (select-project-join) queries under choose-1
// semantics and that can enumerate all answers. This package provides
// that oracle: named relations with hash indexes, a backtracking join
// evaluator, and counters of issued queries so that experiments report
// "number of database queries" exactly as the paper does.
//
// # Stores
//
// The Store interface is the read surface the coordination algorithms
// (internal/coord, internal/engine) evaluate against. Three
// implementations:
//
//   - Instance: one node — a registry of RWMutex-guarded relations,
//     safe for many concurrent readers with serialised writers.
//   - ShardedInstance: K Instances with every relation's tuples
//     hash-partitioned on a designated column. Same answers as an
//     Instance holding the same tuples, but a query read-locks only the
//     shard parts it can reach, so writer/reader contention drops by
//     roughly the shard count on key-routed traffic.
//   - Meter: a counting view over either, used for per-request query
//     metering (below).
//
// # Sharding contract
//
// Tuple placement and lookup routing share one hash (shardIndex): a
// tuple of relation R lives on shard hash(t[R.hashCol]) mod K. The
// cross-shard evaluator exploits the invariant — an atom whose hash
// column is bound probes one part; anything else scatter-gathers over
// all parts — so every conjunctive query is answered exactly as on an
// unsharded instance: same satisfiability, same answer set. Only the
// enumeration order of answers (hence which witness a choose-1 Solve
// picks) may differ. ShardedInstance.Route additionally offers a
// single-shard view for query sets whose body atoms all pin one shard;
// the engine uses it as a fast path.
//
// # Compiled plans
//
// Queries execute through compiled plans (plan.go, exec.go): the join
// strategy for a body shape — atom order, integer slots for variables,
// probe-candidate columns, lock order, shard routing — is derived once
// and cached on the store, and the hot loop runs over a []eq.Value
// frame with no map operations. A shape abstracts constant values and
// variable names, so the coordination algorithms' re-issued bodies
// (thousands of SolveUnder calls over the same shapes) hit the cache;
// SolveUnder resolves its substitution at bind time without
// materialising a rewritten body. Cache entries are validated against
// store and relation versions on every hit, so AddRelation /
// CreateRelation and BuildIndex invalidate stale plans lazily; Insert
// never invalidates (data growth cannot break a plan, only age its
// join-order tie-breaks). The seed backtracking evaluator remains
// behind Instance.DisableCompiledPlans as an ablation path and as the
// oracle for the equivalence property tests: identical answer
// multisets, identical ok, identical query counts.
//
// # Metering contract
//
// Each of Solve, SolveAll, Satisfiable, SolveUnder, Project, SelectOne
// and SolveFunc counts as exactly one conjunctive query; Contains and
// Domain are free (verifier primitives). Compiled plans change nothing
// here: a plan execution is one query however many parts it probes,
// exactly like the seed evaluator. Instance and ShardedInstance
// count into a shared aggregate (QueriesIssued), which concurrent
// requests pollute for one another. Meter wraps any Store with a
// private counter so a single request's cost is exact under concurrent
// serving: the coordination algorithms wrap their store in a fresh
// Meter per run and report its Count as Result.DBQueries.
package db
