package db

import (
	"fmt"
	"strings"

	"entangled/internal/eq"
)

// SolveFunc streams every answer of the conjunctive query to fn without
// materialising the result set; fn returns false to stop early. The
// binding passed to fn is reused between calls — copy it if it must
// outlive the callback. Counts as one database query.
//
// fn runs while the body's relations are read-locked, so it must not
// mutate the instance or re-query it (Insert/BuildIndex/DeleteWhere on
// a body relation self-deadlocks, and even a read can block behind a
// queued writer). Collect during the stream; act after SolveFunc
// returns.
func (in *Instance) SolveFunc(body []eq.Atom, fn func(Binding) bool) error {
	in.countQuery()
	rels, err := in.relsFor(body)
	if err != nil {
		return err
	}
	defer readLockAll(rels)()
	e := &evaluator{useIndexes: in.UseIndexes, rels: viewsOf(rels), body: body, bound: Binding{}, yield: fn}
	e.run()
	return nil
}

// PlanStep describes one join step of an evaluation plan.
type PlanStep struct {
	Atom eq.Atom
	// Access is "index(col)" for an index probe or "scan".
	Access string
	// BoundArgs is how many of the atom's arguments are bound when the
	// step runs (constants plus variables bound by earlier steps).
	BoundArgs int
	// Rows is the relation's size (the scan's worst case).
	Rows int
}

// Explain returns the join order the evaluator would choose for the
// body, without touching the data. It mirrors the greedy most-bound
// heuristic of the executor, so the output is the true plan.
func (in *Instance) Explain(body []eq.Atom) ([]PlanStep, error) {
	rels, err := in.relsFor(body)
	if err != nil {
		return nil, err
	}
	defer readLockAll(rels)()
	used := make([]bool, len(body))
	bound := map[string]bool{}
	var plan []PlanStep
	for range body {
		best, bestScore := -1, -1
		for i, a := range body {
			if used[i] {
				continue
			}
			score := 0
			for _, t := range a.Args {
				if !t.IsVar() || bound[t.Name] {
					score++
				}
			}
			if score > bestScore || (score == bestScore && len(rels[a.Rel].tuples) < len(rels[body[best].Rel].tuples)) {
				best, bestScore = i, score
			}
		}
		a := body[best]
		used[best] = true
		rel := rels[a.Rel]
		access := "scan"
		if in.UseIndexes {
			for col, t := range a.Args {
				if !t.IsVar() || bound[t.Name] {
					if _, has := rel.indexes[col]; has {
						access = fmt.Sprintf("index(%s)", rel.Attrs[col])
						break
					}
				}
			}
		}
		plan = append(plan, PlanStep{Atom: a, Access: access, BoundArgs: bestScore, Rows: len(rel.tuples)})
		for _, t := range a.Args {
			if t.IsVar() {
				bound[t.Name] = true
			}
		}
	}
	return plan, nil
}

// RenderPlan formats an Explain result as indented text.
func RenderPlan(plan []PlanStep) string {
	var sb strings.Builder
	for i, s := range plan {
		fmt.Fprintf(&sb, "%d. %s  [%s, %d bound, %d rows]\n", i+1, s.Atom, s.Access, s.BoundArgs, s.Rows)
	}
	return sb.String()
}
