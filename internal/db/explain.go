package db

import (
	"fmt"
	"strings"

	"entangled/internal/eq"
)

// SolveFunc streams every answer of the conjunctive query to fn without
// materialising the result set; fn returns false to stop early. The
// binding passed to fn is reused between calls — copy it if it must
// outlive the callback. Counts as one database query.
//
// fn runs while the body's relations are read-locked, so it must not
// mutate the instance or re-query it (Insert/BuildIndex/DeleteWhere on
// a body relation self-deadlocks, and even a read can block behind a
// queued writer). Collect during the stream; act after SolveFunc
// returns.
func (in *Instance) SolveFunc(body []eq.Atom, fn func(Binding) bool) error {
	in.countQuery()
	if in.DisableCompiledPlans {
		rels, err := in.relsFor(body)
		if err != nil {
			return err
		}
		defer readLockAll(rels)()
		e := &evaluator{useIndexes: in.UseIndexes, rels: viewsOf(rels), body: body, bound: Binding{}, yield: fn}
		e.run()
		return nil
	}
	p, err := in.planFor(body, nil)
	if err != nil {
		return err
	}
	p.stream(body, in.UseIndexes, fn)
	return nil
}

// PlanStep describes one join step of a compiled evaluation plan.
type PlanStep struct {
	Atom eq.Atom
	// Access is "index(col)" for an index probe or "scan".
	Access string
	// BoundArgs is how many of the atom's arguments are bound when the
	// step runs (constants plus variables bound by earlier steps).
	BoundArgs int
	// Rows is the relation's size (the scan's worst case).
	Rows int
}

// Explain returns the plan the executor runs for the body, without
// touching the data. It is derived from the same compiled plan object
// (shared through the plan cache) that Solve/SolveAll execute, so the
// output is the true plan: the frozen join order, each step's statically
// bound columns, and the index each step would probe right now.
func (in *Instance) Explain(body []eq.Atom) ([]PlanStep, error) {
	p, err := in.planFor(body, nil)
	if err != nil {
		return nil, err
	}
	steps := make([]PlanStep, len(p.steps))
	for i := range p.steps {
		st := &p.steps[i]
		pt := p.rels[st.rel].parts[0]
		pt.mu.RLock()
		access := "scan"
		if in.UseIndexes {
			for _, bc := range st.bound {
				if _, has := pt.indexes[bc.col]; has {
					access = fmt.Sprintf("index(%s)", pt.Attrs[bc.col])
					break
				}
			}
		}
		rows := len(pt.tuples)
		pt.mu.RUnlock()
		steps[i] = PlanStep{Atom: body[st.atom], Access: access, BoundArgs: len(st.bound), Rows: rows}
	}
	return steps, nil
}

// RenderPlan formats an Explain result as indented text.
func RenderPlan(plan []PlanStep) string {
	var sb strings.Builder
	for i, s := range plan {
		fmt.Fprintf(&sb, "%d. %s  [%s, %d bound, %d rows]\n", i+1, s.Atom, s.Access, s.BoundArgs, s.Rows)
	}
	return sb.String()
}
