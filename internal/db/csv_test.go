package db

import (
	"bytes"
	"strings"
	"testing"

	"entangled/internal/eq"
)

func TestLoadCSV(t *testing.T) {
	in := NewInstance()
	rel, err := in.LoadCSV("Flights", strings.NewReader("101,Zurich\n102, Paris \n"))
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 2 || rel.Arity() != 2 {
		t.Fatalf("shape %d x %d", rel.Len(), rel.Arity())
	}
	if rel.Tuple(1)[1] != "Paris" {
		t.Fatalf("whitespace must be trimmed: %q", rel.Tuple(1)[1])
	}
	// All columns are indexed.
	if !in.Contains(eq.NewAtom("Flights", eq.C("101"), eq.C("Zurich"))) {
		t.Fatal("loaded tuple missing")
	}
}

func TestLoadCSVErrors(t *testing.T) {
	in := NewInstance()
	if _, err := in.LoadCSV("E", strings.NewReader("")); err == nil {
		t.Fatal("empty input must fail")
	}
	if _, err := in.LoadCSV("E", strings.NewReader("a,b\nc\n")); err == nil {
		t.Fatal("ragged input must fail")
	}
}

func TestDumpCSVRoundTrip(t *testing.T) {
	in := NewInstance()
	r := in.CreateRelation("R", "a", "b")
	r.Insert("1", "x")
	r.Insert("2", "y")
	var buf bytes.Buffer
	if err := r.DumpCSV(&buf); err != nil {
		t.Fatal(err)
	}
	in2 := NewInstance()
	back, err := in2.LoadCSV("R", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 || back.Tuple(0)[0] != "1" || back.Tuple(1)[1] != "y" {
		t.Fatalf("round trip: %v %v", back.Tuple(0), back.Tuple(1))
	}
}

func TestDeleteWhere(t *testing.T) {
	in := NewInstance()
	r := in.CreateRelation("R", "a", "b")
	r.Insert("1", "x")
	r.Insert("2", "x")
	r.Insert("3", "y")
	r.BuildIndex(1)
	if got := r.DeleteWhere(map[int]eq.Value{1: "x"}); got != 2 {
		t.Fatalf("removed = %d", got)
	}
	if r.Len() != 1 || r.Tuple(0)[0] != "3" {
		t.Fatalf("remaining: %v", r.tuples)
	}
	// Index was rebuilt: Solve through the index sees only survivors.
	b, ok, err := in.Solve([]eq.Atom{eq.NewAtom("R", eq.V("k"), eq.C("y"))})
	if err != nil || !ok || b["k"] != "3" {
		t.Fatalf("post-delete solve: %v %v %v", b, ok, err)
	}
	if _, ok, _ := in.Solve([]eq.Atom{eq.NewAtom("R", eq.V("k"), eq.C("x"))}); ok {
		t.Fatal("deleted tuples must be invisible")
	}
	// Empty filter clears everything.
	if got := r.DeleteWhere(nil); got != 1 {
		t.Fatalf("clear removed %d", got)
	}
	if r.Len() != 0 {
		t.Fatal("relation should be empty")
	}
}
