package db

import (
	"sync/atomic"

	"entangled/internal/eq"
	"entangled/internal/unify"
)

// Store is the read surface the coordination algorithms evaluate
// against: conjunctive-query answering under choose-1 semantics, ground
// membership, the value domain, and an aggregate query counter. Both
// *Instance (one node) and *ShardedInstance (hash-partitioned across K
// instances) implement it, as does *Meter (a per-request counting view
// over either). Implementations must be safe for concurrent use.
type Store interface {
	// Solve answers the conjunctive query under choose-1 semantics:
	// one satisfying assignment, or ok=false. Counts as one query.
	Solve(body []eq.Atom) (Binding, bool, error)
	// SolveAll returns up to limit satisfying assignments (limit <= 0
	// means all). Counts as one query.
	SolveAll(body []eq.Atom, limit int) ([]Binding, error)
	// Satisfiable reports whether the body has at least one answer.
	// Counts as one query.
	Satisfiable(body []eq.Atom) (bool, error)
	// SolveUnder answers the body resolved under a substitution.
	// Counts as one query.
	SolveUnder(body []eq.Atom, s *unify.Subst) (Binding, bool, error)
	// Contains reports whether the ground atom denotes a stored tuple.
	// It is a verifier primitive and does not count as a query.
	Contains(a eq.Atom) bool
	// Domain returns every constant in the store, sorted ascending.
	Domain() []eq.Value
	// QueriesIssued returns the number of conjunctive queries answered
	// since the last ResetCounters.
	QueriesIssued() int64
	// ResetCounters zeroes the query counter.
	ResetCounters()
}

var (
	_ Store = (*Instance)(nil)
	_ Store = (*ShardedInstance)(nil)
	_ Store = (*Meter)(nil)
	_ Store = (*shardView)(nil)
)

// Meter is a per-request counting view over a Store. Every counted
// query method increments the meter's private counter and then
// delegates, so one request's conjunctive-query cost can be read
// exactly (Meter.Count) even while concurrent requests share the
// underlying store — the underlying store's own aggregate counter still
// accumulates across all requests. The coordination algorithms wrap
// their store argument in a fresh Meter per run; Result.DBQueries is
// that meter's final count.
//
// A Meter is safe for concurrent use (the parallel component walk
// issues queries from many goroutines).
type Meter struct {
	store Store
	n     atomic.Int64
}

// NewMeter returns a zeroed counting view over store.
func NewMeter(store Store) *Meter { return &Meter{store: store} }

// Count returns the number of queries issued through this meter.
func (m *Meter) Count() int64 { return m.n.Load() }

// Solve counts one query and delegates.
func (m *Meter) Solve(body []eq.Atom) (Binding, bool, error) {
	m.n.Add(1)
	return m.store.Solve(body)
}

// SolveAll counts one query and delegates.
func (m *Meter) SolveAll(body []eq.Atom, limit int) ([]Binding, error) {
	m.n.Add(1)
	return m.store.SolveAll(body, limit)
}

// Satisfiable counts one query and delegates.
func (m *Meter) Satisfiable(body []eq.Atom) (bool, error) {
	m.n.Add(1)
	return m.store.Satisfiable(body)
}

// SolveUnder counts one query and delegates.
func (m *Meter) SolveUnder(body []eq.Atom, s *unify.Subst) (Binding, bool, error) {
	m.n.Add(1)
	return m.store.SolveUnder(body, s)
}

// Contains delegates without counting (matching Instance.Contains).
func (m *Meter) Contains(a eq.Atom) bool { return m.store.Contains(a) }

// Domain delegates without counting.
func (m *Meter) Domain() []eq.Value { return m.store.Domain() }

// QueriesIssued returns the per-request count — the meter is the
// request's view of the store, not the shared aggregate.
func (m *Meter) QueriesIssued() int64 { return m.n.Load() }

// ResetCounters zeroes the per-request count only; the underlying
// store's aggregate counter is left untouched.
func (m *Meter) ResetCounters() { m.n.Store(0) }
