package db

import (
	"encoding/json"
	"reflect"
	"strconv"
	"testing"

	"entangled/internal/eq"
)

// buildMutations is a small deterministic store build: two relations,
// one indexed, with enough rows to exercise routing on sharded stores.
func buildMutations(rows int) []Mutation {
	ms := []Mutation{
		MCreate("T", 1, "key", "val"),
		MCreate("Likes", 0, "user", "item"),
	}
	for i := 0; i < rows; i++ {
		ms = append(ms, MInsert("T", eq.Value("t"+strconv.Itoa(i)), eq.Value("c"+strconv.Itoa(i%7))))
		ms = append(ms, MInsert("Likes", eq.Value("u"+strconv.Itoa(i%5)), eq.Value("t"+strconv.Itoa(i))))
	}
	ms = append(ms, MIndex("T", 1), MIndex("Likes", 0))
	return ms
}

// probeBodies are the queries the equivalence checks answer on every
// store build.
func probeBodies() [][]eq.Atom {
	return [][]eq.Atom{
		{eq.NewAtom("T", eq.V("x"), eq.C("c3"))},
		{eq.NewAtom("T", eq.V("x"), eq.V("v"))},
		{eq.NewAtom("Likes", eq.C("u2"), eq.V("i")), eq.NewAtom("T", eq.V("i"), eq.V("v"))},
		{eq.NewAtom("T", eq.V("x"), eq.C("missing"))},
	}
}

// answersOf collects every probe's full answer list, order-sensitive.
func answersOf(t *testing.T, s Store) [][]Binding {
	t.Helper()
	var out [][]Binding
	for _, body := range probeBodies() {
		res, err := s.SolveAll(body, 0)
		if err != nil {
			t.Fatalf("SolveAll(%v): %v", body, err)
		}
		out = append(out, res)
	}
	return out
}

func TestApplyMutationsMatchesDirectWrites(t *testing.T) {
	direct := NewInstance()
	tr := direct.CreateRelation("T", "key", "val")
	lr := direct.CreateRelation("Likes", "user", "item")
	for i := 0; i < 40; i++ {
		tr.Insert(eq.Value("t"+strconv.Itoa(i)), eq.Value("c"+strconv.Itoa(i%7)))
		lr.Insert(eq.Value("u"+strconv.Itoa(i%5)), eq.Value("t"+strconv.Itoa(i)))
	}
	tr.BuildIndex(1)
	lr.BuildIndex(0)

	applied := NewInstance()
	if err := ApplyAll(applied, buildMutations(40)); err != nil {
		t.Fatal(err)
	}
	if got, want := answersOf(t, applied), answersOf(t, direct); !reflect.DeepEqual(got, want) {
		t.Fatalf("mutation-built instance answers differ:\n got %v\nwant %v", got, want)
	}
	if got, want := applied.Domain(), direct.Domain(); !reflect.DeepEqual(got, want) {
		t.Fatalf("domains differ: %v vs %v", got, want)
	}
}

func TestApplyMutationsShardedEquivalence(t *testing.T) {
	ms := buildMutations(60)
	plain := NewInstance()
	if err := ApplyAll(plain, ms); err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 2, 8} {
		sh := NewShardedInstance(k)
		if err := ApplyAll(sh, ms); err != nil {
			t.Fatalf("K=%d: %v", k, err)
		}
		for i, body := range probeBodies() {
			want, err := plain.SolveAll(body, 0)
			if err != nil {
				t.Fatal(err)
			}
			got, err := sh.SolveAll(body, 0)
			if err != nil {
				t.Fatalf("K=%d probe %d: %v", k, i, err)
			}
			if len(got) != len(want) {
				t.Fatalf("K=%d probe %d: %d answers, plain has %d", k, i, len(got), len(want))
			}
		}
		if got, want := sh.Domain(), plain.Domain(); !reflect.DeepEqual(got, want) {
			t.Fatalf("K=%d: domains differ", k)
		}
	}
}

// TestDumpMutationsRebuilds checks the snapshot contract: dumping a
// store and replaying the dump into an empty store of the same shape
// reproduces every answer in the same order.
func TestDumpMutationsRebuilds(t *testing.T) {
	for _, k := range []int{0, 1, 2, 8} { // 0 = plain instance
		var src WriteStore
		if k == 0 {
			src = NewInstance()
		} else {
			src = NewShardedInstance(k)
		}
		if err := ApplyAll(src, buildMutations(50)); err != nil {
			t.Fatal(err)
		}
		var dump []Mutation
		if err := src.DumpMutations(func(m Mutation) error {
			// Mutations escape the yield: copy the shared tuple.
			if m.Tuple != nil {
				m.Tuple = append([]eq.Value(nil), m.Tuple...)
			}
			dump = append(dump, m)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		var dst WriteStore
		if k == 0 {
			dst = NewInstance()
		} else {
			dst = NewShardedInstance(k)
		}
		if err := ApplyAll(dst, dump); err != nil {
			t.Fatalf("K=%d: replaying dump: %v", k, err)
		}
		if got, want := answersOf(t, dst), answersOf(t, src); !reflect.DeepEqual(got, want) {
			t.Fatalf("K=%d: rebuilt store answers differ (binding order matters):\n got %v\nwant %v", k, got, want)
		}
		if got, want := dst.Schema(), src.Schema(); !reflect.DeepEqual(got, want) {
			t.Fatalf("K=%d: schemas differ: %v vs %v", k, got, want)
		}
	}
}

func TestApplyMutationErrors(t *testing.T) {
	for _, w := range []WriteStore{NewInstance(), NewShardedInstance(2)} {
		if err := w.Apply(MInsert("nope", "a")); err == nil {
			t.Fatal("insert into unknown relation succeeded")
		}
		if err := w.Apply(MIndex("nope", 0)); err == nil {
			t.Fatal("index on unknown relation succeeded")
		}
		if err := w.Apply(MCreate("R", 0)); err == nil {
			t.Fatal("create with no attributes succeeded")
		}
		if _, sharded := w.(*ShardedInstance); sharded {
			if err := w.Apply(MCreate("R", 5, "a", "b")); err == nil {
				t.Fatal("create with out-of-range hash column succeeded on sharded store")
			}
		}
		if err := w.Apply(MCreate("R", 0, "a", "b")); err != nil {
			t.Fatal(err)
		}
		if err := w.Apply(MInsert("R", "x")); err == nil {
			t.Fatal("arity-mismatched insert succeeded")
		}
		if err := w.Apply(MIndex("R", 9)); err == nil {
			t.Fatal("out-of-range index column succeeded")
		}
		if err := w.Apply(Mutation{Kind: 99, Rel: "R"}); err == nil {
			t.Fatal("unknown mutation kind succeeded")
		}
	}
}

func TestMutationJSONRoundTrip(t *testing.T) {
	for _, m := range buildMutations(3) {
		data, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		var back Mutation
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("decoding %s: %v", data, err)
		}
		// Normalise nil-vs-empty before comparing.
		if back.String() != m.String() || back.Kind != m.Kind {
			t.Fatalf("round trip changed %v into %v", m, back)
		}
	}
	var m Mutation
	if err := json.Unmarshal([]byte(`{"k":"drop","rel":"T"}`), &m); err == nil {
		t.Fatal("unknown kind decoded")
	}
	if err := json.Unmarshal([]byte(`{"k":"insert"}`), &m); err == nil {
		t.Fatal("mutation without relation decoded")
	}
	if _, err := json.Marshal(Mutation{Kind: 42, Rel: "T"}); err == nil {
		t.Fatal("unknown kind encoded")
	}
}

func TestAggregatePlanStats(t *testing.T) {
	in := NewInstance()
	if err := ApplyAll(in, buildMutations(10)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := in.Solve(probeBodies()[0]); err != nil {
		t.Fatal(err)
	}
	st, ok := AggregatePlanStats(in)
	if !ok || st.Misses == 0 {
		t.Fatalf("plain instance stats: ok=%v %+v", ok, st)
	}
	sh := NewShardedInstance(2)
	if err := ApplyAll(sh, buildMutations(10)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sh.Solve(probeBodies()[0]); err != nil {
		t.Fatal(err)
	}
	if st, ok := AggregatePlanStats(sh); !ok || st.Misses == 0 {
		t.Fatalf("sharded stats: ok=%v %+v", ok, st)
	}
	if _, ok := AggregatePlanStats(NewMeter(in)); ok {
		t.Fatal("a meter should expose no plan cache")
	}
}
