package db

import (
	"fmt"

	"entangled/internal/eq"
)

// Project answers a select-distinct-project query against a single
// relation: it returns the distinct combinations of the cols columns
// over the rows whose columns match every (column -> constant) entry of
// where. It counts as one database query; the Consistent Coordination
// Algorithm uses it to compute the option lists V(q) and friend lists.
func (in *Instance) Project(rel string, cols []int, where map[int]eq.Value) ([]Tuple, error) {
	in.countQuery()
	r, ok := in.Relation(rel)
	if !ok {
		return nil, fmt.Errorf("db: unknown relation %s", rel)
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	rows := in.filterRows(r, where)
	seen := map[string]struct{}{}
	var key []byte
	var out []Tuple
	for _, row := range rows {
		t := r.tuples[row]
		match := true
		for c, v := range where {
			if t[c] != v {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		key = appendTupleKey(key[:0], t, cols)
		if _, dup := seen[string(key)]; dup {
			continue
		}
		seen[string(key)] = struct{}{}
		proj := make(Tuple, len(cols))
		for i, c := range cols {
			proj[i] = t[c]
		}
		out = append(out, proj)
	}
	return out, nil
}

// SelectOne returns one row of rel matching where, as a full tuple. It
// counts as one database query.
func (in *Instance) SelectOne(rel string, where map[int]eq.Value) (Tuple, bool, error) {
	in.countQuery()
	r, ok := in.Relation(rel)
	if !ok {
		return nil, false, fmt.Errorf("db: unknown relation %s", rel)
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, row := range in.filterRows(r, where) {
		t := r.tuples[row]
		match := true
		for c, v := range where {
			if t[c] != v {
				match = false
				break
			}
		}
		if match {
			return t, true, nil
		}
	}
	return nil, false, nil
}

// filterRows returns candidate row numbers, using a hash index on one of
// the where-columns when available; the caller re-checks the full
// predicate. The caller must hold r's read lock.
func (in *Instance) filterRows(r *Relation, where map[int]eq.Value) []int {
	if in.UseIndexes {
		for c, v := range where {
			if idx, has := r.indexes[c]; has {
				return idx[v]
			}
		}
	}
	rows := make([]int, len(r.tuples))
	for i := range rows {
		rows[i] = i
	}
	return rows
}
