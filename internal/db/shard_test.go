package db

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"

	"entangled/internal/eq"
)

// fillPair builds the same three-relation contents on a plain instance
// and a sharded one: Emp(id, dept), Dept(dept, city) hash-partitioned
// on dept, and Loc(city) on city.
func fillPair(k, rows int, rng *rand.Rand) (*Instance, *ShardedInstance) {
	inst := NewInstance()
	sh := NewShardedInstance(k)
	emp := inst.CreateRelation("Emp", "id", "dept")
	dept := inst.CreateRelation("Dept", "dept", "city")
	loc := inst.CreateRelation("Loc", "city")
	semp := sh.CreateRelation("Emp", 1, "id", "dept")
	sdept := sh.CreateRelation("Dept", 0, "dept", "city")
	sloc := sh.CreateRelation("Loc", 0, "city")
	for i := 0; i < rows; i++ {
		id := eq.Value(fmt.Sprintf("e%d", i))
		d := eq.Value(fmt.Sprintf("d%d", rng.Intn(rows/2+1)))
		emp.Insert(id, d)
		semp.Insert(id, d)
	}
	for i := 0; i < rows/2+1; i++ {
		d := eq.Value(fmt.Sprintf("d%d", i))
		c := eq.Value(fmt.Sprintf("city%d", i%5))
		dept.Insert(d, c)
		sdept.Insert(d, c)
	}
	for i := 0; i < 5; i++ {
		c := eq.Value(fmt.Sprintf("city%d", i))
		loc.Insert(c)
		sloc.Insert(c)
	}
	emp.BuildIndex(1)
	semp.BuildIndex(1)
	dept.BuildIndex(0)
	sdept.BuildIndex(0)
	return inst, sh
}

// bindingSet canonicalises a list of bindings for set comparison
// (sharding may enumerate answers in a different order).
func bindingSet(bs []Binding) []string {
	out := make([]string, len(bs))
	for i, b := range bs {
		keys := make([]string, 0, len(b))
		for k := range b {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		s := ""
		for _, k := range keys {
			s += k + "=" + string(b[k]) + ";"
		}
		out[i] = s
	}
	sort.Strings(out)
	return out
}

// TestShardedSolveMatchesInstance checks that every query — routed,
// scatter-gather, multi-atom joins, unsatisfiable — has the same answer
// set on a sharded store as on a plain instance with the same tuples.
func TestShardedSolveMatchesInstance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, k := range []int{1, 2, 8} {
		inst, sh := fillPair(k, 40, rng)
		bodies := [][]eq.Atom{
			// hash column constant: routes to one shard
			{eq.NewAtom("Emp", eq.V("x"), eq.C("d3"))},
			// hash column variable: scatter-gather
			{eq.NewAtom("Emp", eq.C("e5"), eq.V("d"))},
			// join crossing relations, hash columns bound transitively
			{eq.NewAtom("Emp", eq.V("x"), eq.V("d")), eq.NewAtom("Dept", eq.V("d"), eq.V("c"))},
			// three-way join ending in an unsharded-looking unary atom
			{eq.NewAtom("Emp", eq.V("x"), eq.V("d")), eq.NewAtom("Dept", eq.V("d"), eq.V("c")), eq.NewAtom("Loc", eq.V("c"))},
			// unsatisfiable
			{eq.NewAtom("Emp", eq.V("x"), eq.C("nosuchdept"))},
			// repeated relation, two different routed constants
			{eq.NewAtom("Dept", eq.C("d1"), eq.V("c")), eq.NewAtom("Dept", eq.C("d2"), eq.V("c2"))},
		}
		for bi, body := range bodies {
			want, err := inst.SolveAll(body, 0)
			if err != nil {
				t.Fatalf("k=%d body %d: plain: %v", k, bi, err)
			}
			got, err := sh.SolveAll(body, 0)
			if err != nil {
				t.Fatalf("k=%d body %d: sharded: %v", k, bi, err)
			}
			if !reflect.DeepEqual(bindingSet(want), bindingSet(got)) {
				t.Fatalf("k=%d body %d: answer sets differ:\nplain   %v\nsharded %v", k, bi, bindingSet(want), bindingSet(got))
			}
			wantSat, _ := inst.Satisfiable(body)
			gotSat, _ := sh.Satisfiable(body)
			if wantSat != gotSat {
				t.Fatalf("k=%d body %d: satisfiable %v != %v", k, bi, wantSat, gotSat)
			}
		}
		if !reflect.DeepEqual(inst.Domain(), sh.Domain()) {
			t.Fatalf("k=%d: domains differ", k)
		}
		ground := eq.NewAtom("Emp", eq.C("e5"), eq.C("nosuchdept"))
		if sh.Contains(ground) != inst.Contains(ground) {
			t.Fatalf("k=%d: Contains mismatch on absent tuple", k)
		}
	}
}

// TestShardedPlacement checks the placement invariant: every tuple
// lives on exactly the shard its hash-column value selects, and the
// shard parts partition the relation.
func TestShardedPlacement(t *testing.T) {
	const k = 4
	sh := NewShardedInstance(k)
	r := sh.CreateRelation("R", 0, "a", "b")
	const n = 100
	for i := 0; i < n; i++ {
		r.Insert(eq.Value(fmt.Sprintf("v%d", i)), eq.Value("x"))
	}
	if r.Len() != n {
		t.Fatalf("total %d tuples, want %d", r.Len(), n)
	}
	for s := 0; s < k; s++ {
		part := r.Part(s)
		for i := 0; i < part.Len(); i++ {
			v := part.Tuple(i)[0]
			if shardIndex(v, k) != s {
				t.Fatalf("tuple %s on shard %d, hashes to %d", v, s, shardIndex(v, k))
			}
		}
	}
}

// TestShardedRoute checks the single-shard routing decision.
func TestShardedRoute(t *testing.T) {
	sh := NewShardedInstance(4)
	sh.CreateRelation("R", 0, "a", "b")
	q := func(body ...eq.Atom) eq.Query { return eq.Query{ID: "q", Body: body} }

	// All constants hash to the shard of "v1": routable.
	one := []eq.Query{q(eq.NewAtom("R", eq.C("v1"), eq.V("x")))}
	view, ok := sh.Route(one)
	if !ok {
		t.Fatal("single-constant request should route")
	}
	if view.(*shardView).shard != sh.shards[shardIndex("v1", 4)] {
		t.Fatal("routed to the wrong shard")
	}

	// Variable at the hash column: not routable.
	if _, ok := sh.Route([]eq.Query{q(eq.NewAtom("R", eq.V("a"), eq.V("x")))}); ok {
		t.Fatal("variable hash column must not route")
	}

	// Two constants on different shards: not routable.
	var v2 eq.Value
	for i := 0; ; i++ {
		v2 = eq.Value(fmt.Sprintf("w%d", i))
		if shardIndex(v2, 4) != shardIndex("v1", 4) {
			break
		}
	}
	split := []eq.Query{q(eq.NewAtom("R", eq.C("v1"), eq.V("x"))), q(eq.NewAtom("R", eq.C(v2), eq.V("y")))}
	if _, ok := sh.Route(split); ok {
		t.Fatal("cross-shard constants must not route")
	}

	// Unknown relation: not routable.
	if _, ok := sh.Route([]eq.Query{q(eq.NewAtom("Nope", eq.C("v1")))}); ok {
		t.Fatal("unknown relation must not route")
	}

	// Empty bodies: nothing to route by.
	if _, ok := sh.Route([]eq.Query{{ID: "empty"}}); ok {
		t.Fatal("bodyless request must not route")
	}
}

// TestShardedRouteViewMatchesFull checks that a routed view answers
// exactly like the full sharded store for routable bodies, and shares
// the parent's domain and counters.
func TestShardedRouteViewMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	_, sh := fillPair(4, 40, rng)
	body := []eq.Atom{eq.NewAtom("Dept", eq.C("d1"), eq.V("c"))}
	view, ok := sh.Route([]eq.Query{{ID: "q", Body: body}})
	if !ok {
		t.Fatal("expected routable")
	}
	want, _ := sh.SolveAll(body, 0)
	got, _ := view.SolveAll(body, 0)
	if !reflect.DeepEqual(bindingSet(want), bindingSet(got)) {
		t.Fatalf("routed answers differ: %v vs %v", bindingSet(want), bindingSet(got))
	}
	if !reflect.DeepEqual(view.Domain(), sh.Domain()) {
		t.Fatal("routed view must expose the whole instance's domain")
	}
	before := sh.QueriesIssued()
	if _, _, err := view.Solve(body); err != nil {
		t.Fatal(err)
	}
	if sh.QueriesIssued() != before+1 {
		t.Fatal("routed queries must land on the parent's aggregate counter")
	}
}

// TestShardedConcurrentReadWrite hammers a sharded store with
// concurrent routed reads, scatter-gather reads and writes; run with
// -race this exercises the per-part locking discipline.
func TestShardedConcurrentReadWrite(t *testing.T) {
	sh := NewShardedInstance(8)
	r := sh.CreateRelation("R", 1, "a", "b")
	for i := 0; i < 200; i++ {
		r.Insert(eq.Value(fmt.Sprintf("a%d", i)), eq.Value(fmt.Sprintf("b%d", i%20)))
	}
	r.BuildIndex(1)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Insert(eq.Value(fmt.Sprintf("w%d-%d", w, i)), eq.Value(fmt.Sprintf("b%d", i%20)))
			}
		}(w)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				// Routed single-shard probe.
				if _, _, err := sh.Solve([]eq.Atom{eq.NewAtom("R", eq.V("x"), eq.C(eq.Value(fmt.Sprintf("b%d", i%20))))}); err != nil {
					t.Error(err)
					return
				}
				// Scatter-gather over all parts.
				if i%17 == 0 {
					if _, _, err := sh.Solve([]eq.Atom{eq.NewAtom("R", eq.C(eq.Value(fmt.Sprintf("a%d", i))), eq.V("y"))}); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if got, want := r.Len(), 200+4*200; got != want {
		t.Fatalf("after concurrent writes: %d tuples, want %d", got, want)
	}
}

// TestMeterCountsExactly checks the per-request meter against the
// documented one-count-per-call contract and its independence from the
// underlying aggregate.
func TestMeterCountsExactly(t *testing.T) {
	inst := NewInstance()
	r := inst.CreateRelation("R", "a")
	r.Insert("x")
	m := NewMeter(inst)
	body := []eq.Atom{eq.NewAtom("R", eq.V("v"))}
	if _, _, err := m.Solve(body); err != nil {
		t.Fatal(err)
	}
	if _, err := m.SolveAll(body, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Satisfiable(body); err != nil {
		t.Fatal(err)
	}
	m.Contains(eq.NewAtom("R", eq.C("x"))) // free
	m.Domain()                             // free
	if got := m.Count(); got != 3 {
		t.Fatalf("meter count %d, want 3", got)
	}
	if got := inst.QueriesIssued(); got != 3 {
		t.Fatalf("aggregate count %d, want 3", got)
	}
	// A second meter over the same store starts from zero while the
	// aggregate keeps accumulating.
	m2 := NewMeter(inst)
	if _, _, err := m2.Solve(body); err != nil {
		t.Fatal(err)
	}
	if m2.Count() != 1 || m.Count() != 3 || inst.QueriesIssued() != 4 {
		t.Fatalf("meters not independent: m=%d m2=%d agg=%d", m.Count(), m2.Count(), inst.QueriesIssued())
	}
	// Resetting the meter leaves the aggregate alone.
	m.ResetCounters()
	if m.Count() != 0 || inst.QueriesIssued() != 4 {
		t.Fatalf("meter reset leaked: m=%d agg=%d", m.Count(), inst.QueriesIssued())
	}
}
