package db

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"testing"

	"entangled/internal/eq"
	"entangled/internal/unify"
)

// equivStores is one trial's family of stores holding identical tuples:
// a plain instance plus hash-partitioned copies at K=1,2,8.
type equivStores struct {
	plain   *Instance
	sharded map[int]*ShardedInstance
}

// setPlans toggles compiled plans on every store in the family.
func (es *equivStores) setPlans(enabled bool) {
	es.plain.DisableCompiledPlans = !enabled
	for _, sh := range es.sharded {
		sh.SetDisableCompiledPlans(!enabled)
	}
}

func (es *equivStores) all() map[string]Store {
	out := map[string]Store{"plain": es.plain}
	for k, sh := range es.sharded {
		out[fmt.Sprintf("k=%d", k)] = sh
	}
	return out
}

// buildEquivStores creates random relations A/2, B/1, C/3 with random
// small-domain tuples, random per-relation hash columns for the sharded
// copies, random indexes, and a random UseIndexes setting.
func buildEquivStores(rng *rand.Rand) *equivStores {
	type relSpec struct {
		name  string
		arity int
		rows  int
	}
	specs := []relSpec{
		{"A", 2, 1 + rng.Intn(10)},
		{"B", 1, 1 + rng.Intn(5)},
		{"C", 3, 1 + rng.Intn(8)},
	}
	val := func() eq.Value { return eq.Value(strconv.Itoa(rng.Intn(5))) }
	tuples := map[string][][]eq.Value{}
	hashCols := map[string]int{}
	for _, sp := range specs {
		hashCols[sp.name] = rng.Intn(sp.arity)
		for r := 0; r < sp.rows; r++ {
			row := make([]eq.Value, sp.arity)
			for c := range row {
				row[c] = val()
			}
			tuples[sp.name] = append(tuples[sp.name], row)
		}
	}
	indexed := map[string][]int{}
	for _, sp := range specs {
		for c := 0; c < sp.arity; c++ {
			if rng.Intn(3) == 0 {
				indexed[sp.name] = append(indexed[sp.name], c)
			}
		}
	}
	useIndexes := rng.Intn(2) == 0

	attrs := func(n int) []string {
		out := make([]string, n)
		for i := range out {
			out[i] = "c" + strconv.Itoa(i)
		}
		return out
	}

	es := &equivStores{plain: NewInstance(), sharded: map[int]*ShardedInstance{}}
	for _, sp := range specs {
		r := es.plain.CreateRelation(sp.name, attrs(sp.arity)...)
		for _, row := range tuples[sp.name] {
			r.Insert(row...)
		}
		for _, c := range indexed[sp.name] {
			r.BuildIndex(c)
		}
	}
	es.plain.UseIndexes = useIndexes
	for _, k := range []int{1, 2, 8} {
		sh := NewShardedInstance(k)
		for _, sp := range specs {
			r := sh.CreateRelation(sp.name, hashCols[sp.name], attrs(sp.arity)...)
			for _, row := range tuples[sp.name] {
				r.Insert(row...)
			}
			for _, c := range indexed[sp.name] {
				r.BuildIndex(c)
			}
		}
		sh.SetUseIndexes(useIndexes)
		es.sharded[k] = sh
	}
	return es
}

// randomBody builds a random conjunctive body over the trial schema:
// 1-3 atoms, variables from {x,y,z} (repeats allowed) and small-domain
// constants.
func randomBody(rng *rand.Rand) []eq.Atom {
	arities := map[string]int{"A": 2, "B": 1, "C": 3}
	names := []string{"A", "B", "C"}
	term := func() eq.Term {
		if rng.Intn(2) == 0 {
			return eq.V(string(rune('x' + rng.Intn(3))))
		}
		return eq.C(eq.Value(strconv.Itoa(rng.Intn(5))))
	}
	var body []eq.Atom
	for i := 0; i < 1+rng.Intn(3); i++ {
		n := names[rng.Intn(len(names))]
		args := make([]eq.Term, arities[n])
		for j := range args {
			args[j] = term()
		}
		body = append(body, eq.NewAtom(n, args...))
	}
	return body
}

// randomSubst builds a random substitution over the body's variable
// space: some variables bound to constants, some unified with each
// other.
func randomSubst(rng *rand.Rand) *unify.Subst {
	s := unify.New()
	vars := []string{"x", "y", "z"}
	for _, v := range vars {
		switch rng.Intn(3) {
		case 0:
			_ = s.Bind(v, eq.Value(strconv.Itoa(rng.Intn(5))))
		case 1:
			_ = s.UnifyTerms(eq.V(v), eq.V(vars[rng.Intn(len(vars))]))
		}
	}
	return s
}

// bindingMultiset renders a result list order-independently.
func bindingMultiset(res []Binding) []string {
	out := make([]string, 0, len(res))
	for _, b := range res {
		keys := make([]string, 0, len(b))
		for k := range b {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var sb strings.Builder
		for _, k := range keys {
			fmt.Fprintf(&sb, "%s=%s;", k, b[k])
		}
		out = append(out, sb.String())
	}
	sort.Strings(out)
	return out
}

func sameMultiset(t *testing.T, ctx string, a, b []string) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: answer multisets differ: %d vs %d answers\n%v\n%v", ctx, len(a), len(b), a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: answer multisets differ at %d: %q vs %q", ctx, i, a[i], b[i])
		}
	}
}

// TestQuickCompiledMatchesSeed is the compiled-evaluator equivalence
// property test: across random schemas, random bodies, random
// substitutions, shard counts K=1,2,8 and indexes on/off, the compiled
// path returns the same multiset of bindings, the same ok, and the same
// query counts (db-level DBQueries) as the seed evaluator — and the
// sharded stores agree with the plain one.
func TestQuickCompiledMatchesSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 120; trial++ {
		es := buildEquivStores(rng)
		var bodies [][]eq.Atom
		for i := 0; i < 5; i++ {
			bodies = append(bodies, randomBody(rng))
		}
		bodies = append(bodies, nil) // empty body: vacuously satisfiable
		subst := randomSubst(rng)

		type answers struct {
			all     []string
			solveOK bool
			sat     bool
			underOK bool
			queries int64
		}
		collect := func(st Store, body []eq.Atom) answers {
			start := st.QueriesIssued()
			res, err := st.SolveAll(body, 0)
			if err != nil {
				t.Fatalf("trial %d: SolveAll: %v", trial, err)
			}
			_, ok, err := st.Solve(body)
			if err != nil {
				t.Fatalf("trial %d: Solve: %v", trial, err)
			}
			sat, err := st.Satisfiable(body)
			if err != nil {
				t.Fatalf("trial %d: Satisfiable: %v", trial, err)
			}
			_, underOK, err := st.SolveUnder(body, subst)
			if err != nil {
				t.Fatalf("trial %d: SolveUnder: %v", trial, err)
			}
			return answers{
				all:     bindingMultiset(res),
				solveOK: ok,
				sat:     sat,
				underOK: underOK,
				queries: st.QueriesIssued() - start,
			}
		}

		for bi, body := range bodies {
			var plainCompiled answers
			for name, st := range es.all() {
				es.setPlans(true)
				compiled := collect(st, body)
				es.setPlans(false)
				seed := collect(st, body)

				ctx := fmt.Sprintf("trial %d body %d store %s", trial, bi, name)
				sameMultiset(t, ctx, compiled.all, seed.all)
				if compiled.solveOK != seed.solveOK || compiled.sat != seed.sat || compiled.underOK != seed.underOK {
					t.Fatalf("%s: ok flags differ: compiled %+v seed %+v", ctx, compiled, seed)
				}
				if compiled.queries != seed.queries {
					t.Fatalf("%s: DBQueries differ: compiled %d seed %d", ctx, compiled.queries, seed.queries)
				}
				if name == "plain" {
					plainCompiled = compiled
				}
			}
			// Sharded stores must agree with the plain instance.
			for k, sh := range es.sharded {
				es.setPlans(true)
				got := collect(sh, body)
				ctx := fmt.Sprintf("trial %d body %d k=%d vs plain", trial, bi, k)
				sameMultiset(t, ctx, got.all, plainCompiled.all)
				if got.solveOK != plainCompiled.solveOK || got.sat != plainCompiled.sat || got.underOK != plainCompiled.underOK {
					t.Fatalf("%s: ok flags differ", ctx)
				}
			}
		}
	}
}

// TestCompiledContainsMatchesSeed checks the membership primitive on
// random ground atoms across the store family and both evaluator paths.
func TestCompiledContainsMatchesSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	arities := map[string]int{"A": 2, "B": 1, "C": 3, "Nope": 2}
	names := []string{"A", "B", "C", "Nope"}
	for trial := 0; trial < 40; trial++ {
		es := buildEquivStores(rng)
		for i := 0; i < 20; i++ {
			n := names[rng.Intn(len(names))]
			args := make([]eq.Term, arities[n])
			for j := range args {
				args[j] = eq.C(eq.Value(strconv.Itoa(rng.Intn(5))))
			}
			a := eq.NewAtom(n, args...)
			es.setPlans(true)
			want := es.plain.Contains(a)
			es.setPlans(false)
			if got := es.plain.Contains(a); got != want {
				t.Fatalf("trial %d: plain Contains(%s) compiled %v seed %v", trial, a, want, got)
			}
			es.setPlans(true)
			for k, sh := range es.sharded {
				if got := sh.Contains(a); got != want {
					t.Fatalf("trial %d: k=%d Contains(%s) = %v, plain %v", trial, k, a, got, want)
				}
			}
		}
	}
}
