package db

import (
	"fmt"
	"sync"
	"testing"

	"entangled/internal/eq"
)

func planTestInstance() *Instance {
	in := NewInstance()
	r := in.CreateRelation("R", "a", "b")
	for i := 0; i < 16; i++ {
		r.Insert(eq.Value(fmt.Sprintf("k%d", i)), eq.Value(fmt.Sprintf("v%d", i%4)))
	}
	r.BuildIndex(1)
	return in
}

func TestShapeKeyCanonicalisation(t *testing.T) {
	key := func(body []eq.Atom) string {
		sb := new(shapeBuf)
		sb.build(body, nil)
		return string(sb.key)
	}
	// Different constants, different variable names: same shape.
	a := []eq.Atom{eq.NewAtom("R", eq.V("x"), eq.C("1")), eq.NewAtom("S", eq.V("x"), eq.V("y"))}
	b := []eq.Atom{eq.NewAtom("R", eq.V("p"), eq.C("2")), eq.NewAtom("S", eq.V("p"), eq.V("q"))}
	if key(a) != key(b) {
		t.Fatalf("shapes should agree: %q vs %q", key(a), key(b))
	}
	// Different variable equality pattern: different shape.
	c := []eq.Atom{eq.NewAtom("R", eq.V("x"), eq.C("1")), eq.NewAtom("S", eq.V("y"), eq.V("y"))}
	if key(a) == key(c) {
		t.Fatalf("different equality patterns must differ: %q", key(a))
	}
	// Constant vs variable in a position: different shape.
	d := []eq.Atom{eq.NewAtom("R", eq.C("1"), eq.C("1")), eq.NewAtom("S", eq.V("p"), eq.V("q"))}
	if key(a) == key(d) {
		t.Fatalf("const/var patterns must differ: %q", key(a))
	}
	// Relation names cannot collide through separators.
	e := []eq.Atom{eq.NewAtom("R(1:x", eq.V("x"))}
	f := []eq.Atom{eq.NewAtom("R", eq.V("x"))}
	if key(e) == key(f) {
		t.Fatal("adversarial relation name collides")
	}
}

func TestPlanCacheHitsAndSharing(t *testing.T) {
	in := planTestInstance()
	body := func(v string, c eq.Value) []eq.Atom {
		return []eq.Atom{eq.NewAtom("R", eq.V(v), eq.C(c))}
	}
	if _, _, err := in.Solve(body("x", "v1")); err != nil {
		t.Fatal(err)
	}
	st := in.PlanStats()
	if st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("first query should compile one plan: %+v", st)
	}
	// Same shape, different constant and variable name: cache hit.
	if _, _, err := in.Solve(body("z", "v2")); err != nil {
		t.Fatal(err)
	}
	if st = in.PlanStats(); st.Hits < 1 || st.Entries != 1 {
		t.Fatalf("same shape must hit: %+v", st)
	}
}

func TestPlanCacheInvalidation(t *testing.T) {
	in := planTestInstance()
	body := []eq.Atom{eq.NewAtom("R", eq.V("x"), eq.C("v1"))}
	if _, _, err := in.Solve(body); err != nil {
		t.Fatal(err)
	}
	misses := in.PlanStats().Misses

	// BuildIndex retires plans over R.
	r, _ := in.Relation("R")
	r.BuildIndex(0)
	if _, _, err := in.Solve(body); err != nil {
		t.Fatal(err)
	}
	if st := in.PlanStats(); st.Misses != misses+1 {
		t.Fatalf("BuildIndex must invalidate: %+v (was %d misses)", st, misses)
	}
	misses++

	// AddRelation (schema change) retires everything; the replacing
	// relation has different contents and the fresh plan must see them.
	r2 := NewRelation("R", "a", "b")
	r2.Insert("only", "row")
	in.AddRelation(r2)
	res, err := in.SolveAll([]eq.Atom{eq.NewAtom("R", eq.V("x"), eq.V("y"))}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0]["x"] != "only" {
		t.Fatalf("plan must re-resolve the replaced relation: %v", res)
	}
	if st := in.PlanStats(); st.Misses != misses+1 {
		t.Fatalf("AddRelation must invalidate: %+v", st)
	}
}

func TestExplainSharesCompiledPlan(t *testing.T) {
	in := planTestInstance()
	body := []eq.Atom{eq.NewAtom("R", eq.V("x"), eq.C("v1"))}
	if _, err := in.Explain(body); err != nil {
		t.Fatal(err)
	}
	st := in.PlanStats()
	if _, _, err := in.Solve(body); err != nil {
		t.Fatal(err)
	}
	after := in.PlanStats()
	if after.Misses != st.Misses || after.Hits != st.Hits+1 {
		t.Fatalf("Solve must reuse the plan Explain compiled: before %+v after %+v", st, after)
	}
}

// TestPlanCacheConcurrentInvalidation hammers one instance with
// concurrent queries while the schema churns underneath them
// (BuildIndex bumps, whole-relation replacement). Run under -race; the
// assertion is simply that nothing panics, errors or deadlocks and
// answers stay sane.
func TestPlanCacheConcurrentInvalidation(t *testing.T) {
	in := planTestInstance()
	in.CreateRelation("S", "a").Insert("s0")
	const readers = 4
	const iters = 400
	var wg sync.WaitGroup
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			bodies := [][]eq.Atom{
				{eq.NewAtom("R", eq.V("x"), eq.C("v1"))},
				{eq.NewAtom("R", eq.V("x"), eq.V("y")), eq.NewAtom("S", eq.V("z"))},
				{eq.NewAtom("R", eq.V("x"), eq.V("x"))},
			}
			for i := 0; i < iters; i++ {
				body := bodies[i%len(bodies)]
				if _, err := in.SolveAll(body, 4); err != nil {
					t.Errorf("reader %d: %v", w, err)
					return
				}
				if ok, err := in.Satisfiable(body); err != nil || !ok && i%len(bodies) == 1 {
					// Body 1 joins S, which always has a row, and R is
					// never empty: it must stay satisfiable.
					if err != nil {
						t.Errorf("reader %d: %v", w, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 60; i++ {
			r, _ := in.Relation("R")
			r.BuildIndex(i % 2)
			repl := NewRelation("R", "a", "b")
			for j := 0; j < 8; j++ {
				repl.Insert(eq.Value(fmt.Sprintf("k%d", j)), eq.Value(fmt.Sprintf("v%d", j%4)))
			}
			repl.BuildIndex(1)
			in.AddRelation(repl)
		}
	}()
	wg.Wait()
}

// TestPlanCacheConcurrentInvalidationSharded is the sharded variant:
// routed and scatter queries race BuildIndex across all parts.
func TestPlanCacheConcurrentInvalidationSharded(t *testing.T) {
	sh := NewShardedInstance(4)
	r := sh.CreateRelation("R", 1, "a", "b")
	for i := 0; i < 32; i++ {
		r.Insert(eq.Value(fmt.Sprintf("k%d", i)), eq.Value(fmt.Sprintf("v%d", i%8)))
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				// Routed probe (constant hash column) and scatter scan.
				if _, _, err := sh.Solve([]eq.Atom{eq.NewAtom("R", eq.V("x"), eq.C(eq.Value(fmt.Sprintf("v%d", i%8))))}); err != nil {
					t.Errorf("routed: %v", err)
					return
				}
				if _, err := sh.SolveAll([]eq.Atom{eq.NewAtom("R", eq.V("x"), eq.V("y"))}, 2); err != nil {
					t.Errorf("scatter: %v", err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 60; i++ {
			r.BuildIndex(i % 2)
		}
	}()
	wg.Wait()
}
