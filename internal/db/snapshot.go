package db

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"entangled/internal/eq"
)

// snapshotManifest describes an instance saved to disk: one CSV file
// per relation plus this JSON manifest carrying attribute names and
// index definitions (CSV alone cannot).
type snapshotManifest struct {
	Relations []relationManifest `json:"relations"`
}

type relationManifest struct {
	Name    string   `json:"name"`
	Attrs   []string `json:"attrs"`
	Indexes []int    `json:"indexes"`
	File    string   `json:"file"`
}

// Save writes the instance to dir (created if missing): manifest.json
// plus <relation>.csv per relation. Existing files are overwritten.
func (in *Instance) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var man snapshotManifest
	names := in.RelationNames()
	for _, name := range names {
		r, _ := in.Relation(name)
		file := name + ".csv"
		f, err := os.Create(filepath.Join(dir, file))
		if err != nil {
			return err
		}
		if err := r.DumpCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		var idx []int
		r.mu.RLock()
		for col := range r.indexes {
			idx = append(idx, col)
		}
		r.mu.RUnlock()
		sort.Ints(idx)
		man.Relations = append(man.Relations, relationManifest{
			Name:    name,
			Attrs:   append([]string(nil), r.Attrs...),
			Indexes: idx,
			File:    file,
		})
	}
	data, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "manifest.json"), data, 0o644)
}

// Load reads an instance previously written by Save. It builds the
// instance through the ordinary CreateRelation/BuildIndex surface, so
// the schema-version counters the compiled-plan cache validates
// against are advanced exactly as for a hand-built instance.
func Load(dir string) (*Instance, error) {
	data, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return nil, err
	}
	var man snapshotManifest
	if err := json.Unmarshal(data, &man); err != nil {
		return nil, fmt.Errorf("db: bad manifest: %w", err)
	}
	in := NewInstance()
	for _, rm := range man.Relations {
		f, err := os.Open(filepath.Join(dir, rm.File))
		if err != nil {
			return nil, err
		}
		rel, err := in.LoadCSV(rm.Name, f)
		f.Close()
		if err != nil {
			// An empty relation dumps an empty CSV, which LoadCSV
			// rejects; recreate it structurally instead.
			if len(rm.Attrs) > 0 {
				rel = in.CreateRelation(rm.Name, rm.Attrs...)
			} else {
				return nil, err
			}
		}
		if rel.Arity() != len(rm.Attrs) {
			return nil, fmt.Errorf("db: %s: manifest declares %d attrs, CSV has %d", rm.Name, len(rm.Attrs), rel.Arity())
		}
		rel.Attrs = append([]string(nil), rm.Attrs...)
		rel.mu.Lock()
		rel.indexes = map[int]map[eq.Value][]int{}
		rel.mu.Unlock()
		for _, col := range rm.Indexes {
			if col < 0 || col >= rel.Arity() {
				return nil, fmt.Errorf("db: %s: index column %d out of range", rm.Name, col)
			}
			rel.BuildIndex(col)
		}
	}
	return in, nil
}
