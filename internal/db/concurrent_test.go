package db

import (
	"fmt"
	"sync"
	"testing"

	"entangled/internal/eq"
)

// TestConcurrentReaders hammers one instance with parallel Solve,
// Project, Contains and Domain calls; run with -race to validate the
// read-path locking.
func TestConcurrentReaders(t *testing.T) {
	in := NewInstance()
	r := in.CreateRelation("T", "key", "val")
	for i := 0; i < 200; i++ {
		r.Insert(eq.Value(fmt.Sprintf("t%d", i)), eq.Value(fmt.Sprintf("c%d", i%50)))
	}
	r.BuildIndex(1)

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				body := []eq.Atom{eq.NewAtom("T", eq.V("x"), eq.C(eq.Value(fmt.Sprintf("c%d", (w+i)%50))))}
				if _, ok, err := in.Solve(body); err != nil || !ok {
					t.Errorf("solve: ok=%v err=%v", ok, err)
					return
				}
				if _, err := in.Project("T", []int{1}, nil); err != nil {
					t.Errorf("project: %v", err)
					return
				}
				if !in.Contains(eq.NewAtom("T", eq.C(eq.Value("t0")), eq.C(eq.Value("c0")))) {
					t.Error("contains: missing t0")
					return
				}
				if len(in.Domain()) == 0 {
					t.Error("domain: empty")
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := in.QueriesIssued(); got != 8*50*2 {
		t.Fatalf("QueriesIssued = %d, want %d", got, 8*50*2)
	}
}

// TestConcurrentReadersAndWriters interleaves queries with inserts,
// index rebuilds, deletes and relation registration on one instance.
func TestConcurrentReadersAndWriters(t *testing.T) {
	in := NewInstance()
	r := in.CreateRelation("T", "key", "val")
	for i := 0; i < 100; i++ {
		r.Insert(eq.Value(fmt.Sprintf("t%d", i)), eq.Value(fmt.Sprintf("c%d", i%10)))
	}
	r.BuildIndex(1)

	stop := make(chan struct{})
	var writers sync.WaitGroup
	writers.Add(1)
	go func() {
		defer writers.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			r.Insert(eq.Value(fmt.Sprintf("x%d", i)), eq.Value(fmt.Sprintf("c%d", i%10)))
			if i%25 == 0 {
				r.BuildIndex(0)
				r.DeleteWhere(map[int]eq.Value{0: eq.Value(fmt.Sprintf("x%d", i/2))})
			}
			side := in.CreateRelation(fmt.Sprintf("S%d", i), "a")
			side.Insert(eq.Value("v"))
		}
	}()
	var readers sync.WaitGroup
	for w := 0; w < 4; w++ {
		readers.Add(1)
		go func(w int) {
			defer readers.Done()
			for i := 0; i < 100; i++ {
				body := []eq.Atom{eq.NewAtom("T", eq.V("x"), eq.C(eq.Value(fmt.Sprintf("c%d", i%10))))}
				if _, ok, err := in.Solve(body); err != nil || !ok {
					t.Errorf("solve: ok=%v err=%v", ok, err)
					return
				}
				in.RelationNames()
				in.Schema()
			}
		}(w)
	}
	readers.Wait()
	close(stop)
	writers.Wait()
}
