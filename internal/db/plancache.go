package db

import (
	"sync"
	"sync/atomic"
)

// planCacheMax bounds the number of cached plans per store; reaching it
// drops the whole map (shapes churn only in adversarial workloads —
// coordination traffic re-issues a small family of shapes).
const planCacheMax = 1 << 14

// planCache is a concurrency-safe shape -> *plan map. Reads take an
// RLock (the serving hot path: many goroutines hitting the same hot
// shapes); compiles take the write lock. Invalidation is lazy: entries
// carry the schema versions they compiled against and every hit is
// validated against the live store, so writers never touch the cache.
type planCache struct {
	mu   sync.RWMutex
	m    map[string]*plan
	hits atomic.Int64
	miss atomic.Int64
}

// get looks a shape up without allocating: the []byte key is converted
// in the map index expression, which the compiler performs without
// copying.
func (c *planCache) get(shape []byte) *plan {
	c.mu.RLock()
	p := c.m[string(shape)]
	c.mu.RUnlock()
	return p
}

func (c *planCache) put(shape string, p *plan) {
	c.mu.Lock()
	if c.m == nil || len(c.m) >= planCacheMax {
		c.m = make(map[string]*plan)
	}
	c.m[shape] = p
	c.mu.Unlock()
}

// PlanCacheStats reports plan-cache effectiveness for one store:
// Hits/Misses count lookups (a miss includes both cold shapes and
// entries retired by schema invalidation), Entries is the current
// number of cached plans.
type PlanCacheStats struct {
	Hits    int64
	Misses  int64
	Entries int
}

func (c *planCache) stats() PlanCacheStats {
	c.mu.RLock()
	n := len(c.m)
	c.mu.RUnlock()
	return PlanCacheStats{Hits: c.hits.Load(), Misses: c.miss.Load(), Entries: n}
}
