package db

import (
	"strings"
	"testing"

	"entangled/internal/eq"
)

func TestSolveFuncStreams(t *testing.T) {
	in := flightsInstance()
	body := []eq.Atom{eq.NewAtom("Flights", eq.V("x"), eq.V("d"))}
	var seen []eq.Value
	err := in.SolveFunc(body, func(b Binding) bool {
		seen = append(seen, b["x"])
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3 {
		t.Fatalf("streamed %d answers, want 3", len(seen))
	}
}

func TestSolveFuncEarlyStop(t *testing.T) {
	in := flightsInstance()
	body := []eq.Atom{eq.NewAtom("Flights", eq.V("x"), eq.V("d"))}
	count := 0
	err := in.SolveFunc(body, func(b Binding) bool {
		count++
		return count < 2
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Fatalf("early stop after 2, got %d", count)
	}
}

func TestSolveFuncMatchesSolveAll(t *testing.T) {
	in := flightsInstance()
	body := []eq.Atom{
		eq.NewAtom("Flights", eq.V("f"), eq.V("loc")),
		eq.NewAtom("Hotels", eq.V("h"), eq.V("loc")),
	}
	all, err := in.SolveAll(body, 0)
	if err != nil {
		t.Fatal(err)
	}
	streamed := 0
	err = in.SolveFunc(body, func(Binding) bool {
		streamed++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if streamed != len(all) {
		t.Fatalf("streaming saw %d, materialised %d", streamed, len(all))
	}
}

func TestSolveFuncErrors(t *testing.T) {
	in := flightsInstance()
	if err := in.SolveFunc([]eq.Atom{eq.NewAtom("Nope", eq.V("x"))}, func(Binding) bool { return true }); err == nil {
		t.Fatal("unknown relation must error")
	}
}

func TestExplainOrdersByBoundness(t *testing.T) {
	in := flightsInstance()
	// The constant-bearing atom must run first; the joined atom second
	// through the shared loc variable.
	body := []eq.Atom{
		eq.NewAtom("Hotels", eq.V("h"), eq.V("loc")),
		eq.NewAtom("Flights", eq.V("f"), eq.C("Zurich")),
	}
	plan, err := in.Explain(body)
	if err != nil {
		t.Fatal(err)
	}
	if plan[0].Atom.Rel != "Flights" {
		t.Fatalf("constant atom should lead the plan: %v", plan)
	}
	if plan[0].Access != "index(dest)" {
		t.Fatalf("Flights is indexed on dest: %v", plan[0])
	}
	if plan[1].Atom.Rel != "Hotels" || plan[1].Access != "scan" {
		t.Fatalf("Hotels has no index: %v", plan[1])
	}
	text := RenderPlan(plan)
	if !strings.Contains(text, "index(dest)") || !strings.Contains(text, "scan") {
		t.Fatalf("render: %s", text)
	}
}

func TestExplainMatchesExecution(t *testing.T) {
	// The plan's first step must be the atom the executor actually picks
	// — both use the same heuristic. Verify by running a query whose
	// only fast path is the planned order.
	in := flightsInstance()
	body := []eq.Atom{
		eq.NewAtom("Flights", eq.V("x"), eq.C("Paris")),
		eq.NewAtom("Hotels", eq.V("h"), eq.V("loc")),
	}
	plan, err := in.Explain(body)
	if err != nil {
		t.Fatal(err)
	}
	if plan[0].Atom.Rel != "Flights" {
		t.Fatalf("plan: %v", plan)
	}
	if _, ok, err := in.Solve(body); err != nil || !ok {
		t.Fatalf("execution: %v %v", ok, err)
	}
}

func TestExplainErrors(t *testing.T) {
	in := flightsInstance()
	if _, err := in.Explain([]eq.Atom{eq.NewAtom("Nope", eq.V("x"))}); err == nil {
		t.Fatal("unknown relation must error")
	}
	if _, err := in.Explain([]eq.Atom{eq.NewAtom("Flights", eq.V("x"))}); err == nil {
		t.Fatal("arity mismatch must error")
	}
}
