package db

import (
	"encoding/json"
	"fmt"
	"sort"

	"entangled/internal/eq"
)

// MutationKind discriminates store mutations.
type MutationKind uint8

const (
	// MutCreate creates (replacing any previous relation of the same
	// name) a relation. On a sharded store HashCol selects the hash
	// column; plain instances ignore it but the field is always
	// journaled, so one mutation stream replays into either store kind.
	MutCreate MutationKind = iota + 1
	// MutInsert appends one tuple to a relation.
	MutInsert
	// MutIndex builds (or rebuilds) a hash index on one column.
	MutIndex
)

// String names the kind for logs and the JSON wire format.
func (k MutationKind) String() string {
	switch k {
	case MutCreate:
		return "create"
	case MutInsert:
		return "insert"
	case MutIndex:
		return "index"
	}
	return fmt.Sprintf("mutation(%d)", uint8(k))
}

// Mutation is one replayable store write: the unit of the durable
// write-ahead log (internal/persist) and of DumpMutations snapshots.
// Applying the same mutation sequence to two empty stores of the same
// shape yields stores that answer every query identically — including
// binding order, because tuple order is part of the stream.
type Mutation struct {
	Kind MutationKind
	Rel  string
	// Attrs names the columns (MutCreate).
	Attrs []string
	// HashCol is the hash-partition column (MutCreate; ignored by plain
	// instances).
	HashCol int
	// Col is the indexed column (MutIndex).
	Col int
	// Tuple is the inserted row (MutInsert).
	Tuple []eq.Value
}

// MCreate builds a create-relation mutation.
func MCreate(rel string, hashCol int, attrs ...string) Mutation {
	return Mutation{Kind: MutCreate, Rel: rel, HashCol: hashCol, Attrs: attrs}
}

// MInsert builds an insert mutation.
func MInsert(rel string, vals ...eq.Value) Mutation {
	return Mutation{Kind: MutInsert, Rel: rel, Tuple: vals}
}

// MIndex builds a build-index mutation.
func MIndex(rel string, col int) Mutation {
	return Mutation{Kind: MutIndex, Rel: rel, Col: col}
}

// String renders the mutation compactly for logs.
func (m Mutation) String() string {
	switch m.Kind {
	case MutCreate:
		return fmt.Sprintf("create %s%v hash=%d", m.Rel, m.Attrs, m.HashCol)
	case MutInsert:
		return fmt.Sprintf("insert %s%v", m.Rel, m.Tuple)
	case MutIndex:
		return fmt.Sprintf("index %s col=%d", m.Rel, m.Col)
	}
	return fmt.Sprintf("mutation(%d) %s", uint8(m.Kind), m.Rel)
}

// mutationJSON is the wire shape of a mutation: kind as its tag string
// so logs stay greppable and the decoder rejects unknown kinds.
type mutationJSON struct {
	Kind    string     `json:"k"`
	Rel     string     `json:"rel"`
	Attrs   []string   `json:"attrs,omitempty"`
	HashCol int        `json:"hash,omitempty"`
	Col     int        `json:"col,omitempty"`
	Tuple   []eq.Value `json:"t,omitempty"`
}

// MarshalJSON encodes the mutation for the durable log.
func (m Mutation) MarshalJSON() ([]byte, error) {
	if m.Kind < MutCreate || m.Kind > MutIndex {
		return nil, fmt.Errorf("db: encoding unknown mutation kind %d", m.Kind)
	}
	return json.Marshal(mutationJSON{
		Kind:    m.Kind.String(),
		Rel:     m.Rel,
		Attrs:   m.Attrs,
		HashCol: m.HashCol,
		Col:     m.Col,
		Tuple:   m.Tuple,
	})
}

// UnmarshalJSON decodes the mutation wire shape.
func (m *Mutation) UnmarshalJSON(data []byte) error {
	var w mutationJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	switch w.Kind {
	case "create":
		m.Kind = MutCreate
	case "insert":
		m.Kind = MutInsert
	case "index":
		m.Kind = MutIndex
	default:
		return fmt.Errorf("db: unknown mutation kind %q", w.Kind)
	}
	if w.Rel == "" {
		return fmt.Errorf("db: mutation without relation name")
	}
	m.Rel = w.Rel
	m.Attrs = w.Attrs
	m.HashCol = w.HashCol
	m.Col = w.Col
	m.Tuple = w.Tuple
	return nil
}

// WriteStore is the mutation surface of a store: the read surface plus
// a typed, replayable write path. Both *Instance and *ShardedInstance
// implement it, as does the durable persist.Backend (which journals
// every applied mutation). Writers that talk WriteStore instead of the
// concrete types work unchanged against any backend, and their write
// history can be journaled, snapshotted and replayed.
//
// Apply validates before mutating: a failed Apply leaves the store
// unchanged, so one mutation stream replays without partial effects.
type WriteStore interface {
	Store
	// Apply performs one mutation. Unknown relations, arity mismatches
	// and out-of-range columns are errors (not panics — mutations cross
	// trust boundaries: logs, wires, fuzzers).
	Apply(m Mutation) error
	// DumpMutations streams a mutation sequence that rebuilds the
	// store's current contents into an empty store: relations in sorted
	// name order, each as create, its tuples (in an order the store's
	// own Apply reproduces), then its indexes in column order. Callers
	// must quiesce writers for the dump to be a consistent snapshot.
	DumpMutations(yield func(Mutation) error) error
	// Schema returns relation name -> arity for every relation.
	Schema() map[string]int
	// RelationNames returns the sorted relation names.
	RelationNames() []string
}

var (
	_ WriteStore = (*Instance)(nil)
	_ WriteStore = (*ShardedInstance)(nil)
)

// ApplyAll applies a mutation sequence, stopping at the first failure.
func ApplyAll(w WriteStore, ms []Mutation) error {
	for i, m := range ms {
		if err := w.Apply(m); err != nil {
			return fmt.Errorf("db: applying mutation %d (%s): %w", i, m, err)
		}
	}
	return nil
}

// Router is implemented by stores that can route a whole request's
// query set to a narrower Store serving it alone (ShardedInstance, and
// wrappers like persist.Backend that delegate to one). The engine
// routes through this seam instead of naming concrete store types.
type Router interface {
	Route(qs []eq.Query) (Store, bool)
}

// PlanStatser is implemented by stores that expose compiled-plan-cache
// counters. Wrappers aggregate their inner store's counters.
type PlanStatser interface {
	PlanStats() PlanCacheStats
}

// AggregatePlanStats sums the plan-cache counters of the caches behind
// a store: a sharded store's cross-shard cache plus every shard's, or a
// plain instance's own. Wrappers that implement PlanStatser (e.g.
// persist.Backend) report through it. The second return is false when
// the store exposes no plan cache.
func AggregatePlanStats(store Store) (PlanCacheStats, bool) {
	switch s := store.(type) {
	case *Instance:
		return s.PlanStats(), true
	case *ShardedInstance:
		st := s.PlanStats()
		for i := 0; i < s.NumShards(); i++ {
			sub := s.Shard(i).PlanStats()
			st.Hits += sub.Hits
			st.Misses += sub.Misses
			st.Entries += sub.Entries
		}
		return st, true
	case PlanStatser:
		return s.PlanStats(), true
	}
	return PlanCacheStats{}, false
}

// Apply implements WriteStore on a plain instance; HashCol is ignored
// (there is one part).
func (in *Instance) Apply(m Mutation) error {
	switch m.Kind {
	case MutCreate:
		if len(m.Attrs) == 0 {
			return fmt.Errorf("db: create %s: no attributes", m.Rel)
		}
		in.CreateRelation(m.Rel, m.Attrs...)
		return nil
	case MutInsert:
		r, ok := in.Relation(m.Rel)
		if !ok {
			return fmt.Errorf("db: insert into unknown relation %s", m.Rel)
		}
		if len(m.Tuple) != r.Arity() {
			return fmt.Errorf("db: insert into %s: %d values for arity %d", m.Rel, len(m.Tuple), r.Arity())
		}
		r.Insert(m.Tuple...)
		return nil
	case MutIndex:
		r, ok := in.Relation(m.Rel)
		if !ok {
			return fmt.Errorf("db: index on unknown relation %s", m.Rel)
		}
		if m.Col < 0 || m.Col >= r.Arity() {
			return fmt.Errorf("db: index on %s: column %d out of range for arity %d", m.Rel, m.Col, r.Arity())
		}
		r.BuildIndex(m.Col)
		return nil
	}
	return fmt.Errorf("db: unknown mutation kind %d", m.Kind)
}

// DumpMutations implements WriteStore on a plain instance: tuples are
// emitted in insertion order, which Apply preserves.
func (in *Instance) DumpMutations(yield func(Mutation) error) error {
	for _, name := range in.RelationNames() {
		r, _ := in.Relation(name)
		if err := yield(MCreate(name, 0, append([]string(nil), r.Attrs...)...)); err != nil {
			return err
		}
		if err := r.Tuples(func(t Tuple) error {
			return yield(MInsert(name, t...))
		}); err != nil {
			return err
		}
		for _, col := range r.IndexedColumns() {
			if err := yield(MIndex(name, col)); err != nil {
				return err
			}
		}
	}
	return nil
}

// Apply implements WriteStore on a sharded instance: inserts route to
// the shard their hash-column value selects, exactly like
// ShardedRelation.Insert.
func (sh *ShardedInstance) Apply(m Mutation) error {
	switch m.Kind {
	case MutCreate:
		if len(m.Attrs) == 0 {
			return fmt.Errorf("db: create %s: no attributes", m.Rel)
		}
		if m.HashCol < 0 || m.HashCol >= len(m.Attrs) {
			return fmt.Errorf("db: create %s: hash column %d out of range for arity %d", m.Rel, m.HashCol, len(m.Attrs))
		}
		sh.CreateRelation(m.Rel, m.HashCol, m.Attrs...)
		return nil
	case MutInsert:
		key, ok := sh.keyOf(m.Rel)
		if !ok {
			return fmt.Errorf("db: insert into unknown relation %s", m.Rel)
		}
		part, _ := sh.shards[0].Relation(m.Rel)
		if len(m.Tuple) != part.Arity() {
			return fmt.Errorf("db: insert into %s: %d values for arity %d", m.Rel, len(m.Tuple), part.Arity())
		}
		target, _ := sh.shards[shardIndex(m.Tuple[key], len(sh.shards))].Relation(m.Rel)
		target.Insert(m.Tuple...)
		return nil
	case MutIndex:
		if _, ok := sh.keyOf(m.Rel); !ok {
			return fmt.Errorf("db: index on unknown relation %s", m.Rel)
		}
		part, _ := sh.shards[0].Relation(m.Rel)
		if m.Col < 0 || m.Col >= part.Arity() {
			return fmt.Errorf("db: index on %s: column %d out of range for arity %d", m.Rel, m.Col, part.Arity())
		}
		for _, s := range sh.shards {
			r, _ := s.Relation(m.Rel)
			r.BuildIndex(m.Col)
		}
		return nil
	}
	return fmt.Errorf("db: unknown mutation kind %d", m.Kind)
}

// DumpMutations implements WriteStore on a sharded instance: each
// relation's tuples are emitted part by part in shard order. Replaying
// through Apply routes every tuple back to the shard that emitted it
// (same hash function, same shard count), appending in the same
// per-part order, so the rebuilt store answers identically — binding
// order included.
func (sh *ShardedInstance) DumpMutations(yield func(Mutation) error) error {
	for _, name := range sh.RelationNames() {
		key, _ := sh.keyOf(name)
		first, _ := sh.shards[0].Relation(name)
		if err := yield(MCreate(name, key, append([]string(nil), first.Attrs...)...)); err != nil {
			return err
		}
		for _, s := range sh.shards {
			r, _ := s.Relation(name)
			if err := r.Tuples(func(t Tuple) error {
				return yield(MInsert(name, t...))
			}); err != nil {
				return err
			}
		}
		for _, col := range first.IndexedColumns() {
			if err := yield(MIndex(name, col)); err != nil {
				return err
			}
		}
	}
	return nil
}

// Tuples iterates the relation's tuples in insertion order under the
// read lock. The yielded tuple is shared — do not mutate or retain it
// past the callback.
func (r *Relation) Tuples(yield func(Tuple) error) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, t := range r.tuples {
		if err := yield(t); err != nil {
			return err
		}
	}
	return nil
}

// IndexedColumns returns the columns carrying a hash index, ascending.
func (r *Relation) IndexedColumns() []int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]int, 0, len(r.indexes))
	for col := range r.indexes {
		out = append(out, col)
	}
	sort.Ints(out)
	return out
}
