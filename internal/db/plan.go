package db

import (
	"fmt"
	"sort"
	"strconv"
	"sync"

	"entangled/internal/eq"
	"entangled/internal/unify"
)

// This file implements compiled query plans: the join strategy for a
// conjunctive body is derived once per body *shape* and reused across
// every query that shares the shape, instead of being re-derived inside
// the backtracking loop of every call (the seed evaluator's pickAtom
// re-scored every remaining atom at every search node — the single
// hottest function in the coordination profiles).
//
// A shape abstracts the parts of a body that do not affect strategy:
// constants are reduced to a placeholder (their values only matter at
// execution time) and variables are numbered by first occurrence (their
// names only matter at the API boundary). Everything the evaluator used
// to look up dynamically is frozen into the plan:
//
//   - the atom join order, chosen by the same greedy heuristic the seed
//     evaluator applied per call (most bound arguments first, ties to
//     the smaller relation);
//   - an integer slot for every variable, so the hot loop runs over a
//     []eq.Value frame with no map operations and no per-match
//     newVars allocations — a slot is written by the step that first
//     binds it and only ever read by later steps, so backtracking needs
//     no unbinding at all;
//   - per-step probe candidates: the columns statically known to be
//     bound when the step runs, in the same positional order the seed
//     evaluator scanned, so index selection is a precomputed list walk;
//   - the sorted relation lock order and, for sharded stores, the
//     hash-column routing mode of every step (constant, frame slot, or
//     scatter over all parts).
//
// Plans are cached per store (Instance and ShardedInstance each carry a
// planCache) and validated against schema versions on every hit, so
// AddRelation/CreateRelation and BuildIndex invalidate affected plans
// without any coordination on the write path. See exec.go for the
// runtime that binds a plan to one call's constants and runs it.

// opKind classifies how one atom column is handled during a join step.
type opKind uint8

const (
	// opConst: the column must equal one of the call's constants.
	opConst opKind = iota
	// opBind: first occurrence of a variable — write the frame slot.
	opBind
	// opCheck: the column must equal an already-written frame slot.
	opCheck
)

// planArg is one column's operation: kind plus an index into the call's
// constant table (opConst) or the variable frame (opBind/opCheck).
type planArg struct {
	kind opKind
	ix   int
}

// routeKind classifies how a step narrows a sharded relation to parts.
type routeKind uint8

const (
	// routeAll probes every locked part (unsharded, or hash col unbound
	// when the step runs).
	routeAll routeKind = iota
	// routeConst probes the single part owning a constant hash value,
	// resolved once per call at bind time.
	routeConst
	// routeFrame probes the single part owning the hash value a prior
	// step bound, resolved per search node from the frame.
	routeFrame
)

// boundCol is a column whose value is known before its step runs —
// an index-probe candidate.
type boundCol struct {
	col int
	src planArg // opConst or opCheck
}

// planStep is one joined atom in execution order.
type planStep struct {
	atom int // index into the caller's body
	rel  int // index into plan.rels
	args []planArg
	// bound lists the probe-candidate columns in positional order; the
	// executor probes the first one with a live hash index, exactly as
	// the seed evaluator's candidateRows scan did.
	bound   []boundCol
	route   routeKind
	routeIx int // const index (routeConst) or frame slot (routeFrame)
}

// planRel is one distinct relation of the body, with everything the
// lock planner needs precomputed.
type planRel struct {
	name  string
	parts []*Relation // 1 part for an Instance, K for a ShardedInstance
	key   int         // hash column, -1 when unsharded
	arity int
	size  int // tuple count at compile time (join-order tie-break)
	// needsAll is true when some atom leaves the hash column variable:
	// every part is reachable and must be locked. Otherwise routes
	// holds the const-table indexes of the hash values the body pins,
	// and only the owning parts are locked.
	needsAll bool
	routes   []int
	versions []uint64 // per-part Relation versions at compile time
}

// plan is a compiled conjunctive query: shared, immutable after
// compile, safe for any number of concurrent executions.
type plan struct {
	shape  string
	steps  []planStep
	rels   []planRel // sorted by name — the global lock order
	nSlots int
	// constAt maps const index -> (atom, arg) position in the body, so
	// each call fills its own constant values into the shared plan.
	constAt [][2]int
	// slotAt maps slot -> (atom, arg) of the variable's first
	// occurrence, for materialising Binding names at the API boundary.
	slotAt [][2]int
	// instVersions are the owning store's schema versions at compile
	// time; a mismatch on lookup retires the plan.
	instVersions []uint64

	pool sync.Pool // *exec, reused across calls
}

// shapeBuf holds the reusable scratch for computing a body's shape key,
// pooled so cache hits — the serving steady state — allocate nothing.
type shapeBuf struct {
	key   []byte
	names []string
}

var shapeBufPool = sync.Pool{New: func() any { return new(shapeBuf) }}

// build fills sb.key with the canonical shape of body, resolved under s
// when s is non-nil (the SolveUnder path: a variable the substitution
// binds is a constant of the shape, and unified variables share one
// number). Relation names are length-prefixed so arbitrary names cannot
// collide, constants are abstracted to a placeholder, and variables are
// numbered by first occurrence. Two bodies with the same key share one
// compiled plan.
func (sb *shapeBuf) build(body []eq.Atom, s *unify.Subst) {
	b := sb.key[:0]
	names := sb.names[:0]
	for ai := range body {
		a := &body[ai]
		if ai > 0 {
			b = append(b, '|')
		}
		b = strconv.AppendInt(b, int64(len(a.Rel)), 10)
		b = append(b, ':')
		b = append(b, a.Rel...)
		b = append(b, '(')
		for j := range a.Args {
			if j > 0 {
				b = append(b, ',')
			}
			t := a.Args[j]
			if t.IsVar() && s != nil {
				t = s.Resolve(t)
			}
			if t.IsVar() {
				id := -1
				for k, n := range names { // small bodies: linear scan beats a map
					if n == t.Name {
						id = k
						break
					}
				}
				if id < 0 {
					id = len(names)
					names = append(names, t.Name)
				}
				b = strconv.AppendInt(b, int64(id), 10)
			} else {
				b = append(b, 'c')
			}
		}
		b = append(b, ')')
	}
	sb.key = b
	sb.names = names
}

// compilePlan builds the plan for one body shape. src resolves a
// relation name to its shard parts and hash column (key -1 and a single
// part for a plain instance). The errors match the seed evaluator's, so
// callers surface identical messages on unknown relations and arity
// mismatches.
func compilePlan(shape string, body []eq.Atom, instVersions []uint64, src func(name string) (parts []*Relation, key int, err error)) (*plan, error) {
	p := &plan{shape: shape, instVersions: instVersions}

	// Pass 1: resolve relations, assign constant and slot indexes in
	// body order (slot numbering matches the shape key's variable
	// numbering).
	relIx := map[string]int{}
	rels := []planRel{}
	atomRel := make([]int, len(body))
	slotOf := map[string]int{}
	argPlan := make([][]planArg, len(body))
	for ai, a := range body {
		ri, ok := relIx[a.Rel]
		if !ok {
			parts, key, err := src(a.Rel)
			if err != nil {
				return nil, err
			}
			versions := make([]uint64, len(parts))
			size := 0
			for i, pt := range parts {
				versions[i] = pt.version.Load()
				size += pt.Len()
			}
			ri = len(rels)
			rels = append(rels, planRel{
				name: a.Rel, parts: parts, key: key,
				arity: parts[0].Arity(), size: size, versions: versions,
			})
			relIx[a.Rel] = ri
		}
		if rels[ri].arity != len(a.Args) {
			return nil, fmt.Errorf("db: atom %s has arity %d, relation has %d", a, len(a.Args), rels[ri].arity)
		}
		atomRel[ai] = ri
		args := make([]planArg, len(a.Args))
		for j, t := range a.Args {
			if t.IsVar() {
				s, ok := slotOf[t.Name]
				if !ok {
					s = len(p.slotAt)
					slotOf[t.Name] = s
					p.slotAt = append(p.slotAt, [2]int{ai, j})
				}
				// Provisional: the order pass decides bind vs check.
				args[j] = planArg{kind: opBind, ix: s}
			} else {
				c := len(p.constAt)
				p.constAt = append(p.constAt, [2]int{ai, j})
				args[j] = planArg{kind: opConst, ix: c}
			}
		}
		argPlan[ai] = args
		// Lock-plan routing: a constant hash column pins one part; a
		// variable one makes every part reachable.
		r := &rels[ri]
		if r.key >= 0 && r.key < len(a.Args) && !a.Args[r.key].IsVar() {
			r.routes = append(r.routes, args[r.key].ix)
		} else if r.key >= 0 {
			r.needsAll = true
		} else {
			r.needsAll = true // unsharded: the single part is always needed
		}
	}

	// Pass 2: fix the join order with the seed evaluator's greedy
	// heuristic — most bound arguments first (constants and variables
	// bound by earlier steps), ties to the smaller relation — and
	// classify every column against the frozen order.
	n := len(body)
	used := make([]bool, n)
	slotBound := make([]bool, len(p.slotAt))
	p.steps = make([]planStep, 0, n)
	for len(p.steps) < n {
		best, bestScore := -1, -1
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			score := 0
			for _, a := range argPlan[i] {
				if a.kind == opConst || slotBound[a.ix] {
					score++
				}
			}
			if score > bestScore || (score == bestScore && rels[atomRel[i]].size < rels[atomRel[best]].size) {
				best, bestScore = i, score
			}
		}
		st := planStep{atom: best, rel: atomRel[best]}
		args := make([]planArg, len(argPlan[best]))
		var boundThis []int // slots first bound by this step
		for j, a := range argPlan[best] {
			switch {
			case a.kind == opConst:
				args[j] = a
				st.bound = append(st.bound, boundCol{col: j, src: a})
			case slotBound[a.ix]:
				args[j] = planArg{kind: opCheck, ix: a.ix}
				st.bound = append(st.bound, boundCol{col: j, src: args[j]})
			case containsInt(boundThis, a.ix):
				// Repeated variable within the atom: the earlier column
				// writes the slot, this one checks it. Not a probe
				// candidate — the slot is unset when the step probes.
				args[j] = planArg{kind: opCheck, ix: a.ix}
			default:
				args[j] = planArg{kind: opBind, ix: a.ix}
				boundThis = append(boundThis, a.ix)
			}
		}
		st.args = args
		// Shard routing mirrors the seed partsFor: only values bound
		// before the step probes (constants and earlier-step slots) can
		// narrow the part set.
		if r := &rels[st.rel]; r.key >= 0 && len(r.parts) > 1 && r.key < len(args) {
			switch a := args[r.key]; {
			case a.kind == opConst:
				st.route, st.routeIx = routeConst, a.ix
			case a.kind == opCheck && slotBound[a.ix]:
				st.route, st.routeIx = routeFrame, a.ix
			}
		}
		for _, s := range boundThis {
			slotBound[s] = true
		}
		used[best] = true
		p.steps = append(p.steps, st)
	}
	p.nSlots = len(p.slotAt)

	// Sort relations by name: bind() acquires read locks in rels order,
	// giving the same deterministic (name, shard) total order as the
	// seed lock planners.
	order := make([]int, len(rels))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return rels[order[a]].name < rels[order[b]].name })
	perm := make([]int, len(rels))
	sorted := make([]planRel, len(rels))
	for newIx, oldIx := range order {
		sorted[newIx] = rels[oldIx]
		perm[oldIx] = newIx
	}
	for i := range p.steps {
		p.steps[i].rel = perm[p.steps[i].rel]
	}
	p.rels = sorted
	return p, nil
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// planFor returns the compiled plan for the body (resolved under s when
// s is non-nil), compiling and caching it on a miss or when a schema
// change retired the cached entry. The hit path allocates nothing: the
// shape key is built in a pooled buffer and looked up without
// conversion.
func (in *Instance) planFor(body []eq.Atom, s *unify.Subst) (*plan, error) {
	sb := shapeBufPool.Get().(*shapeBuf)
	sb.build(body, s)
	if p := in.plans.get(sb.key); p != nil && p.instVersions[0] == in.version.Load() && p.relsValid() {
		in.plans.hits.Add(1)
		shapeBufPool.Put(sb)
		return p, nil
	}
	in.plans.miss.Add(1)
	shape := string(sb.key)
	shapeBufPool.Put(sb)
	// Read the version before resolving relations: a concurrent
	// AddRelation between the two can only make the new plan look
	// stale (recompiled on next use), never let a stale pointer pass
	// validation.
	iv := in.version.Load()
	resolved := body
	if s != nil {
		resolved = s.ApplyAll(body)
	}
	p, err := compilePlan(shape, resolved, []uint64{iv}, func(name string) ([]*Relation, int, error) {
		r, ok := in.Relation(name)
		if !ok {
			return nil, 0, fmt.Errorf("db: unknown relation %s", name)
		}
		return []*Relation{r}, -1, nil
	})
	if err != nil {
		return nil, err
	}
	in.plans.put(shape, p)
	return p, nil
}

// PlanStats reports the instance's plan-cache counters.
func (in *Instance) PlanStats() PlanCacheStats { return in.plans.stats() }

// relsValid reports whether every relation the plan compiled against is
// still current (no BuildIndex since compile, and — combined with the
// store-version check the caller performs — no replacement).
func (p *plan) relsValid() bool {
	for i := range p.rels {
		r := &p.rels[i]
		for j, pt := range r.parts {
			if pt.version.Load() != r.versions[j] {
				return false
			}
		}
	}
	return true
}
