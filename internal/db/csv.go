package db

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"

	"entangled/internal/eq"
)

// LoadCSV reads a headerless CSV stream into a new relation registered
// under name; the arity is taken from the first record and an index is
// built on every column. cmd/coordctl uses it to load tables from disk.
func (in *Instance) LoadCSV(name string, r io.Reader) (*Relation, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("db: %s: %w", name, err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("db: %s: empty CSV input", name)
	}
	arity := len(rows[0])
	attrs := make([]string, arity)
	for i := range attrs {
		attrs[i] = fmt.Sprintf("c%d", i)
	}
	rel := in.CreateRelation(name, attrs...)
	for ln, row := range rows {
		if len(row) != arity {
			return nil, fmt.Errorf("db: %s: record %d has %d fields, expected %d", name, ln+1, len(row), arity)
		}
		vals := make([]eq.Value, arity)
		for i, c := range row {
			vals[i] = eq.Value(strings.TrimSpace(c))
		}
		rel.Insert(vals...)
	}
	for c := 0; c < arity; c++ {
		rel.BuildIndex(c)
	}
	return rel, nil
}

// DumpCSV writes the relation's tuples as headerless CSV in insertion
// order.
func (r *Relation) DumpCSV(w io.Writer) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	cw := csv.NewWriter(w)
	record := make([]string, r.Arity())
	for _, t := range r.tuples {
		for i, v := range t {
			record[i] = string(v)
		}
		if err := cw.Write(record); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// DeleteWhere removes every tuple matching the (column -> constant)
// filter and rebuilds the relation's indexes; it returns the number of
// tuples removed. An empty filter clears the relation.
func (r *Relation) DeleteWhere(where map[int]eq.Value) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	kept := r.tuples[:0]
	removed := 0
	for _, t := range r.tuples {
		match := true
		for c, v := range where {
			if t[c] != v {
				match = false
				break
			}
		}
		if match {
			removed++
		} else {
			kept = append(kept, t)
		}
	}
	r.tuples = kept
	for col := range r.indexes {
		r.buildIndexLocked(col)
	}
	return removed
}
