package db

import (
	"fmt"
	"strconv"
	"testing"

	"entangled/internal/eq"
	"entangled/internal/unify"
)

// The BenchmarkSolveCompiled* family isolates the evaluation layer:
// each benchmark runs the same query stream through the seed evaluator
// (DisableCompiledPlans) and through compiled plans, so the plan win is
// measured without any coordination-algorithm overhead around it.

func benchTable(rows int, indexed bool) *Instance {
	in := NewInstance()
	r := in.CreateRelation("T", "key", "val")
	for i := 0; i < rows; i++ {
		r.Insert(eq.Value("t"+strconv.Itoa(i)), eq.Value("c"+strconv.Itoa(i)))
	}
	if indexed {
		r.BuildIndex(1)
	}
	return in
}

// BenchmarkSolveCompiledIndexed: the Figure 4 point shape — one atom,
// constant on an indexed column.
func BenchmarkSolveCompiledIndexed(b *testing.B) {
	in := benchTable(20000, true)
	for _, mode := range []string{"seed", "compiled"} {
		in.DisableCompiledPlans = mode == "seed"
		b.Run(mode, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				body := []eq.Atom{eq.NewAtom("T", eq.V("x"), eq.C(eq.Value("c"+strconv.Itoa(i%20000))))}
				if _, ok, err := in.Solve(body); err != nil || !ok {
					b.Fatalf("ok=%v err=%v", ok, err)
				}
			}
		})
	}
}

// BenchmarkSolveCompiledScan: the same shape with no index — the seed
// evaluator materialised an O(rows) candidate list per probe.
func BenchmarkSolveCompiledScan(b *testing.B) {
	in := benchTable(2000, false)
	for _, mode := range []string{"seed", "compiled"} {
		in.DisableCompiledPlans = mode == "seed"
		b.Run(mode, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				body := []eq.Atom{eq.NewAtom("T", eq.V("x"), eq.C(eq.Value("c"+strconv.Itoa(i%2000))))}
				if _, ok, err := in.Solve(body); err != nil || !ok {
					b.Fatalf("ok=%v err=%v", ok, err)
				}
			}
		})
	}
}

// BenchmarkSolveCompiledSharded: routed point queries on an 8-way
// hash-partitioned relation (bind-time part narrowing + per-part probe
// resolution).
func BenchmarkSolveCompiledSharded(b *testing.B) {
	sh := NewShardedInstance(8)
	r := sh.CreateRelation("T", 1, "key", "val")
	for i := 0; i < 20000; i++ {
		r.Insert(eq.Value("t"+strconv.Itoa(i)), eq.Value("c"+strconv.Itoa(i)))
	}
	r.BuildIndex(1)
	for _, mode := range []string{"seed", "compiled"} {
		sh.SetDisableCompiledPlans(mode == "seed")
		b.Run(mode, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				body := []eq.Atom{eq.NewAtom("T", eq.V("x"), eq.C(eq.Value("c"+strconv.Itoa(i%20000))))}
				if _, ok, err := sh.Solve(body); err != nil || !ok {
					b.Fatalf("ok=%v err=%v", ok, err)
				}
			}
		})
	}
}

// BenchmarkSolveCompiledSolveUnder: the coordination hot loop — the
// same multi-atom body shape re-issued under substitutions that pin its
// variables (the compiled path resolves terms at bind time; the seed
// path rewrites the body per call).
func BenchmarkSolveCompiledSolveUnder(b *testing.B) {
	in := benchTable(20000, true)
	const atoms = 10
	body := make([]eq.Atom, atoms)
	for i := range body {
		body[i] = eq.NewAtom("T", eq.V(fmt.Sprintf("x%d", i)), eq.V(fmt.Sprintf("v%d", i)))
	}
	subs := make([]*unify.Subst, 64)
	for si := range subs {
		s := unify.New()
		for i := 0; i < atoms; i++ {
			if err := s.Bind(fmt.Sprintf("v%d", i), eq.Value("c"+strconv.Itoa((si*atoms+i)%20000))); err != nil {
				b.Fatal(err)
			}
		}
		subs[si] = s
	}
	for _, mode := range []string{"seed", "compiled"} {
		in.DisableCompiledPlans = mode == "seed"
		b.Run(mode, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, ok, err := in.SolveUnder(body, subs[i%len(subs)]); err != nil || !ok {
					b.Fatalf("ok=%v err=%v", ok, err)
				}
			}
		})
	}
}
