package db

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"entangled/internal/eq"
	"entangled/internal/unify"
)

// shardIndex routes a hash-column value to a shard: FNV-1a over the
// value's bytes, reduced modulo the shard count. Both tuple placement
// (ShardedRelation.Insert) and lookup routing (the evaluator, Contains,
// Route) must use this one function, or the placement invariant breaks.
func shardIndex(v eq.Value, k int) int {
	h := uint32(2166136261)
	for i := 0; i < len(v); i++ {
		h ^= uint32(v[i])
		h *= 16777619
	}
	return int(h % uint32(k))
}

// ShardedInstance hash-partitions every relation's tuples across K
// plain Instance shards: a tuple lives on the shard selected by hashing
// its relation's designated hash column. It implements the same Store
// read surface as Instance — Contains, Solve/SolveAll/Satisfiable/
// SolveUnder, Domain, the query counters — so the coordination
// algorithms and the engine run unmodified against it.
//
// The point of sharding is lock granularity: a plain Instance
// serialises every writer against every reader of a relation on one
// RWMutex, while a sharded relation spreads that traffic over K
// independent locks. A conjunctive query read-locks only the shard
// parts it can actually touch — for an atom whose hash column is a
// constant, exactly one part — so writers to other shards proceed
// untouched. Queries whose atoms do not bind the hash column remain
// correct: they lock and probe every part (scatter-gather).
//
// A ShardedInstance is safe for concurrent use. Schema changes
// (CreateRelation) must not race with queries, matching Instance.
type ShardedInstance struct {
	mu     sync.RWMutex
	shards []*Instance
	keys   map[string]int // relation name -> hash column

	useIndexes   bool
	disablePlans bool
	latency      time.Duration
	queries      int64 // cross-shard conjunctive queries answered (atomic)

	// version counts schema changes (CreateRelation); cross-shard
	// compiled plans record it and retire themselves when it moves.
	version atomic.Uint64
	plans   planCache
}

// NewShardedInstance returns an empty instance partitioned across k
// shards (k < 1 is treated as 1), with indexing enabled.
func NewShardedInstance(k int) *ShardedInstance {
	if k < 1 {
		k = 1
	}
	shards := make([]*Instance, k)
	for i := range shards {
		shards[i] = NewInstance()
	}
	return &ShardedInstance{shards: shards, keys: map[string]int{}, useIndexes: true}
}

// NumShards returns the shard count K.
func (sh *ShardedInstance) NumShards() int { return len(sh.shards) }

// HashColumns returns a copy of the relation -> hash-column map: the
// per-relation column whose value places a tuple (and routes a
// request). Cluster placement reuses it so nodes and in-process shards
// partition by the same columns.
func (sh *ShardedInstance) HashColumns() map[string]int {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	m := make(map[string]int, len(sh.keys))
	for name, col := range sh.keys {
		m[name] = col
	}
	return m
}

// Shard returns the i-th underlying Instance. Callers must respect the
// placement invariant when writing through it directly.
func (sh *ShardedInstance) Shard(i int) *Instance { return sh.shards[i] }

// SetUseIndexes toggles hash-index use on the cross-shard evaluator and
// on every shard. Configure before sharing across goroutines.
func (sh *ShardedInstance) SetUseIndexes(v bool) {
	sh.useIndexes = v
	for _, s := range sh.shards {
		s.UseIndexes = v
	}
}

// SetSimulatedLatency sets the per-query simulated round-trip cost on
// the cross-shard path and on every shard (see
// Instance.SimulatedLatency). Configure before sharing.
func (sh *ShardedInstance) SetSimulatedLatency(d time.Duration) {
	sh.latency = d
	for _, s := range sh.shards {
		s.SimulatedLatency = d
	}
}

// SetDisableCompiledPlans routes queries through the seed evaluator on
// the cross-shard path and on every shard (see
// Instance.DisableCompiledPlans). Configure before sharing.
func (sh *ShardedInstance) SetDisableCompiledPlans(v bool) {
	sh.disablePlans = v
	for _, s := range sh.shards {
		s.DisableCompiledPlans = v
	}
}

// PlanStats reports the cross-shard plan-cache counters (routed
// single-shard queries hit the owning shard's cache; see
// Instance.PlanStats).
func (sh *ShardedInstance) PlanStats() PlanCacheStats { return sh.plans.stats() }

// ShardedRelation is the write handle for one hash-partitioned
// relation: it owns the name, the hash column and the K per-shard
// parts, and routes every inserted tuple to the part its hash-column
// value selects.
type ShardedRelation struct {
	Name  string
	Key   int // hash column
	parts []*Relation
}

// CreateRelation creates (replacing any previous relation of the same
// name) a relation hash-partitioned on column hashCol across every
// shard, and returns its write handle.
func (sh *ShardedInstance) CreateRelation(name string, hashCol int, attrs ...string) *ShardedRelation {
	if hashCol < 0 || hashCol >= len(attrs) {
		panic(fmt.Sprintf("db: %s: hash column %d out of range for arity %d", name, hashCol, len(attrs)))
	}
	parts := make([]*Relation, len(sh.shards))
	for i, s := range sh.shards {
		parts[i] = s.CreateRelation(name, attrs...)
	}
	sh.mu.Lock()
	sh.keys[name] = hashCol
	sh.mu.Unlock()
	sh.version.Add(1)
	return &ShardedRelation{Name: name, Key: hashCol, parts: parts}
}

// keyOf returns the hash column of a registered relation.
func (sh *ShardedInstance) keyOf(name string) (int, bool) {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	col, ok := sh.keys[name]
	return col, ok
}

// Insert routes the tuple to the shard owning its hash-column value.
func (r *ShardedRelation) Insert(vals ...eq.Value) {
	if len(vals) != len(r.parts[0].Attrs) {
		panic(fmt.Sprintf("db: %s expects %d columns, got %d", r.Name, len(r.parts[0].Attrs), len(vals)))
	}
	r.parts[shardIndex(vals[r.Key], len(r.parts))].Insert(vals...)
}

// BuildIndex creates (or rebuilds) a hash index on the given column of
// every part.
func (r *ShardedRelation) BuildIndex(col int) {
	for _, p := range r.parts {
		p.BuildIndex(col)
	}
}

// Len returns the total tuple count across all parts.
func (r *ShardedRelation) Len() int {
	n := 0
	for _, p := range r.parts {
		n += p.Len()
	}
	return n
}

// Part returns the i-th shard's slice of the relation.
func (r *ShardedRelation) Part(i int) *Relation { return r.parts[i] }

// Schema returns relation name -> arity (every shard holds the same
// schema; shard 0 answers).
func (sh *ShardedInstance) Schema() map[string]int { return sh.shards[0].Schema() }

// RelationNames returns the sorted relation names.
func (sh *ShardedInstance) RelationNames() []string { return sh.shards[0].RelationNames() }

// QueriesIssued returns the total conjunctive queries answered since
// the last ResetCounters: cross-shard queries plus every shard's own
// count (single-shard routed queries land on the shard's counter).
func (sh *ShardedInstance) QueriesIssued() int64 {
	n := atomic.LoadInt64(&sh.queries)
	for _, s := range sh.shards {
		n += s.QueriesIssued()
	}
	return n
}

// ResetCounters zeroes the cross-shard and every per-shard counter.
func (sh *ShardedInstance) ResetCounters() {
	atomic.StoreInt64(&sh.queries, 0)
	for _, s := range sh.shards {
		s.ResetCounters()
	}
}

func (sh *ShardedInstance) countQuery() {
	atomic.AddInt64(&sh.queries, 1)
	if sh.latency > 0 {
		time.Sleep(sh.latency)
	}
}

// Domain returns every constant appearing in any shard, sorted. It
// equals the Domain of an unsharded instance holding the same tuples.
func (sh *ShardedInstance) Domain() []eq.Value {
	seen := map[eq.Value]bool{}
	for _, s := range sh.shards {
		for _, v := range s.Domain() {
			seen[v] = true
		}
	}
	out := make([]eq.Value, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Contains reports whether the ground atom denotes a stored tuple,
// checking only the shard its hash-column value routes to. Like
// Instance.Contains it does not count as a query.
func (sh *ShardedInstance) Contains(a eq.Atom) bool {
	key, ok := sh.keyOf(a.Rel)
	if !ok || key >= len(a.Args) {
		return false
	}
	for _, t := range a.Args {
		if t.IsVar() {
			return false
		}
	}
	return sh.shards[shardIndex(a.Args[key].Const(), len(sh.shards))].Contains(a)
}

// Solve answers the conjunctive query under choose-1 semantics (see
// Instance.Solve). Counts as one query on the cross-shard counter.
func (sh *ShardedInstance) Solve(body []eq.Atom) (Binding, bool, error) {
	res, err := sh.solve(body, 1)
	if err != nil {
		return nil, false, err
	}
	if len(res) == 0 {
		return nil, false, nil
	}
	return res[0], true, nil
}

// SolveAll returns up to limit satisfying assignments (limit <= 0 means
// all).
func (sh *ShardedInstance) SolveAll(body []eq.Atom, limit int) ([]Binding, error) {
	return sh.solve(body, limit)
}

// Satisfiable reports whether the body has at least one answer. On the
// compiled path it runs the plan in existence mode: no binding is
// materialised.
func (sh *ShardedInstance) Satisfiable(body []eq.Atom) (bool, error) {
	sh.countQuery()
	if sh.disablePlans {
		res, err := sh.legacySolve(body, 1)
		return len(res) > 0, err
	}
	p, err := sh.planFor(body, nil)
	if err != nil {
		return false, err
	}
	return p.satisfiable(body, sh.useIndexes), nil
}

// SolveUnder answers the body resolved under a substitution; like
// Instance.SolveUnder, the compiled path resolves terms at bind time
// instead of materialising a substituted body.
func (sh *ShardedInstance) SolveUnder(body []eq.Atom, s *unify.Subst) (Binding, bool, error) {
	sh.countQuery()
	if sh.disablePlans {
		res, err := sh.legacySolve(s.ApplyAll(body), 1)
		return first(res, err)
	}
	p, err := sh.planFor(body, s)
	if err != nil {
		return nil, false, err
	}
	return first(p.solve(body, s, 1, sh.useIndexes), nil)
}

// solve runs the compiled plan for the body shape across shard parts.
// Parts that no atom can reach (every atom over the relation pins the
// hash column to a constant routing elsewhere) are neither locked nor
// probed, so writers to those parts never wait on this query.
func (sh *ShardedInstance) solve(body []eq.Atom, limit int) ([]Binding, error) {
	sh.countQuery()
	if sh.disablePlans {
		return sh.legacySolve(body, limit)
	}
	p, err := sh.planFor(body, nil)
	if err != nil {
		return nil, err
	}
	return p.solve(body, nil, limit, sh.useIndexes), nil
}

// legacySolve is the seed cross-shard evaluation path (see
// Instance.legacySolve).
func (sh *ShardedInstance) legacySolve(body []eq.Atom, limit int) ([]Binding, error) {
	views, unlock, err := sh.viewsFor(body)
	if err != nil {
		return nil, err
	}
	defer unlock()
	e := &evaluator{useIndexes: sh.useIndexes, rels: views, body: body, limit: limit, bound: Binding{}}
	e.run()
	return e.results, nil
}

// planFor returns the compiled cross-shard plan for the body (resolved
// under s when non-nil), compiling and caching it on a miss or after
// schema invalidation. Plans resolve every relation's parts across all
// shards once; narrowing to the parts one call can reach happens at
// bind time from the call's constants.
func (sh *ShardedInstance) planFor(body []eq.Atom, s *unify.Subst) (*plan, error) {
	sb := shapeBufPool.Get().(*shapeBuf)
	sb.build(body, s)
	if p := sh.plans.get(sb.key); p != nil && sh.planValid(p) {
		sh.plans.hits.Add(1)
		shapeBufPool.Put(sb)
		return p, nil
	}
	sh.plans.miss.Add(1)
	shape := string(sb.key)
	shapeBufPool.Put(sb)
	// Versions are read before resolution so a concurrent schema change
	// can only make the fresh plan look stale, never validate a stale
	// pointer (see Instance.planFor).
	vers := make([]uint64, len(sh.shards)+1)
	vers[0] = sh.version.Load()
	for i, s := range sh.shards {
		vers[i+1] = s.version.Load()
	}
	resolved := body
	if s != nil {
		resolved = s.ApplyAll(body)
	}
	p, err := compilePlan(shape, resolved, vers, func(name string) ([]*Relation, int, error) {
		key, ok := sh.keyOf(name)
		if !ok {
			return nil, 0, fmt.Errorf("db: unknown relation %s", name)
		}
		parts := make([]*Relation, len(sh.shards))
		for i, s := range sh.shards {
			r, ok := s.Relation(name)
			if !ok {
				return nil, 0, fmt.Errorf("db: relation %s missing from shard %d", name, i)
			}
			parts[i] = r
		}
		return parts, key, nil
	})
	if err != nil {
		return nil, err
	}
	sh.plans.put(shape, p)
	return p, nil
}

// planValid checks a cached plan against the sharded store's schema
// versions and every compiled-against part's version.
func (sh *ShardedInstance) planValid(p *plan) bool {
	if len(p.instVersions) != len(sh.shards)+1 || p.instVersions[0] != sh.version.Load() {
		return false
	}
	for i, s := range sh.shards {
		if p.instVersions[i+1] != s.version.Load() {
			return false
		}
	}
	return p.relsValid()
}

// shardRelInfo is the per-relation lock plan of one cross-shard query.
type shardRelInfo struct {
	parts  []*Relation
	key    int
	needed []bool // parts the query can reach and must therefore lock
}

// viewsFor validates the body, computes which shard parts each
// relation's atoms can reach, read-locks exactly those parts in a
// deterministic global order (relation name, then shard index — the
// same total order a routed single-shard query follows), and returns
// the evaluator views plus the matching unlock function.
func (sh *ShardedInstance) viewsFor(body []eq.Atom) (map[string]relView, func(), error) {
	k := len(sh.shards)
	infos := map[string]*shardRelInfo{}
	for _, a := range body {
		info := infos[a.Rel]
		if info == nil {
			key, ok := sh.keyOf(a.Rel)
			if !ok {
				return nil, nil, fmt.Errorf("db: unknown relation %s", a.Rel)
			}
			parts := make([]*Relation, k)
			for i, s := range sh.shards {
				r, ok := s.Relation(a.Rel)
				if !ok {
					return nil, nil, fmt.Errorf("db: relation %s missing from shard %d", a.Rel, i)
				}
				parts[i] = r
			}
			info = &shardRelInfo{parts: parts, key: key, needed: make([]bool, k)}
			infos[a.Rel] = info
		}
		if info.parts[0].Arity() != len(a.Args) {
			return nil, nil, fmt.Errorf("db: atom %s has arity %d, relation has %d", a, len(a.Args), info.parts[0].Arity())
		}
		if t := a.Args[info.key]; !t.IsVar() {
			// Constant hash column: the atom can only match tuples on the
			// owning shard.
			info.needed[shardIndex(t.Const(), k)] = true
		} else {
			// Variable hash column: even if a prior join step binds it at
			// runtime, it may take values routing to any shard.
			for i := range info.needed {
				info.needed[i] = true
			}
		}
	}

	names := make([]string, 0, len(infos))
	for n := range infos {
		names = append(names, n)
	}
	sort.Strings(names)
	var locked []*Relation
	for _, n := range names {
		info := infos[n]
		for i := 0; i < k; i++ {
			if info.needed[i] {
				info.parts[i].mu.RLock()
				locked = append(locked, info.parts[i])
			}
		}
	}
	unlock := func() {
		for _, r := range locked {
			r.mu.RUnlock()
		}
	}
	views := make(map[string]relView, len(infos))
	for _, n := range names {
		info := infos[n]
		size := 0
		for i, p := range info.parts {
			if info.needed[i] {
				size += len(p.tuples)
			}
		}
		views[n] = relView{parts: info.parts, key: info.key, size: size}
	}
	return views, unlock, nil
}

// Route inspects a request's query set and, when every body atom pins
// its relation's hash column to a constant and all those constants hash
// to one shard, returns a single-shard view serving the whole request
// from that shard: solves touch only that shard's locks, while Domain
// and the counters still reflect the whole instance (so results —
// including the Definition-1 fallback value — are identical to a
// cross-shard run). The second return is false when the request is not
// single-shard routable; callers then use the ShardedInstance itself,
// which is always correct.
//
// Routing lives here as a capability, but the engine decides when to
// apply it (per request, in CoordinateMany) — see the package engine
// docs for why the db layer never routes implicitly.
func (sh *ShardedInstance) Route(qs []eq.Query) (Store, bool) {
	target := -1
	for _, q := range qs {
		for _, a := range q.Body {
			key, ok := sh.keyOf(a.Rel)
			if !ok || key >= len(a.Args) {
				return nil, false
			}
			t := a.Args[key]
			if t.IsVar() {
				return nil, false
			}
			s := shardIndex(t.Const(), len(sh.shards))
			if target == -1 {
				target = s
			} else if target != s {
				return nil, false
			}
		}
	}
	if target < 0 {
		return nil, false // no body atoms: nothing to route by
	}
	return &shardView{shard: sh.shards[target], parent: sh}, true
}

// shardView is the Store a routed request runs against: conjunctive
// queries go to one shard (whose relation locks are the only ones
// touched), while Domain, Contains and the counters delegate to the
// parent so observable results match a cross-shard run.
type shardView struct {
	shard  *Instance
	parent *ShardedInstance
}

func (v *shardView) Solve(body []eq.Atom) (Binding, bool, error) { return v.shard.Solve(body) }

func (v *shardView) SolveAll(body []eq.Atom, limit int) ([]Binding, error) {
	return v.shard.SolveAll(body, limit)
}

func (v *shardView) Satisfiable(body []eq.Atom) (bool, error) { return v.shard.Satisfiable(body) }

func (v *shardView) SolveUnder(body []eq.Atom, s *unify.Subst) (Binding, bool, error) {
	return v.shard.SolveUnder(body, s)
}

func (v *shardView) Contains(a eq.Atom) bool { return v.parent.Contains(a) }

func (v *shardView) Domain() []eq.Value { return v.parent.Domain() }

func (v *shardView) QueriesIssued() int64 { return v.parent.QueriesIssued() }

func (v *shardView) ResetCounters() { v.parent.ResetCounters() }
