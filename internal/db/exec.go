package db

import (
	"entangled/internal/eq"
	"entangled/internal/unify"
)

// exec is the per-call runtime state of one compiled-plan execution: the
// call's constant values, the variable frame, the narrowed and locked
// shard parts, and the probe resolution (which hash index, if any, each
// step uses on each part). An exec is pooled on its plan, so steady-state
// evaluation allocates only the result bindings the API must return.
type exec struct {
	p      *plan
	consts []eq.Value
	frame  []eq.Value
	names  []string // slot -> variable name for this call

	// relParts[ri] is the slice of rel ri's parts this call locked, in
	// shard order. It aliases plan.rels[ri].parts when every part is
	// needed, or ownParts[ri] (owned storage) when narrowed.
	relParts [][]*Relation
	ownParts [][]*Relation
	// parts/probes are per step: the parts the step iterates and, per
	// part, the resolved index probe (nil idx means scan).
	parts   [][]*Relation
	singles [][1]*Relation // owned backing for routeConst steps
	probes  [][]probeRef

	locked  []*Relation
	needBuf []bool

	limit   int
	results []Binding
	fn      func(Binding) bool // streaming mode
	reuse   Binding            // streaming mode: one map reused per yield
	exists  bool               // existence mode: stop at the first match
	found   bool
}

// probeRef is one step's access path on one part: probe idx[value(src)]
// when idx is non-nil, scan the part otherwise.
type probeRef struct {
	idx map[eq.Value][]int
	src planArg
}

// bind prepares a pooled exec for one call: fill the constant table and
// slot names from the concrete body (resolving terms under s when
// non-nil — the SolveUnder path never materialises a substituted body),
// read-lock exactly the parts the call can reach (in the plan's
// deterministic relation order, shard index ascending), and resolve
// each step's index probe under those locks. The caller must run
// release() when done.
func (p *plan) bind(body []eq.Atom, s *unify.Subst, useIndexes bool) *exec {
	x, _ := p.pool.Get().(*exec)
	if x == nil {
		x = &exec{
			p:        p,
			consts:   make([]eq.Value, len(p.constAt)),
			frame:    make([]eq.Value, p.nSlots),
			names:    make([]string, p.nSlots),
			relParts: make([][]*Relation, len(p.rels)),
			ownParts: make([][]*Relation, len(p.rels)),
			parts:    make([][]*Relation, len(p.steps)),
			singles:  make([][1]*Relation, len(p.steps)),
			probes:   make([][]probeRef, len(p.steps)),
		}
	}
	x.limit, x.fn, x.exists, x.found = 0, nil, false, false
	if s == nil {
		for i, pos := range p.constAt {
			x.consts[i] = body[pos[0]].Args[pos[1]].Const()
		}
		for sl, pos := range p.slotAt {
			x.names[sl] = body[pos[0]].Args[pos[1]].Name
		}
	} else {
		for i, pos := range p.constAt {
			x.consts[i] = s.Resolve(body[pos[0]].Args[pos[1]]).Const()
		}
		for sl, pos := range p.slotAt {
			x.names[sl] = s.Resolve(body[pos[0]].Args[pos[1]]).Name
		}
	}

	// Lock planning: for each relation (name order) lock the parts the
	// body can reach — all of them when any atom leaves the hash column
	// variable, only the constant-owned ones otherwise.
	x.locked = x.locked[:0]
	for ri := range p.rels {
		r := &p.rels[ri]
		if r.needsAll || len(r.parts) == 1 {
			x.relParts[ri] = r.parts
			for _, pt := range r.parts {
				pt.mu.RLock()
				x.locked = append(x.locked, pt)
			}
			continue
		}
		k := len(r.parts)
		if cap(x.needBuf) < k {
			x.needBuf = make([]bool, k)
		}
		need := x.needBuf[:k]
		for i := range need {
			need[i] = false
		}
		for _, cix := range r.routes {
			need[shardIndex(x.consts[cix], k)] = true
		}
		np := x.ownParts[ri][:0]
		for i := 0; i < k; i++ {
			if need[i] {
				r.parts[i].mu.RLock()
				x.locked = append(x.locked, r.parts[i])
				np = append(np, r.parts[i])
			}
		}
		x.ownParts[ri] = np
		x.relParts[ri] = np
	}

	// Probe resolution, under the read locks: for each step and part,
	// the first statically-bound column with a live hash index.
	for si := range p.steps {
		st := &p.steps[si]
		if st.route == routeConst {
			r := &p.rels[st.rel]
			x.singles[si][0] = r.parts[shardIndex(x.consts[st.routeIx], len(r.parts))]
			x.parts[si] = x.singles[si][:]
		} else {
			// routeFrame steps only arise when the relation needs every
			// part, so relParts is the full shard-ordered part list and
			// run() can index it by hash directly.
			x.parts[si] = x.relParts[st.rel]
		}
		pb := x.probes[si][:0]
		for _, pt := range x.parts[si] {
			var pr probeRef
			if useIndexes {
				for _, bc := range st.bound {
					if idx, ok := pt.indexes[bc.col]; ok {
						pr = probeRef{idx: idx, src: bc.src}
						break
					}
				}
			}
			pb = append(pb, pr)
		}
		x.probes[si] = pb
	}
	return x
}

// release unlocks every part and returns the exec to the plan's pool.
func (x *exec) release() {
	for i := len(x.locked) - 1; i >= 0; i-- {
		x.locked[i].mu.RUnlock()
	}
	x.results = nil
	x.fn = nil
	x.reuse = nil
	x.p.pool.Put(x)
}

// run executes the join from the given step, returning false when the
// caller should stop (limit reached, stream cancelled, existence
// proven).
func (x *exec) run(depth int) bool {
	if depth == len(x.p.steps) {
		return x.emit()
	}
	st := &x.p.steps[depth]
	parts := x.parts[depth]
	if st.route == routeFrame {
		i := shardIndex(x.frame[st.routeIx], len(parts))
		return x.runPart(depth, st, parts[i], x.probes[depth][i])
	}
	for i, pt := range parts {
		if !x.runPart(depth, st, pt, x.probes[depth][i]) {
			return false
		}
	}
	return true
}

func (x *exec) runPart(depth int, st *planStep, pt *Relation, pr probeRef) bool {
	if pr.idx != nil {
		var v eq.Value
		if pr.src.kind == opConst {
			v = x.consts[pr.src.ix]
		} else {
			v = x.frame[pr.src.ix]
		}
		for _, row := range pr.idx[v] {
			if x.match(st, pt.tuples[row]) && !x.run(depth+1) {
				return false
			}
		}
		return true
	}
	// No usable index: iterate the tuples directly — no candidate row
	// list is materialised (the seed evaluator allocated an O(|rel|)
	// []int per unindexed probe).
	for ti := range pt.tuples {
		if x.match(st, pt.tuples[ti]) && !x.run(depth+1) {
			return false
		}
	}
	return true
}

// match tests one tuple against a step. opBind writes are never undone:
// a slot is only read by steps that run strictly after the one that
// binds it, so stale values from a failed branch are overwritten before
// they can be observed.
func (x *exec) match(st *planStep, t Tuple) bool {
	for i, a := range st.args {
		switch a.kind {
		case opConst:
			if t[i] != x.consts[a.ix] {
				return false
			}
		case opCheck:
			if t[i] != x.frame[a.ix] {
				return false
			}
		default: // opBind
			x.frame[a.ix] = t[i]
		}
	}
	return true
}

// emit delivers one full assignment. Binding maps are materialised only
// here — the API boundary — never inside the join.
func (x *exec) emit() bool {
	if x.exists {
		x.found = true
		return false
	}
	if x.fn != nil {
		b := x.reuse
		for s, v := range x.frame {
			b[x.names[s]] = v
		}
		return x.fn(b)
	}
	b := make(Binding, len(x.frame))
	for s, v := range x.frame {
		b[x.names[s]] = v
	}
	x.results = append(x.results, b)
	return x.limit <= 0 || len(x.results) < x.limit
}

// solve runs the plan and materialises up to limit bindings (limit <= 0
// means all), with the same answer multiset as the seed evaluator.
func (p *plan) solve(body []eq.Atom, s *unify.Subst, limit int, useIndexes bool) []Binding {
	x := p.bind(body, s, useIndexes)
	x.limit = limit
	x.run(0)
	res := x.results
	x.release()
	return res
}

// stream runs the plan in streaming mode: every answer goes to fn in a
// Binding that is reused between calls; fn returns false to stop.
func (p *plan) stream(body []eq.Atom, useIndexes bool, fn func(Binding) bool) {
	x := p.bind(body, nil, useIndexes)
	x.fn = fn
	x.reuse = make(Binding, p.nSlots)
	x.run(0)
	x.release()
}

// satisfiable runs the plan in existence mode: no bindings are
// materialised at all.
func (p *plan) satisfiable(body []eq.Atom, useIndexes bool) bool {
	x := p.bind(body, nil, useIndexes)
	x.exists = true
	x.run(0)
	found := x.found
	x.release()
	return found
}
