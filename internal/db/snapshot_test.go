package db

import (
	"os"
	"path/filepath"
	"testing"

	"entangled/internal/eq"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	in := flightsInstance()
	if err := in.Save(dir); err != nil {
		t.Fatal(err)
	}
	back, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range in.RelationNames() {
		orig, _ := in.Relation(name)
		got, ok := back.Relation(name)
		if !ok {
			t.Fatalf("relation %s missing after load", name)
		}
		if got.Len() != orig.Len() || got.Arity() != orig.Arity() {
			t.Fatalf("%s shape: %dx%d vs %dx%d", name, got.Len(), got.Arity(), orig.Len(), orig.Arity())
		}
		for i := 0; i < orig.Len(); i++ {
			for j := range orig.Tuple(i) {
				if got.Tuple(i)[j] != orig.Tuple(i)[j] {
					t.Fatalf("%s tuple %d differs", name, i)
				}
			}
		}
		// Attribute names survive.
		for j, a := range orig.Attrs {
			if got.Attrs[j] != a {
				t.Fatalf("%s attrs: %v vs %v", name, got.Attrs, orig.Attrs)
			}
		}
	}
	// Queries behave identically on the reloaded instance.
	body := []eq.Atom{eq.NewAtom("Flights", eq.V("x"), eq.C("Zurich"))}
	a, _ := in.SolveAll(body, 0)
	b, _ := back.SolveAll(body, 0)
	if len(a) != len(b) {
		t.Fatalf("answers differ: %d vs %d", len(a), len(b))
	}
}

func TestSaveLoadPreservesIndexes(t *testing.T) {
	dir := t.TempDir()
	in := NewInstance()
	r := in.CreateRelation("R", "a", "b")
	r.Insert("1", "x")
	r.BuildIndex(1)
	if err := in.Save(dir); err != nil {
		t.Fatal(err)
	}
	back, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	rel, _ := back.Relation("R")
	if _, ok := rel.indexes[1]; !ok {
		t.Fatal("index on column 1 must survive the round trip")
	}
	// LoadCSV indexes every column; the manifest narrows it back down —
	// either way column 1 works through Solve.
	bnd, ok, err := back.Solve([]eq.Atom{eq.NewAtom("R", eq.V("k"), eq.C("x"))})
	if err != nil || !ok || bnd["k"] != "1" {
		t.Fatalf("solve on reloaded index: %v %v %v", bnd, ok, err)
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing dir must fail")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil {
		t.Fatal("bad manifest must fail")
	}
}

func TestSaveEmptyRelation(t *testing.T) {
	dir := t.TempDir()
	in := NewInstance()
	in.CreateRelation("Empty", "a", "b")
	if err := in.Save(dir); err != nil {
		t.Fatal(err)
	}
	back, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	rel, ok := back.Relation("Empty")
	if !ok || rel.Len() != 0 || rel.Arity() != 2 {
		t.Fatalf("empty relation round trip: %v", rel)
	}
}
