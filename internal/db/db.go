package db

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"entangled/internal/eq"
)

// Tuple is a database row.
type Tuple []eq.Value

// Relation is a named table with a fixed arity and optional per-column
// hash indexes. A Relation is safe for concurrent use: readers share an
// RWMutex, so any number of queries may scan it while mutations (Insert,
// BuildIndex, DeleteWhere) are serialised. Name and Attrs must not be
// changed once the relation is visible to other goroutines.
type Relation struct {
	Name  string
	Attrs []string // attribute names; len(Attrs) is the arity

	mu      sync.RWMutex
	tuples  []Tuple
	indexes map[int]map[eq.Value][]int // column -> value -> row numbers

	// version counts structural changes (BuildIndex); compiled plans
	// record it and retire themselves when it moves. Inserts do not
	// bump it: growing data never invalidates a plan's access paths.
	version atomic.Uint64
}

// NewRelation creates an empty relation with the given attribute names.
func NewRelation(name string, attrs ...string) *Relation {
	return &Relation{
		Name:    name,
		Attrs:   attrs,
		indexes: map[int]map[eq.Value][]int{},
	}
}

// Arity returns the number of columns.
func (r *Relation) Arity() int { return len(r.Attrs) }

// Len returns the number of tuples.
func (r *Relation) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.tuples)
}

// Insert appends a tuple; it must match the relation's arity.
func (r *Relation) Insert(vals ...eq.Value) {
	if len(vals) != len(r.Attrs) {
		panic(fmt.Sprintf("db: %s expects %d columns, got %d", r.Name, len(r.Attrs), len(vals)))
	}
	t := make(Tuple, len(vals))
	copy(t, vals)
	r.mu.Lock()
	defer r.mu.Unlock()
	row := len(r.tuples)
	r.tuples = append(r.tuples, t)
	for col, idx := range r.indexes {
		idx[t[col]] = append(idx[t[col]], row)
	}
}

// BuildIndex creates (or rebuilds) a hash index on the given column.
// It invalidates any compiled plan that touches this relation (plans
// resolve their index probes against the relation's version).
func (r *Relation) BuildIndex(col int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buildIndexLocked(col)
	r.version.Add(1)
}

func (r *Relation) buildIndexLocked(col int) {
	idx := map[eq.Value][]int{}
	for row, t := range r.tuples {
		idx[t[col]] = append(idx[t[col]], row)
	}
	r.indexes[col] = idx
}

// Tuple returns the i-th tuple (shared, do not mutate).
func (r *Relation) Tuple(i int) Tuple {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.tuples[i]
}

// Distinct returns the distinct value combinations over the given
// columns, in first-appearance order.
func (r *Relation) Distinct(cols []int) []Tuple {
	r.mu.RLock()
	defer r.mu.RUnlock()
	seen := make(map[string]struct{}, len(r.tuples))
	var key []byte
	var out []Tuple
	for _, t := range r.tuples {
		key = appendTupleKey(key[:0], t, cols)
		if _, dup := seen[string(key)]; dup {
			continue
		}
		seen[string(key)] = struct{}{}
		proj := make(Tuple, len(cols))
		for i, c := range cols {
			proj[i] = t[c]
		}
		out = append(out, proj)
	}
	return out
}

// appendTupleKey appends an unambiguous, allocation-free dedup key for
// the projected columns: each value length-prefixed, so no separator
// byte can collide with value content (values are arbitrary strings).
// The seed built the key with string concatenation in a loop —
// quadratic in the key length — and materialised a projected tuple for
// every row, distinct or not.
func appendTupleKey(key []byte, t Tuple, cols []int) []byte {
	for _, c := range cols {
		key = strconv.AppendInt(key, int64(len(t[c])), 10)
		key = append(key, ':')
		key = append(key, t[c]...)
	}
	return key
}

// Instance is a database instance: a set of relations plus counters that
// experiments read.
//
// An Instance is safe for concurrent use: the relation registry is
// guarded by an RWMutex, every relation carries its own RWMutex, and the
// query counter is atomic, so many goroutines may issue queries against
// one shared instance (the concurrent-engine serving path) while
// mutations are serialised. The UseIndexes and SimulatedLatency knobs
// are configuration: set them before sharing the instance across
// goroutines.
type Instance struct {
	mu   sync.RWMutex
	rels map[string]*Relation

	// UseIndexes controls whether the evaluator consults hash indexes;
	// turning it off degrades lookups to scans (used by the ablation
	// benchmarks).
	UseIndexes bool

	// SimulatedLatency, when non-zero, is added to every database query
	// to model the per-round-trip cost of a networked SQL server (the
	// paper's prototypes talk to MySQL over JDBC, where this cost
	// dominates and makes the reported curves linear in the number of
	// queries). Off by default; cmd/coordbench exposes it as -latency.
	SimulatedLatency time.Duration

	// DisableCompiledPlans routes every query through the seed
	// backtracking evaluator instead of compiled plans. Answers are
	// identical (the equivalence property tests prove it); the knob
	// exists for ablation benchmarks and as an escape hatch. Configure
	// before sharing the instance across goroutines.
	DisableCompiledPlans bool

	queries int64 // number of conjunctive queries answered (atomic)

	// version counts schema changes (AddRelation/CreateRelation);
	// compiled plans record it and retire themselves when it moves.
	version atomic.Uint64
	plans   planCache
}

// NewInstance returns an empty database instance with indexing enabled.
func NewInstance() *Instance {
	return &Instance{rels: map[string]*Relation{}, UseIndexes: true}
}

// AddRelation registers a relation; it replaces any previous relation of
// the same name. It invalidates every compiled plan (plans hold
// resolved relation pointers).
func (in *Instance) AddRelation(r *Relation) {
	in.mu.Lock()
	in.rels[r.Name] = r
	in.mu.Unlock()
	in.version.Add(1)
}

// CreateRelation creates, registers and returns an empty relation.
func (in *Instance) CreateRelation(name string, attrs ...string) *Relation {
	r := NewRelation(name, attrs...)
	in.AddRelation(r)
	return r
}

// Relation looks up a relation by name.
func (in *Instance) Relation(name string) (*Relation, bool) {
	in.mu.RLock()
	defer in.mu.RUnlock()
	r, ok := in.rels[name]
	return r, ok
}

// Schema returns relation name -> arity for every relation.
func (in *Instance) Schema() map[string]int {
	in.mu.RLock()
	defer in.mu.RUnlock()
	out := map[string]int{}
	for n, r := range in.rels {
		out[n] = r.Arity()
	}
	return out
}

// RelationNames returns the sorted relation names.
func (in *Instance) RelationNames() []string {
	in.mu.RLock()
	defer in.mu.RUnlock()
	var out []string
	for n := range in.rels {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// QueriesIssued returns how many conjunctive queries have been answered
// since the last ResetCounters.
func (in *Instance) QueriesIssued() int64 { return atomic.LoadInt64(&in.queries) }

// ResetCounters zeroes the query counter.
func (in *Instance) ResetCounters() { atomic.StoreInt64(&in.queries, 0) }

func (in *Instance) countQuery() {
	atomic.AddInt64(&in.queries, 1)
	if in.SimulatedLatency > 0 {
		time.Sleep(in.SimulatedLatency)
	}
}

// Domain returns every constant appearing anywhere in the instance,
// sorted. Coordinating-set assignments draw values from this domain.
func (in *Instance) Domain() []eq.Value {
	in.mu.RLock()
	rels := make([]*Relation, 0, len(in.rels))
	for _, r := range in.rels {
		rels = append(rels, r)
	}
	in.mu.RUnlock()
	seen := map[eq.Value]bool{}
	for _, r := range rels {
		r.mu.RLock()
		for _, t := range r.tuples {
			for _, v := range t {
				seen[v] = true
			}
		}
		r.mu.RUnlock()
	}
	out := make([]eq.Value, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
