package stream_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"strconv"
	"sync"
	"testing"

	"entangled/internal/coord"
	"entangled/internal/db"
	"entangled/internal/eq"
	"entangled/internal/stream"
	"entangled/internal/workload"
)

// checkSessionMatchesBatch compares a quiesced session's entire
// observable state with a fresh batch SCCCoordinate over the session's
// live queries: team, witness values (verified against Definition 1),
// the full trace, and the cost contract — the marginal event cost never
// exceeds the batch cost, and reading the result costs nothing.
func checkSessionMatchesBatch(t *testing.T, s *stream.Session, store db.Store, label string) {
	t.Helper()
	qs := s.Queries()

	before := store.QueriesIssued()
	got, err := s.Result()
	tr := s.Trace()
	if err != nil {
		t.Fatalf("%s: session result: %v", label, err)
	}
	if issued := store.QueriesIssued() - before; issued != 0 {
		t.Fatalf("%s: reading a quiesced session cost %d queries", label, issued)
	}

	btr := &coord.Trace{}
	want, err := coord.SCCCoordinate(qs, store, coord.Options{Trace: btr})
	if err != nil {
		t.Fatalf("%s: batch: %v", label, err)
	}
	if (got == nil) != (want == nil) {
		t.Fatalf("%s: result presence: session %v, batch %v", label, got, want)
	}
	if got != nil {
		if !reflect.DeepEqual(got.Set, want.Set) {
			t.Fatalf("%s: team %v != %v", label, got.Set, want.Set)
		}
		if !reflect.DeepEqual(got.Values, want.Values) {
			t.Fatalf("%s: values %v != %v", label, got.Values, want.Values)
		}
		if err := coord.Verify(qs, got.Set, got.Values, store); err != nil {
			t.Fatalf("%s: session witness fails Definition 1: %v", label, err)
		}
		if got.DBQueries > want.DBQueries {
			t.Fatalf("%s: marginal event cost %d exceeds batch cost %d", label, got.DBQueries, want.DBQueries)
		}
	}
	if !reflect.DeepEqual(tr.Pruned, btr.Pruned) && !(len(tr.Pruned) == 0 && len(btr.Pruned) == 0) {
		t.Fatalf("%s: pruned %v != %v", label, tr.Pruned, btr.Pruned)
	}
	if len(tr.Components) != len(btr.Components) {
		t.Fatalf("%s: %d components != %d", label, len(tr.Components), len(btr.Components))
	}
	for i := range tr.Components {
		if !reflect.DeepEqual(tr.Components[i], btr.Components[i]) {
			t.Fatalf("%s: component %d:\nsession %+v\nbatch   %+v", label, i, tr.Components[i], btr.Components[i])
		}
	}
}

// TestSessionMatchesBatchProperty is the stream-vs-batch equivalence
// property test: across shard counts K=1,2,8 and many random
// interleavings of joins and leaves, a quiesced session reports the
// same team, witness values and trace as batch SCCCoordinate on the
// final set, for no more database queries per event than the batch run
// costs.
func TestSessionMatchesBatchProperty(t *testing.T) {
	const rows = 32
	for _, shards := range []int{1, 2, 8} {
		for seed := int64(0); seed < 4; seed++ {
			store := workload.NewStore(shards, rows, 0)
			s := stream.New(store, stream.Options{})
			arrivals := workload.Arrivals(workload.Churn, 48, rows, seed)
			for i, a := range arrivals {
				if _, err := s.Apply(toEvent(a)); err != nil {
					t.Fatalf("shards=%d seed=%d event %d (%v): %v", shards, seed, i, toEvent(a), err)
				}
			}
			checkSessionMatchesBatch(t, s, store,
				fmt.Sprintf("shards=%d seed=%d", shards, seed))
		}
	}
}

// TestSessionMatchesBatchEveryEvent quiesces after every single event
// on one shard count, catching divergence at the exact event that
// introduces it.
func TestSessionMatchesBatchEveryEvent(t *testing.T) {
	const rows = 16
	store := workload.NewStore(1, rows, 0)
	s := stream.New(store, stream.Options{})
	for i, a := range workload.Arrivals(workload.Churn, 40, rows, 99) {
		if _, err := s.Apply(toEvent(a)); err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		checkSessionMatchesBatch(t, s, store, fmt.Sprintf("event %d (%v)", i, toEvent(a)))
	}
}

// TestSessionDepartureReordersComponents pins the cache-key regression:
// forward-posting queries arrive in an order that gives Tarjan a
// different component numbering once one of them departs, so a
// surviving component's reachable SET is unchanged while its assembly
// ORDER is not. The outcome cache is keyed on the ordered sequence, so
// this must re-solve (not splice a stale outcome) and stay
// byte-for-byte equal to batch — including the rendered combined query
// and the witness.
func TestSessionDepartureReordersComponents(t *testing.T) {
	store := chainStore(4)
	mk := func(id, user string, posts ...string) eq.Query {
		q := eq.Query{
			ID:   id,
			Head: []eq.Atom{eq.NewAtom("R", eq.C(eq.Value(user)), eq.V("x"))},
			Body: []eq.Atom{eq.NewAtom("T", eq.V("z"+user), eq.C("c0"))},
		}
		for i, p := range posts {
			q.Post = append(q.Post, eq.NewAtom("R", eq.C(eq.Value(p)), eq.V("y"+strconv.Itoa(i))))
		}
		return q
	}
	s := stream.New(store, stream.Options{})
	for _, q := range []eq.Query{
		mk("d", "D", "A"),
		mk("c", "C", "B", "A"),
		mk("a", "A"),
		mk("b", "B"),
	} {
		if _, err := s.Join(q); err != nil {
			t.Fatal(err)
		}
	}
	checkSessionMatchesBatch(t, s, store, "before departure")
	if _, err := s.Leave("d"); err != nil {
		t.Fatal(err)
	}
	checkSessionMatchesBatch(t, s, store, "after departure")
}

// TestSessionConcurrentWritersThenRefresh interleaves store writers
// with session events, then pauses them and Refreshes: the session must
// resynchronise to exactly the batch answer over the final store. The
// test runs under -race in CI, so it also proves the session and the
// store tolerate genuinely concurrent readers and writers.
func TestSessionConcurrentWritersThenRefresh(t *testing.T) {
	const rows = 16
	in := db.NewInstance()
	tab := in.CreateRelation("T", "key", "val")
	for i := 0; i < rows; i++ {
		tab.Insert(eq.Value("t"+strconv.Itoa(i)), eq.Value("c"+strconv.Itoa(i)))
	}
	tab.BuildIndex(1)

	s := stream.New(in, stream.Options{})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // concurrent writer: grows T while the session works
		defer wg.Done()
		rng := rand.New(rand.NewSource(1))
		for n := 0; ; n++ {
			select {
			case <-stop:
				return
			default:
			}
			tab.Insert(eq.Value(fmt.Sprintf("w%d", n)), eq.Value("c"+strconv.Itoa(rng.Intn(rows))))
		}
	}()
	for i, a := range workload.Arrivals(workload.Steady, 64, rows, 5) {
		if _, err := s.Apply(toEvent(a)); err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait() // writers paused

	if _, err := s.Refresh(); err != nil {
		t.Fatal(err)
	}
	checkSessionMatchesBatch(t, s, in, "after refresh")
}
