package stream

import (
	"encoding/json"
	"reflect"
	"testing"

	"entangled/internal/eq"
)

func TestEventJSONRoundTrip(t *testing.T) {
	join := Event{Kind: JoinEvent, Query: eq.Query{
		ID:   "u1",
		Post: []eq.Atom{eq.NewAtom("R", eq.C("U2"), eq.V("y"))},
		Head: []eq.Atom{eq.NewAtom("R", eq.C("U1"), eq.V("x"))},
		Body: []eq.Atom{eq.NewAtom("T", eq.V("x"), eq.C("c0"))},
	}}
	leave := Event{Kind: LeaveEvent, ID: "u1"}
	for _, ev := range []Event{join, leave} {
		data, err := json.Marshal(ev)
		if err != nil {
			t.Fatal(err)
		}
		var back Event
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("decoding %s: %v", data, err)
		}
		if !reflect.DeepEqual(back, ev) {
			t.Fatalf("round trip changed %v into %v (wire %s)", ev, back, data)
		}
	}
}

func TestEventJSONRejectsMalformed(t *testing.T) {
	for _, raw := range []string{
		`{"k":"nope"}`,
		`{"k":"join"}`,
		`{"k":"leave"}`,
		`{`,
	} {
		var ev Event
		if err := json.Unmarshal([]byte(raw), &ev); err == nil {
			t.Fatalf("malformed event %s decoded as %v", raw, ev)
		}
	}
	if _, err := json.Marshal(Event{Kind: 9}); err == nil {
		t.Fatal("unknown kind encoded")
	}
}
