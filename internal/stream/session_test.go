package stream_test

import (
	"context"
	"errors"
	"strconv"
	"sync"
	"testing"

	"entangled/internal/coord"
	"entangled/internal/db"
	"entangled/internal/eq"
	"entangled/internal/stream"
	"entangled/internal/workload"
)

// toEvent converts a generated workload arrival into a session event.
func toEvent(a workload.Arrival) stream.Event {
	if a.Leave {
		return stream.Event{Kind: stream.LeaveEvent, ID: a.ID}
	}
	return stream.Event{Kind: stream.JoinEvent, Query: a.Query}
}

func chainStore(rows int) *db.Instance {
	in := db.NewInstance()
	t := in.CreateRelation("T", "key", "val")
	for i := 0; i < rows; i++ {
		t.Insert(eq.Value("t"+strconv.Itoa(i)), eq.Value("c"+strconv.Itoa(i)))
	}
	t.BuildIndex(1)
	return in
}

func TestSessionJoinLeave(t *testing.T) {
	s := stream.New(chainStore(4), stream.Options{})
	for i := 0; i < 4; i++ {
		up, err := s.Join(workload.ChainQuery(0, i, 4))
		if err != nil {
			t.Fatal(err)
		}
		if !up.Admitted || up.TeamSize != i+1 {
			t.Fatalf("join %d: %+v", i, up)
		}
		if up.Stats.Dirty != 1 {
			t.Fatalf("chain join %d dirtied %d components", i, up.Stats.Dirty)
		}
	}
	if s.Size() != 4 {
		t.Fatalf("size %d", s.Size())
	}
	// Departing the tail shrinks the team by one; nothing else is dirty.
	up, err := s.Leave("c0.u3")
	if err != nil {
		t.Fatal(err)
	}
	if !up.Admitted || up.TeamSize != 3 {
		t.Fatalf("leave: %+v", up)
	}
	if _, err := s.Leave("c0.u3"); !errors.Is(err, stream.ErrUnknownID) {
		t.Fatalf("double leave: %v", err)
	}
	if _, err := s.Join(workload.ChainQuery(0, 2, 4)); !errors.Is(err, stream.ErrDuplicateID) {
		t.Fatalf("duplicate join: %v", err)
	}
}

func TestSessionInteriorLeavePrunesSuffix(t *testing.T) {
	s := stream.New(chainStore(4), stream.Options{})
	for i := 0; i < 5; i++ {
		if _, err := s.Join(workload.ChainQuery(0, i, 4)); err != nil {
			t.Fatal(err)
		}
	}
	// Removing u1 strands u2's postcondition; the cascade prunes u2,
	// u3, u4 and the team collapses to {u0}.
	up, err := s.Leave("c0.u1")
	if err != nil {
		t.Fatal(err)
	}
	if up.TeamSize != 1 {
		t.Fatalf("team after interior leave: %+v", up)
	}
	tr := s.Trace()
	if len(tr.Pruned) != 3 {
		t.Fatalf("pruned %v", tr.Pruned)
	}
}

func TestSessionParkUnsafe(t *testing.T) {
	mk := func(id, user string, post string) eq.Query {
		q := eq.Query{
			ID:   id,
			Head: []eq.Atom{eq.NewAtom("R", eq.C(eq.Value(user)), eq.V("x"))},
			Body: []eq.Atom{eq.NewAtom("T", eq.V("x"), eq.C("c0"))},
		}
		if post != "" {
			q.Post = []eq.Atom{eq.NewAtom("R", eq.C(eq.Value(post)), eq.V("y"))}
		}
		return q
	}
	s := stream.New(chainStore(1), stream.Options{ParkUnsafe: true})
	if _, err := s.Join(mk("a", "A", "")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Join(mk("b", "A", "")); err != nil {
		t.Fatal(err)
	}
	// c posts to user A, who has two heads: unsafe, parked.
	up, err := s.Join(mk("c", "C", "A"))
	if err != nil || !up.Parked {
		t.Fatalf("want parked, got %+v err %v", up, err)
	}
	if s.ParkedCount() != 1 || s.Size() != 2 {
		t.Fatalf("parked %d size %d", s.ParkedCount(), s.Size())
	}
	// b departs; the retry admits c and the team becomes {a, c}.
	up, err = s.Leave("b")
	if err != nil {
		t.Fatal(err)
	}
	if s.ParkedCount() != 0 || s.Size() != 2 || up.TeamSize != 2 {
		t.Fatalf("after departure: parked %d size %d update %+v", s.ParkedCount(), s.Size(), up)
	}
}

// TestSessionParkedIDReservation: a parked arrival reserves its ID —
// joins reusing it are rejected (live or parked holder alike), so a
// departure's retry can never admit a query over another holder or
// resurrect a double-parked copy.
func TestSessionParkedIDReservation(t *testing.T) {
	head := func(id, user string) eq.Query {
		return eq.Query{
			ID:   id,
			Head: []eq.Atom{eq.NewAtom("R", eq.C(eq.Value(user)), eq.V("x"))},
			Body: []eq.Atom{eq.NewAtom("T", eq.V("x"), eq.C("c0"))},
		}
	}
	poster := func(id, user, to string) eq.Query {
		q := head(id, user)
		q.Post = []eq.Atom{eq.NewAtom("R", eq.C(eq.Value(to)), eq.V("y"))}
		return q
	}
	s := stream.New(chainStore(1), stream.Options{ParkUnsafe: true})
	if _, err := s.Join(head("a", "A")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Join(head("b", "A")); err != nil {
		t.Fatal(err)
	}
	// "x" posts to the doubly-headed user A: unsafe, parked.
	if up, err := s.Join(poster("x", "X", "A")); err != nil || !up.Parked {
		t.Fatalf("want parked: %+v %v", up, err)
	}
	// The parked "x" reserves the ID: both a second unsafe copy and a
	// perfectly safe query reusing it are duplicates.
	if _, err := s.Join(poster("x", "X", "A")); !errors.Is(err, stream.ErrDuplicateID) {
		t.Fatalf("double-park allowed: %v", err)
	}
	if _, err := s.Join(head("x", "Y")); !errors.Is(err, stream.ErrDuplicateID) {
		t.Fatalf("live join over a parked ID allowed: %v", err)
	}
	if s.ParkedCount() != 1 || s.Size() != 2 {
		t.Fatalf("parked=%d size=%d", s.ParkedCount(), s.Size())
	}
	// The departure clears the conflict and the single parked copy lands.
	if _, err := s.Leave("b"); err != nil {
		t.Fatal(err)
	}
	if s.ParkedCount() != 0 || s.Size() != 2 {
		t.Fatalf("after departure: parked=%d size=%d", s.ParkedCount(), s.Size())
	}
}

func TestSessionRejectUnsafeWithoutParking(t *testing.T) {
	s := stream.New(chainStore(1), stream.Options{})
	head := func(id string) eq.Query {
		return eq.Query{
			ID:   id,
			Head: []eq.Atom{eq.NewAtom("R", eq.C("A"), eq.V("x"))},
			Body: []eq.Atom{eq.NewAtom("T", eq.V("x"), eq.C("c0"))},
		}
	}
	if _, err := s.Join(head("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Join(head("b")); err != nil {
		t.Fatal(err)
	}
	q := eq.Query{
		ID:   "c",
		Post: []eq.Atom{eq.NewAtom("R", eq.C("A"), eq.V("y"))},
		Head: []eq.Atom{eq.NewAtom("R", eq.C("C"), eq.V("x"))},
		Body: []eq.Atom{eq.NewAtom("T", eq.V("x"), eq.C("c0"))},
	}
	if _, err := s.Join(q); !errors.Is(err, coord.ErrUnsafeArrival) {
		t.Fatalf("want ErrUnsafeArrival, got %v", err)
	}
	if tot := s.Totals(); tot.Rejected != 1 {
		t.Fatalf("totals %+v", tot)
	}
}

// TestSessionStoreErrorStaysConsistent: a store error mid-pass (a body
// over an unknown relation, surfacing in the dirty component's
// grounding query when pruning is skipped) must not desynchronise the
// session — the offending query stays tracked, can be departed, and
// the session heals.
func TestSessionStoreErrorStaysConsistent(t *testing.T) {
	s := stream.New(chainStore(2), stream.Options{
		Coord: coord.Options{SkipPruning: true},
	})
	if _, err := s.Join(workload.ChainQuery(0, 0, 2)); err != nil {
		t.Fatal(err)
	}
	bad := eq.Query{
		ID:   "bad",
		Head: []eq.Atom{eq.NewAtom("R", eq.C("B"), eq.V("x"))},
		Body: []eq.Atom{eq.NewAtom("Nope", eq.V("x"))},
	}
	if _, err := s.Join(bad); err == nil {
		t.Fatal("want a store error for an unknown relation")
	}
	// The query committed before the pass failed: it is live, visible,
	// and — critically — removable.
	if s.Size() != 2 {
		t.Fatalf("size %d after failed pass", s.Size())
	}
	if _, err := s.Join(bad); !errors.Is(err, stream.ErrDuplicateID) {
		t.Fatalf("ID of the failed join not reserved: %v", err)
	}
	if _, err := s.Leave("bad"); err != nil {
		t.Fatalf("failed join cannot be departed: %v", err)
	}
	if s.Size() != 1 {
		t.Fatalf("size %d after departure", s.Size())
	}
	// The session is healthy again: new events coordinate normally.
	up, err := s.Join(workload.ChainQuery(0, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if up.TeamSize != 2 {
		t.Fatalf("team %d after recovery", up.TeamSize)
	}
}

// TestSessionRunDrains feeds a generated arrival sequence through Run
// and checks the channel-driven path matches direct Apply calls.
func TestSessionRunDrains(t *testing.T) {
	arrivals := workload.Arrivals(workload.Churn, 60, 8, 42)

	direct := stream.New(chainStore(8), stream.Options{})
	for _, a := range arrivals {
		_, _ = direct.Apply(toEvent(a))
	}

	var updates []stream.Update
	run := stream.New(chainStore(8), stream.Options{
		OnUpdate: func(u stream.Update) { updates = append(updates, u) },
	})
	events := make(chan stream.Event)
	go func() {
		defer close(events)
		for _, a := range arrivals {
			events <- toEvent(a)
		}
	}()
	totals, err := run.Run(context.Background(), events)
	if err != nil {
		t.Fatal(err)
	}
	if totals != direct.Totals() {
		t.Fatalf("totals diverge:\nrun    %+v\ndirect %+v", totals, direct.Totals())
	}
	if len(updates) != len(arrivals) {
		t.Fatalf("%d updates for %d events", len(updates), len(arrivals))
	}
	for i, u := range updates {
		if u.Seq != i+1 {
			t.Fatalf("update %d has seq %d", i, u.Seq)
		}
	}
}

// TestSessionRunGracefulCancel cancels mid-stream and checks the drain
// contract: Run returns ctx.Err(), every update that was issued is
// complete and ordered, and the session remains usable afterwards.
func TestSessionRunGracefulCancel(t *testing.T) {
	arrivals := workload.Arrivals(workload.Steady, 200, 8, 7)
	ctx, cancel := context.WithCancel(context.Background())

	var mu sync.Mutex
	var seen int
	s := stream.New(chainStore(8), stream.Options{
		OnUpdate: func(u stream.Update) {
			mu.Lock()
			seen++
			if seen == 50 {
				cancel() // cancel from inside event 50: events stay atomic
			}
			mu.Unlock()
		},
	})
	events := make(chan stream.Event)
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer close(events)
		for _, a := range arrivals {
			select {
			case events <- toEvent(a):
			case <-ctx.Done():
				return
			}
		}
	}()
	totals, err := s.Run(ctx, events)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	<-done
	if totals.Events < 50 {
		t.Fatalf("cancelled before the in-flight event finished: %+v", totals)
	}
	// The session still accepts events after a cancelled Run.
	if _, err := s.Join(workload.ChainQuery(900, 0, 8)); err != nil {
		t.Fatal(err)
	}
}
