package stream_test

import (
	"fmt"
	"strconv"
	"testing"

	"entangled/internal/eq"
	"entangled/internal/stream"
	"entangled/internal/workload"
)

// TestSessionCompactionPreservesBatchEquivalence is the slot-compaction
// property test: under high churn with an aggressive threshold (compact
// after every 2 tombstones), a session must stay byte-for-byte
// batch-equivalent after every single event — team, witness values and
// trace — and every departed ID must stay leave-able through the
// renumbering. The aggressive threshold makes compaction fire dozens of
// times per run instead of once at the end.
func TestSessionCompactionPreservesBatchEquivalence(t *testing.T) {
	const rows = 16
	for _, shards := range []int{1, 2} {
		for seed := int64(0); seed < 3; seed++ {
			store := workload.NewStore(shards, rows, 0)
			s := stream.New(store, stream.Options{CompactAfter: 2})
			for i, a := range workload.Arrivals(workload.Churn, 48, rows, seed) {
				if _, err := s.Apply(toEvent(a)); err != nil {
					t.Fatalf("shards=%d seed=%d event %d (%v): %v", shards, seed, i, toEvent(a), err)
				}
				if got := s.Tombstones(); got >= 2 {
					t.Fatalf("shards=%d seed=%d event %d: %d tombstones survived threshold 2", shards, seed, i, got)
				}
				checkSessionMatchesBatch(t, s, store,
					fmt.Sprintf("compact shards=%d seed=%d event %d", shards, seed, i))
			}
		}
	}
}

// TestSessionCompactionKeepsIDsLeavable pins the remap contract: after
// a forced compaction the ID index must point at the renumbered slots,
// so every live query can still depart.
func TestSessionCompactionKeepsIDsLeavable(t *testing.T) {
	const rows = 8
	store := workload.NewStore(1, rows, 0)
	s := stream.New(store, stream.Options{CompactAfter: -1}) // manual only
	for i := 0; i < 6; i++ {
		q := eq.Query{
			ID:   "q" + strconv.Itoa(i),
			Head: []eq.Atom{eq.NewAtom("R", eq.C(eq.Value("U"+strconv.Itoa(i))), eq.V("x"))},
			Body: []eq.Atom{eq.NewAtom("T", eq.V("k"), eq.C(eq.Value("c"+strconv.Itoa(i%rows))))},
		}
		if _, err := s.Join(q); err != nil {
			t.Fatal(err)
		}
	}
	// Punch holes, then compact.
	for _, id := range []string{"q0", "q2", "q4"} {
		if _, err := s.Leave(id); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Tombstones(); got != 3 {
		t.Fatalf("tombstones = %d, want 3 (auto-compaction disabled)", got)
	}
	if _, err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := s.Tombstones(); got != 0 {
		t.Fatalf("tombstones after compact = %d, want 0", got)
	}
	checkSessionMatchesBatch(t, s, store, "after manual compact")
	// The survivors must still be addressable by ID.
	for _, id := range []string{"q1", "q3", "q5"} {
		if _, err := s.Leave(id); err != nil {
			t.Fatalf("leave %s after compaction: %v", id, err)
		}
	}
	if got := s.Size(); got != 0 {
		t.Fatalf("size after draining = %d, want 0", got)
	}
}
