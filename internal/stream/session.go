package stream

import (
	"context"
	"errors"
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"time"

	"entangled/internal/coord"
	"entangled/internal/db"
	"entangled/internal/eq"
)

// ErrDuplicateID is returned by Join when a live query with the same ID
// is already in the session.
var ErrDuplicateID = errors.New("stream: duplicate query ID")

// ErrUnknownID is returned by Leave for an ID with no live query.
var ErrUnknownID = errors.New("stream: unknown query ID")

// DefaultCompactAfter is the slot-compaction threshold used when
// Options.CompactAfter is zero: a session compacts once 64 dead slots
// have accumulated. Compaction is amortised (a hash-table-resize
// shape): its one-off batch-grounding cost is spread over the
// departures that created the garbage.
const DefaultCompactAfter = 64

// EventKind discriminates stream events.
type EventKind uint8

const (
	// JoinEvent carries an arriving query.
	JoinEvent EventKind = iota
	// LeaveEvent names a departing query by ID.
	LeaveEvent
)

// Event is one unit of streaming input: a query joining the session or
// a previously joined query leaving it.
type Event struct {
	Kind  EventKind
	Query eq.Query // Join: the arriving query
	ID    string   // Leave: the departing query's ID
}

// String renders the event compactly for logs.
func (e Event) String() string {
	if e.Kind == JoinEvent {
		return "join " + e.Query.ID
	}
	return "leave " + e.ID
}

// Update reports the outcome of one processed event.
type Update struct {
	// Seq numbers events in processing order, starting at 1.
	Seq int
	// Event is the input that produced this update.
	Event Event
	// Admitted is true when the event changed the session (a join was
	// accepted, or a leave found its query).
	Admitted bool
	// Parked is true when an unsafe arrival was parked for retry
	// (Options.ParkUnsafe) instead of rejected.
	Parked bool
	// AdmittedParked lists the IDs of previously parked arrivals this
	// event's retry pass admitted, in arrival order. Only departures
	// populate it (a departure is the only event that can clear the
	// fanout conflict that parked them); the server's push layer turns
	// each entry into a notification to subscribed clients.
	AdmittedParked []string
	// Err carries the rejection or failure; admission rejections wrap
	// coord.ErrUnsafeArrival.
	Err error
	// Stats is the event's incremental cost (zero when not admitted).
	Stats coord.DeltaStats
	// TeamSize is the size of the currently selected coordinating set
	// after the event (0 when nothing grounds).
	TeamSize int
	// Elapsed is the wall-clock time the session spent on the event,
	// including any parked retries it triggered.
	Elapsed time.Duration
}

// Totals accumulates session-lifetime statistics.
type Totals struct {
	Events    int   // processed events (including rejected ones)
	Joins     int   // admitted arrivals
	Leaves    int   // admitted departures
	Rejected  int   // unsafe arrivals rejected
	Parked    int   // unsafe arrivals parked (may later be admitted)
	Dirty     int   // components re-solved across all events
	Reused    int   // components spliced from cache across all events
	DBQueries int64 // database queries across all events
}

// Options configures a Session.
type Options struct {
	// Coord carries the coordination configuration (selector, pruning
	// and safety toggles) applied to the session's incremental state;
	// Trace, IncrementalUnify and Parallelism are ignored.
	Coord coord.Options
	// ParkUnsafe parks arrivals that would make the set unsafe instead
	// of rejecting them; parked queries are retried after each
	// departure.
	ParkUnsafe bool
	// CompactAfter sets the slot-compaction threshold: once the number
	// of dead slots (departed queries) reaches it, the session compacts
	// — live queries are renumbered into dense slots so per-event graph
	// work stays O(live queries) instead of O(total slots ever). Zero
	// selects DefaultCompactAfter; negative disables compaction.
	// Compaction cost is folded into the triggering event's Update.Stats
	// so per-event metering stays exact, and a compacted session remains
	// byte-for-byte batch-equivalent (see coord.(*Incremental).Compact).
	CompactAfter int
	// OnUpdate, when non-nil, observes every processed event (called
	// synchronously from the processing goroutine, in order, with the
	// session lock held — the callback must not call back into the
	// Session, or it will deadlock; read the Update it is handed
	// instead).
	OnUpdate func(Update)
}

// Session is a streaming coordination session over a shared store. All
// methods are safe for concurrent use; events are serialised on an
// internal lock, so updates observe a total order.
type Session struct {
	opts Options

	mu     sync.Mutex
	inc    *coord.Incremental
	byID   map[string]int // live query ID -> slot
	parked []eq.Query
	seq    int
	totals Totals
}

// New opens an empty session over store.
func New(store db.Store, opts Options) *Session {
	return &Session{
		opts: opts,
		inc:  coord.NewIncremental(store, opts.Coord),
		byID: map[string]int{},
	}
}

// Join admits one arriving query. The returned update reports the
// event's incremental cost; admission failures (unsafe arrival,
// duplicate ID) come back in both the update and the error.
func (s *Session) Join(q eq.Query) (Update, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.process(Event{Kind: JoinEvent, Query: q})
}

// Leave departs the live query with the given ID. Parked queries are
// retried afterwards: a departure is the only event that can clear the
// fanout conflict that parked them.
func (s *Session) Leave(id string) (Update, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.process(Event{Kind: LeaveEvent, ID: id})
}

// Apply processes one event of either kind.
func (s *Session) Apply(ev Event) (Update, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.process(ev)
}

// process handles one event under the lock.
func (s *Session) process(ev Event) (Update, error) {
	start := time.Now()
	s.seq++
	up := Update{Seq: s.seq, Event: ev}
	switch ev.Kind {
	case JoinEvent:
		s.join(ev.Query, &up)
	case LeaveEvent:
		s.leave(ev.ID, &up)
	default:
		up.Err = fmt.Errorf("stream: unknown event kind %d", ev.Kind)
	}
	if t := s.compactThreshold(); t > 0 && s.inc.Tombstones() >= t {
		s.compact(&up)
	}
	s.totals.Events++
	s.totals.Dirty += up.Stats.Dirty
	s.totals.Reused += up.Stats.Reused
	s.totals.DBQueries += up.Stats.DBQueries
	up.TeamSize = s.teamSize()
	up.Elapsed = time.Since(start)
	if s.opts.OnUpdate != nil {
		s.opts.OnUpdate(up)
	}
	return up, up.Err
}

// join admits one query into the incremental state, parking unsafe
// arrivals when configured. IDs are unique across live AND parked
// queries — a parked arrival reserves its ID, so a departure's retry
// can never admit a query over (or resurrect one alongside) another
// holder of the same ID.
func (s *Session) join(q eq.Query, up *Update) {
	if _, dup := s.byID[q.ID]; dup {
		up.Err = fmt.Errorf("%w: %s", ErrDuplicateID, q.ID)
		return
	}
	for _, p := range s.parked {
		if p.ID == q.ID {
			up.Err = fmt.Errorf("%w: %s is parked", ErrDuplicateID, q.ID)
			return
		}
	}
	slot, d, err := s.inc.Add(q)
	up.Stats = d // exact even on failure: probes count, admission doesn't
	if slot >= 0 {
		// The query is live in the incremental state — record it even
		// when the event's reconcile failed (a store error mid-pass), or
		// it could never be departed and its ID would stay claimable.
		// The next event re-reconciles from scratch, so a failed pass
		// heals rather than poisons.
		s.byID[q.ID] = slot
		s.totals.Joins++
		up.Admitted = true
	}
	if err != nil {
		if errors.Is(err, coord.ErrUnsafeArrival) {
			if s.opts.ParkUnsafe {
				s.parked = append(s.parked, q)
				s.totals.Parked++
				up.Parked = true
				return
			}
			s.totals.Rejected++
		}
		up.Err = err
	}
}

// leave departs one query and retries parked arrivals. Retry costs are
// folded into the update's stats so per-event metering stays exact.
func (s *Session) leave(id string, up *Update) {
	slot, ok := s.byID[id]
	if !ok {
		up.Err = fmt.Errorf("%w: %s", ErrUnknownID, id)
		return
	}
	d, err := s.inc.Remove(slot)
	up.Stats = d
	if err != nil && errors.Is(err, coord.ErrNoQuery) {
		up.Err = err
		return
	}
	// Past the ErrNoQuery check the slot is tombstoned even if the
	// event's reconcile failed, so the ID mapping must go with it; the
	// next event re-reconciles from scratch.
	delete(s.byID, id)
	s.totals.Leaves++
	up.Admitted = true
	if err != nil {
		up.Err = err
		return
	}
	// Departures can clear fanout conflicts: retry parked arrivals in
	// arrival order. A retry that still conflicts stays parked. Retry
	// costs fold into the update's stats so per-event metering stays
	// exact, and non-admission failures surface on the update. The
	// taken check is defensive: join reserves IDs across live and
	// parked queries, so a collision here should be impossible.
	if len(s.parked) == 0 {
		return
	}
	still := s.parked[:0]
	for _, q := range s.parked {
		if _, taken := s.byID[q.ID]; taken {
			still = append(still, q)
			continue
		}
		slot, dq, err := s.inc.Add(q)
		up.Stats.Dirty += dq.Dirty
		up.Stats.Reused += dq.Reused
		up.Stats.DBQueries += dq.DBQueries
		if slot >= 0 {
			// Committed — map it even if the pass itself failed, like
			// join does, so the query stays removable.
			s.byID[q.ID] = slot
			s.totals.Joins++
			up.AdmittedParked = append(up.AdmittedParked, q.ID)
		} else {
			still = append(still, q)
		}
		if err != nil && !errors.Is(err, coord.ErrUnsafeArrival) && up.Err == nil {
			up.Err = fmt.Errorf("stream: parked retry of %s: %w", q.ID, err)
		}
	}
	s.parked = still
}

// teamSize reads the selected candidate's size without building the
// full Result.
func (s *Session) teamSize() int { return s.inc.TeamSize() }

// compactThreshold resolves Options.CompactAfter: zero means the
// default, negative disables.
func (s *Session) compactThreshold() int {
	switch {
	case s.opts.CompactAfter < 0:
		return 0
	case s.opts.CompactAfter == 0:
		return DefaultCompactAfter
	}
	return s.opts.CompactAfter
}

// compact renumbers live queries into dense slots and remaps the ID
// index accordingly. The cost folds into the triggering event's stats
// so per-event metering stays exact; a compaction failure surfaces on
// the update (the state is still consistent — reconcile heals on the
// next event — but the error must not vanish).
func (s *Session) compact(up *Update) {
	remap, d, err := s.inc.Compact()
	up.Stats.Dirty += d.Dirty
	up.Stats.Reused += d.Reused
	up.Stats.DBQueries += d.DBQueries
	// A nil remap means compaction aborted before renumbering; the old
	// slots are still the live ones, so the ID index must not move.
	if remap != nil {
		for id, slot := range s.byID {
			s.byID[id] = remap[slot]
		}
	}
	if err != nil && up.Err == nil {
		up.Err = fmt.Errorf("stream: compaction: %w", err)
	}
}

// Tombstones returns the number of dead slots accumulated since the
// last compaction.
func (s *Session) Tombstones() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inc.Tombstones()
}

// Compact forces a slot compaction now, regardless of the threshold,
// and returns its cost. Sessions configured with a non-negative
// CompactAfter compact automatically; this is for callers that disabled
// auto-compaction but still want to reclaim slots at a moment of their
// choosing (e.g. an idle tick).
func (s *Session) Compact() (coord.DeltaStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	remap, d, err := s.inc.Compact()
	if remap != nil {
		for id, slot := range s.byID {
			s.byID[id] = remap[slot]
		}
	}
	s.totals.Dirty += d.Dirty
	s.totals.Reused += d.Reused
	s.totals.DBQueries += d.DBQueries
	return d, err
}

// Run drains events until the channel closes or the context is
// cancelled, whichever comes first. The event being processed when the
// context fires always finishes — events are atomic — so cancellation
// is a graceful drain: no partial coordination state, and the returned
// totals account for every processed event. Run returns ctx.Err() on
// cancellation and nil on a clean channel close; per-event failures are
// reported through updates (Options.OnUpdate), not Run's error, so one
// bad arrival doesn't tear down the session.
func (s *Session) Run(ctx context.Context, events <-chan Event) (Totals, error) {
	for {
		// Check cancellation first: when the producer reacts to the same
		// context by closing the channel, both select arms become ready
		// at once, and a drain must still report the cancellation.
		if err := ctx.Err(); err != nil {
			return s.Totals(), err
		}
		select {
		case <-ctx.Done():
			return s.Totals(), ctx.Err()
		case ev, ok := <-events:
			if !ok {
				return s.Totals(), nil
			}
			// Errors are carried by the update; Apply's error return is
			// for direct callers.
			_, _ = s.Apply(ev)
		}
	}
}

// Refresh resynchronises the session with the store after external
// writes: cached witnesses are dropped, pruning probes are redone, and
// the full condensation is re-solved at batch cost. Callers that
// interleave store writers with a session pause them and Refresh; see
// the dirty-region invariant in DESIGN.md.
func (s *Session) Refresh() (coord.DeltaStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, err := s.inc.Refresh()
	s.totals.Dirty += d.Dirty
	s.totals.Reused += d.Reused
	s.totals.DBQueries += d.DBQueries
	return d, err
}

// Size returns the number of live queries.
func (s *Session) Size() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inc.Len()
}

// ParkedCount returns the number of arrivals currently parked.
func (s *Session) ParkedCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.parked)
}

// Totals returns the session-lifetime statistics.
func (s *Session) Totals() Totals {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.totals
}

// Queries returns the live queries in arrival order — the set a batch
// run would be given to reproduce the session's state.
func (s *Session) Queries() []eq.Query {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inc.LiveQueries()
}

// Status is a consistent snapshot of a session's observable state,
// read under one lock acquisition so its fields agree with each other
// (Result's set indices are positions in Queries; Live == len(Queries)).
type Status struct {
	// Queries holds the live queries in arrival order.
	Queries []eq.Query
	// Result is the currently selected coordinating set (nil when
	// nothing grounds); indices are positions in Queries.
	Result *coord.Result
	// Trace is the current state's step-by-step record; nil unless
	// requested.
	Trace *coord.Trace
	// Parked is the number of arrivals currently parked.
	Parked int
	// Totals is the session-lifetime statistics.
	Totals Totals
}

// Status snapshots the session in one lock acquisition. Callers that
// read Result and Queries separately can observe them from different
// states when other clients are joining and leaving concurrently;
// Status cannot. It issues no database queries.
func (s *Session) Status(withTrace bool) (Status, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	res, err := s.resultLocked()
	if err != nil {
		return Status{}, err
	}
	st := Status{
		Queries: s.inc.LiveQueries(),
		Result:  res,
		Parked:  len(s.parked),
		Totals:  s.totals,
	}
	if withTrace {
		st.Trace = s.traceLocked()
	}
	return st, nil
}

// Result returns the currently selected coordinating set (nil when
// nothing grounds) without issuing database queries. Set indices are
// positions in Queries(); Result.DBQueries is the marginal cost of the
// event that produced this state.
func (s *Session) Result() (*coord.Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.resultLocked()
}

// resultLocked is Result under an already-held lock.
func (s *Session) resultLocked() (*coord.Result, error) {
	res, err := s.inc.Result()
	if err != nil || res == nil {
		return res, err
	}
	// Translate stable slots to live positions so the indices line up
	// with Queries(), the way batch callers expect.
	pos := map[int]int{}
	for j, slot := range s.inc.LiveSlots() {
		pos[slot] = j
	}
	set := make([]int, len(res.Set))
	values := make(map[int]map[string]eq.Value, len(res.Values))
	for i, slot := range res.Set {
		set[i] = pos[slot]
		values[pos[slot]] = res.Values[slot]
	}
	return &coord.Result{Set: set, Values: values, DBQueries: res.DBQueries}, nil
}

// Trace returns the current state's step-by-step record with query
// indices mapped to positions in Queries(), matching what a traced
// batch run over those queries reports.
func (s *Session) Trace() *coord.Trace {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.traceLocked()
}

// traceLocked is Trace under an already-held lock.
func (s *Session) traceLocked() *coord.Trace {
	tr := s.inc.Trace()
	pos := map[int]int{}
	for j, slot := range s.inc.LiveSlots() {
		pos[slot] = j
	}
	for i := range tr.Pruned {
		tr.Pruned[i].Query = pos[tr.Pruned[i].Query]
	}
	for i := range tr.Components {
		tr.Components[i].Members = remap(tr.Components[i].Members, pos)
		tr.Components[i].Set = remap(tr.Components[i].Set, pos)
		tr.Components[i].Combined = renumberPrefixes(tr.Components[i].Combined, pos)
	}
	return tr
}

func remap(xs []int, pos map[int]int) []int {
	if xs == nil {
		return nil
	}
	out := make([]int, len(xs))
	for i, x := range xs {
		out[i] = pos[x]
	}
	return out
}

// renumberPrefixes rewrites the alpha-renaming prefixes in a rendered
// combined query ("q<slot>.") from session slots to live positions, so
// the trace reads exactly like a batch trace over Queries(). Matches
// preceded by a quote are constants, not prefixes — the atom renderer
// quotes every constant that could lex as a variable (anything
// starting with a lowercase letter), so 'q2.west' is left alone. A
// database relation literally named like a prefix remains ambiguous in
// the rendered text; coordination traces are diagnostics, so that
// corner is accepted rather than guarded with a full re-parse.
var prefixRe = regexp.MustCompile(`q(\d+)\.`)

func renumberPrefixes(s string, pos map[int]int) string {
	matches := prefixRe.FindAllStringSubmatchIndex(s, -1)
	if matches == nil {
		return s
	}
	var sb strings.Builder
	sb.Grow(len(s))
	last := 0
	for _, m := range matches {
		start, end := m[0], m[1]
		sb.WriteString(s[last:start])
		last = start
		if start > 0 && s[start-1] == '\'' {
			continue // quoted constant, not a renaming prefix
		}
		slot, err := strconv.Atoi(s[m[2]:m[3]])
		if err != nil {
			continue
		}
		p, ok := pos[slot]
		if !ok {
			continue
		}
		sb.WriteString("q" + strconv.Itoa(p) + ".")
		last = end
	}
	sb.WriteString(s[last:])
	return sb.String()
}
