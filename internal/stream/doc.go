// Package stream serves coordination traffic that arrives as a stream
// rather than a finished batch: users join an evolving scenario one
// entangled query at a time, and occasionally leave it. A Session
// accepts Join and Leave events — directly, or drained from a channel
// by Run — over any db.Store and maintains the coordination state
// incrementally through coord.Incremental: an arrival extends the
// extended coordination graph with only its own incident edges, pruning
// is replayed from cached body-satisfiability probes, and only the
// condensation components whose reachable set changed are re-unified
// and re-grounded; everything else splices the previous pass's cached
// witness. Each event's exact database-query cost is metered
// separately (coord.DeltaStats), so the paper's central cost metric
// survives streaming: the per-event cost is proportional to the dirty
// region, not the session size.
//
// Admission is part of the contract: an arrival that would make the
// session's set unsafe (Definition 2 — some postcondition would unify
// with more than one head) is rejected with coord.ErrUnsafeArrival, or
// parked when Options.ParkUnsafe is set. Parked queries are retried
// automatically after each departure, since a departure is the only
// event that can clear a fanout conflict.
//
// A quiesced session is observationally equivalent to a batch run: its
// Result and Trace match coord.SCCCoordinate over the live queries in
// arrival order (see the equivalence property test), and asking for
// them issues no database queries.
//
// Long-lived sessions stay O(live queries): departed queries leave
// tombstoned slots behind, and once Options.CompactAfter of them
// accumulate (DefaultCompactAfter unless configured) the session
// compacts — live queries are renumbered into dense slots at an
// amortised, hash-table-resize-like cost, without changing any
// observable state (the compaction property test churns aggressively
// and checks batch equivalence after every event).
package stream
