package stream

import (
	"encoding/json"
	"fmt"

	"entangled/internal/eq"
)

// eventJSON is the wire shape of an Event: the kind as its tag string
// ("join"/"leave"), so session journals (internal/persist) stay
// greppable and the decoder rejects unknown kinds instead of silently
// zeroing them.
type eventJSON struct {
	Kind  string    `json:"k"`
	Query *eq.Query `json:"q,omitempty"`
	ID    string    `json:"id,omitempty"`
}

// MarshalJSON encodes the event for journals and wires.
func (e Event) MarshalJSON() ([]byte, error) {
	switch e.Kind {
	case JoinEvent:
		q := e.Query
		return json.Marshal(eventJSON{Kind: "join", Query: &q})
	case LeaveEvent:
		return json.Marshal(eventJSON{Kind: "leave", ID: e.ID})
	}
	return nil, fmt.Errorf("stream: encoding unknown event kind %d", e.Kind)
}

// UnmarshalJSON decodes the event wire shape.
func (e *Event) UnmarshalJSON(data []byte) error {
	var w eventJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	switch w.Kind {
	case "join":
		if w.Query == nil {
			return fmt.Errorf("stream: join event without a query")
		}
		*e = Event{Kind: JoinEvent, Query: *w.Query}
	case "leave":
		if w.ID == "" {
			return fmt.Errorf("stream: leave event without an ID")
		}
		*e = Event{Kind: LeaveEvent, ID: w.ID}
	default:
		return fmt.Errorf("stream: unknown event kind %q", w.Kind)
	}
	return nil
}
