package fault

import (
	"entangled/internal/db"
	"entangled/internal/eq"
	"entangled/internal/unify"
)

// NewStore wraps a db.Store so each counted query consults the
// injector under the OpQuery kind (descriptor = method name). An
// injected error surfaces mid-plan exactly where a failed backend
// query would; an injected delay models a stalled backend for the
// context-deadline path to cut short.
func NewStore(inner db.Store, inj *Injector) db.Store {
	return &faultStore{inner: inner, inj: inj}
}

type faultStore struct {
	inner db.Store
	inj   *Injector
}

var _ db.Store = (*faultStore)(nil)

func (s *faultStore) Solve(body []eq.Atom) (db.Binding, bool, error) {
	if err := injected(s.inj.Decide(OpQuery, "solve"), OpQuery, "solve"); err != nil {
		return nil, false, err
	}
	return s.inner.Solve(body)
}

func (s *faultStore) SolveAll(body []eq.Atom, limit int) ([]db.Binding, error) {
	if err := injected(s.inj.Decide(OpQuery, "solveall"), OpQuery, "solveall"); err != nil {
		return nil, err
	}
	return s.inner.SolveAll(body, limit)
}

func (s *faultStore) Satisfiable(body []eq.Atom) (bool, error) {
	if err := injected(s.inj.Decide(OpQuery, "satisfiable"), OpQuery, "satisfiable"); err != nil {
		return false, err
	}
	return s.inner.Satisfiable(body)
}

func (s *faultStore) SolveUnder(body []eq.Atom, sub *unify.Subst) (db.Binding, bool, error) {
	if err := injected(s.inj.Decide(OpQuery, "solveunder"), OpQuery, "solveunder"); err != nil {
		return nil, false, err
	}
	return s.inner.SolveUnder(body, sub)
}

func (s *faultStore) Contains(a eq.Atom) bool { return s.inner.Contains(a) }
func (s *faultStore) Domain() []eq.Value      { return s.inner.Domain() }
func (s *faultStore) QueriesIssued() int64    { return s.inner.QueriesIssued() }
func (s *faultStore) ResetCounters()          { s.inner.ResetCounters() }
