package fault

import (
	"errors"
	"math/rand"
	"strings"
	"sync"
	"time"
)

// Op names one interceptable operation kind.
type Op uint8

const (
	// Filesystem operations (FS / File).
	OpOpen Op = iota
	OpRead
	OpWrite
	OpSync
	OpRename
	OpRemove
	OpTruncate
	OpMkdir
	OpReadDir
	OpSyncDir
	// Network operations (Listener / Conn).
	OpAccept
	OpConnRead
	OpConnWrite
	// Query operations (Store).
	OpQuery
)

var opNames = [...]string{
	OpOpen: "open", OpRead: "read", OpWrite: "write", OpSync: "sync",
	OpRename: "rename", OpRemove: "remove", OpTruncate: "truncate",
	OpMkdir: "mkdir", OpReadDir: "readdir", OpSyncDir: "syncdir",
	OpAccept: "accept", OpConnRead: "conn-read", OpConnWrite: "conn-write",
	OpQuery: "query",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return "op?"
}

// ErrInjected is wrapped by every error the wrappers inject, so callers
// can tell a scheduled fault from a real one with errors.Is.
var ErrInjected = errors.New("fault: injected")

// Fault is one decided outcome for an operation.
type Fault struct {
	// Err fails the operation. The wrappers return it wrapped with
	// ErrInjected, so errors.Is matches both the rule's error and the
	// package sentinel.
	Err error
	// Torn, with Err set on a write op, writes only the first Torn bytes
	// before failing — a torn write for replay truncation to find.
	Torn int
	// Corrupt, on a conn op, flips one byte instead of failing — the
	// undetected-by-TCP corruption the CRC frames exist to catch.
	Corrupt bool
	// Delay stalls the operation before it proceeds (or fails).
	Delay time.Duration
}

// Rule matches operations and decides their fault. Rules are evaluated
// in order; the first rule that matches AND fires wins.
type Rule struct {
	// Op is the operation kind the rule intercepts.
	Op Op
	// Path restricts the rule to descriptors containing this substring
	// ("" matches every descriptor). File ops use the file path, conn
	// ops the remote address, queries the method name.
	Path string
	// After skips the first After matching operations.
	After int
	// Count fires at most Count times after the skip (0 = unlimited).
	Count int
	// Prob additionally gates each firing on a seeded coin flip in
	// (0,1]; 0 means always fire. Probabilistic firings still consume
	// Count.
	Prob float64
	// Fault is the outcome injected when the rule fires.
	Fault Fault
}

// Injector decides faults from an ordered rule list. Decisions are
// deterministic given the operation sequence: counters advance per
// matching op and the probability gate draws from a seeded generator.
// Safe for concurrent use; a nil *Injector never injects.
type Injector struct {
	mu     sync.Mutex
	rng    *rand.Rand
	rules  []*ruleState
	armed  bool
	ops    int64
	faults int64
}

type ruleState struct {
	Rule
	seen  int
	fired int
}

// NewInjector builds an armed injector with a seeded probability source.
func NewInjector(seed int64, rules ...Rule) *Injector {
	i := &Injector{rng: rand.New(rand.NewSource(seed)), armed: true}
	i.Add(rules...)
	return i
}

// Add appends rules, keeping existing rule counters.
func (i *Injector) Add(rules ...Rule) {
	if i == nil {
		return
	}
	i.mu.Lock()
	for _, r := range rules {
		rs := &ruleState{Rule: r}
		i.rules = append(i.rules, rs)
	}
	i.mu.Unlock()
}

// Reset replaces every rule and zeroes their counters.
func (i *Injector) Reset(rules ...Rule) {
	if i == nil {
		return
	}
	i.mu.Lock()
	i.rules = i.rules[:0]
	i.mu.Unlock()
	i.Add(rules...)
}

// Arm enables injection (the NewInjector default).
func (i *Injector) Arm() { i.setArmed(true) }

// Disarm stops all injection; counters and rules are preserved.
func (i *Injector) Disarm() { i.setArmed(false) }

func (i *Injector) setArmed(v bool) {
	if i == nil {
		return
	}
	i.mu.Lock()
	i.armed = v
	i.mu.Unlock()
}

// Stats reports operations seen and faults injected since creation.
func (i *Injector) Stats() (ops, faults int64) {
	if i == nil {
		return 0, 0
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.ops, i.faults
}

// Exhausted reports whether every Count-bounded rule has fired its full
// budget — after which the schedule injects nothing more and recovery
// probes are guaranteed to succeed.
func (i *Injector) Exhausted() bool {
	if i == nil {
		return true
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	for _, r := range i.rules {
		if r.Count == 0 || r.fired < r.Count {
			return false
		}
	}
	return true
}

// Decide returns the fault (possibly none) for one operation on the
// descriptor. Exported so custom wrappers outside this package can
// share a schedule.
func (i *Injector) Decide(op Op, path string) Fault {
	if i == nil {
		return Fault{}
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	i.ops++
	if !i.armed {
		return Fault{}
	}
	for _, r := range i.rules {
		if r.Op != op || (r.Path != "" && !strings.Contains(path, r.Path)) {
			continue
		}
		r.seen++
		if r.seen <= r.After {
			continue
		}
		if r.Count > 0 && r.fired >= r.Count {
			continue
		}
		if r.Prob > 0 && i.rng.Float64() >= r.Prob {
			continue
		}
		r.fired++
		i.faults++
		return r.Fault
	}
	return Fault{}
}
